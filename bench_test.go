package silo_test

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (one benchmark per artifact) plus the ablation studies called
// out in DESIGN.md §6. Each iteration runs the complete experiment in quick
// mode and reports the headline metric alongside ns/op:
//
//	go test -bench=. -benchmem
//
// For paper-scale windows use cmd/paperbench -full; the benchmarks exist to
// regenerate shapes quickly and to track simulator performance.

import (
	"testing"

	silo "repro"
	"repro/internal/coherence"
	"repro/internal/experiments"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/workload"
)

// benchMode trades window size for wall-clock so the full suite finishes in
// minutes. Shapes are stable at these sizes (see experiments tests).
func benchMode() experiments.Mode {
	return experiments.Mode{Name: "bench", WarmInstr: 200_000, WarmCycles: 10_000, MeasureCycles: 40_000, Scale: 32}
}

func BenchmarkFig1CapacitySensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig1(benchMode())
		// Report Web Search's gain at 1GB — the paper's late-knee headline.
		b.ReportMetric(r.Norm[0][len(r.CapacitiesMB)-1], "websearch-1GB-x")
	}
}

func BenchmarkFig2LatencySensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig2(benchMode())
		// Report the 1GB capacity at +100% latency: the collapse point.
		b.ReportMetric(r.Norm[len(r.CapacitiesMB)-1][len(r.ExtraPct)-1], "1GB+100pct-x")
	}
}

func BenchmarkFig3SharingBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig3(benchMode())
		b.ReportMetric(r.WritesRWSharingPct[0], "websearch-rwshare-pct")
	}
}

func BenchmarkFig4RWSharedLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig4(benchMode())
		b.ReportMetric(r.Norm[1][3], "dataserving-4x-norm")
	}
}

func BenchmarkFig7TileSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := experiments.Fig7()
		b.ReportMetric(pts[2].Latency, "256tile-latency-x")
	}
}

func BenchmarkFig8VaultDesignSpace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig8()
		var at256 float64
		for _, d := range r.Envelope {
			if d.CapacityMB == 256 {
				at256 = d.AccessNS()
			}
		}
		b.ReportMetric(at256, "256MB-ns")
	}
}

func BenchmarkTable1DesignPoints(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := experiments.Table1()
		b.ReportMetric(c.LatencyRatio, "latency-ratio")
	}
}

func BenchmarkFig10ScaleOut(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig10(benchMode())
		b.ReportMetric(r.SpeedupOf("SILO"), "silo-geomean-x")
	}
}

func BenchmarkFig11HitBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig11(benchMode())
		b.ReportMetric(r.MissReduction[4], "satsolver-missred")
	}
}

func BenchmarkFig12Optimizations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig12(benchMode())
		b.ReportMetric(r.Norm[1][3], "dataserving-bothopt-x")
	}
}

func BenchmarkFig13Energy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig13(benchMode())
		b.ReportMetric(r.SILOTotal(0), "websearch-silo-energy")
	}
}

func BenchmarkFig14Enterprise(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig14(benchMode())
		b.ReportMetric(r.SpeedupOf("SILO"), "silo-geomean-x")
	}
}

func BenchmarkFig15SpecMixes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig15(benchMode())
		b.ReportMetric(r.Mean(), "mean-speedup-x")
	}
}

func BenchmarkTable6Isolation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Table6(benchMode())
		b.ReportMetric(r.SharedColoc, "shared-colocated-x")
		b.ReportMetric(r.SILOColoc, "silo-colocated-x")
	}
}

func BenchmarkFig16ThreeLevel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig16(benchMode())
		b.ReportMetric(r.Norm[4][2], "satsolver-3lsilo-x")
	}
}

// --- Experiment-runner parallelism ------------------------------------------

// BenchmarkEvalSuiteSequential and BenchmarkEvalSuiteParallel run the same
// Fig 10 suite (5 systems x 8 workloads = 40 cells) with one worker vs the
// full worker pool. Their results are bit-identical (asserted by
// TestFig10ParallelMatchesSequential); on an N-core machine the parallel
// variant's ns/op should approach 1/N of the sequential one.

func BenchmarkEvalSuiteSequential(b *testing.B) {
	m := benchMode()
	m.Parallelism = 1
	for i := 0; i < b.N; i++ {
		r := experiments.Fig10(m)
		b.ReportMetric(r.SpeedupOf("SILO"), "silo-geomean-x")
	}
}

func BenchmarkEvalSuiteParallel(b *testing.B) {
	m := benchMode() // Parallelism 0 = one worker per GOMAXPROCS
	for i := 0; i < b.N; i++ {
		r := experiments.Fig10(m)
		b.ReportMetric(r.SpeedupOf("SILO"), "silo-geomean-x")
	}
}

// --- Ablations (DESIGN.md §6) ----------------------------------------------

// benchSystem runs one system/workload pair and returns aggregate IPC.
func benchIPC(cfg silo.Config, w silo.Workload) float64 {
	cfg.Scale = 32
	sys := silo.NewSystem(cfg, w)
	sys.Prewarm()
	sys.WarmFunctional(200_000)
	return sys.Run(10_000, 40_000).IPC()
}

// Direct-mapped vs 4-way set-associative vaults: the paper argues the
// vault's capacity compensates for direct mapping.
func BenchmarkAblationVaultAssociativity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dm := benchIPC(silo.SILOConfig(16), silo.SATSolver())
		sa := silo.SILOConfig(16)
		sa.VaultWays = 4
		assoc := benchIPC(sa, silo.SATSolver())
		b.ReportMetric(assoc/dm, "4way-over-dm-x")
	}
}

// MOESI vs MESI: the O state avoids memory writebacks when dirty lines are
// shared (paper Sec. V-B).
func BenchmarkAblationMOESIvsMESI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		moesi := benchIPC(silo.SILOConfig(16), silo.DataServing())
		mesiCfg := silo.SILOConfig(16)
		mesiCfg.Protocol = coherence.MESI
		mesi := benchIPC(mesiCfg, silo.DataServing())
		b.ReportMetric(moesi/mesi, "moesi-over-mesi-x")
	}
}

// TAD unified tag+data vs serialized tag-then-data access: the unified
// fetch saves one array access of latency per hit (paper Sec. V-A).
// Serialization is modelled by doubling the vault array time.
func BenchmarkAblationTAD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tad := benchIPC(silo.SILOConfig(16), silo.WebSearch())
		ser := silo.SILOConfig(16)
		ser.VaultTiming.ArrayCycles *= 2
		serial := benchIPC(ser, silo.WebSearch())
		b.ReportMetric(tad/serial, "tad-over-serialized-x")
	}
}

// Closed-page bank occupancy ablation: longer bank busy time models an
// open-page policy's worst case (row conflicts on every access).
func BenchmarkAblationPagePolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		closed := benchIPC(silo.SILOConfig(16), silo.MapReduce())
		open := silo.SILOConfig(16)
		open.VaultTiming.ArrayCycles += 6 // precharge-on-demand penalty
		openIPC := benchIPC(open, silo.MapReduce())
		b.ReportMetric(closed/openIPC, "closed-over-open-x")
	}
}

// Raw component benchmarks: simulator throughput on the hot paths.

func BenchmarkSystemSimulationThroughput(b *testing.B) {
	// Shared with paperbench -bench-json so BENCH_<date>.json snapshots
	// stay comparable to this benchmark's output.
	sys := experiments.ThroughputSystem()
	b.ResetTimer()
	var retired uint64
	for i := 0; i < b.N; i++ {
		m := sys.Run(0, experiments.ThroughputWindow)
		retired += m.Retired
	}
	b.ReportMetric(float64(retired)/float64(b.N), "instr/iter")
}

// BenchmarkSystemThroughputPaperScale* measure the same throughput window
// at paper-scale footprints (Scale 1 = the paper's 4GB aggregate vault
// capacity, Scale 4 the cheapest multi-million-entry-table point) — the
// regime the compact coherence slots target (DESIGN.md §8-§9; paperbench
// -bench-json reports the same probe as system_throughput_paperscale).
// Scale 1 warms tens of millions of lines, so it hides behind the
// short-mode guard: CI's 1x-benchtime smoke runs with -short and only
// pays for Scale 4.
func benchPaperScale(b *testing.B, scale int64) {
	if testing.Short() && scale < 4 {
		b.Skipf("paper-scale warm-up at Scale %d is too slow for short mode", scale)
	}
	sys := experiments.ThroughputSystemAt(scale)
	b.ResetTimer()
	var retired uint64
	for i := 0; i < b.N; i++ {
		m := sys.Run(0, experiments.ThroughputWindow)
		retired += m.Retired
	}
	b.ReportMetric(float64(retired)/float64(b.N), "instr/iter")
	entries, bytesPerSlot := sys.LineTable()
	b.ReportMetric(float64(entries), "table-entries")
	b.ReportMetric(float64(entries*bytesPerSlot)/(1<<20), "table-MB")
}

func BenchmarkSystemThroughputPaperScale1(b *testing.B) { benchPaperScale(b, 1) }
func BenchmarkSystemThroughputPaperScale4(b *testing.B) { benchPaperScale(b, 4) }

// BenchmarkSchedulerProbe* time the engine's event-queue implementations on
// the canonical simulator event mix (see experiments.RunSchedulerProbe;
// paperbench -bench-json reports the same probe in BENCH_<date>.json). The
// calendar queue is the engine default; the binary heap is the reference.

func benchSchedulerProbe(b *testing.B, kind sim.SchedulerKind) {
	var events uint64
	for i := 0; i < b.N; i++ {
		events += experiments.RunSchedulerProbe(kind)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(events), "ns/event")
}

func BenchmarkSchedulerProbeCalendar(b *testing.B) { benchSchedulerProbe(b, sim.CalendarQueue) }
func BenchmarkSchedulerProbeHeap(b *testing.B)     { benchSchedulerProbe(b, sim.BinaryHeap) }

// BenchmarkArrayProbe times the cache-array fast path on the canonical L1 +
// direct-mapped-vault access mix (experiments.RunArrayProbe; paperbench
// -bench-json reports the same probe in BENCH_<date>.json).
func BenchmarkArrayProbe(b *testing.B) {
	var ops uint64
	for i := 0; i < b.N; i++ {
		ops += experiments.RunArrayProbe()
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(ops), "ns/access")
}

// BenchmarkCoherenceTable* time the coherence substrates' store
// implementations on the canonical directory + snoop-filter op cycle
// (experiments.RunCoherenceTableProbe). The open-addressed table is the
// default; the Go map is the retained reference.
func benchCoherenceTable(b *testing.B, kind coherence.StoreKind) {
	var ops uint64
	for i := 0; i < b.N; i++ {
		ops += experiments.RunCoherenceTableProbe(kind)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(ops), "ns/op")
}

func BenchmarkCoherenceTableOpen(b *testing.B) { benchCoherenceTable(b, coherence.OpenTable) }
func BenchmarkCoherenceTableMap(b *testing.B)  { benchCoherenceTable(b, coherence.MapStore) }

// BenchmarkCoherenceTableQuot times the quotient-key-compressed store
// (8 B/slot, the default for ≤16-core systems — see DESIGN.md §8).
func BenchmarkCoherenceTableQuot(b *testing.B) { benchCoherenceTable(b, coherence.QuotTable) }

// BenchmarkStreamProbe* time trace generation per op through the serial
// (Next) and batched (NextBatch, what the cpu core consumes) paths on the
// canonical stream (experiments.RunStreamProbe; paperbench -bench-json
// reports the same probe in BENCH_<date>.json).
func benchStreamProbe(b *testing.B, batched bool) {
	var ops uint64
	for i := 0; i < b.N; i++ {
		ops += experiments.RunStreamProbe(batched)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(ops), "ns/op")
}

func BenchmarkStreamProbeSerial(b *testing.B)  { benchStreamProbe(b, false) }
func BenchmarkStreamProbeBatched(b *testing.B) { benchStreamProbe(b, true) }

// BenchmarkDirectoryOps measures the duplicate-tag directory's hot path:
// a read-share-write-evict cycle across 16 cores.
func BenchmarkDirectoryOps(b *testing.B) {
	d := coherence.NewDirectory(16, coherence.MOESI)
	for i := 0; i < b.N; i++ {
		line := mem.LineAddr(uint64(i%4096) * mem.LineSize)
		r := i % 16
		if d.StateOf(line, r) == 0 { // Invalid
			d.Read(line, r)
		}
		w := (i + 7) % 16
		d.Write(line, w)
		d.Evict(line, w)
	}
}

// BenchmarkWorkloadStream measures trace-generation throughput.
func BenchmarkWorkloadStream(b *testing.B) {
	stream := workload.NewStream(workload.WebSearch(), 0, 16, 32, 1)
	var op workload.Op
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stream.Next(&op)
	}
}
