// Command dramgeom prints the DRAM technology studies: the Fig 7 tile
// sweep, the Fig 8 vault design space (optionally every feasible point with
// -all), and the Table I design-point comparison.
package main

import (
	"flag"
	"fmt"

	silo "repro"
)

func main() {
	all := flag.Bool("all", false, "print every feasible design, not just the envelope")
	flag.Parse()

	fmt.Println("Fig 7 — tile dimensions vs access latency and die area")
	fmt.Printf("%-12s %10s %10s\n", "tile", "latency", "area")
	for _, p := range silo.TileSweep() {
		fmt.Printf("%-12s %9.3fx %9.3fx\n", p.Tile, p.Latency, p.Area)
	}

	fmt.Println("\nFig 8 — vault designs under the 4-die x 5mm² budget")
	designs := silo.VaultEnvelope()
	if *all {
		designs = silo.EnumerateVaultDesigns()
	}
	fmt.Printf("%-8s %-10s %10s %10s %6s\n", "capacity", "tile", "ns", "mm²", "banks")
	for _, d := range designs {
		fmt.Printf("%-8s %-10s %10.2f %10.2f %6d\n",
			fmt.Sprintf("%dMB", d.CapacityMB), d.Tile.String(), d.AccessNS(), d.AreaMM2(), d.Banks())
	}

	lo, co := silo.LatencyOptimizedVault(), silo.CapacityOptimizedVault()
	fmt.Println("\nTable I — latency- vs capacity-optimized design points")
	fmt.Printf("latency-optimized:  %s (%d cycles @2GHz)\n", lo, lo.AccessCycles(2))
	fmt.Printf("capacity-optimized: %s (%d cycles @2GHz)\n", co, co.AccessCycles(2))
	fmt.Printf("ratios (CO/LO): latency %.2fx, area efficiency %.2fx, tiles %.2fx\n",
		co.AccessNS()/lo.AccessNS(),
		co.Tile.AreaEfficiency()/lo.Tile.AreaEfficiency(),
		float64(co.Tiles())/float64(lo.Tiles()))
}
