package main

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/checkpoint"
)

// Warm-state checkpoint directory maintenance (-checkpoint-ls and
// -checkpoint-gc). Both operate on the header alone — key and metadata
// live before the payload precisely so a listing never has to read an
// 800MB paper-scale checkpoint body.

// ckptEntry is one directory entry with its decoded header (or the
// reason it could not be decoded).
type ckptEntry struct {
	path    string
	size    int64
	modTime time.Time
	key     string
	meta    string
	stale   bool // written by a different format version
	err     error
}

// scanCheckpointDir reads every *.ckpt header in dir, sorted by name so
// output is stable across runs.
func scanCheckpointDir(dir string) ([]ckptEntry, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	entries := make([]ckptEntry, 0, len(paths))
	for _, path := range paths {
		e := ckptEntry{path: path}
		if fi, err := os.Stat(path); err == nil {
			e.size = fi.Size()
			e.modTime = fi.ModTime()
		}
		r, err := checkpoint.Open(path, "") // empty key: header inspection only
		if err != nil {
			e.err = err
			e.stale = errors.Is(err, checkpoint.ErrVersionMismatch)
		} else {
			e.key, e.meta = r.Key, r.Meta
			r.Close()
		}
		entries = append(entries, e)
	}
	return entries, nil
}

func runCheckpointLS(dir string) int {
	entries, err := scanCheckpointDir(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "checkpoint: %v\n", err)
		return 1
	}
	var total int64
	for _, e := range entries {
		age := time.Since(e.modTime).Round(time.Minute)
		switch {
		case e.err != nil:
			note := "unreadable"
			if e.stale {
				note = "stale format"
			}
			fmt.Printf("%s\t%.1f MB\tage %v\t[%s: %v]\n", filepath.Base(e.path), float64(e.size)/(1<<20), age, note, e.err)
		default:
			fmt.Printf("%s\t%.1f MB\tage %v\t%s\n", filepath.Base(e.path), float64(e.size)/(1<<20), age, e.meta)
		}
		total += e.size
	}
	fmt.Printf("%d checkpoint(s), %.1f MB in %s\n", len(entries), float64(total)/(1<<20), dir)
	return 0
}

// gcLockWait bounds how long GC waits for concurrent restores/saves to
// drain before refusing. Restores of paper-scale checkpoints take a few
// seconds; anything longer means the directory is genuinely busy. (A
// variable so the directed test can shorten the refusal path.)
var gcLockWait = 10 * time.Second

// runCheckpointGC prunes checkpoints older than maxAgeDays, plus any
// whose header is stale (older format version — the current code will
// never restore it) or unreadable. Live checkpoints are left alone.
// The directory lock is taken exclusive for the whole pass: workers of
// a distributed sweep restore under the shared lock, so GC can never
// unlink a checkpoint mid-restore — it refuses (exit 1) when the
// directory stays busy past gcLockWait rather than waiting forever.
func runCheckpointGC(dir string, maxAgeDays int) int {
	unlock, err := checkpoint.LockDirExclusive(dir, gcLockWait)
	if err != nil {
		fmt.Fprintf(os.Stderr, "checkpoint: gc: %v — retry when the sweep's restores have drained\n", err)
		return 1
	}
	defer unlock()
	entries, err := scanCheckpointDir(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "checkpoint: %v\n", err)
		return 1
	}
	cutoff := time.Now().Add(-time.Duration(maxAgeDays) * 24 * time.Hour)
	pruned, kept, failed := 0, 0, 0
	var freed int64
	for _, e := range entries {
		reason := ""
		switch {
		case e.stale:
			reason = "stale format"
		case e.err != nil:
			reason = "unreadable"
		case e.modTime.Before(cutoff):
			reason = fmt.Sprintf("older than %dd", maxAgeDays)
		}
		if reason == "" {
			kept++
			continue
		}
		if err := os.Remove(e.path); err != nil {
			fmt.Fprintf(os.Stderr, "checkpoint: %v\n", err)
			failed++
			continue
		}
		fmt.Fprintf(os.Stderr, "pruned %s (%.1f MB, %s)\n", filepath.Base(e.path), float64(e.size)/(1<<20), reason)
		pruned++
		freed += e.size
	}
	fmt.Printf("pruned %d checkpoint(s) (%.1f MB freed), kept %d in %s\n", pruned, float64(freed)/(1<<20), kept, dir)
	if failed > 0 {
		return 1
	}
	return 0
}
