package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/dist"
	"repro/internal/experiments"
	"repro/internal/robust"
)

// Distributed sweep runner CLI (DESIGN.md §13): -serve runs the
// coordinator over the same -grid flags batch mode takes; -worker
// joins a coordinator and contributes cells. The coordinator's output
// is byte-identical to a single-process `-grid` run modulo wall_ms.

// runServe is coordinator mode: partition the grid into lease batches,
// serve them to workers, reassemble reports in enumeration order, and
// write the sweep output exactly like runGrid would.
func runServe(c cliConfig, mode experiments.Mode) int {
	if c.grid == "" {
		fmt.Fprintln(os.Stderr, "dist: -serve needs -grid <spec> (the coordinator owns the sweep definition)")
		return 2
	}
	if c.gridConfidence != 0 && (c.gridConfidence <= 0 || c.gridConfidence >= 1) {
		fmt.Fprintf(os.Stderr, "grid: -grid-confidence %v outside (0,1) — e.g. 0.95, not a percentage\n", c.gridConfidence)
		return 2
	}
	policy, err := robust.ParseFailPolicy(c.onError)
	if err != nil {
		fmt.Fprintf(os.Stderr, "grid: -on-error: %v\n", err)
		return 2
	}
	if c.resume && c.journal == "" {
		fmt.Fprintln(os.Stderr, "dist: -resume needs -journal <file> (the journal is what a resumed coordinator reads)")
		return 2
	}
	if c.resumeShards != "" && !c.resume {
		fmt.Fprintln(os.Stderr, "dist: -resume-shards needs -resume (shard journals only matter when resuming)")
		return 2
	}

	cfg := dist.Config{
		Grid:         c.grid,
		Windows:      c.gridWindows,
		Confidence:   c.gridConfidence,
		Mode:         mode,
		OnError:      policy,
		Retries:      c.retries,
		Backoff:      robust.Backoff{Base: c.retryBackoff, Cap: 30 * time.Second},
		CellDeadline: c.cellDeadline,
		Resume:       c.resume,
		LeaseTTL:     c.leaseTTL,
		LeaseCells:   c.leaseCells,
		SoloAfter:    c.soloAfter,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "["+format+"]\n", args...)
		},
	}
	if c.resumeShards != "" {
		cfg.ResumeShards = strings.Split(c.resumeShards, ",")
	}
	if c.journal != "" {
		j, err := robust.OpenJournal(c.journal)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dist: %v\n", err)
			return 1
		}
		defer j.Close()
		if c.resume {
			if d := j.DroppedBytes(); d > 0 {
				fmt.Fprintf(os.Stderr, "[dist: journal %s: dropped %d bytes of torn tail]\n", c.journal, d)
			}
		} else if err := j.Clear(); err != nil {
			fmt.Fprintf(os.Stderr, "dist: %v\n", err)
			return 1
		}
		cfg.Journal = j
	}

	co, err := dist.NewCoordinator(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dist: %v\n", err)
		return 2
	}
	ln, err := net.Listen("tcp", c.serve)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dist: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "[dist: coordinating %d cells on %s]\n", co.StatsSnapshot().Cells, ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	out := os.Stdout
	tmpName := ""
	if c.gridOut != "" {
		tmp, err := os.CreateTemp(filepath.Dir(c.gridOut), filepath.Base(c.gridOut)+".tmp-*")
		if err != nil {
			fmt.Fprintf(os.Stderr, "dist: %v\n", err)
			return 1
		}
		out = tmp
		tmpName = tmp.Name()
		defer func() {
			if tmpName != "" { // not committed: discard the partial file
				tmp.Close()
				os.Remove(tmpName)
			}
		}()
	}

	start := time.Now()
	emitted, failed := 0, 0
	enc := json.NewEncoder(out)
	var encErr error
	err = co.Run(ctx, ln, func(r experiments.GridCellResult) bool {
		if encErr = enc.Encode(r); encErr != nil {
			return false
		}
		emitted++
		if r.Error != nil {
			failed++
		}
		return true
	})
	if encErr != nil {
		fmt.Fprintf(os.Stderr, "dist: %v\n", encErr)
		return 1
	}
	st := co.StatsSnapshot()
	if err != nil {
		if errors.Is(err, context.Canceled) {
			hint := ""
			if c.journal != "" {
				hint = fmt.Sprintf("; journaled progress survives — rerun with -journal %s -resume", c.journal)
			}
			fmt.Fprintf(os.Stderr, "dist: interrupted after %d of %d cells%s\n", emitted, st.Cells, hint)
			return 130
		}
		fmt.Fprintf(os.Stderr, "dist: %v\n", err)
		return 1
	}
	if c.gridOut != "" {
		if err := out.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "dist: %v\n", err)
			return 1
		}
		if err := robust.CommitFile(tmpName, c.gridOut); err != nil {
			fmt.Fprintf(os.Stderr, "dist: %v\n", err)
			return 1
		}
		tmpName = ""
	}
	failNote := ""
	if failed > 0 {
		failNote = fmt.Sprintf(", %d failed (structured error records)", failed)
	}
	fmt.Fprintf(os.Stderr, "[dist: %d cells in %v via %d worker(s), %d lease(s), %d reassigned, %d duplicate(s), %d solo%s]\n",
		st.Cells, time.Since(start).Round(time.Millisecond), st.WorkersSeen, st.LeasesGranted, st.CellsReassigned, st.DuplicateReports, st.SoloCells, failNote)
	return 0
}

// runWorker is worker mode: join the coordinator at the URL, lease
// cells, stream records back until the sweep finishes.
func runWorker(c cliConfig, mode experiments.Mode) int {
	if c.grid != "" {
		fmt.Fprintln(os.Stderr, "dist: -worker takes the grid from the coordinator — drop -grid")
		return 2
	}
	w := dist.NewWorker(dist.WorkerConfig{
		URL:           strings.TrimRight(c.worker, "/"),
		ID:            c.workerID,
		Parallelism:   mode.Parallelism,
		GenThreads:    mode.GenThreads,
		CheckpointDir: mode.CheckpointDir,
		JournalPath:   c.journal,
		MaxOffline:    c.maxOffline,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "["+format+"]\n", args...)
		},
	})
	defer w.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	err := w.Run(ctx)
	switch {
	case err == nil:
		return 0
	case errors.Is(err, context.Canceled):
		hint := ""
		if c.journal != "" {
			hint = fmt.Sprintf(" — completed cells are journaled in %s; restart the worker to continue, or feed the file to the coordinator's -resume-shards", c.journal)
		}
		fmt.Fprintf(os.Stderr, "dist: worker %s interrupted; the coordinator reassigns its lease%s\n", w.ID(), hint)
		return 130
	default:
		fmt.Fprintf(os.Stderr, "dist: %v\n", err)
		return 1
	}
}
