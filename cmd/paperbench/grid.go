package main

import (
	"repro/internal/experiments"
)

// Batch-mode grid spec parsing. The compiler moved to
// internal/experiments (experiments.ParseGridSpec) in the distributed-
// runner PR: the textual spec doubles as the coordinator/worker wire
// format, so every process — this CLI, a -serve coordinator, a -worker
// shard — must compile it with the same code. These aliases keep the
// CLI's call sites and tests in place.

func parseOverride(set string) (experiments.Override, error) {
	return experiments.ParseOverride(set)
}

func parseGridSpec(arg string, windows int, confidence float64) (experiments.GridSpec, error) {
	return experiments.ParseGridSpec(arg, windows, confidence)
}
