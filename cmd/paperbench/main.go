// Command paperbench regenerates every table and figure of the paper's
// evaluation. By default it runs in quick mode; -full uses paper-scale
// measurement windows. -only selects a single experiment (e.g. -only fig10).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	full := flag.Bool("full", false, "use paper-scale measurement windows")
	only := flag.String("only", "", "run a single experiment (fig1, fig2, fig3, fig4, fig7, fig8, table1, fig10, fig11, fig12, fig13, fig14, fig15, table6, fig16)")
	flag.Parse()

	mode := experiments.Quick()
	if *full {
		mode = experiments.Full()
	}

	runners := []struct {
		name string
		fn   func() string
	}{
		{"fig1", func() string { return experiments.Fig1(mode).String() }},
		{"fig2", func() string { return experiments.Fig2(mode).String() }},
		{"fig3", func() string { return experiments.Fig3(mode).String() }},
		{"fig4", func() string { return experiments.Fig4(mode).String() }},
		{"fig7", experiments.Fig7String},
		{"fig8", func() string { return experiments.Fig8().String() }},
		{"table1", experiments.Table1String},
		{"fig10", func() string { return experiments.Fig10(mode).String() }},
		{"fig11", func() string { return experiments.Fig11(mode).String() }},
		{"fig12", func() string { return experiments.Fig12(mode).String() }},
		{"fig13", func() string { return experiments.Fig13(mode).String() }},
		{"fig14", func() string { return experiments.Fig14(mode).String() }},
		{"fig15", func() string { return experiments.Fig15(mode).String() }},
		{"table6", func() string { return experiments.Table6(mode).String() }},
		{"fig16", func() string { return experiments.Fig16(mode).String() }},
	}

	matched := false
	for _, r := range runners {
		if *only != "" && !strings.EqualFold(*only, r.name) {
			continue
		}
		matched = true
		start := time.Now()
		out := r.fn()
		fmt.Println(out)
		fmt.Fprintf(os.Stderr, "[%s took %v]\n\n", r.name, time.Since(start).Round(time.Millisecond))
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *only)
		os.Exit(2)
	}
}
