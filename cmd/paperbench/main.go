// Command paperbench regenerates every table and figure of the paper's
// evaluation. By default it runs in quick mode; -full uses paper-scale
// measurement windows. -only selects a single experiment (e.g. -only
// fig10). -parallel bounds the experiment runner's worker pool (0 = all
// cores). -bench-json skips the tables and instead writes a
// BENCH_<date>.json performance snapshot (simulator hot-path throughput
// plus the Fig 10 suite) for tracking the perf trajectory across commits.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/sim"
)

func main() {
	full := flag.Bool("full", false, "use paper-scale measurement windows")
	only := flag.String("only", "", "run a single experiment (fig1, fig2, fig3, fig4, fig7, fig8, table1, fig10, fig11, fig12, fig13, fig14, fig15, table6, fig16)")
	parallel := flag.Int("parallel", 0, "experiment worker pool size (0 = all cores, 1 = sequential)")
	benchJSON := flag.Bool("bench-json", false, "write a BENCH_<date>.json performance snapshot and exit")
	flag.Parse()

	mode := experiments.Quick()
	if *full {
		mode = experiments.Full()
	}
	mode.Parallelism = *parallel

	if *benchJSON {
		if err := writeBenchSnapshot(mode); err != nil {
			fmt.Fprintf(os.Stderr, "bench snapshot: %v\n", err)
			os.Exit(1)
		}
		return
	}

	runners := []struct {
		name string
		fn   func() string
	}{
		{"fig1", func() string { return experiments.Fig1(mode).String() }},
		{"fig2", func() string { return experiments.Fig2(mode).String() }},
		{"fig3", func() string { return experiments.Fig3(mode).String() }},
		{"fig4", func() string { return experiments.Fig4(mode).String() }},
		{"fig7", experiments.Fig7String},
		{"fig8", func() string { return experiments.Fig8().String() }},
		{"table1", experiments.Table1String},
		{"fig10", func() string { return experiments.Fig10(mode).String() }},
		{"fig11", func() string { return experiments.Fig11(mode).String() }},
		{"fig12", func() string { return experiments.Fig12(mode).String() }},
		{"fig13", func() string { return experiments.Fig13(mode).String() }},
		{"fig14", func() string { return experiments.Fig14(mode).String() }},
		{"fig15", func() string { return experiments.Fig15(mode).String() }},
		{"table6", func() string { return experiments.Table6(mode).String() }},
		{"fig16", func() string { return experiments.Fig16(mode).String() }},
	}

	matched := false
	for _, r := range runners {
		if *only != "" && !strings.EqualFold(*only, r.name) {
			continue
		}
		matched = true
		start := time.Now()
		out := r.fn()
		fmt.Println(out)
		fmt.Fprintf(os.Stderr, "[%s took %v]\n\n", r.name, time.Since(start).Round(time.Millisecond))
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *only)
		os.Exit(2)
	}
}

// benchSnapshot is the schema of BENCH_<date>.json. ns/op figures follow
// the go test -bench convention so snapshots are comparable to
// BenchmarkSystemSimulationThroughput and BenchmarkFig10ScaleOut output.
type benchSnapshot struct {
	Date        string `json:"date"`
	Mode        string `json:"mode"` // quick or full; full fig10 numbers are not comparable to quick ones
	GoMaxProcs  int    `json:"go_max_procs"`
	Parallelism int    `json:"parallelism"`
	// Scheduler is the engine's event-queue implementation (the default for
	// every system the snapshot measures).
	Scheduler string `json:"scheduler"`

	// SchedulerProbe compares the event-queue implementations on the
	// canonical event mix (experiments.RunSchedulerProbe), mirroring
	// BenchmarkSchedulerProbeCalendar/Heap.
	SchedulerProbe struct {
		CalendarNsPerEvent float64 `json:"calendar_ns_per_event"`
		HeapNsPerEvent     float64 `json:"heap_ns_per_event"`
	} `json:"scheduler_probe"`

	// SystemThroughput mirrors BenchmarkSystemSimulationThroughput: a
	// warmed 16-core SILO system running Web Search, measured in 10K-cycle
	// windows.
	SystemThroughput struct {
		Iters        int     `json:"iters"`
		NsPerOp      float64 `json:"ns_per_op"`
		InstrPerIter float64 `json:"instr_per_iter"`
		EventsPerSec float64 `json:"events_per_sec"`
	} `json:"system_throughput"`

	// Fig10 is one Fig 10 suite run (5 systems x 8 workloads) through the
	// concurrent runner, under the selected mode (see the "mode" field —
	// quick and full snapshots are not comparable to each other).
	Fig10 struct {
		NsPerOp      float64 `json:"ns_per_op"`
		SiloGeomeanX float64 `json:"silo_geomean_x"`
	} `json:"fig10"`
}

// writeBenchSnapshot measures the two headline performance numbers and
// writes them to BENCH_<date>.json in the current directory.
func writeBenchSnapshot(mode experiments.Mode) error {
	var snap benchSnapshot
	snap.Date = time.Now().Format("2006-01-02")
	snap.Mode = mode.Name
	snap.GoMaxProcs = runtime.GOMAXPROCS(0)
	snap.Parallelism = mode.Parallelism
	snap.Scheduler = sim.NewEngine().SchedulerName()

	// Event-queue comparison on the canonical mix (a few probe runs each,
	// best-of to shed scheduling noise).
	probe := func(kind sim.SchedulerKind) float64 {
		best := math.Inf(1)
		for r := 0; r < 3; r++ {
			t0 := time.Now()
			events := experiments.RunSchedulerProbe(kind)
			if ns := float64(time.Since(t0).Nanoseconds()) / float64(events); ns < best {
				best = ns
			}
		}
		return best
	}
	snap.SchedulerProbe.CalendarNsPerEvent = probe(sim.CalendarQueue)
	snap.SchedulerProbe.HeapNsPerEvent = probe(sim.BinaryHeap)

	// Hot-path throughput: the same warmed system and window as
	// BenchmarkSystemSimulationThroughput.
	sys := experiments.ThroughputSystem()
	const minWall = time.Second
	var (
		iters   int
		retired uint64
	)
	evStart := sys.Engine().Executed()
	start := time.Now()
	for time.Since(start) < minWall {
		m := sys.Run(0, experiments.ThroughputWindow)
		retired += m.Retired
		iters++
	}
	wall := time.Since(start)
	snap.SystemThroughput.Iters = iters
	snap.SystemThroughput.NsPerOp = float64(wall.Nanoseconds()) / float64(iters)
	snap.SystemThroughput.InstrPerIter = float64(retired) / float64(iters)
	snap.SystemThroughput.EventsPerSec = float64(sys.Engine().Executed()-evStart) / wall.Seconds()

	// Fig 10 suite wall-clock through the concurrent runner.
	start = time.Now()
	r := experiments.Fig10(mode)
	snap.Fig10.NsPerOp = float64(time.Since(start).Nanoseconds())
	snap.Fig10.SiloGeomeanX = r.SpeedupOf("SILO")

	name := fmt.Sprintf("BENCH_%s.json", snap.Date)
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(name, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%s: %.1f ns/event vs heap %.1f; throughput %.2fms/op, fig10 %.2fs, silo geomean %.3fx)\n",
		name, snap.Scheduler, snap.SchedulerProbe.CalendarNsPerEvent, snap.SchedulerProbe.HeapNsPerEvent,
		snap.SystemThroughput.NsPerOp/1e6, snap.Fig10.NsPerOp/1e9, snap.Fig10.SiloGeomeanX)
	return nil
}
