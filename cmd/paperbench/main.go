// Command paperbench regenerates every table and figure of the paper's
// evaluation. By default it runs in quick mode; -full uses paper-scale
// measurement windows. -only selects a single experiment (e.g. -only
// fig10). -parallel bounds the experiment runner's worker pool (0 = all
// cores). -bench-json skips the tables and instead writes a
// BENCH_<date>.json performance snapshot (simulator hot-path throughput
// plus the Fig 10 suite) for tracking the perf trajectory across commits.
//
// -grid switches to batch mode: instead of the paper's figures it runs an
// arbitrary (system x workload x config-override) cell grid and streams
// one JSON-lines record per completed cell to stdout — aggregate IPC,
// per-window IPC distribution with t-based confidence intervals, hit
// rates — in deterministic enumeration order at any -parallel level. See
// grid.go for the spec syntax.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"repro/internal/coherence"
	"repro/internal/dist"
	"repro/internal/experiments"
	"repro/internal/robust"
	"repro/internal/sim"
)

// cliConfig is the parsed flag set.
type cliConfig struct {
	full            bool
	only            string
	parallel        int
	genThreads      int
	benchJSON       bool
	benchBaseline   string
	checkpointDir   string
	checkpointLS    bool
	checkpointGC    int
	grid            string
	scenario        string
	scenarioSystems string
	recordTrace     string
	recordWorkload  string
	recordOps       int
	maskWallMS      bool
	gridWindows     int
	gridConfidence  float64
	gridOut         string
	journal         string
	resume          bool
	resumeShards    string
	cellDeadline    time.Duration
	retries         int
	retryBackoff    time.Duration
	onError         string
	serve           string
	worker          string
	workerID        string
	leaseTTL        time.Duration
	leaseCells      int
	soloAfter       time.Duration
	maxOffline      time.Duration
	cpuprofile      string
	memprofile      string
}

func main() {
	var c cliConfig
	flag.BoolVar(&c.full, "full", false, "use paper-scale measurement windows")
	flag.StringVar(&c.only, "only", "", "run a single experiment (fig1, fig2, fig3, fig4, fig7, fig8, table1, fig10, fig11, fig12, fig13, fig14, fig15, table6, fig16)")
	flag.IntVar(&c.parallel, "parallel", 0, "experiment worker pool size (0 = all cores, 1 = sequential)")
	flag.IntVar(&c.genThreads, "gen-threads", 0, "per-simulation trace-generation goroutines feeding the cores' op rings (0 = synchronous in-thread generation; results are bit-identical at any value)")
	flag.BoolVar(&c.benchJSON, "bench-json", false, "write a BENCH_<date>.json performance snapshot and exit (never clobbers an existing snapshot: a b/c/... suffix is added)")
	flag.StringVar(&c.benchBaseline, "bench-baseline", "", "with -bench-json: compare the new snapshot's probe metrics against this baseline BENCH_*.json and exit non-zero on a >2x regression (the CI gate)")
	flag.StringVar(&c.checkpointDir, "checkpoint-dir", "", "restore warmed systems from this directory when a matching warm-state checkpoint exists, and save one after every cold warm-up (DESIGN.md §11); results are bit-identical either way")
	flag.BoolVar(&c.checkpointLS, "checkpoint-ls", false, "with -checkpoint-dir: list the directory's checkpoints (key, size, age, header metadata) and exit")
	flag.IntVar(&c.checkpointGC, "checkpoint-gc", -1, "with -checkpoint-dir: prune checkpoints older than N days or with a stale/corrupt format header, then exit (0 prunes everything)")
	flag.StringVar(&c.grid, "grid", "", `batch mode: stream a (system x workload x override) grid as JSON-lines, e.g. "systems=Baseline,SILO;workloads=WebSearch,DataServing;overrides=scale=64|llc_mb=64"`)
	flag.StringVar(&c.scenario, "scenario", "", `run a declarative scenario spec file (YAML/JSON; DESIGN.md §14) as a sweep: shorthand for -grid "systems=<-scenario-systems>;scenarios=<file>", so every -grid companion flag (-journal, -resume, -grid-out, -serve, ...) applies`)
	flag.StringVar(&c.scenarioSystems, "scenario-systems", "SILO", "with -scenario: comma-separated system names the scenario runs on")
	flag.StringVar(&c.recordTrace, "record-trace", "", "record a workload address trace to this file (RPT1 format, atomic write) and exit; the recording is core 0 of a 1-core stream at scale 16, seed 1, so replays are reproducible from the flag values alone")
	flag.StringVar(&c.recordWorkload, "record-workload", "WebSearch", "with -record-trace: workload preset to record (scale-out, enterprise and SPEC CPU2006 names)")
	flag.IntVar(&c.recordOps, "record-ops", 200000, "with -record-trace: number of ops to record")
	flag.BoolVar(&c.maskWallMS, "mask-wall-ms", false, `filter stdin to stdout zeroing every "wall_ms" field — the canonical normalizer for byte-comparing grid outputs (replaces ad-hoc sed in CI)`)
	flag.IntVar(&c.gridWindows, "grid-windows", 0, "with -grid: measurement windows per cell (the CI sample count; 0 = default)")
	flag.Float64Var(&c.gridConfidence, "grid-confidence", 0, "with -grid: confidence level for the per-cell IPC interval (0 = 0.95)")
	flag.StringVar(&c.gridOut, "grid-out", "", "with -grid: write the JSON-lines to this file atomically (temp file + rename on completion) instead of stdout")
	flag.StringVar(&c.journal, "journal", "", "with -grid: append each completed cell to this crash-safe journal (fsync'd JSON lines keyed by a content hash of the cell + mode + code version)")
	flag.BoolVar(&c.resume, "resume", false, "with -grid -journal: skip cells already in the journal, re-emitting their records — a killed sweep continues where it stopped")
	flag.DurationVar(&c.cellDeadline, "cell-deadline", 0, "with -grid: per-cell wall-clock watchdog; a cell exceeding it is recorded as timed out (0 = no deadline)")
	flag.IntVar(&c.retries, "retries", 0, "with -grid: deterministic re-attempts for a panicked or timed-out cell before it counts as permanently failed")
	flag.DurationVar(&c.retryBackoff, "retry-backoff", 500*time.Millisecond, "with -grid: base of the capped exponential retry backoff (doubles per retry, capped at 30s)")
	flag.StringVar(&c.onError, "on-error", "fail", "with -grid: fail = abort the sweep on the first permanently failed cell; skip = record a structured error for it and continue")
	flag.StringVar(&c.serve, "serve", "", "distributed sweep coordinator: listen on this address (e.g. :9377) and hand -grid cells to -worker processes as lease batches; output is byte-identical to a single-process -grid run (DESIGN.md §13)")
	flag.StringVar(&c.worker, "worker", "", "distributed sweep worker: join the coordinator at this URL (e.g. http://host:9377), lease cells and stream records back; the grid and failure policy come from the coordinator")
	flag.StringVar(&c.workerID, "worker-id", "", "with -worker: identity used in leases and logs (default host:pid)")
	flag.DurationVar(&c.leaseTTL, "lease-ttl", 10*time.Second, "with -serve: lease lifetime without a heartbeat or report; an expired lease's cells are reassigned to surviving workers")
	flag.IntVar(&c.leaseCells, "lease-cells", 1, "with -serve: cells handed out per lease")
	flag.DurationVar(&c.soloAfter, "solo-after", 0, "with -serve: finish remaining cells in-process when no worker has been heard from for this long (0 = 4x lease-ttl, negative = never)")
	flag.DurationVar(&c.maxOffline, "max-offline", 2*time.Minute, "with -worker: give up after the coordinator has been unreachable this long")
	flag.StringVar(&c.resumeShards, "resume-shards", "", "with -serve -resume: comma-separated worker shard journals to merge into the resume set (salvage from crashed workers)")
	flag.StringVar(&c.cpuprofile, "cpuprofile", "", "write a CPU profile to this file (pprof evidence for perf PRs)")
	flag.StringVar(&c.memprofile, "memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()
	// Work happens in run() so the profile-flushing defers execute before
	// os.Exit.
	os.Exit(run(c))
}

// validateSetFlags rejects nonsensical values of explicitly-set flags at
// parse time with a usage hint, before any simulation work starts — the
// same up-front treatment -parallel/-gen-threads get. flag.Visit walks
// only flags the user actually set, so defaults (e.g. -cell-deadline 0 =
// watchdog disabled) stay legal while an explicit `-cell-deadline 0`
// (which would silently disable the watchdog the user just asked for) is
// refused. Returns a usage message, or "" when everything is sane.
func validateSetFlags(c cliConfig) string {
	msg := ""
	flag.Visit(func(f *flag.Flag) {
		if msg != "" {
			return
		}
		switch f.Name {
		case "cell-deadline":
			if c.cellDeadline <= 0 {
				msg = fmt.Sprintf("-cell-deadline %v is not positive — pass a duration like 90s, or drop the flag to disable the watchdog", c.cellDeadline)
			}
		case "retries":
			if c.retries < 0 {
				msg = fmt.Sprintf("-retries %d is negative (0 = no retries, N = N re-attempts per failed cell)", c.retries)
			}
		case "retry-backoff":
			if c.retryBackoff <= 0 {
				msg = fmt.Sprintf("-retry-backoff %v is not positive — pass a duration like 500ms (it doubles per retry, capped at 30s)", c.retryBackoff)
			}
		case "lease-ttl":
			if c.leaseTTL <= 0 {
				msg = fmt.Sprintf("-lease-ttl %v is not positive — workers heartbeat at a third of it, so it must be a real duration like 10s", c.leaseTTL)
			}
		case "lease-cells":
			if c.leaseCells <= 0 {
				msg = fmt.Sprintf("-lease-cells %d is not positive (N = cells per lease batch)", c.leaseCells)
			}
		case "max-offline":
			if c.maxOffline <= 0 {
				msg = fmt.Sprintf("-max-offline %v is not positive — pass how long a worker should outlive a coordinator outage, like 2m", c.maxOffline)
			}
		case "record-ops":
			if c.recordOps <= 0 {
				msg = fmt.Sprintf("-record-ops %d is not positive (N = ops written to the trace)", c.recordOps)
			}
		case "scenario-systems":
			if strings.TrimSpace(c.scenarioSystems) == "" {
				msg = "-scenario-systems is empty — pass comma-separated system names like SILO,Baseline"
			}
		}
	})
	return msg
}

func run(c cliConfig) int {
	// Reject negative knob values up front with a usage hint (the GridSpec
	// Validate treatment): a negative pool or thread count would otherwise
	// panic deep inside a run, or silently mean something it doesn't.
	if c.parallel < 0 {
		fmt.Fprintf(os.Stderr, "paperbench: -parallel %d is negative (0 = all cores, 1 = sequential, N = N workers)\n", c.parallel)
		return 2
	}
	if c.genThreads < 0 {
		fmt.Fprintf(os.Stderr, "paperbench: -gen-threads %d is negative (0 = synchronous generation, N = N producer goroutines per simulation)\n", c.genThreads)
		return 2
	}
	if msg := validateSetFlags(c); msg != "" {
		fmt.Fprintf(os.Stderr, "paperbench: %s\n", msg)
		return 2
	}
	if c.serve != "" && c.worker != "" {
		fmt.Fprintln(os.Stderr, "paperbench: -serve and -worker are mutually exclusive — a process is a coordinator or a worker, not both")
		return 2
	}
	if c.maskWallMS {
		// A pure stdin->stdout filter: no simulation, no profiles.
		return runMaskWallMS(os.Stdin, os.Stdout)
	}
	if c.recordTrace != "" {
		return runRecordTrace(c)
	}
	if c.scenario != "" {
		if c.grid != "" {
			fmt.Fprintln(os.Stderr, `paperbench: -scenario and -grid are mutually exclusive — scenarios= is a grid axis, so use -grid "...;scenarios=FILE" to combine them with other axes`)
			return 2
		}
		arg, err := scenarioGridArg(c.scenario, c.scenarioSystems)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
			return 2
		}
		c.grid = arg
	}
	if c.cpuprofile != "" {
		f, err := os.Create(c.cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if c.memprofile != "" {
		defer func() {
			f, err := os.Create(c.memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	if c.checkpointLS || c.checkpointGC >= 0 {
		if c.checkpointDir == "" {
			fmt.Fprintln(os.Stderr, "checkpoint: -checkpoint-ls/-checkpoint-gc need -checkpoint-dir <dir>")
			return 2
		}
		if c.checkpointLS {
			return runCheckpointLS(c.checkpointDir)
		}
		return runCheckpointGC(c.checkpointDir, c.checkpointGC)
	}

	mode := experiments.Quick()
	if c.full {
		mode = experiments.Full()
	}
	mode.Parallelism = c.parallel
	mode.GenThreads = c.genThreads
	var ckptStats experiments.CheckpointStats
	if c.checkpointDir != "" {
		mode.CheckpointDir = c.checkpointDir
		mode.Checkpoints = &ckptStats
		defer func() {
			fmt.Fprintf(os.Stderr, "[checkpoint: restored %d, cold %d, saved %d (%d save errors) in %s]\n",
				ckptStats.Hits.Load(), ckptStats.Misses.Load(), ckptStats.Saves.Load(), ckptStats.SaveErrs.Load(), c.checkpointDir)
		}()
	}

	if c.benchJSON {
		if err := writeBenchSnapshot(mode, c.benchBaseline); err != nil {
			fmt.Fprintf(os.Stderr, "bench snapshot: %v\n", err)
			return 1
		}
		return 0
	}

	if c.worker != "" {
		return runWorker(c, mode)
	}
	if c.serve != "" {
		return runServe(c, mode)
	}
	if c.grid != "" {
		return runGrid(c, mode)
	}
	only := c.only

	runners := []struct {
		name string
		fn   func() string
	}{
		{"fig1", func() string { return experiments.Fig1(mode).String() }},
		{"fig2", func() string { return experiments.Fig2(mode).String() }},
		{"fig3", func() string { return experiments.Fig3(mode).String() }},
		{"fig4", func() string { return experiments.Fig4(mode).String() }},
		{"fig7", experiments.Fig7String},
		{"fig8", func() string { return experiments.Fig8().String() }},
		{"table1", experiments.Table1String},
		{"fig10", func() string { return experiments.Fig10(mode).String() }},
		{"fig11", func() string { return experiments.Fig11(mode).String() }},
		{"fig12", func() string { return experiments.Fig12(mode).String() }},
		{"fig13", func() string { return experiments.Fig13(mode).String() }},
		{"fig14", func() string { return experiments.Fig14(mode).String() }},
		{"fig15", func() string { return experiments.Fig15(mode).String() }},
		{"table6", func() string { return experiments.Table6(mode).String() }},
		{"fig16", func() string { return experiments.Fig16(mode).String() }},
	}

	matched := false
	for _, r := range runners {
		if only != "" && !strings.EqualFold(only, r.name) {
			continue
		}
		matched = true
		start := time.Now()
		out := r.fn()
		fmt.Println(out)
		fmt.Fprintf(os.Stderr, "[%s took %v]\n\n", r.name, time.Since(start).Round(time.Millisecond))
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", only)
		return 2
	}
	return 0
}

// runGrid is batch mode with the fault-tolerance layer: per-cell
// isolation (-on-error), retry/backoff (-retries), watchdog
// (-cell-deadline), crash-safe journal + resume (-journal/-resume),
// SIGINT/SIGTERM graceful shutdown, and atomic output (-grid-out).
func runGrid(c cliConfig, mode experiments.Mode) int {
	if c.gridConfidence != 0 && (c.gridConfidence <= 0 || c.gridConfidence >= 1) {
		fmt.Fprintf(os.Stderr, "grid: -grid-confidence %v outside (0,1) — e.g. 0.95, not a percentage\n", c.gridConfidence)
		return 2
	}
	if c.gridWindows < 0 || sim.Cycle(c.gridWindows) > mode.MeasureCycles {
		fmt.Fprintf(os.Stderr, "grid: -grid-windows %d outside [0, %d] (each window needs at least one of the mode's %d measure cycles)\n",
			c.gridWindows, mode.MeasureCycles, mode.MeasureCycles)
		return 2
	}
	policy, err := robust.ParseFailPolicy(c.onError)
	if err != nil {
		fmt.Fprintf(os.Stderr, "grid: -on-error: %v\n", err)
		return 2
	}
	if c.retries < 0 {
		fmt.Fprintf(os.Stderr, "grid: -retries %d is negative\n", c.retries)
		return 2
	}
	if c.resume && c.journal == "" {
		fmt.Fprintf(os.Stderr, "grid: -resume needs -journal <file> (the journal is what a resumed sweep reads)\n")
		return 2
	}
	g, err := parseGridSpec(c.grid, c.gridWindows, c.gridConfidence)
	if err != nil {
		fmt.Fprintf(os.Stderr, "grid: %v\n", err)
		return 2
	}

	opts := experiments.GridOptions{
		OnError:      policy,
		Retries:      c.retries,
		Backoff:      robust.Backoff{Base: c.retryBackoff, Cap: 30 * time.Second},
		CellDeadline: c.cellDeadline,
		Resume:       c.resume,
	}
	if c.journal != "" {
		j, err := robust.OpenJournal(c.journal)
		if err != nil {
			fmt.Fprintf(os.Stderr, "grid: %v\n", err)
			return 1
		}
		defer j.Close()
		if c.resume {
			if d := j.DroppedBytes(); d > 0 {
				fmt.Fprintf(os.Stderr, "[grid: journal %s: dropped %d bytes of torn tail]\n", c.journal, d)
			}
			fmt.Fprintf(os.Stderr, "[grid: resuming — %d journaled cell(s)]\n", j.Len())
		} else if err := j.Clear(); err != nil {
			// Without -resume the sweep starts fresh; stale entries must
			// not linger (they would match on an identical re-run).
			fmt.Fprintf(os.Stderr, "grid: %v\n", err)
			return 1
		}
		opts.Journal = j
	}

	// SIGINT/SIGTERM cancel the sweep gracefully: workers stop claiming
	// cells, in-flight cells drain (and journal), emitted output stands.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	out := os.Stdout
	tmpName := ""
	if c.gridOut != "" {
		// Stream into a same-directory temp file; only a completed sweep
		// is renamed into place, so a crash never leaves a truncated
		// output under the real name.
		tmp, err := os.CreateTemp(filepath.Dir(c.gridOut), filepath.Base(c.gridOut)+".tmp-*")
		if err != nil {
			fmt.Fprintf(os.Stderr, "grid: %v\n", err)
			return 1
		}
		out = tmp
		tmpName = tmp.Name()
		defer func() {
			if tmpName != "" { // not committed: discard the partial file
				tmp.Close()
				os.Remove(tmpName)
			}
		}()
	}

	start := time.Now()
	emitted, failed := 0, 0
	enc := json.NewEncoder(out)
	var encErr error
	err = experiments.RunGridStreamOpts(ctx, g, mode, opts, func(r experiments.GridCellResult) bool {
		if encErr = enc.Encode(r); encErr != nil {
			return false
		}
		emitted++
		if r.Error != nil {
			failed++
		}
		return true
	})
	if encErr != nil {
		fmt.Fprintf(os.Stderr, "grid: %v\n", encErr)
		return 1
	}
	if err != nil {
		if errors.Is(err, context.Canceled) {
			hint := ""
			if c.journal != "" {
				hint = fmt.Sprintf("; journaled progress survives — rerun with -journal %s -resume", c.journal)
			}
			fmt.Fprintf(os.Stderr, "grid: interrupted after %d of %d cells%s\n", emitted, g.Cells(), hint)
			return 130
		}
		fmt.Fprintf(os.Stderr, "grid: %v\n", err)
		return 1
	}
	if c.gridOut != "" {
		if err := out.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "grid: %v\n", err)
			return 1
		}
		if err := robust.CommitFile(tmpName, c.gridOut); err != nil {
			fmt.Fprintf(os.Stderr, "grid: %v\n", err)
			return 1
		}
		tmpName = ""
	}
	failNote := ""
	if failed > 0 {
		failNote = fmt.Sprintf(", %d failed (structured error records)", failed)
	}
	fmt.Fprintf(os.Stderr, "[grid: %d cells in %v%s]\n", g.Cells(), time.Since(start).Round(time.Millisecond), failNote)
	return 0
}

// benchSnapshot is the schema of BENCH_<date>.json. ns/op figures follow
// the go test -bench convention so snapshots are comparable to
// BenchmarkSystemSimulationThroughput and BenchmarkFig10ScaleOut output.
type benchSnapshot struct {
	Date        string `json:"date"`
	Mode        string `json:"mode"` // quick or full; full fig10 numbers are not comparable to quick ones
	GoMaxProcs  int    `json:"go_max_procs"`
	Parallelism int    `json:"parallelism"`
	// Host records the machine the snapshot was measured on, so
	// cross-machine comparisons (dev box vs CI runner phases) carry their
	// own context instead of relying on CHANGES.md folklore. NumCPU also
	// says whether the gen_overlap ring numbers could show a win at all
	// (a 1-CPU host can only show the handoff overhead).
	Host struct {
		NumCPU     int    `json:"num_cpu"`
		GoMaxProcs int    `json:"go_max_procs"`
		GoVersion  string `json:"go_version"`
	} `json:"host"`
	// Scheduler is the engine's event-queue implementation (the default for
	// every system the snapshot measures).
	Scheduler string `json:"scheduler"`

	// SchedulerProbe compares the event-queue implementations on the
	// canonical event mix (experiments.RunSchedulerProbe), mirroring
	// BenchmarkSchedulerProbeCalendar/Heap.
	SchedulerProbe struct {
		CalendarNsPerEvent float64 `json:"calendar_ns_per_event"`
		HeapNsPerEvent     float64 `json:"heap_ns_per_event"`
	} `json:"scheduler_probe"`

	// ArrayProbe times the cache-array fast path on the canonical L1 +
	// direct-mapped-vault mix (experiments.RunArrayProbe), mirroring
	// BenchmarkArrayProbe.
	ArrayProbe struct {
		NsPerAccess float64 `json:"ns_per_access"`
	} `json:"array_probe"`

	// CoherenceTable compares the coherence substrates' store
	// implementations on the canonical directory + snoop cycle
	// (experiments.RunCoherenceTableProbe), mirroring
	// BenchmarkCoherenceTableQuot/Open/Map. BytesPerSlot is the inline
	// slot footprint of the default store for the measured 16-core
	// systems (8 B for the quotient-compressed table, DESIGN.md §8).
	CoherenceTable struct {
		QuotNsPerOp  float64 `json:"quot_ns_per_op"`
		OpenNsPerOp  float64 `json:"open_ns_per_op"`
		MapNsPerOp   float64 `json:"map_ns_per_op"`
		BytesPerSlot int     `json:"bytes_per_slot"`
	} `json:"coherence_table"`

	// StreamProbe compares trace generation per op through the serial
	// (Next) and batched (NextBatch, what the cpu core consumes) paths
	// (experiments.RunStreamProbe), mirroring BenchmarkStreamProbe*.
	StreamProbe struct {
		SerialNsPerOp  float64 `json:"serial_ns_per_op"`
		BatchedNsPerOp float64 `json:"batched_ns_per_op"`
	} `json:"stream_probe"`

	// SystemThroughput mirrors BenchmarkSystemSimulationThroughput: a
	// warmed 16-core SILO system running Web Search, measured in 10K-cycle
	// windows over three ~1s rounds. Iters and NsPerOp describe the best
	// round (like the probes, best-of sheds scheduling noise), so
	// Iters*NsPerOp reconstructs that round's wall time; InstrPerIter,
	// EventsPerSec and AllocsPerOp (the steady-state allocation guard)
	// are computed over all rounds.
	SystemThroughput struct {
		Iters        int     `json:"iters"`
		NsPerOp      float64 `json:"ns_per_op"`
		InstrPerIter float64 `json:"instr_per_iter"`
		EventsPerSec float64 `json:"events_per_sec"`
		AllocsPerOp  float64 `json:"allocs_per_op"`
	} `json:"system_throughput"`

	// SystemThroughputPaperScale measures the same throughput window at
	// paper-scale footprints (experiments.PaperScales; Scale 1 is the
	// paper's 4GB aggregate vault capacity) — the multi-million-entry
	// line-table regime the compact coherence slots target (DESIGN.md
	// §8-§9). Each point records the table occupancy it measured.
	SystemThroughputPaperScale []experiments.PaperScalePoint `json:"system_throughput_paperscale"`

	// GenOverlap compares synchronous and off-thread trace generation
	// (experiments.RunGenOverlapProbe) at the paper-scale points: cold
	// warm-up wall time and timed-phase ns/op, serial vs ring. The ring
	// numbers are regression-gated like every probe; interpret them
	// against Host.NumCPU.
	GenOverlap []experiments.GenOverlapPoint `json:"gen_overlap"`

	// DistSweep measures the distributed runner end to end
	// (dist.RunSweepProbe): coordinator + N in-process workers over real
	// loopback HTTP on a fixed 12-cell grid, at 1 and 2 workers.
	// ns_per_cell is regression-gated per worker count; the 1-vs-2
	// spread shows whether lease/report overhead swamps the parallelism
	// win.
	DistSweep []dist.SweepPoint `json:"dist_sweep"`

	// Fig10 is one Fig 10 suite run (5 systems x 8 workloads) through the
	// concurrent runner, under the selected mode (see the "mode" field —
	// quick and full snapshots are not comparable to each other).
	Fig10 struct {
		NsPerOp      float64 `json:"ns_per_op"`
		SiloGeomeanX float64 `json:"silo_geomean_x"`
	} `json:"fig10"`
}

// writeBenchSnapshot measures the headline performance numbers and writes
// them to BENCH_<date>.json in the current directory (suffixing b/c/...
// when a snapshot for the date already exists, so the trajectory keeps
// every point; see snapshotName for why the suffixes are letters). With a baseline it then gates: any probe metric more than
// benchRegressionFactor slower than the baseline's fails the run.
func writeBenchSnapshot(mode experiments.Mode, baseline string) error {
	var snap benchSnapshot
	snap.Date = time.Now().Format("2006-01-02")
	snap.Mode = mode.Name
	snap.GoMaxProcs = runtime.GOMAXPROCS(0)
	snap.Parallelism = mode.Parallelism
	snap.Host.NumCPU = runtime.NumCPU()
	snap.Host.GoMaxProcs = runtime.GOMAXPROCS(0)
	snap.Host.GoVersion = runtime.Version()
	snap.Scheduler = sim.NewEngine().SchedulerName()

	// Per-op probe timing: best of three runs to shed scheduling noise.
	bestOf := func(run func() uint64) float64 {
		best := math.Inf(1)
		for r := 0; r < 3; r++ {
			t0 := time.Now()
			ops := run()
			if ns := float64(time.Since(t0).Nanoseconds()) / float64(ops); ns < best {
				best = ns
			}
		}
		return best
	}

	// Event-queue comparison on the canonical mix.
	snap.SchedulerProbe.CalendarNsPerEvent = bestOf(func() uint64 {
		return experiments.RunSchedulerProbe(sim.CalendarQueue)
	})
	snap.SchedulerProbe.HeapNsPerEvent = bestOf(func() uint64 {
		return experiments.RunSchedulerProbe(sim.BinaryHeap)
	})
	snap.ArrayProbe.NsPerAccess = bestOf(experiments.RunArrayProbe)
	snap.CoherenceTable.QuotNsPerOp = bestOf(func() uint64 {
		return experiments.RunCoherenceTableProbe(coherence.QuotTable)
	})
	snap.CoherenceTable.OpenNsPerOp = bestOf(func() uint64 {
		return experiments.RunCoherenceTableProbe(coherence.OpenTable)
	})
	snap.CoherenceTable.MapNsPerOp = bestOf(func() uint64 {
		return experiments.RunCoherenceTableProbe(coherence.MapStore)
	})
	snap.CoherenceTable.BytesPerSlot = coherence.DefaultStore(16).BytesPerSlot()
	snap.StreamProbe.SerialNsPerOp = bestOf(func() uint64 { return experiments.RunStreamProbe(false) })
	snap.StreamProbe.BatchedNsPerOp = bestOf(func() uint64 { return experiments.RunStreamProbe(true) })

	// Hot-path throughput: the same warmed system and window as
	// BenchmarkSystemSimulationThroughput, best of three ~1s rounds.
	sys := experiments.ThroughputSystem()
	const minWall = time.Second
	var (
		iters   int
		retired uint64
		memBeg  runtime.MemStats
		memEnd  runtime.MemStats
	)
	evStart := sys.Engine().Executed()
	evWall := time.Duration(0)
	runtime.ReadMemStats(&memBeg)
	best := math.Inf(1)
	bestIters := 0
	for round := 0; round < 3; round++ {
		roundIters := 0
		start := time.Now()
		for time.Since(start) < minWall {
			m := sys.Run(0, experiments.ThroughputWindow)
			retired += m.Retired
			iters++
			roundIters++
		}
		wall := time.Since(start)
		evWall += wall
		if ns := float64(wall.Nanoseconds()) / float64(roundIters); ns < best {
			best = ns
			bestIters = roundIters
		}
	}
	runtime.ReadMemStats(&memEnd)
	snap.SystemThroughput.Iters = bestIters
	snap.SystemThroughput.NsPerOp = best
	snap.SystemThroughput.InstrPerIter = float64(retired) / float64(iters)
	snap.SystemThroughput.EventsPerSec = float64(sys.Engine().Executed()-evStart) / evWall.Seconds()
	snap.SystemThroughput.AllocsPerOp = float64(memEnd.Mallocs-memBeg.Mallocs) / float64(iters)

	// Paper-scale throughput points (warm-up dominates; measured after the
	// Scale-32 probe so the two share no warm state). With -checkpoint-dir
	// the warm state restores from a prior snapshot run's checkpoint,
	// recorded per point as restore_sec/checkpoint_hit.
	for _, scale := range experiments.PaperScales {
		snap.SystemThroughputPaperScale = append(snap.SystemThroughputPaperScale,
			experiments.RunPaperScaleProbeCkpt(scale, mode.CheckpointDir, mode.Checkpoints))
	}

	// Off-thread generation overlap at the same scales: cold builds by
	// design (warm-up time is half the measurement), so no checkpoints.
	// The thread count leaves one CPU for the timing thread and caps at 4
	// (16 streams over 4 producers already amortizes the handoff).
	genThreads := runtime.NumCPU() - 1
	if genThreads < 1 {
		genThreads = 1
	}
	if genThreads > 4 {
		genThreads = 4
	}
	for _, scale := range experiments.PaperScales {
		snap.GenOverlap = append(snap.GenOverlap, experiments.RunGenOverlapProbe(scale, genThreads))
	}

	// Distributed sweep throughput at 1 and 2 workers.
	for _, workers := range []int{1, 2} {
		p, err := dist.RunSweepProbe(context.Background(), workers)
		if err != nil {
			return fmt.Errorf("dist_sweep probe (%d workers): %w", workers, err)
		}
		snap.DistSweep = append(snap.DistSweep, p)
	}

	// Fig 10 suite wall-clock through the concurrent runner.
	figStart := time.Now()
	r := experiments.Fig10(mode)
	snap.Fig10.NsPerOp = float64(time.Since(figStart).Nanoseconds())
	snap.Fig10.SiloGeomeanX = r.SpeedupOf("SILO")

	name := snapshotName(snap.Date)
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	// Atomic (temp + rename): a crash mid-write must never leave a
	// truncated snapshot — the CI baseline gate picks the newest committed
	// snapshot with `sort | tail -1` and would be poisoned by a torn one.
	if err := robust.WriteFileAtomic(name, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%s: %.1f ns/event vs heap %.1f; array %.1f ns/access; table quot %.1f / open %.1f / map %.1f ns/op, %d B/slot; stream %.1f serial vs %.1f batched ns/op; throughput %.2fms/op %.1f allocs/op, fig10 %.2fs, silo geomean %.7fx)\n",
		name, snap.Scheduler, snap.SchedulerProbe.CalendarNsPerEvent, snap.SchedulerProbe.HeapNsPerEvent,
		snap.ArrayProbe.NsPerAccess,
		snap.CoherenceTable.QuotNsPerOp, snap.CoherenceTable.OpenNsPerOp, snap.CoherenceTable.MapNsPerOp,
		snap.CoherenceTable.BytesPerSlot,
		snap.StreamProbe.SerialNsPerOp, snap.StreamProbe.BatchedNsPerOp,
		snap.SystemThroughput.NsPerOp/1e6, snap.SystemThroughput.AllocsPerOp, snap.Fig10.NsPerOp/1e9, snap.Fig10.SiloGeomeanX)
	for _, p := range snap.SystemThroughputPaperScale {
		warmNote := fmt.Sprintf("warm %.1fs", p.WarmupSec)
		if p.CheckpointHit {
			warmNote = fmt.Sprintf("restored %.2fs", p.RestoreSec)
		}
		fmt.Fprintf(os.Stderr, "  paperscale scale=%d: %.2fms/op, %.0f instr/iter, %d table entries (%.0f MB inline, %s)\n",
			p.Scale, p.NsPerOp/1e6, p.InstrPerIter, p.LineTableEntries, float64(p.LineTableBytes)/(1<<20), warmNote)
	}
	for _, p := range snap.GenOverlap {
		fmt.Fprintf(os.Stderr, "  gen_overlap scale=%d gen-threads=%d: warm %.1fs -> %.1fs, measure %.2fms/op -> %.2fms/op (%d host CPUs)\n",
			p.Scale, p.GenThreads, p.SerialWarmSec, p.RingWarmSec, p.SerialNsPerOp/1e6, p.RingNsPerOp/1e6, snap.Host.NumCPU)
	}
	for _, p := range snap.DistSweep {
		fmt.Fprintf(os.Stderr, "  dist_sweep workers=%d: %d cells, %.2fms/cell, %.1f cells/sec\n",
			p.Workers, p.Cells, p.NsPerCell/1e6, p.CellsPerSec)
	}

	if baseline != "" {
		return gateAgainstBaseline(&snap, baseline)
	}
	return nil
}

// snapshotName returns BENCH_<date>.json, or BENCH_<date>b.json,
// BENCH_<date>c.json, ... when snapshots for the date already exist —
// same-day snapshots (e.g. before/after within one PR) must both survive
// so the perf trajectory stays complete. Suffixes keep plain
// lexicographic sort chronological (see snapshotSuffix), which the CI
// regression gate relies on to pick the newest committed snapshot with
// `ls | sort | tail -1`.
func snapshotName(date string) string {
	for k := 0; ; k++ {
		name := fmt.Sprintf("BENCH_%s%s.json", date, snapshotSuffix(k))
		_, err := os.Stat(name)
		if os.IsNotExist(err) {
			return name
		}
		if err != nil {
			// A persistent stat failure (EACCES, ENAMETOOLONG, ...) would
			// recur for every suffix; fail instead of spinning forever.
			panic(fmt.Sprintf("paperbench: stat %s: %v", name, err))
		}
	}
}

// snapshotSuffix returns the k-th same-day suffix: "", b, c, ..., z, zb,
// ..., zz, zzb, ... Every overflow level extends the previous maximal
// suffix with another letter, and '.' sorts before any letter, so plain
// lexicographic filename sort stays chronological for any number of
// same-day snapshots — the >26-per-day case must neither collide nor
// mis-sort in the CI gate's newest-snapshot selection
// (TestSnapshotSuffixSortsChronologically).
func snapshotSuffix(k int) string {
	if k == 0 {
		return ""
	}
	return strings.Repeat("z", (k-1)/25) + string(rune('b'+(k-1)%25))
}

// benchRegressionFactor is the CI gate's tolerance: probe metrics may vary
// a lot across runner generations and machine phases, so only a >2x
// slowdown — a real algorithmic regression, not noise — fails the build.
const benchRegressionFactor = 2.0

// gateAgainstBaseline compares the fresh snapshot's probe metrics against
// a committed baseline snapshot and errors on any >2x regression. Metrics
// the (older) baseline lacks are skipped, so the gate tightens as the
// schema grows.
func gateAgainstBaseline(snap *benchSnapshot, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base benchSnapshot
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	checks := []struct {
		name      string
		old, new_ float64
	}{
		{"scheduler_probe.calendar_ns_per_event", base.SchedulerProbe.CalendarNsPerEvent, snap.SchedulerProbe.CalendarNsPerEvent},
		{"array_probe.ns_per_access", base.ArrayProbe.NsPerAccess, snap.ArrayProbe.NsPerAccess},
		{"coherence_table.quot_ns_per_op", base.CoherenceTable.QuotNsPerOp, snap.CoherenceTable.QuotNsPerOp},
		{"coherence_table.open_ns_per_op", base.CoherenceTable.OpenNsPerOp, snap.CoherenceTable.OpenNsPerOp},
		{"stream_probe.serial_ns_per_op", base.StreamProbe.SerialNsPerOp, snap.StreamProbe.SerialNsPerOp},
		{"stream_probe.batched_ns_per_op", base.StreamProbe.BatchedNsPerOp, snap.StreamProbe.BatchedNsPerOp},
		{"system_throughput.ns_per_op", base.SystemThroughput.NsPerOp, snap.SystemThroughput.NsPerOp},
	}
	// Paper-scale points gate per scale; a scale the baseline never
	// measured is skipped, like any other metric absent from an older
	// schema.
	for _, p := range snap.SystemThroughputPaperScale {
		for _, bp := range base.SystemThroughputPaperScale {
			if bp.Scale == p.Scale {
				checks = append(checks, struct {
					name      string
					old, new_ float64
				}{fmt.Sprintf("system_throughput_paperscale[scale=%d].ns_per_op", p.Scale), bp.NsPerOp, p.NsPerOp})
			}
		}
	}
	// The ring path's timed-phase cost gates per scale too: an off-thread
	// generation regression (handoff cost, lost overlap) must fail CI even
	// while the synchronous default masks it everywhere else.
	for _, p := range snap.GenOverlap {
		for _, bp := range base.GenOverlap {
			if bp.Scale == p.Scale {
				checks = append(checks, struct {
					name      string
					old, new_ float64
				}{fmt.Sprintf("gen_overlap[scale=%d].ring_ns_per_op", p.Scale), bp.RingNsPerOp, p.RingNsPerOp})
			}
		}
	}
	// The distributed runner gates per worker count: a protocol-overhead
	// regression (chattier leases, slower merge) shows up here even when
	// every single-process probe is clean.
	for _, p := range snap.DistSweep {
		for _, bp := range base.DistSweep {
			if bp.Workers == p.Workers {
				checks = append(checks, struct {
					name      string
					old, new_ float64
				}{fmt.Sprintf("dist_sweep[workers=%d].ns_per_cell", p.Workers), bp.NsPerCell, p.NsPerCell})
			}
		}
	}
	bad := 0
	for _, c := range checks {
		if c.old <= 0 { // metric absent from the older baseline schema
			continue
		}
		ratio := c.new_ / c.old
		if ratio > benchRegressionFactor {
			fmt.Fprintf(os.Stderr, "REGRESSION %s: %.2f -> %.2f ns (%.2fx > %.1fx tolerance vs %s)\n",
				c.name, c.old, c.new_, ratio, benchRegressionFactor, path)
			bad++
		} else {
			fmt.Fprintf(os.Stderr, "gate ok %s: %.2f -> %.2f ns (%.2fx)\n", c.name, c.old, c.new_, ratio)
		}
	}
	if bad > 0 {
		return fmt.Errorf("%d probe metric(s) regressed >%.1fx against %s", bad, benchRegressionFactor, path)
	}
	return nil
}
