// Command paperbench regenerates every table and figure of the paper's
// evaluation. By default it runs in quick mode; -full uses paper-scale
// measurement windows. -only selects a single experiment (e.g. -only
// fig10). -parallel bounds the experiment runner's worker pool (0 = all
// cores). -bench-json skips the tables and instead writes a
// BENCH_<date>.json performance snapshot (simulator hot-path throughput
// plus the Fig 10 suite) for tracking the perf trajectory across commits.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/coherence"
	"repro/internal/experiments"
	"repro/internal/sim"
)

func main() {
	full := flag.Bool("full", false, "use paper-scale measurement windows")
	only := flag.String("only", "", "run a single experiment (fig1, fig2, fig3, fig4, fig7, fig8, table1, fig10, fig11, fig12, fig13, fig14, fig15, table6, fig16)")
	parallel := flag.Int("parallel", 0, "experiment worker pool size (0 = all cores, 1 = sequential)")
	benchJSON := flag.Bool("bench-json", false, "write a BENCH_<date>.json performance snapshot and exit")
	flag.Parse()

	mode := experiments.Quick()
	if *full {
		mode = experiments.Full()
	}
	mode.Parallelism = *parallel

	if *benchJSON {
		if err := writeBenchSnapshot(mode); err != nil {
			fmt.Fprintf(os.Stderr, "bench snapshot: %v\n", err)
			os.Exit(1)
		}
		return
	}

	runners := []struct {
		name string
		fn   func() string
	}{
		{"fig1", func() string { return experiments.Fig1(mode).String() }},
		{"fig2", func() string { return experiments.Fig2(mode).String() }},
		{"fig3", func() string { return experiments.Fig3(mode).String() }},
		{"fig4", func() string { return experiments.Fig4(mode).String() }},
		{"fig7", experiments.Fig7String},
		{"fig8", func() string { return experiments.Fig8().String() }},
		{"table1", experiments.Table1String},
		{"fig10", func() string { return experiments.Fig10(mode).String() }},
		{"fig11", func() string { return experiments.Fig11(mode).String() }},
		{"fig12", func() string { return experiments.Fig12(mode).String() }},
		{"fig13", func() string { return experiments.Fig13(mode).String() }},
		{"fig14", func() string { return experiments.Fig14(mode).String() }},
		{"fig15", func() string { return experiments.Fig15(mode).String() }},
		{"table6", func() string { return experiments.Table6(mode).String() }},
		{"fig16", func() string { return experiments.Fig16(mode).String() }},
	}

	matched := false
	for _, r := range runners {
		if *only != "" && !strings.EqualFold(*only, r.name) {
			continue
		}
		matched = true
		start := time.Now()
		out := r.fn()
		fmt.Println(out)
		fmt.Fprintf(os.Stderr, "[%s took %v]\n\n", r.name, time.Since(start).Round(time.Millisecond))
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *only)
		os.Exit(2)
	}
}

// benchSnapshot is the schema of BENCH_<date>.json. ns/op figures follow
// the go test -bench convention so snapshots are comparable to
// BenchmarkSystemSimulationThroughput and BenchmarkFig10ScaleOut output.
type benchSnapshot struct {
	Date        string `json:"date"`
	Mode        string `json:"mode"` // quick or full; full fig10 numbers are not comparable to quick ones
	GoMaxProcs  int    `json:"go_max_procs"`
	Parallelism int    `json:"parallelism"`
	// Scheduler is the engine's event-queue implementation (the default for
	// every system the snapshot measures).
	Scheduler string `json:"scheduler"`

	// SchedulerProbe compares the event-queue implementations on the
	// canonical event mix (experiments.RunSchedulerProbe), mirroring
	// BenchmarkSchedulerProbeCalendar/Heap.
	SchedulerProbe struct {
		CalendarNsPerEvent float64 `json:"calendar_ns_per_event"`
		HeapNsPerEvent     float64 `json:"heap_ns_per_event"`
	} `json:"scheduler_probe"`

	// ArrayProbe times the cache-array fast path on the canonical L1 +
	// direct-mapped-vault mix (experiments.RunArrayProbe), mirroring
	// BenchmarkArrayProbe.
	ArrayProbe struct {
		NsPerAccess float64 `json:"ns_per_access"`
	} `json:"array_probe"`

	// CoherenceTable compares the coherence substrates' store
	// implementations on the canonical directory + snoop cycle
	// (experiments.RunCoherenceTableProbe), mirroring
	// BenchmarkCoherenceTableOpen/Map.
	CoherenceTable struct {
		OpenNsPerOp float64 `json:"open_ns_per_op"`
		MapNsPerOp  float64 `json:"map_ns_per_op"`
	} `json:"coherence_table"`

	// SystemThroughput mirrors BenchmarkSystemSimulationThroughput: a
	// warmed 16-core SILO system running Web Search, measured in 10K-cycle
	// windows over three ~1s rounds. Iters and NsPerOp describe the best
	// round (like the probes, best-of sheds scheduling noise), so
	// Iters*NsPerOp reconstructs that round's wall time; InstrPerIter,
	// EventsPerSec and AllocsPerOp (the steady-state allocation guard)
	// are computed over all rounds.
	SystemThroughput struct {
		Iters        int     `json:"iters"`
		NsPerOp      float64 `json:"ns_per_op"`
		InstrPerIter float64 `json:"instr_per_iter"`
		EventsPerSec float64 `json:"events_per_sec"`
		AllocsPerOp  float64 `json:"allocs_per_op"`
	} `json:"system_throughput"`

	// Fig10 is one Fig 10 suite run (5 systems x 8 workloads) through the
	// concurrent runner, under the selected mode (see the "mode" field —
	// quick and full snapshots are not comparable to each other).
	Fig10 struct {
		NsPerOp      float64 `json:"ns_per_op"`
		SiloGeomeanX float64 `json:"silo_geomean_x"`
	} `json:"fig10"`
}

// writeBenchSnapshot measures the two headline performance numbers and
// writes them to BENCH_<date>.json in the current directory.
func writeBenchSnapshot(mode experiments.Mode) error {
	var snap benchSnapshot
	snap.Date = time.Now().Format("2006-01-02")
	snap.Mode = mode.Name
	snap.GoMaxProcs = runtime.GOMAXPROCS(0)
	snap.Parallelism = mode.Parallelism
	snap.Scheduler = sim.NewEngine().SchedulerName()

	// Per-op probe timing: best of three runs to shed scheduling noise.
	bestOf := func(run func() uint64) float64 {
		best := math.Inf(1)
		for r := 0; r < 3; r++ {
			t0 := time.Now()
			ops := run()
			if ns := float64(time.Since(t0).Nanoseconds()) / float64(ops); ns < best {
				best = ns
			}
		}
		return best
	}

	// Event-queue comparison on the canonical mix.
	snap.SchedulerProbe.CalendarNsPerEvent = bestOf(func() uint64 {
		return experiments.RunSchedulerProbe(sim.CalendarQueue)
	})
	snap.SchedulerProbe.HeapNsPerEvent = bestOf(func() uint64 {
		return experiments.RunSchedulerProbe(sim.BinaryHeap)
	})
	snap.ArrayProbe.NsPerAccess = bestOf(experiments.RunArrayProbe)
	snap.CoherenceTable.OpenNsPerOp = bestOf(func() uint64 {
		return experiments.RunCoherenceTableProbe(coherence.OpenTable)
	})
	snap.CoherenceTable.MapNsPerOp = bestOf(func() uint64 {
		return experiments.RunCoherenceTableProbe(coherence.MapStore)
	})

	// Hot-path throughput: the same warmed system and window as
	// BenchmarkSystemSimulationThroughput, best of three ~1s rounds.
	sys := experiments.ThroughputSystem()
	const minWall = time.Second
	var (
		iters   int
		retired uint64
		memBeg  runtime.MemStats
		memEnd  runtime.MemStats
	)
	evStart := sys.Engine().Executed()
	evWall := time.Duration(0)
	runtime.ReadMemStats(&memBeg)
	best := math.Inf(1)
	bestIters := 0
	for round := 0; round < 3; round++ {
		roundIters := 0
		start := time.Now()
		for time.Since(start) < minWall {
			m := sys.Run(0, experiments.ThroughputWindow)
			retired += m.Retired
			iters++
			roundIters++
		}
		wall := time.Since(start)
		evWall += wall
		if ns := float64(wall.Nanoseconds()) / float64(roundIters); ns < best {
			best = ns
			bestIters = roundIters
		}
	}
	runtime.ReadMemStats(&memEnd)
	snap.SystemThroughput.Iters = bestIters
	snap.SystemThroughput.NsPerOp = best
	snap.SystemThroughput.InstrPerIter = float64(retired) / float64(iters)
	snap.SystemThroughput.EventsPerSec = float64(sys.Engine().Executed()-evStart) / evWall.Seconds()
	snap.SystemThroughput.AllocsPerOp = float64(memEnd.Mallocs-memBeg.Mallocs) / float64(iters)

	// Fig 10 suite wall-clock through the concurrent runner.
	figStart := time.Now()
	r := experiments.Fig10(mode)
	snap.Fig10.NsPerOp = float64(time.Since(figStart).Nanoseconds())
	snap.Fig10.SiloGeomeanX = r.SpeedupOf("SILO")

	name := fmt.Sprintf("BENCH_%s.json", snap.Date)
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(name, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%s: %.1f ns/event vs heap %.1f; array %.1f ns/access; table %.1f vs map %.1f ns/op; throughput %.2fms/op %.1f allocs/op, fig10 %.2fs, silo geomean %.7fx)\n",
		name, snap.Scheduler, snap.SchedulerProbe.CalendarNsPerEvent, snap.SchedulerProbe.HeapNsPerEvent,
		snap.ArrayProbe.NsPerAccess, snap.CoherenceTable.OpenNsPerOp, snap.CoherenceTable.MapNsPerOp,
		snap.SystemThroughput.NsPerOp/1e6, snap.SystemThroughput.AllocsPerOp, snap.Fig10.NsPerOp/1e9, snap.Fig10.SiloGeomeanX)
	return nil
}
