package main

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
)

// Regression for the snapshot-name scheme: writing more than 26 snapshots
// in one day must neither collide nor mis-sort in the CI gate's
// newest-snapshot selection (`ls BENCH_*.json | sort | tail -1`). The old
// scheme panicked at the 27th snapshot; the fix extends the suffix with
// another letter ("z" -> "zb" -> ... -> "zz" -> "zzb"), which stays
// lexicographically increasing because '.' sorts before any letter.
func TestSnapshotSuffixSortsChronologically(t *testing.T) {
	t.Chdir(t.TempDir())
	const n = 60 // two overflow levels past the 26-per-day boundary
	var names []string
	seen := make(map[string]bool)
	for k := 0; k < n; k++ {
		name := snapshotName("2026-07-29")
		if seen[name] {
			t.Fatalf("snapshot %d collides: %s", k, name)
		}
		seen[name] = true
		names = append(names, name)
		if err := os.WriteFile(name, []byte("{}\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	for i := range names {
		if names[i] != sorted[i] {
			t.Fatalf("creation order and sort order diverge at %d: created %s, sorted %s", i, names[i], sorted[i])
		}
	}
	// The gate picks the newest: the last-written snapshot must win the
	// sort.
	if sorted[len(sorted)-1] != names[n-1] {
		t.Fatalf("newest snapshot is %s but sort picks %s", names[n-1], sorted[len(sorted)-1])
	}
}

func TestSnapshotSuffixShape(t *testing.T) {
	cases := []struct {
		k    int
		want string
	}{
		{0, ""}, {1, "b"}, {2, "c"}, {25, "z"},
		{26, "zb"}, {50, "zz"}, {51, "zzb"}, {75, "zzz"}, {76, "zzzb"},
	}
	for _, c := range cases {
		if got := snapshotSuffix(c.k); got != c.want {
			t.Errorf("snapshotSuffix(%d) = %q, want %q", c.k, got, c.want)
		}
	}
}

// -checkpoint-gc must refuse while another process (here: another
// goroutine's shared lock, same flock semantics) is mid-restore on the
// shared directory, leaving every checkpoint in place — the directed
// test for the concurrent-reader guard. After the reader releases, the
// same GC pass prunes normally.
func TestCheckpointGCRefusesWhileDirInUse(t *testing.T) {
	dir := t.TempDir()
	// A fake stale checkpoint: bad header, so an unguarded GC would
	// prune it unconditionally.
	path := filepath.Join(dir, "deadbeef.ckpt")
	if err := os.WriteFile(path, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}

	oldWait := gcLockWait
	gcLockWait = 200 * time.Millisecond
	defer func() { gcLockWait = oldWait }()

	unlock, err := checkpoint.LockDirShared(dir)
	if err != nil {
		t.Fatal(err)
	}
	if code := runCheckpointGC(dir, 0); code == 0 {
		t.Fatal("gc succeeded while a restore held the directory lock")
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("refused gc still removed the checkpoint: %v", err)
	}

	unlock()
	if code := runCheckpointGC(dir, 0); code != 0 {
		t.Fatalf("gc after release exited %d", code)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("gc after release left the stale checkpoint behind")
	}
}

func TestParseGridSpec(t *testing.T) {
	g, err := parseGridSpec("systems=Baseline,SILO,vaults-sh;workloads=WebSearch,DataServing,SATSolver;overrides=-|scale=64,llc_mb=64", 4, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Systems) != 3 || len(g.Workloads) != 3 || len(g.Overrides) != 2 {
		t.Fatalf("axes = %d/%d/%d, want 3/3/2", len(g.Systems), len(g.Workloads), len(g.Overrides))
	}
	if g.Cells() != 18 {
		t.Fatalf("Cells() = %d, want 18", g.Cells())
	}
	if g.Windows != 4 || g.Confidence != 0.99 {
		t.Fatalf("windows/confidence = %d/%v", g.Windows, g.Confidence)
	}
	if g.Systems[2].Kind != core.VaultsShared {
		t.Fatalf("vaults-sh resolved to %v", g.Systems[2].Kind)
	}
	if g.Overrides[0].Name != "-" || g.Overrides[1].Name != "scale=64,llc_mb=64" {
		t.Fatalf("override names = %q, %q", g.Overrides[0].Name, g.Overrides[1].Name)
	}
	cfg := core.BaselineConfig(16)
	g.Overrides[1].Apply(&cfg)
	if cfg.Scale != 64 || cfg.LLCSize != 64<<20 {
		t.Fatalf("override application: scale=%d llc=%d", cfg.Scale, cfg.LLCSize)
	}
}

func TestParseGridSpecErrors(t *testing.T) {
	cases := []struct {
		arg, wantErr string
	}{
		{"workloads=WebSearch", "needs at least"},
		{"systems=Baseline", "needs at least"},
		{"systems=NoSuch;workloads=WebSearch", "unknown system"},
		{"systems=Baseline;workloads=NoSuch", "unknown workload"},
		{"systems=Baseline;workloads=WebSearch;overrides=frobnicate=1", "unknown key"},
		{"systems=Baseline;workloads=WebSearch;overrides=scale=-3", "scale wants an integer in [1,"},
		{"systems=Baseline;workloads=WebSearch;overrides=l2=maybe", "l2 wants true or false"},
		{"systems=Baseline;workloads=WebSearch;overrides=protocol=mosi", "protocol wants"},
		{"systems=Baseline;workloads=WebSearch;bogus", "not axis=values"},
		{"colors=red;systems=Baseline;workloads=WebSearch", "unknown grid axis"},
		// Parse-time hardening: duplicate keys and out-of-domain values
		// fail before any cell simulates, naming the key.
		{"systems=Baseline;workloads=WebSearch;overrides=scale=8,scale=16", "key scale given twice"},
		{"systems=Baseline;workloads=WebSearch;overrides=llc_mb=9999999999999", "llc_mb wants an integer in [1,"},
		{"systems=Baseline;workloads=WebSearch;overrides=cores=0", "cores wants an integer in [1,"},
		{"systems=Baseline;workloads=WebSearch;overrides=vault_ways=1000000", "vault_ways wants an integer in [1,"},
		{"systems=Baseline;workloads=WebSearch;systems=SILO", `axis "systems" given twice`},
		{"systems=Baseline;scenarios=/nonexistent/spec.yaml", "no such file"},
	}
	for _, c := range cases {
		if _, err := parseGridSpec(c.arg, 0, 0); err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("parseGridSpec(%q) error = %v, want containing %q", c.arg, err, c.wantErr)
		}
	}
}

// Every override key must be accepted and mutate the config it names.
func TestParseOverrideKeys(t *testing.T) {
	ov, err := parseOverride("scale=8,cores=4,seed=7,llc_mb=64,llc_ways=8,llc_extra=5,rwmult=2,vault_mb=512,vault_ways=4,l2=true,protocol=mesi")
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.SILOConfig(16)
	ov.Apply(&cfg)
	if cfg.Scale != 8 || cfg.Cores != 4 || cfg.Seed != 7 ||
		cfg.LLCSize != 64<<20 || cfg.LLCWays != 8 || cfg.LLCExtraLatency != 5 ||
		cfg.RWSharedMult != 2 || cfg.VaultCapacity != 512<<20 || cfg.VaultWays != 4 ||
		cfg.L2Size == 0 {
		t.Fatalf("override did not land: %+v", cfg)
	}
	off, err := parseOverride("l2=false")
	if err != nil {
		t.Fatal(err)
	}
	off.Apply(&cfg)
	if cfg.L2Size != 0 {
		t.Fatalf("l2=false left L2Size=%d", cfg.L2Size)
	}
}
