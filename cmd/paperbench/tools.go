package main

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/robust"
	"repro/internal/workload"
)

// Small scenario companions: the -scenario shorthand translation, the
// -record-trace recorder, and the -mask-wall-ms output normalizer.

// scenarioGridArg translates -scenario/-scenario-systems into the
// textual grid spec the batch machinery (and the distributed
// coordinator's wire format) already speak. The translation is textual
// on purpose — a -serve coordinator ships the grid string to workers,
// and a shorthand that bypassed it would give scenario sweeps a
// different distribution path than hand-written grids.
func scenarioGridArg(file, systems string) (string, error) {
	// ';' and ',' are the grid spec's separators; a path containing them
	// cannot round-trip through the textual form.
	if strings.ContainsAny(file, ";,") {
		return "", fmt.Errorf(`-scenario %q: the path contains ';' or ',', which the grid spec syntax reserves — rename or symlink the file`, file)
	}
	systems = strings.TrimSpace(systems)
	if systems == "" || strings.Contains(systems, ";") {
		return "", fmt.Errorf("-scenario-systems %q must be comma-separated system names", systems)
	}
	return "systems=" + systems + ";scenarios=" + strings.TrimSpace(file), nil
}

// recordBatch bounds the per-call generation buffer so a large
// -record-ops streams through a fixed-size chunk instead of one giant
// allocation.
const recordBatch = 1 << 16

// runRecordTrace generates c.recordOps ops of the named workload preset
// and writes them as an RPT1 trace file (atomic: temp + rename). The
// stream parameters are fixed and documented on the flag — core 0 of a
// 1-core stream, scale 16, seed 1 — so a trace is reproducible from its
// flag values and the recorded content hash is stable across hosts.
func runRecordTrace(c cliConfig) int {
	spec, err := experiments.WorkloadByName(c.recordWorkload)
	if err != nil {
		fmt.Fprintf(os.Stderr, "record-trace: %v\n", err)
		return 2
	}
	if c.recordOps <= 0 {
		fmt.Fprintf(os.Stderr, "record-trace: -record-ops %d is not positive\n", c.recordOps)
		return 2
	}
	var buf bytes.Buffer
	tw, err := workload.NewTraceWriter(&buf, spec.Name, spec.MLP)
	if err != nil {
		fmt.Fprintf(os.Stderr, "record-trace: %v\n", err)
		return 1
	}
	st := workload.NewStream(spec, 0, 1, 16, 1)
	ops := make([]workload.Op, recordBatch)
	for left := c.recordOps; left > 0; {
		n := min(left, recordBatch)
		st.NextBatch(ops[:n])
		if err := tw.Write(ops[:n]); err != nil {
			fmt.Fprintf(os.Stderr, "record-trace: %v\n", err)
			return 1
		}
		left -= n
	}
	if err := tw.Finish(); err != nil {
		fmt.Fprintf(os.Stderr, "record-trace: %v\n", err)
		return 1
	}
	if err := robust.WriteFileAtomic(c.recordTrace, buf.Bytes(), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "record-trace: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "[record-trace: %d %s ops -> %s (%d bytes)]\n",
		c.recordOps, spec.Name, c.recordTrace, buf.Len())
	return 0
}

// runMaskWallMS streams stdin to stdout with every wall_ms field zeroed
// (experiments.MaskWallMS). CI's byte-identity checks pipe grid outputs
// through this instead of each maintaining its own sed, so the masking
// rule lives in exactly one tested place.
func runMaskWallMS(r io.Reader, w io.Writer) int {
	br := bufio.NewReader(r)
	bw := bufio.NewWriter(w)
	for {
		line, err := br.ReadString('\n')
		if line != "" {
			if _, werr := bw.WriteString(experiments.MaskWallMS(line)); werr != nil {
				fmt.Fprintf(os.Stderr, "mask-wall-ms: %v\n", werr)
				return 1
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "mask-wall-ms: %v\n", err)
			return 1
		}
	}
	if err := bw.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "mask-wall-ms: %v\n", err)
		return 1
	}
	return 0
}
