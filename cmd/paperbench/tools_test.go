package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/workload"
)

func TestScenarioGridArg(t *testing.T) {
	got, err := scenarioGridArg("examples/scenarios/consolidation.yaml", "SILO,Baseline")
	if err != nil {
		t.Fatal(err)
	}
	want := "systems=SILO,Baseline;scenarios=examples/scenarios/consolidation.yaml"
	if got != want {
		t.Fatalf("scenarioGridArg = %q, want %q", got, want)
	}
	for _, c := range []struct{ file, systems, wantErr string }{
		{"a;b.yaml", "SILO", "reserves"},
		{"a,b.yaml", "SILO", "reserves"},
		{"spec.yaml", "", "comma-separated"},
		{"spec.yaml", "SILO;Baseline", "comma-separated"},
	} {
		if _, err := scenarioGridArg(c.file, c.systems); err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("scenarioGridArg(%q, %q) error = %v, want containing %q", c.file, c.systems, err, c.wantErr)
		}
	}
}

// The recorded file must be a valid RPT1 trace that round-trips through
// the workload reader with the preset's name, MLP and the exact op
// count — and be byte-stable across recordings (the fixed stream
// parameters are the point of the tool).
func TestRecordTraceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "web.rpt")
	c := cliConfig{recordTrace: path, recordWorkload: "WebSearch", recordOps: 70000}
	if code := runRecordTrace(c); code != 0 {
		t.Fatalf("runRecordTrace exited %d", code)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	name, mlp, ops, err := workload.ReadTrace(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if name != "WebSearch" || mlp != workload.WebSearch().MLP || len(ops) != 70000 {
		t.Fatalf("trace = %q mlp=%d ops=%d", name, mlp, len(ops))
	}

	c.recordTrace = filepath.Join(dir, "web2.rpt")
	if code := runRecordTrace(c); code != 0 {
		t.Fatalf("second runRecordTrace exited %d", code)
	}
	raw2, err := os.ReadFile(c.recordTrace)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, raw2) {
		t.Fatal("two recordings of the same flags differ")
	}

	if code := runRecordTrace(cliConfig{recordTrace: path, recordWorkload: "NoSuch", recordOps: 1}); code != 2 {
		t.Fatalf("unknown workload exited %d, want 2", code)
	}
}

func TestRunMaskWallMSFilter(t *testing.T) {
	in := `{"system":"SILO","wall_ms":12.5,"ipc":1.25}` + "\n" +
		`{"warm_wall_ms":9.1,"wall_ms":3}` + "\n" +
		`no json here` // deliberately unterminated last line
	var out bytes.Buffer
	if code := runMaskWallMS(strings.NewReader(in), &out); code != 0 {
		t.Fatalf("runMaskWallMS exited %d", code)
	}
	want := `{"system":"SILO","wall_ms":0,"ipc":1.25}` + "\n" +
		`{"warm_wall_ms":9.1,"wall_ms":0}` + "\n" +
		`no json here`
	if out.String() != want {
		t.Fatalf("filtered output:\n%s\nwant:\n%s", out.String(), want)
	}
}
