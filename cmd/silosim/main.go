// Command silosim runs one system x workload simulation and prints its
// metrics. Example:
//
//	silosim -system silo -workload MapReduce -cores 16
//
// -system all runs every organization on the workload concurrently
// (worker pool bounded by -parallel) and prints a comparison table.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	silo "repro"
)

func main() {
	system := flag.String("system", "silo", "baseline | baseline+dram | silo | silo-co | vaults-sh | all")
	name := flag.String("workload", "WebSearch", "workload name (scale-out, enterprise, or SPEC2006)")
	cores := flag.Int("cores", 16, "core count (1-32, powers of two)")
	warmInstr := flag.Int("warm-instr", 300_000, "functional warm-up instructions per core")
	warm := flag.Uint64("warm-cycles", 20_000, "timed warm-up cycles")
	measure := flag.Uint64("measure-cycles", 60_000, "measured cycles")
	parallel := flag.Int("parallel", 0, "worker pool size for -system all (0 = all cores)")
	flag.Parse()

	if *parallel < 0 {
		fmt.Fprintf(os.Stderr, "silosim: -parallel %d is negative (0 = all cores, 1 = sequential, N = N workers)\n", *parallel)
		os.Exit(2)
	}

	spec, ok := findWorkload(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown workload %q (scale-out, enterprise and SPEC CPU2006 names are accepted, e.g. WebSearch or mcf)\n", *name)
		os.Exit(2)
	}

	if strings.EqualFold(*system, "all") {
		runAll(spec, *cores, *warmInstr, silo.Cycle(*warm), silo.Cycle(*measure), *parallel)
		return
	}

	cfg, ok := findConfig(*system, *cores)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown system %q\n", *system)
		os.Exit(2)
	}

	sys := silo.NewSystem(cfg, spec)
	sys.Prewarm()
	sys.WarmFunctional(*warmInstr)
	m := sys.Run(silo.Cycle(*warm), silo.Cycle(*measure))

	s := m.Stats
	fmt.Printf("system=%s workload=%s cores=%d\n", cfg.Kind, spec.Name, *cores)
	fmt.Printf("  IPC (aggregate):   %.3f\n", m.IPC())
	fmt.Printf("  LLC accesses:      %d (hit rate %.1f%%)\n", s.LLCAccesses, 100*m.LLCHitRate())
	fmt.Printf("  local/remote/miss: %d / %d / %d\n", s.LocalHits, s.RemoteHits, s.Misses)
	fmt.Printf("  memory traffic:    %d reads, %d writebacks\n", s.MemAccesses, s.MemWritebacks)
	fmt.Printf("  coherence:         %d forwards, %d invalidations, %d upgrades\n",
		s.Forwards, s.Invalidations, s.Upgrades)
	if msg := sys.CheckInvariants(); msg != "" {
		fmt.Fprintf(os.Stderr, "INVARIANT VIOLATION: %s\n", msg)
		os.Exit(1)
	}
}

// systemKinds is the single ordered table of organizations: findConfig
// resolves names against it and -system all compares all of it.
var systemKinds = []struct {
	name string
	cfg  func(cores int) silo.Config
}{
	{"baseline", silo.BaselineConfig},
	{"baseline+dram", silo.BaselineDRAMConfig},
	{"silo", silo.SILOConfig},
	{"silo-co", silo.SILOCOConfig},
	{"vaults-sh", silo.VaultsSharedConfig},
}

// runAll compares every system organization on one workload, running the
// simulations concurrently through the experiments runner.
func runAll(spec silo.Workload, cores, warmInstr int, warm, measure silo.Cycle, parallel int) {
	cells := make([]silo.SimCell, len(systemKinds))
	for i, k := range systemKinds {
		cells[i] = silo.SimCell{Label: "silosim/" + k.name, Config: k.cfg(cores), Specs: []silo.Workload{spec}}
	}
	mode := silo.ExperimentMode{
		Name:          "cli",
		WarmInstr:     warmInstr,
		WarmCycles:    warm,
		MeasureCycles: measure,
		// The runner overrides each cell's Scale from the mode; use the
		// presets' own default so -system all matches the single-system path.
		Scale:       cells[0].Config.Scale,
		Parallelism: parallel,
	}
	ms := silo.RunCells(cells, mode)

	fmt.Printf("workload=%s cores=%d (all systems)\n", spec.Name, cores)
	fmt.Printf("%-16s %8s %10s %12s %10s\n", "system", "IPC", "hit-rate", "mem-reads", "vs-base")
	base := ms[0].IPC()
	for i, m := range ms {
		rel := "-"
		if base > 0 {
			rel = fmt.Sprintf("%.3fx", m.IPC()/base)
		}
		fmt.Printf("%-16s %8.3f %9.1f%% %12d %10s\n",
			cells[i].Config.Kind, m.IPC(), 100*m.LLCHitRate(), m.Stats.MemAccesses, rel)
	}
}

func findConfig(system string, cores int) (silo.Config, bool) {
	s := strings.ToLower(system)
	if s == "dram" { // historical alias
		s = "baseline+dram"
	}
	for _, k := range systemKinds {
		if k.name == s {
			return k.cfg(cores), true
		}
	}
	return silo.Config{}, false
}

func findWorkload(name string) (silo.Workload, bool) {
	all := append(silo.ScaleOutSuite(), silo.EnterpriseSuite()...)
	for _, w := range all {
		if strings.EqualFold(w.Name, name) {
			return w, true
		}
	}
	// Validate the SPEC CPU2006 name before resolving it: an unknown name
	// must become a usage error, not a recovered panic.
	for _, n := range silo.Spec2006Names() {
		if strings.EqualFold(n, name) {
			return silo.Spec2006(n), true
		}
	}
	return silo.Workload{}, false
}
