// Command silosim runs one system x workload simulation and prints its
// metrics. Example:
//
//	silosim -system silo -workload MapReduce -cores 16
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	silo "repro"
)

func main() {
	system := flag.String("system", "silo", "baseline | baseline+dram | silo | silo-co | vaults-sh")
	name := flag.String("workload", "WebSearch", "workload name (scale-out, enterprise, or SPEC2006)")
	cores := flag.Int("cores", 16, "core count (1-32, powers of two)")
	warmInstr := flag.Int("warm-instr", 300_000, "functional warm-up instructions per core")
	warm := flag.Uint64("warm-cycles", 20_000, "timed warm-up cycles")
	measure := flag.Uint64("measure-cycles", 60_000, "measured cycles")
	flag.Parse()

	var cfg silo.Config
	switch strings.ToLower(*system) {
	case "baseline":
		cfg = silo.BaselineConfig(*cores)
	case "baseline+dram", "dram":
		cfg = silo.BaselineDRAMConfig(*cores)
	case "silo":
		cfg = silo.SILOConfig(*cores)
	case "silo-co":
		cfg = silo.SILOCOConfig(*cores)
	case "vaults-sh":
		cfg = silo.VaultsSharedConfig(*cores)
	default:
		fmt.Fprintf(os.Stderr, "unknown system %q\n", *system)
		os.Exit(2)
	}

	spec, ok := findWorkload(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *name)
		os.Exit(2)
	}

	sys := silo.NewSystem(cfg, spec)
	sys.Prewarm()
	sys.WarmFunctional(*warmInstr)
	m := sys.Run(silo.Cycle(*warm), silo.Cycle(*measure))

	s := m.Stats
	fmt.Printf("system=%s workload=%s cores=%d\n", cfg.Kind, spec.Name, *cores)
	fmt.Printf("  IPC (aggregate):   %.3f\n", m.IPC())
	fmt.Printf("  LLC accesses:      %d (hit rate %.1f%%)\n", s.LLCAccesses, 100*m.LLCHitRate())
	fmt.Printf("  local/remote/miss: %d / %d / %d\n", s.LocalHits, s.RemoteHits, s.Misses)
	fmt.Printf("  memory traffic:    %d reads, %d writebacks\n", s.MemAccesses, s.MemWritebacks)
	fmt.Printf("  coherence:         %d forwards, %d invalidations, %d upgrades\n",
		s.Forwards, s.Invalidations, s.Upgrades)
	if msg := sys.CheckInvariants(); msg != "" {
		fmt.Fprintf(os.Stderr, "INVARIANT VIOLATION: %s\n", msg)
		os.Exit(1)
	}
}

func findWorkload(name string) (silo.Workload, bool) {
	all := append(silo.ScaleOutSuite(), silo.EnterpriseSuite()...)
	for _, w := range all {
		if strings.EqualFold(w.Name, name) {
			return w, true
		}
	}
	defer func() { recover() }()
	w := silo.Spec2006(strings.ToLower(name))
	return w, true
}
