// Colocation: the paper's Table VI scenario. Web Search shares a 16-core
// machine with mcf, the memory-hungry SPEC CPU2006 code. With a shared LLC,
// mcf's streaming working set evicts Web Search's cached state; with SILO's
// private vaults the two cannot touch each other's LLC capacity.
package main

import (
	"fmt"

	silo "repro"
)

func run(cfg silo.Config, colocated bool) float64 {
	ws := silo.WebSearch()
	other := silo.Spec2006("gamess") // compute-bound filler for "alone"
	if colocated {
		other = silo.Spec2006("mcf")
	}
	specs := make([]silo.Workload, 16)
	for i := 0; i < 8; i++ {
		specs[i] = ws
	}
	for i := 8; i < 16; i++ {
		specs[i] = other
	}
	sys := silo.NewMixedSystem(cfg, specs)
	sys.Prewarm()
	sys.WarmFunctional(300_000)
	m := sys.Run(20_000, 60_000)
	return m.RangeIPC(0, 8) // Web Search's cores only
}

func main() {
	fmt.Println("Web Search throughput (8 cores) under colocation:")
	baseAlone := run(silo.BaselineConfig(16), false)
	baseColoc := run(silo.BaselineConfig(16), true)
	siloAlone := run(silo.SILOConfig(16), false)
	siloColoc := run(silo.SILOConfig(16), true)

	fmt.Printf("  shared LLC: alone %.2f, with mcf %.2f (%+.1f%%)\n",
		baseAlone, baseColoc, 100*(baseColoc/baseAlone-1))
	fmt.Printf("  SILO:       alone %.2f, with mcf %.2f (%+.1f%%)\n",
		siloAlone, siloColoc, 100*(siloColoc/siloAlone-1))
	fmt.Println("SILO's private vaults isolate the latency-critical service.")
}
