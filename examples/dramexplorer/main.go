// DRAM explorer: walk the die-stacked vault design space of paper Sec. IV.
// For each capacity under the 4-die x 5mm² budget, print the fastest
// feasible organization, then the two canonical design points the paper
// builds SILO and SILO-CO around.
package main

import (
	"fmt"

	silo "repro"
)

func main() {
	fmt.Println("Tile-dimension sweep (Fig 7, normalized to 1024x1024):")
	for _, p := range silo.TileSweep() {
		fmt.Printf("  %-10s latency %.2fx  area %.2fx\n", p.Tile, p.Latency, p.Area)
	}

	fmt.Println("\nFastest feasible vault per capacity (Fig 8 envelope):")
	for _, d := range silo.VaultEnvelope() {
		fmt.Printf("  %4dMB: tile %-8s %5.2fns  %5.2fmm²  %2d banks\n",
			d.CapacityMB, d.Tile.String(), d.AccessNS(), d.AreaMM2(), d.Banks())
	}

	lo, co := silo.LatencyOptimizedVault(), silo.CapacityOptimizedVault()
	fmt.Println("\nDesign points (Table I):")
	fmt.Printf("  latency-optimized:  %s -> %d cycles at 2GHz (SILO)\n", lo, lo.AccessCycles(2))
	fmt.Printf("  capacity-optimized: %s -> %d cycles at 2GHz (SILO-CO)\n", co, co.AccessCycles(2))
	fmt.Printf("  latency ratio %.2fx, area-efficiency ratio %.2fx\n",
		co.AccessNS()/lo.AccessNS(), co.Tile.AreaEfficiency()/lo.Tile.AreaEfficiency())
}
