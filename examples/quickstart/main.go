// Quickstart: build the paper's 16-core SILO system and its shared-LLC
// baseline, run Web Search on both, and compare throughput — the headline
// experiment of the paper in ~30 lines.
package main

import (
	"fmt"

	silo "repro"
)

func main() {
	const (
		warmInstr = 300_000 // functional warm-up instructions per core
		warmup    = 20_000  // timed warm-up cycles
		measure   = 60_000  // measured window (SMARTS-style)
	)

	run := func(cfg silo.Config) silo.Metrics {
		sys := silo.NewSystem(cfg, silo.WebSearch())
		sys.Prewarm()
		sys.WarmFunctional(warmInstr)
		return sys.Run(warmup, measure)
	}

	base := run(silo.BaselineConfig(16))
	priv := run(silo.SILOConfig(16))

	fmt.Println("Web Search on a 16-core server CMP")
	fmt.Printf("  shared 8MB LLC baseline: IPC %.2f  (LLC hit rate %.0f%%)\n",
		base.IPC(), 100*base.LLCHitRate())
	fmt.Printf("  SILO (256MB/core vault): IPC %.2f  (LLC hit rate %.0f%%)\n",
		priv.IPC(), 100*priv.LLCHitRate())
	fmt.Printf("  speedup: %+.1f%%\n", 100*(priv.IPC()/base.IPC()-1))
	fmt.Printf("  off-chip misses: %d -> %d per window\n",
		base.Stats.Misses, priv.Stats.Misses)
}
