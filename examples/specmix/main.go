// SPEC mix: a public-cloud batch scenario (paper Fig 15). Four SPEC CPU2006
// codes share a 4-core machine; private vaults give each one its own
// 256MB LLC slice, so memory-hungry neighbours stop degrading cache-fitting
// ones.
package main

import (
	"fmt"

	silo "repro"
)

func main() {
	mix := silo.Spec06Mixes()[2] // mix3: mcf-zeusmp-calculix-lbm
	specs := silo.MixSpecs(mix)

	run := func(cfg silo.Config) silo.Metrics {
		sys := silo.NewMixedSystem(cfg, specs)
		sys.Prewarm()
		sys.WarmFunctional(400_000)
		return sys.Run(20_000, 60_000)
	}
	base := run(silo.BaselineConfig(4))
	priv := run(silo.SILOConfig(4))

	fmt.Printf("%s on 4 cores: %v\n", mix.Name, mix.Benchmarks)
	fmt.Printf("  %-10s %10s %10s\n", "benchmark", "base IPC", "SILO IPC")
	for i, name := range mix.Benchmarks {
		fmt.Printf("  %-10s %10.3f %10.3f\n", name, base.CoreIPC(i), priv.CoreIPC(i))
	}
	fmt.Printf("  aggregate: %.3f -> %.3f (%+.1f%%)\n",
		base.IPC(), priv.IPC(), 100*(priv.IPC()/base.IPC()-1))
}
