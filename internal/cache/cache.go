// Package cache implements the functional storage model shared by every
// SRAM and DRAM cache in the simulated systems: a set-associative array of
// tagged lines with per-line coherence state and pluggable replacement.
//
// The array is purely functional (no timing); hierarchy levels own an Array
// and add their latency and protocol behaviour on top. This split keeps the
// protocol logic testable without a simulation clock.
//
// Two API layers address the same storage. The line-addressed methods
// (Lookup, Touch, SetState, Insert, InsertNonTemporal, Invalidate) are the
// readable reference: each re-finds the line by tag scan. The Way-handle
// methods (Probe, WayState, TouchWay, SetStateWay, InsertAt, DemoteWay)
// are the fast path: one Probe per access, O(1) mutators after it. A
// randomized differential test (differential_test.go) drives both against
// a naive model and proves them behaviourally identical.
package cache

import (
	"fmt"
	"math/bits"

	"repro/internal/mem"
)

// State is a per-line coherence state. The zero value is Invalid.
type State uint8

const (
	// Invalid: the line is not present.
	Invalid State = iota
	// Shared: read-only copy, other caches may also hold copies.
	Shared
	// Exclusive: clean, and the only copy in any cache.
	Exclusive
	// Owned: dirty, and this cache must answer requests for the line
	// (MOESI O state; other caches may hold Shared copies).
	Owned
	// Modified: dirty, and the only copy in any cache.
	Modified
)

func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Owned:
		return "O"
	case Modified:
		return "M"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Valid reports whether the state denotes a present line.
func (s State) Valid() bool { return s != Invalid }

// Dirty reports whether the state holds data newer than the next level.
func (s State) Dirty() bool { return s == Modified || s == Owned }

// Policy selects a replacement victim.
type Policy uint8

const (
	// LRU evicts the least recently used way (paper Table II baseline).
	LRU Policy = iota
	// RandomRepl evicts a pseudo-random way.
	RandomRepl
)

// Slot-word encoding: each way is one uint64 packing validity, coherence
// state, LRU recency and tag —
//
//	bit  0      valid
//	bits 1-3    State
//	bits 4-23   recency stamp (set-local; see nextStamp)
//	bits 24-63  tag (line address / LineSize)
//
// so a tag scan, a state read, a recency touch and a fill each touch
// exactly 8 bytes per way — one cache line for the whole set at the
// simulated 8-way geometries. Folding the stamp into the word (instead of
// the former side slice) removes the second line a hit used to dirty. The
// 40-bit tag field bounds addresses to 2^46 B, far above the workload
// address map's 2^42 ceiling (internal/workload); place() enforces it.
//
// Stamps are set-local, drawn from a per-set counter (setTick, a dense
// uint32 per set — 16x smaller than the former per-slot stamp slice and
// shared across 16 sets per cache line). When the 20-bit field saturates,
// the set's stamps are renormalized to ranks and the counter rewinds.
// Renormalization preserves both the relative order of positive stamps
// and the demoted-to-zero class, so victim choice — min (stamp, way) — is
// bit-identical to the former global-tick scheme (the ordering argument
// is spelled out in DESIGN.md §8).
const (
	slotValid      = 1
	slotStateMask  = 0b1110
	slotStampShift = 4
	slotStampBits  = 20
	slotStampMax   = 1<<slotStampBits - 1
	slotStampMask  = uint64(slotStampMax) << slotStampShift
	slotTagShift   = slotStampShift + slotStampBits
	maxSlotTag     = 1<<(64-slotTagShift) - 1
)

func packSlot(t uint64, st State) uint64 { return t<<slotTagShift | uint64(st)<<1 | slotValid }

func slotState(v uint64) State  { return State((v & slotStateMask) >> 1) }
func slotTag(v uint64) uint64   { return v >> slotTagShift }
func slotStamp(v uint64) uint64 { return v >> slotStampShift & slotStampMax }

// Array is a set-associative cache tag/state array.
type Array struct {
	sets   int
	ways   int
	policy Policy
	shift  uint   // set-index shift (see NewBankedArray)
	rndst  uint64 // xorshift state for RandomRepl

	// lru is set when the recency stamps in the slot words are live:
	// LRU policy with more than one way. Direct-mapped arrays never read
	// recency, and RandomRepl never consults it, so both skip the stamp
	// maintenance (and its stores) entirely.
	lru bool
	// wayShift is log2(ways) when ways is a power of two (the hot
	// way-index-to-set-index shift), else -1 and the slow divide is used.
	wayShift int

	// slots holds the packed tag/state/stamp words, sets*ways, set-major;
	// 0 marks an empty slot.
	slots []uint64

	// setTick holds each set's stamp counter (nil unless lru): the next
	// touch or fill in the set stamps setTick[s]+1. The counter never
	// trails a live stamp, so every new stamp is the set's strict maximum.
	setTick []uint32

	// hint caches each set's last hit or fill way (nil when ways == 1):
	// ProbeTouch checks it before scanning. A pure accelerator — the full
	// tag compare guards every use, and tags are unique within a set, so
	// a stale hint can only cost the scan it would have skipped.
	hint []uint8

	// Occupancy tracks the number of valid lines, maintained incrementally
	// so invariant checks are O(1).
	occupied int
}

// NewBankedArray builds an array that is one bank of a larger
// address-interleaved cache: the low bankBits of the line index select the
// bank (see BankSelect), so the set index must come from the bits above
// them. Using the same bits for both would fold every line in the bank
// onto a single set and shrink the effective capacity to ways lines.
func NewBankedArray(sizeBytes int64, ways int, policy Policy, bankBits uint) *Array {
	a := NewArray(sizeBytes, ways, policy)
	a.shift = bankBits
	return a
}

// NewArray builds an array of the given total size in bytes. Size must be a
// multiple of ways*mem.LineSize and the resulting set count a power of two.
func NewArray(sizeBytes int64, ways int, policy Policy) *Array {
	if ways <= 0 {
		panic("cache: non-positive ways")
	}
	if sizeBytes%mem.LineSize != 0 {
		panic(fmt.Sprintf("cache: size %d not a multiple of the %dB line size", sizeBytes, mem.LineSize))
	}
	lines := sizeBytes / mem.LineSize
	if lines <= 0 || lines%int64(ways) != 0 {
		panic(fmt.Sprintf("cache: size %d not divisible into %d ways of %dB lines", sizeBytes, ways, mem.LineSize))
	}
	sets := lines / int64(ways)
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d not a power of two", sets))
	}
	wayShift := -1
	if ways&(ways-1) == 0 {
		wayShift = ilog2(uint64(ways))
	}
	a := &Array{
		sets:     int(sets),
		ways:     ways,
		policy:   policy,
		lru:      policy == LRU && ways > 1,
		wayShift: wayShift,
		slots:    make([]uint64, lines),
		rndst:    0x9E3779B97F4A7C15,
	}
	if a.lru {
		a.setTick = make([]uint32, sets)
	}
	if ways > 1 {
		a.hint = make([]uint8, sets)
	}
	return a
}

// Sets returns the number of sets.
func (a *Array) Sets() int { return a.sets }

// Ways returns the associativity.
func (a *Array) Ways() int { return a.ways }

// SizeBytes returns the total capacity.
func (a *Array) SizeBytes() int64 { return int64(a.sets) * int64(a.ways) * mem.LineSize }

// Occupied returns the number of valid lines.
func (a *Array) Occupied() int { return a.occupied }

// tag converts a line address to the stored tag.
func tag(line mem.LineAddr) uint64 { return uint64(line) / mem.LineSize }

// lineAddr converts a stored tag back to a line address.
func lineAddr(t uint64) mem.LineAddr { return mem.LineAddr(t * mem.LineSize) }

// set returns the set index for a line address.
func (a *Array) set(line mem.LineAddr) int {
	return int((tag(line) >> a.shift) & uint64(a.sets-1))
}

// Way is a handle to one array slot, returned by Probe. It stays valid
// until the next mutation of the same set (Insert*, Invalidate or
// SetState/SetStateWay to Invalid); way-indexed mutators let a call site
// that has already probed skip every further tag scan. NoWay reports a
// miss.
type Way int32

// NoWay is the Probe result for an absent line.
const NoWay Way = -1

// Probe finds the line with a single tag scan and returns its slot handle,
// or NoWay when absent. It does not update recency; pair with TouchWay.
// (Written with the tag/set helpers spelled out: the function sits on
// every simulated access and must stay within the inlining budget.)
func (a *Array) Probe(line mem.LineAddr) Way {
	t := uint64(line) / mem.LineSize
	base := int(t>>a.shift&uint64(a.sets-1)) * a.ways
	want := t<<slotTagShift | slotValid
	for w, v := range a.slots[base : base+a.ways] {
		if v&^(slotStateMask|slotStampMask) == want {
			return Way(base + w)
		}
	}
	return NoWay
}

// ProbeTouch finds the line and marks it most recently used in the same
// scan, returning its slot handle or NoWay — the fused form of
// Probe+TouchWay for hit paths that always touch. The stamp update reuses
// the scan's set index and slot word, so a hit costs one pass and (on LRU
// arrays) one counter bump instead of a second probe-and-divide.
func (a *Array) ProbeTouch(line mem.LineAddr) Way {
	t := uint64(line) / mem.LineSize
	s := int(t >> a.shift & uint64(a.sets-1))
	base := s * a.ways
	want := t<<slotTagShift | slotValid
	if a.hint != nil {
		// Most hits repeat the set's last hit or fill: check that way
		// before scanning (the tag compare makes a stale hint harmless).
		if w := base + int(a.hint[s]); a.slots[w]&^(slotStateMask|slotStampMask) == want {
			if a.lru {
				c := uint64(a.setTick[s]) + 1
				if c > slotStampMax {
					c = a.renormSet(base) + 1
				}
				a.setTick[s] = uint32(c)
				a.slots[w] = a.slots[w]&^slotStampMask | c<<slotStampShift
			}
			return Way(w)
		}
	}
	for w, v := range a.slots[base : base+a.ways] {
		if v&^(slotStateMask|slotStampMask) == want {
			idx := base + w
			if a.hint != nil {
				a.hint[s] = uint8(w)
			}
			if a.lru {
				c := uint64(a.setTick[s]) + 1
				if c > slotStampMax {
					c = a.renormSet(base) + 1
				}
				a.setTick[s] = uint32(c)
				a.slots[idx] = a.slots[idx]&^slotStampMask | c<<slotStampShift
			}
			return Way(idx)
		}
	}
	return NoWay
}

// WayState returns the coherence state of the probed slot.
func (a *Array) WayState(w Way) State { return slotState(a.slots[w]) }

// TouchWay marks the probed slot most recently used. Direct-mapped and
// RandomRepl arrays skip the recency write: their victim choice never
// consults it, so the store would only dirty the set's words per hit.
func (a *Array) TouchWay(w Way) {
	// The guard-plus-outlined-body split keeps TouchWay itself inlinable:
	// direct-mapped and RandomRepl arrays pay one predicted branch and no
	// call at all.
	if a.lru {
		a.stampMRU(w)
	}
}

// stampMRU stamps one slot of an LRU set most recently used.
func (a *Array) stampMRU(w Way) {
	st := a.nextStamp(a.setIndex(w))
	a.slots[w] = a.slots[w]&^slotStampMask | st<<slotStampShift
}

// setIndex returns the set number of the slot holding way w.
func (a *Array) setIndex(w Way) int {
	if a.wayShift >= 0 {
		return int(w) >> a.wayShift
	}
	return int(w) / a.ways
}

// nextStamp advances set s's counter and returns the stamp to write: the
// set's new strict maximum. When the 20-bit field saturates the set is
// renormalized to ranks and the counter rewinds to the new maximum.
func (a *Array) nextStamp(s int) uint64 {
	c := uint64(a.setTick[s]) + 1
	if c > slotStampMax {
		c = a.renormSet(s*a.ways) + 1
	}
	a.setTick[s] = uint32(c)
	return c
}

// renormSet compresses the set's stamps to ranks when the field saturates,
// returning the new maximum. Positive stamps (unique within a set: each is
// a past max+1) map to 1..m preserving order; zero stamps — the demoted
// class, where victim ties break by lowest way — stay zero, so every
// future victim comparison orders exactly as before the renormalization.
func (a *Array) renormSet(base int) uint64 {
	var buf [64]uint64
	old := buf[:]
	if a.ways > len(buf) {
		old = make([]uint64, a.ways)
	}
	for k := 0; k < a.ways; k++ {
		// Invalid slots are all-zero words, so their stamp reads 0 and they
		// are skipped below.
		old[k] = slotStamp(a.slots[base+k])
	}
	m := uint64(0)
	for k := 0; k < a.ways; k++ {
		s := old[k]
		if s == 0 {
			continue
		}
		rank := uint64(1)
		for j := 0; j < a.ways; j++ {
			if old[j] > 0 && old[j] < s {
				rank++
			}
		}
		a.slots[base+k] = a.slots[base+k]&^slotStampMask | rank<<slotStampShift
		if rank > m {
			m = rank
		}
	}
	return m
}

// SetStateWay updates the coherence state of the probed slot. Setting
// Invalid removes the line (and invalidates every outstanding Way handle
// for its set).
func (a *Array) SetStateWay(w Way, st State) {
	if st == Invalid {
		a.occupied--
		a.slots[w] = 0
		return
	}
	a.slots[w] = a.slots[w]&^slotStateMask | uint64(st)<<1
}

// DemoteWay moves the probed slot to LRU priority (the set's preferred
// victim), the way-indexed form of InsertNonTemporal's demotion. A no-op
// on direct-mapped and RandomRepl arrays, where recency is never consulted.
func (a *Array) DemoteWay(w Way) {
	if a.lru {
		a.slots[w] &^= slotStampMask
	}
}

// Lookup finds the line and returns its state without updating recency.
// It returns Invalid when absent.
func (a *Array) Lookup(line mem.LineAddr) State {
	if w := a.Probe(line); w != NoWay {
		return slotState(a.slots[w])
	}
	return Invalid
}

// Contains reports whether the line is present.
func (a *Array) Contains(line mem.LineAddr) bool { return a.Probe(line) != NoWay }

// Touch marks the line most recently used, returning false when absent.
func (a *Array) Touch(line mem.LineAddr) bool {
	w := a.Probe(line)
	if w == NoWay {
		return false
	}
	a.TouchWay(w)
	return true
}

// SetState updates the coherence state of a present line, returning false
// when absent. Setting Invalid removes the line.
func (a *Array) SetState(line mem.LineAddr, st State) bool {
	w := a.Probe(line)
	if w == NoWay {
		return false
	}
	a.SetStateWay(w, st)
	return true
}

// Eviction describes a line displaced by Insert.
type Eviction struct {
	Line  mem.LineAddr
	State State
}

// Dirty reports whether the victim must be written back.
func (e Eviction) Dirty() bool { return e.State.Dirty() }

// InsertNonTemporal places the line at LRU priority: it becomes the set's
// preferred victim, so streaming fills displace each other rather than
// reused lines. This models the anti-thrash insertion real LLCs apply to
// never-reused streams, and — at the reproduction's capacity scale — it
// reproduces the residency that plain LRU provides at paper scale, where
// set lifetimes are 512x longer relative to reuse intervals.
func (a *Array) InsertNonTemporal(line mem.LineAddr, st State) (ev Eviction, evicted bool) {
	w, ev, evicted := a.insert(line, st)
	a.DemoteWay(w)
	return ev, evicted
}

// Insert places the line in the array with the given state, evicting a
// victim if the set is full. It returns the eviction (ok=false when an
// invalid way was used). Inserting a line that is already present panics:
// callers must Lookup first — double insertion always indicates a protocol
// bug.
func (a *Array) Insert(line mem.LineAddr, st State) (ev Eviction, evicted bool) {
	_, ev, evicted = a.insert(line, st)
	return ev, evicted
}

// insert is Insert returning the way filled, so InsertNonTemporal can
// demote it without re-scanning the set.
func (a *Array) insert(line mem.LineAddr, st State) (w Way, ev Eviction, evicted bool) {
	if !st.Valid() {
		panic("cache: inserting invalid state")
	}
	s := a.set(line)
	t := tag(line)
	base := s * a.ways
	victim := -1
	for w, v := range a.slots[base : base+a.ways] {
		if v&slotValid != 0 && slotTag(v) == t {
			panic(fmt.Sprintf("cache: double insert of line %#x", uint64(line)))
		}
		if v == 0 && victim == -1 {
			victim = w
		}
	}
	return a.place(s, victim, t, st)
}

// InsertAt is the fast-path insert for a line Probe just reported absent:
// it fills the first invalid way (stopping the scan there) or evicts the
// policy victim, returning the way filled for DemoteWay. Unlike Insert it
// does not re-verify absence — calling it for a present line corrupts the
// set, which the differential suite would surface; callers must have
// probed the same array for the same line with no intervening mutation.
func (a *Array) InsertAt(line mem.LineAddr, st State) (w Way, ev Eviction, evicted bool) {
	if !st.Valid() {
		panic("cache: inserting invalid state")
	}
	s := a.set(line)
	victim := -1
	base := s * a.ways
	for i, v := range a.slots[base : base+a.ways] {
		if v == 0 {
			victim = i
			break
		}
	}
	return a.place(s, victim, tag(line), st)
}

// place fills the chosen way (or the policy victim when victim < 0) and
// maintains occupancy, recency and the eviction report.
func (a *Array) place(s, victim int, t uint64, st State) (w Way, ev Eviction, evicted bool) {
	if t > maxSlotTag {
		panic(fmt.Sprintf("cache: line tag %#x exceeds the %d-bit packed-slot tag field (address beyond 2^46)",
			t, 64-slotTagShift))
	}
	if victim == -1 {
		victim = a.victim(s)
		v := a.slots[s*a.ways+victim]
		ev = Eviction{Line: lineAddr(slotTag(v)), State: slotState(v)}
		evicted = true
		a.occupied--
	}
	idx := s*a.ways + victim
	word := packSlot(t, st)
	if a.lru {
		// Direct-mapped and RandomRepl arrays skip recency entirely.
		word |= a.nextStamp(s) << slotStampShift
	}
	if a.hint != nil {
		a.hint[s] = uint8(victim)
	}
	a.slots[idx] = word
	a.occupied++
	return Way(idx), ev, evicted
}

// victim picks the replacement way in a full set.
func (a *Array) victim(set int) int {
	switch a.policy {
	case LRU:
		base := set * a.ways
		best, bestStamp := 0, slotStamp(a.slots[base])
		for w := 1; w < a.ways; w++ {
			if s := slotStamp(a.slots[base+w]); s < bestStamp {
				best, bestStamp = w, s
			}
		}
		return best
	case RandomRepl:
		a.rndst ^= a.rndst << 13
		a.rndst ^= a.rndst >> 7
		a.rndst ^= a.rndst << 17
		return int(a.rndst % uint64(a.ways))
	default:
		panic(fmt.Sprintf("cache: unknown policy %d", a.policy))
	}
}

// Invalidate removes the line, returning its prior state (Invalid when it
// was not present).
func (a *Array) Invalidate(line mem.LineAddr) State {
	w := a.Probe(line)
	if w == NoWay {
		return Invalid
	}
	st := slotState(a.slots[w])
	a.slots[w] = 0
	a.occupied--
	return st
}

// ForEach calls fn for every valid line. Iteration order is deterministic
// (set-major). fn must not mutate the array.
func (a *Array) ForEach(fn func(line mem.LineAddr, st State)) {
	for _, v := range a.slots {
		if v&slotValid != 0 {
			fn(lineAddr(slotTag(v)), slotState(v))
		}
	}
}

// SetOf exposes the set index for interleaving and diagnostics.
func (a *Array) SetOf(line mem.LineAddr) int { return a.set(line) }

// BankSelect address-interleaves lines across banks: consecutive lines map
// to consecutive banks (paper: S-NUCA address interleaving). banks must be
// a power of two.
func BankSelect(line mem.LineAddr, banks int) int {
	if banks <= 0 || banks&(banks-1) != 0 {
		panic(fmt.Sprintf("cache: bank count %d not a power of two", banks))
	}
	return int(tag(line) & uint64(banks-1))
}

// ilog2 returns floor(log2(v)); used by sizing helpers.
func ilog2(v uint64) int { return 63 - bits.LeadingZeros64(v) }
