// Package cache implements the functional storage model shared by every
// SRAM and DRAM cache in the simulated systems: a set-associative array of
// tagged lines with per-line coherence state and pluggable replacement.
//
// The array is purely functional (no timing); hierarchy levels own an Array
// and add their latency and protocol behaviour on top. This split keeps the
// protocol logic testable without a simulation clock.
package cache

import (
	"fmt"
	"math/bits"

	"repro/internal/mem"
)

// State is a per-line coherence state. The zero value is Invalid.
type State uint8

const (
	// Invalid: the line is not present.
	Invalid State = iota
	// Shared: read-only copy, other caches may also hold copies.
	Shared
	// Exclusive: clean, and the only copy in any cache.
	Exclusive
	// Owned: dirty, and this cache must answer requests for the line
	// (MOESI O state; other caches may hold Shared copies).
	Owned
	// Modified: dirty, and the only copy in any cache.
	Modified
)

func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Owned:
		return "O"
	case Modified:
		return "M"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Valid reports whether the state denotes a present line.
func (s State) Valid() bool { return s != Invalid }

// Dirty reports whether the state holds data newer than the next level.
func (s State) Dirty() bool { return s == Modified || s == Owned }

// Policy selects a replacement victim.
type Policy uint8

const (
	// LRU evicts the least recently used way (paper Table II baseline).
	LRU Policy = iota
	// RandomRepl evicts a pseudo-random way.
	RandomRepl
)

// Line is one cache line's metadata.
type Line struct {
	Tag   uint64 // line address (full address >> log2(LineSize))
	State State
	used  uint64 // LRU timestamp
}

// Array is a set-associative cache tag/state array.
type Array struct {
	sets   int
	ways   int
	policy Policy
	shift  uint   // set-index shift (see NewBankedArray)
	lines  []Line // sets*ways, set-major
	tick   uint64
	rndst  uint64 // xorshift state for RandomRepl

	// Occupancy tracks the number of valid lines, maintained incrementally
	// so invariant checks are O(1).
	occupied int
}

// NewBankedArray builds an array that is one bank of a larger
// address-interleaved cache: the low bankBits of the line index select the
// bank (see BankSelect), so the set index must come from the bits above
// them. Using the same bits for both would fold every line in the bank
// onto a single set and shrink the effective capacity to ways lines.
func NewBankedArray(sizeBytes int64, ways int, policy Policy, bankBits uint) *Array {
	a := NewArray(sizeBytes, ways, policy)
	a.shift = bankBits
	return a
}

// NewArray builds an array of the given total size in bytes. Size must be a
// multiple of ways*mem.LineSize and the resulting set count a power of two.
func NewArray(sizeBytes int64, ways int, policy Policy) *Array {
	if ways <= 0 {
		panic("cache: non-positive ways")
	}
	if sizeBytes%mem.LineSize != 0 {
		panic(fmt.Sprintf("cache: size %d not a multiple of the %dB line size", sizeBytes, mem.LineSize))
	}
	lines := sizeBytes / mem.LineSize
	if lines <= 0 || lines%int64(ways) != 0 {
		panic(fmt.Sprintf("cache: size %d not divisible into %d ways of %dB lines", sizeBytes, ways, mem.LineSize))
	}
	sets := lines / int64(ways)
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d not a power of two", sets))
	}
	return &Array{
		sets:   int(sets),
		ways:   ways,
		policy: policy,
		lines:  make([]Line, lines),
		rndst:  0x9E3779B97F4A7C15,
	}
}

// Sets returns the number of sets.
func (a *Array) Sets() int { return a.sets }

// Ways returns the associativity.
func (a *Array) Ways() int { return a.ways }

// SizeBytes returns the total capacity.
func (a *Array) SizeBytes() int64 { return int64(a.sets) * int64(a.ways) * mem.LineSize }

// Occupied returns the number of valid lines.
func (a *Array) Occupied() int { return a.occupied }

// tag converts a line address to the stored tag.
func tag(line mem.LineAddr) uint64 { return uint64(line) / mem.LineSize }

// lineAddr converts a stored tag back to a line address.
func lineAddr(t uint64) mem.LineAddr { return mem.LineAddr(t * mem.LineSize) }

// set returns the set index for a line address.
func (a *Array) set(line mem.LineAddr) int {
	return int((tag(line) >> a.shift) & uint64(a.sets-1))
}

func (a *Array) slot(set, way int) *Line { return &a.lines[set*a.ways+way] }

// Lookup finds the line and returns its state without updating recency.
// It returns Invalid when absent.
func (a *Array) Lookup(line mem.LineAddr) State {
	s := a.set(line)
	t := tag(line)
	for w := 0; w < a.ways; w++ {
		l := a.slot(s, w)
		if l.State.Valid() && l.Tag == t {
			return l.State
		}
	}
	return Invalid
}

// Contains reports whether the line is present.
func (a *Array) Contains(line mem.LineAddr) bool { return a.Lookup(line).Valid() }

// Touch marks the line most recently used, returning false when absent.
func (a *Array) Touch(line mem.LineAddr) bool {
	s := a.set(line)
	t := tag(line)
	for w := 0; w < a.ways; w++ {
		l := a.slot(s, w)
		if l.State.Valid() && l.Tag == t {
			a.tick++
			l.used = a.tick
			return true
		}
	}
	return false
}

// SetState updates the coherence state of a present line, returning false
// when absent. Setting Invalid removes the line.
func (a *Array) SetState(line mem.LineAddr, st State) bool {
	s := a.set(line)
	t := tag(line)
	for w := 0; w < a.ways; w++ {
		l := a.slot(s, w)
		if l.State.Valid() && l.Tag == t {
			if st == Invalid {
				a.occupied--
				*l = Line{}
				return true
			}
			l.State = st
			return true
		}
	}
	return false
}

// Eviction describes a line displaced by Insert.
type Eviction struct {
	Line  mem.LineAddr
	State State
}

// Dirty reports whether the victim must be written back.
func (e Eviction) Dirty() bool { return e.State.Dirty() }

// InsertNonTemporal places the line at LRU priority: it becomes the set's
// preferred victim, so streaming fills displace each other rather than
// reused lines. This models the anti-thrash insertion real LLCs apply to
// never-reused streams, and — at the reproduction's capacity scale — it
// reproduces the residency that plain LRU provides at paper scale, where
// set lifetimes are 512x longer relative to reuse intervals.
func (a *Array) InsertNonTemporal(line mem.LineAddr, st State) (ev Eviction, evicted bool) {
	ev, evicted = a.Insert(line, st)
	s := a.set(line)
	t := tag(line)
	for w := 0; w < a.ways; w++ {
		l := a.slot(s, w)
		if l.State.Valid() && l.Tag == t {
			l.used = 0
			break
		}
	}
	return ev, evicted
}

// Insert places the line in the array with the given state, evicting a
// victim if the set is full. It returns the eviction (ok=false when an
// invalid way was used). Inserting a line that is already present panics:
// callers must Lookup first — double insertion always indicates a protocol
// bug.
func (a *Array) Insert(line mem.LineAddr, st State) (ev Eviction, evicted bool) {
	if !st.Valid() {
		panic("cache: inserting invalid state")
	}
	s := a.set(line)
	t := tag(line)
	victim := -1
	for w := 0; w < a.ways; w++ {
		l := a.slot(s, w)
		if l.State.Valid() && l.Tag == t {
			panic(fmt.Sprintf("cache: double insert of line %#x", uint64(line)))
		}
		if !l.State.Valid() && victim == -1 {
			victim = w
		}
	}
	if victim == -1 {
		victim = a.victim(s)
		v := a.slot(s, victim)
		ev = Eviction{Line: lineAddr(v.Tag), State: v.State}
		evicted = true
		a.occupied--
	}
	a.tick++
	*a.slot(s, victim) = Line{Tag: t, State: st, used: a.tick}
	a.occupied++
	return ev, evicted
}

// victim picks the replacement way in a full set.
func (a *Array) victim(set int) int {
	switch a.policy {
	case LRU:
		best, bestUsed := 0, a.slot(set, 0).used
		for w := 1; w < a.ways; w++ {
			if u := a.slot(set, w).used; u < bestUsed {
				best, bestUsed = w, u
			}
		}
		return best
	case RandomRepl:
		a.rndst ^= a.rndst << 13
		a.rndst ^= a.rndst >> 7
		a.rndst ^= a.rndst << 17
		return int(a.rndst % uint64(a.ways))
	default:
		panic(fmt.Sprintf("cache: unknown policy %d", a.policy))
	}
}

// Invalidate removes the line, returning its prior state (Invalid when it
// was not present).
func (a *Array) Invalidate(line mem.LineAddr) State {
	s := a.set(line)
	t := tag(line)
	for w := 0; w < a.ways; w++ {
		l := a.slot(s, w)
		if l.State.Valid() && l.Tag == t {
			st := l.State
			*l = Line{}
			a.occupied--
			return st
		}
	}
	return Invalid
}

// ForEach calls fn for every valid line. Iteration order is deterministic
// (set-major). fn must not mutate the array.
func (a *Array) ForEach(fn func(line mem.LineAddr, st State)) {
	for i := range a.lines {
		l := &a.lines[i]
		if l.State.Valid() {
			fn(lineAddr(l.Tag), l.State)
		}
	}
}

// SetOf exposes the set index for interleaving and diagnostics.
func (a *Array) SetOf(line mem.LineAddr) int { return a.set(line) }

// BankSelect address-interleaves lines across banks: consecutive lines map
// to consecutive banks (paper: S-NUCA address interleaving). banks must be
// a power of two.
func BankSelect(line mem.LineAddr, banks int) int {
	if banks <= 0 || banks&(banks-1) != 0 {
		panic(fmt.Sprintf("cache: bank count %d not a power of two", banks))
	}
	return int(tag(line) & uint64(banks-1))
}

// ilog2 returns floor(log2(v)); used by sizing helpers.
func ilog2(v uint64) int { return 63 - bits.LeadingZeros64(v) }
