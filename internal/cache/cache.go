// Package cache implements the functional storage model shared by every
// SRAM and DRAM cache in the simulated systems: a set-associative array of
// tagged lines with per-line coherence state and pluggable replacement.
//
// The array is purely functional (no timing); hierarchy levels own an Array
// and add their latency and protocol behaviour on top. This split keeps the
// protocol logic testable without a simulation clock.
//
// Two API layers address the same storage. The line-addressed methods
// (Lookup, Touch, SetState, Insert, InsertNonTemporal, Invalidate) are the
// readable reference: each re-finds the line by tag scan. The Way-handle
// methods (Probe, WayState, TouchWay, SetStateWay, InsertAt, DemoteWay)
// are the fast path: one Probe per access, O(1) mutators after it. A
// randomized differential test (differential_test.go) drives both against
// a naive model and proves them behaviourally identical.
package cache

import (
	"fmt"
	"math/bits"

	"repro/internal/mem"
)

// State is a per-line coherence state. The zero value is Invalid.
type State uint8

const (
	// Invalid: the line is not present.
	Invalid State = iota
	// Shared: read-only copy, other caches may also hold copies.
	Shared
	// Exclusive: clean, and the only copy in any cache.
	Exclusive
	// Owned: dirty, and this cache must answer requests for the line
	// (MOESI O state; other caches may hold Shared copies).
	Owned
	// Modified: dirty, and the only copy in any cache.
	Modified
)

func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Owned:
		return "O"
	case Modified:
		return "M"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Valid reports whether the state denotes a present line.
func (s State) Valid() bool { return s != Invalid }

// Dirty reports whether the state holds data newer than the next level.
func (s State) Dirty() bool { return s == Modified || s == Owned }

// Policy selects a replacement victim.
type Policy uint8

const (
	// LRU evicts the least recently used way (paper Table II baseline).
	LRU Policy = iota
	// RandomRepl evicts a pseudo-random way.
	RandomRepl
)

// Slot-word encoding: each way is one uint64 packing validity, coherence
// state and tag —
//
//	bit  0     valid
//	bits 1-3   State
//	bits 4-63  tag (line address / LineSize)
//
// so a tag scan, a state read and a fill each touch exactly 8 bytes per
// way. Recency lives in a parallel slice (see Array.used). One packed
// word per slot (rather than a tag/state struct) is what lets a
// direct-mapped DRAM-vault fill dirty a single cache line of a
// multi-megabyte array.
const (
	slotValid     = 1
	slotStateMask = 0b1110
	slotTagShift  = 4
)

func packSlot(t uint64, st State) uint64 { return t<<slotTagShift | uint64(st)<<1 | slotValid }

func slotState(v uint64) State { return State((v & slotStateMask) >> 1) }
func slotTag(v uint64) uint64  { return v >> slotTagShift }

// Array is a set-associative cache tag/state array.
type Array struct {
	sets   int
	ways   int
	policy Policy
	shift  uint // set-index shift (see NewBankedArray)
	tick   uint64
	rndst  uint64 // xorshift state for RandomRepl

	// slots holds the packed tag/state words, sets*ways, set-major;
	// 0 marks an empty slot.
	slots []uint64

	// used holds per-slot LRU timestamps. Slots of invalid lines carry
	// stale values harmlessly: the victim scan only runs on full sets,
	// and placement refreshes the slot it fills. Direct-mapped arrays
	// never read recency, so their mutators skip the write (and the
	// dirtied cache line) entirely.
	used []uint64

	// Occupancy tracks the number of valid lines, maintained incrementally
	// so invariant checks are O(1).
	occupied int
}

// NewBankedArray builds an array that is one bank of a larger
// address-interleaved cache: the low bankBits of the line index select the
// bank (see BankSelect), so the set index must come from the bits above
// them. Using the same bits for both would fold every line in the bank
// onto a single set and shrink the effective capacity to ways lines.
func NewBankedArray(sizeBytes int64, ways int, policy Policy, bankBits uint) *Array {
	a := NewArray(sizeBytes, ways, policy)
	a.shift = bankBits
	return a
}

// NewArray builds an array of the given total size in bytes. Size must be a
// multiple of ways*mem.LineSize and the resulting set count a power of two.
func NewArray(sizeBytes int64, ways int, policy Policy) *Array {
	if ways <= 0 {
		panic("cache: non-positive ways")
	}
	if sizeBytes%mem.LineSize != 0 {
		panic(fmt.Sprintf("cache: size %d not a multiple of the %dB line size", sizeBytes, mem.LineSize))
	}
	lines := sizeBytes / mem.LineSize
	if lines <= 0 || lines%int64(ways) != 0 {
		panic(fmt.Sprintf("cache: size %d not divisible into %d ways of %dB lines", sizeBytes, ways, mem.LineSize))
	}
	sets := lines / int64(ways)
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d not a power of two", sets))
	}
	return &Array{
		sets:   int(sets),
		ways:   ways,
		policy: policy,
		slots:  make([]uint64, lines),
		used:   make([]uint64, lines),
		rndst:  0x9E3779B97F4A7C15,
	}
}

// Sets returns the number of sets.
func (a *Array) Sets() int { return a.sets }

// Ways returns the associativity.
func (a *Array) Ways() int { return a.ways }

// SizeBytes returns the total capacity.
func (a *Array) SizeBytes() int64 { return int64(a.sets) * int64(a.ways) * mem.LineSize }

// Occupied returns the number of valid lines.
func (a *Array) Occupied() int { return a.occupied }

// tag converts a line address to the stored tag.
func tag(line mem.LineAddr) uint64 { return uint64(line) / mem.LineSize }

// lineAddr converts a stored tag back to a line address.
func lineAddr(t uint64) mem.LineAddr { return mem.LineAddr(t * mem.LineSize) }

// set returns the set index for a line address.
func (a *Array) set(line mem.LineAddr) int {
	return int((tag(line) >> a.shift) & uint64(a.sets-1))
}

// Way is a handle to one array slot, returned by Probe. It stays valid
// until the next mutation of the same set (Insert*, Invalidate or
// SetState/SetStateWay to Invalid); way-indexed mutators let a call site
// that has already probed skip every further tag scan. NoWay reports a
// miss.
type Way int32

// NoWay is the Probe result for an absent line.
const NoWay Way = -1

// Probe finds the line with a single tag scan and returns its slot handle,
// or NoWay when absent. It does not update recency; pair with TouchWay.
// (Written with the tag/set helpers spelled out: the function sits on
// every simulated access and must stay within the inlining budget.)
func (a *Array) Probe(line mem.LineAddr) Way {
	t := uint64(line) / mem.LineSize
	base := int(t>>a.shift&uint64(a.sets-1)) * a.ways
	want := t<<slotTagShift | slotValid
	for w, v := range a.slots[base : base+a.ways] {
		if v&^slotStateMask == want {
			return Way(base + w)
		}
	}
	return NoWay
}

// WayState returns the coherence state of the probed slot.
func (a *Array) WayState(w Way) State { return slotState(a.slots[w]) }

// TouchWay marks the probed slot most recently used. Direct-mapped arrays
// skip the recency write: with one way the victim choice never consults
// it, so the store would only dirty a cache line per hit.
func (a *Array) TouchWay(w Way) {
	if a.ways == 1 {
		return
	}
	a.tick++
	a.used[w] = a.tick
}

// SetStateWay updates the coherence state of the probed slot. Setting
// Invalid removes the line (and invalidates every outstanding Way handle
// for its set).
func (a *Array) SetStateWay(w Way, st State) {
	if st == Invalid {
		a.occupied--
		a.slots[w] = 0
		return
	}
	a.slots[w] = a.slots[w]&^slotStateMask | uint64(st)<<1
}

// DemoteWay moves the probed slot to LRU priority (the set's preferred
// victim), the way-indexed form of InsertNonTemporal's demotion. A no-op
// on direct-mapped arrays, where recency is never consulted.
func (a *Array) DemoteWay(w Way) {
	if a.ways > 1 {
		a.used[w] = 0
	}
}

// Lookup finds the line and returns its state without updating recency.
// It returns Invalid when absent.
func (a *Array) Lookup(line mem.LineAddr) State {
	if w := a.Probe(line); w != NoWay {
		return slotState(a.slots[w])
	}
	return Invalid
}

// Contains reports whether the line is present.
func (a *Array) Contains(line mem.LineAddr) bool { return a.Probe(line) != NoWay }

// Touch marks the line most recently used, returning false when absent.
func (a *Array) Touch(line mem.LineAddr) bool {
	w := a.Probe(line)
	if w == NoWay {
		return false
	}
	a.TouchWay(w)
	return true
}

// SetState updates the coherence state of a present line, returning false
// when absent. Setting Invalid removes the line.
func (a *Array) SetState(line mem.LineAddr, st State) bool {
	w := a.Probe(line)
	if w == NoWay {
		return false
	}
	a.SetStateWay(w, st)
	return true
}

// Eviction describes a line displaced by Insert.
type Eviction struct {
	Line  mem.LineAddr
	State State
}

// Dirty reports whether the victim must be written back.
func (e Eviction) Dirty() bool { return e.State.Dirty() }

// InsertNonTemporal places the line at LRU priority: it becomes the set's
// preferred victim, so streaming fills displace each other rather than
// reused lines. This models the anti-thrash insertion real LLCs apply to
// never-reused streams, and — at the reproduction's capacity scale — it
// reproduces the residency that plain LRU provides at paper scale, where
// set lifetimes are 512x longer relative to reuse intervals.
func (a *Array) InsertNonTemporal(line mem.LineAddr, st State) (ev Eviction, evicted bool) {
	w, ev, evicted := a.insert(line, st)
	a.DemoteWay(w)
	return ev, evicted
}

// Insert places the line in the array with the given state, evicting a
// victim if the set is full. It returns the eviction (ok=false when an
// invalid way was used). Inserting a line that is already present panics:
// callers must Lookup first — double insertion always indicates a protocol
// bug.
func (a *Array) Insert(line mem.LineAddr, st State) (ev Eviction, evicted bool) {
	_, ev, evicted = a.insert(line, st)
	return ev, evicted
}

// insert is Insert returning the way filled, so InsertNonTemporal can
// demote it without re-scanning the set.
func (a *Array) insert(line mem.LineAddr, st State) (w Way, ev Eviction, evicted bool) {
	if !st.Valid() {
		panic("cache: inserting invalid state")
	}
	s := a.set(line)
	t := tag(line)
	base := s * a.ways
	victim := -1
	for w, v := range a.slots[base : base+a.ways] {
		if v&slotValid != 0 && slotTag(v) == t {
			panic(fmt.Sprintf("cache: double insert of line %#x", uint64(line)))
		}
		if v == 0 && victim == -1 {
			victim = w
		}
	}
	return a.place(s, victim, t, st)
}

// InsertAt is the fast-path insert for a line Probe just reported absent:
// it fills the first invalid way (stopping the scan there) or evicts the
// policy victim, returning the way filled for DemoteWay. Unlike Insert it
// does not re-verify absence — calling it for a present line corrupts the
// set, which the differential suite would surface; callers must have
// probed the same array for the same line with no intervening mutation.
func (a *Array) InsertAt(line mem.LineAddr, st State) (w Way, ev Eviction, evicted bool) {
	if !st.Valid() {
		panic("cache: inserting invalid state")
	}
	s := a.set(line)
	victim := -1
	base := s * a.ways
	for i, v := range a.slots[base : base+a.ways] {
		if v == 0 {
			victim = i
			break
		}
	}
	return a.place(s, victim, tag(line), st)
}

// place fills the chosen way (or the policy victim when victim < 0) and
// maintains occupancy, recency and the eviction report.
func (a *Array) place(s, victim int, t uint64, st State) (w Way, ev Eviction, evicted bool) {
	if victim == -1 {
		victim = a.victim(s)
		v := a.slots[s*a.ways+victim]
		ev = Eviction{Line: lineAddr(slotTag(v)), State: slotState(v)}
		evicted = true
		a.occupied--
	}
	idx := s*a.ways + victim
	a.slots[idx] = packSlot(t, st)
	if a.ways > 1 {
		// Direct-mapped arrays skip recency (see TouchWay): one less
		// dirtied cache line per fill of the large vault arrays.
		a.tick++
		a.used[idx] = a.tick
	}
	a.occupied++
	return Way(idx), ev, evicted
}

// victim picks the replacement way in a full set.
func (a *Array) victim(set int) int {
	switch a.policy {
	case LRU:
		base := set * a.ways
		best, bestUsed := 0, a.used[base]
		for w := 1; w < a.ways; w++ {
			if u := a.used[base+w]; u < bestUsed {
				best, bestUsed = w, u
			}
		}
		return best
	case RandomRepl:
		a.rndst ^= a.rndst << 13
		a.rndst ^= a.rndst >> 7
		a.rndst ^= a.rndst << 17
		return int(a.rndst % uint64(a.ways))
	default:
		panic(fmt.Sprintf("cache: unknown policy %d", a.policy))
	}
}

// Invalidate removes the line, returning its prior state (Invalid when it
// was not present).
func (a *Array) Invalidate(line mem.LineAddr) State {
	w := a.Probe(line)
	if w == NoWay {
		return Invalid
	}
	st := slotState(a.slots[w])
	a.slots[w] = 0
	a.occupied--
	return st
}

// ForEach calls fn for every valid line. Iteration order is deterministic
// (set-major). fn must not mutate the array.
func (a *Array) ForEach(fn func(line mem.LineAddr, st State)) {
	for _, v := range a.slots {
		if v&slotValid != 0 {
			fn(lineAddr(slotTag(v)), slotState(v))
		}
	}
}

// SetOf exposes the set index for interleaving and diagnostics.
func (a *Array) SetOf(line mem.LineAddr) int { return a.set(line) }

// BankSelect address-interleaves lines across banks: consecutive lines map
// to consecutive banks (paper: S-NUCA address interleaving). banks must be
// a power of two.
func BankSelect(line mem.LineAddr, banks int) int {
	if banks <= 0 || banks&(banks-1) != 0 {
		panic(fmt.Sprintf("cache: bank count %d not a power of two", banks))
	}
	return int(tag(line) & uint64(banks-1))
}

// ilog2 returns floor(log2(v)); used by sizing helpers.
func ilog2(v uint64) int { return 63 - bits.LeadingZeros64(v) }
