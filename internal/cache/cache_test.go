package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func line(n uint64) mem.LineAddr { return mem.LineAddr(n * mem.LineSize) }

func TestNewArraySizing(t *testing.T) {
	a := NewArray(8<<20, 16, LRU) // paper baseline LLC: 8MB, 16-way
	if a.Sets() != 8192 || a.Ways() != 16 {
		t.Fatalf("8MB/16w array = %d sets x %d ways, want 8192x16", a.Sets(), a.Ways())
	}
	if a.SizeBytes() != 8<<20 {
		t.Fatalf("SizeBytes = %d", a.SizeBytes())
	}
}

func TestNewArrayPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewArray(0, 1, LRU) },
		func() { NewArray(64, 0, LRU) },
		func() { NewArray(3*64, 1, LRU) }, // 3 sets: not a power of two
		func() { NewArray(100, 1, LRU) },  // not line-divisible
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestInsertLookupInvalidate(t *testing.T) {
	a := NewArray(4*mem.LineSize, 2, LRU) // 2 sets x 2 ways
	if a.Contains(line(0)) {
		t.Fatal("empty array should not contain lines")
	}
	a.Insert(line(0), Exclusive)
	if got := a.Lookup(line(0)); got != Exclusive {
		t.Fatalf("Lookup = %v, want E", got)
	}
	if st := a.Invalidate(line(0)); st != Exclusive {
		t.Fatalf("Invalidate returned %v, want E", st)
	}
	if a.Contains(line(0)) || a.Occupied() != 0 {
		t.Fatal("line should be gone")
	}
	if st := a.Invalidate(line(0)); st != Invalid {
		t.Fatal("second invalidate should report Invalid")
	}
}

func TestLRUVictim(t *testing.T) {
	a := NewArray(4*mem.LineSize, 4, LRU) // 1 set x 4 ways
	for i := uint64(0); i < 4; i++ {
		a.Insert(line(i), Shared)
	}
	a.Touch(line(0)) // 0 becomes MRU; 1 is now LRU
	ev, evicted := a.Insert(line(9), Shared)
	if !evicted || ev.Line != line(1) {
		t.Fatalf("evicted %v (%v), want line 1", ev.Line, evicted)
	}
}

func TestEvictionDirtyFlag(t *testing.T) {
	a := NewArray(mem.LineSize, 1, LRU) // 1 set x 1 way
	a.Insert(line(0), Modified)
	ev, evicted := a.Insert(line(1), Shared)
	if !evicted || !ev.Dirty() || ev.State != Modified {
		t.Fatalf("eviction = %+v, want dirty M line", ev)
	}
	ev, evicted = a.Insert(line(2), Owned)
	if !evicted || ev.Dirty() {
		t.Fatalf("S eviction should be clean, got %+v", ev)
	}
	ev, _ = a.Insert(line(3), Shared)
	if !ev.Dirty() {
		t.Fatal("Owned lines are dirty and must write back")
	}
}

func TestDoubleInsertPanics(t *testing.T) {
	a := NewArray(4*mem.LineSize, 2, LRU)
	a.Insert(line(0), Shared)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double insert")
		}
	}()
	a.Insert(line(0), Modified)
}

func TestInsertInvalidStatePanics(t *testing.T) {
	a := NewArray(4*mem.LineSize, 2, LRU)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.Insert(line(0), Invalid)
}

func TestSetStateTransitions(t *testing.T) {
	a := NewArray(4*mem.LineSize, 2, LRU)
	a.Insert(line(0), Shared)
	if !a.SetState(line(0), Modified) {
		t.Fatal("SetState on present line failed")
	}
	if a.Lookup(line(0)) != Modified {
		t.Fatal("state not updated")
	}
	if a.SetState(line(5), Shared) {
		t.Fatal("SetState on absent line should fail")
	}
	// Setting Invalid removes.
	if !a.SetState(line(0), Invalid) || a.Contains(line(0)) || a.Occupied() != 0 {
		t.Fatal("SetState(Invalid) should remove the line")
	}
}

func TestDirectMappedConflicts(t *testing.T) {
	a := NewArray(4*mem.LineSize, 1, LRU) // 4 sets, direct-mapped
	a.Insert(line(0), Shared)
	// line(4) maps to the same set as line(0) in a 4-set array.
	ev, evicted := a.Insert(line(4), Shared)
	if !evicted || ev.Line != line(0) {
		t.Fatalf("direct-mapped conflict should evict line 0, got %v %v", ev, evicted)
	}
	// line(1) goes to a different set.
	if _, evicted := a.Insert(line(1), Shared); evicted {
		t.Fatal("no conflict expected in different set")
	}
}

func TestStateHelpers(t *testing.T) {
	if Invalid.Valid() || !Shared.Valid() {
		t.Fatal("Valid misclassifies")
	}
	if Shared.Dirty() || Exclusive.Dirty() || !Modified.Dirty() || !Owned.Dirty() {
		t.Fatal("Dirty misclassifies")
	}
	for st, want := range map[State]string{Invalid: "I", Shared: "S", Exclusive: "E", Owned: "O", Modified: "M"} {
		if st.String() != want {
			t.Fatalf("%v.String() = %q", uint8(st), st.String())
		}
	}
}

func TestBankSelect(t *testing.T) {
	// Consecutive lines round-robin across banks.
	for i := uint64(0); i < 64; i++ {
		if got := BankSelect(line(i), 16); got != int(i%16) {
			t.Fatalf("BankSelect(line %d) = %d, want %d", i, got, i%16)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two banks")
		}
	}()
	BankSelect(line(0), 3)
}

func TestForEachDeterministic(t *testing.T) {
	a := NewArray(8*mem.LineSize, 2, LRU)
	for i := uint64(0); i < 6; i++ {
		a.Insert(line(i), Shared)
	}
	var first, second []mem.LineAddr
	a.ForEach(func(l mem.LineAddr, _ State) { first = append(first, l) })
	a.ForEach(func(l mem.LineAddr, _ State) { second = append(second, l) })
	if len(first) != 6 || len(second) != 6 {
		t.Fatalf("ForEach visited %d/%d lines, want 6", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatal("ForEach order not deterministic")
		}
	}
}

// Property: occupancy never exceeds capacity and matches a reference count,
// under arbitrary insert/invalidate sequences.
func TestOccupancyInvariant(t *testing.T) {
	f := func(ops []uint16) bool {
		a := NewArray(16*mem.LineSize, 2, LRU) // 8 sets x 2 ways
		ref := map[mem.LineAddr]bool{}
		for _, op := range ops {
			l := line(uint64(op % 64))
			if op&0x8000 != 0 {
				if st := a.Invalidate(l); st.Valid() != ref[l] {
					return false
				}
				delete(ref, l)
				continue
			}
			if a.Contains(l) {
				a.Touch(l)
				continue
			}
			ev, evicted := a.Insert(l, Shared)
			ref[l] = true
			if evicted {
				if !ref[ev.Line] {
					return false // evicted something we did not insert
				}
				delete(ref, ev.Line)
			}
		}
		if a.Occupied() != len(ref) {
			return false
		}
		if a.Occupied() > 16 {
			return false
		}
		// Everything in ref must still be present.
		for l := range ref {
			if !a.Contains(l) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: LRU stack property — with a single set, re-inserting N distinct
// lines in order and then inserting one more evicts the least recently
// touched line.
func TestLRUStackProperty(t *testing.T) {
	f := func(touchIdx uint8) bool {
		a := NewArray(8*mem.LineSize, 8, LRU) // 1 set x 8 ways
		for i := uint64(0); i < 8; i++ {
			a.Insert(line(i), Shared)
		}
		keep := uint64(touchIdx % 8)
		// Touch all except one line; that one must be the victim.
		for i := uint64(0); i < 8; i++ {
			if i != keep {
				a.Touch(line(i))
			}
		}
		ev, evicted := a.Insert(line(100), Shared)
		return evicted && ev.Line == line(keep)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestStampRenormalizationPreservesLRUOrder saturates the 20-bit in-word
// recency stamp of one set and checks the victim ordering survives the
// renormalization to ranks (bit-identical to the former global-tick LRU).
func TestStampRenormalizationPreservesLRUOrder(t *testing.T) {
	a := NewArray(4*mem.LineSize, 4, LRU) // 1 set x 4 ways
	for i := uint64(0); i < 4; i++ {
		a.Insert(line(i), Shared)
	}
	// Force the stamp field past its 2^20-1 ceiling (several renorms).
	for i := 0; i < (1<<20)+50; i++ {
		a.Touch(line(uint64(i % 4)))
	}
	// Establish a known order: line 1 least recent, then 2, 3, 0.
	a.Touch(line(2))
	a.Touch(line(3))
	a.Touch(line(0))
	ev, evicted := a.Insert(line(9), Shared)
	if !evicted || ev.Line != line(1) {
		t.Fatalf("evicted %#x (%v), want line 1 after renormalization", uint64(ev.Line), evicted)
	}
}

// TestDemoteTieBreaksByLowestWay pins the demoted-class tie rule: two
// demoted ways both sit at stamp 0 and the victim scan must take the
// lowest way index, exactly as the pre-fold LRU did.
func TestDemoteTieBreaksByLowestWay(t *testing.T) {
	a := NewArray(4*mem.LineSize, 4, LRU)
	for i := uint64(0); i < 4; i++ {
		a.Insert(line(i), Shared)
	}
	for i := uint64(0); i < 4; i++ {
		a.Touch(line(i))
	}
	// Demote in high-to-low way order; the tie must still break low.
	a.DemoteWay(a.Probe(line(2)))
	a.DemoteWay(a.Probe(line(1)))
	ev, evicted := a.Insert(line(9), Shared)
	if !evicted || ev.Line != line(1) {
		t.Fatalf("evicted %#x (%v), want line 1 (lowest demoted way)", uint64(ev.Line), evicted)
	}
	// The other demoted way is next.
	ev, evicted = a.Insert(line(13), Shared)
	if !evicted || ev.Line != line(2) {
		t.Fatalf("second eviction %#x (%v), want line 2", uint64(ev.Line), evicted)
	}
}

// TestOversizedTagPanics pins the packed-slot address bound: tags beyond
// the 40-bit field must fail loudly on insert, not alias silently.
func TestOversizedTagPanics(t *testing.T) {
	a := NewArray(4*mem.LineSize, 2, LRU)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for a tag beyond 2^40")
		}
	}()
	a.Insert(mem.LineAddr(uint64(1)<<47), Shared)
}

func TestRandomReplStaysInBounds(t *testing.T) {
	a := NewArray(8*mem.LineSize, 8, RandomRepl)
	for i := uint64(0); i < 8; i++ {
		a.Insert(line(i), Shared)
	}
	// Fill beyond capacity many times; occupancy stays at 8 and every
	// eviction is a line we inserted.
	for i := uint64(8); i < 200; i++ {
		ev, evicted := a.Insert(line(i), Shared)
		if !evicted {
			t.Fatal("full set must evict")
		}
		if !a.Contains(line(i)) {
			t.Fatal("inserted line missing")
		}
		if a.Contains(ev.Line) {
			t.Fatal("evicted line still present")
		}
		if a.Occupied() != 8 {
			t.Fatalf("occupancy %d, want 8", a.Occupied())
		}
	}
}

func TestIlog2(t *testing.T) {
	cases := map[uint64]int{1: 0, 2: 1, 3: 1, 4: 2, 1024: 10}
	for v, want := range cases {
		if got := ilog2(v); got != want {
			t.Errorf("ilog2(%d) = %d, want %d", v, got, want)
		}
	}
}
