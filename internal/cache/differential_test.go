package cache

import (
	"fmt"
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
)

// The differential suite drives three implementations through identical
// randomized operation sequences and demands identical observable behaviour:
//
//   - a naive map-of-sets model (modelArray below) — the readable reference
//     semantics, independent of the packed-slot representation;
//   - an Array used through the line-addressed API (Lookup/Touch/SetState/
//     Insert/InsertNonTemporal/Invalidate);
//   - an Array used through the Way-handle fast path (Probe/WayState/
//     TouchWay/SetStateWay/InsertAt/DemoteWay).
//
// CI runs it under -race alongside the scheduler differential (DESIGN.md §7).

// modelLine is one slot of the naive model.
type modelLine struct {
	line  mem.LineAddr
	state State
	used  uint64
	valid bool
}

// modelArray reimplements the array contract with straightforward code: a
// slice of sets, each a positional slice of ways, LRU by explicit stamps.
type modelArray struct {
	sets, ways int
	shift      uint
	tick       uint64
	slots      [][]modelLine
}

func newModelArray(sets, ways int, shift uint) *modelArray {
	m := &modelArray{sets: sets, ways: ways, shift: shift, slots: make([][]modelLine, sets)}
	for i := range m.slots {
		m.slots[i] = make([]modelLine, ways)
	}
	return m
}

func (m *modelArray) set(line mem.LineAddr) int {
	return int((uint64(line) / mem.LineSize >> m.shift) & uint64(m.sets-1))
}

func (m *modelArray) find(line mem.LineAddr) *modelLine {
	for w := range m.slots[m.set(line)] {
		l := &m.slots[m.set(line)][w]
		if l.valid && l.line == line {
			return l
		}
	}
	return nil
}

func (m *modelArray) lookup(line mem.LineAddr) State {
	if l := m.find(line); l != nil {
		return l.state
	}
	return Invalid
}

func (m *modelArray) touch(line mem.LineAddr) bool {
	l := m.find(line)
	if l == nil {
		return false
	}
	if m.ways > 1 {
		m.tick++
		l.used = m.tick
	}
	return true
}

func (m *modelArray) setState(line mem.LineAddr, st State) bool {
	l := m.find(line)
	if l == nil {
		return false
	}
	if st == Invalid {
		*l = modelLine{}
		return true
	}
	l.state = st
	return true
}

func (m *modelArray) invalidate(line mem.LineAddr) State {
	l := m.find(line)
	if l == nil {
		return Invalid
	}
	st := l.state
	*l = modelLine{}
	return st
}

// insert mirrors the contract: first invalid way, else the LRU victim
// (lowest stamp, lowest way on ties).
func (m *modelArray) insert(line mem.LineAddr, st State, demote bool) (ev Eviction, evicted bool) {
	s := m.set(line)
	victim := -1
	for w := range m.slots[s] {
		if !m.slots[s][w].valid {
			victim = w
			break
		}
	}
	if victim == -1 {
		victim = 0
		for w := 1; w < m.ways; w++ {
			if m.slots[s][w].used < m.slots[s][victim].used {
				victim = w
			}
		}
		v := &m.slots[s][victim]
		ev, evicted = Eviction{Line: v.line, State: v.state}, true
	}
	l := &m.slots[s][victim]
	*l = modelLine{line: line, state: st, valid: true}
	if m.ways > 1 {
		m.tick++
		l.used = m.tick
	}
	if demote {
		l.used = 0
	}
	return ev, evicted
}

func (m *modelArray) occupied() int {
	n := 0
	for s := range m.slots {
		for w := range m.slots[s] {
			if m.slots[s][w].valid {
				n++
			}
		}
	}
	return n
}

// dump returns the model contents in the array's deterministic set-major
// order (within a set, any way order — compared as per-line maps).
func (m *modelArray) dump() map[mem.LineAddr]State {
	out := map[mem.LineAddr]State{}
	for s := range m.slots {
		for w := range m.slots[s] {
			if m.slots[s][w].valid {
				out[m.slots[s][w].line] = m.slots[s][w].state
			}
		}
	}
	return out
}

func runArrayDifferential(t *testing.T, sets, ways int, shift uint, seed uint64, ops int) {
	t.Helper()
	size := int64(sets) * int64(ways) * mem.LineSize
	ref := NewArray(size, ways, LRU)
	fast := NewArray(size, ways, LRU)
	if shift > 0 {
		ref = NewBankedArray(size, ways, LRU, shift)
		fast = NewBankedArray(size, ways, LRU, shift)
	}
	model := newModelArray(sets, ways, shift)
	rng := sim.NewRNG(seed)

	// Address pool ~2x capacity so sets conflict; strides exercise shift.
	lines := make([]mem.LineAddr, 2*sets*ways+3)
	for i := range lines {
		lines[i] = mem.LineAddr(uint64(i) * mem.LineSize << shift)
	}

	states := []State{Shared, Exclusive, Owned, Modified}
	for i := 0; i < ops; i++ {
		line := lines[rng.Uint64n(uint64(len(lines)))]
		switch rng.Uint64n(6) {
		case 0: // lookup/probe agreement
			want := model.lookup(line)
			if got := ref.Lookup(line); got != want {
				t.Fatalf("op %d: ref.Lookup(%#x) = %v, model %v", i, uint64(line), got, want)
			}
			w := fast.Probe(line)
			if (w != NoWay) != want.Valid() {
				t.Fatalf("op %d: fast.Probe(%#x) = %d, model %v", i, uint64(line), w, want)
			}
			if w != NoWay && fast.WayState(w) != want {
				t.Fatalf("op %d: fast.WayState = %v, model %v", i, fast.WayState(w), want)
			}
		case 1: // touch — alternate the two-step and fused fast forms
			want := model.touch(line)
			if got := ref.Touch(line); got != want {
				t.Fatalf("op %d: ref.Touch = %v, model %v", i, got, want)
			}
			if i%2 == 0 {
				if w := fast.ProbeTouch(line); (w != NoWay) != want {
					t.Fatalf("op %d: fast.ProbeTouch hit=%v, model %v", i, w != NoWay, want)
				}
				break
			}
			if w := fast.Probe(line); w != NoWay {
				if !want {
					t.Fatalf("op %d: fast probe hit, model absent", i)
				}
				fast.TouchWay(w)
			} else if want {
				t.Fatalf("op %d: fast probe miss, model present", i)
			}
		case 2: // setstate (sometimes Invalid)
			st := states[rng.Uint64n(4)]
			if rng.Uint64n(8) == 0 {
				st = Invalid
			}
			want := model.setState(line, st)
			if got := ref.SetState(line, st); got != want {
				t.Fatalf("op %d: ref.SetState = %v, model %v", i, got, want)
			}
			if w := fast.Probe(line); w != NoWay {
				fast.SetStateWay(w, st)
			} else if want {
				t.Fatalf("op %d: fast probe miss on present line", i)
			}
		case 3: // invalidate
			want := model.invalidate(line)
			if got := ref.Invalidate(line); got != want {
				t.Fatalf("op %d: ref.Invalidate = %v, model %v", i, got, want)
			}
			if w := fast.Probe(line); w != NoWay {
				fast.SetStateWay(w, Invalid)
			} else if want.Valid() {
				t.Fatalf("op %d: fast probe miss on present line", i)
			}
		case 4, 5: // insert (plain or non-temporal) when absent
			if model.lookup(line).Valid() {
				continue
			}
			st := states[rng.Uint64n(4)]
			demote := rng.Uint64n(4) == 0
			wantEv, wantEvicted := model.insert(line, st, demote)
			var refEv Eviction
			var refEvicted bool
			if demote {
				refEv, refEvicted = ref.InsertNonTemporal(line, st)
			} else {
				refEv, refEvicted = ref.Insert(line, st)
			}
			if fast.Probe(line) != NoWay {
				t.Fatalf("op %d: fast probe hit before insert", i)
			}
			w, fastEv, fastEvicted := fast.InsertAt(line, st)
			if demote {
				fast.DemoteWay(w)
			}
			if refEvicted != wantEvicted || fastEvicted != wantEvicted {
				t.Fatalf("op %d: evicted ref=%v fast=%v model=%v", i, refEvicted, fastEvicted, wantEvicted)
			}
			if wantEvicted && (refEv != wantEv || fastEv != wantEv) {
				t.Fatalf("op %d: eviction ref=%+v fast=%+v model=%+v", i, refEv, fastEv, wantEv)
			}
		}
		if i%512 == 0 {
			compareArrays(t, i, ref, fast, model)
		}
	}
	compareArrays(t, ops, ref, fast, model)
}

func compareArrays(t *testing.T, op int, ref, fast *Array, model *modelArray) {
	t.Helper()
	want := model.dump()
	for name, a := range map[string]*Array{"ref": ref, "fast": fast} {
		if a.Occupied() != len(want) {
			t.Fatalf("op %d: %s occupied %d, model %d", op, name, a.Occupied(), len(want))
		}
		a.ForEach(func(line mem.LineAddr, st State) {
			if want[line] != st {
				t.Fatalf("op %d: %s holds %#x=%v, model %v", op, name, uint64(line), st, want[line])
			}
		})
	}
}

// TestArrayDifferential exercises the three implementations across the
// geometries the simulated systems use: multi-way L1/LLC shapes, the
// direct-mapped vault shape, and a banked (shifted) bank shape.
func TestArrayDifferential(t *testing.T) {
	cases := []struct {
		sets, ways int
		shift      uint
	}{
		{4, 8, 0},  // L1 shape
		{8, 16, 0}, // LLC bank shape
		{64, 1, 0}, // direct-mapped vault shape
		{16, 1, 4}, // banked direct-mapped (VaultsShared bank)
		{8, 2, 2},  // banked set-associative
		{1, 4, 0},  // single-set stress
	}
	for ci, c := range cases {
		c := c
		t.Run(fmt.Sprintf("%dsx%dw_shift%d", c.sets, c.ways, c.shift), func(t *testing.T) {
			for seed := uint64(1); seed <= 3; seed++ {
				runArrayDifferential(t, c.sets, c.ways, c.shift, seed*7919+uint64(ci), 6000)
			}
		})
	}
}
