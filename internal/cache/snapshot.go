package cache

import (
	"fmt"

	"repro/internal/checkpoint"
)

// Snapshot serializes the Array's mutable state: packed slot words,
// per-set recency counters, way hints, occupancy, and the random-
// replacement xorshift state. Geometry (sets/ways/policy/shift) is
// written only to be validated on Restore — the restoring Array is
// always freshly constructed from the live Config.
func (a *Array) Snapshot(w *checkpoint.Writer) {
	w.Section("cache.Array")
	w.U64(uint64(a.sets))
	w.U64(uint64(a.ways))
	w.U8(uint8(a.policy))
	w.U64(uint64(a.shift))
	w.Bool(a.lru)
	w.U64(a.rndst)
	w.I64(int64(a.occupied))
	w.U64s(a.slots)
	w.U32s(a.setTick)
	w.U8s(a.hint)
}

// Restore overwrites a freshly constructed Array with snapshotted
// state. Any geometry mismatch — the checkpoint was cut for a different
// configuration — is an error, never a panic.
func (a *Array) Restore(r *checkpoint.Reader) error {
	if err := r.Section("cache.Array"); err != nil {
		return err
	}
	sets, ways := int(r.U64()), int(r.U64())
	policy := Policy(r.U8())
	shift := uint(r.U64())
	lru := r.Bool()
	rndst := r.U64()
	occupied := int(r.I64())
	slots := r.U64s()
	setTick := r.U32s()
	hint := r.U8s()
	if err := r.Err(); err != nil {
		return err
	}
	if sets != a.sets || ways != a.ways || policy != a.policy || shift != a.shift || lru != a.lru {
		return fmt.Errorf("cache: checkpoint geometry %d sets x %d ways policy %d shift %d lru %v, array has %d x %d policy %d shift %d lru %v",
			sets, ways, policy, shift, lru, a.sets, a.ways, a.policy, a.shift, a.lru)
	}
	if len(slots) != len(a.slots) || len(setTick) != len(a.setTick) || len(hint) != len(a.hint) {
		return fmt.Errorf("cache: checkpoint slab sizes %d/%d/%d, array has %d/%d/%d",
			len(slots), len(setTick), len(hint), len(a.slots), len(a.setTick), len(a.hint))
	}
	if occupied < 0 || occupied > len(slots) {
		return fmt.Errorf("cache: checkpoint occupancy %d outside [0,%d]", occupied, len(slots))
	}
	copy(a.slots, slots)
	copy(a.setTick, setTick)
	copy(a.hint, hint)
	a.occupied = occupied
	a.rndst = rndst
	return nil
}
