// Package checkpoint implements the versioned, content-addressed
// warm-state checkpoint format (DESIGN.md §11). A checkpoint captures a
// system after Prewarm + WarmFunctional — the expensive part of every
// paper-scale run — so later runs with the same warm-relevant inputs
// restore it in roughly file-read time instead of re-simulating tens of
// millions of functional accesses.
//
// # Format
//
//	magic    "SILOCKPT"                  (8 bytes)
//	version  uint32 LE                   (FormatVersion)
//	key      length-prefixed string      (robust.Key over warm inputs)
//	meta     length-prefixed string      (human-readable JSON, for -checkpoint-ls)
//	payload  section-framed component snapshots
//	crc      uint32 LE                   (CRC-32C over key, meta and payload)
//
// Every scalar is little-endian. Slices are a uint64 length followed by
// the elements. Sections are length-prefixed names written by each
// component's Snapshot and verified by its Restore, so a reader that
// drifts out of sync fails on the next section check instead of
// silently misinterpreting bytes. The trailing CRC-32C (Castagnoli,
// hardware-accelerated on amd64/arm64) is verified by Reader.Finish
// before a restored system is accepted.
//
// Every failure mode — torn file, flipped byte, stale version, key
// mismatch — surfaces as an error from Open/Reader methods/Finish,
// never a panic: callers fall back to a from-scratch build.
package checkpoint

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// ioBufSize sizes the bufio layers; checkpoints stream hundreds of
// megabytes at Scale 1, so a generous buffer keeps syscall counts low.
const ioBufSize = 1 << 20

func newBufWriter(w io.Writer) *bufio.Writer { return bufio.NewWriterSize(w, ioBufSize) }
func newBufReader(r io.Reader) *bufio.Reader { return bufio.NewReaderSize(r, ioBufSize) }

// Magic identifies a checkpoint file.
const Magic = "SILOCKPT"

// FormatVersion is bumped whenever any component's snapshot layout
// changes; a mismatch makes Open fail and the caller rebuild from
// scratch.
const FormatVersion = 1

// FormatTag names the format generation inside content-hash keys, so
// key derivation itself is versioned alongside the byte layout.
const FormatTag = "ckpt-v1"

// maxSliceLen bounds slice lengths read from a file before the CRC has
// been verified, so a corrupt length cannot trigger a multi-gigabyte
// allocation. The largest legitimate slice is a Scale-1 line-table slab
// (tens of millions of slots), far below this.
const maxSliceLen = 1 << 28

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Snapshotter is the per-component seam: Snapshot serializes the
// component's mutable state, Restore overwrites a freshly constructed
// component with it. Restore must validate geometry against the
// receiver (built from the live Config) and return an error — never
// panic — on any mismatch.
type Snapshotter interface {
	Snapshot(w *Writer)
	Restore(r *Reader) error
}

// Writer serializes checkpoint payloads with a sticky error and a
// running CRC. All methods are no-ops once an error is set.
type Writer struct {
	w       io.Writer
	crc     uint32
	err     error
	scratch [8]byte
	buf     []byte // bulk-slice staging
}

// NewWriter wraps w. Callers normally use Save instead.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Err returns the sticky error, if any.
func (w *Writer) Err() error { return w.err }

func (w *Writer) write(p []byte) {
	if w.err != nil {
		return
	}
	w.crc = crc32.Update(w.crc, castagnoli, p)
	if _, err := w.w.Write(p); err != nil {
		w.err = err
	}
}

// writeRaw bypasses the CRC (magic and version only).
func (w *Writer) writeRaw(p []byte) {
	if w.err != nil {
		return
	}
	if _, err := w.w.Write(p); err != nil {
		w.err = err
	}
}

// U64 writes one little-endian uint64.
func (w *Writer) U64(v uint64) {
	binary.LittleEndian.PutUint64(w.scratch[:], v)
	w.write(w.scratch[:8])
}

// U32 writes one little-endian uint32.
func (w *Writer) U32(v uint32) {
	binary.LittleEndian.PutUint32(w.scratch[:4], v)
	w.write(w.scratch[:4])
}

// U8 writes one byte.
func (w *Writer) U8(v uint8) {
	w.scratch[0] = v
	w.write(w.scratch[:1])
}

// I64 writes one little-endian int64.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Bool writes a bool as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// String writes a length-prefixed string.
func (w *Writer) String(s string) {
	w.U64(uint64(len(s)))
	w.write([]byte(s))
}

// Bytes writes a length-prefixed byte slice.
func (w *Writer) Bytes(p []byte) {
	w.U64(uint64(len(p)))
	w.write(p)
}

const bulkChunk = 8192 // elements per staging flush

// U64s writes a length-prefixed []uint64 in bulk chunks.
func (w *Writer) U64s(s []uint64) {
	w.U64(uint64(len(s)))
	if w.buf == nil {
		w.buf = make([]byte, bulkChunk*8)
	}
	for len(s) > 0 {
		n := len(s)
		if n > bulkChunk {
			n = bulkChunk
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(w.buf[i*8:], s[i])
		}
		w.write(w.buf[:n*8])
		s = s[n:]
	}
}

// U32s writes a length-prefixed []uint32 in bulk chunks.
func (w *Writer) U32s(s []uint32) {
	w.U64(uint64(len(s)))
	if w.buf == nil {
		w.buf = make([]byte, bulkChunk*8)
	}
	for len(s) > 0 {
		n := len(s)
		if n > bulkChunk*2 {
			n = bulkChunk * 2
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(w.buf[i*4:], s[i])
		}
		w.write(w.buf[:n*4])
		s = s[n:]
	}
}

// U8s writes a length-prefixed []uint8.
func (w *Writer) U8s(s []uint8) { w.Bytes(s) }

// Section writes a section marker; Reader.Section verifies it, so a
// producer/consumer drift fails fast with a named location.
func (w *Writer) Section(name string) { w.String(name) }

// Finish writes the trailing CRC. Save calls it automatically; it is
// exported for in-memory Writer/Reader round trips (tests,
// size probes).
func (w *Writer) Finish() error {
	if w.err != nil {
		return w.err
	}
	binary.LittleEndian.PutUint32(w.scratch[:4], w.crc)
	w.writeRaw(w.scratch[:4])
	return w.err
}

// Reader deserializes checkpoint payloads with a sticky error and a
// running CRC mirroring Writer's.
type Reader struct {
	r       io.Reader
	crc     uint32
	err     error
	scratch [8]byte
	buf     []byte

	// Header fields populated by Open.
	Key  string
	Meta string

	close io.Closer
}

// NewReader wraps r. Callers normally use Open instead.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// Err returns the sticky error, if any.
func (r *Reader) Err() error { return r.err }

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *Reader) read(p []byte) bool {
	if r.err != nil {
		return false
	}
	if _, err := io.ReadFull(r.r, p); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		r.err = fmt.Errorf("checkpoint: truncated: %w", err)
		return false
	}
	r.crc = crc32.Update(r.crc, castagnoli, p)
	return true
}

// readRaw bypasses the CRC (magic, version, trailing checksum).
func (r *Reader) readRaw(p []byte) bool {
	if r.err != nil {
		return false
	}
	if _, err := io.ReadFull(r.r, p); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		r.err = fmt.Errorf("checkpoint: truncated: %w", err)
		return false
	}
	return true
}

// U64 reads one little-endian uint64.
func (r *Reader) U64() uint64 {
	if !r.read(r.scratch[:8]) {
		return 0
	}
	return binary.LittleEndian.Uint64(r.scratch[:8])
}

// U32 reads one little-endian uint32.
func (r *Reader) U32() uint32 {
	if !r.read(r.scratch[:4]) {
		return 0
	}
	return binary.LittleEndian.Uint32(r.scratch[:4])
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	if !r.read(r.scratch[:1]) {
		return 0
	}
	return r.scratch[0]
}

// I64 reads one little-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Bool reads one byte as a bool.
func (r *Reader) Bool() bool { return r.U8() != 0 }

func (r *Reader) sliceLen() int {
	n := r.U64()
	if r.err != nil {
		return 0
	}
	if n > maxSliceLen {
		r.fail(fmt.Errorf("checkpoint: corrupt slice length %d", n))
		return 0
	}
	return int(n)
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.sliceLen()
	if r.err != nil || n == 0 {
		return ""
	}
	p := make([]byte, n)
	if !r.read(p) {
		return ""
	}
	return string(p)
}

// Bytes reads a length-prefixed byte slice.
func (r *Reader) Bytes() []byte {
	n := r.sliceLen()
	if r.err != nil {
		return nil
	}
	p := make([]byte, n)
	if n > 0 && !r.read(p) {
		return nil
	}
	return p
}

// U64s reads a length-prefixed []uint64 in bulk chunks.
func (r *Reader) U64s() []uint64 {
	n := r.sliceLen()
	if r.err != nil {
		return nil
	}
	out := make([]uint64, n)
	if r.buf == nil {
		r.buf = make([]byte, bulkChunk*8)
	}
	for i := 0; i < n; {
		c := n - i
		if c > bulkChunk {
			c = bulkChunk
		}
		if !r.read(r.buf[:c*8]) {
			return nil
		}
		for j := 0; j < c; j++ {
			out[i+j] = binary.LittleEndian.Uint64(r.buf[j*8:])
		}
		i += c
	}
	return out
}

// U32s reads a length-prefixed []uint32 in bulk chunks.
func (r *Reader) U32s() []uint32 {
	n := r.sliceLen()
	if r.err != nil {
		return nil
	}
	out := make([]uint32, n)
	if r.buf == nil {
		r.buf = make([]byte, bulkChunk*8)
	}
	for i := 0; i < n; {
		c := n - i
		if c > bulkChunk*2 {
			c = bulkChunk * 2
		}
		if !r.read(r.buf[:c*4]) {
			return nil
		}
		for j := 0; j < c; j++ {
			out[i+j] = binary.LittleEndian.Uint32(r.buf[j*4:])
		}
		i += c
	}
	return out
}

// U8s reads a length-prefixed []uint8.
func (r *Reader) U8s() []uint8 { return r.Bytes() }

// Section verifies the next section marker.
func (r *Reader) Section(name string) error {
	got := r.String()
	if r.err != nil {
		return r.err
	}
	if got != name {
		r.fail(fmt.Errorf("checkpoint: section mismatch: want %q, got %q", name, got))
	}
	return r.err
}

// Finish verifies the trailing CRC over everything read so far. It must
// be called (and succeed) before a restored system is trusted.
func (r *Reader) Finish() error {
	if r.err != nil {
		return r.err
	}
	want := r.crc
	if !r.readRaw(r.scratch[:4]) {
		return r.err
	}
	got := binary.LittleEndian.Uint32(r.scratch[:4])
	if got != want {
		r.fail(fmt.Errorf("checkpoint: checksum mismatch (file %08x, computed %08x)", got, want))
	}
	return r.err
}

// Close releases the underlying file when the Reader came from Open.
func (r *Reader) Close() error {
	if r.close != nil {
		err := r.close.Close()
		r.close = nil
		return err
	}
	return nil
}

// Save streams a checkpoint to path atomically: payload is written to a
// same-directory temp file and moved into place with fsync + rename
// (robust.CommitFile), so a crash mid-save never leaves a torn
// checkpoint under the final name. Concurrent saves of the same key are
// benign — last rename wins with identical content.
func Save(path, key, meta string, write func(*Writer) error) (err error) {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(name)
		}
	}()

	bw := newBufWriter(tmp)
	w := NewWriter(bw)
	w.writeRaw([]byte(Magic))
	var vbuf [4]byte
	binary.LittleEndian.PutUint32(vbuf[:], FormatVersion)
	w.writeRaw(vbuf[:])
	w.String(key)
	w.String(meta)
	if err := write(w); err != nil {
		return err
	}
	if err := w.Finish(); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		tmp = nil
		os.Remove(name)
		return err
	}
	tmp = nil
	if err := commitFile(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}

// commitFile atomically moves a finished temp file into place (fsync +
// rename + directory fsync). It mirrors robust.CommitFile, which this
// package cannot import: robust depends on sim (fault injection), and
// sim's engine snapshot seam depends on this package.
func commitFile(tmp, path string) error {
	f, err := os.Open(tmp)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("sync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// ErrKeyMismatch reports a checkpoint whose content key does not match
// the caller's expectation — same filename, different warm inputs (or a
// renamed file). Callers rebuild from scratch.
var ErrKeyMismatch = errors.New("checkpoint: key mismatch")

// ErrVersionMismatch reports a checkpoint written by a different format
// generation. Callers rebuild from scratch.
var ErrVersionMismatch = errors.New("checkpoint: format version mismatch")

// Open validates a checkpoint header against wantKey and returns a
// Reader positioned at the payload. Any failure — missing file, bad
// magic, stale version, foreign key — is an error; the caller falls
// back to a from-scratch build. An empty wantKey skips the key check
// (used by -checkpoint-ls, which inspects every file).
func Open(path, wantKey string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r := NewReader(newBufReader(f))
	r.close = f
	var hdr [len(Magic) + 4]byte
	if !r.readRaw(hdr[:]) {
		f.Close()
		return nil, r.err
	}
	if string(hdr[:len(Magic)]) != Magic {
		f.Close()
		return nil, fmt.Errorf("checkpoint: bad magic in %s", path)
	}
	version := binary.LittleEndian.Uint32(hdr[len(Magic):])
	if version != FormatVersion {
		f.Close()
		return nil, fmt.Errorf("%w: file v%d, supported v%d", ErrVersionMismatch, version, FormatVersion)
	}
	r.Key = r.String()
	r.Meta = r.String()
	if r.err != nil {
		f.Close()
		return nil, r.err
	}
	if wantKey != "" && r.Key != wantKey {
		f.Close()
		return nil, fmt.Errorf("%w: file %s, want %s", ErrKeyMismatch, r.Key, wantKey)
	}
	return r, nil
}
