package checkpoint

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestRoundTripScalarsAndSlices(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Section("test")
	w.U64(0xDEADBEEFCAFEF00D)
	w.U32(0x1234ABCD)
	w.U8(0x7F)
	w.I64(-42)
	w.Bool(true)
	w.Bool(false)
	w.String("hello, checkpoint")
	w.Bytes([]byte{1, 2, 3})
	u64s := make([]uint64, 10_000) // spans multiple bulk chunks
	for i := range u64s {
		u64s[i] = uint64(i) * 0x9E3779B97F4A7C15
	}
	w.U64s(u64s)
	u32s := make([]uint32, 20_001)
	for i := range u32s {
		u32s[i] = uint32(i) * 2654435761
	}
	w.U32s(u32s)
	w.U64s(nil)
	if err := w.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}

	r := NewReader(bytes.NewReader(buf.Bytes()))
	if err := r.Section("test"); err != nil {
		t.Fatalf("Section: %v", err)
	}
	if got := r.U64(); got != 0xDEADBEEFCAFEF00D {
		t.Fatalf("U64 = %#x", got)
	}
	if got := r.U32(); got != 0x1234ABCD {
		t.Fatalf("U32 = %#x", got)
	}
	if got := r.U8(); got != 0x7F {
		t.Fatalf("U8 = %#x", got)
	}
	if got := r.I64(); got != -42 {
		t.Fatalf("I64 = %d", got)
	}
	if !r.Bool() || r.Bool() {
		t.Fatalf("Bool round trip failed")
	}
	if got := r.String(); got != "hello, checkpoint" {
		t.Fatalf("String = %q", got)
	}
	if got := r.Bytes(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("Bytes = %v", got)
	}
	if got := r.U64s(); !reflect.DeepEqual(got, u64s) {
		t.Fatalf("U64s mismatch")
	}
	if got := r.U32s(); !reflect.DeepEqual(got, u32s) {
		t.Fatalf("U32s mismatch")
	}
	if got := r.U64s(); len(got) != 0 {
		t.Fatalf("empty U64s = %v", got)
	}
	if err := r.Finish(); err != nil {
		t.Fatalf("Reader.Finish: %v", err)
	}
}

func TestSectionMismatch(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Section("alpha")
	w.Finish()
	r := NewReader(bytes.NewReader(buf.Bytes()))
	if err := r.Section("beta"); err == nil {
		t.Fatal("section mismatch not detected")
	}
}

func writeTestFile(t *testing.T, dir, key string) string {
	t.Helper()
	path := filepath.Join(dir, key+".ckpt")
	err := Save(path, key, `{"test":true}`, func(w *Writer) error {
		w.Section("payload")
		for i := 0; i < 1000; i++ {
			w.U64(uint64(i))
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Save: %v", err)
	}
	return path
}

func readAll(t *testing.T, path, key string) error {
	t.Helper()
	r, err := Open(path, key)
	if err != nil {
		return err
	}
	defer r.Close()
	if err := r.Section("payload"); err != nil {
		return err
	}
	for i := 0; i < 1000; i++ {
		r.U64() // values are only trustworthy once Finish verifies the CRC
	}
	return r.Finish()
}

func TestSaveOpenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := writeTestFile(t, dir, "cafe0123")
	if err := readAll(t, path, "cafe0123"); err != nil {
		t.Fatalf("read back: %v", err)
	}
	r, err := Open(path, "")
	if err != nil {
		t.Fatalf("Open without key: %v", err)
	}
	if r.Key != "cafe0123" || r.Meta != `{"test":true}` {
		t.Fatalf("header Key=%q Meta=%q", r.Key, r.Meta)
	}
	r.Close()
}

func TestKeyMismatch(t *testing.T) {
	dir := t.TempDir()
	path := writeTestFile(t, dir, "cafe0123")
	err := readAll(t, path, "0000ffff")
	if !errors.Is(err, ErrKeyMismatch) {
		t.Fatalf("want ErrKeyMismatch, got %v", err)
	}
}

func TestTruncatedFile(t *testing.T) {
	dir := t.TempDir()
	path := writeTestFile(t, dir, "cafe0123")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{len(data) - 1, len(data) / 2, 20, 4} {
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if err := readAll(t, path, "cafe0123"); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

func TestFlippedByte(t *testing.T) {
	dir := t.TempDir()
	path := writeTestFile(t, dir, "cafe0123")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte (past magic+version+key+meta header); the
	// CRC at Finish must catch it.
	pos := len(data) - 100
	data[pos] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := readAll(t, path, "cafe0123"); err == nil {
		t.Fatal("flipped byte not detected")
	}
}

func TestStaleVersion(t *testing.T) {
	dir := t.TempDir()
	path := writeTestFile(t, dir, "cafe0123")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(Magic)] = FormatVersion + 1 // bump the LE version field
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	err = readAll(t, path, "cafe0123")
	if !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("want ErrVersionMismatch, got %v", err)
	}
}

func TestBadMagic(t *testing.T) {
	dir := t.TempDir()
	path := writeTestFile(t, dir, "cafe0123")
	data, _ := os.ReadFile(path)
	data[0] = 'X'
	os.WriteFile(path, data, 0o644)
	if err := readAll(t, path, "cafe0123"); err == nil {
		t.Fatal("bad magic not detected")
	}
}

func TestCorruptSliceLength(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U64(1 << 40) // absurd length prefix
	w.Finish()
	r := NewReader(bytes.NewReader(buf.Bytes()))
	if got := r.U64s(); got != nil || r.Err() == nil {
		t.Fatalf("corrupt length accepted: %v / %v", got, r.Err())
	}
}
