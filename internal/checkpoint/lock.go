//go:build unix

package checkpoint

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
	"time"
)

// Checkpoint-directory locking: multiple workers of a distributed
// sweep share one -checkpoint-dir, and -checkpoint-gc pruning that
// directory while a worker is mid-restore would yank an 800MB
// checkpoint out from under a read in progress. A tiny flock(2)-based
// reader/writer lock on a sentinel file serializes them: restores and
// saves hold the lock shared (they can overlap freely), GC takes it
// exclusive and refuses — rather than waits forever — when readers
// hold it. Locks are advisory and release automatically when the
// holding process exits, so a SIGKILLed worker can never wedge GC.

// LockFileName is the sentinel file the directory lock lives on. It is
// not a checkpoint, so *.ckpt globs never see it.
const LockFileName = ".dirlock"

// lockDir opens the sentinel and flocks it with how (LOCK_SH/LOCK_EX,
// optionally |LOCK_NB). The returned unlock closes the file, dropping
// the lock.
func lockDir(dir string, how int) (unlock func(), err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint lock: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, LockFileName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint lock: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), how); err != nil {
		f.Close()
		return nil, err
	}
	return func() { f.Close() }, nil
}

// LockDirShared takes the directory lock shared — the restore/save
// side. Blocks only while a GC holds the exclusive lock (milliseconds:
// GC is header reads and unlinks).
func LockDirShared(dir string) (unlock func(), err error) {
	unlock, err = lockDir(dir, syscall.LOCK_SH)
	if err != nil {
		return nil, fmt.Errorf("checkpoint lock %s (shared): %w", dir, err)
	}
	return unlock, nil
}

// LockDirExclusive takes the directory lock exclusive — the GC side —
// retrying until wait elapses. It never blocks indefinitely: a
// directory busy with restores makes it return ErrDirBusy, and the
// caller reports "in use, retry later" instead of deadlocking a sweep
// against its own maintenance.
func LockDirExclusive(dir string, wait time.Duration) (unlock func(), err error) {
	deadline := time.Now().Add(wait)
	for {
		unlock, err = lockDir(dir, syscall.LOCK_EX|syscall.LOCK_NB)
		if err == nil {
			return unlock, nil
		}
		if err != syscall.EWOULDBLOCK && err != syscall.EAGAIN {
			return nil, fmt.Errorf("checkpoint lock %s (exclusive): %w", dir, err)
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("checkpoint lock %s: %w", dir, ErrDirBusy)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// ErrDirBusy reports that the exclusive lock could not be taken within
// the wait: some process holds the directory shared (a restore or save
// in flight).
var ErrDirBusy = fmt.Errorf("directory is in use (a checkpoint restore or save holds the lock)")
