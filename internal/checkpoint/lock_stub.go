//go:build !unix

package checkpoint

import (
	"fmt"
	"time"
)

// Non-unix stub: flock is unavailable, so directory locking degrades
// to a no-op. GC-vs-restore races are then possible, matching the
// pre-lock behavior on these platforms; every supported CI and
// production host is unix.

const LockFileName = ".dirlock"

var ErrDirBusy = fmt.Errorf("directory is in use (a checkpoint restore or save holds the lock)")

func LockDirShared(dir string) (unlock func(), err error) { return func() {}, nil }
func LockDirExclusive(dir string, wait time.Duration) (unlock func(), err error) {
	return func() {}, nil
}
