//go:build unix

package checkpoint

import (
	"errors"
	"testing"
	"time"
)

// Two shared holders coexist: concurrent restores on a shared
// -checkpoint-dir never serialize against each other.
func TestLockDirSharedCoexists(t *testing.T) {
	dir := t.TempDir()
	u1, err := LockDirShared(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer u1()
	u2, err := LockDirShared(dir)
	if err != nil {
		t.Fatalf("second shared lock blocked by the first: %v", err)
	}
	u2()
}

// The GC side refuses (ErrDirBusy) while a restore holds the lock
// shared, and succeeds as soon as the holder releases — the directed
// test for the gc-vs-concurrent-reader guard.
func TestLockDirExclusiveRefusesWhileShared(t *testing.T) {
	dir := t.TempDir()
	unlockShared, err := LockDirShared(dir)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := LockDirExclusive(dir, 100*time.Millisecond); !errors.Is(err, ErrDirBusy) {
		t.Fatalf("exclusive lock under a shared holder: err = %v, want ErrDirBusy", err)
	}

	unlockShared()
	unlockEx, err := LockDirExclusive(dir, time.Second)
	if err != nil {
		t.Fatalf("exclusive lock after release: %v", err)
	}
	defer unlockEx()

	// And the mirror: a restore arriving mid-GC waits; with the
	// exclusive lock held, a bounded-wait retry of another exclusive
	// also refuses (flock exclusivity, not just SH-vs-EX).
	if _, err := LockDirExclusive(dir, 100*time.Millisecond); !errors.Is(err, ErrDirBusy) {
		t.Fatalf("second exclusive lock: err = %v, want ErrDirBusy", err)
	}
}

// An exclusive holder releasing un-wedges a waiting exclusive within
// the retry window (GC after GC, or GC after the last restore).
func TestLockDirExclusiveEventuallyAcquires(t *testing.T) {
	dir := t.TempDir()
	unlock, err := LockDirExclusive(dir, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		u, err := LockDirExclusive(dir, 5*time.Second)
		if err == nil {
			u()
		}
		done <- err
	}()
	time.Sleep(150 * time.Millisecond)
	unlock()
	if err := <-done; err != nil {
		t.Fatalf("waiter never acquired after release: %v", err)
	}
}
