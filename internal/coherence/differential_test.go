package coherence

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/sim"
)

// The coherence differential: a SnoopFilter (and a Directory) built on the
// open-addressed or quotient-compressed table must return, operation for
// operation, exactly what the map-backed reference returns — results,
// stats, and entry counts. Together with the protocol logic being
// byte-for-byte shared (only the store differs), this is the
// substrate-swap half of the determinism contract (DESIGN.md §7 and §8).
// CI runs this file under -race.

// tableKinds are the fast stores checked against the map reference.
var tableKinds = []StoreKind{OpenTable, QuotTable}

func snoopStats(f *SnoopFilter) [2]uint64 { return [2]uint64{f.Forwards, f.Invalidations} }

func TestSnoopFilterStoreDifferential(t *testing.T) {
	for _, kind := range tableKinds {
		for seed := uint64(1); seed <= 4; seed++ {
			const cores = 16
			fast := NewSnoopFilterWithStore(cores, kind)
			ref := NewSnoopFilterWithStore(cores, MapStore)
			rng := sim.NewRNG(seed * 31337)

			const lines = 3000 // enough to grow the table several times
			line := func(i uint64) mem.LineAddr { return mem.LineAddr(i * mem.LineSize) }

			for i := 0; i < 120_000; i++ {
				l := line(rng.Uint64n(lines))
				c := int(rng.Uint64n(cores))
				switch rng.Uint64n(8) {
				case 0, 1, 2:
					fo, do := fast.Read(l, c)
					fr, dr := ref.Read(l, c)
					if fo != fr || do != dr {
						t.Fatalf("%v seed %d op %d: Read = (%d,%v) vs (%d,%v)", kind, seed, i, fo, do, fr, dr)
					}
				case 3, 4:
					mo, do := fast.WriteMask(l, c)
					mr, dr := ref.WriteMask(l, c)
					if mo != mr || do != dr {
						t.Fatalf("%v seed %d op %d: WriteMask = (%#x,%v) vs (%#x,%v)", kind, seed, i, mo, do, mr, dr)
					}
				case 5:
					fast.Evict(l, c, i%2 == 0)
					ref.Evict(l, c, i%2 == 0)
				case 6:
					if fast.InvalidateAllMask(l) != ref.InvalidateAllMask(l) {
						t.Fatalf("%v seed %d op %d: InvalidateAllMask diverged", kind, seed, i)
					}
				case 7:
					if fast.HoldersMask(l) != ref.HoldersMask(l) || fast.DirtyOwner(l) != ref.DirtyOwner(l) {
						t.Fatalf("%v seed %d op %d: query diverged", kind, seed, i)
					}
				}
				if snoopStats(fast) != snoopStats(ref) {
					t.Fatalf("%v seed %d op %d: stats %v vs %v", kind, seed, i, snoopStats(fast), snoopStats(ref))
				}
				if fast.Entries() != ref.Entries() {
					t.Fatalf("%v seed %d op %d: entries %d vs %d", kind, seed, i, fast.Entries(), ref.Entries())
				}
			}
			if msg := fast.CheckInvariants(); msg != "" {
				t.Fatalf("%v seed %d: invariants: %s", kind, seed, msg)
			}
			// Entry-for-entry agreement.
			ref.ForEachEntry(func(l mem.LineAddr, mask uint32, owner int) {
				if fast.HoldersMask(l) != mask || fast.DirtyOwner(l) != owner {
					t.Fatalf("%v seed %d: entry %#x diverged", kind, seed, uint64(l))
				}
			})
		}
	}
}

func dirStats(d *Directory) [6]uint64 {
	return [6]uint64{d.Reads, d.Writes, d.Upgrades, d.Forwards, d.Invalidations, d.MemWritebacks}
}

func TestDirectoryStoreDifferential(t *testing.T) {
	for _, kind := range tableKinds {
		for _, proto := range []Protocol{MOESI, MESI} {
			for seed := uint64(1); seed <= 3; seed++ {
				const cores = 16
				fast := NewDirectoryWithStore(cores, proto, kind)
				ref := NewDirectoryWithStore(cores, proto, MapStore)
				rng := sim.NewRNG(seed*7907 + uint64(proto))

				const lines = 2500
				line := func(i uint64) mem.LineAddr { return mem.LineAddr(i * mem.LineSize) }

				for i := 0; i < 100_000; i++ {
					l := line(rng.Uint64n(lines))
					c := int(rng.Uint64n(cores))
					st := ref.StateOf(l, c)
					if st != fast.StateOf(l, c) {
						t.Fatalf("%v proto %v seed %d op %d: StateOf diverged", kind, proto, seed, i)
					}
					switch rng.Uint64n(8) {
					case 0, 1, 2: // read miss (legal only when absent)
						if st != cache.Invalid {
							continue
						}
						oo := fast.Read(l, c)
						ro := ref.Read(l, c)
						if oo != ro {
							t.Fatalf("%v proto %v seed %d op %d: Read %+v vs %+v", kind, proto, seed, i, oo, ro)
						}
					case 3, 4: // write or upgrade
						oo := fast.WriteMask(l, c)
						ro := ref.WriteMask(l, c)
						if oo != ro {
							t.Fatalf("%v proto %v seed %d op %d: WriteMask %+v vs %+v", kind, proto, seed, i, oo, ro)
						}
					case 5: // evict (legal only when held)
						if st == cache.Invalid {
							continue
						}
						oo := fast.Evict(l, c)
						ro := ref.Evict(l, c)
						if oo != ro {
							t.Fatalf("%v proto %v seed %d op %d: Evict %+v vs %+v", kind, proto, seed, i, oo, ro)
						}
					case 6: // silent E->M upgrade (legal only for the E owner)
						if st != cache.Exclusive {
							continue
						}
						fast.MarkDirty(l, c)
						ref.MarkDirty(l, c)
					case 7: // queries
						if fast.SharersMask(l) != ref.SharersMask(l) || fast.Owner(l) != ref.Owner(l) {
							t.Fatalf("%v proto %v seed %d op %d: query diverged", kind, proto, seed, i)
						}
					}
					if dirStats(fast) != dirStats(ref) {
						t.Fatalf("%v proto %v seed %d op %d: stats %v vs %v", kind, proto, seed, i, dirStats(fast), dirStats(ref))
					}
					if fast.Entries() != ref.Entries() {
						t.Fatalf("%v proto %v seed %d op %d: entries diverged", kind, proto, seed, i)
					}
				}
				if msg := fast.CheckInvariants(); msg != "" {
					t.Fatalf("%v proto %v seed %d: invariants: %s", kind, proto, seed, msg)
				}
			}
		}
	}
}

// TestSnoopSteadyStateAllocFree pins the satellite fix: the shared-LLC
// store path (WriteMask) — and the rest of the steady-state op mix — must
// not allocate once the table has reached its working size.
func TestSnoopSteadyStateAllocFree(t *testing.T) {
	const cores, lines = 16, 512
	f := NewSnoopFilter(cores)
	line := func(i uint64) mem.LineAddr { return mem.LineAddr(i * mem.LineSize) }
	// Reach steady state: every line tracked, table at final size.
	for i := uint64(0); i < lines; i++ {
		f.Read(line(i), int(i%cores))
		f.Read(line(i), int((i+1)%cores))
	}
	var i uint64
	allocs := testing.AllocsPerRun(5000, func() {
		l := line(i % lines)
		c := int(i % cores)
		f.Read(l, (c+1)%cores)
		f.WriteMask(l, c)
		f.Evict(l, c, false)
		f.Read(l, c)
		i++
	})
	if allocs != 0 {
		t.Fatalf("steady-state snoop ops allocate %v objects per op, want 0", allocs)
	}
}

// TestDirectorySteadyStateAllocFree does the same for the private-LLC
// directory's read/write/evict cycle.
func TestDirectorySteadyStateAllocFree(t *testing.T) {
	const cores, lines = 16, 512
	d := NewDirectory(cores, MOESI)
	line := func(i uint64) mem.LineAddr { return mem.LineAddr(i * mem.LineSize) }
	for i := uint64(0); i < lines; i++ {
		d.Read(line(i), int(i%cores))
	}
	var i uint64
	allocs := testing.AllocsPerRun(5000, func() {
		l := line(i % lines)
		c := int(i % cores)
		d.WriteMask(l, c)
		d.Read(l, (c+1)%cores)
		d.Evict(l, c)
		d.Evict(l, (c+1)%cores)
		d.Read(l, c)
		i++
	})
	if allocs != 0 {
		t.Fatalf("steady-state directory ops allocate %v objects per op, want 0", allocs)
	}
}
