// Package coherence implements the two coherence substrates of the
// evaluated systems:
//
//   - Directory: the directory-based protocol that keeps SILO's all-private
//     vault LLCs coherent (paper Sec. V-B). It models the duplicate-tag
//     organization — logically an N-way tag store where the way position
//     encodes the caching core — as per-line compact state. MOESI is the
//     paper's protocol; MESI is selectable for the ablation study.
//   - SnoopFilter: the sharer tracking a shared last-level cache performs
//     for the private L1s above it (baseline MESI, non-inclusive, paper
//     Table II).
//
// Both types are purely functional state machines: they decide who
// forwards, who is invalidated, and what is written back, while the system
// assembly (internal/core) attaches latencies to those decisions. This
// separation lets the protocol be tested exhaustively without a clock.
package coherence

import (
	"fmt"
	"math/bits"

	"repro/internal/cache"
	"repro/internal/mem"
)

// Protocol selects the private-LLC coherence protocol.
type Protocol uint8

const (
	// MOESI is the paper's protocol: the Owned state lets a dirty block be
	// supplied to readers without writing it back to memory (Sec. V-B).
	MOESI Protocol = iota
	// MESI is the ablation alternative: a dirty block read by another core
	// must be written back to memory (the point of coherence) on downgrade.
	MESI
)

func (p Protocol) String() string {
	if p == MESI {
		return "MESI"
	}
	return "MOESI"
}

// MemorySource marks data supplied by main memory rather than a peer cache.
const MemorySource = -1

// entry is the packed per-line directory state: bits 0-31 the sharer mask
// (bit c: core c holds the line), bits 32-37 the owner + 1 (0 = no
// owner), bits 38-39 the owner's state code (E/O/M) — full 32-core
// width, so the open and map stores serve any legal core count. At most
// one core holds the line in a non-Shared state (the owner); every other
// holder is Shared. Storing the packed word keeps the hot mutations
// single word ops; the quotient store re-packs the word into its 23-bit
// value field at its boundary (exact within quotMaxCores, which
// NewDirectoryWithStore gates).
type entry uint64

const (
	dirOwnerShift = 32                    // owner+1 field
	dirStateShift = 38                    // owner-state code field
	dirOwnerClear = 0xFF << dirOwnerShift // clears owner and state together
)

// dirStateOf decodes a state code; dirCodeOf encodes one. Only E, O and M
// are representable — exactly the states an owner may hold.
var dirStateOf = [4]cache.State{cache.Invalid, cache.Exclusive, cache.Owned, cache.Modified}

func dirCodeOf(st cache.State) uint64 {
	switch st {
	case cache.Exclusive:
		return 1
	case cache.Owned:
		return 2
	case cache.Modified:
		return 3
	default:
		return 0
	}
}

func dirEntry(mask uint32, owner int, ownerState cache.State) entry {
	w := uint64(mask) | uint64(owner+1)<<dirOwnerShift
	if owner >= 0 {
		w |= dirCodeOf(ownerState) << dirStateShift
	}
	return entry(w)
}

func (e entry) mask() uint32            { return uint32(e) }
func (e entry) owner() int              { return int(e>>dirOwnerShift&0x3F) - 1 }
func (e entry) ownerState() cache.State { return dirStateOf[e>>dirStateShift&3] }

// setOwnerState swaps the state code, leaving mask and owner in place.
func (e *entry) setOwnerState(st cache.State) {
	*e = *e&^(3<<dirStateShift) | entry(dirCodeOf(st))<<dirStateShift
}

// clearOwner drops the owner and its state code (owner -> -1).
func (e *entry) clearOwner() { *e &^= dirOwnerClear }

// packValue/unpackValue are the quotient table's 23-bit value contract
// (see quot.go): a 16-bit mask, 5-bit owner+1, 2-bit state re-packing,
// exact for the <=quotMaxCores systems the quotient store accepts.
func (e entry) packValue() uint64 {
	return uint64(e)&(1<<quotMaxCores-1) |
		uint64(e)>>dirOwnerShift&0x3F<<quotMaxCores |
		uint64(e)>>dirStateShift&3<<(quotMaxCores+5)
}

func (entry) unpackValue(w uint64) entry {
	return entry(w&(1<<quotMaxCores-1) |
		w>>quotMaxCores&0x1F<<dirOwnerShift |
		w>>(quotMaxCores+5)&3<<dirStateShift)
}

// Directory is the coherence directory for a private-LLC system with up to
// 32 cores.
type Directory struct {
	protocol Protocol
	cores    int
	entries  hotStore[entry]

	// Stats.
	Reads         uint64
	Writes        uint64
	Upgrades      uint64
	Forwards      uint64 // cache-to-cache transfers
	Invalidations uint64 // per-core invalidation messages
	MemWritebacks uint64 // protocol-induced writebacks (MESI downgrades, O/M evictions)
}

// NewDirectory builds a directory for the given core count and protocol on
// the default line table for the core count (quotient-compressed up to 16
// cores, open full-key beyond).
func NewDirectory(cores int, protocol Protocol) *Directory {
	return NewDirectoryWithStore(cores, protocol, DefaultStore(cores))
}

// NewDirectoryWithStore builds a directory on an explicit store
// implementation; the differential test drives the table stores against
// MapStore to prove operation-for-operation equality.
func NewDirectoryWithStore(cores int, protocol Protocol, kind StoreKind) *Directory {
	if cores <= 0 || cores > 32 {
		panic(fmt.Sprintf("coherence: core count %d outside [1,32]", cores))
	}
	if kind == QuotTable && cores > quotMaxCores {
		panic(fmt.Sprintf("coherence: quotient store packs a %d-core sharer mask; %d cores need OpenTable",
			quotMaxCores, cores))
	}
	return &Directory{protocol: protocol, cores: cores, entries: newHotStore[entry](kind)}
}

// BytesPerSlot reports the inline footprint of one line-table slot.
func (d *Directory) BytesPerSlot() int { return d.entries.bytesPerSlot() }

// Protocol returns the configured protocol.
func (d *Directory) Protocol() Protocol { return d.protocol }

// Entries returns the number of tracked lines.
func (d *Directory) Entries() int { return d.entries.size() }

// PrefetchLine warms the line's home slot in the directory's line table
// ahead of the real probe (host-side only; no simulated state changes).
// The returned slot word must be sunk by the caller so the load survives
// optimization.
func (d *Directory) PrefetchLine(line mem.LineAddr) uint64 {
	return d.entries.prefetchHome(line)
}

func (d *Directory) check(core int) {
	if core < 0 || core >= d.cores {
		panic(fmt.Sprintf("coherence: core %d outside [0,%d)", core, d.cores))
	}
}

// StateOf reports the coherence state of the line in core's private LLC.
func (d *Directory) StateOf(line mem.LineAddr, core int) cache.State {
	d.check(core)
	e, ok := d.entries.get(line)
	if !ok || e.mask()&(1<<uint(core)) == 0 {
		return cache.Invalid
	}
	if e.owner() == core {
		return e.ownerState()
	}
	return cache.Shared
}

// SharersMask returns the holder set of the line as a bit mask.
func (d *Directory) SharersMask(line mem.LineAddr) uint32 {
	e, ok := d.entries.get(line)
	if !ok {
		return 0
	}
	return e.mask()
}

// Sharers returns the cores holding the line, in ascending order.
func (d *Directory) Sharers(line mem.LineAddr) []int {
	return maskToSlice(d.SharersMask(line))
}

// Owner returns the core holding the line in E, M or O, or -1.
func (d *Directory) Owner(line mem.LineAddr) int {
	e, ok := d.entries.get(line)
	if !ok {
		return -1
	}
	return e.owner()
}

// ReadOutcome describes how a read miss is satisfied.
type ReadOutcome struct {
	// Source is the forwarding core, or MemorySource when the data comes
	// from main memory.
	Source int
	// FillState is the state the requester installs (E on a miss with no
	// sharers, else S).
	FillState cache.State
	// MemWriteback is set when the protocol forces the dirty line to be
	// written back to memory on the downgrade (MESI only).
	MemWriteback bool
}

// Read records a read miss by requester and returns how it is satisfied.
// The requester must not already hold the line.
func (d *Directory) Read(line mem.LineAddr, requester int) ReadOutcome {
	d.check(requester)
	d.Reads++
	bit := uint32(1) << uint(requester)
	e := d.entries.ref(line)
	if e != nil && e.mask()&bit != 0 {
		panic(fmt.Sprintf("coherence: core %d read-missed line %#x it already holds", requester, uint64(line)))
	}
	if e == nil {
		// No cached copy anywhere: fill Exclusive from memory.
		d.entries.put(line, dirEntry(bit, requester, cache.Exclusive))
		return ReadOutcome{Source: MemorySource, FillState: cache.Exclusive}
	}

	out := ReadOutcome{FillState: cache.Shared}
	if ow := e.owner(); ow >= 0 {
		out.Source = ow
		d.Forwards++
		switch e.ownerState() {
		case cache.Modified:
			if d.protocol == MOESI {
				// M -> O: dirty data forwarded, memory untouched.
				e.setOwnerState(cache.Owned)
			} else {
				// MESI: M -> S with a writeback to memory.
				e.clearOwner()
				out.MemWriteback = true
				d.MemWritebacks++
			}
		case cache.Owned:
			// Owner keeps O and keeps answering.
		case cache.Exclusive:
			// Clean forward; E degenerates to S.
			e.clearOwner()
		default:
			panic(fmt.Sprintf("coherence: owner in state %v", e.ownerState()))
		}
	} else {
		// All copies Shared: the nearest sharer forwards. Source selection
		// (which sharer) is a timing decision; report the lowest-numbered
		// one and let the caller pick by distance via Sharers.
		out.Source = firstSet(e.mask())
		d.Forwards++
	}
	*e |= entry(bit)
	d.entries.sync()
	return out
}

// WriteMaskOutcome describes how a write miss or upgrade is satisfied,
// with the invalidated cores as an allocation-free bit mask.
type WriteMaskOutcome struct {
	// Source is the forwarding core, MemorySource for a memory fetch, or
	// the requester itself for an upgrade (no data transfer).
	Source int
	// InvalidatedMask holds the other cores whose copies were invalidated
	// (bit c: core c); iterate with bits.TrailingZeros32.
	InvalidatedMask uint32
	// Upgrade is set when the requester already held the line.
	Upgrade bool
}

// WriteMask records a write miss (or upgrade) by requester; afterwards the
// requester holds the line in Modified and nobody else holds it. This is
// the fast path: the steady-state store flow allocates nothing.
func (d *Directory) WriteMask(line mem.LineAddr, requester int) WriteMaskOutcome {
	d.check(requester)
	d.Writes++
	bit := uint32(1) << uint(requester)
	e := d.entries.ref(line)
	out := WriteMaskOutcome{Source: MemorySource}
	if e != nil {
		mask := e.mask()
		if mask&bit != 0 {
			out.Upgrade = true
			out.Source = requester
			d.Upgrades++
		} else if ow := e.owner(); ow >= 0 {
			// Dirty or exclusive peer copy: it forwards then invalidates.
			out.Source = ow
			d.Forwards++
		} else if mask != 0 {
			// Clean shared copies: one forwards, all invalidate.
			out.Source = firstSet(mask)
			d.Forwards++
		}
		out.InvalidatedMask = mask &^ bit
		d.Invalidations += uint64(bits.OnesCount32(out.InvalidatedMask))
		*e = dirEntry(bit, requester, cache.Modified)
		d.entries.sync()
		return out
	}
	d.entries.put(line, dirEntry(bit, requester, cache.Modified))
	return out
}

// WriteOutcome describes how a write miss or upgrade is satisfied.
type WriteOutcome struct {
	// Source is the forwarding core, MemorySource for a memory fetch, or
	// the requester itself for an upgrade (no data transfer).
	Source int
	// Invalidated lists the other cores whose copies were invalidated.
	Invalidated []int
	// Upgrade is set when the requester already held the line.
	Upgrade bool
}

// Write is the slice-returning reference form of WriteMask.
func (d *Directory) Write(line mem.LineAddr, requester int) WriteOutcome {
	out := d.WriteMask(line, requester)
	return WriteOutcome{
		Source:      out.Source,
		Invalidated: maskToSlice(out.InvalidatedMask),
		Upgrade:     out.Upgrade,
	}
}

// EvictOutcome describes a private-LLC eviction.
type EvictOutcome struct {
	// MemWriteback is set when the evicted line was dirty (M or O) and must
	// be written to memory.
	MemWriteback bool
}

// Evict records that core's private LLC dropped the line (capacity or
// conflict eviction). Shared copies at other cores survive.
func (d *Directory) Evict(line mem.LineAddr, core int) EvictOutcome {
	d.check(core)
	bit := uint32(1) << uint(core)
	e := d.entries.ref(line)
	if e == nil || e.mask()&bit == 0 {
		panic(fmt.Sprintf("coherence: core %d evicted line %#x it does not hold", core, uint64(line)))
	}
	var out EvictOutcome
	if e.owner() == core {
		if e.ownerState().Dirty() {
			out.MemWriteback = true
			d.MemWritebacks++
		}
		e.clearOwner()
	}
	*e &^= entry(bit)
	if e.mask() == 0 {
		d.entries.del(line)
	} else {
		d.entries.sync()
	}
	return out
}

// MarkDirty records that core's copy became dirty without a directory
// transaction — an L1 writeback landing in a vault that already holds the
// line in E or M (silent E->M upgrade). The core must be the owner in E/M;
// writes to Shared copies must go through Write.
func (d *Directory) MarkDirty(line mem.LineAddr, core int) {
	d.check(core)
	e := d.entries.ref(line)
	if e == nil || e.owner() != core {
		panic(fmt.Sprintf("coherence: MarkDirty by non-owner core %d on line %#x", core, uint64(line)))
	}
	if e.ownerState() == cache.Exclusive {
		e.setOwnerState(cache.Modified)
		d.entries.sync()
	}
}

// CheckInvariants validates the representation; tests call it after
// randomized operation sequences. It returns an error description or "".
func (d *Directory) CheckInvariants() string {
	msg := ""
	d.entries.forEach(func(line mem.LineAddr, e entry) {
		if msg != "" {
			return
		}
		mask, owner := e.mask(), e.owner()
		if mask == 0 {
			msg = fmt.Sprintf("line %#x: empty entry retained", uint64(line))
			return
		}
		if owner >= 0 {
			if mask&(1<<uint(owner)) == 0 {
				msg = fmt.Sprintf("line %#x: owner %d not in mask", uint64(line), owner)
				return
			}
			switch st := e.ownerState(); st {
			case cache.Exclusive, cache.Modified:
				if mask != 1<<uint(owner) {
					msg = fmt.Sprintf("line %#x: %v owner with other sharers", uint64(line), st)
				}
			case cache.Owned:
				if d.protocol == MESI {
					msg = fmt.Sprintf("line %#x: O state under MESI", uint64(line))
				}
			default:
				msg = fmt.Sprintf("line %#x: bad owner state %v", uint64(line), st)
			}
		}
	})
	return msg
}

// firstSet returns the lowest-numbered core in a non-empty sharer mask.
func firstSet(mask uint32) int {
	if mask == 0 {
		panic("coherence: firstSet on empty mask")
	}
	return bits.TrailingZeros32(mask)
}
