package coherence

import (
	"testing"
	"testing/quick"

	"repro/internal/cache"
	"repro/internal/mem"
)

func line(n uint64) mem.LineAddr { return mem.LineAddr(n * mem.LineSize) }

func TestFirstReadFillsExclusive(t *testing.T) {
	d := NewDirectory(16, MOESI)
	out := d.Read(line(1), 3)
	if out.Source != MemorySource || out.FillState != cache.Exclusive || out.MemWriteback {
		t.Fatalf("first read outcome = %+v", out)
	}
	if d.StateOf(line(1), 3) != cache.Exclusive {
		t.Fatal("requester should hold E")
	}
	if d.Owner(line(1)) != 3 {
		t.Fatal("requester should be owner")
	}
}

func TestReadAfterReadSharesCleanly(t *testing.T) {
	d := NewDirectory(16, MOESI)
	d.Read(line(1), 0)
	out := d.Read(line(1), 1)
	if out.Source != 0 {
		t.Fatalf("second read should forward from core 0, got %d", out.Source)
	}
	if out.MemWriteback {
		t.Fatal("clean forward should not write back")
	}
	if d.StateOf(line(1), 0) != cache.Shared || d.StateOf(line(1), 1) != cache.Shared {
		t.Fatal("E should degrade to S on sharing")
	}
	if d.Owner(line(1)) != -1 {
		t.Fatal("no owner after clean sharing")
	}
}

func TestMOESIDirtySharingAvoidsMemory(t *testing.T) {
	d := NewDirectory(16, MOESI)
	d.Write(line(1), 0) // core 0: M
	out := d.Read(line(1), 1)
	if out.Source != 0 {
		t.Fatalf("dirty owner should forward, got %d", out.Source)
	}
	if out.MemWriteback {
		t.Fatal("MOESI must not write back on M->O downgrade (the point of the O state)")
	}
	if d.StateOf(line(1), 0) != cache.Owned {
		t.Fatalf("owner state = %v, want O", d.StateOf(line(1), 0))
	}
	if d.StateOf(line(1), 1) != cache.Shared {
		t.Fatal("reader should be S")
	}
	// A third reader is served by the O owner, still without memory.
	out = d.Read(line(1), 2)
	if out.Source != 0 || out.MemWriteback {
		t.Fatalf("O owner should keep forwarding: %+v", out)
	}
}

func TestMESIDirtySharingWritesBack(t *testing.T) {
	d := NewDirectory(16, MESI)
	d.Write(line(1), 0)
	out := d.Read(line(1), 1)
	if out.Source != 0 {
		t.Fatalf("owner should forward, got %d", out.Source)
	}
	if !out.MemWriteback {
		t.Fatal("MESI M->S downgrade must write back to memory")
	}
	if d.StateOf(line(1), 0) != cache.Shared {
		t.Fatal("MESI owner should drop to S")
	}
	if d.MemWritebacks != 1 {
		t.Fatalf("MemWritebacks = %d, want 1", d.MemWritebacks)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	d := NewDirectory(16, MOESI)
	d.Read(line(1), 0)
	d.Read(line(1), 1)
	d.Read(line(1), 2)
	out := d.Write(line(1), 3)
	if len(out.Invalidated) != 3 {
		t.Fatalf("invalidated %v, want 3 cores", out.Invalidated)
	}
	if out.Upgrade {
		t.Fatal("write by non-holder is not an upgrade")
	}
	if out.Source == MemorySource {
		t.Fatal("a clean sharer should forward rather than memory")
	}
	if got := d.Sharers(line(1)); len(got) != 1 || got[0] != 3 {
		t.Fatalf("sharers = %v, want [3]", got)
	}
	if d.StateOf(line(1), 3) != cache.Modified {
		t.Fatal("writer should hold M")
	}
}

func TestWriteUpgradeFromShared(t *testing.T) {
	d := NewDirectory(16, MOESI)
	d.Read(line(1), 0)
	d.Read(line(1), 1)
	out := d.Write(line(1), 0)
	if !out.Upgrade || out.Source != 0 {
		t.Fatalf("upgrade outcome = %+v", out)
	}
	if len(out.Invalidated) != 1 || out.Invalidated[0] != 1 {
		t.Fatalf("invalidated = %v, want [1]", out.Invalidated)
	}
	if d.Upgrades != 1 {
		t.Fatalf("Upgrades = %d", d.Upgrades)
	}
}

func TestWriteToDirtyPeerForwards(t *testing.T) {
	d := NewDirectory(16, MOESI)
	d.Write(line(1), 0)
	out := d.Write(line(1), 1)
	if out.Source != 0 {
		t.Fatalf("dirty peer should forward, got %d", out.Source)
	}
	if len(out.Invalidated) != 1 || out.Invalidated[0] != 0 {
		t.Fatalf("invalidated = %v, want [0]", out.Invalidated)
	}
	if d.StateOf(line(1), 0) != cache.Invalid || d.StateOf(line(1), 1) != cache.Modified {
		t.Fatal("ownership should move to core 1")
	}
}

func TestEvictModifiedWritesBack(t *testing.T) {
	d := NewDirectory(16, MOESI)
	d.Write(line(1), 0)
	out := d.Evict(line(1), 0)
	if !out.MemWriteback {
		t.Fatal("M eviction must write back")
	}
	if d.Entries() != 0 {
		t.Fatal("entry should be removed")
	}
}

func TestEvictOwnedKeepsSharers(t *testing.T) {
	d := NewDirectory(16, MOESI)
	d.Write(line(1), 0)
	d.Read(line(1), 1) // 0: O, 1: S
	out := d.Evict(line(1), 0)
	if !out.MemWriteback {
		t.Fatal("O eviction must write back")
	}
	if d.StateOf(line(1), 1) != cache.Shared {
		t.Fatal("remaining sharer should survive")
	}
	if d.Owner(line(1)) != -1 {
		t.Fatal("no owner after O eviction")
	}
}

func TestEvictCleanIsSilent(t *testing.T) {
	d := NewDirectory(16, MOESI)
	d.Read(line(1), 0) // E
	if out := d.Evict(line(1), 0); out.MemWriteback {
		t.Fatal("E eviction should be silent")
	}
	d.Read(line(2), 0)
	d.Read(line(2), 1) // both S
	if out := d.Evict(line(2), 1); out.MemWriteback {
		t.Fatal("S eviction should be silent")
	}
}

func TestMarkDirty(t *testing.T) {
	d := NewDirectory(16, MOESI)
	d.Read(line(1), 0) // E
	d.MarkDirty(line(1), 0)
	if d.StateOf(line(1), 0) != cache.Modified {
		t.Fatal("E should silently upgrade to M")
	}
	// MarkDirty on M is a no-op.
	d.MarkDirty(line(1), 0)
	if d.StateOf(line(1), 0) != cache.Modified {
		t.Fatal("M should stay M")
	}
}

func TestMarkDirtyByNonOwnerPanics(t *testing.T) {
	d := NewDirectory(16, MOESI)
	d.Read(line(1), 0)
	d.Read(line(1), 1) // S everywhere: no owner
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.MarkDirty(line(1), 1)
}

func TestReadWhileHoldingPanics(t *testing.T) {
	d := NewDirectory(16, MOESI)
	d.Read(line(1), 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Read(line(1), 0)
}

func TestEvictNotHeldPanics(t *testing.T) {
	d := NewDirectory(16, MOESI)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Evict(line(1), 0)
}

func TestNewDirectoryPanics(t *testing.T) {
	for _, n := range []int{0, -1, 33} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for %d cores", n)
				}
			}()
			NewDirectory(n, MOESI)
		}()
	}
}

func TestProtocolString(t *testing.T) {
	if MOESI.String() != "MOESI" || MESI.String() != "MESI" {
		t.Fatal("protocol names wrong")
	}
}

// Property: under random operation sequences the directory invariants hold,
// and a reference model of per-core presence agrees with StateOf.
func TestDirectoryInvariantsUnderRandomOps(t *testing.T) {
	f := func(ops []uint16, mesi bool) bool {
		proto := MOESI
		if mesi {
			proto = MESI
		}
		const cores = 4
		d := NewDirectory(cores, proto)
		held := map[mem.LineAddr]map[int]bool{} // reference presence
		for _, op := range ops {
			l := line(uint64(op) % 8)
			c := int(op>>3) % cores
			kind := (op >> 5) % 3
			if held[l] == nil {
				held[l] = map[int]bool{}
			}
			switch kind {
			case 0: // read miss (skip when held)
				if held[l][c] {
					continue
				}
				out := d.Read(l, c)
				if out.Source != MemorySource && !held[l][out.Source] {
					return false // forwarded from a core without the line
				}
				held[l][c] = true
			case 1: // write
				d.Write(l, c)
				held[l] = map[int]bool{c: true}
			case 2: // evict (skip when absent)
				if !held[l][c] {
					continue
				}
				d.Evict(l, c)
				delete(held[l], c)
			}
			if msg := d.CheckInvariants(); msg != "" {
				t.Logf("invariant violated: %s", msg)
				return false
			}
		}
		// Reference agreement.
		for l, cs := range held {
			for c := 0; c < cores; c++ {
				if cs[c] != d.StateOf(l, c).Valid() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: at most one core ever holds a line in a dirty/exclusive state
// (the single-owner invariant), checked against StateOf directly.
func TestSingleOwnerProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		const cores = 8
		d := NewDirectory(cores, MOESI)
		for _, op := range ops {
			l := line(uint64(op) % 4)
			c := int(op>>2) % cores
			if op&0x8000 != 0 {
				if d.StateOf(l, c) == cache.Invalid {
					d.Write(l, c)
				} else {
					d.Write(l, c) // upgrade path
				}
			} else if d.StateOf(l, c) == cache.Invalid {
				d.Read(l, c)
			}
			exclusiveHolders := 0
			for cc := 0; cc < cores; cc++ {
				st := d.StateOf(l, cc)
				if st == cache.Exclusive || st == cache.Modified || st == cache.Owned {
					exclusiveHolders++
				}
			}
			if exclusiveHolders > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
