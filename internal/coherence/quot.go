package coherence

import (
	"fmt"

	"repro/internal/mem"
)

// quotTable is the quotient-key-compressed lineStore: one uint64 per slot,
// half the open table's 16 B, so paper-scale directory and snoop-filter
// footprints move half as much memory per probe. Like openTable it is
// open-addressed, power-of-two sized, linearly probed, backward-shift
// deleted and incrementally grown — but instead of storing the full 8-byte
// key next to an 8-byte value, each slot packs
//
//	bit  0                   present
//	bits 1..23               value (V packed to ≤23 bits, see lineValue)
//	bits 24..24+dispBits-1   displacement from the key's home slot
//	top  fpBits bits         key fingerprint (quotient remainder)
//
// The key itself is never stored. A line's tag (address / LineSize, which
// the simulator's address map bounds well below 2^quotKeyBits) is mixed by
// an odd — hence invertible — multiplier mod 2^quotKeyBits; the top
// log2(len(slots)) bits of the mix are the home slot index and the
// remaining fpBits = quotKeyBits - log2(len(slots)) bits are the stored
// fingerprint. (home, fingerprint) therefore reconstructs the full mix
// exactly, and the displacement recovers home from the slot index, so a
// slot matches a probed key if and only if its fingerprint AND displacement
// both match — no false positives, ever (the bit-identity contract,
// DESIGN.md §8). Because dispBits = 64-24-fpBits = log2(len(slots))+2, a
// displacement can never overflow its field: probe distances are bounded
// by the table size.
//
// Growth doubles the table: one more home bit, one less fingerprint bit.
// The draining table keeps its own geometry (oldShift/oldDispBits) and
// marks migrated/deleted slots with a tombstone so its probe chains
// survive until fully drained, exactly like openTable.
type quotTable[V lineValue[V]] struct {
	slots    []uint64
	mask     uint64 // len(slots)-1
	shift    uint   // fingerprint width = quotKeyBits - log2(len(slots))
	dispBits uint   // displacement field width = 64 - 24 - shift
	n        int    // live entries in slots

	// Pre-growth table still draining into slots.
	old         []uint64
	oldMask     uint64
	oldShift    uint
	oldDispBits uint
	oldN        int // live entries left in old
	oldPos      int // next old slot to migrate

	// ref/sync scratch: ref unpacks the found slot's value here and sync
	// packs it back into the word it came from.
	scratch V
	refWord *uint64
}

// lineValue is the packing contract quotTable requires of its value type:
// packValue must round-trip the value through at most quotValueBits bits.
// Both coherence entry types fit in 23 bits for up to quotMaxCores cores
// (16-bit sharer mask + 5-bit owner + 2-bit owner-state code).
type lineValue[V any] interface {
	packValue() uint64
	unpackValue(uint64) V
}

const (
	// quotKeyBits bounds the tags (line address / LineSize) the compressed
	// table can hold. The workload address map tops out below 2^42 bytes
	// (tag < 2^36, see internal/workload's region bases), leaving 4 bits of
	// headroom; put panics past the bound, and lookups of out-of-range keys
	// report absent (nothing past the bound can have been stored).
	quotKeyBits = 38
	quotKeyMask = uint64(1)<<quotKeyBits - 1

	// quotMaxCores bounds the sharer mask that fits the 23-bit packed value.
	quotMaxCores = 16

	quotValueBits  = 23
	quotValueShift = 1
	quotValueMask  = (uint64(1)<<quotValueBits - 1) << quotValueShift
	quotDispShift  = quotValueShift + quotValueBits // 24

	quotPresent = uint64(1)
	// quotTombstone marks a migrated/deleted slot of a draining table: not
	// empty (probe chains continue across it) and never equal to a live
	// word (live words always carry the present bit).
	quotTombstone = uint64(2)

	// quotMul is the golden-ratio multiplicative-hash constant truncated to
	// the key domain and forced odd, so it is invertible mod 2^quotKeyBits.
	quotMul = (0x9E3779B97F4A7C15 >> (64 - quotKeyBits)) | 1
)

// quotMulInv is quotMul's modular inverse mod 2^quotKeyBits (Newton
// iteration doubles the valid bit count each step), used to recover the
// tag from a reconstructed mix in forEach.
var quotMulInv = func() uint64 {
	inv := uint64(quotMul) // odd: correct to 1 bit and seed for Newton
	for i := 0; i < 6; i++ {
		inv *= 2 - quotMul*inv
	}
	return inv & quotKeyMask
}()

func newQuotTable[V lineValue[V]]() *quotTable[V] {
	return &quotTable[V]{
		slots:    make([]uint64, minTableSlots),
		mask:     minTableSlots - 1,
		shift:    quotKeyBits - 8, // log2(minTableSlots) = 8
		dispBits: 64 - quotDispShift - (quotKeyBits - 8),
	}
}

// quotMix maps a tag to its table-independent mix; home and fingerprint
// are its top and bottom bit fields per table geometry.
func quotMix(tag uint64) uint64 { return tag * quotMul & quotKeyMask }

func (t *quotTable[V]) size() int         { return t.n + t.oldN }
func (t *quotTable[V]) bytesPerSlot() int { return 8 }

// find returns a pointer to the key's slot word, or nil. The probe
// compares the slot's upper 40 bits (fingerprint|displacement) against an
// expected value that simply increments per step: at probe distance d the
// matching slot must hold exactly fp<<dispBits | d.
// prefetchHome touches the line's home slot, pulling its cache line
// toward the host core ahead of the real probe, and returns the slot word
// so callers can sink it (defeating dead-load elimination). Read-only: no
// simulated state changes.
func (t *quotTable[V]) prefetchHome(line mem.LineAddr) uint64 {
	tag := uint64(line) / mem.LineSize
	if tag > quotKeyMask {
		return 0
	}
	return t.slots[quotMix(tag)>>t.shift]
}

func (t *quotTable[V]) find(line mem.LineAddr) *uint64 {
	tag := uint64(line) / mem.LineSize
	if tag > quotKeyMask {
		return nil // out-of-range keys are never stored (put panics)
	}
	h := quotMix(tag)
	i := h >> t.shift
	expect := (h & (uint64(1)<<t.shift - 1)) << t.dispBits
	for {
		w := t.slots[i]
		if w == 0 {
			break
		}
		if w&quotPresent != 0 && w>>quotDispShift == expect {
			return &t.slots[i]
		}
		i = (i + 1) & t.mask
		expect++
	}
	if t.old != nil {
		i = h >> t.oldShift
		expect = (h & (uint64(1)<<t.oldShift - 1)) << t.oldDispBits
		for {
			w := t.old[i]
			if w == 0 {
				break
			}
			if w&quotPresent != 0 && w>>quotDispShift == expect {
				return &t.old[i]
			}
			i = (i + 1) & t.oldMask
			expect++
		}
	}
	return nil
}

func (t *quotTable[V]) get(line mem.LineAddr) (V, bool) {
	if p := t.find(line); p != nil {
		var zero V
		return zero.unpackValue(*p >> quotValueShift & (uint64(1)<<quotValueBits - 1)), true
	}
	var zero V
	return zero, false
}

// ref returns a pointer to an unpacked copy of the line's value, or nil
// when absent. Unlike openTable's ref, mutations through the pointer reach
// the table only when sync is called; the pointer (and the pending sync)
// are valid only until the next put/del.
func (t *quotTable[V]) ref(line mem.LineAddr) *V {
	p := t.find(line)
	if p == nil {
		return nil
	}
	var zero V
	t.scratch = zero.unpackValue(*p >> quotValueShift & (uint64(1)<<quotValueBits - 1))
	t.refWord = p
	return &t.scratch
}

// sync packs the scratch value mutated through ref back into its slot,
// leaving fingerprint and displacement untouched.
func (t *quotTable[V]) sync() {
	*t.refWord = *t.refWord&^quotValueMask | t.scratch.packValue()<<quotValueShift
}

func (t *quotTable[V]) put(line mem.LineAddr, v V) {
	tag := uint64(line) / mem.LineSize
	if tag > quotKeyMask {
		panic(fmt.Sprintf("coherence: line %#x exceeds the quotient table's %d-bit key domain",
			uint64(line), quotKeyBits))
	}
	if t.old != nil {
		t.migrateSome()
	}
	if (t.n+t.oldN+1)*maxLoadDen > len(t.slots)*maxLoadNum {
		t.grow()
	}
	h := quotMix(tag)
	if t.old != nil {
		// The key must live in exactly one table: tombstone any old copy.
		t.delOld(h)
	}
	i := h >> t.shift
	expect := (h & (uint64(1)<<t.shift - 1)) << t.dispBits
	for {
		w := t.slots[i]
		if w == 0 {
			t.slots[i] = expect<<quotDispShift | v.packValue()<<quotValueShift | quotPresent
			t.n++
			return
		}
		if w>>quotDispShift == expect {
			t.slots[i] = w&^quotValueMask | v.packValue()<<quotValueShift
			return
		}
		i = (i + 1) & t.mask
		expect++
	}
}

func (t *quotTable[V]) del(line mem.LineAddr) {
	tag := uint64(line) / mem.LineSize
	if tag > quotKeyMask {
		return
	}
	if t.old != nil {
		t.migrateSome()
	}
	h := quotMix(tag)
	if t.delLive(h) {
		return
	}
	if t.old != nil {
		t.delOld(h)
	}
}

// delLive removes the key from the live table with backward-shift
// deletion. A stored displacement directly encodes how far an entry sits
// from its home, so the may-shift test — "probing from its home would have
// crossed the hole" — is a single compare against the shift distance.
func (t *quotTable[V]) delLive(h uint64) bool {
	i := h >> t.shift
	expect := (h & (uint64(1)<<t.shift - 1)) << t.dispBits
	for {
		w := t.slots[i]
		if w == 0 {
			return false
		}
		if w>>quotDispShift == expect {
			break
		}
		i = (i + 1) & t.mask
		expect++
	}
	t.n--
	hole := i
	for j := (i + 1) & t.mask; ; j = (j + 1) & t.mask {
		w := t.slots[j]
		if w == 0 {
			break
		}
		dj := (j - hole) & t.mask
		if w>>quotDispShift&(uint64(1)<<t.dispBits-1) >= dj {
			// Shifting back by dj decrements the displacement field; the
			// guard guarantees no borrow into the value bits.
			t.slots[hole] = w - dj<<quotDispShift
			hole = j
		}
	}
	t.slots[hole] = 0
	return true
}

// delOld tombstones the key in the draining table (its probe chains must
// keep working until the drain completes, so slots are never emptied).
func (t *quotTable[V]) delOld(h uint64) {
	i := h >> t.oldShift
	expect := (h & (uint64(1)<<t.oldShift - 1)) << t.oldDispBits
	for {
		w := t.old[i]
		if w == 0 {
			return
		}
		if w&quotPresent != 0 && w>>quotDispShift == expect {
			t.old[i] = quotTombstone
			t.oldN--
			return
		}
		i = (i + 1) & t.oldMask
		expect++
	}
}

// grow starts an incremental doubling. Any previous drain finishes first,
// so at most one old table exists at a time.
func (t *quotTable[V]) grow() {
	for t.old != nil {
		t.migrateSome()
	}
	if t.shift == 1 {
		// 2^(quotKeyBits-1) slots would leave no fingerprint; at 8 B/slot
		// that is a ~1 TB table, far past any simulated footprint.
		panic("coherence: quotient table grown past its key domain")
	}
	t.old, t.oldMask, t.oldShift, t.oldDispBits = t.slots, t.mask, t.shift, t.dispBits
	t.oldN, t.oldPos = t.n, 0
	t.slots = make([]uint64, len(t.old)*2)
	t.mask = uint64(len(t.slots) - 1)
	t.shift--
	t.dispBits++
	t.n = 0
}

// migrateSome moves a bounded chunk of entries from the draining table
// into the live one, reconstructing each key's mix from its slot index,
// displacement and fingerprint under the old geometry. Callers guard the
// call with `t.old != nil` so the steady state (no drain in progress)
// pays a branch, not a call.
func (t *quotTable[V]) migrateSome() {
	if t.old == nil {
		return
	}
	end := t.oldPos + migrateChunk
	if end > len(t.old) {
		end = len(t.old)
	}
	for ; t.oldPos < end; t.oldPos++ {
		w := t.old[t.oldPos]
		if w&quotPresent == 0 {
			continue // empty or tombstone
		}
		disp := w >> quotDispShift & (uint64(1)<<t.oldDispBits - 1)
		fp := w >> (quotDispShift + t.oldDispBits)
		home := (uint64(t.oldPos) - disp) & t.oldMask
		h := home<<t.oldShift | fp
		t.insertFresh(h, w>>quotValueShift&(uint64(1)<<quotValueBits-1))
		t.old[t.oldPos] = quotTombstone
		t.oldN--
	}
	if t.oldPos == len(t.old) || t.oldN == 0 {
		t.old, t.oldMask, t.oldShift, t.oldDispBits, t.oldN, t.oldPos = nil, 0, 0, 0, 0, 0
	}
}

// insertFresh inserts a mix known to be absent from the live table
// (migration only; capacity is guaranteed by the pre-insert growth check,
// which counts draining entries too).
func (t *quotTable[V]) insertFresh(h, packedValue uint64) {
	i := h >> t.shift
	expect := (h & (uint64(1)<<t.shift - 1)) << t.dispBits
	for {
		if t.slots[i] == 0 {
			t.slots[i] = expect<<quotDispShift | packedValue<<quotValueShift | quotPresent
			t.n++
			return
		}
		i = (i + 1) & t.mask
		expect++
	}
}

func (t *quotTable[V]) forEach(fn func(mem.LineAddr, V)) {
	var zero V
	emit := func(i uint64, w uint64, shift, dispBits uint, mask uint64) {
		disp := w >> quotDispShift & (uint64(1)<<dispBits - 1)
		fp := w >> (quotDispShift + dispBits)
		h := ((i-disp)&mask)<<shift | fp
		tag := h * quotMulInv & quotKeyMask
		fn(mem.LineAddr(tag*mem.LineSize), zero.unpackValue(w>>quotValueShift&(uint64(1)<<quotValueBits-1)))
	}
	for i, w := range t.slots {
		if w&quotPresent != 0 {
			emit(uint64(i), w, t.shift, t.dispBits, t.mask)
		}
	}
	if t.old != nil {
		for i, w := range t.old {
			if w&quotPresent != 0 {
				emit(uint64(i), w, t.oldShift, t.oldDispBits, t.oldMask)
			}
		}
	}
}
