package coherence

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/sim"
)

// qval is a 23-bit test payload implementing the quotient table's value
// packing contract.
type qval uint32

func (q qval) packValue() uint64       { return uint64(q) & (1<<quotValueBits - 1) }
func (qval) unpackValue(w uint64) qval { return qval(w) }

func qrand(rng *sim.RNG) qval { return qval(rng.Uint64() & (1<<quotValueBits - 1)) }

// TestQuotMulInverse pins the precomputed modular inverse the key
// reconstruction (forEach, migration) depends on.
func TestQuotMulInverse(t *testing.T) {
	if quotMul*quotMulInv&quotKeyMask != 1 {
		t.Fatalf("quotMulInv is not the inverse of quotMul mod 2^%d", quotKeyBits)
	}
	rng := sim.NewRNG(99)
	for i := 0; i < 1000; i++ {
		tag := rng.Uint64() & quotKeyMask
		if quotMix(tag)*quotMulInv&quotKeyMask != tag {
			t.Fatalf("mix of tag %#x does not invert", tag)
		}
	}
}

// TestQuotTableAgainstMap drives the compressed table and a plain map
// through identical randomized put/get/del mixes, forcing several
// incremental growths (each shrinking the fingerprint by a bit) and heavy
// deletion churn, and demands identical contents throughout.
func TestQuotTableAgainstMap(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		tab := newQuotTable[qval]()
		ref := map[mem.LineAddr]qval{}
		rng := sim.NewRNG(seed * 104729)

		// Key space ~4x the growth threshold, with strided high-bit keys in
		// the mix so fingerprints exercise their full width. Line 0
		// included: the encoding must not confuse it with an empty slot.
		const keys = 4096
		line := func(i uint64) mem.LineAddr {
			l := i * mem.LineSize
			if i%3 == 0 {
				l += (i % 64) << 30 // spread across high address bits
			}
			return mem.LineAddr(l)
		}

		for i := 0; i < 200_000; i++ {
			k := line(rng.Uint64n(keys))
			switch rng.Uint64n(10) {
			case 0, 1, 2: // del
				tab.del(k)
				delete(ref, k)
			case 3: // get
				v, ok := tab.get(k)
				rv, rok := ref[k]
				if ok != rok || v != rv {
					t.Fatalf("seed %d op %d: get(%#x) = (%d,%v), want (%d,%v)", seed, i, uint64(k), v, ok, rv, rok)
				}
			case 4: // ref+sync mutation
				p := tab.ref(k)
				rv, rok := ref[k]
				if (p != nil) != rok {
					t.Fatalf("seed %d op %d: ref(%#x) presence %v, want %v", seed, i, uint64(k), p != nil, rok)
				}
				if p != nil {
					if *p != rv {
						t.Fatalf("seed %d op %d: ref(%#x) = %d, want %d", seed, i, uint64(k), *p, rv)
					}
					*p = qrand(rng)
					tab.sync()
					ref[k] = *p
				}
			default: // put (insert or overwrite)
				v := qrand(rng)
				tab.put(k, v)
				ref[k] = v
			}
			if tab.size() != len(ref) {
				t.Fatalf("seed %d op %d: size %d, want %d", seed, i, tab.size(), len(ref))
			}
		}

		// Full content agreement, both directions — forEach reconstructs
		// every key from (slot, displacement, fingerprint) alone.
		seen := map[mem.LineAddr]qval{}
		tab.forEach(func(k mem.LineAddr, v qval) {
			if _, dup := seen[k]; dup {
				t.Fatalf("seed %d: forEach visited %#x twice", seed, uint64(k))
			}
			seen[k] = v
		})
		if len(seen) != len(ref) {
			t.Fatalf("seed %d: forEach visited %d keys, want %d", seed, len(seen), len(ref))
		}
		for k, v := range ref {
			if sv, ok := seen[k]; !ok || sv != v {
				t.Fatalf("seed %d: key %#x = (%d,%v), want %d", seed, uint64(k), sv, ok, v)
			}
		}
	}
}

// TestQuotTableBackwardShift exercises deletion inside a probe cluster:
// keys engineered to collide must remain reachable — with their stored
// displacements rewritten — after middle elements of the cluster are
// removed.
func TestQuotTableBackwardShift(t *testing.T) {
	tab := newQuotTable[qval]()
	var cluster []mem.LineAddr
	target := quotMix(0) >> tab.shift
	for i := uint64(0); len(cluster) < 6 && i < 1_000_000; i++ {
		k := mem.LineAddr(i * mem.LineSize)
		if quotMix(uint64(k)/mem.LineSize)>>tab.shift == target {
			cluster = append(cluster, k)
		}
	}
	if len(cluster) < 6 {
		t.Skip("could not build a collision cluster")
	}
	for i, k := range cluster {
		tab.put(k, qval(i+1))
	}
	tab.del(cluster[2])
	tab.del(cluster[0])
	for i, k := range cluster {
		v, ok := tab.get(k)
		switch i {
		case 0, 2:
			if ok {
				t.Fatalf("deleted key %d still present", i)
			}
		default:
			if !ok || v != qval(i+1) {
				t.Fatalf("cluster key %d lost after deletes: (%d,%v)", i, v, ok)
			}
		}
	}
}

// TestQuotTableKeyDomain pins the key-domain contract: lookups and
// deletions of out-of-range lines report absent, and put fails loudly.
func TestQuotTableKeyDomain(t *testing.T) {
	tab := newQuotTable[qval]()
	big := mem.LineAddr(uint64(1) << (quotKeyBits + 7)) // tag = 2^(38+1)
	if _, ok := tab.get(big); ok {
		t.Fatal("out-of-range key reported present")
	}
	tab.del(big) // no-op, must not panic
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic storing a key past the fingerprint domain")
		}
	}()
	tab.put(big, 1)
}

func TestQuotStoreKindGates(t *testing.T) {
	if QuotTable.String() != "quot-table" {
		t.Fatalf("StoreKind name %q", QuotTable.String())
	}
	if QuotTable.BytesPerSlot() != 8 || OpenTable.BytesPerSlot() != 16 || MapStore.BytesPerSlot() != 0 {
		t.Fatal("BytesPerSlot wrong")
	}
	if DefaultStore(16) != QuotTable || DefaultStore(17) != OpenTable {
		t.Fatal("DefaultStore split wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic: quotient store beyond its core budget")
		}
	}()
	NewDirectoryWithStore(32, MOESI, QuotTable)
}

// TestFullWidthEntries32Cores pins the packed-entry layout at the full
// 32-core width on the open and map stores (regression: a 16-bit mask
// field silently truncated cores 16-31 and overflowed the owner field).
func TestFullWidthEntries32Cores(t *testing.T) {
	for _, kind := range []StoreKind{OpenTable, MapStore} {
		f := NewSnoopFilterWithStore(32, kind)
		l := mem.LineAddr(4096)
		for c := 0; c < 32; c++ {
			f.Read(l, c)
		}
		if got := f.HoldersMask(l); got != ^uint32(0) {
			t.Fatalf("%v: 32-core holder mask = %#x, want all ones", kind, got)
		}
		if inv, _ := f.WriteMask(l, 31); inv != ^uint32(0)&^(1<<31) {
			t.Fatalf("%v: WriteMask(31) invalidated %#x", kind, inv)
		}
		if f.DirtyOwner(l) != 31 {
			t.Fatalf("%v: dirty owner = %d, want 31", kind, f.DirtyOwner(l))
		}

		d := NewDirectoryWithStore(32, MOESI, kind)
		d.Read(l, 31)
		if d.Owner(l) != 31 || d.StateOf(l, 31) != cache.Exclusive {
			t.Fatalf("%v: owner %d state %v, want 31/E", kind, d.Owner(l), d.StateOf(l, 31))
		}
		for c := 0; c < 31; c++ {
			d.Read(l, c)
		}
		if got := d.SharersMask(l); got != ^uint32(0) {
			t.Fatalf("%v: 32-core sharer mask = %#x, want all ones", kind, got)
		}
		out := d.WriteMask(l, 31)
		if out.InvalidatedMask != ^uint32(0)&^(1<<31) || d.Owner(l) != 31 {
			t.Fatalf("%v: write by core 31: %+v owner %d", kind, out, d.Owner(l))
		}
		if msg := d.CheckInvariants(); msg != "" {
			t.Fatalf("%v: %s", kind, msg)
		}
	}
}
