package coherence

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/checkpoint"
	"repro/internal/mem"
)

// This file serializes the three lineStore implementations exactly —
// full slabs, not just live entries — so a restored table is
// field-for-field identical to the one that was snapshotted: same probe
// chains, same draining-migration position, same growth schedule. That
// makes the determinism argument trivial (identical state ⇒ identical
// behaviour) and keeps restore at memcpy speed for the quotient store's
// raw []uint64 slab, which is the paper-scale configuration.
//
// The generic helpers are constrained to value types that are plain
// uint64 words (both coherence entry types are), so open/map entries
// round-trip through uint64 without per-type code.

// storeKindOf recovers the concrete StoreKind behind a hotStore.
func storeKindOf[V lineValue[V]](s hotStore[V]) StoreKind {
	switch {
	case s.fastQ != nil:
		return QuotTable
	case s.fast != nil:
		return OpenTable
	default:
		return MapStore
	}
}

// validTableGeom checks the shared power-of-two slab invariants.
func validTableGeom(slabLen int, mask uint64, n int) bool {
	if slabLen < minTableSlots || slabLen&(slabLen-1) != 0 {
		return false
	}
	return mask == uint64(slabLen-1) && n >= 0 && n <= slabLen
}

func snapshotStore[V interface {
	lineValue[V]
	~uint64
}](w *checkpoint.Writer, s hotStore[V]) {
	kind := storeKindOf(s)
	w.Section("coherence.store")
	w.U8(uint8(kind))
	switch kind {
	case QuotTable:
		t := s.fastQ
		w.U64(t.mask)
		w.U64(uint64(t.shift))
		w.U64(uint64(t.dispBits))
		w.I64(int64(t.n))
		w.U64s(t.slots)
		w.U64(t.oldMask)
		w.U64(uint64(t.oldShift))
		w.U64(uint64(t.oldDispBits))
		w.I64(int64(t.oldN))
		w.I64(int64(t.oldPos))
		w.U64s(t.old)
	case OpenTable:
		t := s.fast
		w.U64(t.mask)
		w.I64(int64(t.n))
		snapshotSlots(w, t.slots)
		w.U64(t.oldMask)
		w.I64(int64(t.oldN))
		w.I64(int64(t.oldPos))
		snapshotSlots(w, t.old)
	default:
		m := s.lineStore.(mapStore[V])
		lines := make([]uint64, 0, len(m))
		for line := range m {
			lines = append(lines, uint64(line))
		}
		sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
		w.I64(int64(len(lines)))
		for _, line := range lines {
			w.U64(line)
			w.U64(uint64(*m[mem.LineAddr(line)]))
		}
	}
}

// snapshotSlots writes a full openTable slab (keys and packed values,
// empty and tombstoned slots included) so probe chains survive exactly.
func snapshotSlots[V ~uint64](w *checkpoint.Writer, slots []slot[V]) {
	w.U64(uint64(len(slots)))
	for i := range slots {
		w.U64(slots[i].key)
		w.U64(uint64(slots[i].val))
	}
}

func restoreSlots[V ~uint64](r *checkpoint.Reader) []slot[V] {
	n := r.U64()
	if r.Err() != nil || n > maxRestoreSlots {
		return nil
	}
	out := make([]slot[V], int(n))
	for i := range out {
		out[i].key = r.U64()
		out[i].val = V(r.U64())
	}
	return out
}

// maxRestoreSlots bounds slab lengths read before CRC verification,
// mirroring checkpoint.Reader's own slice-length guard.
const maxRestoreSlots = 1 << 28

func restoreStore[V interface {
	lineValue[V]
	~uint64
}](r *checkpoint.Reader, want StoreKind) (hotStore[V], error) {
	var zero hotStore[V]
	if err := r.Section("coherence.store"); err != nil {
		return zero, err
	}
	kind := StoreKind(r.U8())
	if r.Err() != nil {
		return zero, r.Err()
	}
	if kind != want {
		return zero, fmt.Errorf("coherence: checkpoint store kind %v, system uses %v", kind, want)
	}
	switch kind {
	case QuotTable:
		t := &quotTable[V]{}
		t.mask = r.U64()
		t.shift = uint(r.U64())
		t.dispBits = uint(r.U64())
		t.n = int(r.I64())
		t.slots = r.U64s()
		t.oldMask = r.U64()
		t.oldShift = uint(r.U64())
		t.oldDispBits = uint(r.U64())
		t.oldN = int(r.I64())
		t.oldPos = int(r.I64())
		t.old = r.U64s()
		if err := r.Err(); err != nil {
			return zero, err
		}
		if len(t.old) == 0 {
			t.old = nil // probe paths test old != nil, not len
		}
		if !validTableGeom(len(t.slots), t.mask, t.n) ||
			t.shift != quotKeyBits-uint(bits.Len(uint(len(t.slots))-1)) ||
			t.dispBits != 64-quotDispShift-t.shift {
			return zero, fmt.Errorf("coherence: corrupt quot-table geometry (%d slots, mask %#x, shift %d, disp %d)",
				len(t.slots), t.mask, t.shift, t.dispBits)
		}
		if len(t.old) > 0 {
			if !validTableGeom(len(t.old), t.oldMask, t.oldN) ||
				t.oldPos < 0 || t.oldPos > len(t.old) ||
				t.oldShift != quotKeyBits-uint(bits.Len(uint(len(t.old))-1)) ||
				t.oldDispBits != 64-quotDispShift-t.oldShift {
				return zero, fmt.Errorf("coherence: corrupt draining quot-table geometry (%d slots)", len(t.old))
			}
		} else if t.oldN != 0 || t.oldPos != 0 || t.oldMask != 0 {
			return zero, fmt.Errorf("coherence: draining quot-table fields set with no table")
		}
		return hotStore[V]{lineStore: t, fastQ: t}, nil
	case OpenTable:
		t := &openTable[V]{}
		t.mask = r.U64()
		t.n = int(r.I64())
		t.slots = restoreSlots[V](r)
		t.oldMask = r.U64()
		t.oldN = int(r.I64())
		t.oldPos = int(r.I64())
		t.old = restoreSlots[V](r)
		if err := r.Err(); err != nil {
			return zero, err
		}
		if len(t.old) == 0 {
			t.old = nil // probe paths test old != nil, not len
		}
		if !validTableGeom(len(t.slots), t.mask, t.n) {
			return zero, fmt.Errorf("coherence: corrupt open-table geometry (%d slots, mask %#x)", len(t.slots), t.mask)
		}
		if len(t.old) > 0 {
			if !validTableGeom(len(t.old), t.oldMask, t.oldN) || t.oldPos < 0 || t.oldPos > len(t.old) {
				return zero, fmt.Errorf("coherence: corrupt draining open-table geometry (%d slots)", len(t.old))
			}
		} else if t.oldN != 0 || t.oldPos != 0 || t.oldMask != 0 {
			return zero, fmt.Errorf("coherence: draining open-table fields set with no table")
		}
		return hotStore[V]{lineStore: t, fast: t}, nil
	default:
		n := r.I64()
		if r.Err() != nil {
			return zero, r.Err()
		}
		if n < 0 || n > maxRestoreSlots {
			return zero, fmt.Errorf("coherence: corrupt map-store size %d", n)
		}
		m := make(mapStore[V], int(n))
		for i := int64(0); i < n; i++ {
			line := mem.LineAddr(r.U64())
			v := V(r.U64())
			m[line] = &v
		}
		if err := r.Err(); err != nil {
			return zero, err
		}
		return hotStore[V]{lineStore: m}, nil
	}
}

// Snapshot serializes the snoop filter: stat counters plus the exact
// line-store slab (see the file comment).
func (f *SnoopFilter) Snapshot(w *checkpoint.Writer) {
	w.Section("coherence.SnoopFilter")
	w.I64(int64(f.cores))
	w.U64(f.Forwards)
	w.U64(f.Invalidations)
	snapshotStore(w, f.entries)
}

// Restore overwrites a freshly constructed snoop filter. The core count
// and store kind must match the live configuration.
func (f *SnoopFilter) Restore(r *checkpoint.Reader) error {
	if err := r.Section("coherence.SnoopFilter"); err != nil {
		return err
	}
	cores := int(r.I64())
	forwards, invalidations := r.U64(), r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if cores != f.cores {
		return fmt.Errorf("coherence: checkpoint snoop filter for %d cores, system has %d", cores, f.cores)
	}
	entries, err := restoreStore[l1entry](r, storeKindOf(f.entries))
	if err != nil {
		return err
	}
	f.entries = entries
	f.Forwards = forwards
	f.Invalidations = invalidations
	return nil
}

// Snapshot serializes the directory: protocol/core geometry (validated
// on restore), stat counters, and the exact line-store slab.
func (d *Directory) Snapshot(w *checkpoint.Writer) {
	w.Section("coherence.Directory")
	w.U8(uint8(d.protocol))
	w.I64(int64(d.cores))
	w.U64(d.Reads)
	w.U64(d.Writes)
	w.U64(d.Upgrades)
	w.U64(d.Forwards)
	w.U64(d.Invalidations)
	w.U64(d.MemWritebacks)
	snapshotStore(w, d.entries)
}

// Restore overwrites a freshly constructed directory. Protocol, core
// count and store kind must match the live configuration.
func (d *Directory) Restore(r *checkpoint.Reader) error {
	if err := r.Section("coherence.Directory"); err != nil {
		return err
	}
	protocol := Protocol(r.U8())
	cores := int(r.I64())
	var c [6]uint64
	for i := range c {
		c[i] = r.U64()
	}
	if err := r.Err(); err != nil {
		return err
	}
	if protocol != d.protocol || cores != d.cores {
		return fmt.Errorf("coherence: checkpoint directory protocol %d/%d cores, system has %d/%d",
			protocol, cores, d.protocol, d.cores)
	}
	entries, err := restoreStore[entry](r, storeKindOf(d.entries))
	if err != nil {
		return err
	}
	d.entries = entries
	d.Reads, d.Writes, d.Upgrades = c[0], c[1], c[2]
	d.Forwards, d.Invalidations, d.MemWritebacks = c[3], c[4], c[5]
	return nil
}
