package coherence

import (
	"bytes"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/mem"
	"repro/internal/sim"
)

// driveSnoop applies a deterministic mixed workload (reads, writes,
// evictions — enough volume to force several table growths and leave a
// draining old table live) to a snoop filter.
func driveSnoop(f *SnoopFilter, cores int, ops int) {
	rng := sim.NewRNG(7)
	for i := 0; i < ops; i++ {
		line := mem.LineAddr(rng.Uint64n(uint64(ops/2)+1) * mem.LineSize)
		core := rng.Intn(cores)
		switch rng.Intn(4) {
		case 0:
			f.Read(line, core)
		case 1:
			f.Write(line, core)
		case 2:
			f.WriteMask(line, core)
		default:
			f.Evict(line, core, rng.Bool(0.3))
		}
	}
}

func driveDirectory(d *Directory, cores int, ops int) {
	rng := sim.NewRNG(11)
	for i := 0; i < ops; i++ {
		line := mem.LineAddr(rng.Uint64n(uint64(ops/2)+1) * mem.LineSize)
		core := rng.Intn(cores)
		holds := d.SharersMask(line)&(1<<uint(core)) != 0
		switch rng.Intn(4) {
		case 0:
			// Read is only legal on a miss (the requester must not hold).
			if holds {
				d.Write(line, core) // upgrade instead
			} else {
				d.Read(line, core)
			}
		case 1:
			d.Write(line, core)
		case 2:
			// MarkDirty is only legal from the current owner.
			if d.Owner(line) == core {
				d.MarkDirty(line, core)
			} else {
				d.Write(line, core)
			}
		default:
			// Evict is only legal for a core that holds the line.
			if holds {
				d.Evict(line, core)
			} else {
				d.Write(line, core)
			}
		}
	}
}

func snoopContents(f *SnoopFilter) map[mem.LineAddr][2]uint64 {
	out := make(map[mem.LineAddr][2]uint64)
	f.ForEachEntry(func(line mem.LineAddr, mask uint32, owner int) {
		out[line] = [2]uint64{uint64(mask), uint64(owner)}
	})
	return out
}

func TestSnoopFilterSnapshotRoundTrip(t *testing.T) {
	for _, kind := range []StoreKind{QuotTable, OpenTable, MapStore} {
		cores := 8
		f := NewSnoopFilterWithStore(cores, kind)
		driveSnoop(f, cores, 3000)

		var buf bytes.Buffer
		w := checkpoint.NewWriter(&buf)
		f.Snapshot(w)
		if err := w.Finish(); err != nil {
			t.Fatalf("%v: snapshot: %v", kind, err)
		}

		g := NewSnoopFilterWithStore(cores, kind)
		r := checkpoint.NewReader(bytes.NewReader(buf.Bytes()))
		if err := g.Restore(r); err != nil {
			t.Fatalf("%v: restore: %v", kind, err)
		}
		if err := r.Finish(); err != nil {
			t.Fatalf("%v: finish: %v", kind, err)
		}
		if g.Entries() != f.Entries() || g.Forwards != f.Forwards || g.Invalidations != f.Invalidations {
			t.Fatalf("%v: size/stats diverge: %d/%d/%d vs %d/%d/%d",
				kind, g.Entries(), g.Forwards, g.Invalidations, f.Entries(), f.Forwards, f.Invalidations)
		}
		want, got := snoopContents(f), snoopContents(g)
		if len(want) != len(got) {
			t.Fatalf("%v: entry count %d vs %d", kind, len(got), len(want))
		}
		for line, v := range want {
			if got[line] != v {
				t.Fatalf("%v: line %#x: got %v want %v", kind, line, got[line], v)
			}
		}

		// The restored filter must behave identically under further
		// traffic, not just hold the same content: drive both again and
		// re-compare (this exercises preserved probe chains, draining
		// migration position, and growth schedule).
		driveSnoop(f, cores, 2000)
		driveSnoop(g, cores, 2000)
		if g.Entries() != f.Entries() || g.Forwards != f.Forwards || g.Invalidations != f.Invalidations {
			t.Fatalf("%v: post-restore behaviour diverges", kind)
		}
	}
}

func TestDirectorySnapshotRoundTrip(t *testing.T) {
	for _, kind := range []StoreKind{QuotTable, OpenTable, MapStore} {
		for _, proto := range []Protocol{MOESI, MESI} {
			cores := 8
			d := NewDirectoryWithStore(cores, proto, kind)
			driveDirectory(d, cores, 3000)

			var buf bytes.Buffer
			w := checkpoint.NewWriter(&buf)
			d.Snapshot(w)
			if err := w.Finish(); err != nil {
				t.Fatalf("%v/%v: snapshot: %v", kind, proto, err)
			}

			g := NewDirectoryWithStore(cores, proto, kind)
			r := checkpoint.NewReader(bytes.NewReader(buf.Bytes()))
			if err := g.Restore(r); err != nil {
				t.Fatalf("%v/%v: restore: %v", kind, proto, err)
			}
			if err := r.Finish(); err != nil {
				t.Fatalf("%v/%v: finish: %v", kind, proto, err)
			}
			driveDirectory(d, cores, 2000)
			driveDirectory(g, cores, 2000)
			if g.Entries() != d.Entries() || g.Reads != d.Reads || g.Writes != d.Writes ||
				g.Upgrades != d.Upgrades || g.Forwards != d.Forwards ||
				g.Invalidations != d.Invalidations || g.MemWritebacks != d.MemWritebacks {
				t.Fatalf("%v/%v: post-restore behaviour diverges", kind, proto)
			}
			if msg := g.CheckInvariants(); msg != "" {
				t.Fatalf("%v/%v: restored directory invariants: %s", kind, proto, msg)
			}
		}
	}
}

func TestStoreKindMismatchRejected(t *testing.T) {
	f := NewSnoopFilterWithStore(4, QuotTable)
	driveSnoop(f, 4, 100)
	var buf bytes.Buffer
	w := checkpoint.NewWriter(&buf)
	f.Snapshot(w)
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	g := NewSnoopFilterWithStore(4, OpenTable)
	r := checkpoint.NewReader(bytes.NewReader(buf.Bytes()))
	if err := g.Restore(r); err == nil {
		t.Fatal("store-kind mismatch not rejected")
	}
}
