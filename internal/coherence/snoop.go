package coherence

import (
	"fmt"
	"math/bits"

	"repro/internal/mem"
)

// SnoopFilter tracks which private L1s hold copies of lines above a shared
// last-level cache, implementing the baseline's MESI protocol with the LLC
// as the point of coherence (paper Table II: non-inclusive MESI). A dirty
// L1 copy read by another core is forwarded and the dirty data is absorbed
// by the LLC, not main memory.
//
// Sharer sets are returned as bit masks (bit c: core c) by the fast-path
// queries — HoldersMask, WriteMask, InvalidateAllMask — which allocate
// nothing; iterate them with bits.TrailingZeros32. The slice-returning
// forms (Holders, Write, InvalidateAll) are thin wrappers kept for tests
// and as the readable reference.
type SnoopFilter struct {
	cores   int
	entries hotStore[l1entry]

	// Stats.
	Forwards      uint64
	Invalidations uint64
}

// l1entry is the packed per-line filter state: bits 0-31 the holder mask
// (bit c: core c's L1 holds the line), bits 32-37 the dirty owner + 1
// (0 = clean) — full 32-core width, so the open and map stores serve any
// legal core count. Storing the already-packed word — rather than a
// struct the compressed store would have to re-encode — keeps the hot
// mutations single word ops; the quotient store compresses the word into
// its 23-bit value field at its boundary (possible exactly when the
// filter is within quotMaxCores, which NewSnoopFilterWithStore gates).
type l1entry uint64

const l1ownerShift = 32 // owner+1 field sits above the full-width mask

func snoopEntry(mask uint32, owner int) l1entry {
	return l1entry(uint64(mask) | uint64(owner+1)<<l1ownerShift)
}

func (e l1entry) mask() uint32 { return uint32(e) }
func (e l1entry) owner() int   { return int(e>>l1ownerShift&0x3F) - 1 }

// packValue/unpackValue are the quotient table's 23-bit value contract
// (see quot.go): a 16-bit mask plus 5-bit owner+1 re-packing, exact for
// the <=quotMaxCores systems the quotient store accepts.
func (e l1entry) packValue() uint64 {
	return uint64(e)&(1<<quotMaxCores-1) | e.ownerField()<<quotMaxCores
}

func (l1entry) unpackValue(w uint64) l1entry {
	return l1entry(w&(1<<quotMaxCores-1) | w>>quotMaxCores&0x1F<<l1ownerShift)
}

// ownerField returns the raw owner+1 bits.
func (e l1entry) ownerField() uint64 { return uint64(e) >> l1ownerShift & 0x3F }

// NewSnoopFilter builds a filter for up to 32 cores on the default line
// table for the core count (quotient-compressed up to 16 cores, open
// full-key beyond).
func NewSnoopFilter(cores int) *SnoopFilter {
	return NewSnoopFilterWithStore(cores, DefaultStore(cores))
}

// NewSnoopFilterWithStore builds a filter on an explicit store
// implementation; the differential test drives the table stores against
// MapStore to prove operation-for-operation equality.
func NewSnoopFilterWithStore(cores int, kind StoreKind) *SnoopFilter {
	if cores <= 0 || cores > 32 {
		panic(fmt.Sprintf("coherence: core count %d outside [1,32]", cores))
	}
	if kind == QuotTable && cores > quotMaxCores {
		panic(fmt.Sprintf("coherence: quotient store packs a %d-core sharer mask; %d cores need OpenTable",
			quotMaxCores, cores))
	}
	return &SnoopFilter{cores: cores, entries: newHotStore[l1entry](kind)}
}

// BytesPerSlot reports the inline footprint of one line-table slot.
func (f *SnoopFilter) BytesPerSlot() int { return f.entries.bytesPerSlot() }

// PrefetchLine warms the line's home slot in the filter's line table ahead
// of the real probe (host-side only; callers must sink the returned word).
func (f *SnoopFilter) PrefetchLine(line mem.LineAddr) uint64 {
	return f.entries.prefetchHome(line)
}

func (f *SnoopFilter) check(core int) {
	if core < 0 || core >= f.cores {
		panic(fmt.Sprintf("coherence: core %d outside [0,%d)", core, f.cores))
	}
}

// HoldersMask returns the holder set of the line as a bit mask.
func (f *SnoopFilter) HoldersMask(line mem.LineAddr) uint32 {
	e, ok := f.entries.get(line)
	if !ok {
		return 0
	}
	return e.mask()
}

// Holders returns the cores whose L1s hold the line.
func (f *SnoopFilter) Holders(line mem.LineAddr) []int {
	return maskToSlice(f.HoldersMask(line))
}

// DirtyOwner returns the L1 holding the line modified, or -1.
func (f *SnoopFilter) DirtyOwner(line mem.LineAddr) int {
	e, ok := f.entries.get(line)
	if !ok {
		return -1
	}
	return e.owner()
}

// Read records core's L1 fetching the line for reading. If another L1 holds
// it modified, that L1 forwards and downgrades, and the LLC absorbs the
// dirty data: the returned dirtied flag tells the LLC to mark its copy
// modified so the data eventually reaches memory on LLC eviction.
func (f *SnoopFilter) Read(line mem.LineAddr, core int) (forwarder int, dirtied bool) {
	f.check(core)
	forwarder = -1
	if e := f.entries.ref(line); e != nil {
		if ow := e.owner(); ow >= 0 && ow != core {
			forwarder = ow
			dirtied = true
			*e &^= 0x3F << l1ownerShift // owner -> -1
			f.Forwards++
		}
		*e |= 1 << uint(core)
		f.entries.sync()
		return forwarder, dirtied
	}
	f.entries.put(line, snoopEntry(1<<uint(core), -1))
	return forwarder, dirtied
}

// WriteMask records core's L1 fetching the line for writing: every other
// L1 copy is invalidated and core becomes the dirty owner. If a previous
// dirty owner existed it forwards (dirtied tells the LLC to absorb the
// data). The invalidated cores are returned as a mask; the steady-state
// store path allocates nothing (asserted by TestSnoopSteadyStateAllocFree).
func (f *SnoopFilter) WriteMask(line mem.LineAddr, core int) (invalidated uint32, dirtied bool) {
	f.check(core)
	if e := f.entries.ref(line); e != nil {
		if ow := e.owner(); ow >= 0 && ow != core {
			dirtied = true
			f.Forwards++
		}
		invalidated = e.mask() &^ (1 << uint(core))
		f.Invalidations += uint64(bits.OnesCount32(invalidated))
		*e = snoopEntry(1<<uint(core), core)
		f.entries.sync()
		return invalidated, dirtied
	}
	f.entries.put(line, snoopEntry(1<<uint(core), core))
	return invalidated, dirtied
}

// Write is the slice-returning reference form of WriteMask.
func (f *SnoopFilter) Write(line mem.LineAddr, core int) (invalidated []int, dirtied bool) {
	mask, dirtied := f.WriteMask(line, core)
	return maskToSlice(mask), dirtied
}

// Evict records core's L1 dropping the line. dirty reports whether the
// eviction carries data that the LLC must absorb.
func (f *SnoopFilter) Evict(line mem.LineAddr, core int, dirty bool) {
	f.check(core)
	e := f.entries.ref(line)
	if e == nil || e.mask()&(1<<uint(core)) == 0 {
		// The LLC may have silently dropped tracking (non-inclusive); an
		// unknown eviction is legal and ignored.
		return
	}
	if e.owner() == core {
		*e &^= 0x3F << l1ownerShift // owner -> -1
	}
	*e &^= 1 << uint(core)
	if e.mask() == 0 {
		f.entries.del(line)
	} else {
		f.entries.sync()
	}
	_ = dirty // data movement is the LLC's concern; tracking only here
}

// InvalidateAllMask drops every L1 copy of the line (used when the shared
// LLC evicts a line in an inclusive configuration) and returns the mask of
// cores that lost their copy.
func (f *SnoopFilter) InvalidateAllMask(line mem.LineAddr) uint32 {
	mask := f.HoldersMask(line)
	f.Invalidations += uint64(bits.OnesCount32(mask))
	f.entries.del(line)
	return mask
}

// InvalidateAll is the slice-returning reference form of InvalidateAllMask.
func (f *SnoopFilter) InvalidateAll(line mem.LineAddr) []int {
	return maskToSlice(f.InvalidateAllMask(line))
}

// Entries returns the number of tracked lines.
func (f *SnoopFilter) Entries() int { return f.entries.size() }

// ForEachEntry calls fn for every tracked line with its holder mask (bit c
// set: core c's private caches hold the line) and dirty owner (-1 when
// clean). Iteration order is unspecified; fn must not mutate the filter.
// Hierarchies use it to cross-check tracking against actual cache contents.
func (f *SnoopFilter) ForEachEntry(fn func(line mem.LineAddr, mask uint32, owner int)) {
	f.entries.forEach(func(line mem.LineAddr, e l1entry) {
		fn(line, e.mask(), e.owner())
	})
}

// CheckInvariants validates the representation, returning "" when healthy.
func (f *SnoopFilter) CheckInvariants() string {
	msg := ""
	f.entries.forEach(func(line mem.LineAddr, e l1entry) {
		if msg != "" {
			return
		}
		mask, owner := e.mask(), e.owner()
		if mask == 0 {
			msg = fmt.Sprintf("line %#x: empty entry retained", uint64(line))
			return
		}
		if owner >= 0 {
			if mask&(1<<uint(owner)) == 0 {
				msg = fmt.Sprintf("line %#x: owner %d not in mask", uint64(line), owner)
				return
			}
			if mask != 1<<uint(owner) {
				msg = fmt.Sprintf("line %#x: dirty owner with other sharers", uint64(line))
			}
		}
	})
	return msg
}

// maskToSlice expands a sharer mask to an ascending core slice (nil when
// empty), matching the historical slice-API ordering.
func maskToSlice(mask uint32) []int {
	if mask == 0 {
		return nil
	}
	out := make([]int, 0, bits.OnesCount32(mask))
	for m := mask; m != 0; m &= m - 1 {
		out = append(out, bits.TrailingZeros32(m))
	}
	return out
}
