package coherence

import (
	"fmt"

	"repro/internal/mem"
)

// SnoopFilter tracks which private L1s hold copies of lines above a shared
// last-level cache, implementing the baseline's MESI protocol with the LLC
// as the point of coherence (paper Table II: non-inclusive MESI). A dirty
// L1 copy read by another core is forwarded and the dirty data is absorbed
// by the LLC, not main memory.
type SnoopFilter struct {
	cores   int
	entries map[mem.LineAddr]l1entry

	// Stats.
	Forwards      uint64
	Invalidations uint64
}

type l1entry struct {
	mask  uint32 // bit c: core c's L1 holds the line
	owner int8   // L1 holding the line modified, or -1
}

// NewSnoopFilter builds a filter for up to 32 cores.
func NewSnoopFilter(cores int) *SnoopFilter {
	if cores <= 0 || cores > 32 {
		panic(fmt.Sprintf("coherence: core count %d outside [1,32]", cores))
	}
	return &SnoopFilter{cores: cores, entries: make(map[mem.LineAddr]l1entry)}
}

func (f *SnoopFilter) check(core int) {
	if core < 0 || core >= f.cores {
		panic(fmt.Sprintf("coherence: core %d outside [0,%d)", core, f.cores))
	}
}

// Holders returns the cores whose L1s hold the line.
func (f *SnoopFilter) Holders(line mem.LineAddr) []int {
	e, ok := f.entries[line]
	if !ok {
		return nil
	}
	var out []int
	for c := 0; c < f.cores; c++ {
		if e.mask&(1<<uint(c)) != 0 {
			out = append(out, c)
		}
	}
	return out
}

// DirtyOwner returns the L1 holding the line modified, or -1.
func (f *SnoopFilter) DirtyOwner(line mem.LineAddr) int {
	e, ok := f.entries[line]
	if !ok {
		return -1
	}
	return int(e.owner)
}

// Read records core's L1 fetching the line for reading. If another L1 holds
// it modified, that L1 forwards and downgrades, and the LLC absorbs the
// dirty data: the returned dirtied flag tells the LLC to mark its copy
// modified so the data eventually reaches memory on LLC eviction.
// entryOf fetches the tracking entry, yielding a no-owner entry when the
// line is untracked (the zero value would alias core 0 as owner).
func (f *SnoopFilter) entryOf(line mem.LineAddr) l1entry {
	if e, ok := f.entries[line]; ok {
		return e
	}
	return l1entry{owner: -1}
}

func (f *SnoopFilter) Read(line mem.LineAddr, core int) (forwarder int, dirtied bool) {
	f.check(core)
	e := f.entryOf(line)
	forwarder = -1
	if e.owner >= 0 && int(e.owner) != core {
		forwarder = int(e.owner)
		dirtied = true
		e.owner = -1
		f.Forwards++
	}
	e.mask |= 1 << uint(core)
	f.entries[line] = e
	return forwarder, dirtied
}

// Write records core's L1 fetching the line for writing: every other L1
// copy is invalidated and core becomes the dirty owner. If a previous dirty
// owner existed it forwards (dirtied tells the LLC to absorb the data).
func (f *SnoopFilter) Write(line mem.LineAddr, core int) (invalidated []int, dirtied bool) {
	f.check(core)
	e := f.entryOf(line)
	if e.owner >= 0 && int(e.owner) != core {
		dirtied = true
		f.Forwards++
	}
	for c := 0; c < f.cores; c++ {
		bit := uint32(1) << uint(c)
		if c != core && e.mask&bit != 0 {
			invalidated = append(invalidated, c)
			f.Invalidations++
		}
	}
	f.entries[line] = l1entry{mask: 1 << uint(core), owner: int8(core)}
	return invalidated, dirtied
}

// Evict records core's L1 dropping the line. dirty reports whether the
// eviction carries data that the LLC must absorb.
func (f *SnoopFilter) Evict(line mem.LineAddr, core int, dirty bool) {
	f.check(core)
	e, ok := f.entries[line]
	if !ok || e.mask&(1<<uint(core)) == 0 {
		// The LLC may have silently dropped tracking (non-inclusive); an
		// unknown eviction is legal and ignored.
		return
	}
	if int(e.owner) == core {
		e.owner = -1
	}
	e.mask &^= 1 << uint(core)
	if e.mask == 0 {
		delete(f.entries, line)
	} else {
		f.entries[line] = e
	}
	_ = dirty // data movement is the LLC's concern; tracking only here
}

// InvalidateAll drops every L1 copy of the line (used when the shared LLC
// evicts a line in an inclusive configuration) and returns the cores that
// lost their copy.
func (f *SnoopFilter) InvalidateAll(line mem.LineAddr) []int {
	holders := f.Holders(line)
	f.Invalidations += uint64(len(holders))
	delete(f.entries, line)
	return holders
}

// Entries returns the number of tracked lines.
func (f *SnoopFilter) Entries() int { return len(f.entries) }

// ForEachEntry calls fn for every tracked line with its holder mask (bit c
// set: core c's private caches hold the line) and dirty owner (-1 when
// clean). Iteration order is unspecified; fn must not mutate the filter.
// Hierarchies use it to cross-check tracking against actual cache contents.
func (f *SnoopFilter) ForEachEntry(fn func(line mem.LineAddr, mask uint32, owner int)) {
	for line, e := range f.entries {
		fn(line, e.mask, int(e.owner))
	}
}

// CheckInvariants validates the representation, returning "" when healthy.
func (f *SnoopFilter) CheckInvariants() string {
	for line, e := range f.entries {
		if e.mask == 0 {
			return fmt.Sprintf("line %#x: empty entry retained", uint64(line))
		}
		if e.owner >= 0 {
			if e.mask&(1<<uint(e.owner)) == 0 {
				return fmt.Sprintf("line %#x: owner %d not in mask", uint64(line), e.owner)
			}
			if e.mask != 1<<uint(e.owner) {
				return fmt.Sprintf("line %#x: dirty owner with other sharers", uint64(line))
			}
		}
	}
	return ""
}
