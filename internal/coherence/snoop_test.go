package coherence

import (
	"testing"
	"testing/quick"
)

func TestSnoopReadNoOwner(t *testing.T) {
	f := NewSnoopFilter(16)
	fw, dirtied := f.Read(line(1), 0)
	if fw != -1 || dirtied {
		t.Fatalf("first read should come from LLC: %d %v", fw, dirtied)
	}
	if got := f.Holders(line(1)); len(got) != 1 || got[0] != 0 {
		t.Fatalf("holders = %v", got)
	}
}

func TestSnoopReadFromDirtyOwner(t *testing.T) {
	f := NewSnoopFilter(16)
	f.Write(line(1), 2)
	fw, dirtied := f.Read(line(1), 5)
	if fw != 2 || !dirtied {
		t.Fatalf("read should forward from dirty owner: %d %v", fw, dirtied)
	}
	if f.DirtyOwner(line(1)) != -1 {
		t.Fatal("owner should downgrade")
	}
	if f.Forwards != 1 {
		t.Fatalf("Forwards = %d", f.Forwards)
	}
}

func TestSnoopSelfReadDoesNotForward(t *testing.T) {
	f := NewSnoopFilter(16)
	f.Write(line(1), 2)
	fw, dirtied := f.Read(line(1), 2)
	if fw != -1 || dirtied {
		t.Fatal("owner re-reading its own line must not forward")
	}
}

func TestSnoopWriteInvalidates(t *testing.T) {
	f := NewSnoopFilter(16)
	f.Read(line(1), 0)
	f.Read(line(1), 1)
	f.Read(line(1), 2)
	inv, dirtied := f.Write(line(1), 3)
	if len(inv) != 3 || dirtied {
		t.Fatalf("write outcome: inv=%v dirtied=%v", inv, dirtied)
	}
	if f.DirtyOwner(line(1)) != 3 {
		t.Fatal("writer should own dirty")
	}
	if got := f.Holders(line(1)); len(got) != 1 || got[0] != 3 {
		t.Fatalf("holders = %v", got)
	}
}

func TestSnoopWriteOverDirtyOwner(t *testing.T) {
	f := NewSnoopFilter(16)
	f.Write(line(1), 0)
	inv, dirtied := f.Write(line(1), 1)
	if len(inv) != 1 || inv[0] != 0 || !dirtied {
		t.Fatalf("outcome: %v %v", inv, dirtied)
	}
}

func TestSnoopEvict(t *testing.T) {
	f := NewSnoopFilter(16)
	f.Write(line(1), 0)
	f.Evict(line(1), 0, true)
	if f.Entries() != 0 {
		t.Fatal("entry should be removed")
	}
	// Unknown evictions are tolerated (non-inclusive LLC).
	f.Evict(line(9), 4, false)
}

func TestSnoopInvalidateAll(t *testing.T) {
	f := NewSnoopFilter(16)
	f.Read(line(1), 0)
	f.Read(line(1), 1)
	got := f.InvalidateAll(line(1))
	if len(got) != 2 {
		t.Fatalf("invalidated %v", got)
	}
	if f.Entries() != 0 || f.Invalidations != 2 {
		t.Fatal("tracking should be cleared")
	}
}

func TestSnoopFilterPanics(t *testing.T) {
	for _, n := range []int{0, 40} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			NewSnoopFilter(n)
		}()
	}
	f := NewSnoopFilter(4)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for bad core")
		}
	}()
	f.Read(line(0), 7)
}

// Property: invariants hold under random op sequences and the dirty owner,
// when present, is always the unique holder.
func TestSnoopInvariantsUnderRandomOps(t *testing.T) {
	fn := func(ops []uint16) bool {
		const cores = 4
		f := NewSnoopFilter(cores)
		for _, op := range ops {
			l := line(uint64(op) % 8)
			c := int(op>>3) % cores
			switch (op >> 5) % 3 {
			case 0:
				f.Read(l, c)
			case 1:
				f.Write(l, c)
			case 2:
				f.Evict(l, c, op&1 == 1)
			}
			if msg := f.CheckInvariants(); msg != "" {
				t.Logf("invariant violated: %s", msg)
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
