package coherence

import (
	"fmt"

	"repro/internal/mem"
)

// lineStore is the per-line state storage both coherence substrates sit
// on: a map from line address to an inline value. Three implementations
// exist — quotTable (the default fast path: quotient-key-compressed
// 8 B/slot open addressing, quot.go), openTable (the full-key 16 B/slot
// table, also the fallback above quotTable's core-count budget) and
// mapStore (the reference: a plain Go map) — and randomized differential
// tests (differential_test.go) prove a SnoopFilter or Directory built on
// any of them returns identical results and stats for every operation.
// Iteration order of forEach is unspecified for all three, and no
// simulation result may depend on it (the determinism contract,
// DESIGN.md §7 and §8).
type lineStore[V lineValue[V]] interface {
	// get returns the value for the line and whether it is present.
	get(line mem.LineAddr) (V, bool)
	// ref returns a pointer to the line's value for mutation, or nil when
	// absent — one probe for the get-modify-write pattern where get+put
	// would pay two. Mutations land in the store once sync is called
	// (compressed stores hand out an unpacked scratch copy; the others
	// point straight at live storage and their sync is a no-op). The
	// pointer and the pending sync are valid only until the next put/del.
	ref(line mem.LineAddr) *V
	// sync writes back the value last obtained from ref. Calling it with
	// no ref outstanding is undefined; callers pair every mutating ref
	// with exactly one sync (or a del of the same line).
	sync()
	// put inserts or overwrites the value for the line.
	put(line mem.LineAddr, v V)
	// del removes the line; absent lines are a no-op.
	del(line mem.LineAddr)
	// size returns the number of stored lines.
	size() int
	// bytesPerSlot reports the inline bytes one table slot occupies (0 for
	// the map reference, whose layout is runtime-managed).
	bytesPerSlot() int
	// forEach visits every stored line in unspecified order. fn must not
	// mutate the store.
	forEach(fn func(line mem.LineAddr, v V))
}

// StoreKind selects a lineStore implementation when constructing a
// SnoopFilter or Directory.
type StoreKind uint8

const (
	// OpenTable is the full-key open-addressed table (table.go).
	OpenTable StoreKind = iota
	// MapStore is the Go-map reference implementation.
	MapStore
	// QuotTable is the quotient-key-compressed table (quot.go): 8 B/slot,
	// supporting up to quotMaxCores cores.
	QuotTable
)

func (k StoreKind) String() string {
	switch k {
	case MapStore:
		return "map"
	case QuotTable:
		return "quot-table"
	default:
		return "open-table"
	}
}

// BytesPerSlot reports the inline bytes one slot of the kind's table
// occupies (0 for the map reference, whose layout is runtime-managed).
func (k StoreKind) BytesPerSlot() int {
	switch k {
	case QuotTable:
		return 8
	case OpenTable:
		return 16
	default:
		return 0
	}
}

// DefaultStore returns the store kind the default constructors use: the
// quotient-compressed table where its sharer-mask budget allows, else the
// full-key open table.
func DefaultStore(cores int) StoreKind {
	if cores <= quotMaxCores {
		return QuotTable
	}
	return OpenTable
}

func newLineStore[V lineValue[V]](kind StoreKind) lineStore[V] {
	switch kind {
	case OpenTable:
		return newOpenTable[V]()
	case MapStore:
		return mapStore[V]{}
	case QuotTable:
		return newQuotTable[V]()
	default:
		panic(fmt.Sprintf("coherence: unknown store kind %d", kind))
	}
}

// hotStore pairs the lineStore interface with a devirtualized fast path:
// when the store is the quotient or open table, hot operations call it
// directly (avoiding the interface dispatch the Go compiler cannot inline
// through); the interface remains the contract and the map reference's
// entry point.
type hotStore[V lineValue[V]] struct {
	lineStore[V]
	fastQ *quotTable[V] // non-nil iff lineStore is the quotient table
	fast  *openTable[V] // non-nil iff lineStore is the open table
}

func newHotStore[V lineValue[V]](kind StoreKind) hotStore[V] {
	s := newLineStore[V](kind)
	fast, _ := s.(*openTable[V])
	fastQ, _ := s.(*quotTable[V])
	return hotStore[V]{lineStore: s, fast: fast, fastQ: fastQ}
}

// prefetchHome warms the line's home slot in the underlying table (a
// no-op returning 0 for the map reference, whose layout is opaque).
func (h hotStore[V]) prefetchHome(line mem.LineAddr) uint64 {
	if h.fastQ != nil {
		return h.fastQ.prefetchHome(line)
	}
	if h.fast != nil {
		return h.fast.prefetchHome(line)
	}
	return 0
}

func (h hotStore[V]) get(line mem.LineAddr) (V, bool) {
	if h.fastQ != nil {
		return h.fastQ.get(line)
	}
	if h.fast != nil {
		return h.fast.get(line)
	}
	return h.lineStore.get(line)
}

func (h hotStore[V]) ref(line mem.LineAddr) *V {
	if h.fastQ != nil {
		return h.fastQ.ref(line)
	}
	if h.fast != nil {
		return h.fast.ref(line)
	}
	return h.lineStore.ref(line)
}

func (h hotStore[V]) sync() {
	if h.fastQ != nil {
		h.fastQ.sync()
		return
	}
	if h.fast != nil {
		return // open-table refs mutate live storage directly
	}
	h.lineStore.sync()
}

func (h hotStore[V]) put(line mem.LineAddr, v V) {
	if h.fastQ != nil {
		h.fastQ.put(line, v)
		return
	}
	if h.fast != nil {
		h.fast.put(line, v)
		return
	}
	h.lineStore.put(line, v)
}

func (h hotStore[V]) del(line mem.LineAddr) {
	if h.fastQ != nil {
		h.fastQ.del(line)
		return
	}
	if h.fast != nil {
		h.fast.del(line)
		return
	}
	h.lineStore.del(line)
}

// mapStore is the reference lineStore: a Go map of boxed values (boxing
// gives ref a stable pointer; reference-path performance is irrelevant).
type mapStore[V any] map[mem.LineAddr]*V

func (m mapStore[V]) get(line mem.LineAddr) (V, bool) {
	if p, ok := m[line]; ok {
		return *p, true
	}
	var zero V
	return zero, false
}

func (m mapStore[V]) ref(line mem.LineAddr) *V { return m[line] }
func (m mapStore[V]) sync()                    {} // refs mutate the boxed value directly
func (m mapStore[V]) bytesPerSlot() int        { return 0 }

func (m mapStore[V]) put(line mem.LineAddr, v V) {
	if p, ok := m[line]; ok {
		*p = v
		return
	}
	m[line] = &v
}

func (m mapStore[V]) del(line mem.LineAddr) { delete(m, line) }
func (m mapStore[V]) size() int             { return len(m) }
func (m mapStore[V]) forEach(fn func(mem.LineAddr, V)) {
	for line, p := range m {
		fn(line, *p)
	}
}

// openTable is the fast lineStore: an open-addressed hash table with
// power-of-two capacity, linear probing, inline entries and backward-shift
// deletion (no tombstones in the live table, so probe chains never
// degrade). Growth is incremental: when the load factor would pass 3/4 a
// table of twice the size is allocated and the entries of the previous
// one migrate in bounded chunks on subsequent mutations, so no single
// operation pays a full rehash.
//
// During a drain the previous table is frozen for inserts; deletions and
// migrations mark its slots with a tombstone key (probe chains in it must
// survive until fully drained), while the live table backward-shifts as
// usual. Lookups consult the live table first, then the draining one.
type openTable[V any] struct {
	slots []slot[V]
	mask  uint64 // len(slots)-1
	n     int    // live entries in slots

	// Pre-growth table still draining into slots.
	old     []slot[V]
	oldMask uint64
	oldN    int // live entries left in old
	oldPos  int // next old slot to migrate
}

type slot[V any] struct {
	key uint64 // line-address key + 1; 0 = empty, tombstoneKey = deleted
	val V
}

const (
	minTableSlots = 256
	maxLoadNum    = 3 // grow when load would pass 3/4
	maxLoadDen    = 4
	migrateChunk  = 64

	// tombstoneKey marks a deleted/migrated slot of a draining table. Real
	// keys are line addresses (line-size aligned) plus one, so they are
	// ≡ 1 mod mem.LineSize and can never equal it.
	tombstoneKey = ^uint64(0)
)

func newOpenTable[V any]() *openTable[V] {
	return &openTable[V]{
		slots: make([]slot[V], minTableSlots),
		mask:  minTableSlots - 1,
	}
}

// tableKey encodes a line address so that 0 can mark empty slots. Line
// addresses are line-size aligned, so +1 never collides or overflows.
func tableKey(line mem.LineAddr) uint64 { return uint64(line) + 1 }

// home is the preferred slot of a key under the given mask: a Fibonacci
// multiplicative hash folds the (stride-heavy) line addresses into the
// table's index bits.
func home(key, mask uint64) uint64 {
	return (key * 0x9E3779B97F4A7C15) >> 32 & mask
}

// prefetchHome touches the line's home slot ahead of the real probe (see
// quotTable.prefetchHome).
func (t *openTable[V]) prefetchHome(line mem.LineAddr) uint64 {
	return t.slots[home(tableKey(line), t.mask)].key
}

func (t *openTable[V]) size() int         { return t.n + t.oldN }
func (t *openTable[V]) sync()             {} // refs mutate live slots directly
func (t *openTable[V]) bytesPerSlot() int { return 16 }

func (t *openTable[V]) get(line mem.LineAddr) (V, bool) {
	if p := t.ref(line); p != nil {
		return *p, true
	}
	var zero V
	return zero, false
}

func (t *openTable[V]) ref(line mem.LineAddr) *V {
	k := tableKey(line)
	for i := home(k, t.mask); ; i = (i + 1) & t.mask {
		s := &t.slots[i]
		if s.key == k {
			return &s.val
		}
		if s.key == 0 {
			break
		}
	}
	if t.old != nil {
		for i := home(k, t.oldMask); ; i = (i + 1) & t.oldMask {
			s := &t.old[i]
			if s.key == k {
				return &s.val
			}
			if s.key == 0 {
				break
			}
		}
	}
	return nil
}

func (t *openTable[V]) put(line mem.LineAddr, v V) {
	t.migrateSome()
	k := tableKey(line)
	if (t.n+t.oldN+1)*maxLoadDen > len(t.slots)*maxLoadNum {
		// Grow first: it may demote the live table (which can hold k) to
		// the draining one, and the old-copy removal below must see that.
		t.grow()
	}
	if t.old != nil {
		// The key must live in exactly one table: tombstone any old copy.
		t.delOld(k)
	}
	for i := home(k, t.mask); ; i = (i + 1) & t.mask {
		s := &t.slots[i]
		if s.key == k {
			s.val = v
			return
		}
		if s.key == 0 {
			s.key = k
			s.val = v
			t.n++
			return
		}
	}
}

func (t *openTable[V]) del(line mem.LineAddr) {
	t.migrateSome()
	k := tableKey(line)
	if t.delLive(k) {
		return
	}
	if t.old != nil {
		t.delOld(k)
	}
}

// delLive removes k from the live table with backward-shift deletion:
// entries after the hole whose probe chain crosses it shift back, so no
// tombstones accumulate. Returns whether k was found.
func (t *openTable[V]) delLive(k uint64) bool {
	mask := t.mask
	i := home(k, mask)
	for ; ; i = (i + 1) & mask {
		s := &t.slots[i]
		if s.key == 0 {
			return false
		}
		if s.key == k {
			break
		}
	}
	t.n--
	hole := i
	for j := (i + 1) & mask; ; j = (j + 1) & mask {
		s := &t.slots[j]
		if s.key == 0 {
			break
		}
		// s may shift into the hole iff its home does not lie in the
		// cyclic interval (hole, j] — i.e. probing from its home would
		// have crossed the hole.
		if (j-home(s.key, mask))&mask >= (j-hole)&mask {
			t.slots[hole] = *s
			hole = j
		}
	}
	var zero slot[V]
	t.slots[hole] = zero
	return true
}

// delOld tombstones k in the draining table (its probe chains must keep
// working until the drain completes, so slots are never emptied early).
func (t *openTable[V]) delOld(k uint64) {
	for i := home(k, t.oldMask); ; i = (i + 1) & t.oldMask {
		s := &t.old[i]
		if s.key == 0 {
			return
		}
		if s.key == k {
			var zero V
			s.key = tombstoneKey
			s.val = zero
			t.oldN--
			return
		}
	}
}

// grow starts an incremental doubling. Any previous drain finishes first,
// so at most one old table exists at a time.
func (t *openTable[V]) grow() {
	for t.old != nil {
		t.migrateSome()
	}
	t.old, t.oldMask, t.oldN, t.oldPos = t.slots, t.mask, t.n, 0
	t.slots = make([]slot[V], len(t.old)*2)
	t.mask = uint64(len(t.slots) - 1)
	t.n = 0
}

// migrateSome moves a bounded chunk of entries from the draining table
// into the live one. Called from every mutation, it finishes the drain
// long before the next doubling can trigger.
func (t *openTable[V]) migrateSome() {
	if t.old == nil {
		return
	}
	end := t.oldPos + migrateChunk
	if end > len(t.old) {
		end = len(t.old)
	}
	for ; t.oldPos < end; t.oldPos++ {
		s := &t.old[t.oldPos]
		if s.key != 0 && s.key != tombstoneKey {
			t.insertFresh(s.key, s.val)
			s.key = tombstoneKey
			t.oldN--
		}
	}
	if t.oldPos == len(t.old) || t.oldN == 0 {
		t.old, t.oldMask, t.oldN, t.oldPos = nil, 0, 0, 0
	}
}

// insertFresh inserts a key known to be absent from the live table
// (migration only; capacity is guaranteed by the pre-insert growth check,
// which counts draining entries too).
func (t *openTable[V]) insertFresh(k uint64, v V) {
	for i := home(k, t.mask); ; i = (i + 1) & t.mask {
		s := &t.slots[i]
		if s.key == 0 {
			s.key = k
			s.val = v
			t.n++
			return
		}
	}
}

func (t *openTable[V]) forEach(fn func(mem.LineAddr, V)) {
	for i := range t.slots {
		if s := &t.slots[i]; s.key != 0 {
			fn(mem.LineAddr(s.key-1), s.val)
		}
	}
	if t.old != nil {
		for i := range t.old {
			if s := &t.old[i]; s.key != 0 && s.key != tombstoneKey {
				fn(mem.LineAddr(s.key-1), s.val)
			}
		}
	}
}
