package coherence

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
)

// TestOpenTableAgainstMap drives the open-addressed table and a plain map
// through identical randomized put/get/del mixes, forcing several
// incremental growths and heavy tombstone churn, and demands identical
// contents throughout.
func TestOpenTableAgainstMap(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		tab := newOpenTable[uint64]()
		ref := map[mem.LineAddr]uint64{}
		rng := sim.NewRNG(seed * 104729)

		// Key space ~4x the growth threshold so the table doubles a few
		// times while deletions keep the drain path busy. Line 0 included:
		// the key encoding must not confuse it with an empty slot.
		const keys = 4096
		line := func(i uint64) mem.LineAddr { return mem.LineAddr(i * mem.LineSize) }

		for i := 0; i < 200_000; i++ {
			k := line(rng.Uint64n(keys))
			switch rng.Uint64n(10) {
			case 0, 1, 2: // del
				tab.del(k)
				delete(ref, k)
			case 3: // get
				v, ok := tab.get(k)
				rv, rok := ref[k]
				if ok != rok || v != rv {
					t.Fatalf("seed %d op %d: get(%#x) = (%d,%v), want (%d,%v)", seed, i, uint64(k), v, ok, rv, rok)
				}
			default: // put (insert or overwrite)
				v := rng.Uint64()
				tab.put(k, v)
				ref[k] = v
			}
			if tab.size() != len(ref) {
				t.Fatalf("seed %d op %d: size %d, want %d", seed, i, tab.size(), len(ref))
			}
		}

		// Full content agreement, both directions.
		seen := map[mem.LineAddr]uint64{}
		tab.forEach(func(k mem.LineAddr, v uint64) {
			if _, dup := seen[k]; dup {
				t.Fatalf("seed %d: forEach visited %#x twice", seed, uint64(k))
			}
			seen[k] = v
		})
		if len(seen) != len(ref) {
			t.Fatalf("seed %d: forEach visited %d keys, want %d", seed, len(seen), len(ref))
		}
		for k, v := range ref {
			if sv, ok := seen[k]; !ok || sv != v {
				t.Fatalf("seed %d: key %#x = (%d,%v), want %d", seed, uint64(k), sv, ok, v)
			}
		}
	}
}

// TestOpenTableRefMutation checks in-place mutation through ref and the
// nil contract for absent keys, across a growth boundary.
func TestOpenTableRefMutation(t *testing.T) {
	tab := newOpenTable[int]()
	line := func(i uint64) mem.LineAddr { return mem.LineAddr(i * mem.LineSize) }
	if tab.ref(line(7)) != nil {
		t.Fatal("ref of absent key should be nil")
	}
	// Insert enough to force at least one doubling (threshold 3/4*256).
	for i := uint64(0); i < 1000; i++ {
		tab.put(line(i), int(i))
	}
	for i := uint64(0); i < 1000; i++ {
		p := tab.ref(line(i))
		if p == nil || *p != int(i) {
			t.Fatalf("ref(%d) = %v", i, p)
		}
		*p = int(i) * 3
	}
	for i := uint64(0); i < 1000; i++ {
		if v, ok := tab.get(line(i)); !ok || v != int(i)*3 {
			t.Fatalf("get(%d) after ref mutation = (%d,%v)", i, v, ok)
		}
	}
	if tab.size() != 1000 {
		t.Fatalf("size = %d", tab.size())
	}
}

// TestOpenTableBackwardShift exercises deletion inside a probe cluster:
// keys engineered to collide must remain reachable after a middle element
// of the cluster is removed (the backward-shift invariant).
func TestOpenTableBackwardShift(t *testing.T) {
	tab := newOpenTable[uint64]()
	// Find keys with the same home slot under the initial mask.
	var cluster []mem.LineAddr
	target := home(tableKey(mem.LineAddr(0)), tab.mask)
	for i := uint64(0); len(cluster) < 6 && i < 1_000_000; i++ {
		k := mem.LineAddr(i * mem.LineSize)
		if home(tableKey(k), tab.mask) == target {
			cluster = append(cluster, k)
		}
	}
	if len(cluster) < 6 {
		t.Skip("could not build a collision cluster")
	}
	for i, k := range cluster {
		tab.put(k, uint64(i))
	}
	// Delete from the middle, then the head; everything else must survive.
	tab.del(cluster[2])
	tab.del(cluster[0])
	for i, k := range cluster {
		v, ok := tab.get(k)
		switch i {
		case 0, 2:
			if ok {
				t.Fatalf("deleted key %d still present", i)
			}
		default:
			if !ok || v != uint64(i) {
				t.Fatalf("cluster key %d lost after deletes: (%d,%v)", i, v, ok)
			}
		}
	}
}

func TestStoreKindString(t *testing.T) {
	if OpenTable.String() != "open-table" || MapStore.String() != "map" {
		t.Fatal("StoreKind names wrong")
	}
}
