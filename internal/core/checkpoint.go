package core

// Warm-state checkpointing (DESIGN.md §11): System.Checkpoint
// serializes a warmed, not-yet-started system through every layer's
// Snapshot seam; NewSystemFromCheckpoint rebuilds a system from Config
// (geometry, timing, derived tables) and overwrites its mutable state
// from the checkpoint. Restored state is field-for-field identical to
// the snapshotted system, so the subsequent timed run is bit-identical
// to one that warmed from scratch — proven by differential tests for
// both hierarchy families.

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/checkpoint"
	"repro/internal/vault"
	"repro/internal/workload"
)

// Checkpoint serializes the system's complete warmed state. It must be
// called before Run (the checkpoint cut is after Prewarm +
// WarmFunctional, while the event engine is quiescent and every core is
// idle); a started system is an error.
func (s *System) Checkpoint(w *checkpoint.Writer) error {
	if s.started {
		return fmt.Errorf("core: cannot checkpoint a started system")
	}
	w.Section("core.System")
	w.U8(uint8(s.cfg.Kind))
	w.I64(int64(s.cfg.Cores))
	s.engine.Snapshot(w)
	s.mainMem.Snapshot(w)
	s.mesh.Snapshot(w)
	w.I64(int64(len(s.sources)))
	for _, st := range s.sources {
		st.Snapshot(w)
	}
	w.I64(int64(len(s.cores)))
	for _, c := range s.cores {
		c.Snapshot(w)
	}
	s.hier.snapshot(w)
	return w.Err()
}

// NewSystemFromCheckpoint builds a system for (cfg, specs) — exactly as
// NewSystem would — and overwrites its mutable state from the
// checkpoint payload, verifying the trailing checksum before returning.
// Any mismatch (geometry, kind, corruption) is an error; the caller
// falls back to a from-scratch build and discards the partial system.
func NewSystemFromCheckpoint(cfg Config, specs []workload.Spec, r *checkpoint.Reader) (*System, error) {
	return restoreSystem(NewSystem(cfg, specs), r)
}

// NewSystemFromCheckpointSources is NewSystemFromCheckpoint for the
// scenario path: the caller rebuilds the per-core sources exactly as it
// did for the snapshotted system (the checkpoint key covers the
// scenario digest, so equal keys mean equal source construction), and
// the restore overwrites their mutable state through each source's
// Restore seam.
func NewSystemFromCheckpointSources(cfg Config, sources []workload.Source, r *checkpoint.Reader) (*System, error) {
	return restoreSystem(NewSystemFromSources(cfg, sources), r)
}

func restoreSystem(sys *System, r *checkpoint.Reader) (*System, error) {
	if err := sys.restoreFrom(r); err != nil {
		return nil, err
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return sys, nil
}

func (s *System) restoreFrom(r *checkpoint.Reader) error {
	if err := r.Section("core.System"); err != nil {
		return err
	}
	kind := Kind(r.U8())
	cores := int(r.I64())
	if err := r.Err(); err != nil {
		return err
	}
	if kind != s.cfg.Kind || cores != s.cfg.Cores {
		return fmt.Errorf("core: checkpoint for %v/%d cores, system is %v/%d",
			kind, cores, s.cfg.Kind, s.cfg.Cores)
	}
	if err := s.engine.Restore(r); err != nil {
		return err
	}
	if err := s.mainMem.Restore(r); err != nil {
		return err
	}
	if err := s.mesh.Restore(r); err != nil {
		return err
	}
	if n := int(r.I64()); n != len(s.sources) {
		if err := r.Err(); err != nil {
			return err
		}
		return fmt.Errorf("core: checkpoint has %d streams, system has %d", n, len(s.sources))
	}
	for _, st := range s.sources {
		if err := st.Restore(r); err != nil {
			return err
		}
	}
	if n := int(r.I64()); n != len(s.cores) {
		if err := r.Err(); err != nil {
			return err
		}
		return fmt.Errorf("core: checkpoint has %d cores, system has %d", n, len(s.cores))
	}
	for _, c := range s.cores {
		if err := c.Restore(r); err != nil {
			return err
		}
	}
	return s.hier.restore(r)
}

// snapshotStats writes the Stats counters in declaration order.
func snapshotStats(w *checkpoint.Writer, st *Stats) {
	w.Section("core.Stats")
	w.U64(st.LLCAccesses)
	w.U64(st.LocalHits)
	w.U64(st.RemoteHits)
	w.U64(st.Misses)
	w.U64(st.Reads)
	w.U64(st.WritesPrivate)
	w.U64(st.WritesRWShared)
	w.U64(st.MemAccesses)
	w.U64(st.MemWritebacks)
	w.U64(st.VaultAccesses)
	w.U64(st.DRAMCacheHits)
	w.U64(st.Invalidations)
	w.U64(st.Forwards)
	w.U64(st.DirAccesses)
	w.U64(st.Upgrades)
}

func restoreStats(r *checkpoint.Reader, st *Stats) error {
	if err := r.Section("core.Stats"); err != nil {
		return err
	}
	var v Stats
	v.LLCAccesses = r.U64()
	v.LocalHits = r.U64()
	v.RemoteHits = r.U64()
	v.Misses = r.U64()
	v.Reads = r.U64()
	v.WritesPrivate = r.U64()
	v.WritesRWShared = r.U64()
	v.MemAccesses = r.U64()
	v.MemWritebacks = r.U64()
	v.VaultAccesses = r.U64()
	v.DRAMCacheHits = r.U64()
	v.Invalidations = r.U64()
	v.Forwards = r.U64()
	v.DirAccesses = r.U64()
	v.Upgrades = r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	*st = v
	return nil
}

func snapshotArrays(w *checkpoint.Writer, name string, arrs []*cache.Array) {
	w.Section(name)
	w.I64(int64(len(arrs)))
	for _, a := range arrs {
		a.Snapshot(w)
	}
}

func restoreArrays(r *checkpoint.Reader, name string, arrs []*cache.Array) error {
	if err := r.Section(name); err != nil {
		return err
	}
	n := int(r.I64())
	if err := r.Err(); err != nil {
		return err
	}
	if n != len(arrs) {
		return fmt.Errorf("core: checkpoint section %s has %d arrays, system has %d", name, n, len(arrs))
	}
	for _, a := range arrs {
		if err := a.Restore(r); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
	}
	return nil
}

func snapshotVaults(w *checkpoint.Writer, vaults []*vault.Vault) {
	w.Section("vaults")
	w.I64(int64(len(vaults)))
	for _, v := range vaults {
		v.Snapshot(w)
	}
}

func restoreVaults(r *checkpoint.Reader, vaults []*vault.Vault) error {
	if err := r.Section("vaults"); err != nil {
		return err
	}
	n := int(r.I64())
	if err := r.Err(); err != nil {
		return err
	}
	if n != len(vaults) {
		return fmt.Errorf("core: checkpoint has %d vaults, system has %d", n, len(vaults))
	}
	for _, v := range vaults {
		if err := v.Restore(r); err != nil {
			return err
		}
	}
	return nil
}

func (h *sharedHierarchy) snapshot(w *checkpoint.Writer) {
	w.Section("core.sharedHierarchy")
	snapshotStats(w, &h.st)
	snapshotArrays(w, "l1i", h.l1i)
	snapshotArrays(w, "l1d", h.l1d)
	snapshotArrays(w, "l2", h.l2)
	snapshotArrays(w, "banks", h.banks)
	snapshotVaults(w, h.vaults)
	h.snoop.Snapshot(w)
	w.Bool(h.dramCache != nil)
	if h.dramCache != nil {
		h.dramCache.Snapshot(w)
	}
}

func (h *sharedHierarchy) restore(r *checkpoint.Reader) error {
	if err := r.Section("core.sharedHierarchy"); err != nil {
		return err
	}
	if err := restoreStats(r, &h.st); err != nil {
		return err
	}
	if err := restoreArrays(r, "l1i", h.l1i); err != nil {
		return err
	}
	if err := restoreArrays(r, "l1d", h.l1d); err != nil {
		return err
	}
	if err := restoreArrays(r, "l2", h.l2); err != nil {
		return err
	}
	if err := restoreArrays(r, "banks", h.banks); err != nil {
		return err
	}
	if err := restoreVaults(r, h.vaults); err != nil {
		return err
	}
	if err := h.snoop.Restore(r); err != nil {
		return err
	}
	hasDRAM := r.Bool()
	if err := r.Err(); err != nil {
		return err
	}
	if hasDRAM != (h.dramCache != nil) {
		return fmt.Errorf("core: checkpoint DRAM-cache presence %v, system has %v", hasDRAM, h.dramCache != nil)
	}
	if h.dramCache != nil {
		return h.dramCache.Restore(r)
	}
	return nil
}

func (h *privateHierarchy) snapshot(w *checkpoint.Writer) {
	w.Section("core.privateHierarchy")
	snapshotStats(w, &h.st)
	snapshotArrays(w, "l1i", h.l1i)
	snapshotArrays(w, "l1d", h.l1d)
	snapshotArrays(w, "l2", h.l2)
	snapshotArrays(w, "vaultArr", h.vaultArr)
	snapshotVaults(w, h.vaults)
	h.dir.Snapshot(w)
}

func (h *privateHierarchy) restore(r *checkpoint.Reader) error {
	if err := r.Section("core.privateHierarchy"); err != nil {
		return err
	}
	if err := restoreStats(r, &h.st); err != nil {
		return err
	}
	if err := restoreArrays(r, "l1i", h.l1i); err != nil {
		return err
	}
	if err := restoreArrays(r, "l1d", h.l1d); err != nil {
		return err
	}
	if err := restoreArrays(r, "l2", h.l2); err != nil {
		return err
	}
	if err := restoreArrays(r, "vaultArr", h.vaultArr); err != nil {
		return err
	}
	if err := restoreVaults(r, h.vaults); err != nil {
		return err
	}
	return h.dir.Restore(r)
}
