package core

import (
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/workload"
)

// checkpointTestConfigs covers both hierarchy families and every store
// shape the checkpoint can carry: shared LLC with snoop filter
// (quotient store at ≤16 cores, open full-key table at 32), shared +
// DRAM cache, private vaults with MOESI directory, and the shared-vault
// hybrid.
func checkpointTestConfigs() map[string]Config {
	shrink := func(c Config) Config {
		c.Scale = 256 // keep footprints tiny; geometry floors apply
		return c
	}
	return map[string]Config{
		"Baseline-4":     shrink(BaselineConfig(4)),
		"BaselineDRAM-4": shrink(BaselineDRAMConfig(4)),
		"Baseline-32":    shrink(BaselineConfig(32)), // open-table snoop filter
		"SILO-4":         shrink(SILOConfig(4)),
		"SILO-4-L2":      shrink(SILOConfig(4).WithL2()),
		"SILO-32":        shrink(SILOConfig(32)), // open-table directory
		"VaultsShared-4": shrink(VaultsSharedConfig(4)),
		"SILOCO-4":       shrink(SILOCOConfig(4)),
	}
}

const (
	diffWarmInstr = 30_000
	diffWarmCyc   = 3_000
	diffMeasCyc   = 12_000
)

func warmSystem(cfg Config, specs []workload.Spec) *System {
	sys := NewSystem(cfg, specs)
	sys.Prewarm()
	sys.WarmFunctional(diffWarmInstr)
	return sys
}

// TestCheckpointRestoreDifferential is the determinism proof: a system
// restored from a checkpoint must produce bit-identical metrics to the
// from-scratch system it was cut from, for every hierarchy family and
// line-store shape. Run under -race in CI.
func TestCheckpointRestoreDifferential(t *testing.T) {
	specs := []workload.Spec{workload.WebSearch()}
	dir := t.TempDir()
	for name, cfg := range checkpointTestConfigs() {
		t.Run(name, func(t *testing.T) {
			// From-scratch reference.
			fresh := warmSystem(cfg, specs)
			wantMet := fresh.Run(diffWarmCyc, diffMeasCyc)
			if msg := fresh.CheckInvariants(); msg != "" {
				t.Fatalf("fresh invariants: %s", msg)
			}

			// Checkpoint a second warm build, restore, run.
			warmed := warmSystem(cfg, specs)
			path := filepath.Join(dir, name+".ckpt")
			if err := checkpoint.Save(path, "test-key", "{}", warmed.Checkpoint); err != nil {
				t.Fatalf("save: %v", err)
			}
			r, err := checkpoint.Open(path, "test-key")
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			restored, err := NewSystemFromCheckpoint(cfg, specs, r)
			r.Close()
			if err != nil {
				t.Fatalf("restore: %v", err)
			}
			gotMet := restored.Run(diffWarmCyc, diffMeasCyc)
			if msg := restored.CheckInvariants(); msg != "" {
				t.Fatalf("restored invariants: %s", msg)
			}
			if !reflect.DeepEqual(wantMet, gotMet) {
				t.Fatalf("restored metrics diverge:\nfresh:    %+v\nrestored: %+v", wantMet, gotMet)
			}
			fe, fb := fresh.LineTable()
			re, rb := restored.LineTable()
			if fe != re || fb != rb {
				t.Fatalf("line table diverges: fresh %d entries/%d B, restored %d/%d", fe, fb, re, rb)
			}
		})
	}
}

// TestCheckpointWindowedDifferential proves the windowed-statistics
// path is also bit-identical after restore (grid cells consume
// StreamWindows, not Run).
func TestCheckpointWindowedDifferential(t *testing.T) {
	specs := []workload.Spec{workload.DataServing()}
	cfg := SILOConfig(4)
	cfg.Scale = 256
	dir := t.TempDir()

	fresh := warmSystem(cfg, specs)
	want := fresh.StreamWindows(diffWarmCyc, 2_000)
	var wantW []Metrics
	for i := 0; i < 4; i++ {
		m := *want.Next()
		m.PerCoreRetired = append([]uint64(nil), m.PerCoreRetired...)
		wantW = append(wantW, m)
	}

	warmed := warmSystem(cfg, specs)
	path := filepath.Join(dir, "windows.ckpt")
	if err := checkpoint.Save(path, "k", "{}", warmed.Checkpoint); err != nil {
		t.Fatalf("save: %v", err)
	}
	r, err := checkpoint.Open(path, "k")
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	restored, err := NewSystemFromCheckpoint(cfg, specs, r)
	r.Close()
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	got := restored.StreamWindows(diffWarmCyc, 2_000)
	for i, w := range wantW {
		g := *got.Next()
		g.PerCoreRetired = append([]uint64(nil), g.PerCoreRetired...)
		if !reflect.DeepEqual(w, g) {
			t.Fatalf("window %d diverges:\nfresh:    %+v\nrestored: %+v", i, w, g)
		}
	}
}

// TestCheckpointStartedSystemRejected: the checkpoint cut is strictly
// pre-Run.
func TestCheckpointStartedSystemRejected(t *testing.T) {
	cfg := BaselineConfig(4)
	cfg.Scale = 256
	sys := warmSystem(cfg, []workload.Spec{workload.WebSearch()})
	sys.Run(500, 1_000)
	err := checkpoint.Save(filepath.Join(t.TempDir(), "x.ckpt"), "k", "{}", sys.Checkpoint)
	if err == nil {
		t.Fatal("checkpointing a started system must fail")
	}
}

// TestCheckpointWrongConfigRejected: restoring into a system whose
// geometry differs from the checkpoint is an error (the caller then
// rebuilds cold), never a silent misload.
func TestCheckpointWrongConfigRejected(t *testing.T) {
	specs := []workload.Spec{workload.WebSearch()}
	cfg := SILOConfig(4)
	cfg.Scale = 256
	sys := warmSystem(cfg, specs)
	path := filepath.Join(t.TempDir(), "x.ckpt")
	if err := checkpoint.Save(path, "k", "{}", sys.Checkpoint); err != nil {
		t.Fatal(err)
	}
	for name, other := range map[string]Config{
		"kind":  func() Config { c := BaselineConfig(4); c.Scale = 256; return c }(),
		"cores": func() Config { c := SILOConfig(8); c.Scale = 256; return c }(),
		"scale": func() Config { c := SILOConfig(4); c.Scale = 512; return c }(),
	} {
		r, err := checkpoint.Open(path, "k")
		if err != nil {
			t.Fatal(err)
		}
		_, err = NewSystemFromCheckpoint(other, specs, r)
		r.Close()
		if err == nil {
			t.Fatalf("%s mismatch accepted", name)
		}
	}
}
