// Package core assembles the evaluated systems from the substrate packages:
// cores, L1s (and optional L2s), the last-level cache organization under
// study, coherence, interconnect, and main memory. It implements the five
// system configurations of paper Sec. VI-A:
//
//   - Baseline: 8 MB shared NUCA SRAM LLC, 16 banks, MESI (Scale-out
//     Processors-style two-level hierarchy).
//   - Baseline+DRAM$: Baseline plus an 8 GB conventional page-based DRAM
//     cache with perfect miss prediction.
//   - SILO: all-private hierarchy with one latency-optimized 256 MB
//     die-stacked DRAM vault per core, inclusive direct-mapped TAD cache,
//     MOESI duplicate-tag directory embedded in the vaults.
//   - SILO-CO: SILO with capacity-optimized 512 MB vaults (32-cycle access).
//   - Vaults-Sh: latency-optimized vaults organized as a shared
//     address-interleaved NUCA LLC (isolates the private-organization
//     benefit from the DRAM-latency benefit).
//
// # Capacity scaling
//
// The paper warms multi-hundred-megabyte caches over billions of
// instructions from checkpoints. A reproduction must reach steady-state
// cache contents inside tractable windows, so every LLC-level capacity and
// every LLC-level workload footprint is divided by Config.Scale (default
// 16) while latencies, core parameters and L1 sizes stay at paper values.
// Hit rates depend on the capacity:footprint ratio, which scaling
// preserves; all reported capacities use paper-scale labels. This
// substitution is recorded in DESIGN.md §2.
package core

import (
	"fmt"

	"repro/internal/coherence"
	"repro/internal/dramcache"
	"repro/internal/memctl"
	"repro/internal/sim"
	"repro/internal/vault"
)

// Kind selects the system organization.
type Kind uint8

const (
	// Baseline is the shared 8MB NUCA SRAM LLC system.
	Baseline Kind = iota
	// BaselineDRAM is Baseline plus the conventional DRAM cache.
	BaselineDRAM
	// SILO is the private die-stacked vault organization (the paper's
	// contribution).
	SILO
	// SILOCO is SILO with capacity-optimized vaults.
	SILOCO
	// VaultsShared stacks latency-optimized vaults but shares them as an
	// address-interleaved NUCA LLC.
	VaultsShared
)

func (k Kind) String() string {
	switch k {
	case Baseline:
		return "Baseline"
	case BaselineDRAM:
		return "Baseline+DRAM$"
	case SILO:
		return "SILO"
	case SILOCO:
		return "SILO-CO"
	case VaultsShared:
		return "Vaults-Sh"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Private reports whether the kind uses the all-private vault hierarchy.
func (k Kind) Private() bool { return k == SILO || k == SILOCO }

// GHz is the core clock (paper Table II: 2 GHz).
const GHz = 2.0

// Config describes one simulated system.
type Config struct {
	Kind  Kind
	Cores int // 16 for server studies, 4 for SPEC mixes
	Scale int64
	Seed  uint64

	// L1 (per core, paper Table II: 64KB 8-way I and D).
	L1Size int64
	L1Ways int

	// Optional private L2 for three-level hierarchies (paper Sec. VII-F:
	// 512KB). Zero disables it.
	L2Size    int64
	L2Ways    int
	L2Latency sim.Cycle

	// Shared LLC (Baseline kinds; paper-scale bytes).
	LLCSize        int64
	LLCWays        int
	LLCBankLatency sim.Cycle
	// LLCExtraLatency adds cycles to every shared-LLC access (the Fig 2
	// latency sweep) and RWSharedMult multiplies the LLC latency of
	// accesses to RW-shared blocks (the Fig 4 study; 1 = off).
	LLCExtraLatency sim.Cycle
	RWSharedMult    int

	// Conventional DRAM cache (BaselineDRAM only).
	DRAMCache dramcache.Config

	// Vault LLC (SILO kinds and VaultsShared; paper-scale bytes per core).
	VaultCapacity int64
	VaultTiming   vault.Config
	VaultWays     int // 1 = direct-mapped (paper); >1 for the ablation
	Protocol      coherence.Protocol

	// Fig 12 optimizations (both modelled as ideal, per the paper).
	LocalMissPredictor bool
	DirectoryCache     bool

	// GenThreads moves trace generation off the timing thread: N > 0 runs
	// the cores' workload streams on min(N, Cores) producer goroutines
	// feeding per-core SPSC block rings (DESIGN.md §12); 0 keeps the
	// synchronous in-thread path. Host-side only — simulation results are
	// bit-identical at every value.
	GenThreads int

	// Interconnect and memory.
	HopLatency sim.Cycle
	// LLCFixedOverhead models router/controller overhead per shared-LLC
	// access; with the 4x4 mesh it lands the baseline's average loaded
	// round trip at the paper's 23 cycles.
	LLCFixedOverhead sim.Cycle
	Memory           memctl.Config
}

// DefaultScale is the capacity scale divisor (see the package comment).
const DefaultScale = 16

// base returns the Table II parameters shared by every system.
func base(kind Kind, cores int) Config {
	return Config{
		Kind:             kind,
		Cores:            cores,
		Scale:            DefaultScale,
		Seed:             1,
		L1Size:           64 << 10,
		L1Ways:           8,
		LLCSize:          8 << 20,
		LLCWays:          16,
		LLCBankLatency:   5,
		RWSharedMult:     1,
		VaultWays:        1,
		Protocol:         coherence.MOESI,
		HopLatency:       3,
		LLCFixedOverhead: 3,
		Memory:           memctl.Default(GHz),
	}
}

// BaselineConfig is the paper's baseline: Scale-out Processors-style 8MB
// shared NUCA LLC in a two-level hierarchy.
func BaselineConfig(cores int) Config { return base(Baseline, cores) }

// BaselineDRAMConfig augments the baseline with the 8GB conventional DRAM
// cache.
func BaselineDRAMConfig(cores int) Config {
	c := base(BaselineDRAM, cores)
	c.DRAMCache = dramcache.Default(GHz)
	return c
}

// SILOConfig is the paper's SILO: 256MB latency-optimized private vault per
// core, 23-cycle access, inclusive direct-mapped MOESI.
func SILOConfig(cores int) Config {
	c := base(SILO, cores)
	c.VaultCapacity = 256 << 20
	c.VaultTiming = vault.LatencyOptimized()
	return c
}

// SILOCOConfig is SILO with capacity-optimized 512MB vaults at 32 cycles.
func SILOCOConfig(cores int) Config {
	c := base(SILOCO, cores)
	c.VaultCapacity = 512 << 20
	c.VaultTiming = vault.CapacityOptimized()
	return c
}

// VaultsSharedConfig stacks latency-optimized vaults shared NUCA-style
// (aggregate 4GB for 16 cores), average loaded round trip ~41 cycles.
func VaultsSharedConfig(cores int) Config {
	c := base(VaultsShared, cores)
	c.VaultCapacity = 256 << 20
	c.VaultTiming = vault.LatencyOptimized()
	return c
}

// WithL2 converts a config into a three-level hierarchy (paper Sec. VII-F:
// 512KB private L2, modelled at 8 cycles).
func (c Config) WithL2() Config {
	c.L2Size = 512 << 10
	c.L2Ways = 8
	c.L2Latency = 8
	return c
}

// Validate panics on inconsistent configurations.
func (c *Config) Validate() {
	if c.Cores <= 0 || c.Cores > 32 {
		panic(fmt.Sprintf("core: %d cores outside [1,32]", c.Cores))
	}
	if c.Scale <= 0 {
		panic("core: non-positive scale")
	}
	if c.L1Size <= 0 || c.L1Ways <= 0 {
		panic("core: bad L1 geometry")
	}
	switch c.Kind {
	case Baseline, BaselineDRAM, VaultsShared:
		if c.Kind == VaultsShared {
			if c.VaultCapacity <= 0 {
				panic("core: VaultsShared without vault capacity")
			}
		} else if c.LLCSize <= 0 || c.LLCWays <= 0 {
			panic("core: shared LLC geometry missing")
		}
		if c.Kind == BaselineDRAM && c.DRAMCache.SizeBytes <= 0 {
			panic("core: BaselineDRAM without a DRAM cache")
		}
	case SILO, SILOCO:
		if c.VaultCapacity <= 0 || c.VaultWays <= 0 {
			panic("core: vault geometry missing")
		}
	default:
		panic(fmt.Sprintf("core: unknown kind %d", c.Kind))
	}
	if c.RWSharedMult < 1 {
		panic("core: RWSharedMult must be >= 1")
	}
	if c.GenThreads < 0 {
		panic(fmt.Sprintf("core: GenThreads %d must be >= 0", c.GenThreads))
	}
}

// meshDims returns the mesh shape for the core count (4x4 for 16 cores,
// 2x2 for the 4-core SPEC setup).
func meshDims(cores int) (w, h int) {
	switch {
	case cores <= 0:
		panic("core: no cores")
	case cores == 1:
		return 1, 1
	case cores == 2:
		return 2, 1
	case cores == 4:
		return 2, 2
	case cores == 8:
		return 4, 2
	case cores == 16:
		return 4, 4
	case cores == 32:
		return 8, 4
	default:
		panic(fmt.Sprintf("core: unsupported core count %d", cores))
	}
}

// scaledPow2 divides a paper-scale capacity by the scale factor and rounds
// to the nearest power of two so cache set counts stay valid.
func scaledPow2(bytes, scale int64) int64 {
	return scaledPow2Floor(bytes, scale, 4096)
}

// scaledL1 scales an L1 capacity with a smaller floor (the L1s are scaled
// along with everything else so footprint:capacity ratios hold at every
// level; see the package comment).
func scaledL1(bytes, scale int64) int64 {
	return scaledPow2Floor(bytes, scale, 2048)
}

func scaledPow2Floor(bytes, scale, floor int64) int64 {
	v := bytes / scale
	if v < floor {
		v = floor
	}
	p := int64(1)
	for p*2 <= v {
		p *= 2
	}
	// Round to nearest: if v is closer to 2p than p, use 2p.
	if v-p > 2*p-v {
		p *= 2
	}
	return p
}
