package core

import (
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/workload"
)

// runGen builds, warms, and measures one system at the given gen-thread
// count, returning its measured Metrics. Prewarm + WarmFunctional + Run
// is the full production sequence, so both the warm-up ring path and the
// timed ring path are exercised.
func runGen(t *testing.T, kind Kind, spec workload.Spec, genThreads int) Metrics {
	t.Helper()
	cfg := quickConfig(kind)
	cfg.GenThreads = genThreads
	sys := NewSystem(cfg, []workload.Spec{spec})
	defer sys.Close()
	sys.Prewarm()
	sys.WarmFunctional(20000)
	m := sys.Run(2000, 10000)
	if msg := sys.CheckInvariants(); msg != "" {
		t.Fatalf("kind=%v gen-threads=%d: invariant violated: %s", kind, genThreads, msg)
	}
	return m
}

// TestGenThreadsBitIdentical is the serial-vs-ring differential at the
// system level: the full warm-up + timed run must produce identical
// Metrics (every counter, every core) at every gen-thread count —
// off-thread generation may only change which host thread runs the
// generator, never the simulation (DESIGN.md §12).
func TestGenThreadsBitIdentical(t *testing.T) {
	for _, kind := range []Kind{Baseline, SILO} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			want := runGen(t, kind, workload.DataServing(), 0)
			for _, gen := range []int{1, 3} {
				got := runGen(t, kind, workload.DataServing(), gen)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("gen-threads=%d metrics diverge from synchronous path:\ngot  %+v\nwant %+v", gen, got, want)
				}
			}
		})
	}
}

// TestGenThreadsCloseReleasesProducers pins producer shutdown at the
// System level: after Close (double Close included), no producer
// goroutine survives, whether the system ran or was abandoned right
// after warm-up.
func TestGenThreadsCloseReleasesProducers(t *testing.T) {
	base := runtime.NumGoroutine()
	cfg := quickConfig(SILO)
	cfg.GenThreads = 2

	sys := NewSystem(cfg, []workload.Spec{workload.WebSearch()})
	sys.WarmFunctional(5000)
	sys.Run(1000, 2000)
	sys.Close()
	sys.Close() // idempotent

	abandoned := NewSystem(cfg, []workload.Spec{workload.WebSearch()})
	abandoned.WarmFunctional(5000) // budgeted producers join inside
	abandoned.Close()              // no timed producers started: no-op

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("producer goroutines leaked after Close\n%s", buf[:n])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestPrefetchBitIdentical forces the home-slot prefetcher on (the
// footprint gate normally keeps it off at test scales) and requires
// identical Metrics: PrefetchLine is a host-side read, never a simulated
// state change.
func TestPrefetchBitIdentical(t *testing.T) {
	for _, kind := range []Kind{Baseline, SILO} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			run := func(prefetch bool) Metrics {
				sys := NewSystem(quickConfig(kind), []workload.Spec{workload.WebSearch()})
				sys.WarmFunctional(20000)
				if prefetch {
					for _, c := range sys.cores {
						if !c.EnablePrefetch() {
							t.Fatal("adapter does not implement BatchPrefetcher")
						}
					}
				}
				return sys.Run(2000, 10000)
			}
			want := run(false)
			got := run(true)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("prefetch changed simulation results:\ngot  %+v\nwant %+v", got, want)
			}
		})
	}
}
