package core

import "repro/internal/sim"

// Stats is the raw event-count record every hierarchy maintains. Metrics
// are computed as deltas between snapshots, so functional warm-up and
// timing warm-up pollute nothing.
type Stats struct {
	// LLC-level demand accesses (L1/L2 misses reaching the LLC, plus
	// coherence upgrades).
	LLCAccesses uint64
	// Hit/miss decomposition (Fig 11). For shared LLCs every hit is local.
	LocalHits  uint64
	RemoteHits uint64
	Misses     uint64

	// Access-type decomposition at the LLC (Fig 3).
	Reads          uint64
	WritesPrivate  uint64 // writes that are not RW-shared
	WritesRWShared uint64

	// Memory-system activity (Figs 13 and traffic accounting).
	MemAccesses   uint64
	MemWritebacks uint64
	VaultAccesses uint64 // data + metadata DRAM-vault accesses
	DRAMCacheHits uint64

	// Coherence activity.
	Invalidations uint64
	Forwards      uint64
	DirAccesses   uint64
	Upgrades      uint64
}

// sub returns s - o field-wise.
func (s Stats) sub(o Stats) Stats {
	return Stats{
		LLCAccesses:    s.LLCAccesses - o.LLCAccesses,
		LocalHits:      s.LocalHits - o.LocalHits,
		RemoteHits:     s.RemoteHits - o.RemoteHits,
		Misses:         s.Misses - o.Misses,
		Reads:          s.Reads - o.Reads,
		WritesPrivate:  s.WritesPrivate - o.WritesPrivate,
		WritesRWShared: s.WritesRWShared - o.WritesRWShared,
		MemAccesses:    s.MemAccesses - o.MemAccesses,
		MemWritebacks:  s.MemWritebacks - o.MemWritebacks,
		VaultAccesses:  s.VaultAccesses - o.VaultAccesses,
		DRAMCacheHits:  s.DRAMCacheHits - o.DRAMCacheHits,
		Invalidations:  s.Invalidations - o.Invalidations,
		Forwards:       s.Forwards - o.Forwards,
		DirAccesses:    s.DirAccesses - o.DirAccesses,
		Upgrades:       s.Upgrades - o.Upgrades,
	}
}

// Metrics summarizes one measured window.
type Metrics struct {
	Kind    Kind
	Cycles  sim.Cycle
	Retired uint64
	// PerCoreRetired supports per-application reporting in colocation
	// studies (Table VI).
	PerCoreRetired []uint64
	Stats          Stats
}

// IPC is the aggregate instructions per cycle across all cores — the
// paper's throughput metric (Sec. VI-C).
func (m Metrics) IPC() float64 {
	if m.Cycles == 0 {
		return 0
	}
	return float64(m.Retired) / float64(m.Cycles)
}

// CoreIPC is one core's retire rate.
func (m Metrics) CoreIPC(core int) float64 {
	if m.Cycles == 0 {
		return 0
	}
	return float64(m.PerCoreRetired[core]) / float64(m.Cycles)
}

// RangeIPC is the aggregate IPC of cores [lo, hi) — the throughput of one
// colocated application.
func (m Metrics) RangeIPC(lo, hi int) float64 {
	if m.Cycles == 0 {
		return 0
	}
	var sum uint64
	for c := lo; c < hi; c++ {
		sum += m.PerCoreRetired[c]
	}
	return float64(sum) / float64(m.Cycles)
}

// LLCHitRate is (local+remote hits) / accesses.
func (m Metrics) LLCHitRate() float64 {
	if m.Stats.LLCAccesses == 0 {
		return 0
	}
	return float64(m.Stats.LocalHits+m.Stats.RemoteHits) / float64(m.Stats.LLCAccesses)
}

// MissRate is misses / accesses at the LLC.
func (m Metrics) MissRate() float64 {
	if m.Stats.LLCAccesses == 0 {
		return 0
	}
	return float64(m.Stats.Misses) / float64(m.Stats.LLCAccesses)
}

// Seconds converts the window length to wall-clock time at the core clock.
func (m Metrics) Seconds() float64 {
	return float64(m.Cycles) / (GHz * 1e9)
}
