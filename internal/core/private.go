package core

import (
	"fmt"
	"math/bits"

	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/vault"
)

// privateHierarchy implements SILO (paper Secs. III and V): per-core
// private L1s (plus optional L2) backed by a private die-stacked DRAM vault
// used as an inclusive, direct-mapped, TAD-organized LLC slice. Coherence
// is a directory protocol (MOESI by default) whose duplicate-tag metadata
// lives in the vaults: a miss in the local vault consults the line's home
// vault, which may forward to a remote owner vault or to memory.
//
// Access paths (paper Sec. V-C): up to three DRAM accesses may serialize —
// local vault (miss discovered after the TAD read), directory metadata at
// the home vault, and the remote owner's vault. The LocalMissPredictor and
// DirectoryCache optimizations (both ideal, per Fig 12) elide the first
// two respectively.
type privateHierarchy struct {
	sys *System
	st  Stats

	l1i, l1d []*cache.Array
	l2       []*cache.Array

	vaultArr []*cache.Array // per-core private LLC contents
	vaults   []*vault.Vault // per-core vault timing
	dir      *coherence.Directory

	// moesi enables the L1-D ownership cache (see markL1Writable): under
	// MOESI an owned line stays owned until an invalidation or inclusion
	// victim removes the L1 copy, so repeated store hits can skip the
	// directory permission check. MESI downgrades M->S on a remote read
	// without touching the owner's L1, so the cache would go stale there.
	moesi bool

	// homeDiv is the precomputed reciprocal of the core count for homeOf
	// (one fastmod instead of a hardware divide per directory consult).
	homeDiv sim.Divisor
}

func newPrivateHierarchy(sys *System) *privateHierarchy {
	cfg := sys.cfg
	h := &privateHierarchy{
		sys:      sys,
		l1i:      make([]*cache.Array, cfg.Cores),
		l1d:      make([]*cache.Array, cfg.Cores),
		vaultArr: make([]*cache.Array, cfg.Cores),
		vaults:   make([]*vault.Vault, cfg.Cores),
		dir:      coherence.NewDirectory(cfg.Cores, cfg.Protocol),
		moesi:    cfg.Protocol == coherence.MOESI,
		homeDiv:  sim.NewDivisor(uint64(cfg.Cores)),
	}
	per := scaledPow2(cfg.VaultCapacity, cfg.Scale)
	l1 := scaledL1(cfg.L1Size, cfg.Scale)
	for c := 0; c < cfg.Cores; c++ {
		h.l1i[c] = cache.NewArray(l1, cfg.L1Ways, cache.LRU)
		h.l1d[c] = cache.NewArray(l1, cfg.L1Ways, cache.LRU)
		h.vaultArr[c] = cache.NewArray(per, cfg.VaultWays, cache.LRU)
		h.vaults[c] = vault.New(sys.engine, cfg.VaultTiming)
	}
	if cfg.L2Size > 0 {
		h.l2 = make([]*cache.Array, cfg.Cores)
		for c := 0; c < cfg.Cores; c++ {
			h.l2[c] = cache.NewArray(scaledPow2(cfg.L2Size, cfg.Scale), cfg.L2Ways, cache.LRU)
		}
	}
	return h
}

func (h *privateHierarchy) stats() Stats { return h.st }

func (h *privateHierarchy) lineTable() (entries, bytesPerSlot int) {
	return h.dir.Entries(), h.dir.BytesPerSlot()
}

// homeOf address-interleaves directory homes across the vaults (paper
// Sec. V-B: physically distributed, address-interleaved directory).
func (h *privateHierarchy) homeOf(line mem.LineAddr) int {
	return int(h.homeDiv.Mod(uint64(line) / mem.LineSize))
}

// dirLatency is the cost of consulting the directory metadata at the home
// vault: NoC to the home plus an in-DRAM metadata access (elided entirely
// by the ideal directory cache, which leaves only the NoC hop).
func (h *privateHierarchy) dirLatency(core, home int, line mem.LineAddr, timing bool) sim.Cycle {
	h.st.DirAccesses++
	if !timing {
		return 0
	}
	lat := h.sys.mesh.Latency(core, home)
	if !h.sys.cfg.DirectoryCache {
		lat += h.vaults[home].MetadataAccess(line)
		h.st.VaultAccesses++
	}
	return lat
}

func (h *privateHierarchy) ifetch(core int, line mem.LineAddr, jump, timing bool) (sim.Cycle, bool) {
	if w := h.l1i[core].ProbeTouch(line); w != cache.NoWay {
		return 0, true
	}
	if !jump {
		h.fillIFetch(core, line, false)
		return 0, true
	}
	lat := h.fillIFetch(core, line, timing)
	return lat, false
}

func (h *privateHierarchy) fillIFetch(core int, line mem.LineAddr, timing bool) sim.Cycle {
	lat := h.readVaultPath(core, line, false, timing)
	if h.l2 != nil {
		h.insertL2(core, line)
	}
	// Both ifetch callers reach here straight after an L1-I probe miss,
	// and the vault fill can only back-invalidate a *victim* line, so the
	// fetched line is still absent. L1 evictions are silent; dirtiness
	// lives at vault level.
	h.l1i[core].InsertAt(line, cache.Shared)
	return lat
}

func (h *privateHierarchy) data(core int, addr mem.Addr, write, rwShared, nonTemporal, timing bool) (sim.Cycle, bool) {
	line := addr.Line()

	if w := h.l1d[core].ProbeTouch(line); w != cache.NoWay {
		if !write {
			return 0, true
		}
		if h.l1d[core].WayState(w) == cache.Modified {
			// Cached ownership: the line was stored to before and the L1
			// copy survived, so the vault still owns it (MOESI; see the
			// moesi field). Skips the directory permission check, which
			// has no side effects on this branch.
			return 0, true
		}
		// Store: writable when the vault holds the line in E, M or O.
		switch h.dir.StateOf(line, core) {
		case cache.Modified, cache.Owned:
			h.markL1Writable(core, w)
			return 0, true
		case cache.Exclusive:
			h.dir.MarkDirty(line, core)
			h.markL1Writable(core, w)
			return 0, true
		default:
			// Shared (or lost to eviction): upgrade through the directory.
			// An L1 hit implies the vault holds the line (inclusion), so
			// the upgrade never refills the vault and w stays valid.
			lat := h.writeVaultPath(core, line, rwShared, timing)
			h.markL1Writable(core, w)
			return lat, false
		}
	}

	if w := probeL2(h.l2, core, line); w != cache.NoWay {
		l1w := h.fillL1D(core, line)
		lat := h.sys.cfg.L2Latency
		if !timing {
			lat = 0
		}
		if write {
			switch h.dir.StateOf(line, core) {
			case cache.Modified, cache.Owned:
			case cache.Exclusive:
				h.dir.MarkDirty(line, core)
			default:
				lat += h.writeVaultPath(core, line, rwShared, timing)
			}
			h.markL1Writable(core, l1w)
		}
		return lat, false
	}

	var lat sim.Cycle
	if write {
		// A store already owned at the vault level is a plain local vault
		// access; only stores to Shared or absent lines need the directory.
		switch h.dir.StateOf(line, core) {
		case cache.Modified, cache.Owned:
			lat = h.localWriteHit(core, line, rwShared, timing)
		case cache.Exclusive:
			h.dir.MarkDirty(line, core)
			lat = h.localWriteHit(core, line, rwShared, timing)
		default:
			lat = h.writeVaultPath(core, line, rwShared, timing)
		}
	} else {
		lat = h.readVaultPath(core, line, rwShared, timing)
	}
	if h.l2 != nil {
		h.insertL2(core, line)
	}
	l1w := h.fillL1D(core, line)
	if write {
		h.markL1Writable(core, l1w)
	}
	return lat, false
}

// markL1Writable caches vault-level ownership in the L1-D line state after
// a store settles: every path that reaches it leaves the directory state
// M or O for this core, so under MOESI the Modified mark stays truthful
// until an invalidation or inclusion victim removes the L1 copy. The mark
// is a pure lookup accelerator — no stat or result depends on it — and is
// disabled under MESI, where a remote read downgrades the owner silently.
func (h *privateHierarchy) markL1Writable(core int, w cache.Way) {
	if h.moesi {
		h.l1d[core].SetStateWay(w, cache.Modified)
	}
}

// localWriteHit services a store whose line is owned by the local vault:
// one TAD access, no coherence traffic.
func (h *privateHierarchy) localWriteHit(core int, line mem.LineAddr, rwShared, timing bool) sim.Cycle {
	h.st.LLCAccesses++
	if rwShared {
		h.st.WritesRWShared++
	} else {
		h.st.WritesPrivate++
	}
	h.st.LocalHits++
	if w := h.vaultArr[core].Probe(line); w != cache.NoWay {
		h.vaultArr[core].TouchWay(w)
	}
	if !timing {
		return 0
	}
	h.st.VaultAccesses++
	return h.vaults[core].Access(line)
}

// fillVaultAt installs a line its vault Probe just missed, maintaining
// inclusion (back-invalidating the victim from the upper levels) and the
// directory (evictions notify the home; dirty victims write back).
func (h *privateHierarchy) fillVaultAt(core int, line mem.LineAddr, timing bool) {
	_, ev, evicted := h.vaultArr[core].InsertAt(line, cache.Shared)
	if !evicted {
		return
	}
	// Inclusion: the victim leaves every private level.
	h.l1d[core].Invalidate(ev.Line)
	h.l1i[core].Invalidate(ev.Line)
	if h.l2 != nil {
		h.l2[core].Invalidate(ev.Line)
	}
	out := h.dir.Evict(ev.Line, core)
	if out.MemWriteback {
		h.st.MemWritebacks++
		if timing {
			h.sys.mainMem.Writeback(ev.Line)
		}
	}
}

// readVaultPath is the SILO read flow: local vault, then directory, then
// remote owner or memory.
func (h *privateHierarchy) readVaultPath(core int, line mem.LineAddr, rwShared, timing bool) sim.Cycle {
	_ = rwShared // the RW-shared latency study applies to the baseline only
	cfg := h.sys.cfg
	h.st.LLCAccesses++
	h.st.Reads++

	// Probe + TouchWay rather than the fused ProbeTouch: the vault is
	// direct-mapped in every paper configuration, so both calls inline and
	// the touch vanishes into a predicted branch.
	w := h.vaultArr[core].Probe(line)
	var lat sim.Cycle
	if w != cache.NoWay {
		if timing {
			lat = h.vaults[core].Access(line)
			h.st.VaultAccesses++
		}
		h.vaultArr[core].TouchWay(w)
		h.st.LocalHits++
		return lat
	}

	// Local miss. Without the (ideal) miss predictor the TAD read happens
	// before the miss is known.
	if timing && !cfg.LocalMissPredictor {
		lat += h.vaults[core].Access(line)
		h.st.VaultAccesses++
	}

	home := h.homeOf(line)
	lat += h.dirLatency(core, home, line, timing)

	out := h.dir.Read(line, core)
	if out.MemWriteback {
		h.st.MemWritebacks++
		if timing {
			h.sys.mainMem.Writeback(line)
		}
	}
	if out.Source == coherence.MemorySource {
		h.st.Misses++
		h.st.MemAccesses++
		if timing {
			lat += h.sys.mainMem.Access(line) + h.sys.mesh.Latency(home, core)
		}
	} else {
		h.st.RemoteHits++
		h.st.Forwards++
		if timing {
			lat += h.sys.mesh.Latency(home, out.Source) +
				h.vaults[out.Source].Access(line) +
				h.sys.mesh.Latency(out.Source, core)
			h.st.VaultAccesses++
		}
		if w := h.vaultArr[out.Source].Probe(line); w != cache.NoWay {
			h.vaultArr[out.Source].TouchWay(w)
		}
	}

	h.fillVaultAt(core, line, timing)
	return lat
}

// writeVaultPath is the SILO write flow: local permission check happened at
// the caller; this path acquires ownership through the directory.
func (h *privateHierarchy) writeVaultPath(core int, line mem.LineAddr, rwShared, timing bool) sim.Cycle {
	_ = rwShared
	cfg := h.sys.cfg
	h.st.LLCAccesses++
	if rwShared {
		h.st.WritesRWShared++
	} else {
		h.st.WritesPrivate++
	}

	w := h.vaultArr[core].Probe(line)
	local := w != cache.NoWay
	var lat sim.Cycle
	if timing && !local && !cfg.LocalMissPredictor {
		// Miss discovered by the TAD read.
		lat += h.vaults[core].Access(line)
		h.st.VaultAccesses++
	} else if timing && local {
		// Upgrade still reads the local TAD (data is here, permission not).
		lat += h.vaults[core].Access(line)
		h.st.VaultAccesses++
	}

	home := h.homeOf(line)
	lat += h.dirLatency(core, home, line, timing)

	out := h.dir.WriteMask(line, core)
	if out.InvalidatedMask != 0 {
		h.st.Invalidations += uint64(bits.OnesCount32(out.InvalidatedMask))
		far := sim.Cycle(0)
		for m := out.InvalidatedMask; m != 0; m &= m - 1 {
			c := bits.TrailingZeros32(m)
			h.vaultArr[c].Invalidate(line)
			h.l1d[c].Invalidate(line)
			h.l1i[c].Invalidate(line)
			if h.l2 != nil {
				h.l2[c].Invalidate(line)
			}
			if timing {
				if rt := h.sys.mesh.RoundTrip(home, c); rt > far {
					far = rt
				}
			}
		}
		lat += far
	}

	switch {
	case out.Upgrade:
		// Upgrades only happen on lines the vault already holds Shared
		// (duplicate-tag mirror), and peer invalidations never touch the
		// requester's set, so the probed way is still valid.
		h.st.Upgrades++
		h.st.LocalHits++
		h.vaultArr[core].TouchWay(w)
	case out.Source == coherence.MemorySource:
		h.st.Misses++
		h.st.MemAccesses++
		if timing {
			lat += h.sys.mainMem.Access(line) + h.sys.mesh.Latency(home, core)
		}
		h.fillVaultAt(core, line, timing)
	default:
		h.st.RemoteHits++
		h.st.Forwards++
		if timing {
			lat += h.sys.mesh.Latency(home, out.Source) + h.sys.mesh.Latency(out.Source, core)
		}
		h.fillVaultAt(core, line, timing)
	}
	return lat
}

// fillL1D installs a line into the L1-D and returns its way. Every caller
// sits on a path where the L1-D probe at the top of data() missed and no
// intervening step can have inserted the line (vault fills only
// back-invalidate victims), so the insert skips the duplicate scan.
func (h *privateHierarchy) fillL1D(core int, line mem.LineAddr) cache.Way {
	w, _, _ := h.l1d[core].InsertAt(line, cache.Shared)
	return w
}

func (h *privateHierarchy) insertL2(core int, line mem.LineAddr) {
	if w := h.l2[core].ProbeTouch(line); w != cache.NoWay {
		return
	}
	h.l2[core].InsertAt(line, cache.Shared)
}

// check validates the duplicate-tag invariant: the directory's view of each
// core's holdings exactly mirrors the vault contents.
func (h *privateHierarchy) check() string {
	if msg := h.dir.CheckInvariants(); msg != "" {
		return msg
	}
	for c := 0; c < h.sys.cfg.Cores; c++ {
		c := c
		bad := ""
		h.vaultArr[c].ForEach(func(line mem.LineAddr, _ cache.State) {
			if bad == "" && !h.dir.StateOf(line, c).Valid() {
				bad = fmt.Sprintf("core %d vault holds %#x unknown to directory", c, uint64(line))
			}
		})
		if bad != "" {
			return bad
		}
		// Inclusion: every L1-D line is in the vault. The ownership cache
		// (markL1Writable) additionally requires that an L1-D line marked
		// Modified is still owned at the vault level — a stale mark would
		// let a store skip its directory upgrade silently.
		h.l1d[c].ForEach(func(line mem.LineAddr, st cache.State) {
			if bad != "" {
				return
			}
			if !h.vaultArr[c].Contains(line) {
				bad = fmt.Sprintf("core %d L1D holds %#x outside its vault (inclusion broken)", c, uint64(line))
				return
			}
			if st == cache.Modified {
				if ds := h.dir.StateOf(line, c); ds != cache.Modified && ds != cache.Owned {
					bad = fmt.Sprintf("core %d L1D marks %#x writable but directory state is %v (stale ownership cache)",
						c, uint64(line), ds)
				}
			}
		})
		if bad != "" {
			return bad
		}
	}
	return ""
}
