package core

import (
	"fmt"
	"math/bits"

	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/dramcache"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/vault"
)

// sharedHierarchy implements the shared-LLC organizations: the SRAM NUCA
// baseline (with or without the conventional DRAM cache) and the shared
// die-stacked vault design Vaults-Sh. The LLC is the point of coherence:
// a MESI snoop filter tracks private-cache copies above it.
type sharedHierarchy struct {
	sys *System
	st  Stats

	l1i, l1d []*cache.Array
	l2       []*cache.Array // nil without the 3-level option

	banks     []*cache.Array
	vaults    []*vault.Vault // Vaults-Sh bank timing; nil for SRAM LLC
	snoop     *coherence.SnoopFilter
	dramCache *dramcache.Cache // BaselineDRAM only
}

func newSharedHierarchy(sys *System) *sharedHierarchy {
	cfg := sys.cfg
	h := &sharedHierarchy{
		sys:   sys,
		l1i:   make([]*cache.Array, cfg.Cores),
		l1d:   make([]*cache.Array, cfg.Cores),
		snoop: coherence.NewSnoopFilter(cfg.Cores),
	}
	l1 := scaledL1(cfg.L1Size, cfg.Scale)
	for c := 0; c < cfg.Cores; c++ {
		h.l1i[c] = cache.NewArray(l1, cfg.L1Ways, cache.LRU)
		h.l1d[c] = cache.NewArray(l1, cfg.L1Ways, cache.LRU)
	}
	if cfg.L2Size > 0 {
		h.l2 = make([]*cache.Array, cfg.Cores)
		for c := 0; c < cfg.Cores; c++ {
			h.l2[c] = cache.NewArray(scaledPow2(cfg.L2Size, cfg.Scale), cfg.L2Ways, cache.LRU)
		}
	}

	nbanks := cfg.Cores // one bank per mesh node (paper: 16 banks)
	bankBits := uint(0)
	for 1<<bankBits < nbanks {
		bankBits++
	}
	h.banks = make([]*cache.Array, nbanks)
	if cfg.Kind == VaultsShared {
		// Each bank is one latency-optimized vault, direct-mapped like the
		// private design, aggregate capacity shared by all cores.
		per := scaledPow2(cfg.VaultCapacity, cfg.Scale)
		h.vaults = make([]*vault.Vault, nbanks)
		for b := 0; b < nbanks; b++ {
			h.banks[b] = cache.NewBankedArray(per, 1, cache.LRU, bankBits)
			h.vaults[b] = vault.New(sys.engine, cfg.VaultTiming)
		}
	} else {
		per := scaledPow2(cfg.LLCSize, cfg.Scale) / int64(nbanks)
		for b := 0; b < nbanks; b++ {
			h.banks[b] = cache.NewBankedArray(per, cfg.LLCWays, cache.LRU, bankBits)
		}
	}
	if cfg.Kind == BaselineDRAM {
		dcCfg := cfg.DRAMCache
		dcCfg.SizeBytes = scaledPow2(dcCfg.SizeBytes, cfg.Scale)
		h.dramCache = dramcache.New(dcCfg)
	}
	return h
}

func (h *sharedHierarchy) stats() Stats { return h.st }

func (h *sharedHierarchy) lineTable() (entries, bytesPerSlot int) {
	return h.snoop.Entries(), h.snoop.BytesPerSlot()
}

// probeL2 probes an optional-L2 level (touching on a hit — both data
// paths treat an L2 hit as a use), reporting a miss when the level is
// absent. Shared by both hierarchies' data paths.
func probeL2(l2 []*cache.Array, core int, line mem.LineAddr) cache.Way {
	if l2 == nil {
		return cache.NoWay
	}
	return l2[core].ProbeTouch(line)
}

// bankOf address-interleaves lines across the LLC banks.
func (h *sharedHierarchy) bankOf(line mem.LineAddr) int {
	return cache.BankSelect(line, len(h.banks))
}

// llcLatency is the loaded round trip for one shared-LLC access by core:
// NoC out and back, fixed controller overhead, and the bank access (SRAM
// bank or vault with queueing).
func (h *sharedHierarchy) llcLatency(core, bank int, line mem.LineAddr, timing bool) sim.Cycle {
	if !timing {
		return 0
	}
	cfg := h.sys.cfg
	lat := h.sys.mesh.RoundTrip(core, bank) + cfg.LLCFixedOverhead + cfg.LLCExtraLatency
	if h.vaults != nil {
		lat += h.vaults[bank].Access(line)
	} else {
		lat += cfg.LLCBankLatency
	}
	return lat
}

// ifetch: instruction lines are read-only and never tracked by the snoop
// filter (no store ever targets the code region).
func (h *sharedHierarchy) ifetch(core int, line mem.LineAddr, jump, timing bool) (sim.Cycle, bool) {
	if w := h.l1i[core].ProbeTouch(line); w != cache.NoWay {
		return 0, true
	}
	if !jump {
		// Sequential transition: the next-line prefetcher has the line in
		// flight; account the fill but charge no stall.
		h.fillIFetch(core, line, false)
		return 0, true
	}
	lat := h.fillIFetch(core, line, timing)
	return lat, false
}

// fillIFetch brings an instruction line into the L1-I through the LLC,
// returning the demand latency (0 in functional mode).
func (h *sharedHierarchy) fillIFetch(core int, line mem.LineAddr, timing bool) sim.Cycle {
	bank := h.bankOf(line)
	h.st.LLCAccesses++
	h.st.Reads++
	lat := h.llcLatency(core, bank, line, timing)
	if w := h.banks[bank].ProbeTouch(line); w != cache.NoWay {
		h.st.LocalHits++
	} else {
		h.st.Misses++
		lat += h.fillLLC(bank, line, cache.Shared, false, timing)
	}
	if h.l2 != nil {
		h.insertL2(core, line)
	}
	// fillIFetch is reached only after the L1-I probe in ifetch missed.
	h.l1i[core].InsertAt(line, cache.Shared)
	return lat
}

// data handles loads and stores.
func (h *sharedHierarchy) data(core int, addr mem.Addr, write, rwShared, nonTemporal, timing bool) (sim.Cycle, bool) {
	line := addr.Line()
	cfg := h.sys.cfg

	if w := h.l1d[core].ProbeTouch(line); w != cache.NoWay {
		if !write {
			return 0, true
		}
		// Store hit: writable only if this core is the tracked dirty owner.
		if h.snoop.DirtyOwner(line) == core {
			return 0, true
		}
		// Upgrade at the LLC: invalidate peers, take ownership.
		return h.writeTransaction(core, line, rwShared, nonTemporal, timing), false
	}

	// Optional private L2. The L1 fill releases the displaced victim's
	// snoop tracking (as fillPrivate does for the LLC paths): a bare
	// insert here left the filter believing the victim's old owner still
	// held it, producing spurious forwards and invalidations.
	if w := probeL2(h.l2, core, line); w != cache.NoWay {
		_, ev, evicted := h.l1d[core].InsertAt(line, cache.Shared)
		if evicted {
			h.evictPrivate(core, ev.Line)
		}
		if write {
			if h.snoop.DirtyOwner(line) == core {
				return cfg.L2Latency, false
			}
			return cfg.L2Latency + h.writeTransaction(core, line, rwShared, nonTemporal, timing), false
		}
		if !timing {
			return 0, false
		}
		return cfg.L2Latency, false
	}

	// LLC access.
	if write {
		lat := h.writeTransaction(core, line, rwShared, nonTemporal, timing)
		h.fillPrivate(core, line)
		return lat, false
	}
	lat := h.readTransaction(core, line, rwShared, nonTemporal, timing)
	h.fillPrivate(core, line)
	return lat, false
}

// readTransaction performs an LLC read access with MESI handling.
func (h *sharedHierarchy) readTransaction(core int, line mem.LineAddr, rwShared, nonTemporal, timing bool) sim.Cycle {
	bank := h.bankOf(line)
	h.st.LLCAccesses++
	h.st.Reads++
	lat := h.llcLatency(core, bank, line, timing)

	forwarder, dirtied := h.snoop.Read(line, core)
	if forwarder >= 0 && timing {
		// Intervention: bank -> owner's L1 -> data back.
		lat += h.sys.mesh.RoundTrip(bank, forwarder) + 3
		h.st.Forwards++
	} else if forwarder >= 0 {
		h.st.Forwards++
	}

	if w := h.banks[bank].ProbeTouch(line); w != cache.NoWay {
		if dirtied {
			h.banks[bank].SetStateWay(w, cache.Modified)
		}
		h.st.LocalHits++
	} else {
		h.st.Misses++
		st := cache.Shared
		if dirtied {
			st = cache.Modified
		}
		lat += h.fillLLC(bank, line, st, nonTemporal, timing)
	}
	if rwShared && timing {
		lat *= sim.Cycle(h.sys.cfg.RWSharedMult)
	}
	return lat
}

// writeTransaction performs an LLC write/upgrade access: peers invalidate,
// the writer becomes dirty owner, the LLC copy is marked modified.
func (h *sharedHierarchy) writeTransaction(core int, line mem.LineAddr, rwShared, nonTemporal, timing bool) sim.Cycle {
	bank := h.bankOf(line)
	h.st.LLCAccesses++
	if rwShared {
		h.st.WritesRWShared++
	} else {
		h.st.WritesPrivate++
	}
	lat := h.llcLatency(core, bank, line, timing)

	invalidated, _ := h.snoop.WriteMask(line, core)
	if invalidated != 0 {
		h.st.Invalidations += uint64(bits.OnesCount32(invalidated))
		far := sim.Cycle(0)
		for m := invalidated; m != 0; m &= m - 1 {
			c := bits.TrailingZeros32(m)
			h.invalidatePrivate(c, line)
			if timing {
				if rt := h.sys.mesh.RoundTrip(bank, c); rt > far {
					far = rt
				}
			}
		}
		lat += far
	}

	if w := h.banks[bank].ProbeTouch(line); w != cache.NoWay {
		h.banks[bank].SetStateWay(w, cache.Modified)
		h.st.LocalHits++
	} else {
		h.st.Misses++
		lat += h.fillLLC(bank, line, cache.Modified, nonTemporal, timing)
	}
	if rwShared && timing {
		lat *= sim.Cycle(h.sys.cfg.RWSharedMult)
	}
	return lat
}

// fillLLC brings a line into an LLC bank from below (DRAM cache or
// memory), handling victim writeback. Returns the below-LLC latency.
func (h *sharedHierarchy) fillLLC(bank int, line mem.LineAddr, st cache.State, nonTemporal, timing bool) sim.Cycle {
	var lat sim.Cycle
	if h.dramCache != nil {
		// Perfect miss prediction: a DRAM-cache miss goes straight to
		// memory with no added latency; a hit is served at the DRAM-cache
		// access time.
		dlat, hit := h.dramCache.Access(mem.Addr(line))
		if hit {
			h.st.DRAMCacheHits++
			if timing {
				lat = dlat
			}
		} else {
			h.st.MemAccesses++
			if timing {
				lat = h.sys.mainMem.Access(line)
			}
		}
	} else {
		h.st.MemAccesses++
		if timing {
			lat = h.sys.mainMem.Access(line)
		}
	}
	// Every caller reaches here straight after a Probe miss on this bank,
	// so the fast-path insert may skip the duplicate scan.
	w, ev, evicted := h.banks[bank].InsertAt(line, st)
	if nonTemporal {
		h.banks[bank].DemoteWay(w)
	}
	if evicted && ev.Dirty() {
		h.st.MemWritebacks++
		if timing {
			h.sys.mainMem.Writeback(ev.Line)
		}
	}
	return lat
}

// fillPrivate installs a line into the core's L1-D (and L2), updating the
// snoop filter for the displaced victim. Callers reach it only after the
// L1-D probe at the top of data() missed, so the insert skips the
// duplicate scan.
func (h *sharedHierarchy) fillPrivate(core int, line mem.LineAddr) {
	if h.l2 != nil {
		h.insertL2(core, line)
	}
	_, ev, evicted := h.l1d[core].InsertAt(line, cache.Shared)
	if evicted {
		h.evictPrivate(core, ev.Line)
	}
}

// insertL2 installs a line into the core's L2, releasing the victim's
// snoop tracking when it is in neither L1 nor L2 afterwards.
func (h *sharedHierarchy) insertL2(core int, line mem.LineAddr) {
	if w := h.l2[core].ProbeTouch(line); w != cache.NoWay {
		return
	}
	_, ev, evicted := h.l2[core].InsertAt(line, cache.Shared)
	if evicted {
		h.evictPrivate(core, ev.Line)
	}
}

// evictPrivate tells the snoop filter a line left one private cache level,
// but only when it is gone from all of the core's levels.
func (h *sharedHierarchy) evictPrivate(core int, line mem.LineAddr) {
	if h.l1d[core].Contains(line) || h.l1i[core].Contains(line) {
		return
	}
	if h.l2 != nil && h.l2[core].Contains(line) {
		return
	}
	h.snoop.Evict(line, core, false)
}

// invalidatePrivate removes a line from every private level of a core.
func (h *sharedHierarchy) invalidatePrivate(core int, line mem.LineAddr) {
	h.l1d[core].Invalidate(line)
	if h.l2 != nil {
		h.l2[core].Invalidate(line)
	}
}

func (h *sharedHierarchy) check() string {
	if msg := h.snoop.CheckInvariants(); msg != "" {
		return msg
	}
	// L1 occupancy never exceeds the (scaled) capacity.
	for c := 0; c < h.sys.cfg.Cores; c++ {
		if h.l1d[c].Occupied() > int(h.l1d[c].SizeBytes()/mem.LineSize) {
			return fmt.Sprintf("core %d L1D over capacity", c)
		}
	}
	// Filter-vs-contents cross-check: every tracked (line, core) pair must
	// correspond to a resident copy in that core's private levels. A stale
	// entry makes the filter "forward" from a cache that no longer holds
	// the line, inflating coherence traffic and latency.
	msg := ""
	h.snoop.ForEachEntry(func(line mem.LineAddr, mask uint32, owner int) {
		if msg != "" {
			return
		}
		for c := 0; c < h.sys.cfg.Cores; c++ {
			if mask&(1<<uint(c)) == 0 {
				continue
			}
			if h.l1d[c].Contains(line) || h.l1i[c].Contains(line) {
				continue
			}
			if h.l2 != nil && h.l2[c].Contains(line) {
				continue
			}
			msg = fmt.Sprintf("line %#x: snoop filter tracks core %d (owner %d) but no private cache holds it",
				uint64(line), c, owner)
			return
		}
	})
	return msg
}
