package core

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/workload"
)

// addrOfTag returns the address of the line with the given tag.
func addrOfTag(tag uint64) mem.Addr { return mem.Addr(tag * mem.LineSize) }

// Regression test for the L2-hit fill path: inserting into the L1-D on an
// L2 hit displaces a victim, and that victim's snoop-filter tracking must
// be released when it leaves the core's last private copy. The buggy path
// inserted with a bare Insert, so a victim resident only in the L1-D kept
// its (possibly dirty-owner) tracking forever, and the filter would later
// "forward" from a cache that no longer held the line.
//
// Geometry at the default Scale 16 (asserted below): L1-D 8 sets x 8 ways,
// L2 64 sets x 8 ways, both indexed by low tag bits — lines in the same L2
// set share an L1 set too, but L1 and L2 LRU order diverge because L1 hits
// do not touch the L2.
func TestL2HitFillReleasesVictimTracking(t *testing.T) {
	cfg := BaselineConfig(2).WithL2()
	sys := NewSystem(cfg, []workload.Spec{workload.WebSearch()})
	h, ok := sys.hier.(*sharedHierarchy)
	if !ok {
		t.Fatal("baseline system is not a shared hierarchy")
	}
	if s := h.l1d[0].Sets(); s != 8 {
		t.Fatalf("L1D sets = %d, test assumes 8", s)
	}
	if s := h.l2[0].Sets(); s != 64 {
		t.Fatalf("L2 sets = %d, test assumes 64", s)
	}

	const baseTag = 1024 // tag ≡ 0 mod 64: L1 set 0, L2 set 0
	x := addrOfTag(baseTag).Line()

	// Core 0 writes X: X enters L1-D and L2, tracked as dirty owner.
	h.data(0, addrOfTag(baseTag), true, false, false, false)
	if own := h.snoop.DirtyOwner(x); own != 0 {
		t.Fatalf("after write, DirtyOwner(X) = %d, want 0", own)
	}

	// Eight fills f1..f8 in X's L2 set (and therefore X's L1 set). X is
	// re-touched in the L1-D after every fill, so it stays L1-resident
	// while aging to L2-LRU: f8's L2 insert evicts X from the L2 (tracking
	// correctly kept — X is still in the L1-D), and f8's L1 insert evicts
	// the L1-LRU f1 (tracking correctly kept — f1 is still in the L2).
	for i := uint64(1); i <= 8; i++ {
		h.data(0, addrOfTag(baseTag+64*i), false, false, false, false)
		h.data(0, addrOfTag(baseTag), false, false, false, false)
	}
	f1 := addrOfTag(baseTag + 64).Line()
	if h.l2[0].Contains(x) {
		t.Fatal("setup failed: X still in L2")
	}
	if !h.l1d[0].Contains(x) || h.l1d[0].Contains(f1) || !h.l2[0].Contains(f1) {
		t.Fatal("setup failed: want X in L1D only and f1 in L2 only")
	}

	// Age X to L1-LRU by touching every other resident of its L1 set.
	for i := uint64(2); i <= 8; i++ {
		h.data(0, addrOfTag(baseTag+64*i), false, false, false, false)
	}

	// The critical access: f1 hits in the L2 and fills the L1-D, evicting
	// X — core 0's last copy. Its tracking must be released.
	h.data(0, addrOfTag(baseTag+64), false, false, false, false)
	if h.l1d[0].Contains(x) || h.l2[0].Contains(x) {
		t.Fatal("setup failed: X still resident after the L2-hit fill")
	}
	if own := h.snoop.DirtyOwner(x); own != -1 {
		t.Errorf("stale dirty owner %d for evicted line X", own)
	}
	if msg := sys.CheckInvariants(); msg != "" {
		t.Errorf("invariant violated: %s", msg)
	}

	// A read from core 1 must not count a forward from core 0's vanished
	// copy (the stale entry's user-visible symptom: inflated Forwards).
	before := h.snoop.Forwards
	h.data(1, addrOfTag(baseTag), false, false, false, false)
	if h.snoop.Forwards != before {
		t.Errorf("spurious forward from a cache that no longer holds X")
	}
}

// Whole-system smoke: a three-level shared hierarchy running real streams
// must keep the snoop filter consistent with actual cache contents (the
// cross-check in sharedHierarchy.check covers every tracked line).
func TestSharedL2FilterMatchesContentsUnderLoad(t *testing.T) {
	cfg := BaselineConfig(4).WithL2()
	cfg.Scale = 32
	sys := NewSystem(cfg, []workload.Spec{workload.DataServing()})
	sys.WarmFunctional(20_000)
	if msg := sys.CheckInvariants(); msg != "" {
		t.Fatalf("after functional warm-up: %s", msg)
	}
	sys.Run(1_000, 5_000)
	if msg := sys.CheckInvariants(); msg != "" {
		t.Fatalf("after timed run: %s", msg)
	}
}
