package core

import (
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/memctl"
	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/workload"
)

// hierarchy is the system-specific memory organization beneath the cores.
// Implementations handle both timed access (timing=true, returning the
// total latency) and functional warm-up (timing=false, mutating cache and
// coherence state only).
type hierarchy interface {
	// ifetch performs an instruction fetch. jump marks a non-sequential
	// transfer (sequential transitions are next-line-prefetched and only
	// maintain state). hit reports whether the access completed without
	// leaving the L1/L2.
	ifetch(core int, line mem.LineAddr, jump, timing bool) (lat sim.Cycle, hit bool)
	// data performs a load or store. nonTemporal fills go in at LRU
	// priority.
	data(core int, addr mem.Addr, write, rwShared, nonTemporal, timing bool) (lat sim.Cycle, hit bool)
	// stats returns the current counter values.
	stats() Stats
	// lineTable reports the coherence line-table occupancy: live entries
	// and the store's inline bytes per slot.
	lineTable() (entries, bytesPerSlot int)
	// check validates internal invariants, returning "" when healthy.
	check() string
	// snapshot/restore serialize the hierarchy's mutable state through
	// the per-component checkpoint seams (checkpoint.go, DESIGN.md §11).
	snapshot(w *checkpoint.Writer)
	restore(r *checkpoint.Reader) error
}

// System is one simulated machine: cores with workload streams over a
// hierarchy.
type System struct {
	cfg     Config
	engine  *sim.Engine
	mesh    *noc.Mesh
	mainMem *memctl.Memory
	hier    hierarchy
	cores   []*cpu.Core
	streams []*workload.Stream
	started bool
}

// NewSystem builds a system running the given per-core workloads. specs
// must contain either one spec (replicated to all cores) or exactly one
// per core.
func NewSystem(cfg Config, specs []workload.Spec) *System {
	cfg.Validate()
	perCore := make([]workload.Spec, cfg.Cores)
	switch len(specs) {
	case 1:
		for i := range perCore {
			perCore[i] = specs[0]
		}
	case cfg.Cores:
		copy(perCore, specs)
	default:
		panic(fmt.Sprintf("core: %d specs for %d cores", len(specs), cfg.Cores))
	}

	engine := sim.NewEngine()
	w, h := meshDims(cfg.Cores)
	mesh := noc.New(w, h, cfg.HopLatency)
	mainMem := memctl.New(engine, cfg.Memory)

	s := &System{
		cfg:     cfg,
		engine:  engine,
		mesh:    mesh,
		mainMem: mainMem,
	}
	switch cfg.Kind {
	case Baseline, BaselineDRAM, VaultsShared:
		s.hier = newSharedHierarchy(s)
	case SILO, SILOCO:
		s.hier = newPrivateHierarchy(s)
	}

	s.streams = make([]*workload.Stream, cfg.Cores)
	s.cores = make([]*cpu.Core, cfg.Cores)
	for c := 0; c < cfg.Cores; c++ {
		s.streams[c] = workload.NewStream(perCore[c], c, cfg.Cores, cfg.Scale, cfg.Seed)
		s.cores[c] = cpu.New(engine, c, cpu.DefaultConfig(), s.streams[c], newCoreAdapter(s.hier))
	}
	return s
}

// newCoreAdapter picks the concrete adapter for the hierarchy so the
// adapter's inner call is direct (devirtualized): each access then pays
// one interface dispatch (core -> adapter), not two.
func newCoreAdapter(h hierarchy) cpu.Hierarchy {
	switch h := h.(type) {
	case *privateHierarchy:
		return &privateCoreAdapter{hier: h}
	case *sharedHierarchy:
		return &sharedCoreAdapter{hier: h}
	default:
		return &coreAdapter{hier: h}
	}
}

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// Engine exposes the simulation engine (examples and tests).
func (s *System) Engine() *sim.Engine { return s.engine }

// coreAdapter implements cpu.Hierarchy over the system hierarchy. It only
// translates latencies: completion scheduling lives in the core, which
// reuses pre-bound callbacks, so a timed access allocates nothing here.
// The hierarchy is captured directly (not reached through the System) so
// each access pays one interface dispatch, not a pointer chase plus one;
// the per-hierarchy variants below shave the second dispatch too.
type coreAdapter struct {
	hier hierarchy
}

var _ cpu.Hierarchy = (*coreAdapter)(nil)

func (a *coreAdapter) IFetch(core int, line mem.LineAddr, jump bool) (sim.Cycle, bool) {
	lat, hit := a.hier.ifetch(core, line, jump, true)
	return lat, hit && lat == 0
}

func (a *coreAdapter) Data(core int, addr mem.Addr, write, rwShared, independent, nonTemporal bool) (sim.Cycle, bool) {
	lat, hit := a.hier.data(core, addr, write, rwShared, nonTemporal, true)
	return lat, hit && lat == 0
}

// privateCoreAdapter and sharedCoreAdapter are coreAdapter specialized to
// a concrete hierarchy: the inner ifetch/data calls are direct, so the
// compiler devirtualizes what would otherwise be a second indirect call
// on every simulated access.
type privateCoreAdapter struct {
	hier *privateHierarchy
}

var _ cpu.Hierarchy = (*privateCoreAdapter)(nil)

func (a *privateCoreAdapter) IFetch(core int, line mem.LineAddr, jump bool) (sim.Cycle, bool) {
	lat, hit := a.hier.ifetch(core, line, jump, true)
	return lat, hit && lat == 0
}

func (a *privateCoreAdapter) Data(core int, addr mem.Addr, write, rwShared, independent, nonTemporal bool) (sim.Cycle, bool) {
	lat, hit := a.hier.data(core, addr, write, rwShared, nonTemporal, true)
	return lat, hit && lat == 0
}

type sharedCoreAdapter struct {
	hier *sharedHierarchy
}

var _ cpu.Hierarchy = (*sharedCoreAdapter)(nil)

func (a *sharedCoreAdapter) IFetch(core int, line mem.LineAddr, jump bool) (sim.Cycle, bool) {
	lat, hit := a.hier.ifetch(core, line, jump, true)
	return lat, hit && lat == 0
}

func (a *sharedCoreAdapter) Data(core int, addr mem.Addr, write, rwShared, independent, nonTemporal bool) (sim.Cycle, bool) {
	lat, hit := a.hier.data(core, addr, write, rwShared, nonTemporal, true)
	return lat, hit && lat == 0
}

// WarmFunctional streams instrPerCore instructions per core through the
// hierarchy with no timing, in round-robin chunks, bringing caches,
// directories and the DRAM cache to steady state (the reproduction's
// substitute for the paper's checkpoint-based warm-up).
func (s *System) WarmFunctional(instrPerCore int) {
	if s.started {
		panic("core: warm-up after timing start")
	}
	const chunk = 2000
	var op workload.Op
	for done := 0; done < instrPerCore; done += chunk {
		n := chunk
		if instrPerCore-done < n {
			n = instrPerCore - done
		}
		for c := 0; c < s.cfg.Cores; c++ {
			st := s.streams[c]
			for i := 0; i < n; i++ {
				st.Next(&op)
				if line := op.NewIFetchLine(); line != 0 {
					s.hier.ifetch(c, line, op.Jump(), false)
				}
				if op.IsMem() {
					s.hier.data(c, op.Addr(), op.Write(), op.RWShared(), op.NonTemporal(), false)
				}
			}
		}
	}
}

// Run starts the cores (if needed), runs warmCycles of timed warm-up, then
// measures for measureCycles and returns the window's metrics — the
// SMARTS-style scheme of paper Sec. VI-D.
func (s *System) Run(warmCycles, measureCycles sim.Cycle) Metrics {
	if !s.started {
		for _, c := range s.cores {
			c.Start()
		}
		s.started = true
	}
	s.engine.Run(s.engine.Now() + warmCycles)

	startStats := s.hier.stats()
	startRetired := make([]uint64, s.cfg.Cores)
	var startTotal uint64
	for i, c := range s.cores {
		startRetired[i] = c.Retired
		startTotal += c.Retired
	}

	s.engine.Run(s.engine.Now() + measureCycles)

	m := Metrics{
		Kind:           s.cfg.Kind,
		Cycles:         measureCycles,
		PerCoreRetired: make([]uint64, s.cfg.Cores),
		Stats:          s.hier.stats().sub(startStats),
	}
	for i, c := range s.cores {
		m.PerCoreRetired[i] = c.Retired - startRetired[i]
		m.Retired += m.PerCoreRetired[i]
	}
	return m
}

// CheckInvariants exposes hierarchy invariant checking to tests.
func (s *System) CheckInvariants() string { return s.hier.check() }

// LineTable reports the coherence line-table occupancy — live entries and
// inline bytes per slot — so scale probes can record the table regime
// they measured (the multi-GB paper-scale footprints the compact-slot
// stores target, DESIGN.md §8).
func (s *System) LineTable() (entries, bytesPerSlot int) { return s.hier.lineTable() }

// Prewarm seeds steady-state cache contents analytically: each core's
// cache-resident footprints (instructions, middle and secondary sets,
// shared pool) are replayed once through the functional access path,
// interleaved across cores in chunks so shared structures see realistic
// contention. Run this before WarmFunctional; together they substitute for
// the paper's warmed checkpoints.
func (s *System) Prewarm() {
	if s.started {
		panic("core: prewarm after timing start")
	}
	const chunk = 1024
	type emitter struct {
		addrs []mem.Addr
		instr []bool
		pos   int
	}
	ems := make([]*emitter, s.cfg.Cores)
	for c := 0; c < s.cfg.Cores; c++ {
		e := &emitter{}
		s.streams[c].Prewarm(func(addr mem.Addr, instr bool) {
			e.addrs = append(e.addrs, addr)
			e.instr = append(e.instr, instr)
		})
		ems[c] = e
	}
	for {
		remaining := false
		for c := 0; c < s.cfg.Cores; c++ {
			e := ems[c]
			end := e.pos + chunk
			if end > len(e.addrs) {
				end = len(e.addrs)
			}
			for ; e.pos < end; e.pos++ {
				if e.instr[e.pos] {
					s.hier.ifetch(c, e.addrs[e.pos].Line(), true, false)
				} else {
					s.hier.data(c, e.addrs[e.pos], false, false, false, false)
				}
			}
			if e.pos < len(e.addrs) {
				remaining = true
			}
		}
		if !remaining {
			break
		}
	}
}
