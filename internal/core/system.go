package core

import (
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/memctl"
	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/workload"
)

// hierarchy is the system-specific memory organization beneath the cores.
// Implementations handle both timed access (timing=true, returning the
// total latency) and functional warm-up (timing=false, mutating cache and
// coherence state only).
type hierarchy interface {
	// ifetch performs an instruction fetch. jump marks a non-sequential
	// transfer (sequential transitions are next-line-prefetched and only
	// maintain state). hit reports whether the access completed without
	// leaving the L1/L2.
	ifetch(core int, line mem.LineAddr, jump, timing bool) (lat sim.Cycle, hit bool)
	// data performs a load or store. nonTemporal fills go in at LRU
	// priority.
	data(core int, addr mem.Addr, write, rwShared, nonTemporal, timing bool) (lat sim.Cycle, hit bool)
	// stats returns the current counter values.
	stats() Stats
	// lineTable reports the coherence line-table occupancy: live entries
	// and the store's inline bytes per slot.
	lineTable() (entries, bytesPerSlot int)
	// check validates internal invariants, returning "" when healthy.
	check() string
	// snapshot/restore serialize the hierarchy's mutable state through
	// the per-component checkpoint seams (checkpoint.go, DESIGN.md §11).
	snapshot(w *checkpoint.Writer)
	restore(r *checkpoint.Reader) error
}

// System is one simulated machine: cores with workload streams over a
// hierarchy.
type System struct {
	cfg     Config
	engine  *sim.Engine
	mesh    *noc.Mesh
	mainMem *memctl.Memory
	hier    hierarchy
	cores   []*cpu.Core
	sources []workload.Source
	started bool
	// prefetch opts the timed phase into the home-slot batch prefetcher
	// (EnablePrefetch); off by default — see the method comment.
	prefetch bool
	// producers feed the cores' SPSC op rings during the timed phase when
	// cfg.GenThreads > 0; nil on the synchronous path. Owned by startCores,
	// released by Close.
	producers *workload.ProducerSet
}

// NewSystem builds a system running the given per-core workloads. specs
// must contain either one spec (replicated to all cores) or exactly one
// per core.
func NewSystem(cfg Config, specs []workload.Spec) *System {
	cfg.Validate()
	perCore := make([]workload.Spec, cfg.Cores)
	switch len(specs) {
	case 1:
		for i := range perCore {
			perCore[i] = specs[0]
		}
	case cfg.Cores:
		copy(perCore, specs)
	default:
		panic(fmt.Sprintf("core: %d specs for %d cores", len(specs), cfg.Cores))
	}
	sources := make([]workload.Source, cfg.Cores)
	for c := 0; c < cfg.Cores; c++ {
		sources[c] = workload.NewStream(perCore[c], c, cfg.Cores, cfg.Scale, cfg.Seed)
	}
	return NewSystemFromSources(cfg, sources)
}

// NewSystemFromSources builds a system over pre-built per-core op
// sources — the scenario path (DESIGN.md §14): internal/scenario
// compiles a spec file's clients into phased streams, trace replays and
// sharing-group bindings, then hands exactly cfg.Cores sources here.
// NewSystem is this constructor with one synthetic Stream per core.
func NewSystemFromSources(cfg Config, sources []workload.Source) *System {
	cfg.Validate()
	if len(sources) != cfg.Cores {
		panic(fmt.Sprintf("core: %d sources for %d cores", len(sources), cfg.Cores))
	}

	engine := sim.NewEngine()
	w, h := meshDims(cfg.Cores)
	mesh := noc.New(w, h, cfg.HopLatency)
	mainMem := memctl.New(engine, cfg.Memory)

	s := &System{
		cfg:     cfg,
		engine:  engine,
		mesh:    mesh,
		mainMem: mainMem,
	}
	switch cfg.Kind {
	case Baseline, BaselineDRAM, VaultsShared:
		s.hier = newSharedHierarchy(s)
	case SILO, SILOCO:
		s.hier = newPrivateHierarchy(s)
	}

	s.sources = sources
	s.cores = make([]*cpu.Core, cfg.Cores)
	for c := 0; c < cfg.Cores; c++ {
		s.cores[c] = cpu.New(engine, c, cpu.DefaultConfig(), s.sources[c], newCoreAdapter(s.hier))
	}
	return s
}

// newCoreAdapter picks the concrete adapter for the hierarchy so the
// adapter's inner call is direct (devirtualized): each access then pays
// one interface dispatch (core -> adapter), not two.
func newCoreAdapter(h hierarchy) cpu.Hierarchy {
	switch h := h.(type) {
	case *privateHierarchy:
		return &privateCoreAdapter{hier: h}
	case *sharedHierarchy:
		return &sharedCoreAdapter{hier: h}
	default:
		return &coreAdapter{hier: h}
	}
}

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// Engine exposes the simulation engine (examples and tests).
func (s *System) Engine() *sim.Engine { return s.engine }

// coreAdapter implements cpu.Hierarchy over the system hierarchy. It only
// translates latencies: completion scheduling lives in the core, which
// reuses pre-bound callbacks, so a timed access allocates nothing here.
// The hierarchy is captured directly (not reached through the System) so
// each access pays one interface dispatch, not a pointer chase plus one;
// the per-hierarchy variants below shave the second dispatch too.
type coreAdapter struct {
	hier hierarchy
}

var _ cpu.Hierarchy = (*coreAdapter)(nil)

func (a *coreAdapter) IFetch(core int, line mem.LineAddr, jump bool) (sim.Cycle, bool) {
	lat, hit := a.hier.ifetch(core, line, jump, true)
	return lat, hit && lat == 0
}

func (a *coreAdapter) Data(core int, addr mem.Addr, write, rwShared, independent, nonTemporal bool) (sim.Cycle, bool) {
	lat, hit := a.hier.data(core, addr, write, rwShared, nonTemporal, true)
	return lat, hit && lat == 0
}

// privateCoreAdapter and sharedCoreAdapter are coreAdapter specialized to
// a concrete hierarchy: the inner ifetch/data calls are direct, so the
// compiler devirtualizes what would otherwise be a second indirect call
// on every simulated access.
type privateCoreAdapter struct {
	hier *privateHierarchy
	// pfSink accumulates the slot words PrefetchBatch reads so the
	// compiler cannot eliminate the warming loads. Per-adapter (one
	// adapter per core), so concurrent grid cells never share it.
	pfSink uint64
}

var _ cpu.Hierarchy = (*privateCoreAdapter)(nil)
var _ cpu.BatchPrefetcher = (*privateCoreAdapter)(nil)

// PrefetchBatch warms the directory's home slots for the batch's memory
// ops (the coherence-store prefetch satellite, DESIGN.md §12): by the
// time the issue loop probes the directory, the slot's cache line is
// already in flight. Host-side only — no simulated state changes.
func (a *privateCoreAdapter) PrefetchBatch(_ int, ops []workload.Op) {
	sink := a.pfSink
	for i := range ops {
		if op := &ops[i]; op.IsMem() {
			sink ^= a.hier.dir.PrefetchLine(op.Addr().Line())
		}
	}
	a.pfSink = sink
}

func (a *privateCoreAdapter) IFetch(core int, line mem.LineAddr, jump bool) (sim.Cycle, bool) {
	lat, hit := a.hier.ifetch(core, line, jump, true)
	return lat, hit && lat == 0
}

func (a *privateCoreAdapter) Data(core int, addr mem.Addr, write, rwShared, independent, nonTemporal bool) (sim.Cycle, bool) {
	lat, hit := a.hier.data(core, addr, write, rwShared, nonTemporal, true)
	return lat, hit && lat == 0
}

type sharedCoreAdapter struct {
	hier   *sharedHierarchy
	pfSink uint64 // see privateCoreAdapter.pfSink
}

var _ cpu.Hierarchy = (*sharedCoreAdapter)(nil)
var _ cpu.BatchPrefetcher = (*sharedCoreAdapter)(nil)

// PrefetchBatch warms the snoop filter's home slots for the batch's
// memory ops (see privateCoreAdapter.PrefetchBatch).
func (a *sharedCoreAdapter) PrefetchBatch(_ int, ops []workload.Op) {
	sink := a.pfSink
	for i := range ops {
		if op := &ops[i]; op.IsMem() {
			sink ^= a.hier.snoop.PrefetchLine(op.Addr().Line())
		}
	}
	a.pfSink = sink
}

func (a *sharedCoreAdapter) IFetch(core int, line mem.LineAddr, jump bool) (sim.Cycle, bool) {
	lat, hit := a.hier.ifetch(core, line, jump, true)
	return lat, hit && lat == 0
}

func (a *sharedCoreAdapter) Data(core int, addr mem.Addr, write, rwShared, independent, nonTemporal bool) (sim.Cycle, bool) {
	lat, hit := a.hier.data(core, addr, write, rwShared, nonTemporal, true)
	return lat, hit && lat == 0
}

// warmChunk is the per-core instruction granule of the functional warm-up
// round-robin: big enough to amortize generation, small enough that
// shared structures see realistic cross-core interleaving.
const warmChunk = 2000

// WarmFunctional streams instrPerCore instructions per core through the
// hierarchy with no timing, in round-robin chunks, bringing caches,
// directories and the DRAM cache to steady state (the reproduction's
// substitute for the paper's checkpoint-based warm-up). With
// cfg.GenThreads > 0 the op streams are generated by producer goroutines
// and consumed off per-core rings — same ops, same interleave, same final
// state (the determinism contract, DESIGN.md §12), but the dominant
// generation cost overlaps the hierarchy walks.
func (s *System) WarmFunctional(instrPerCore int) {
	if s.started {
		panic("core: warm-up after timing start")
	}
	if s.cfg.GenThreads > 0 {
		s.warmRing(instrPerCore)
		return
	}
	var op workload.Op
	for done := 0; done < instrPerCore; done += warmChunk {
		n := warmChunk
		if instrPerCore-done < n {
			n = instrPerCore - done
		}
		for c := 0; c < s.cfg.Cores; c++ {
			st := s.sources[c]
			for i := 0; i < n; i++ {
				st.Next(&op)
				s.warmOne(c, &op)
			}
		}
	}
}

// warmOne replays one op through the functional access path.
func (s *System) warmOne(c int, op *workload.Op) {
	if line := op.NewIFetchLine(); line != 0 {
		s.hier.ifetch(c, line, op.Jump(), false)
	}
	if op.IsMem() {
		s.hier.data(c, op.Addr(), op.Write(), op.RWShared(), op.NonTemporal(), false)
	}
}

// warmRing is WarmFunctional's off-thread path: budgeted producers
// (exactly instrPerCore ops per stream) feed per-core rings while this
// goroutine walks the hierarchy in the same per-core chunk interleave as
// the synchronous loop. The producers are joined before returning, and
// the drain assertion pins the checkpoint rule: every ring is quiescent
// and every stream sits exactly instrPerCore ops in, so warm state cut
// here is identical to the synchronous path's.
func (s *System) warmRing(instrPerCore int) {
	ps := workload.StartProducers(s.sources, s.cfg.GenThreads, int64(instrPerCore))
	cur := make([][]workload.Op, s.cfg.Cores)
	for done := 0; done < instrPerCore; done += warmChunk {
		n := warmChunk
		if instrPerCore-done < n {
			n = instrPerCore - done
		}
		for c := 0; c < s.cfg.Cores; c++ {
			for i := 0; i < n; i++ {
				if len(cur[c]) == 0 {
					cur[c] = ps.Ring(c).NextBlock()
				}
				s.warmOne(c, &cur[c][0])
				cur[c] = cur[c][1:]
			}
		}
	}
	for c := 0; c < s.cfg.Cores; c++ {
		if len(cur[c]) != 0 || !ps.Ring(c).Drained() {
			panic("core: ring warm-up consumer and producers disagree on the op budget")
		}
	}
	ps.Wait()
	ps.Close()
}

// prefetchMinTableBytes gates the coherence home-slot prefetch on the
// line-table footprint at timing start: under it the table lives in the
// host LLC and the extra prefetch work is pure overhead.
const prefetchMinTableBytes = 16 << 20

// EnablePrefetch opts the system into the coherence home-slot batch
// prefetcher at timing start, still subject to the footprint gate. It is
// opt-in rather than a default because measured at Scale 4 on the dev
// host (line table ~30 MB, well past the gate) it *regressed* throughput
// by 10-15%: Go has no non-binding prefetch hint, so PrefetchBatch's
// demand loads serialize at refill and the quotMix hashing outweighs the
// memory-level-parallelism win. The mechanism stays bit-identical
// (TestPrefetchBitIdentical) for hosts where the trade flips.
func (s *System) EnablePrefetch() { s.prefetch = true }

// startCores transitions the system into the timed phase: unbudgeted
// producers and per-core rings when cfg.GenThreads > 0, the home-slot
// prefetcher when opted in and the (post-warm-up) line table outgrows the
// host caches, then the cores themselves. Idempotent; shared by Run and
// StreamWindows.
func (s *System) startCores() {
	if s.started {
		return
	}
	if s.cfg.GenThreads > 0 {
		s.producers = workload.StartProducers(s.sources, s.cfg.GenThreads, -1)
		for i, c := range s.cores {
			c.AttachRing(s.producers.Ring(i))
		}
	}
	if entries, bytesPerSlot := s.hier.lineTable(); s.prefetch &&
		int64(entries)*int64(bytesPerSlot) >= prefetchMinTableBytes {
		for _, c := range s.cores {
			c.EnablePrefetch()
		}
	}
	for _, c := range s.cores {
		c.Start()
	}
	s.started = true
}

// Close stops the producer goroutines started by startCores (no-op on the
// synchronous path; idempotent). Call it when done with a GenThreads > 0
// system — from the consuming goroutine, never concurrently with Run.
func (s *System) Close() {
	if s.producers != nil {
		s.producers.Close()
		s.producers = nil
	}
}

// Run starts the cores (if needed), runs warmCycles of timed warm-up, then
// measures for measureCycles and returns the window's metrics — the
// SMARTS-style scheme of paper Sec. VI-D.
func (s *System) Run(warmCycles, measureCycles sim.Cycle) Metrics {
	s.startCores()
	s.engine.Run(s.engine.Now() + warmCycles)

	startStats := s.hier.stats()
	startRetired := make([]uint64, s.cfg.Cores)
	var startTotal uint64
	for i, c := range s.cores {
		startRetired[i] = c.Retired
		startTotal += c.Retired
	}

	s.engine.Run(s.engine.Now() + measureCycles)

	m := Metrics{
		Kind:           s.cfg.Kind,
		Cycles:         measureCycles,
		PerCoreRetired: make([]uint64, s.cfg.Cores),
		Stats:          s.hier.stats().sub(startStats),
	}
	for i, c := range s.cores {
		m.PerCoreRetired[i] = c.Retired - startRetired[i]
		m.Retired += m.PerCoreRetired[i]
	}
	return m
}

// CheckInvariants exposes hierarchy invariant checking to tests.
func (s *System) CheckInvariants() string { return s.hier.check() }

// LineTable reports the coherence line-table occupancy — live entries and
// inline bytes per slot — so scale probes can record the table regime
// they measured (the multi-GB paper-scale footprints the compact-slot
// stores target, DESIGN.md §8).
func (s *System) LineTable() (entries, bytesPerSlot int) { return s.hier.lineTable() }

// Prewarm seeds steady-state cache contents analytically: each core's
// cache-resident footprints (instructions, middle and secondary sets,
// shared pool) are replayed once through the functional access path,
// interleaved across cores in chunks so shared structures see realistic
// contention. Run this before WarmFunctional; together they substitute for
// the paper's warmed checkpoints.
func (s *System) Prewarm() {
	if s.started {
		panic("core: prewarm after timing start")
	}
	const chunk = 1024
	type emitter struct {
		addrs []mem.Addr
		instr []bool
		pos   int
	}
	ems := make([]*emitter, s.cfg.Cores)
	for c := 0; c < s.cfg.Cores; c++ {
		e := &emitter{}
		s.sources[c].Prewarm(func(addr mem.Addr, instr bool) {
			e.addrs = append(e.addrs, addr)
			e.instr = append(e.instr, instr)
		})
		ems[c] = e
	}
	for {
		remaining := false
		for c := 0; c < s.cfg.Cores; c++ {
			e := ems[c]
			end := e.pos + chunk
			if end > len(e.addrs) {
				end = len(e.addrs)
			}
			for ; e.pos < end; e.pos++ {
				if e.instr[e.pos] {
					s.hier.ifetch(c, e.addrs[e.pos].Line(), true, false)
				} else {
					s.hier.data(c, e.addrs[e.pos], false, false, false, false)
				}
			}
			if e.pos < len(e.addrs) {
				remaining = true
			}
		}
		if !remaining {
			break
		}
	}
}
