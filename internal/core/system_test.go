package core

import (
	"testing"

	simc "repro/internal/sim"
	"repro/internal/workload"
)

// quick builds a small, fast system for unit testing: 4 cores, heavy scale.
func quickConfig(kind Kind) Config {
	var c Config
	switch kind {
	case Baseline:
		c = BaselineConfig(4)
	case BaselineDRAM:
		c = BaselineDRAMConfig(4)
	case SILO:
		c = SILOConfig(4)
	case SILOCO:
		c = SILOCOConfig(4)
	case VaultsShared:
		c = VaultsSharedConfig(4)
	}
	c.Scale = 64
	return c
}

func allKinds() []Kind {
	return []Kind{Baseline, BaselineDRAM, SILO, SILOCO, VaultsShared}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		Baseline: "Baseline", BaselineDRAM: "Baseline+DRAM$", SILO: "SILO",
		SILOCO: "SILO-CO", VaultsShared: "Vaults-Sh",
	}
	for k, w := range want {
		if k.String() != w {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), w)
		}
	}
	if !SILO.Private() || !SILOCO.Private() || Baseline.Private() || VaultsShared.Private() {
		t.Error("Private() misclassifies")
	}
}

func TestConfigValidation(t *testing.T) {
	good := BaselineConfig(16)
	good.Validate()
	bad := []func() Config{
		func() Config { c := BaselineConfig(16); c.Cores = 0; return c },
		func() Config { c := BaselineConfig(16); c.Scale = 0; return c },
		func() Config { c := BaselineConfig(16); c.LLCSize = 0; return c },
		func() Config { c := SILOConfig(16); c.VaultCapacity = 0; return c },
		func() Config { c := BaselineDRAMConfig(16); c.DRAMCache.SizeBytes = 0; return c },
		func() Config { c := BaselineConfig(16); c.RWSharedMult = 0; return c },
	}
	for i, mk := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			c := mk()
			c.Validate()
		}()
	}
}

func TestMeshDims(t *testing.T) {
	cases := map[int][2]int{1: {1, 1}, 2: {2, 1}, 4: {2, 2}, 8: {4, 2}, 16: {4, 4}, 32: {8, 4}}
	for cores, want := range cases {
		w, h := meshDims(cores)
		if w != want[0] || h != want[1] {
			t.Errorf("meshDims(%d) = %dx%d, want %dx%d", cores, w, h, want[0], want[1])
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unsupported core count")
		}
	}()
	meshDims(7)
}

func TestScaledPow2(t *testing.T) {
	cases := []struct {
		bytes, scale, want int64
	}{
		{8 << 20, 16, 512 << 10},
		{256 << 20, 16, 16 << 20},
		{512 << 10, 16, 32 << 10},
		{8 << 30, 16, 512 << 20},
		{64 << 10, 16, 4096}, // clamped to the floor
	}
	for _, c := range cases {
		if got := scaledPow2(c.bytes, c.scale); got != c.want {
			t.Errorf("scaledPow2(%d,%d) = %d, want %d", c.bytes, c.scale, got, c.want)
		}
	}
}

func TestAllSystemsRunAndRetire(t *testing.T) {
	for _, kind := range allKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			sys := NewSystem(quickConfig(kind), []workload.Spec{workload.WebSearch()})
			sys.WarmFunctional(20000)
			m := sys.Run(2000, 10000)
			if m.Retired == 0 {
				t.Fatal("no instructions retired")
			}
			if m.IPC() <= 0 || m.IPC() > 3*4 {
				t.Fatalf("implausible aggregate IPC %v", m.IPC())
			}
			for c := 0; c < 4; c++ {
				if m.PerCoreRetired[c] == 0 {
					t.Fatalf("core %d retired nothing", c)
				}
			}
			if msg := sys.CheckInvariants(); msg != "" {
				t.Fatalf("invariant violated: %s", msg)
			}
		})
	}
}

// Conservation: hits + misses = LLC accesses for every system.
func TestAccessConservation(t *testing.T) {
	for _, kind := range allKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			sys := NewSystem(quickConfig(kind), []workload.Spec{workload.DataServing()})
			sys.WarmFunctional(20000)
			m := sys.Run(2000, 10000)
			s := m.Stats
			if s.LocalHits+s.RemoteHits+s.Misses != s.LLCAccesses {
				t.Fatalf("hits(%d+%d)+misses(%d) != accesses(%d)",
					s.LocalHits, s.RemoteHits, s.Misses, s.LLCAccesses)
			}
			if s.Reads+s.WritesPrivate+s.WritesRWShared != s.LLCAccesses {
				t.Fatalf("type breakdown %d+%d+%d != accesses %d",
					s.Reads, s.WritesPrivate, s.WritesRWShared, s.LLCAccesses)
			}
		})
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	for _, kind := range []Kind{Baseline, SILO} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			run := func() Metrics {
				sys := NewSystem(quickConfig(kind), []workload.Spec{workload.SATSolver()})
				sys.WarmFunctional(20000)
				return sys.Run(2000, 10000)
			}
			a, b := run(), run()
			if a.Retired != b.Retired || a.Stats != b.Stats {
				t.Fatalf("nondeterministic: %+v vs %+v", a, b)
			}
		})
	}
}

// Shared-LLC systems report no remote hits; SILO on a sharing workload
// reports some.
func TestHitLocality(t *testing.T) {
	base := NewSystem(quickConfig(Baseline), []workload.Spec{workload.DataServing()})
	base.WarmFunctional(20000)
	mb := base.Run(2000, 10000)
	if mb.Stats.RemoteHits != 0 {
		t.Fatalf("baseline reported %d remote hits", mb.Stats.RemoteHits)
	}
	silo := NewSystem(quickConfig(SILO), []workload.Spec{workload.DataServing()})
	silo.WarmFunctional(200000)
	ms := silo.Run(2000, 10000)
	if ms.Stats.RemoteHits == 0 {
		t.Fatal("SILO on Data Serving should see remote vault hits")
	}
	if ms.Stats.LocalHits <= ms.Stats.RemoteHits {
		t.Fatal("local hits should dominate remote hits")
	}
}

// SILO's private vaults capture the secondary working set that the 8MB
// shared LLC cannot: its miss count must be lower and its IPC higher.
func TestSILOBeatsBaselineOnScaleOut(t *testing.T) {
	run := func(kind Kind) Metrics {
		sys := NewSystem(quickConfig(kind), []workload.Spec{workload.SATSolver()})
		sys.Prewarm()
		sys.WarmFunctional(100000)
		return sys.Run(5000, 30000)
	}
	mb, ms := run(Baseline), run(SILO)
	if ms.IPC() <= mb.IPC() {
		t.Fatalf("SILO IPC %.3f should beat baseline %.3f", ms.IPC(), mb.IPC())
	}
	if ms.MissRate() >= mb.MissRate() {
		t.Fatalf("SILO miss rate %.3f should be below baseline %.3f", ms.MissRate(), mb.MissRate())
	}
}

// The ideal optimizations can only help.
func TestOptimizationsDoNotHurt(t *testing.T) {
	run := func(mp, dc bool) Metrics {
		cfg := quickConfig(SILO)
		cfg.LocalMissPredictor = mp
		cfg.DirectoryCache = dc
		sys := NewSystem(cfg, []workload.Spec{workload.DataServing()})
		sys.WarmFunctional(30000)
		return sys.Run(2000, 20000)
	}
	noOpt := run(false, false)
	both := run(true, true)
	if both.IPC() < noOpt.IPC()*0.995 {
		t.Fatalf("ideal optimizations reduced IPC: %.4f -> %.4f", noOpt.IPC(), both.IPC())
	}
}

// Raising the shared-LLC latency must not raise throughput.
func TestLLCLatencySensitivity(t *testing.T) {
	run := func(extra int) float64 {
		cfg := quickConfig(Baseline)
		cfg.LLCExtraLatency = simc.Cycle(extra)
		sys := NewSystem(cfg, []workload.Spec{workload.WebSearch()})
		sys.WarmFunctional(30000)
		return sys.Run(2000, 20000).IPC()
	}
	fast, slow := run(0), run(23)
	if slow >= fast {
		t.Fatalf("doubling LLC latency should cost performance: %.3f -> %.3f", fast, slow)
	}
}

// Mixed workloads: each core can run a different spec.
func TestPerCoreWorkloads(t *testing.T) {
	specs := []workload.Spec{
		workload.Spec2006("mcf"),
		workload.Spec2006("gamess"),
		workload.Spec2006("lbm"),
		workload.Spec2006("povray"),
	}
	sys := NewSystem(quickConfig(SILO), specs)
	sys.WarmFunctional(20000)
	m := sys.Run(2000, 10000)
	// gamess (compute-bound) should retire more than mcf (memory-bound).
	if m.PerCoreRetired[1] <= m.PerCoreRetired[0] {
		t.Fatalf("compute-bound core (%d) should outpace memory-bound (%d)",
			m.PerCoreRetired[1], m.PerCoreRetired[0])
	}
}

func TestSpecCountMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSystem(quickConfig(SILO), []workload.Spec{workload.WebSearch(), workload.DataServing()})
}

func TestMetricsHelpers(t *testing.T) {
	m := Metrics{
		Cycles:         1000,
		Retired:        3000,
		PerCoreRetired: []uint64{1000, 2000},
		Stats:          Stats{LLCAccesses: 100, LocalHits: 60, RemoteHits: 10, Misses: 30},
	}
	if m.IPC() != 3.0 {
		t.Fatalf("IPC = %v", m.IPC())
	}
	if m.CoreIPC(1) != 2.0 {
		t.Fatalf("CoreIPC = %v", m.CoreIPC(1))
	}
	if m.RangeIPC(0, 1) != 1.0 {
		t.Fatalf("RangeIPC = %v", m.RangeIPC(0, 1))
	}
	if m.LLCHitRate() != 0.7 || m.MissRate() != 0.3 {
		t.Fatalf("hit/miss rates wrong: %v %v", m.LLCHitRate(), m.MissRate())
	}
	var zero Metrics
	if zero.IPC() != 0 || zero.LLCHitRate() != 0 || zero.MissRate() != 0 {
		t.Fatal("zero metrics should not divide by zero")
	}
}
