package core

import (
	"repro/internal/sim"
	"repro/internal/stats"
)

// Streamed per-window measurement (DESIGN.md §9). The historical pattern —
// call Run once per window, retain every Metrics, post-process at the end —
// keeps O(windows) state, which paper-scale sweeps with thousands of
// windows cannot afford. WindowStream replaces it with incremental
// emission: each window's Metrics is derived from the cumulative counters
// through a stats.WindowEmitter (exact uint64 subtraction, so the stream
// is bit-identical to back-to-back Run calls), per-window summaries
// accumulate online (Welford, O(1) per metric), and the Metrics handed to
// the caller reuses one buffer, so memory stays constant no matter how
// many windows stream through.

// statNames is the fixed flattening order of the Stats counters for
// streaming — appendCounters and statsFromDeltas must agree with it.
var statNames = []string{
	"llc_accesses", "local_hits", "remote_hits", "misses",
	"reads", "writes_private", "writes_rw_shared",
	"mem_accesses", "mem_writebacks", "vault_accesses", "dram_cache_hits",
	"invalidations", "forwards", "dir_accesses", "upgrades",
}

// appendCounters appends the counters in statNames order.
func (s *Stats) appendCounters(buf []uint64) []uint64 {
	return append(buf,
		s.LLCAccesses, s.LocalHits, s.RemoteHits, s.Misses,
		s.Reads, s.WritesPrivate, s.WritesRWShared,
		s.MemAccesses, s.MemWritebacks, s.VaultAccesses, s.DRAMCacheHits,
		s.Invalidations, s.Forwards, s.DirAccesses, s.Upgrades)
}

// statsFromDeltas is the inverse of appendCounters over a delta slice.
func statsFromDeltas(d []uint64) Stats {
	return Stats{
		LLCAccesses: d[0], LocalHits: d[1], RemoteHits: d[2], Misses: d[3],
		Reads: d[4], WritesPrivate: d[5], WritesRWShared: d[6],
		MemAccesses: d[7], MemWritebacks: d[8], VaultAccesses: d[9], DRAMCacheHits: d[10],
		Invalidations: d[11], Forwards: d[12], DirAccesses: d[13], Upgrades: d[14],
	}
}

// WindowStream measures consecutive fixed-length windows on a System,
// emitting each window's Metrics incrementally.
type WindowStream struct {
	sys    *System
	window sim.Cycle
	em     *stats.WindowEmitter
	ipc    stats.Welford
	cum    []uint64 // reusable cumulative-counter buffer
	m      Metrics  // reused result; PerCoreRetired backing reused too
}

// StreamWindows starts the system's cores (if needed), runs warmCycles of
// timed warm-up, and returns a stream primed at the post-warm-up counter
// state: the first Next measures the first window after warm-up, exactly
// like Run(warmCycles, window) would.
func (s *System) StreamWindows(warmCycles, window sim.Cycle) *WindowStream {
	if window <= 0 {
		panic("core: non-positive window length")
	}
	s.startCores()
	s.engine.Run(s.engine.Now() + warmCycles)

	names := make([]string, 0, len(statNames)+s.cfg.Cores)
	names = append(names, statNames...)
	for range s.cores {
		names = append(names, "retired")
	}
	ws := &WindowStream{
		sys:    s,
		window: window,
		em:     stats.NewWindowEmitter(names...),
		cum:    make([]uint64, 0, len(names)),
		m: Metrics{
			Kind:           s.cfg.Kind,
			Cycles:         window,
			PerCoreRetired: make([]uint64, s.cfg.Cores),
		},
	}
	ws.em.Prime(ws.cumulative())
	return ws
}

// cumulative flattens the current counter state into the reusable buffer:
// the Stats counters in statNames order, then per-core retired counts.
func (ws *WindowStream) cumulative() []uint64 {
	st := ws.sys.hier.stats()
	ws.cum = st.appendCounters(ws.cum[:0])
	for _, c := range ws.sys.cores {
		ws.cum = append(ws.cum, c.Retired)
	}
	return ws.cum
}

// Next runs one more window and returns its Metrics. The returned value
// (including its PerCoreRetired slice) is reused by the following Next —
// callers that retain windows must copy, but the whole point is not to:
// fold what you need into accumulators and move on. Aside from the
// simulation itself, the emit path allocates nothing.
func (ws *WindowStream) Next() *Metrics {
	e := ws.sys.engine
	e.Run(e.Now() + ws.window)
	return ws.emit()
}

// emit converts the current cumulative counters into the just-finished
// window's Metrics and folds the per-window summaries forward.
func (ws *WindowStream) emit() *Metrics {
	delta := ws.em.Emit(ws.cumulative())
	ws.m.Stats = statsFromDeltas(delta)
	ws.m.Retired = 0
	for i := range ws.m.PerCoreRetired {
		r := delta[len(statNames)+i]
		ws.m.PerCoreRetired[i] = r
		ws.m.Retired += r
	}
	ws.ipc.Add(ws.m.IPC())
	return &ws.m
}

// Windows returns the number of windows measured so far.
func (ws *WindowStream) Windows() uint64 { return ws.em.Windows() }

// IPC returns the online accumulator of per-window aggregate IPC — mean,
// variance, extrema and t-based confidence intervals over the windows
// streamed so far.
func (ws *WindowStream) IPC() *stats.Welford { return &ws.ipc }

// CounterNames returns the streamed metric names in emitter order: the
// Stats counters, then one "retired" entry per core.
func (ws *WindowStream) CounterNames() []string {
	names := make([]string, ws.em.Metrics())
	for i := range names {
		names[i] = ws.em.Name(i)
	}
	return names
}

// Counter returns the per-window accumulator of the i-th streamed metric
// (CounterNames order).
func (ws *WindowStream) Counter(i int) *stats.Welford { return ws.em.Acc(i) }
