package core

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// fig10Cell builds one warmed cell of the Fig 10 grid (quick-mode
// parameters: Scale 32, 300K functional warm-up instructions per core) so
// the streamed-window differential runs against exactly the measurement
// the figure runners perform.
func fig10Cell(cfg Config) *System {
	cfg.Scale = 32
	sys := NewSystem(cfg, []workload.Spec{workload.WebSearch()})
	sys.Prewarm()
	sys.WarmFunctional(300_000)
	return sys
}

// The streamed-window contract (DESIGN.md §9): WindowStream's per-window
// Metrics are bit-identical — every counter, every per-core retired
// count — to the historical snapshot-subtract path (back-to-back Run
// calls) on the same deterministic system. Both hierarchy families are
// covered: SILO (private vaults + directory) and Baseline (shared NUCA).
func TestWindowStreamMatchesSnapshotSubtractFig10(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	const (
		warm    sim.Cycle = 20_000
		window  sim.Cycle = 10_000
		windows           = 6
	)
	for _, cfg := range []Config{SILOConfig(16), BaselineConfig(16)} {
		t.Run(cfg.Kind.String(), func(t *testing.T) {
			// Reference: the snapshot-subtract path, one Run per window.
			ref := fig10Cell(cfg)
			var want []Metrics
			var wantIPC stats.Welford
			for w := 0; w < windows; w++ {
				wc := sim.Cycle(0)
				if w == 0 {
					wc = warm
				}
				m := ref.Run(wc, window)
				want = append(want, m)
				wantIPC.Add(m.IPC())
			}

			// Streamed: same deterministic system, incremental emission.
			ws := fig10Cell(cfg).StreamWindows(warm, window)
			for w := 0; w < windows; w++ {
				got := ws.Next()
				if got.Kind != want[w].Kind || got.Cycles != want[w].Cycles ||
					got.Retired != want[w].Retired || got.Stats != want[w].Stats {
					t.Fatalf("window %d diverged:\nstreamed %+v\nsnapshot %+v", w, *got, want[w])
				}
				for c := range got.PerCoreRetired {
					if got.PerCoreRetired[c] != want[w].PerCoreRetired[c] {
						t.Fatalf("window %d core %d retired: streamed %d, snapshot %d",
							w, c, got.PerCoreRetired[c], want[w].PerCoreRetired[c])
					}
				}
			}
			if ws.Windows() != windows {
				t.Fatalf("Windows() = %d, want %d", ws.Windows(), windows)
			}
			// The online IPC summary saw exactly the reference windows, in
			// order, so it is bitwise equal to a reference accumulator.
			ipc := ws.IPC()
			if ipc.N() != wantIPC.N() || ipc.Mean() != wantIPC.Mean() ||
				ipc.Variance() != wantIPC.Variance() ||
				ipc.Min() != wantIPC.Min() || ipc.Max() != wantIPC.Max() {
				t.Fatalf("IPC accumulator diverged: %+v vs %+v", *ipc, wantIPC)
			}
		})
	}
}

// The emit path — counter flattening, delta emission, Metrics assembly,
// summary accumulation — must not allocate: a paper-scale sweep emits it
// once per window, forever. (The simulation that advances the window has
// its own small steady-state allocation budget; this isolates emission.)
func TestWindowStreamEmitAllocsZero(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	cfg := SILOConfig(16)
	cfg.Scale = 32
	sys := NewSystem(cfg, []workload.Spec{workload.WebSearch()})
	sys.Prewarm()
	sys.WarmFunctional(50_000)
	ws := sys.StreamWindows(1000, 1000)
	ws.Next() // one real window so every counter is live
	// Re-emitting without advancing the engine produces all-zero windows
	// through the identical code path.
	allocs := testing.AllocsPerRun(500, func() { ws.emit() })
	if allocs != 0 {
		t.Fatalf("emit path allocates %v per window, want 0", allocs)
	}
}

// Degenerate windows must fail loudly.
func TestWindowStreamPanicsOnBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on window <= 0")
		}
	}()
	cfg := SILOConfig(16)
	cfg.Scale = 32
	sys := NewSystem(cfg, []workload.Spec{workload.WebSearch()})
	sys.StreamWindows(0, 0)
}
