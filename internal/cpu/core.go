// Package cpu models the processor cores: 3-wide out-of-order engines with
// a 128-entry ROB (paper Table II), approximated at the level the
// evaluation depends on. What the paper's experiments measure is how LLC
// hit latency and hit rate translate into stalls, which is governed by:
//
//   - issue width: instruction runs between misses retire at Width per cycle;
//   - memory-level parallelism: an L1-D miss blocks the core only when the
//     next instruction depends on it or the MLP window is full — server
//     workloads' low MLP (paper Sec. II-B) makes LLC latency visible;
//   - frontend stalls: instruction-fetch misses are always blocking.
//
// Compute work preceding a blocking miss is charged before the block, and
// independent misses overlap freely within the MLP window, which is the
// interval-model approximation of an OoO window.
package cpu

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Hierarchy is the memory system as seen by one core. Implementations
// return the access latency and sync=true when the access completed
// synchronously (an L1 hit); otherwise the core schedules its own
// completion lat cycles out. Returning a latency instead of taking a
// completion callback keeps the hot path allocation-free: the core reuses
// one pre-bound callback per completion kind rather than closing over
// per-access state.
type Hierarchy interface {
	// IFetch performs an instruction fetch of the given line. jump marks a
	// non-sequential control transfer; sequential line transitions are
	// covered by the next-line prefetcher and should complete
	// synchronously.
	IFetch(core int, line mem.LineAddr, jump bool) (lat sim.Cycle, sync bool)
	// Data performs a data access. nonTemporal marks streaming
	// accesses whose fills should not displace reused lines.
	Data(core int, addr mem.Addr, write, rwShared, independent, nonTemporal bool) (lat sim.Cycle, sync bool)
}

// Config shapes the core model.
type Config struct {
	Width int // retire width (paper: 3)
	// Burst bounds the instructions executed per scheduling quantum so the
	// clock advances even on all-hit streams.
	Burst int
}

// DefaultConfig is the paper's core at a practical quantum size.
func DefaultConfig() Config { return Config{Width: 3, Burst: 48} }

// opBatch is the number of ops a core pre-generates per stream refill.
// One refill runs the trace generator's RNG/threshold chain back to back
// — the generator state crosses memory once per batch, not once per op —
// while the buffer stays small enough (16 ops x 16 B = 4 cache lines,
// reused every refill) to live in the L1 permanently; a larger batch
// measurably evicts the simulator's own hot arrays on every quantum.
const opBatch = 16

// BatchPrefetcher is implemented by hierarchies that can warm their home
// slots for a batch of upcoming ops (the coherence-store home-slot
// prefetch, DESIGN.md §12): the core hands over each freshly refilled
// batch before issuing it, so the store's hash-home cache lines are in
// flight while the preceding ops execute. Purely a host-side hint — it
// must not change simulated state.
type BatchPrefetcher interface {
	PrefetchBatch(core int, ops []workload.Op)
}

// Core drives one workload op source through the hierarchy.
type Core struct {
	ID     int
	cfg    Config
	engine *sim.Engine
	stream workload.Source
	path   Hierarchy
	ring   *workload.Ring  // nil = synchronous NextBatch refills
	pf     BatchPrefetcher // nil = no home-slot prefetch
	mlp    int

	// Pre-generated op batch (stream.NextBatch) the issue loop consumes
	// from; refilled only when empty, so ops are never dropped. A heap
	// slice, not an embedded array: the Core's hot scalars must stay
	// within a couple of cache lines.
	ops    []workload.Op
	opNext int
	opEnd  int

	// Execution state (kept adjacent to the batch cursor: one or two
	// cache lines cover everything the issue loop touches per op).
	running     bool
	haveStalled bool
	waitAny     bool // blocked because the MLP window is full
	outstanding int
	waitToken   uint64 // blocked on this specific request (0 = none)
	tokens      uint64
	deferred    sim.Cycle // compute cycles owed when the current block resolves

	// Pre-bound callbacks, allocated once so scheduling completions does
	// not allocate per access.
	stepFn     func()
	resumeFn   func()
	dataDoneFn func(uint64)
	// stalledOp holds the op whose instruction fetch is in flight: the
	// stream has already produced it, so resume must finish executing it
	// rather than fetch the next op (dropping it would silently lose one
	// retirement — and one memory access — per frontend stall).
	stalledOp workload.Op

	// Statistics.
	Retired     uint64
	Consumed    uint64 // ops taken from the batch buffer; every one retires
	IFetchStall uint64 // blocking ifetch misses
	DataBlocks  uint64 // blocking data misses
	Overlapped  uint64 // data misses issued without blocking
}

// New builds a core. Start must be called to begin execution.
func New(engine *sim.Engine, id int, cfg Config, stream workload.Source, path Hierarchy) *Core {
	if cfg.Width <= 0 || cfg.Burst <= 0 {
		panic(fmt.Sprintf("cpu: bad config %+v", cfg))
	}
	if stream == nil || path == nil {
		panic("cpu: nil stream or hierarchy")
	}
	c := &Core{
		ID:     id,
		cfg:    cfg,
		engine: engine,
		stream: stream,
		path:   path,
		mlp:    stream.Spec().MLP,
		ops:    make([]workload.Op, opBatch),
	}
	c.stepFn = c.step
	c.resumeFn = c.resume
	c.dataDoneFn = c.dataDone
	return c
}

// Start schedules the core's first quantum.
func (c *Core) Start() {
	if c.running {
		panic("cpu: core already started")
	}
	c.running = true
	c.engine.Schedule(0, c.stepFn)
}

// AttachRing switches the core's batch refills from synchronous NextBatch
// to consuming blocks off an SPSC ring fed by a producer goroutine. The
// op sequence is identical either way (the ring's determinism contract,
// DESIGN.md §12); only the host thread doing the generation changes. Must
// be called before Start, with any buffered batch fully consumed.
func (c *Core) AttachRing(r *workload.Ring) {
	if c.running {
		panic("cpu: AttachRing on a started core")
	}
	if c.opNext != c.opEnd {
		panic("cpu: AttachRing with buffered ops pending")
	}
	c.ring = r
}

// EnablePrefetch turns on home-slot batch prefetching if the core's
// hierarchy path supports it, reporting whether it did.
func (c *Core) EnablePrefetch() bool {
	if pf, ok := c.path.(BatchPrefetcher); ok {
		c.pf = pf
		return true
	}
	return false
}

// computeCycles converts an instruction run into cycles at the issue width.
func (c *Core) computeCycles(instr int) sim.Cycle {
	return sim.Cycle((instr + c.cfg.Width - 1) / c.cfg.Width)
}

// step executes instructions until the quantum is exhausted or the core
// blocks on a memory access. Ops come from the pre-generated batch buffer
// (refilled via stream.NextBatch when empty — identical op sequence to
// per-op Next, amortized generation cost), except on resume from an
// ifetch stall, where the stashed in-flight op finishes first. The
// per-instruction counters accumulate in locals (registers) and flush
// once per quantum/block instead of read-modify-writing the Core fields
// at every instruction.
func (c *Core) step() {
	var retired, consumed uint64
	run := 0
	for executed := 0; executed < c.cfg.Burst; executed++ {
		var op workload.Op
		if c.haveStalled {
			// Resuming from an ifetch stall: finish the op whose fetch just
			// completed instead of consuming a new one.
			op = c.stalledOp
			c.haveStalled = false
		} else {
			if c.opNext == c.opEnd {
				if c.ring != nil {
					// Zero-copy: point the batch cursor at the published
					// block. The block stays valid until the next NextBlock,
					// i.e. exactly until this batch is consumed.
					c.ops = c.ring.NextBlock()
					c.opEnd = len(c.ops)
				} else {
					c.opEnd = c.stream.NextBatch(c.ops)
				}
				c.opNext = 0
				if c.pf != nil {
					c.pf.PrefetchBatch(c.ID, c.ops[:c.opEnd])
				}
			}
			op = c.ops[c.opNext]
			c.opNext++
			consumed++
		}

		// Frontend: a new instruction line may miss the L1-I. Sequential
		// line transitions are covered by the next-line prefetcher (the
		// hierarchy still records them); jumps expose the fetch latency
		// and always block.
		if op.IWord != 0 {
			if lat, sync := c.path.IFetch(c.ID, op.NewIFetchLine(), op.Jump()); !sync {
				c.IFetchStall++
				// Stash the op; the fetch completes during the stall, so
				// clear the line to not re-issue it on resume. (A resumed op
				// has IWord zeroed, so it can never re-enter this branch.)
				op.IWord = 0
				c.stalledOp = op
				c.haveStalled = true
				c.engine.Schedule(lat, c.resumeFn)
				c.flush(retired, consumed)
				c.block(run)
				return
			}
		}

		retired++
		run++

		if !op.IsMem() {
			continue
		}
		tok := c.tokens + 1
		c.tokens = tok
		indep := op.Independent()
		lat, sync := c.path.Data(c.ID, op.Addr(), op.Write(), op.RWShared(), indep, op.NonTemporal())
		if sync {
			continue
		}
		c.engine.ScheduleArg(lat, c.dataDoneFn, tok)
		c.outstanding++
		switch {
		case !indep:
			// The next instruction needs this value: block on it.
			c.DataBlocks++
			c.waitToken = tok
			c.flush(retired, consumed)
			c.block(run)
			return
		case c.outstanding >= c.mlp:
			// MLP window full: block until any completion.
			c.DataBlocks++
			c.waitAny = true
			c.flush(retired, consumed)
			c.block(run)
			return
		default:
			c.Overlapped++
		}
	}
	// Quantum exhausted without blocking: charge its compute time.
	c.flush(retired, consumed)
	c.engine.Schedule(c.computeCycles(run), c.stepFn)
}

// flush folds a quantum's locally-accumulated counters into the Core
// fields; every exit from step passes through it, so the fields are
// consistent whenever the engine is between events.
func (c *Core) flush(retired, consumed uint64) {
	c.Retired += retired
	c.Consumed += consumed
}

// block records the compute cycles accumulated before a blocking miss so
// resume can charge them. Modelling choice: pre-miss compute serializes
// with the miss (charged on resume) rather than overlapping it; the same
// conservative charge applies identically to every evaluated system.
func (c *Core) block(run int) {
	c.deferred = c.computeCycles(run)
}

// resume restarts execution after a blocking access completes, first paying
// any compute cycles owed from before the block.
func (c *Core) resume() {
	d := c.deferred
	c.deferred = 0
	c.engine.Schedule(d, c.stepFn)
}

// dataDone handles completion of an outstanding data miss.
func (c *Core) dataDone(tok uint64) {
	c.outstanding--
	if c.outstanding < 0 {
		panic("cpu: completion underflow")
	}
	if c.waitToken == tok {
		c.waitToken = 0
		c.resume()
		return
	}
	if c.waitAny {
		c.waitAny = false
		c.resume()
	}
}

// Outstanding reports in-flight data misses (for tests).
func (c *Core) Outstanding() int { return c.outstanding }
