// Package cpu models the processor cores: 3-wide out-of-order engines with
// a 128-entry ROB (paper Table II), approximated at the level the
// evaluation depends on. What the paper's experiments measure is how LLC
// hit latency and hit rate translate into stalls, which is governed by:
//
//   - issue width: instruction runs between misses retire at Width per cycle;
//   - memory-level parallelism: an L1-D miss blocks the core only when the
//     next instruction depends on it or the MLP window is full — server
//     workloads' low MLP (paper Sec. II-B) makes LLC latency visible;
//   - frontend stalls: instruction-fetch misses are always blocking.
//
// Compute work preceding a blocking miss is charged before the block, and
// independent misses overlap freely within the MLP window, which is the
// interval-model approximation of an OoO window.
package cpu

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Hierarchy is the memory system as seen by one core. Implementations
// return the access latency and sync=true when the access completed
// synchronously (an L1 hit); otherwise the core schedules its own
// completion lat cycles out. Returning a latency instead of taking a
// completion callback keeps the hot path allocation-free: the core reuses
// one pre-bound callback per completion kind rather than closing over
// per-access state.
type Hierarchy interface {
	// IFetch performs an instruction fetch of the given line. jump marks a
	// non-sequential control transfer; sequential line transitions are
	// covered by the next-line prefetcher and should complete
	// synchronously.
	IFetch(core int, line mem.LineAddr, jump bool) (lat sim.Cycle, sync bool)
	// Data performs a data access. nonTemporal marks streaming
	// accesses whose fills should not displace reused lines.
	Data(core int, addr mem.Addr, write, rwShared, independent, nonTemporal bool) (lat sim.Cycle, sync bool)
}

// Config shapes the core model.
type Config struct {
	Width int // retire width (paper: 3)
	// Burst bounds the instructions executed per scheduling quantum so the
	// clock advances even on all-hit streams.
	Burst int
}

// DefaultConfig is the paper's core at a practical quantum size.
func DefaultConfig() Config { return Config{Width: 3, Burst: 48} }

// Core drives one workload stream through the hierarchy.
type Core struct {
	ID     int
	cfg    Config
	engine *sim.Engine
	stream *workload.Stream
	path   Hierarchy
	mlp    int

	// Pre-bound callbacks, allocated once so scheduling completions does
	// not allocate per access.
	stepFn     func()
	resumeFn   func()
	dataDoneFn func(uint64)

	// Execution state.
	running     bool
	outstanding int
	waitAny     bool   // blocked because the MLP window is full
	waitToken   uint64 // blocked on this specific request (0 = none)
	tokens      uint64
	pendingRun  int       // instructions executed since last cycle charge
	deferred    sim.Cycle // compute cycles owed when the current block resolves
	// stalledOp holds the op whose instruction fetch is in flight: the
	// stream has already produced it, so resume must finish executing it
	// rather than fetch the next op (dropping it would silently lose one
	// retirement — and one memory access — per frontend stall).
	stalledOp   workload.Op
	haveStalled bool

	// Statistics.
	Retired     uint64
	IFetchStall uint64 // blocking ifetch misses
	DataBlocks  uint64 // blocking data misses
	Overlapped  uint64 // data misses issued without blocking
}

// New builds a core. Start must be called to begin execution.
func New(engine *sim.Engine, id int, cfg Config, stream *workload.Stream, path Hierarchy) *Core {
	if cfg.Width <= 0 || cfg.Burst <= 0 {
		panic(fmt.Sprintf("cpu: bad config %+v", cfg))
	}
	if stream == nil || path == nil {
		panic("cpu: nil stream or hierarchy")
	}
	c := &Core{
		ID:     id,
		cfg:    cfg,
		engine: engine,
		stream: stream,
		path:   path,
		mlp:    stream.Spec().MLP,
	}
	c.stepFn = c.step
	c.resumeFn = c.resume
	c.dataDoneFn = c.dataDone
	return c
}

// Start schedules the core's first quantum.
func (c *Core) Start() {
	if c.running {
		panic("cpu: core already started")
	}
	c.running = true
	c.engine.Schedule(0, c.stepFn)
}

// computeCycles converts an instruction run into cycles at the issue width.
func (c *Core) computeCycles(instr int) sim.Cycle {
	return sim.Cycle((instr + c.cfg.Width - 1) / c.cfg.Width)
}

// step executes instructions until the quantum is exhausted or the core
// blocks on a memory access.
func (c *Core) step() {
	var op workload.Op
	for executed := 0; executed < c.cfg.Burst; executed++ {
		if c.haveStalled {
			// Resuming from an ifetch stall: finish the op whose fetch just
			// completed instead of consuming a new one.
			op = c.stalledOp
			c.haveStalled = false
		} else {
			c.stream.Next(&op)
		}

		// Frontend: a new instruction line may miss the L1-I. Sequential
		// line transitions are covered by the next-line prefetcher (the
		// hierarchy still records them); jumps expose the fetch latency
		// and always block.
		if op.NewIFetchLine != 0 {
			if lat, sync := c.path.IFetch(c.ID, op.NewIFetchLine, op.Jump); !sync {
				c.IFetchStall++
				// Stash the op; the fetch completes during the stall, so
				// clear the line to not re-issue it on resume.
				op.NewIFetchLine = 0
				c.stalledOp = op
				c.haveStalled = true
				c.engine.Schedule(lat, c.resumeFn)
				c.block()
				return
			}
		}

		c.Retired++
		c.pendingRun++

		if !op.IsMem {
			continue
		}
		tok := c.tokens + 1
		c.tokens = tok
		lat, sync := c.path.Data(c.ID, op.Addr, op.Write, op.RWShared, op.Independent, op.NonTemporal)
		if sync {
			continue
		}
		c.engine.ScheduleArg(lat, c.dataDoneFn, tok)
		c.outstanding++
		switch {
		case !op.Independent:
			// The next instruction needs this value: block on it.
			c.DataBlocks++
			c.waitToken = tok
			c.block()
			return
		case c.outstanding >= c.mlp:
			// MLP window full: block until any completion.
			c.DataBlocks++
			c.waitAny = true
			c.block()
			return
		default:
			c.Overlapped++
		}
	}
	// Quantum exhausted without blocking: charge its compute time.
	run := c.pendingRun
	c.pendingRun = 0
	c.engine.Schedule(c.computeCycles(run), c.stepFn)
}

// block records the compute cycles accumulated before a blocking miss so
// resume can charge them. Modelling choice: pre-miss compute serializes
// with the miss (charged on resume) rather than overlapping it; the same
// conservative charge applies identically to every evaluated system.
func (c *Core) block() {
	c.deferred = c.computeCycles(c.pendingRun)
	c.pendingRun = 0
}

// resume restarts execution after a blocking access completes, first paying
// any compute cycles owed from before the block.
func (c *Core) resume() {
	d := c.deferred
	c.deferred = 0
	c.engine.Schedule(d, c.stepFn)
}

// dataDone handles completion of an outstanding data miss.
func (c *Core) dataDone(tok uint64) {
	c.outstanding--
	if c.outstanding < 0 {
		panic("cpu: completion underflow")
	}
	if c.waitToken == tok {
		c.waitToken = 0
		c.resume()
		return
	}
	if c.waitAny {
		c.waitAny = false
		c.resume()
	}
}

// Outstanding reports in-flight data misses (for tests).
func (c *Core) Outstanding() int { return c.outstanding }
