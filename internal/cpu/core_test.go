package cpu

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/workload"
)

// fakeHierarchy gives deterministic, scriptable memory behaviour.
type fakeHierarchy struct {
	engine      *sim.Engine
	ifetchMiss  bool      // jumps miss when true
	dataMissLat sim.Cycle // 0 = everything hits
	ifetchLat   sim.Cycle
	dataAccess  uint64
	ifetchCalls uint64
}

func (f *fakeHierarchy) IFetch(core int, line mem.LineAddr, jump bool) (sim.Cycle, bool) {
	f.ifetchCalls++
	if !f.ifetchMiss || !jump || f.ifetchLat == 0 {
		return 0, true
	}
	return f.ifetchLat, false
}

func (f *fakeHierarchy) Data(core int, addr mem.Addr, write, rwShared, independent, nonTemporal bool) (sim.Cycle, bool) {
	f.dataAccess++
	if f.dataMissLat == 0 {
		return 0, true
	}
	return f.dataMissLat, false
}

func testSpec(mlp int, indep float64) workload.Spec {
	s := workload.WebSearch()
	s.MLP = mlp
	s.IndepProb = indep
	return s
}

func run(t *testing.T, spec workload.Spec, h *fakeHierarchy, cycles sim.Cycle) *Core {
	t.Helper()
	e := h.engine
	stream := workload.NewStream(spec, 0, 1, 16, 42)
	c := New(e, 0, DefaultConfig(), stream, h)
	c.Start()
	e.Run(cycles)
	return c
}

func TestAllHitIPCIsWidth(t *testing.T) {
	e := sim.NewEngine()
	h := &fakeHierarchy{engine: e}
	c := run(t, testSpec(2, 0.5), h, 10000)
	ipc := float64(c.Retired) / 10000
	// Everything hits: the core should sustain close to its width of 3.
	if ipc < 2.9 || ipc > 3.05 {
		t.Fatalf("all-hit IPC = %v, want ~3", ipc)
	}
}

func TestMissLatencyReducesIPC(t *testing.T) {
	e1 := sim.NewEngine()
	fast := &fakeHierarchy{engine: e1, dataMissLat: 23}
	c1 := run(t, testSpec(2, 0.3), fast, 50000)

	e2 := sim.NewEngine()
	slow := &fakeHierarchy{engine: e2, dataMissLat: 100}
	c2 := run(t, testSpec(2, 0.3), slow, 50000)

	if c2.Retired >= c1.Retired {
		t.Fatalf("higher miss latency should lower throughput: %d vs %d", c2.Retired, c1.Retired)
	}
	// With every data op missing at low MLP, the slowdown should be large.
	ratio := float64(c1.Retired) / float64(c2.Retired)
	if ratio < 2 {
		t.Fatalf("23 vs 100-cycle misses only changed throughput by %.2fx", ratio)
	}
}

func TestMLPHidesLatency(t *testing.T) {
	// Same miss latency, independent accesses: MLP 4 should beat MLP 1.
	e1 := sim.NewEngine()
	h1 := &fakeHierarchy{engine: e1, dataMissLat: 100}
	c1 := run(t, testSpec(1, 0.9), h1, 50000)

	e2 := sim.NewEngine()
	h2 := &fakeHierarchy{engine: e2, dataMissLat: 100}
	c2 := run(t, testSpec(4, 0.9), h2, 50000)

	if float64(c2.Retired) < 1.5*float64(c1.Retired) {
		t.Fatalf("MLP 4 (%d retired) should clearly beat MLP 1 (%d)", c2.Retired, c1.Retired)
	}
}

func TestDependentMissesBlock(t *testing.T) {
	// All-dependent misses: every miss blocks regardless of MLP.
	e := sim.NewEngine()
	h := &fakeHierarchy{engine: e, dataMissLat: 50}
	c := run(t, testSpec(8, 0.0), h, 50000)
	if c.Overlapped != 0 {
		t.Fatalf("dependent misses overlapped %d times", c.Overlapped)
	}
	if c.DataBlocks == 0 {
		t.Fatal("expected blocking misses")
	}
}

func TestIFetchMissesBlock(t *testing.T) {
	e := sim.NewEngine()
	h := &fakeHierarchy{engine: e, ifetchMiss: true, ifetchLat: 23}
	spec := testSpec(2, 0.5)
	c := run(t, spec, h, 50000)
	if c.IFetchStall == 0 {
		t.Fatal("expected ifetch stalls")
	}
	// Throughput is below width because of frontend stalls.
	ipc := float64(c.Retired) / 50000
	if ipc >= 2.9 {
		t.Fatalf("ifetch-stalled IPC = %v, should be well below 3", ipc)
	}
}

// Regression test: the op whose instruction fetch misses must still retire
// after the stall resolves. The buggy path consumed the op from the stream,
// blocked on the fetch, and then fetched the *next* op on resume — so every
// ifetch stall silently dropped one instruction (and its memory access).
func TestIFetchStallDoesNotDropOps(t *testing.T) {
	e := sim.NewEngine()
	h := &fakeHierarchy{engine: e, ifetchMiss: true, ifetchLat: 23}
	spec := testSpec(2, 0.5)
	stream := workload.NewStream(spec, 0, 1, 16, 42)
	c := New(e, 0, DefaultConfig(), stream, h)
	c.Start()
	e.Run(50000)
	if c.IFetchStall == 0 {
		t.Fatal("scenario produced no ifetch stalls")
	}
	// Every op consumed from the batch buffer must have retired, except at
	// most the one op stashed while its fetch stall is still in flight.
	consumed := c.Consumed
	if consumed-c.Retired > 1 {
		t.Fatalf("dropped %d of %d consumed ops across %d ifetch stalls (retired %d)",
			consumed-c.Retired, consumed, c.IFetchStall, c.Retired)
	}
	// The stream runs ahead of consumption by at most one pre-generated
	// batch (the refill is lazy).
	if ahead := stream.Generated() - consumed; ahead > opBatch {
		t.Fatalf("stream generated %d ops ahead of consumption, want <= one %d-op batch", ahead, opBatch)
	}
}

// The stalled op's memory access must issue once the fetch resolves: a
// dropped op under-reports data traffic, not just retirement.
func TestIFetchStallPreservesDataAccesses(t *testing.T) {
	e := sim.NewEngine()
	h := &fakeHierarchy{engine: e, ifetchMiss: true, ifetchLat: 23}
	spec := testSpec(2, 0.5)
	spec.MemRatio = 0.99 // nearly every op carries a data access
	stream := workload.NewStream(spec, 0, 1, 16, 42)
	c := New(e, 0, DefaultConfig(), stream, h)
	c.Start()
	e.Run(50000)
	if c.IFetchStall == 0 {
		t.Fatal("scenario produced no ifetch stalls")
	}
	// With MemRatio 0.99, ~99% of consumed ops must issue a data access.
	// Dropping the stalled op kills its access too: the buggy path loses
	// one per stall (~1.3% here), pushing the issued count below 98% of
	// consumption; the fixed path stays at ~99%.
	consumed := c.Consumed
	if h.dataAccess < uint64(float64(consumed)*0.98) {
		t.Fatalf("issued %d data accesses for %d consumed ops (%.1f%%) across %d stalls",
			h.dataAccess, consumed, 100*float64(h.dataAccess)/float64(consumed), c.IFetchStall)
	}
}

func TestOutstandingNeverExceedsMLP(t *testing.T) {
	e := sim.NewEngine()
	h := &fakeHierarchy{engine: e, dataMissLat: 200}
	spec := testSpec(3, 1.0) // fully independent
	stream := workload.NewStream(spec, 0, 1, 16, 7)
	c := New(e, 0, DefaultConfig(), stream, h)
	c.Start()
	for i := 0; i < 200000 && e.Step(); i++ {
		if c.Outstanding() > 3 {
			t.Fatalf("outstanding %d exceeds MLP 3", c.Outstanding())
		}
	}
	if c.DataBlocks == 0 {
		t.Fatal("MLP window never filled; test not exercising the limit")
	}
}

func TestDeterministicExecution(t *testing.T) {
	mk := func() uint64 {
		e := sim.NewEngine()
		h := &fakeHierarchy{engine: e, dataMissLat: 23, ifetchMiss: true, ifetchLat: 23}
		c := run(t, testSpec(2, 0.4), h, 30000)
		return c.Retired
	}
	if a, b := mk(), mk(); a != b {
		t.Fatalf("nondeterministic execution: %d vs %d", a, b)
	}
}

func TestNewPanics(t *testing.T) {
	e := sim.NewEngine()
	stream := workload.NewStream(testSpec(2, 0.5), 0, 1, 16, 1)
	h := &fakeHierarchy{engine: e}
	for i, fn := range []func(){
		func() { New(e, 0, Config{Width: 0, Burst: 48}, stream, h) },
		func() { New(e, 0, Config{Width: 3, Burst: 0}, stream, h) },
		func() { New(e, 0, DefaultConfig(), nil, h) },
		func() { New(e, 0, DefaultConfig(), stream, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
	c := New(e, 0, DefaultConfig(), stream, h)
	c.Start()
	defer func() {
		if recover() == nil {
			t.Error("double Start should panic")
		}
	}()
	c.Start()
}
