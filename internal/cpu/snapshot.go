package cpu

import (
	"fmt"

	"repro/internal/checkpoint"
)

// Snapshot serializes the core's retire/stall counters and asserts the
// core is idle. Checkpoints are cut after functional warm-up, before
// Start: the issue loop's transient state (in-flight requests, pending
// callbacks, buffered op batch) only exists mid-run and cannot be
// serialized, so an active core is recorded as such and rejected on
// Restore rather than silently flattened.
func (c *Core) Snapshot(w *checkpoint.Writer) {
	w.Section("cpu.Core")
	w.I64(int64(c.ID))
	idle := !c.running && !c.haveStalled && !c.waitAny &&
		c.outstanding == 0 && c.waitToken == 0 && c.deferred == 0 &&
		c.opNext == c.opEnd && c.ring == nil
	w.Bool(idle)
	w.U64(c.tokens)
	w.U64(c.Retired)
	w.U64(c.Consumed)
	w.U64(c.IFetchStall)
	w.U64(c.DataBlocks)
	w.U64(c.Overlapped)
}

// Restore overwrites a freshly constructed (never started) core.
func (c *Core) Restore(r *checkpoint.Reader) error {
	if err := r.Section("cpu.Core"); err != nil {
		return err
	}
	id := int(r.I64())
	idle := r.Bool()
	tokens := r.U64()
	retired := r.U64()
	consumed := r.U64()
	ifetchStall := r.U64()
	dataBlocks := r.U64()
	overlapped := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if id != c.ID {
		return fmt.Errorf("cpu: checkpoint core %d restored into core %d", id, c.ID)
	}
	if !idle {
		return fmt.Errorf("cpu: checkpoint captured core %d mid-run", id)
	}
	if c.running {
		return fmt.Errorf("cpu: restore target core %d already started", c.ID)
	}
	c.tokens = tokens
	c.Retired = retired
	c.Consumed = consumed
	c.IFetchStall = ifetchStall
	c.DataBlocks = dataBlocks
	c.Overlapped = overlapped
	return nil
}
