//go:build unix

package dist

import (
	"context"
	"encoding/json"
	"net"
	"os"
	"os/exec"
	"strconv"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/robust"
)

// The chaos acceptance test: two real worker processes join the sweep;
// one is built to stall forever on every cell (so it reliably holds a
// lease mid-cell) and is SIGKILLed. The coordinator must detect the
// dead lease via heartbeat silence, reassign its cells to the
// survivor, and still produce output byte-identical to an
// uninterrupted single-process run.
func TestDistChaosWorkerSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses and waits out lease TTLs")
	}
	golden := goldenLines(t, testGrid12, 2)

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	co, err := NewCoordinator(Config{
		Grid: testGrid12, Windows: 2, Mode: probeMode(),
		LeaseTTL:        500 * time.Millisecond,
		LeaseCells:      2,
		SoloAfter:       -1, // the survivor must finish it, not the coordinator
		ReassignBackoff: robust.Backoff{Base: 20 * time.Millisecond, Cap: 100 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + ln.Addr().String()

	var mu sync.Mutex
	var lines []string
	done := make(chan error, 1)
	go func() {
		done <- co.Run(ctx, ln, func(r experiments.GridCellResult) bool {
			b, merr := json.Marshal(r)
			if merr != nil {
				return false
			}
			mu.Lock()
			lines = append(lines, maskWall(string(b)))
			mu.Unlock()
			return true
		})
	}()

	spawn := func(id string, stall bool) *exec.Cmd {
		cmd := exec.Command(os.Args[0], "-test.run=TestDistWorkerHelperProcess$", "-test.v")
		cmd.Env = append(os.Environ(),
			"DIST_WORKER_HELPER=1",
			"DIST_WORKER_URL="+url,
			"DIST_WORKER_ID="+id,
			"DIST_WORKER_STALL="+strconv.FormatBool(stall),
		)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("spawning %s: %v", id, err)
		}
		return cmd
	}

	// The doomed worker joins first and stalls inside its first cell,
	// holding the lease. Only once it provably holds one does the
	// survivor join — so reassignment is exercised deterministically,
	// not raced.
	doomed := spawn("doomed", true)
	deadline := time.Now().Add(30 * time.Second)
	for co.StatsSnapshot().LiveLeases == 0 {
		if time.Now().After(deadline) {
			t.Fatal("doomed worker never took a lease")
		}
		time.Sleep(20 * time.Millisecond)
	}
	survivor := spawn("survivor", false)

	// Let the doomed worker heartbeat across a few TTLs (proving the
	// lease survives on heartbeats alone), then SIGKILL it mid-cell.
	time.Sleep(3 * 500 * time.Millisecond)
	if st := co.StatsSnapshot(); st.LeasesExpired != 0 {
		t.Fatalf("doomed worker's lease expired while it was alive and heartbeating: %+v", st)
	}
	if err := doomed.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	derr := doomed.Wait()
	if ee, ok := derr.(*exec.ExitError); !ok || ee.Sys().(syscall.WaitStatus).Signal() != syscall.SIGKILL {
		t.Fatalf("doomed worker exit: %v, want SIGKILL", derr)
	}

	if err := <-done; err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	if err := survivor.Wait(); err != nil {
		t.Fatalf("survivor exit: %v", err)
	}

	st := co.StatsSnapshot()
	if st.LeasesExpired < 1 {
		t.Fatalf("the killed worker's lease never expired: %+v", st)
	}
	if st.CellsReassigned < 1 {
		t.Fatalf("no cells were reassigned after the kill: %+v", st)
	}
	if st.SoloCells != 0 {
		t.Fatalf("coordinator ran %d cells solo with a live survivor", st.SoloCells)
	}
	mu.Lock()
	defer mu.Unlock()
	assertSameLines(t, lines, golden)
}

// TestDistWorkerHelperProcess is the subprocess body for the chaos
// test: a real Worker over real HTTP. With DIST_WORKER_STALL=true its
// injector stalls every cell for an hour — the worker heartbeats
// (alive, lease renewed) but never completes anything, so a SIGKILL
// reliably lands mid-cell with a lease held.
func TestDistWorkerHelperProcess(t *testing.T) {
	if os.Getenv("DIST_WORKER_HELPER") != "1" {
		t.Skip("subprocess helper")
	}
	var inj *robust.Injector
	if os.Getenv("DIST_WORKER_STALL") == "true" {
		stalls := make(map[int]time.Duration)
		for i := 0; i < 1024; i++ {
			stalls[i] = time.Hour
		}
		inj = robust.NewInjector(1, robust.Plan{StallCells: stalls})
	}
	w := NewWorker(WorkerConfig{
		URL:         os.Getenv("DIST_WORKER_URL"),
		ID:          os.Getenv("DIST_WORKER_ID"),
		Parallelism: 1,
		MaxOffline:  30 * time.Second,
		Injector:    inj,
	})
	if err := w.Run(context.Background()); err != nil {
		t.Fatalf("worker %s: %v", w.ID(), err)
	}
}
