package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/robust"
)

// Coordinator defaults.
const (
	DefaultLeaseTTL   = 10 * time.Second
	DefaultLeaseCells = 1
)

// Config configures a Coordinator. Grid/Windows/Confidence/Mode name
// the sweep exactly as `paperbench -grid` would; OnError, Retries,
// Backoff and CellDeadline are dictated to every worker so a cell
// behaves identically wherever it lands.
type Config struct {
	Grid       string
	Windows    int
	Confidence float64
	Mode       experiments.Mode // host-local knobs used by the solo path

	OnError      robust.FailPolicy
	Retries      int
	Backoff      robust.Backoff // worker-side retry pacing
	CellDeadline time.Duration

	// Journal, when non-nil, records every successfully completed cell
	// fsync'd — the coordinator's crash-resume state. With Resume,
	// journaled cells are neither leased nor re-run; their records
	// re-emit from the journal.
	Journal *robust.Journal
	Resume  bool
	// ResumeShards are extra journal files (workers' per-shard journals
	// salvaged after a crash) merged into the resume set by content-hash
	// key; entries for other sweeps simply never match.
	ResumeShards []string

	// LeaseTTL is how long a lease lives without a heartbeat or report;
	// 0 selects DefaultLeaseTTL. Workers heartbeat at TTL/3.
	LeaseTTL time.Duration
	// LeaseCells caps cells per lease; 0 selects DefaultLeaseCells.
	LeaseCells int
	// ReassignBackoff paces re-handout of a cell whose lease expired —
	// a cell that keeps killing workers must not hot-loop across the
	// fleet. The zero value uses 250ms doubling, capped at 10s.
	ReassignBackoff robust.Backoff
	// SoloAfter is the graceful-degradation deadline: when no worker
	// has been heard from for this long and cells remain, the
	// coordinator executes them itself (through the same lease table).
	// 0 selects 4*LeaseTTL; negative disables solo execution.
	SoloAfter time.Duration

	// Logf, when non-nil, receives operational events (lease expiry,
	// reassignment, solo activation) — the CLI points it at stderr.
	Logf func(format string, args ...any)
}

// Stats is a point-in-time snapshot of coordinator state, for logging
// and tests.
type Stats struct {
	Cells            int
	Completed        int
	Emitted          int
	LiveLeases       int
	LeasesGranted    int
	LeasesExpired    int
	CellsReassigned  int
	DuplicateReports int
	WorkersSeen      int
	SoloCells        int
}

// lease is one outstanding work batch.
type lease struct {
	id      uint64
	worker  string
	pending map[int]bool
	expires time.Time
	// pinned marks the in-process solo executor's lease: it cannot be
	// SIGKILLed without taking the coordinator down, so it never
	// expires (a stuck solo cell is governed by CellDeadline instead).
	pinned bool
}

// Coordinator owns the lease table and reassembles worker reports into
// the sweep's ordered output stream.
type Coordinator struct {
	cfg  Config
	spec experiments.GridSpec
	keys []string
	n    int

	ctx    context.Context
	cancel context.CancelFunc

	mu          sync.Mutex
	queue       []int // unassigned cell indices, ascending
	notBefore   map[int]time.Time
	attempts    []int
	leases      map[uint64]*lease
	nextLeaseID uint64
	records     []json.RawMessage // completed cell records; nil = incomplete
	completed   int
	emitted     int
	lastWorker  time.Time
	workers     map[string]bool
	told        map[string]bool // workers that have received Done
	soloRunning bool
	soloCells   int
	fatal       error
	stats       Stats

	notify chan struct{}
}

// NewCoordinator compiles the grid and prepares the lease table,
// loading the resume set when configured. It does not start serving;
// call Run.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	spec, err := experiments.ParseGridSpec(cfg.Grid, cfg.Windows, cfg.Confidence)
	if err != nil {
		return nil, fmt.Errorf("dist: %w", err)
	}
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("dist: %w", err)
	}
	keys, err := experiments.GridCellKeys(spec, cfg.Mode)
	if err != nil {
		return nil, fmt.Errorf("dist: %w", err)
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	if cfg.LeaseCells <= 0 {
		cfg.LeaseCells = DefaultLeaseCells
	}
	if cfg.ReassignBackoff == (robust.Backoff{}) {
		cfg.ReassignBackoff = robust.Backoff{Base: 250 * time.Millisecond, Cap: 10 * time.Second}
	}
	if cfg.SoloAfter == 0 {
		cfg.SoloAfter = 4 * cfg.LeaseTTL
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}

	c := &Coordinator{
		cfg:       cfg,
		spec:      spec,
		keys:      keys,
		n:         len(keys),
		notBefore: make(map[int]time.Time),
		attempts:  make([]int, len(keys)),
		leases:    make(map[uint64]*lease),
		records:   make([]json.RawMessage, len(keys)),
		workers:   make(map[string]bool),
		told:      make(map[string]bool),
		notify:    make(chan struct{}, 1),
	}

	if err := c.loadResume(); err != nil {
		return nil, err
	}
	for i := range c.records {
		if c.records[i] == nil {
			c.queue = append(c.queue, i)
		}
	}
	return c, nil
}

// loadResume prefills completed cells from the coordinator journal and
// any salvaged per-shard journals. Matching cellExecutor's resume
// semantics, a journaled record that fails to decode or recorded a
// failure is distrusted — the cell re-runs.
func (c *Coordinator) loadResume() error {
	if !c.cfg.Resume {
		return nil
	}
	entries := make(map[string]json.RawMessage)
	if c.cfg.Journal != nil {
		for k, v := range c.cfg.Journal.Entries() {
			entries[k] = v
		}
	}
	if len(c.cfg.ResumeShards) > 0 {
		merged, dropped, err := robust.MergeJournalEntries(c.cfg.ResumeShards...)
		if err != nil {
			return fmt.Errorf("dist: resume shards: %w", err)
		}
		if dropped > 0 {
			c.cfg.Logf("dist: shard journals: dropped %d bytes of torn tails", dropped)
		}
		for k, v := range merged {
			entries[k] = v
		}
	}
	for i, key := range c.keys {
		raw, ok := entries[key]
		if !ok {
			continue
		}
		var r experiments.GridCellResult
		if err := json.Unmarshal(raw, &r); err != nil || r.Error != nil {
			continue
		}
		c.records[i] = raw
		c.completed++
		// Re-journal shard-sourced entries so the coordinator journal
		// alone carries the full resume state from here on.
		if c.cfg.Journal != nil {
			if _, inOwn := c.cfg.Journal.Entries()[key]; !inOwn {
				if err := c.cfg.Journal.Append(key, raw); err != nil {
					return fmt.Errorf("dist: %w", err)
				}
			}
		}
	}
	if c.completed > 0 {
		c.cfg.Logf("dist: resuming — %d of %d cells journaled", c.completed, c.n)
	}
	return nil
}

// Handler returns the coordinator's HTTP handler (also useful under a
// test server).
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathSpec, c.handleSpec)
	mux.HandleFunc(PathLease, c.handleLease)
	mux.HandleFunc(PathReport, c.handleReport)
	mux.HandleFunc(PathHeartbeat, c.handleHeartbeat)
	return mux
}

// Run serves the protocol on ln and blocks until the sweep completes
// (every record emitted, in enumeration order, via emit), the context
// is cancelled, or a worker reports a fail-fast fatal error. emit
// returning false aborts the sweep. Run closes ln before returning.
func (c *Coordinator) Run(ctx context.Context, ln net.Listener, emit func(experiments.GridCellResult) bool) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	c.ctx, c.cancel = ctx, cancel
	c.mu.Lock()
	c.lastWorker = time.Now() // the solo clock starts now
	c.mu.Unlock()

	srv := &http.Server{Handler: c.Handler(), ReadHeaderTimeout: 10 * time.Second}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sweep := time.NewTicker(c.cfg.LeaseTTL / 4)
	defer sweep.Stop()
	solo := time.NewTicker(c.cfg.LeaseTTL / 2)
	defer solo.Stop()

	emitAborted := false
loop:
	for {
		// Drain everything emittable at the cursor.
		c.mu.Lock()
		for c.emitted < c.n && c.records[c.emitted] != nil {
			raw := c.records[c.emitted]
			c.emitted++
			c.mu.Unlock()
			var r experiments.GridCellResult
			if err := json.Unmarshal(raw, &r); err != nil {
				// Unreachable for records we accepted, but never emit junk.
				c.mu.Lock()
				c.fatal = fmt.Errorf("dist: corrupt record for cell %d: %w", c.emitted-1, err)
				cancel()
				break
			}
			if !emit(r) {
				emitAborted = true
				cancel()
			}
			c.mu.Lock()
		}
		done := c.emitted == c.n
		fatal := c.fatal
		c.mu.Unlock()

		if done || fatal != nil || ctx.Err() != nil || emitAborted {
			break loop
		}

		select {
		case <-c.notify:
		case <-sweep.C:
			c.expireLeases(time.Now())
		case <-solo.C:
			c.maybeStartSolo()
		case <-ctx.Done():
		}
	}

	// Keep serving Done briefly so idle workers polling /lease learn the
	// sweep finished and exit cleanly, instead of finding a dead address
	// and burning their MaxOffline retry budget. The linger ends early
	// once every worker we ever heard from has received Done; workers
	// that died mid-sweep cost the full window.
	c.mu.Lock()
	finished := c.emitted == c.n && c.fatal == nil && !emitAborted
	fatal := c.fatal
	c.mu.Unlock()
	if finished {
		deadline := time.Now().Add(2500 * time.Millisecond)
		for time.Now().Before(deadline) {
			c.mu.Lock()
			all := true
			for w := range c.workers {
				if !c.told[w] {
					all = false
					break
				}
			}
			c.mu.Unlock()
			if all {
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	srv.Close()
	<-serveErr

	switch {
	case fatal != nil:
		return fatal
	case emitAborted:
		return errors.New("dist: output writer aborted the sweep")
	case !finished:
		return ctx.Err()
	default:
		return nil
	}
}

// wake nudges the Run loop without blocking.
func (c *Coordinator) wake() {
	select {
	case c.notify <- struct{}{}:
	default:
	}
}

// StatsSnapshot reports current progress.
func (c *Coordinator) StatsSnapshot() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Cells = c.n
	s.Completed = c.completed
	s.Emitted = c.emitted
	s.LiveLeases = len(c.leases)
	s.WorkersSeen = len(c.workers)
	s.SoloCells = c.soloCells
	return s
}

// --- protocol handlers ---------------------------------------------------

// maxBody bounds request bodies; a lease batch of records is at most a
// few hundred KB of JSON.
const maxBody = 16 << 20

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
	if err := dec.Decode(v); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func (c *Coordinator) handleSpec(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, SpecResponse{
		Version:    ProtocolVersion,
		Salt:       experiments.GridJournalSalt,
		Grid:       c.cfg.Grid,
		Windows:    c.cfg.Windows,
		Confidence: c.cfg.Confidence,
		Mode:       ModeSpecOf(c.cfg.Mode),
		Options: OptionsSpec{
			OnError:        c.cfg.OnError.String(),
			Retries:        c.cfg.Retries,
			BackoffMS:      c.cfg.Backoff.Base.Milliseconds(),
			BackoffCapMS:   c.cfg.Backoff.Cap.Milliseconds(),
			CellDeadlineMS: c.cfg.CellDeadline.Milliseconds(),
		},
		Cells:           c.n,
		ScenarioDigests: c.spec.ScenarioDigests(),
	})
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !readJSON(w, r, &req) {
		return
	}
	writeJSON(w, c.grantLease(req.WorkerID, req.Max, false))
}

func (c *Coordinator) handleReport(w http.ResponseWriter, r *http.Request) {
	var req ReportRequest
	if !readJSON(w, r, &req) {
		return
	}
	writeJSON(w, c.report(req))
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !readJSON(w, r, &req) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sawWorkerLocked(req.WorkerID)
	if c.completed == c.n {
		c.told[req.WorkerID] = true
		writeJSON(w, HeartbeatResponse{OK: true, Done: true})
		return
	}
	l, ok := c.leases[req.LeaseID]
	if !ok || l.worker != req.WorkerID {
		writeJSON(w, HeartbeatResponse{Expired: true})
		return
	}
	l.expires = time.Now().Add(c.cfg.LeaseTTL)
	writeJSON(w, HeartbeatResponse{OK: true})
}

// sawWorkerLocked records worker liveness (c.mu held). Solo execution
// never counts: a solo coordinator must not postpone its own fallback.
func (c *Coordinator) sawWorkerLocked(worker string) {
	if worker == soloWorkerID {
		return
	}
	c.lastWorker = time.Now()
	if worker != "" && !c.workers[worker] {
		c.workers[worker] = true
		c.cfg.Logf("dist: worker %s joined", worker)
	}
}

// grantLease pops up to max eligible cells off the queue into a new
// lease. pinned marks the solo executor's lease.
func (c *Coordinator) grantLease(worker string, max int, pinned bool) LeaseResponse {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sawWorkerLocked(worker)
	if c.completed == c.n || c.fatal != nil || c.ctx != nil && c.ctx.Err() != nil {
		c.told[worker] = true
		return LeaseResponse{Done: true}
	}
	batch := c.cfg.LeaseCells
	if max > 0 && max < batch {
		batch = max
	}
	var grant []int
	rest := c.queue[:0]
	for _, idx := range c.queue {
		if len(grant) < batch && !now.Before(c.notBefore[idx]) {
			grant = append(grant, idx)
			continue
		}
		rest = append(rest, idx)
	}
	c.queue = rest
	if len(grant) == 0 {
		// Nothing eligible now: backoff-delayed orphans or everything
		// out on other leases. Poll again soon — capped at 1s so idle
		// workers also catch the post-completion linger window.
		retry := c.cfg.LeaseTTL / 4
		if retry > time.Second {
			retry = time.Second
		}
		return LeaseResponse{RetryMS: retry.Milliseconds()}
	}
	c.nextLeaseID++
	l := &lease{
		id:      c.nextLeaseID,
		worker:  worker,
		pending: make(map[int]bool, len(grant)),
		expires: now.Add(c.cfg.LeaseTTL),
		pinned:  pinned,
	}
	for _, idx := range grant {
		l.pending[idx] = true
		c.attempts[idx]++
		delete(c.notBefore, idx)
	}
	c.leases[l.id] = l
	c.stats.LeasesGranted++
	return LeaseResponse{
		LeaseID: l.id,
		Indices: grant,
		TTLMS:   c.cfg.LeaseTTL.Milliseconds(),
	}
}

// report merges a batch of completed records: first completion wins,
// duplicates (the lease-reassignment race) are dropped, successes are
// journaled, and the emitter is woken. A report is proof of life, so
// it also renews the lease.
func (c *Coordinator) report(req ReportRequest) ReportResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sawWorkerLocked(req.WorkerID)

	if req.Fatal != "" {
		if c.fatal == nil {
			c.fatal = fmt.Errorf("dist: worker %s: %s", req.WorkerID, req.Fatal)
		}
		if c.cancel != nil {
			c.cancel()
		}
		c.wakeLocked()
		return ReportResponse{OK: true, Done: true}
	}

	l, haveLease := c.leases[req.LeaseID]
	if haveLease && l.worker != req.WorkerID {
		haveLease = false
	}
	for _, raw := range req.Records {
		var r experiments.GridCellResult
		if err := json.Unmarshal(raw, &r); err != nil {
			continue // a malformed record cannot be attributed; drop it
		}
		idx := r.Index
		if idx < 0 || idx >= c.n {
			continue
		}
		if c.records[idx] != nil {
			c.stats.DuplicateReports++
			continue
		}
		c.records[idx] = raw
		c.completed++
		// Journal successes only: failure records deliberately re-run on
		// resume, matching the single-process executor.
		if c.cfg.Journal != nil && r.Error == nil {
			if err := c.cfg.Journal.Append(c.keys[idx], raw); err != nil {
				if c.fatal == nil {
					c.fatal = fmt.Errorf("dist: journal: %w", err)
				}
				if c.cancel != nil {
					c.cancel()
				}
			}
		}
		// The cell may still sit in the queue (late report after its
		// lease expired and the cell was requeued) or in another lease
		// (already reassigned); scrub the queue so it is never granted
		// again. A reassigned lease-holder's duplicate drops above.
		for qi, q := range c.queue {
			if q == idx {
				c.queue = append(c.queue[:qi], c.queue[qi+1:]...)
				break
			}
		}
		if haveLease {
			delete(l.pending, idx)
		}
	}
	if haveLease {
		l.expires = time.Now().Add(c.cfg.LeaseTTL)
		if len(l.pending) == 0 {
			delete(c.leases, l.id)
		}
	}
	c.wakeLocked()
	done := c.completed == c.n
	if done {
		c.told[req.WorkerID] = true
	}
	return ReportResponse{
		OK:      true,
		Expired: !haveLease,
		Done:    done,
	}
}

// wakeLocked is wake for callers already holding c.mu.
func (c *Coordinator) wakeLocked() {
	select {
	case c.notify <- struct{}{}:
	default:
	}
}

// expireLeases revokes leases whose holder went silent past the TTL
// and requeues their unfinished cells, paced by the reassignment
// backoff so a worker-killing cell cannot hot-loop across the fleet.
func (c *Coordinator) expireLeases(now time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for id, l := range c.leases {
		if l.pinned || now.Before(l.expires) {
			continue
		}
		delete(c.leases, id)
		c.stats.LeasesExpired++
		requeued := 0
		for idx := range l.pending {
			if c.records[idx] != nil {
				continue // completed by someone else meanwhile
			}
			c.notBefore[idx] = now.Add(c.cfg.ReassignBackoff.Delay(c.attempts[idx] - 1))
			c.insertQueueLocked(idx)
			requeued++
			c.stats.CellsReassigned++
		}
		c.cfg.Logf("dist: lease %d (worker %s) expired; %d cell(s) requeued", id, l.worker, requeued)
	}
	c.wakeLocked() // the Run loop re-checks solo eligibility
}

// insertQueueLocked inserts idx keeping the queue ascending, so
// handout prefers the lowest unfinished indices and the reassembly
// window stays small.
func (c *Coordinator) insertQueueLocked(idx int) {
	at := sort.SearchInts(c.queue, idx)
	if at < len(c.queue) && c.queue[at] == idx {
		return
	}
	c.queue = append(c.queue, 0)
	copy(c.queue[at+1:], c.queue[at:])
	c.queue[at] = idx
}

// --- solo fallback -------------------------------------------------------

// soloWorkerID names the coordinator's in-process executor in the
// lease table and logs.
const soloWorkerID = "(solo)"

// maybeStartSolo activates the in-process executor when every worker
// has vanished: no live leases, cells waiting, and no worker heard
// from within SoloAfter.
func (c *Coordinator) maybeStartSolo() {
	if c.cfg.SoloAfter < 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.soloRunning || c.completed == c.n || c.fatal != nil {
		return
	}
	if len(c.leases) > 0 || len(c.queue) == 0 {
		return
	}
	if time.Since(c.lastWorker) < c.cfg.SoloAfter {
		return
	}
	c.soloRunning = true
	c.cfg.Logf("dist: no workers for %v — finishing the sweep solo", c.cfg.SoloAfter)
	go c.soloLoop()
}

// soloLoop leases batches from the coordinator's own table and runs
// them in-process through the same subset executor workers use,
// reporting through the same merge path. It exits when no work is
// eligible; the monitor restarts it if orphans reappear.
func (c *Coordinator) soloLoop() {
	defer func() {
		c.mu.Lock()
		c.soloRunning = false
		c.mu.Unlock()
	}()
	opts := experiments.GridOptions{
		OnError:      c.cfg.OnError,
		Retries:      c.cfg.Retries,
		Backoff:      c.cfg.Backoff,
		CellDeadline: c.cfg.CellDeadline,
	}
	for c.ctx.Err() == nil {
		grant := c.grantLease(soloWorkerID, 0, true)
		if grant.Done || len(grant.Indices) == 0 {
			return
		}
		err := experiments.RunGridSubsetOpts(c.ctx, c.spec, c.cfg.Mode, opts, grant.Indices, func(r experiments.GridCellResult) bool {
			raw, merr := json.Marshal(r)
			if merr != nil {
				return false
			}
			c.mu.Lock()
			c.soloCells++
			c.mu.Unlock()
			// Done in the response just means this record finished the
			// sweep; keep draining the batch either way.
			c.report(ReportRequest{WorkerID: soloWorkerID, LeaseID: grant.LeaseID, Records: []json.RawMessage{raw}})
			return true
		})
		if err != nil && !errors.Is(err, context.Canceled) {
			c.report(ReportRequest{WorkerID: soloWorkerID, Fatal: err.Error()})
			return
		}
		// Drop the lease if the batch ended early (cancel): expiry would
		// also reclaim it, but pinned leases never expire.
		c.mu.Lock()
		if l, ok := c.leases[grant.LeaseID]; ok {
			for idx := range l.pending {
				if c.records[idx] == nil {
					c.insertQueueLocked(idx)
				}
			}
			delete(c.leases, grant.LeaseID)
		}
		c.mu.Unlock()
	}
}
