package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/robust"
)

// The distributed runner's contract under test: coordinator + N
// workers produce output byte-identical to a single-process run modulo
// wall_ms — across worker counts, lease expiry and reassignment,
// duplicate reports, coordinator crash-resume, and solo fallback.

const (
	testGrid4  = "systems=Baseline,SILO;workloads=WebSearch,DataServing"
	testGrid12 = probeGrid
)

// maskWall delegates to the one shared masking implementation — the
// byte-identity contract everywhere is "modulo wall_ms and nothing
// else", so every comparison must mask with the same code.
func maskWall(line string) string { return experiments.MaskWallMS(line) }

// goldenLines runs the grid single-process — the byte-identity
// reference — and returns its wall_ms-masked JSON lines.
func goldenLines(t *testing.T, grid string, windows int) []string {
	t.Helper()
	g, err := experiments.ParseGridSpec(grid, windows, 0)
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	err = experiments.RunGridStreamOpts(context.Background(), g, probeMode(), experiments.GridOptions{}, func(r experiments.GridCellResult) bool {
		b, merr := json.Marshal(r)
		if merr != nil {
			t.Error(merr)
			return false
		}
		lines = append(lines, maskWall(string(b)))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return lines
}

func assertSameLines(t *testing.T, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("emitted %d lines, golden has %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("line %d differs from the single-process run:\n got  %s\n want %s", i, got[i], want[i])
		}
	}
}

// startSweep launches a coordinator on loopback and returns its URL
// plus a wait func yielding the masked emitted lines and Run's error.
func startSweep(t *testing.T, ctx context.Context, cfg Config) (*Coordinator, string, func() ([]string, error)) {
	t.Helper()
	co, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + ln.Addr().String()
	var mu sync.Mutex
	var lines []string
	done := make(chan error, 1)
	go func() {
		done <- co.Run(ctx, ln, func(r experiments.GridCellResult) bool {
			b, merr := json.Marshal(r)
			if merr != nil {
				return false
			}
			mu.Lock()
			lines = append(lines, maskWall(string(b)))
			mu.Unlock()
			return true
		})
	}()
	wait := func() ([]string, error) {
		err := <-done
		mu.Lock()
		defer mu.Unlock()
		return lines, err
	}
	return co, url, wait
}

func startWorker(t *testing.T, ctx context.Context, url, id string, par int) <-chan error {
	t.Helper()
	ch := make(chan error, 1)
	go func() {
		w := NewWorker(WorkerConfig{URL: url, ID: id, Parallelism: par, MaxOffline: 20 * time.Second})
		ch <- w.Run(ctx)
	}()
	return ch
}

func postJSON(t *testing.T, url string, req, resp any) {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	res, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("%s: HTTP %d", url, res.StatusCode)
	}
	if err := json.NewDecoder(res.Body).Decode(resp); err != nil {
		t.Fatal(err)
	}
}

// The headline acceptance test: at 1, 2 and 4 workers the reassembled
// output is byte-identical to the single-process run modulo wall_ms.
func TestDistByteIdentityAcrossWorkerCounts(t *testing.T) {
	golden := goldenLines(t, testGrid12, 2)
	for _, n := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers=%d", n), func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			_, url, wait := startSweep(t, ctx, Config{
				Grid: testGrid12, Windows: 2, Mode: probeMode(),
				LeaseTTL: 5 * time.Second, LeaseCells: 2, SoloAfter: -1,
			})
			var workers []<-chan error
			for i := 0; i < n; i++ {
				workers = append(workers, startWorker(t, ctx, url, fmt.Sprintf("w%d", i), 1))
			}
			lines, err := wait()
			if err != nil {
				t.Fatalf("coordinator: %v", err)
			}
			for i, ch := range workers {
				if werr := <-ch; werr != nil {
					t.Fatalf("worker %d: %v", i, werr)
				}
			}
			assertSameLines(t, lines, golden)
		})
	}
}

// A worker that takes a lease and vanishes (no heartbeat, no report)
// must have its cells reassigned after the TTL, and the sweep still
// matches the golden bytes.
func TestDistLeaseExpiryReassignsOrphans(t *testing.T) {
	golden := goldenLines(t, testGrid4, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	co, url, wait := startSweep(t, ctx, Config{
		Grid: testGrid4, Windows: 2, Mode: probeMode(),
		LeaseTTL: 200 * time.Millisecond, SoloAfter: -1,
		ReassignBackoff: robust.Backoff{Base: 10 * time.Millisecond, Cap: 50 * time.Millisecond},
	})
	// The phantom takes one cell and is never heard from again.
	var grant LeaseResponse
	postJSON(t, url+PathLease, LeaseRequest{WorkerID: "phantom", Max: 1}, &grant)
	if len(grant.Indices) != 1 {
		t.Fatalf("phantom lease got %v", grant.Indices)
	}
	// Wait out the TTL so the sweeper revokes it.
	deadline := time.Now().Add(5 * time.Second)
	for co.StatsSnapshot().LeasesExpired == 0 {
		if time.Now().After(deadline) {
			t.Fatal("phantom's lease never expired")
		}
		time.Sleep(20 * time.Millisecond)
	}
	wch := startWorker(t, ctx, url, "survivor", 1)
	lines, err := wait()
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	if werr := <-wch; werr != nil {
		t.Fatalf("survivor: %v", werr)
	}
	st := co.StatsSnapshot()
	if st.LeasesExpired < 1 || st.CellsReassigned < 1 {
		t.Fatalf("expected expiry + reassignment, got %+v", st)
	}
	assertSameLines(t, lines, golden)
}

// Heartbeats keep a lease alive well past several TTLs without any
// report traffic.
func TestDistHeartbeatKeepsLeaseAlive(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	co, url, wait := startSweep(t, ctx, Config{
		Grid: testGrid4, Windows: 2, Mode: probeMode(),
		LeaseTTL: 300 * time.Millisecond, SoloAfter: -1,
	})
	var grant LeaseResponse
	postJSON(t, url+PathLease, LeaseRequest{WorkerID: "beater", Max: 1}, &grant)
	if len(grant.Indices) == 0 {
		t.Fatal("no lease granted")
	}
	// Beat at TTL/3 for 4 TTLs: the lease must survive throughout.
	end := time.Now().Add(4 * 300 * time.Millisecond)
	for time.Now().Before(end) {
		var hb HeartbeatResponse
		postJSON(t, url+PathHeartbeat, HeartbeatRequest{WorkerID: "beater", LeaseID: grant.LeaseID}, &hb)
		if hb.Expired {
			t.Fatal("heartbeated lease expired")
		}
		time.Sleep(100 * time.Millisecond)
	}
	if st := co.StatsSnapshot(); st.LeasesExpired != 0 {
		t.Fatalf("leases expired despite heartbeats: %+v", st)
	}
	cancel()
	if _, err := wait(); err == nil {
		t.Fatal("cancelled coordinator returned nil")
	}
}

// The same completed record reported twice (the lease-reassignment
// race) merges once: second delivery is counted as a duplicate and the
// sweep output still matches the golden bytes exactly.
func TestDistDuplicateReportMergesOnce(t *testing.T) {
	golden := goldenLines(t, testGrid4, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	co, url, wait := startSweep(t, ctx, Config{
		Grid: testGrid4, Windows: 2, Mode: probeMode(),
		LeaseTTL: 5 * time.Second, SoloAfter: -1,
	})
	var grant LeaseResponse
	postJSON(t, url+PathLease, LeaseRequest{WorkerID: "dup", Max: 1}, &grant)
	if len(grant.Indices) != 1 {
		t.Fatalf("lease got %v", grant.Indices)
	}
	idx := grant.Indices[0]
	// Compute the cell's record the same way a worker would.
	g, err := experiments.ParseGridSpec(testGrid4, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	var raw json.RawMessage
	err = experiments.RunGridSubsetOpts(ctx, g, probeMode(), experiments.GridOptions{}, []int{idx}, func(r experiments.GridCellResult) bool {
		raw, _ = json.Marshal(r)
		return true
	})
	if err != nil || raw == nil {
		t.Fatalf("subset run: %v", err)
	}
	var rep ReportResponse
	postJSON(t, url+PathReport, ReportRequest{WorkerID: "dup", LeaseID: grant.LeaseID, Records: []json.RawMessage{raw}}, &rep)
	if !rep.OK || rep.Expired {
		t.Fatalf("first report: %+v", rep)
	}
	postJSON(t, url+PathReport, ReportRequest{WorkerID: "dup", LeaseID: grant.LeaseID, Records: []json.RawMessage{raw}}, &rep)
	if !rep.OK {
		t.Fatalf("second report: %+v", rep)
	}
	if d := co.StatsSnapshot().DuplicateReports; d != 1 {
		t.Fatalf("DuplicateReports = %d, want 1", d)
	}
	wch := startWorker(t, ctx, url, "finisher", 1)
	lines, err := wait()
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	if werr := <-wch; werr != nil {
		t.Fatalf("finisher: %v", werr)
	}
	assertSameLines(t, lines, golden)
}

// A coordinator killed mid-sweep resumes from its fsync'd journal:
// journaled cells are neither re-leased nor re-run, and the resumed
// sweep's full output is byte-identical to the golden run.
func TestDistCoordinatorJournalResume(t *testing.T) {
	golden := goldenLines(t, testGrid12, 2)
	jpath := filepath.Join(t.TempDir(), "coord.journal")
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Run 1: abort from the output side after two records — the
	// "coordinator died" stand-in (the journal state is identical).
	j1, err := robust.OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	co1, err := NewCoordinator(Config{
		Grid: testGrid12, Windows: 2, Mode: probeMode(),
		LeaseTTL: 5 * time.Second, SoloAfter: -1, Journal: j1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	w1 := startWorker(t, ctx, "http://"+ln.Addr().String(), "w1", 1)
	emitted := 0
	runErr := co1.Run(ctx, ln, func(experiments.GridCellResult) bool {
		emitted++
		return emitted < 2
	})
	if runErr == nil {
		t.Fatal("aborted run 1 returned nil")
	}
	<-w1
	j1.Close()

	// Run 2: resume from the journal; a fresh worker finishes the rest.
	j2, err := robust.OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() < 2 {
		t.Fatalf("journal has %d entries after aborted run, want >= 2", j2.Len())
	}
	co2, url, wait := startSweep(t, ctx, Config{
		Grid: testGrid12, Windows: 2, Mode: probeMode(),
		LeaseTTL: 5 * time.Second, SoloAfter: -1, Journal: j2, Resume: true,
	})
	if got := co2.StatsSnapshot().Completed; got < 2 {
		t.Fatalf("resume prefilled %d cells, want >= 2", got)
	}
	w2 := startWorker(t, ctx, url, "w2", 1)
	lines, err := wait()
	if err != nil {
		t.Fatalf("resumed coordinator: %v", err)
	}
	if werr := <-w2; werr != nil {
		t.Fatalf("worker: %v", werr)
	}
	assertSameLines(t, lines, golden)
}

// Graceful degradation: with no worker ever joining, the coordinator
// finishes the sweep itself after SoloAfter — same bytes.
func TestDistSoloFallbackCompletesSweep(t *testing.T) {
	golden := goldenLines(t, testGrid4, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	co, _, wait := startSweep(t, ctx, Config{
		Grid: testGrid4, Windows: 2, Mode: probeMode(),
		LeaseTTL: 400 * time.Millisecond, SoloAfter: 100 * time.Millisecond,
	})
	lines, err := wait()
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	st := co.StatsSnapshot()
	if st.SoloCells != len(golden) {
		t.Fatalf("solo ran %d cells, want %d", st.SoloCells, len(golden))
	}
	assertSameLines(t, lines, golden)
}

// Worker shard journals salvage into a fresh coordinator's resume set
// (-resume-shards): every cell prefills by content hash and the sweep
// emits without re-running anything.
func TestDistShardJournalSalvage(t *testing.T) {
	golden := goldenLines(t, testGrid4, 2)
	shard := filepath.Join(t.TempDir(), "shard.journal")
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Sweep 1: one worker keeping a per-shard journal completes everything.
	_, url, wait := startSweep(t, ctx, Config{
		Grid: testGrid4, Windows: 2, Mode: probeMode(),
		LeaseTTL: 5 * time.Second, SoloAfter: -1,
	})
	wch := make(chan error, 1)
	go func() {
		w := NewWorker(WorkerConfig{URL: url, ID: "journaling", Parallelism: 1, MaxOffline: 20 * time.Second, JournalPath: shard})
		defer w.Close()
		wch <- w.Run(ctx)
	}()
	if _, err := wait(); err != nil {
		t.Fatalf("sweep 1: %v", err)
	}
	if werr := <-wch; werr != nil {
		t.Fatalf("sweep 1 worker: %v", werr)
	}

	// Sweep 2: a brand-new coordinator resumes purely from the salvaged
	// shard journal — zero workers, solo disabled, nothing to run.
	co2, _, wait2 := startSweep(t, ctx, Config{
		Grid: testGrid4, Windows: 2, Mode: probeMode(),
		LeaseTTL: 5 * time.Second, SoloAfter: -1,
		Resume: true, ResumeShards: []string{shard},
	})
	lines, err := wait2()
	if err != nil {
		t.Fatalf("sweep 2: %v", err)
	}
	if got := co2.StatsSnapshot().Completed; got != len(golden) {
		t.Fatalf("salvage prefilled %d cells, want %d", got, len(golden))
	}
	assertSameLines(t, lines, golden)
}

// The BENCH dist_sweep probe must complete and report sane numbers.
func TestDistSweepProbe(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	p, err := RunSweepProbe(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Workers != 2 || p.Cells != 12 || p.NsPerCell <= 0 || p.CellsPerSec <= 0 {
		t.Fatalf("implausible probe point: %+v", p)
	}
}

// A version-skewed worker must refuse to join rather than contribute
// records computed under different semantics.
func TestDistWorkerRefusesVersionMismatch(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc(PathSpec, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, SpecResponse{Version: "dist-v0", Salt: experiments.GridJournalSalt})
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	defer srv.Close()
	w := NewWorker(WorkerConfig{URL: "http://" + ln.Addr().String(), MaxOffline: time.Second})
	if err := w.Run(context.Background()); err == nil {
		t.Fatal("worker joined a version-mismatched coordinator")
	}
}
