package dist

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/experiments"
)

// SweepPoint is one dist_sweep measurement in the BENCH_*.json schema:
// end-to-end distributed sweep throughput (coordinator + Workers local
// in-process workers over real loopback HTTP) on a fixed small grid.
// NsPerCell is regression-gated; comparing the 1- and 2-worker points
// shows whether the protocol overhead swamps the parallelism win.
type SweepPoint struct {
	Workers     int     `json:"workers"`
	Cells       int     `json:"cells"`
	NsPerCell   float64 `json:"ns_per_cell"`
	CellsPerSec float64 `json:"cells_per_sec"`
}

// probeGrid is the probe's fixed workload: 12 cheap cells — enough to
// amortize lease round-trips and keep both workers busy, small enough
// for a bench run.
const probeGrid = "systems=Baseline,SILO;workloads=WebSearch,DataServing;overrides=-|seed=2|seed=3"

// probeMode mirrors the grid executor tests' fast mode: real warm-up
// and measurement, just tiny.
func probeMode() experiments.Mode {
	return experiments.Mode{
		Name:          "dist-probe",
		WarmInstr:     2000,
		WarmCycles:    500,
		MeasureCycles: 4000,
		Scale:         32,
		Parallelism:   1,
	}
}

// RunSweepProbe runs the probe sweep with n in-process workers and
// reports throughput. Solo fallback is disabled so the measurement is
// honest about the worker path.
func RunSweepProbe(ctx context.Context, n int) (SweepPoint, error) {
	if n < 1 {
		return SweepPoint{}, fmt.Errorf("dist: probe needs >=1 workers, got %d", n)
	}
	co, err := NewCoordinator(Config{
		Grid:      probeGrid,
		Windows:   2,
		Mode:      probeMode(),
		LeaseTTL:  5 * time.Second,
		SoloAfter: -1,
	})
	if err != nil {
		return SweepPoint{}, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return SweepPoint{}, err
	}
	url := "http://" + ln.Addr().String()

	start := time.Now()
	coErr := make(chan error, 1)
	go func() {
		coErr <- co.Run(ctx, ln, func(experiments.GridCellResult) bool { return true })
	}()

	var wg sync.WaitGroup
	workerErrs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := NewWorker(WorkerConfig{
				URL:         url,
				ID:          fmt.Sprintf("probe-%d", i),
				Parallelism: 1,
				MaxOffline:  15 * time.Second,
			})
			workerErrs[i] = w.Run(ctx)
		}(i)
	}

	err = <-coErr
	wg.Wait()
	elapsed := time.Since(start)
	if err != nil {
		return SweepPoint{}, err
	}
	for i, werr := range workerErrs {
		if werr != nil {
			return SweepPoint{}, fmt.Errorf("dist: probe worker %d: %w", i, werr)
		}
	}
	cells := co.StatsSnapshot().Cells
	return SweepPoint{
		Workers:     n,
		Cells:       cells,
		NsPerCell:   float64(elapsed.Nanoseconds()) / float64(cells),
		CellsPerSec: float64(cells) / elapsed.Seconds(),
	}, nil
}
