// Package dist is the distributed sweep runner (DESIGN.md §13): a
// coordinator that partitions a -grid cell grid into lease-based work
// batches served over a small HTTP+JSON protocol, and a worker client
// that runs leased cells through the fault-tolerant grid executor
// (internal/experiments.RunGridSubsetOpts) and streams records back.
//
// The coordinator reassembles reports in enumeration order, so the
// final output is byte-identical to a single-process `paperbench
// -grid` run modulo wall_ms — at any worker count, and across worker
// crashes: leases expire when heartbeats stop, orphaned cells are
// reassigned to surviving workers with robust.Backoff pacing, and
// duplicate completions (the reassignment race) merge idempotently by
// robust.Key content hash. The coordinator journals completed cells in
// its own fsync'd journal and resumes from it after its own crash; it
// degrades to executing cells itself when every worker vanishes.
//
// The grid travels as its textual spec (experiments.ParseGridSpec's
// input), not as serialized configs: every process compiles the string
// with the same code, so equal strings mean equal grids and equal
// journal keys. The protocol carries a version tag and the journal
// salt; a worker built from different simulation semantics refuses to
// join rather than silently diverge.
package dist

import (
	"encoding/json"
	"time"

	"repro/internal/experiments"
	"repro/internal/sim"
)

// ProtocolVersion gates coordinator/worker compatibility. Bump on any
// wire or semantics change; a mismatched worker exits with an error
// instead of producing records the coordinator would merge wrongly.
const ProtocolVersion = "dist-v1"

// Wire paths.
const (
	PathSpec      = "/spec"
	PathLease     = "/lease"
	PathReport    = "/report"
	PathHeartbeat = "/heartbeat"
)

// ModeSpec is the wire form of experiments.Mode: only the fields that
// determine emitted bytes travel. Parallelism, GenThreads and
// CheckpointDir are host-layout knobs each worker sets from its own
// flags — none of them changes a record (DESIGN.md §11-§12).
type ModeSpec struct {
	Name          string `json:"name"`
	WarmInstr     int    `json:"warm_instr"`
	WarmCycles    uint64 `json:"warm_cycles"`
	MeasureCycles uint64 `json:"measure_cycles"`
	Scale         int64  `json:"scale"`
}

// ModeSpecOf extracts the wire fields from a Mode.
func ModeSpecOf(m experiments.Mode) ModeSpec {
	return ModeSpec{
		Name:          m.Name,
		WarmInstr:     m.WarmInstr,
		WarmCycles:    uint64(m.WarmCycles),
		MeasureCycles: uint64(m.MeasureCycles),
		Scale:         m.Scale,
	}
}

// Mode rebuilds an experiments.Mode from the wire form; the host-local
// knobs stay zero for the caller to fill in.
func (ms ModeSpec) Mode() experiments.Mode {
	return experiments.Mode{
		Name:          ms.Name,
		WarmInstr:     ms.WarmInstr,
		WarmCycles:    sim.Cycle(ms.WarmCycles),
		MeasureCycles: sim.Cycle(ms.MeasureCycles),
		Scale:         ms.Scale,
	}
}

// OptionsSpec is the wire form of the fault-tolerance options the
// coordinator dictates to every worker, so a cell fails (or retries,
// or times out) identically wherever it lands.
type OptionsSpec struct {
	OnError        string `json:"on_error"` // "fail" | "skip"
	Retries        int    `json:"retries"`
	BackoffMS      int64  `json:"backoff_ms"`
	BackoffCapMS   int64  `json:"backoff_cap_ms"`
	CellDeadlineMS int64  `json:"cell_deadline_ms"`
}

// SpecResponse answers GET /spec: everything a worker needs to compile
// the exact grid the coordinator is sweeping.
type SpecResponse struct {
	Version    string      `json:"version"` // ProtocolVersion
	Salt       string      `json:"salt"`    // experiments.GridJournalSalt
	Grid       string      `json:"grid"`    // textual spec (ParseGridSpec input)
	Windows    int         `json:"windows"`
	Confidence float64     `json:"confidence"`
	Mode       ModeSpec    `json:"mode"`
	Options    OptionsSpec `json:"options"`
	// Cells is the coordinator's cell count — a compile cross-check: a
	// worker whose parse disagrees refuses to join.
	Cells int `json:"cells"`
	// ScenarioDigests are the content digests of the grid's scenario
	// axis points (empty for workload-only grids). The grid string names
	// scenario *files*; a worker whose local copies hash differently —
	// stale spec, edited trace — refuses to join rather than emit
	// records keyed to a different scenario.
	ScenarioDigests []string `json:"scenario_digests,omitempty"`
}

// LeaseRequest asks for a batch of cells. Max caps the batch at the
// worker's appetite (its parallelism); the coordinator may grant
// fewer.
type LeaseRequest struct {
	WorkerID string `json:"worker_id"`
	Max      int    `json:"max"`
}

// LeaseResponse grants a lease (Indices non-empty), asks the worker to
// poll again later (empty Indices, RetryMS), or reports the sweep
// finished (Done) — the worker's signal to exit cleanly.
type LeaseResponse struct {
	LeaseID uint64 `json:"lease_id,omitempty"`
	Indices []int  `json:"indices,omitempty"`
	TTLMS   int64  `json:"ttl_ms,omitempty"`
	RetryMS int64  `json:"retry_ms,omitempty"`
	Done    bool   `json:"done,omitempty"`
}

// ReportRequest delivers completed cell records (each a marshaled
// experiments.GridCellResult) under a lease. Fatal aborts the whole
// sweep: a worker in fail-fast mode hit a permanently failed cell.
type ReportRequest struct {
	WorkerID string            `json:"worker_id"`
	LeaseID  uint64            `json:"lease_id"`
	Records  []json.RawMessage `json:"records,omitempty"`
	Fatal    string            `json:"fatal,omitempty"`
}

// ReportResponse acknowledges a report. Expired tells the worker its
// lease lapsed (the records were still merged if fresh — idempotence
// makes late delivery harmless) and it should abandon the rest of the
// batch and lease anew. Done tells it the sweep is complete.
type ReportResponse struct {
	OK      bool `json:"ok"`
	Expired bool `json:"expired,omitempty"`
	Done    bool `json:"done,omitempty"`
}

// HeartbeatRequest renews a lease.
type HeartbeatRequest struct {
	WorkerID string `json:"worker_id"`
	LeaseID  uint64 `json:"lease_id"`
}

// HeartbeatResponse mirrors ReportResponse for the renewal path.
type HeartbeatResponse struct {
	OK      bool `json:"ok"`
	Expired bool `json:"expired,omitempty"`
	Done    bool `json:"done,omitempty"`
}

// durationMS converts wire milliseconds to a Duration.
func durationMS(ms int64) time.Duration { return time.Duration(ms) * time.Millisecond }
