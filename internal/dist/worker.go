package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"slices"
	"time"

	"repro/internal/experiments"
	"repro/internal/robust"
)

// DefaultMaxOffline is how long a worker keeps retrying an unreachable
// coordinator before giving up. Long enough to ride out a coordinator
// crash-restart, short enough that an orphaned worker does not burn a
// host forever.
const DefaultMaxOffline = 2 * time.Minute

// WorkerConfig configures a worker. Only host-local knobs live here —
// everything that determines record bytes arrives from the coordinator
// in the spec.
type WorkerConfig struct {
	URL string // coordinator base URL, e.g. http://host:9377
	ID  string // worker identity for leases/logs; default "host:pid"

	// Host-layout knobs, the worker's own flags (DESIGN.md §11-§12:
	// none of them changes emitted bytes).
	Parallelism   int
	GenThreads    int
	CheckpointDir string

	// JournalPath, when set, keeps a per-shard journal of completed
	// cells. It makes a restarted worker skip re-simulating cells it
	// already finished, and it is the salvage input for the
	// coordinator's -resume-shards.
	JournalPath string

	// MaxOffline bounds transport retries; 0 selects DefaultMaxOffline.
	MaxOffline time.Duration

	// Injector injects deterministic faults into leased cells
	// (tests/CI chaos harness only).
	Injector *robust.Injector

	Client *http.Client // default http.DefaultClient
	Logf   func(format string, args ...any)
}

// Worker pulls lease batches from a coordinator, runs them through the
// fault-tolerant subset executor, and streams each completed record
// back as soon as it exists — a SIGKILL loses at most the in-flight
// cells of one lease.
type Worker struct {
	cfg  WorkerConfig
	spec experiments.GridSpec
	mode experiments.Mode
	opts experiments.GridOptions
}

// NewWorker fills defaults; the grid arrives at Run time.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.ID == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		cfg.ID = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	if cfg.MaxOffline <= 0 {
		cfg.MaxOffline = DefaultMaxOffline
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Worker{cfg: cfg}
}

// ID reports the worker's identity (useful when defaulted).
func (w *Worker) ID() string { return w.cfg.ID }

// errLeaseLost aborts a batch whose lease expired under us; the worker
// leases anew rather than exiting.
var errLeaseLost = errors.New("dist: lease lost")

// Run joins the coordinator and works until the sweep completes (nil),
// the context is cancelled (ctx.Err()), the coordinator stays
// unreachable past MaxOffline, or a fail-fast cell failure aborts the
// sweep.
func (w *Worker) Run(ctx context.Context) error {
	if err := w.fetchSpec(ctx); err != nil {
		return err
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var lease LeaseResponse
		max := w.mode.Parallelism
		if max < 1 {
			max = 1
		}
		if err := w.post(ctx, PathLease, LeaseRequest{WorkerID: w.cfg.ID, Max: max}, &lease); err != nil {
			return err
		}
		if lease.Done {
			w.cfg.Logf("dist: worker %s: sweep complete", w.cfg.ID)
			return nil
		}
		if len(lease.Indices) == 0 {
			retry := durationMS(lease.RetryMS)
			if retry <= 0 {
				retry = 250 * time.Millisecond
			}
			select {
			case <-time.After(retry):
			case <-ctx.Done():
				return ctx.Err()
			}
			continue
		}
		done, err := w.runBatch(ctx, lease)
		if err != nil {
			if errors.Is(err, errLeaseLost) {
				w.cfg.Logf("dist: worker %s: lease %d expired; re-leasing", w.cfg.ID, lease.LeaseID)
				continue
			}
			return err
		}
		if done {
			w.cfg.Logf("dist: worker %s: sweep complete", w.cfg.ID)
			return nil
		}
	}
}

// fetchSpec pulls and cross-checks the sweep definition, then compiles
// the grid locally. Version and salt mismatches are refusals, not
// retries: a worker built from different simulation semantics must not
// contribute records.
func (w *Worker) fetchSpec(ctx context.Context) error {
	var spec SpecResponse
	if err := w.post(ctx, PathSpec, struct{}{}, &spec); err != nil {
		return err
	}
	if spec.Version != ProtocolVersion {
		return fmt.Errorf("dist: coordinator speaks %q, this worker %q — rebuild the older side", spec.Version, ProtocolVersion)
	}
	if spec.Salt != experiments.GridJournalSalt {
		return fmt.Errorf("dist: coordinator journal salt %q != %q — simulation semantics differ, refusing to join", spec.Salt, experiments.GridJournalSalt)
	}
	g, err := experiments.ParseGridSpec(spec.Grid, spec.Windows, spec.Confidence)
	if err != nil {
		return fmt.Errorf("dist: compiling coordinator grid: %w", err)
	}
	if g.Cells() != spec.Cells {
		return fmt.Errorf("dist: grid compiles to %d cells here, %d at the coordinator — refusing to join", g.Cells(), spec.Cells)
	}
	// The grid string names scenario files, not contents; hash-compare
	// the local copies against the coordinator's so a stale spec or
	// trace on this host can't contribute records keyed to a different
	// scenario.
	if local := g.ScenarioDigests(); !slices.Equal(local, spec.ScenarioDigests) {
		return fmt.Errorf("dist: scenario digests here %v != coordinator %v — spec or trace files differ on this host, refusing to join",
			local, spec.ScenarioDigests)
	}
	onErr, err := robust.ParseFailPolicy(spec.Options.OnError)
	if err != nil {
		return fmt.Errorf("dist: coordinator options: %w", err)
	}
	w.spec = g
	w.mode = spec.Mode.Mode()
	w.mode.Parallelism = w.cfg.Parallelism
	w.mode.GenThreads = w.cfg.GenThreads
	w.mode.CheckpointDir = w.cfg.CheckpointDir
	w.opts = experiments.GridOptions{
		OnError: onErr,
		Retries: spec.Options.Retries,
		Backoff: robust.Backoff{
			Base: durationMS(spec.Options.BackoffMS),
			Cap:  durationMS(spec.Options.BackoffCapMS),
		},
		CellDeadline: durationMS(spec.Options.CellDeadlineMS),
		Injector:     w.cfg.Injector,
	}
	if w.cfg.JournalPath != "" {
		j, err := robust.OpenJournal(w.cfg.JournalPath)
		if err != nil {
			return fmt.Errorf("dist: shard journal: %w", err)
		}
		w.opts.Journal = j
		w.opts.Resume = true
	}
	w.cfg.Logf("dist: worker %s joined: %d cells, mode %s", w.cfg.ID, spec.Cells, w.mode.Name)
	return nil
}

// runBatch executes one lease: heartbeats keep it alive, each record
// reports the moment it completes. Returns done=true when a report
// response said the sweep finished.
func (w *Worker) runBatch(ctx context.Context, lease LeaseResponse) (done bool, err error) {
	ttl := durationMS(lease.TTLMS)
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	bctx, bcancel := context.WithCancel(ctx)
	defer bcancel()

	// Heartbeat at TTL/3 so two beats can be lost before the lease
	// expires. A beat that learns the lease is gone (or the sweep done)
	// cancels the batch.
	var hbExpired, hbDone bool
	hbStopped := make(chan struct{})
	go func() {
		defer close(hbStopped)
		t := time.NewTicker(ttl / 3)
		defer t.Stop()
		for {
			select {
			case <-bctx.Done():
				return
			case <-t.C:
				var resp HeartbeatResponse
				if herr := w.post(bctx, PathHeartbeat, HeartbeatRequest{WorkerID: w.cfg.ID, LeaseID: lease.LeaseID}, &resp); herr != nil {
					bcancel()
					return
				}
				if resp.Done {
					hbDone = true
					bcancel()
					return
				}
				if resp.Expired {
					hbExpired = true
					bcancel()
					return
				}
			}
		}
	}()

	var reportErr error
	runErr := experiments.RunGridSubsetOpts(bctx, w.spec, w.mode, w.opts, lease.Indices, func(r experiments.GridCellResult) bool {
		raw, merr := json.Marshal(r)
		if merr != nil {
			reportErr = merr
			return false
		}
		var resp ReportResponse
		if perr := w.post(bctx, PathReport, ReportRequest{
			WorkerID: w.cfg.ID,
			LeaseID:  lease.LeaseID,
			Records:  []json.RawMessage{raw},
		}, &resp); perr != nil {
			reportErr = perr
			return false
		}
		if resp.Done {
			done = true
			return false // any cells left in this lease completed elsewhere
		}
		if resp.Expired {
			reportErr = errLeaseLost
			return false
		}
		return true
	})
	bcancel()
	<-hbStopped

	switch {
	case ctx.Err() != nil:
		return false, ctx.Err()
	case hbDone || done:
		return true, nil
	case hbExpired || errors.Is(reportErr, errLeaseLost):
		return false, errLeaseLost
	case reportErr != nil:
		return false, reportErr
	case runErr != nil && !errors.Is(runErr, context.Canceled):
		// A fail-fast permanent cell failure (or executor validation
		// error): abort the whole sweep, then exit with it.
		var fr ReportResponse
		_ = w.post(ctx, PathReport, ReportRequest{WorkerID: w.cfg.ID, Fatal: runErr.Error()}, &fr)
		return false, runErr
	case runErr != nil:
		// Batch cancelled without a recorded cause: the heartbeat
		// goroutine lost the coordinator. Re-lease; transport retry
		// inside post already consumed MaxOffline if it was down.
		return false, errLeaseLost
	}
	return false, nil
}

// post sends one JSON request, retrying transport failures with capped
// backoff until MaxOffline elapses — a coordinator restart mid-sweep
// looks like a brief network blip from here.
func (w *Worker) post(ctx context.Context, path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	deadline := time.Now().Add(w.cfg.MaxOffline)
	bo := robust.Backoff{Base: 200 * time.Millisecond, Cap: 2 * time.Second}
	for attempt := 0; ; attempt++ {
		err = w.postOnce(ctx, path, body, resp)
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("dist: coordinator unreachable past %v: %w", w.cfg.MaxOffline, err)
		}
		if attempt == 0 {
			w.cfg.Logf("dist: worker %s: %s: %v (retrying)", w.cfg.ID, path, err)
		}
		if serr := bo.Sleep(ctx, attempt); serr != nil {
			return serr
		}
	}
}

func (w *Worker) postOnce(ctx context.Context, path string, body []byte, resp any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.cfg.URL+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	res, err := w.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: HTTP %d", path, res.StatusCode)
	}
	return json.NewDecoder(res.Body).Decode(resp)
}

// Close releases the worker's shard journal, if any.
func (w *Worker) Close() error {
	if w.opts.Journal != nil {
		return w.opts.Journal.Close()
	}
	return nil
}
