// Package dram models DRAM array geometry, area, and access latency. It is
// the reproduction's substitute for CACTI-3DD at the 22 nm node (paper
// Sec. VI-B) and drives three artifacts:
//
//   - Fig 7:  access latency and die area as a function of tile dimensions;
//   - Fig 8:  vault capacity vs access latency design-space scatter under a
//     4-die, 5 mm²-per-die area budget;
//   - Table I: the latency-optimized vs capacity-optimized vault designs.
//
// The model follows the paper's DRAM hierarchy (Sec. IV-A): a chip is
// divided into banks; banks into subarrays sharing sense amplifiers; and
// subarrays into tiles with local wordlines and drivers. Tile dimensions set
// bitline length (rows) and local wordline length (columns). Short lines are
// fast but demand more peripheral circuitry (a sense amplifier is ~100x a
// cell, Sec. IV-B), so latency is bought with area.
//
// Area model, in cell-area units, for an R-row x C-column tile:
//
//	overhead(R,C) = saRows/R + driverCols/C + tileFixed/(R*C) + periphery
//
// where saRows is the sense-amplifier strip height, driverCols the local
// wordline-driver strip width, tileFixed the per-tile decode/control block,
// and periphery the bank/chip-level fixed fraction (I/O, global decoders).
//
// Latency model (normalized to a 1024x1024 commodity tile):
//
//	tNorm(R,C) = tBase + tPerCol*C + tPerRowSq*R²
//
// The quadratic row term captures RC-limited bitline sensing, the linear
// column term local wordline propagation, and tBase the fixed
// decode/sense/IO pipeline. Constants are calibrated so the published
// anchors hold exactly (see model_test.go): shrinking tiles from 1024² to
// 256² cuts latency 64 % for 49 % more area, and a further step to 128²
// buys only 6 more points of latency for 150 % more area (paper Sec. IV-C).
package dram

import (
	"fmt"
	"math"
	"sort"
)

// Geometry and latency calibration constants. See the package comment for
// the functional form and DESIGN.md §2 for the calibration anchors.
const (
	// Area model (cell-area units).
	saRows      = 100.0   // sense-amplifier strip height per tile, in cell heights
	driverCols  = 26.45   // wordline-driver strip width per tile, in cell widths
	tileFixed   = 16553.0 // per-tile decoder/control block, in cell areas
	periphery   = 0.1     // bank + chip periphery as a fraction of cell area
	cellAreaUM2 = 3.3368e-3
	// Normalized latency model.
	tBase     = 0.2533
	tPerCol   = 3.125e-4
	tPerRowSq = 4.0691e-7
	// Physical latency scale for a die-stacked vault access (ns).
	arrayScaleNS   = 15.8256 // ns for one normalized latency unit
	fixedNS        = 0.27939 // TSV + IO mux fixed delay
	routePerSqrtMM = 0.080691
	// Die-stacking budget (paper Sec. IV-D): 4 DRAM dies, 5 mm² per vault
	// footprint to match the core area beneath.
	DiesPerVault = 4
	DieAreaMM2   = 5.0
	VaultAreaMM2 = DiesPerVault * DieAreaMM2
	bitsPerMB    = 8 << 20
)

// Tile is a DRAM tile geometry: Rows cells per bitline, Cols cells per
// local wordline.
type Tile struct {
	Rows, Cols int
}

func (t Tile) String() string { return fmt.Sprintf("%dx%d", t.Rows, t.Cols) }

// valid reports whether the tile has positive dimensions.
func (t Tile) valid() bool { return t.Rows > 0 && t.Cols > 0 }

// overhead returns total area divided by cell area for this tile geometry.
func (t Tile) overhead() float64 {
	r, c := float64(t.Rows), float64(t.Cols)
	return 1 + saRows/r + driverCols/c + tileFixed/(r*c) + periphery
}

// AreaEfficiency is DRAM cell area divided by total chip area
// (paper Sec. IV-A definition).
func (t Tile) AreaEfficiency() float64 { return 1 / t.overhead() }

// NormLatency is array access latency normalized to the 1024x1024
// commodity baseline tile.
func (t Tile) NormLatency() float64 {
	r, c := float64(t.Rows), float64(t.Cols)
	return tBase + tPerCol*c + tPerRowSq*r*r
}

// CommodityTile is the Micron-DDR3-like density-optimized baseline tile
// (paper Fig 7 baseline).
var CommodityTile = Tile{Rows: 1024, Cols: 1024}

// TilePoint is one point of the Fig 7 tile-dimension sweep.
type TilePoint struct {
	Tile    Tile
	Latency float64 // normalized to the 1024x1024 baseline
	Area    float64 // die area normalized to the 1024x1024 baseline
}

// TileSweep reproduces Fig 7: a square-tile sweep of a fixed-capacity die,
// reporting access latency and die area normalized to the 1024x1024
// baseline, from largest to smallest tile.
func TileSweep() []TilePoint {
	dims := []int{1024, 512, 256, 128, 64}
	baseL := CommodityTile.NormLatency()
	baseA := CommodityTile.overhead()
	pts := make([]TilePoint, 0, len(dims))
	for _, d := range dims {
		t := Tile{Rows: d, Cols: d}
		pts = append(pts, TilePoint{
			Tile:    t,
			Latency: t.NormLatency() / baseL,
			Area:    t.overhead() / baseA,
		})
	}
	return pts
}

// VaultDesign is one candidate organization of a die-stacked vault: a tile
// geometry plus a storage capacity, with derived area and timing.
type VaultDesign struct {
	Tile       Tile
	CapacityMB int
}

// bits returns the vault storage capacity in bits (= DRAM cells).
func (d VaultDesign) bits() float64 { return float64(d.CapacityMB) * bitsPerMB }

// AreaMM2 is the total silicon area of the vault across all stacked dies.
func (d VaultDesign) AreaMM2() float64 {
	return d.bits() * cellAreaUM2 * d.Tile.overhead() / 1e6
}

// Fits reports whether the design fits the 4-die x 5 mm² vault budget.
func (d VaultDesign) Fits() bool {
	return d.Tile.valid() && d.CapacityMB > 0 && d.AreaMM2() <= VaultAreaMM2+1e-9
}

// AccessNS is the unloaded vault array access latency in nanoseconds:
// fixed TSV/IO delay + scaled array time + global routing across the
// occupied area.
func (d VaultDesign) AccessNS() float64 {
	return fixedNS + arrayScaleNS*d.Tile.NormLatency() + routePerSqrtMM*math.Sqrt(d.AreaMM2())
}

// AccessCycles converts AccessNS to CPU cycles at the given clock.
func (d VaultDesign) AccessCycles(ghz float64) int {
	return int(math.Round(d.AccessNS() * ghz))
}

// Tiles is the total number of tiles in the vault.
func (d VaultDesign) Tiles() int64 {
	return int64(d.bits()) / int64(d.Tile.Rows*d.Tile.Cols)
}

// Banks derives the vault bank count: tiles are grouped so a bank spans
// roughly 2730 tiles (≈0.6 mm² of array in this technology), clamped to
// [8, 64] and rounded to a power of two. Latency-optimized designs with
// many small tiles therefore get many banks — the paper's "large number of
// banks per vault" optimization — while capacity-optimized designs get few.
func (d VaultDesign) Banks() int {
	raw := float64(d.Tiles()) / 2730
	b := 8
	for float64(b*2) <= raw && b < 64 {
		b *= 2
	}
	return b
}

func (d VaultDesign) String() string {
	return fmt.Sprintf("%dMB tile=%s %.2fmm² %.2fns", d.CapacityMB, d.Tile, d.AreaMM2(), d.AccessNS())
}

// tileGrid is the sweep grid for bitline/wordline divisions (Ndbl/Ndwl in
// the paper's terms): powers of two plus the 1.5x intermediate steps that
// asymmetric subarray divisions afford.
var tileGrid = []int{16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768, 1024}

// vaultCapacitiesMB is the capacity sweep used in Fig 8.
var vaultCapacitiesMB = []int{8, 16, 32, 64, 128, 256, 512}

// EnumerateVaultDesigns returns every design on the sweep grid that fits
// the vault area budget, sorted by (capacity, access latency). This is the
// scatter of Fig 8.
func EnumerateVaultDesigns() []VaultDesign {
	var out []VaultDesign
	for _, mb := range vaultCapacitiesMB {
		for _, r := range tileGrid {
			for _, c := range tileGrid {
				d := VaultDesign{Tile: Tile{Rows: r, Cols: c}, CapacityMB: mb}
				if d.Fits() {
					out = append(out, d)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].CapacityMB != out[j].CapacityMB {
			return out[i].CapacityMB < out[j].CapacityMB
		}
		return out[i].AccessNS() < out[j].AccessNS()
	})
	return out
}

// BestDesign returns the lowest-latency design for the given capacity, or
// false when no design on the grid fits the budget.
func BestDesign(capacityMB int) (VaultDesign, bool) {
	best := VaultDesign{}
	found := false
	for _, r := range tileGrid {
		for _, c := range tileGrid {
			d := VaultDesign{Tile: Tile{Rows: r, Cols: c}, CapacityMB: capacityMB}
			if !d.Fits() {
				continue
			}
			if !found || d.AccessNS() < best.AccessNS() {
				best, found = d, true
			}
		}
	}
	return best, found
}

// Envelope returns, for each swept capacity, the lowest-latency feasible
// design — the lower envelope of the Fig 8 scatter.
func Envelope() []VaultDesign {
	var out []VaultDesign
	for _, mb := range vaultCapacitiesMB {
		if d, ok := BestDesign(mb); ok {
			out = append(out, d)
		}
	}
	return out
}

// LatencyOptimized returns the paper's chosen design point: the 256 MB
// vault at ~5.5 ns that SILO uses (Sec. IV-D).
func LatencyOptimized() VaultDesign {
	d, ok := BestDesign(256)
	if !ok {
		panic("dram: no feasible 256MB design")
	}
	return d
}

// CapacityOptimized returns the alternative design point: the largest
// feasible capacity (512 MB) at its best latency, used by SILO-CO and
// representative of traditional capacity-first DRAM.
func CapacityOptimized() VaultDesign {
	d, ok := BestDesign(512)
	if !ok {
		panic("dram: no feasible 512MB design")
	}
	return d
}

// Comparison mirrors paper Table I: capacity-optimized values normalized to
// the latency-optimized design point.
type Comparison struct {
	AreaEfficiencyRatio float64 // capacity-opt / latency-opt (paper: 1.74x)
	TilesRatio          float64 // capacity-opt / latency-opt (paper: 0.25x)
	LatencyRatio        float64 // capacity-opt / latency-opt (paper: 1.8x)
}

// CompareDesignPoints computes Table I from the two canonical designs.
func CompareDesignPoints() Comparison {
	lo, co := LatencyOptimized(), CapacityOptimized()
	return Comparison{
		AreaEfficiencyRatio: co.Tile.AreaEfficiency() / lo.Tile.AreaEfficiency(),
		TilesRatio:          float64(co.Tiles()) / float64(lo.Tiles()),
		LatencyRatio:        co.AccessNS() / lo.AccessNS(),
	}
}
