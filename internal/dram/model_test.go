package dram

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", name, got, want, tol)
	}
}

// Paper Sec. IV-C anchors: 1024x1024 -> 256x256 cuts latency by 64% and
// costs 49% more area; 128x128 buys only 6 more points of latency for a
// total of +150% area.
func TestFig7Anchors(t *testing.T) {
	base := CommodityTile
	t256 := Tile{256, 256}
	t128 := Tile{128, 128}

	latBase := base.NormLatency()
	approx(t, "lat(256)/lat(1024)", t256.NormLatency()/latBase, 0.36, 0.005)
	approx(t, "lat(128)/lat(1024)", t128.NormLatency()/latBase, 0.30, 0.005)

	areaBase := base.overhead()
	approx(t, "area(256)/area(1024)", t256.overhead()/areaBase, 1.49, 0.01)
	approx(t, "area(128)/area(1024)", t128.overhead()/areaBase, 2.50, 0.01)
}

func TestTileSweepShape(t *testing.T) {
	pts := TileSweep()
	if len(pts) != 5 {
		t.Fatalf("TileSweep returned %d points, want 5", len(pts))
	}
	if pts[0].Tile != CommodityTile || pts[0].Latency != 1 || pts[0].Area != 1 {
		t.Fatalf("first point should be the normalized baseline, got %+v", pts[0])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Latency >= pts[i-1].Latency {
			t.Errorf("latency not decreasing at %v", pts[i].Tile)
		}
		if pts[i].Area <= pts[i-1].Area {
			t.Errorf("area not increasing at %v", pts[i].Tile)
		}
	}
	// Diminishing returns: the last step (128 -> 64) buys <4 points of
	// latency for a huge area cost.
	last, prev := pts[4], pts[3]
	if prev.Latency-last.Latency > 0.04 {
		t.Errorf("64x64 latency gain %v too large", prev.Latency-last.Latency)
	}
	if last.Area/prev.Area < 1.5 {
		t.Errorf("64x64 area blow-up %v too small", last.Area/prev.Area)
	}
}

// Paper Sec. IV-D anchors for the vault design space (Fig 8).
func TestFig8EnvelopeAnchors(t *testing.T) {
	env := map[int]VaultDesign{}
	for _, d := range Envelope() {
		env[d.CapacityMB] = d
	}
	for _, mb := range []int{8, 16, 32, 64, 128, 256, 512} {
		if _, ok := env[mb]; !ok {
			t.Fatalf("no feasible design for %dMB", mb)
		}
	}
	l8 := env[8].AccessNS()
	l128 := env[128].AccessNS()
	l256 := env[256].AccessNS()
	l512 := env[512].AccessNS()

	// 8MB -> 128MB: 16x capacity for <10% latency.
	if r := l128 / l8; r > 1.10 {
		t.Errorf("128MB/8MB latency ratio = %v, want <= 1.10", r)
	}
	// 256MB is the sweet spot at ~5.5ns.
	approx(t, "256MB latency (ns)", l256, 5.5, 0.1)
	// 128 -> 256MB costs a modest increase (paper ~15%; model ~10%).
	if r := l256 / l128; r < 1.05 || r > 1.20 {
		t.Errorf("256MB/128MB latency ratio = %v, want ~1.1-1.15", r)
	}
	// 256 -> 512MB explodes (~+80%).
	if r := l512 / l256; r < 1.6 || r > 2.0 {
		t.Errorf("512MB/256MB latency ratio = %v, want ~1.8", r)
	}
}

func TestEnvelopeMonotone(t *testing.T) {
	env := Envelope()
	for i := 1; i < len(env); i++ {
		if env[i].AccessNS() < env[i-1].AccessNS()-1e-9 {
			t.Errorf("envelope latency decreased from %dMB to %dMB", env[i-1].CapacityMB, env[i].CapacityMB)
		}
	}
}

func TestTable1Comparison(t *testing.T) {
	c := CompareDesignPoints()
	// Paper Table I: 1.74x area efficiency, 0.25x tiles, 1.8x latency.
	if c.AreaEfficiencyRatio < 1.5 || c.AreaEfficiencyRatio > 2.0 {
		t.Errorf("area efficiency ratio = %v, want ~1.74", c.AreaEfficiencyRatio)
	}
	if c.TilesRatio >= 0.5 {
		t.Errorf("tiles ratio = %v, want well below 1 (paper 0.25)", c.TilesRatio)
	}
	if c.LatencyRatio < 1.6 || c.LatencyRatio > 2.0 {
		t.Errorf("latency ratio = %v, want ~1.8", c.LatencyRatio)
	}
}

// Table II cross-check: the latency-optimized 256MB vault is an 11-cycle
// array access at 2GHz; the capacity-optimized 512MB vault is ~20 cycles.
func TestTable2VaultCycles(t *testing.T) {
	lo := LatencyOptimized()
	if lo.CapacityMB != 256 {
		t.Fatalf("latency-optimized capacity = %dMB, want 256", lo.CapacityMB)
	}
	if got := lo.AccessCycles(2.0); got != 11 {
		t.Errorf("latency-optimized access = %d cycles @2GHz, want 11", got)
	}
	co := CapacityOptimized()
	if co.CapacityMB != 512 {
		t.Fatalf("capacity-optimized capacity = %dMB, want 512", co.CapacityMB)
	}
	if got := co.AccessCycles(2.0); got < 19 || got > 21 {
		t.Errorf("capacity-optimized access = %d cycles @2GHz, want ~20", got)
	}
}

func TestVaultDesignFits(t *testing.T) {
	// The commodity tile easily fits small capacities.
	d := VaultDesign{Tile: CommodityTile, CapacityMB: 64}
	if !d.Fits() {
		t.Error("64MB commodity design should fit")
	}
	// Nothing fits 1GB in this budget.
	if _, ok := BestDesign(1024); ok {
		t.Error("1GB should not fit the 4x5mm² budget")
	}
	// Degenerate designs are rejected.
	if (VaultDesign{Tile: Tile{0, 64}, CapacityMB: 8}).Fits() {
		t.Error("zero-row tile should not fit")
	}
	if (VaultDesign{Tile: Tile{64, 64}, CapacityMB: 0}).Fits() {
		t.Error("zero-capacity design should not fit")
	}
}

func TestBanksDerivation(t *testing.T) {
	lo, co := LatencyOptimized(), CapacityOptimized()
	if lo.Banks() <= co.Banks() {
		t.Errorf("latency-optimized banks (%d) should exceed capacity-optimized (%d)",
			lo.Banks(), co.Banks())
	}
	if lo.Banks() != 32 {
		t.Errorf("latency-optimized banks = %d, want 32", lo.Banks())
	}
	if co.Banks() != 8 {
		t.Errorf("capacity-optimized banks = %d, want 8", co.Banks())
	}
}

func TestEnumerationSortedAndFeasible(t *testing.T) {
	all := EnumerateVaultDesigns()
	if len(all) == 0 {
		t.Fatal("no designs enumerated")
	}
	for i, d := range all {
		if !d.Fits() {
			t.Fatalf("enumerated design %v does not fit", d)
		}
		if i > 0 {
			prev := all[i-1]
			if d.CapacityMB < prev.CapacityMB {
				t.Fatal("not sorted by capacity")
			}
			if d.CapacityMB == prev.CapacityMB && d.AccessNS() < prev.AccessNS()-1e-12 {
				t.Fatal("not sorted by latency within capacity")
			}
		}
	}
}

// Properties of the analytic model.
func TestModelProperties(t *testing.T) {
	// Latency increases with rows and cols.
	f := func(r1, c1 uint8) bool {
		r := 16 + int(r1)%1000
		c := 16 + int(c1)%1000
		a := Tile{r, c}
		b := Tile{r + 16, c}
		d := Tile{r, c + 16}
		return b.NormLatency() > a.NormLatency() && d.NormLatency() > a.NormLatency()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatalf("latency monotonicity: %v", err)
	}
	// Area efficiency increases with tile size and never exceeds 1/(1+periphery).
	g := func(r1, c1 uint8) bool {
		r := 16 + int(r1)%1000
		c := 16 + int(c1)%1000
		a := Tile{r, c}
		b := Tile{r * 2, c * 2}
		if b.AreaEfficiency() <= a.AreaEfficiency() {
			return false
		}
		return a.AreaEfficiency() < 1/(1+periphery)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Fatalf("efficiency monotonicity: %v", err)
	}
	// Area scales linearly with capacity for a fixed tile.
	h := func(mb uint8) bool {
		m := 1 + int(mb)%512
		d1 := VaultDesign{Tile: Tile{128, 128}, CapacityMB: m}
		d2 := VaultDesign{Tile: Tile{128, 128}, CapacityMB: 2 * m}
		return math.Abs(d2.AreaMM2()-2*d1.AreaMM2()) < 1e-9
	}
	if err := quick.Check(h, nil); err != nil {
		t.Fatalf("area linearity: %v", err)
	}
}

func TestStringFormats(t *testing.T) {
	if (Tile{128, 64}).String() != "128x64" {
		t.Error("Tile.String format changed")
	}
	s := LatencyOptimized().String()
	if s == "" {
		t.Error("empty design string")
	}
}
