// Package dramcache models the conventional off-die DRAM cache of the
// Baseline+DRAM$ system (paper Sec. VI-A): 8 GB, hardware-managed,
// page-based, direct-mapped, built from commodity DRAM. Following the
// paper's optimistic assumptions, it has a flat 40 ns access (20 % faster
// than main memory), perfect miss prediction (a miss costs nothing extra:
// the request goes straight to memory), and infinite bandwidth.
//
// Pages are allocated on demand: a miss allocates the 2 KB page containing
// the line, so subsequent accesses to neighbouring lines hit — the
// page-based "footprint" behaviour the paper attributes to state-of-the-art
// server DRAM caches.
package dramcache

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/sim"
)

// Config sizes the conventional DRAM cache.
type Config struct {
	SizeBytes    int64
	PageBytes    int64
	AccessCycles sim.Cycle // hit latency (40ns = 80 cycles at 2GHz)
}

// Default returns the paper's configuration at the given core clock:
// 8 GB, 2 KB pages, 40 ns access.
func Default(ghz float64) Config {
	return Config{
		SizeBytes:    8 << 30,
		PageBytes:    2 << 10,
		AccessCycles: sim.Cycle(40 * ghz),
	}
}

// Cache is a direct-mapped page-granular DRAM cache.
type Cache struct {
	cfg   Config
	pages []uint64 // tag per direct-mapped page frame; 0 = empty
	// Stats.
	Hits       uint64
	Misses     uint64
	Allocs     uint64
	PageEvicts uint64
}

// New builds the cache. Sizes must be powers of two with at least one page.
func New(cfg Config) *Cache {
	if cfg.PageBytes <= 0 || cfg.PageBytes&(cfg.PageBytes-1) != 0 {
		panic(fmt.Sprintf("dramcache: page size %d not a power of two", cfg.PageBytes))
	}
	if cfg.SizeBytes < cfg.PageBytes || cfg.SizeBytes%cfg.PageBytes != 0 {
		panic(fmt.Sprintf("dramcache: size %d not divisible into %dB pages", cfg.SizeBytes, cfg.PageBytes))
	}
	frames := cfg.SizeBytes / cfg.PageBytes
	if frames&(frames-1) != 0 {
		panic(fmt.Sprintf("dramcache: frame count %d not a power of two", frames))
	}
	return &Cache{cfg: cfg, pages: make([]uint64, frames)}
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// pageTag returns a non-zero identifier for the page containing addr.
// Adding 1 keeps tag 0 meaning "empty frame" while remaining injective.
func (c *Cache) pageTag(addr mem.Addr) uint64 {
	return uint64(addr)/uint64(c.cfg.PageBytes) + 1
}

func (c *Cache) frame(addr mem.Addr) int {
	return int((uint64(addr) / uint64(c.cfg.PageBytes)) & uint64(len(c.pages)-1))
}

// Contains reports whether the page holding addr is cached.
func (c *Cache) Contains(addr mem.Addr) bool {
	return c.pages[c.frame(addr)] == c.pageTag(addr)
}

// Access performs one access: on a hit it returns (AccessCycles, true); on
// a miss it allocates the page (perfect miss prediction means the miss
// itself adds no latency — the caller goes to memory in parallel) and
// returns (0, false).
func (c *Cache) Access(addr mem.Addr) (sim.Cycle, bool) {
	f := c.frame(addr)
	t := c.pageTag(addr)
	if c.pages[f] == t {
		c.Hits++
		return c.cfg.AccessCycles, true
	}
	c.Misses++
	if c.pages[f] != 0 {
		c.PageEvicts++
	}
	c.pages[f] = t
	c.Allocs++
	return 0, false
}

// HitRate returns hits / (hits + misses), or 0 before any access.
func (c *Cache) HitRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Hits) / float64(total)
}
