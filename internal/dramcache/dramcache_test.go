package dramcache

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func small() *Cache {
	// 8 pages of 2KB for conflict testing.
	return New(Config{SizeBytes: 16 << 10, PageBytes: 2 << 10, AccessCycles: 80})
}

func TestDefaultConfig(t *testing.T) {
	cfg := Default(2.0)
	if cfg.SizeBytes != 8<<30 || cfg.PageBytes != 2<<10 {
		t.Fatalf("unexpected default geometry: %+v", cfg)
	}
	if cfg.AccessCycles != 80 { // 40ns at 2GHz
		t.Fatalf("access = %d cycles, want 80", cfg.AccessCycles)
	}
}

func TestMissThenPageHit(t *testing.T) {
	c := small()
	lat, hit := c.Access(0x1000)
	if hit || lat != 0 {
		t.Fatalf("first access should miss with zero latency (perfect missmap), got %d %v", lat, hit)
	}
	// Same line hits.
	if lat, hit := c.Access(0x1000); !hit || lat != 80 {
		t.Fatalf("second access should hit at 80 cycles, got %d %v", lat, hit)
	}
	// A different line in the same 2KB page also hits (footprint effect).
	if _, hit := c.Access(0x17C0); !hit {
		t.Fatal("neighbouring line in page should hit")
	}
	// A line in the next page misses.
	if _, hit := c.Access(0x1800); hit {
		t.Fatal("next page should miss")
	}
}

func TestDirectMappedPageConflict(t *testing.T) {
	c := small() // 8 frames: pages 0 and 8 collide
	c.Access(0)
	c.Access(8 * 2048)
	if c.PageEvicts != 1 {
		t.Fatalf("PageEvicts = %d, want 1", c.PageEvicts)
	}
	if _, hit := c.Access(0); hit {
		t.Fatal("page 0 should have been evicted by page 8")
	}
}

func TestAddressZeroIsCacheable(t *testing.T) {
	c := small()
	c.Access(0)
	if !c.Contains(0) {
		t.Fatal("address 0 must be representable (tag 0 reserved for empty)")
	}
}

func TestHitRate(t *testing.T) {
	c := small()
	if c.HitRate() != 0 {
		t.Fatal("empty cache hit rate should be 0")
	}
	c.Access(0)
	c.Access(0)
	c.Access(0)
	if hr := c.HitRate(); hr < 0.66 || hr > 0.67 {
		t.Fatalf("hit rate = %v, want 2/3", hr)
	}
}

func TestNewPanics(t *testing.T) {
	for _, cfg := range []Config{
		{SizeBytes: 16 << 10, PageBytes: 0},
		{SizeBytes: 16 << 10, PageBytes: 3000},
		{SizeBytes: 1 << 10, PageBytes: 2 << 10},
		{SizeBytes: 3 << 11, PageBytes: 2 << 10}, // 3 frames
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for %+v", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

// Property: after accessing addr, Contains(addr) is true and every address
// in the same page hits; accounting stays consistent.
func TestPageResidency(t *testing.T) {
	f := func(addrs []uint32) bool {
		c := small()
		for _, a := range addrs {
			addr := mem.Addr(a)
			c.Access(addr)
			if !c.Contains(addr) {
				return false
			}
			base := addr &^ mem.Addr(c.Config().PageBytes-1)
			if !c.Contains(base) || !c.Contains(base+mem.Addr(c.Config().PageBytes-1)) {
				return false
			}
		}
		return c.Hits+c.Misses == uint64(len(addrs)) && c.Allocs == c.Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
