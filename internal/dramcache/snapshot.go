package dramcache

import (
	"fmt"

	"repro/internal/checkpoint"
)

// Snapshot serializes the page-frame tag array and the hit/miss/alloc
// counters. Unlike the timing-only components, this state is live at
// the checkpoint cut: functional warm-up drives Access for every LLC
// fill, so the frame tags and counters carry the warmed contents.
func (c *Cache) Snapshot(w *checkpoint.Writer) {
	w.Section("dramcache.Cache")
	w.U64(c.Hits)
	w.U64(c.Misses)
	w.U64(c.Allocs)
	w.U64(c.PageEvicts)
	w.U64s(c.pages)
}

// Restore overwrites a freshly constructed cache.
func (c *Cache) Restore(r *checkpoint.Reader) error {
	if err := r.Section("dramcache.Cache"); err != nil {
		return err
	}
	hits := r.U64()
	misses := r.U64()
	allocs := r.U64()
	pageEvicts := r.U64()
	pages := r.U64s()
	if err := r.Err(); err != nil {
		return err
	}
	if len(pages) != len(c.pages) {
		return fmt.Errorf("dramcache: checkpoint has %d page frames, cache has %d", len(pages), len(c.pages))
	}
	copy(c.pages, pages)
	c.Hits = hits
	c.Misses = misses
	c.Allocs = allocs
	c.PageEvicts = pageEvicts
	return nil
}
