// Package energy implements the paper's hybrid energy model (Sec. VI-B):
// technology-derived per-access dynamic energies and static powers
// (Table III) combined with simulation event counts. It produces the
// memory-subsystem dynamic-energy breakdown of Fig 13 and the LLC power
// sanity check of Sec. VII-C.
package energy

// Params are the Table III technology parameters for one system.
type Params struct {
	// LLC (SRAM banks or DRAM vaults).
	LLCStaticWPerBank float64 // W per bank/vault
	LLCBanks          int
	LLCDynNJ          float64 // nJ per LLC access
	// Main memory.
	MemStaticW float64
	MemDynNJ   float64 // nJ per memory access (reads and writebacks)
}

// BaselineParams is the shared SRAM LLC system: 30 mW static per bank and
// 0.25 nJ/access, with a 4 W, 20 nJ/access main memory.
func BaselineParams(banks int) Params {
	return Params{
		LLCStaticWPerBank: 0.030,
		LLCBanks:          banks,
		LLCDynNJ:          0.25,
		MemStaticW:        4,
		MemDynNJ:          20,
	}
}

// SILOParams is the die-stacked vault system: 120 mW static per vault and
// 0.4 nJ/access.
func SILOParams(vaults int) Params {
	return Params{
		LLCStaticWPerBank: 0.120,
		LLCBanks:          vaults,
		LLCDynNJ:          0.4,
		MemStaticW:        4,
		MemDynNJ:          20,
	}
}

// Breakdown is the energy spent over one measurement window.
type Breakdown struct {
	LLCDynamicJ float64
	MemDynamicJ float64
	LLCStaticJ  float64
	MemStaticJ  float64
}

// DynamicJ is the total dynamic energy (the Fig 13 quantity).
func (b Breakdown) DynamicJ() float64 { return b.LLCDynamicJ + b.MemDynamicJ }

// TotalJ includes static energy.
func (b Breakdown) TotalJ() float64 {
	return b.DynamicJ() + b.LLCStaticJ + b.MemStaticJ
}

// Compute turns event counts over a window of `seconds` into energy.
// llcAccesses counts LLC bank/vault accesses (data and metadata);
// memAccesses counts demand reads plus writebacks.
func Compute(p Params, llcAccesses, memAccesses uint64, seconds float64) Breakdown {
	return Breakdown{
		LLCDynamicJ: float64(llcAccesses) * p.LLCDynNJ * 1e-9,
		MemDynamicJ: float64(memAccesses) * p.MemDynNJ * 1e-9,
		LLCStaticJ:  p.LLCStaticWPerBank * float64(p.LLCBanks) * seconds,
		MemStaticJ:  p.MemStaticW * seconds,
	}
}

// LLCPowerW is the LLC's total power over the window (static + dynamic),
// the Sec. VII-C sanity check that SILO's vault power stays under ~2.5 W.
func LLCPowerW(p Params, llcAccesses uint64, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	b := Compute(p, llcAccesses, 0, seconds)
	return b.LLCStaticJ/seconds + b.LLCDynamicJ/seconds
}
