package energy

import (
	"math"
	"testing"
)

func TestTable3Parameters(t *testing.T) {
	b := BaselineParams(16)
	if b.LLCStaticWPerBank != 0.030 || b.LLCDynNJ != 0.25 {
		t.Fatalf("baseline LLC params wrong: %+v", b)
	}
	s := SILOParams(16)
	if s.LLCStaticWPerBank != 0.120 || s.LLCDynNJ != 0.4 {
		t.Fatalf("SILO params wrong: %+v", s)
	}
	if b.MemStaticW != 4 || b.MemDynNJ != 20 || s.MemDynNJ != 20 {
		t.Fatal("memory params wrong")
	}
}

func TestComputeArithmetic(t *testing.T) {
	p := BaselineParams(16)
	// 1e9 LLC accesses at 0.25nJ = 0.25J; 1e8 memory accesses at 20nJ = 2J.
	b := Compute(p, 1e9, 1e8, 1.0)
	if math.Abs(b.LLCDynamicJ-0.25) > 1e-12 {
		t.Fatalf("LLC dynamic = %v, want 0.25", b.LLCDynamicJ)
	}
	if math.Abs(b.MemDynamicJ-2.0) > 1e-12 {
		t.Fatalf("mem dynamic = %v, want 2", b.MemDynamicJ)
	}
	if math.Abs(b.LLCStaticJ-0.48) > 1e-12 { // 16 banks x 30mW x 1s
		t.Fatalf("LLC static = %v, want 0.48", b.LLCStaticJ)
	}
	if math.Abs(b.MemStaticJ-4.0) > 1e-12 {
		t.Fatalf("mem static = %v, want 4", b.MemStaticJ)
	}
	if math.Abs(b.DynamicJ()-2.25) > 1e-12 || math.Abs(b.TotalJ()-6.73) > 1e-12 {
		t.Fatalf("totals wrong: dyn=%v total=%v", b.DynamicJ(), b.TotalJ())
	}
}

// Memory accesses dominate dynamic energy per access by 50-80x, which is
// why SILO's miss-rate reduction shrinks dynamic energy (Fig 13).
func TestMemoryDominatesDynamic(t *testing.T) {
	bl := Compute(BaselineParams(16), 1000, 1000, 1)
	if bl.MemDynamicJ < 50*bl.LLCDynamicJ {
		t.Fatal("memory should dominate per-access energy")
	}
}

// Paper Sec. VII-C: SILO's total LLC power stays below ~2.5W for realistic
// access rates (16 vaults, ~1 access/vault every few ns).
func TestSILOLLCPowerBound(t *testing.T) {
	p := SILOParams(16)
	// Measured window: 200K cycles at 2GHz = 100µs. Realistic vault access
	// rate: ~4% of instructions miss the L1s at ~1 IPC per core, so 16
	// cores produce about 200K*16*0.04 vault accesses per window.
	seconds := 100e-6
	accesses := uint64(200_000 * 16 * 4 / 100)
	w := LLCPowerW(p, accesses, seconds)
	if w > 2.5 {
		t.Fatalf("SILO LLC power %vW exceeds the paper's 2.5W bound", w)
	}
	if w < 16*0.120 {
		t.Fatal("power below static floor")
	}
}

func TestLLCPowerZeroWindow(t *testing.T) {
	if LLCPowerW(SILOParams(16), 100, 0) != 0 {
		t.Fatal("zero window should produce zero power")
	}
}
