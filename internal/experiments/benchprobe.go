package experiments

import (
	"math"
	"time"

	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/workload"
)

// ThroughputWindow is the measured window per iteration of the hot-path
// throughput probe.
const ThroughputWindow sim.Cycle = 10_000

// ThroughputSystem builds the warmed reference system that both
// BenchmarkSystemSimulationThroughput and paperbench -bench-json measure:
// a 16-core SILO machine running Web Search at Scale 32, analytically
// pre-warmed then functionally warmed. Keeping the harness in one place
// keeps BENCH_<date>.json snapshots comparable to the go test -bench
// numbers across commits.
func ThroughputSystem() *core.System { return ThroughputSystemAt(32) }

// ThroughputSystemAt is ThroughputSystem at an arbitrary capacity scale.
// Scale 32 is the cache-resident regime of the historical snapshots;
// Scale 1-4 is the paper-scale regime — multi-GB aggregate vault
// capacity, coherence line tables with millions of live entries — that
// the compact-slot stores target (DESIGN.md §8's scale note).
func ThroughputSystemAt(scale int64) *core.System {
	sys, _ := throughputSystemCkpt(scale, "", nil)
	return sys
}

// throughputWarmInstr is the probe harness's functional warm-up length.
const throughputWarmInstr = 100_000

// throughputSystemCkpt is ThroughputSystemAt through the shared warm
// harness, optionally restoring from / saving to a checkpoint dir.
func throughputSystemCkpt(scale int64, ckptDir string, cs *CheckpointStats) (*core.System, WarmInfo) {
	cfg := core.SILOConfig(16)
	cfg.Scale = scale
	return buildWarm(cfg, []workload.Spec{workload.WebSearch()}, throughputWarmInstr, ckptDir, cs, nil)
}

// PaperScales are the capacity scales the paper-scale throughput probe
// measures: Scale 1 is the paper's exact footprint (4GB aggregate vault
// capacity on 16 cores), Scale 4 the cheapest point still in the
// multi-million-entry table regime.
var PaperScales = []int64{1, 4}

// PaperScalePoint is one scale's measurement from RunPaperScaleProbe.
type PaperScalePoint struct {
	Scale int64 `json:"scale"`
	// NsPerOp is the best-round wall time per ThroughputWindow iteration
	// (the go test -bench convention, comparable to system_throughput).
	NsPerOp      float64 `json:"ns_per_op"`
	InstrPerIter float64 `json:"instr_per_iter"`
	// Line-table regime evidence: live coherence entries after warm-up +
	// measurement, the store's inline bytes per slot, and their product
	// (the live inline table footprint on the host).
	LineTableEntries int   `json:"line_table_entries"`
	BytesPerSlot     int   `json:"bytes_per_slot"`
	LineTableBytes   int64 `json:"line_table_bytes"`
	// WarmupSec is the host cost of building the warmed system — at paper
	// scale it dominates, which is why the probe measures few rounds.
	WarmupSec float64 `json:"warmup_sec"`
	// RestoreSec is the wall time of restoring the warmed system from a
	// checkpoint, and CheckpointHit records whether a restore happened.
	// Zero/false when no checkpoint dir was configured or on a cold miss;
	// WarmupSec then carries the cold build cost as before.
	RestoreSec    float64 `json:"restore_sec"`
	CheckpointHit bool    `json:"checkpoint_hit"`
}

// RunPaperScaleProbe builds the throughput harness at the given scale and
// measures it exactly like the Scale-32 throughput probe: minWall-long
// rounds of ThroughputWindow iterations, best round reported. rounds is
// small (2) and minWall short (500ms) because paper-scale warm-up, not
// measurement, dominates the probe's host cost.
func RunPaperScaleProbe(scale int64) PaperScalePoint {
	return RunPaperScaleProbeCkpt(scale, "", nil)
}

// RunPaperScaleProbeCkpt is RunPaperScaleProbe with warm-state
// checkpointing: when ckptDir is non-empty the warmed system is
// restored from a prior run's checkpoint if one matches (recorded in
// RestoreSec/CheckpointHit) and saved after a cold build.
func RunPaperScaleProbeCkpt(scale int64, ckptDir string, cs *CheckpointStats) PaperScalePoint {
	p := PaperScalePoint{Scale: scale}
	sys, wi := throughputSystemCkpt(scale, ckptDir, cs)
	defer sys.Close()
	p.WarmupSec = wi.WarmupSec
	p.RestoreSec = wi.RestoreSec
	p.CheckpointHit = wi.Hit

	const (
		rounds  = 2
		minWall = 500 * time.Millisecond
	)
	var iters int
	var retired uint64
	best := bestOfRounds(rounds, minWall, func() {
		m := sys.Run(0, ThroughputWindow)
		retired += m.Retired
		iters++
	})
	p.NsPerOp = best
	p.InstrPerIter = float64(retired) / float64(iters)
	p.LineTableEntries, p.BytesPerSlot = sys.LineTable()
	p.LineTableBytes = int64(p.LineTableEntries) * int64(p.BytesPerSlot)
	return p
}

// bestOfRounds runs rounds of minWall-long iteration loops and returns the
// best round's ns per iteration — the go test -bench-style measurement the
// throughput probes share.
func bestOfRounds(rounds int, minWall time.Duration, iter func()) float64 {
	best := math.Inf(1)
	for r := 0; r < rounds; r++ {
		roundIters := 0
		start := time.Now()
		for time.Since(start) < minWall {
			iter()
			roundIters++
		}
		if ns := float64(time.Since(start).Nanoseconds()) / float64(roundIters); ns < best {
			best = ns
		}
	}
	return best
}

// GenOverlapPoint is one scale's serial-vs-ring comparison from
// RunGenOverlapProbe: the same system built, warmed and measured twice —
// once synchronous, once with GenThreads producer goroutines.
type GenOverlapPoint struct {
	Scale      int64 `json:"scale"`
	GenThreads int   `json:"gen_threads"`
	// Warm-up wall time per path: at paper scale functional warm-up is
	// generation-dominated, so this is where the overlap shows first.
	SerialWarmSec float64 `json:"serial_warm_sec"`
	RingWarmSec   float64 `json:"ring_warm_sec"`
	// Timed-phase cost per path (best-of-rounds, same convention as the
	// throughput probes). ring_ns_per_op is the regression-gated metric.
	SerialNsPerOp float64 `json:"serial_ns_per_op"`
	RingNsPerOp   float64 `json:"ring_ns_per_op"`
}

// RunGenOverlapProbe measures the off-thread generation win at one scale:
// two cold builds of the reference throughput system (no checkpoints —
// warm-up time is half the point), one at GenThreads 0 and one at
// genThreads, each timed through warm-up and a best-of throughput
// measurement. Both paths are bit-identical in simulated results
// (core.TestGenThreadsBitIdentical); this probe records what the host
// paid. On a single-core host the ring path shows its handoff overhead
// rather than a win — Host in the snapshot says which regime was
// measured.
func RunGenOverlapProbe(scale int64, genThreads int) GenOverlapPoint {
	p := GenOverlapPoint{Scale: scale, GenThreads: genThreads}
	const (
		rounds  = 2
		minWall = 500 * time.Millisecond
	)
	measure := func(gen int) (warmSec, nsPerOp float64) {
		cfg := core.SILOConfig(16)
		cfg.Scale = scale
		cfg.GenThreads = gen
		t0 := time.Now()
		sys := core.NewSystem(cfg, []workload.Spec{workload.WebSearch()})
		defer sys.Close()
		sys.Prewarm()
		sys.WarmFunctional(throughputWarmInstr)
		warmSec = time.Since(t0).Seconds()
		nsPerOp = bestOfRounds(rounds, minWall, func() { sys.Run(0, ThroughputWindow) })
		return warmSec, nsPerOp
	}
	p.SerialWarmSec, p.SerialNsPerOp = measure(0)
	p.RingWarmSec, p.RingNsPerOp = measure(genThreads)
	return p
}

// SchedulerProbeEvents is the number of events one scheduler probe run
// schedules and dispatches.
const SchedulerProbeEvents = 1 << 20

// RunSchedulerProbe drives the given event-queue implementation through the
// simulator's canonical event mix — a steady population of in-flight events
// completing at vault/LLC-scale short delays, with a sprinkling of
// far-future events that exercise the calendar queue's overflow path — and
// returns the events executed (SchedulerProbeEvents plus the drained
// steady-state population; callers time the call and divide). bench_test.go
// and paperbench -bench-json share this probe so
// BENCH_<date>.json scheduler numbers stay comparable to go test -bench
// output.
func RunSchedulerProbe(kind sim.SchedulerKind) uint64 {
	e := sim.NewEngineWithScheduler(kind)
	fn := func(uint64) {}
	const population = 512
	for i := 0; i < population; i++ {
		e.ScheduleArg(sim.Cycle(i%48+1), fn, 0)
	}
	start := e.Executed()
	for i := 0; i < SchedulerProbeEvents; i++ {
		delay := sim.Cycle(i%48 + 1) // vault access scale (paper Table II: ~23)
		if i%64 == 0 {
			delay = sim.Cycle(i%1500 + 300) // refresh/idle-timer scale
		}
		e.ScheduleArg(delay, fn, uint64(i))
		e.Step()
	}
	e.RunAll()
	return e.Executed() - start
}

// ArrayProbeOps is the number of cache-array accesses one array probe run
// performs.
const ArrayProbeOps = 1 << 20

// RunArrayProbe drives cache.Array through the simulator's canonical
// access mix — a hot L1-shaped array (mostly hits: probe + touch) and a
// large direct-mapped vault-shaped array (the SILO LLC slice: probe, then
// fill on miss) — and returns the accesses performed. bench_test.go
// (BenchmarkArrayProbe) and paperbench -bench-json share this probe so
// BENCH_<date>.json array numbers stay comparable to go test -bench
// output.
func RunArrayProbe() uint64 {
	l1 := cache.NewArray(2<<10, 8, cache.LRU)    // scaled L1 shape
	vault := cache.NewArray(8<<20, 1, cache.LRU) // scaled 256MB vault at Scale 32
	rng := sim.NewRNG(0x5EED)
	l1Lines := uint64(l1.SizeBytes()/mem.LineSize) * 2 // 2x capacity: conflicts
	vaultLines := uint64(vault.SizeBytes()/mem.LineSize) * 2
	for i := 0; i < ArrayProbeOps; i++ {
		if i%4 != 0 {
			// L1 traffic: hit-dominated probe+touch, insert on miss.
			line := mem.LineAddr(rng.Uint64n(l1Lines) * mem.LineSize)
			if w := l1.Probe(line); w != cache.NoWay {
				l1.TouchWay(w)
			} else {
				l1.InsertAt(line, cache.Shared)
			}
		} else {
			// Vault traffic: direct-mapped probe, streaming fills demoted.
			line := mem.LineAddr(rng.Uint64n(vaultLines) * mem.LineSize)
			if w := vault.Probe(line); w != cache.NoWay {
				vault.TouchWay(w)
			} else {
				w, _, _ := vault.InsertAt(line, cache.Shared)
				if i%16 == 0 {
					vault.DemoteWay(w)
				}
			}
		}
	}
	return ArrayProbeOps
}

// StreamProbeOps is the number of trace ops one stream probe run
// generates.
const StreamProbeOps = 1 << 20

// streamProbeBatch matches the cpu core's refill size so the batched
// probe measures exactly the path the simulation hot loop pays.
const streamProbeBatch = 16

// RunStreamProbe drives the workload trace generator through the
// simulator's canonical stream (Web Search at Scale 32, a 16-core
// system's core 0) either op by op (Next, the serial reference) or
// through the batched refill path (NextBatch) the cpu core consumes
// from, and returns the ops generated. Both paths produce bit-identical
// op sequences (workload.TestNextBatchMatchesNext); the probe exists to
// quantify the batching win. bench_test.go (BenchmarkStreamProbe*) and
// paperbench -bench-json share it so BENCH_<date>.json stream numbers
// stay comparable to go test -bench output.
func RunStreamProbe(batched bool) uint64 {
	st := workload.NewStream(workload.WebSearch(), 0, 16, 32, 0x5EED)
	if batched {
		var buf [streamProbeBatch]workload.Op
		for n := 0; n < StreamProbeOps; n += streamProbeBatch {
			st.NextBatch(buf[:])
		}
	} else {
		var op workload.Op
		for n := 0; n < StreamProbeOps; n++ {
			st.Next(&op)
		}
	}
	return StreamProbeOps
}

// CoherenceTableOps is the number of coherence operations one table probe
// run performs.
const CoherenceTableOps = 1 << 20

// RunCoherenceTableProbe drives both coherence substrates — the MOESI
// directory and the MESI snoop filter — through a read/share/write/evict
// cycle over a line population large enough to exercise the store's
// growth and deletion paths, on the given store implementation. Returns
// the operations performed; bench_test.go (BenchmarkCoherenceTable*) and
// paperbench -bench-json share it.
func RunCoherenceTableProbe(kind coherence.StoreKind) uint64 {
	const cores = 16
	const lines = 1 << 16
	dir := coherence.NewDirectoryWithStore(cores, coherence.MOESI, kind)
	snoop := coherence.NewSnoopFilterWithStore(cores, kind)
	// 7 store-touching operations per iteration: the StateOf guard always
	// probes, and the guarded Read always fires in steady state because
	// the preceding iteration's Evict emptied the line's entry.
	for i := 0; i < CoherenceTableOps/7; i++ {
		line := mem.LineAddr(uint64(i%lines) * mem.LineSize)
		r := i % cores
		w := (i + 7) % cores
		if dir.StateOf(line, r) == cache.Invalid {
			dir.Read(line, r)
		}
		dir.WriteMask(line, w)
		dir.Evict(line, w)
		snoop.Read(line, r)
		snoop.WriteMask(line, w)
		snoop.Evict(line, w, false)
	}
	return CoherenceTableOps / 7 * 7
}
