package experiments

import (
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// ThroughputWindow is the measured window per iteration of the hot-path
// throughput probe.
const ThroughputWindow sim.Cycle = 10_000

// ThroughputSystem builds the warmed reference system that both
// BenchmarkSystemSimulationThroughput and paperbench -bench-json measure:
// a 16-core SILO machine running Web Search at Scale 32, analytically
// pre-warmed then functionally warmed. Keeping the harness in one place
// keeps BENCH_<date>.json snapshots comparable to the go test -bench
// numbers across commits.
func ThroughputSystem() *core.System {
	cfg := core.SILOConfig(16)
	cfg.Scale = 32
	sys := core.NewSystem(cfg, []workload.Spec{workload.WebSearch()})
	sys.Prewarm()
	sys.WarmFunctional(100_000)
	return sys
}

// SchedulerProbeEvents is the number of events one scheduler probe run
// schedules and dispatches.
const SchedulerProbeEvents = 1 << 20

// RunSchedulerProbe drives the given event-queue implementation through the
// simulator's canonical event mix — a steady population of in-flight events
// completing at vault/LLC-scale short delays, with a sprinkling of
// far-future events that exercise the calendar queue's overflow path — and
// returns the events executed (SchedulerProbeEvents plus the drained
// steady-state population; callers time the call and divide). bench_test.go
// and paperbench -bench-json share this probe so
// BENCH_<date>.json scheduler numbers stay comparable to go test -bench
// output.
func RunSchedulerProbe(kind sim.SchedulerKind) uint64 {
	e := sim.NewEngineWithScheduler(kind)
	fn := func(uint64) {}
	const population = 512
	for i := 0; i < population; i++ {
		e.ScheduleArg(sim.Cycle(i%48+1), fn, 0)
	}
	start := e.Executed()
	for i := 0; i < SchedulerProbeEvents; i++ {
		delay := sim.Cycle(i%48 + 1) // vault access scale (paper Table II: ~23)
		if i%64 == 0 {
			delay = sim.Cycle(i%1500 + 300) // refresh/idle-timer scale
		}
		e.ScheduleArg(delay, fn, uint64(i))
		e.Step()
	}
	e.RunAll()
	return e.Executed() - start
}
