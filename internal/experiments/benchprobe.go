package experiments

import (
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// ThroughputWindow is the measured window per iteration of the hot-path
// throughput probe.
const ThroughputWindow sim.Cycle = 10_000

// ThroughputSystem builds the warmed reference system that both
// BenchmarkSystemSimulationThroughput and paperbench -bench-json measure:
// a 16-core SILO machine running Web Search at Scale 32, analytically
// pre-warmed then functionally warmed. Keeping the harness in one place
// keeps BENCH_<date>.json snapshots comparable to the go test -bench
// numbers across commits.
func ThroughputSystem() *core.System {
	cfg := core.SILOConfig(16)
	cfg.Scale = 32
	sys := core.NewSystem(cfg, []workload.Spec{workload.WebSearch()})
	sys.Prewarm()
	sys.WarmFunctional(100_000)
	return sys
}
