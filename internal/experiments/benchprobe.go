package experiments

import (
	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/workload"
)

// ThroughputWindow is the measured window per iteration of the hot-path
// throughput probe.
const ThroughputWindow sim.Cycle = 10_000

// ThroughputSystem builds the warmed reference system that both
// BenchmarkSystemSimulationThroughput and paperbench -bench-json measure:
// a 16-core SILO machine running Web Search at Scale 32, analytically
// pre-warmed then functionally warmed. Keeping the harness in one place
// keeps BENCH_<date>.json snapshots comparable to the go test -bench
// numbers across commits.
func ThroughputSystem() *core.System {
	cfg := core.SILOConfig(16)
	cfg.Scale = 32
	sys := core.NewSystem(cfg, []workload.Spec{workload.WebSearch()})
	sys.Prewarm()
	sys.WarmFunctional(100_000)
	return sys
}

// SchedulerProbeEvents is the number of events one scheduler probe run
// schedules and dispatches.
const SchedulerProbeEvents = 1 << 20

// RunSchedulerProbe drives the given event-queue implementation through the
// simulator's canonical event mix — a steady population of in-flight events
// completing at vault/LLC-scale short delays, with a sprinkling of
// far-future events that exercise the calendar queue's overflow path — and
// returns the events executed (SchedulerProbeEvents plus the drained
// steady-state population; callers time the call and divide). bench_test.go
// and paperbench -bench-json share this probe so
// BENCH_<date>.json scheduler numbers stay comparable to go test -bench
// output.
func RunSchedulerProbe(kind sim.SchedulerKind) uint64 {
	e := sim.NewEngineWithScheduler(kind)
	fn := func(uint64) {}
	const population = 512
	for i := 0; i < population; i++ {
		e.ScheduleArg(sim.Cycle(i%48+1), fn, 0)
	}
	start := e.Executed()
	for i := 0; i < SchedulerProbeEvents; i++ {
		delay := sim.Cycle(i%48 + 1) // vault access scale (paper Table II: ~23)
		if i%64 == 0 {
			delay = sim.Cycle(i%1500 + 300) // refresh/idle-timer scale
		}
		e.ScheduleArg(delay, fn, uint64(i))
		e.Step()
	}
	e.RunAll()
	return e.Executed() - start
}

// ArrayProbeOps is the number of cache-array accesses one array probe run
// performs.
const ArrayProbeOps = 1 << 20

// RunArrayProbe drives cache.Array through the simulator's canonical
// access mix — a hot L1-shaped array (mostly hits: probe + touch) and a
// large direct-mapped vault-shaped array (the SILO LLC slice: probe, then
// fill on miss) — and returns the accesses performed. bench_test.go
// (BenchmarkArrayProbe) and paperbench -bench-json share this probe so
// BENCH_<date>.json array numbers stay comparable to go test -bench
// output.
func RunArrayProbe() uint64 {
	l1 := cache.NewArray(2<<10, 8, cache.LRU)    // scaled L1 shape
	vault := cache.NewArray(8<<20, 1, cache.LRU) // scaled 256MB vault at Scale 32
	rng := sim.NewRNG(0x5EED)
	l1Lines := uint64(l1.SizeBytes()/mem.LineSize) * 2 // 2x capacity: conflicts
	vaultLines := uint64(vault.SizeBytes()/mem.LineSize) * 2
	for i := 0; i < ArrayProbeOps; i++ {
		if i%4 != 0 {
			// L1 traffic: hit-dominated probe+touch, insert on miss.
			line := mem.LineAddr(rng.Uint64n(l1Lines) * mem.LineSize)
			if w := l1.Probe(line); w != cache.NoWay {
				l1.TouchWay(w)
			} else {
				l1.InsertAt(line, cache.Shared)
			}
		} else {
			// Vault traffic: direct-mapped probe, streaming fills demoted.
			line := mem.LineAddr(rng.Uint64n(vaultLines) * mem.LineSize)
			if w := vault.Probe(line); w != cache.NoWay {
				vault.TouchWay(w)
			} else {
				w, _, _ := vault.InsertAt(line, cache.Shared)
				if i%16 == 0 {
					vault.DemoteWay(w)
				}
			}
		}
	}
	return ArrayProbeOps
}

// StreamProbeOps is the number of trace ops one stream probe run
// generates.
const StreamProbeOps = 1 << 20

// streamProbeBatch matches the cpu core's refill size so the batched
// probe measures exactly the path the simulation hot loop pays.
const streamProbeBatch = 16

// RunStreamProbe drives the workload trace generator through the
// simulator's canonical stream (Web Search at Scale 32, a 16-core
// system's core 0) either op by op (Next, the serial reference) or
// through the batched refill path (NextBatch) the cpu core consumes
// from, and returns the ops generated. Both paths produce bit-identical
// op sequences (workload.TestNextBatchMatchesNext); the probe exists to
// quantify the batching win. bench_test.go (BenchmarkStreamProbe*) and
// paperbench -bench-json share it so BENCH_<date>.json stream numbers
// stay comparable to go test -bench output.
func RunStreamProbe(batched bool) uint64 {
	st := workload.NewStream(workload.WebSearch(), 0, 16, 32, 0x5EED)
	if batched {
		var buf [streamProbeBatch]workload.Op
		for n := 0; n < StreamProbeOps; n += streamProbeBatch {
			st.NextBatch(buf[:])
		}
	} else {
		var op workload.Op
		for n := 0; n < StreamProbeOps; n++ {
			st.Next(&op)
		}
	}
	return StreamProbeOps
}

// CoherenceTableOps is the number of coherence operations one table probe
// run performs.
const CoherenceTableOps = 1 << 20

// RunCoherenceTableProbe drives both coherence substrates — the MOESI
// directory and the MESI snoop filter — through a read/share/write/evict
// cycle over a line population large enough to exercise the store's
// growth and deletion paths, on the given store implementation. Returns
// the operations performed; bench_test.go (BenchmarkCoherenceTable*) and
// paperbench -bench-json share it.
func RunCoherenceTableProbe(kind coherence.StoreKind) uint64 {
	const cores = 16
	const lines = 1 << 16
	dir := coherence.NewDirectoryWithStore(cores, coherence.MOESI, kind)
	snoop := coherence.NewSnoopFilterWithStore(cores, kind)
	// 7 store-touching operations per iteration: the StateOf guard always
	// probes, and the guarded Read always fires in steady state because
	// the preceding iteration's Evict emptied the line's entry.
	for i := 0; i < CoherenceTableOps/7; i++ {
		line := mem.LineAddr(uint64(i%lines) * mem.LineSize)
		r := i % cores
		w := (i + 7) % cores
		if dir.StateOf(line, r) == cache.Invalid {
			dir.Read(line, r)
		}
		dir.WriteMask(line, w)
		dir.Evict(line, w)
		snoop.Read(line, r)
		snoop.WriteMask(line, w)
		snoop.Evict(line, w, false)
	}
	return CoherenceTableOps / 7 * 7
}
