package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/energy"
	"repro/internal/stats"
	"repro/internal/workload"
)

// --- Fig 7 / Fig 8 / Table I: DRAM technology studies ---------------------

// Fig7 returns the tile-dimension sweep (analytical; no simulation).
func Fig7() []dram.TilePoint { return dram.TileSweep() }

// Fig7String renders Fig 7 as a table.
func Fig7String() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Fig 7: effect of DRAM tile dimensions (normalized to 1024x1024)")
	fmt.Fprintln(&b, header("tile", "latency", "area"))
	for _, p := range Fig7() {
		fmt.Fprintf(&b, "%s\t%.3f\t%.3f\n", p.Tile, p.Latency, p.Area)
	}
	return b.String()
}

// Fig8Result is the vault design space: the feasible scatter and its
// lower envelope.
type Fig8Result struct {
	Designs  []dram.VaultDesign
	Envelope []dram.VaultDesign
}

// Fig8 enumerates vault designs under the 4-die x 5mm² budget.
func Fig8() Fig8Result {
	return Fig8Result{Designs: dram.EnumerateVaultDesigns(), Envelope: dram.Envelope()}
}

func (r Fig8Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 8: vault capacity vs access latency (%d feasible designs; envelope below)\n", len(r.Designs))
	fmt.Fprintln(&b, header("capacity", "tile", "latency(ns)", "area(mm²)", "banks"))
	for _, d := range r.Envelope {
		fmt.Fprintf(&b, "%dMB\t%s\t%.2f\t%.2f\t%d\n", d.CapacityMB, d.Tile, d.AccessNS(), d.AreaMM2(), d.Banks())
	}
	return b.String()
}

// Table1 returns the latency- vs capacity-optimized comparison.
func Table1() dram.Comparison { return dram.CompareDesignPoints() }

// Table1String renders Table I.
func Table1String() string {
	c := Table1()
	lo, co := dram.LatencyOptimized(), dram.CapacityOptimized()
	var b strings.Builder
	fmt.Fprintln(&b, "Table I: latency- vs capacity-optimized vault (normalized to latency-optimized)")
	fmt.Fprintln(&b, header("metric", "latency-opt", "capacity-opt", "paper"))
	fmt.Fprintf(&b, "area efficiency\t1x\t%.2fx\t1.74x\n", c.AreaEfficiencyRatio)
	fmt.Fprintf(&b, "number of tiles\t1x\t%.2fx\t0.25x\n", c.TilesRatio)
	fmt.Fprintf(&b, "access latency\t1x\t%.2fx\t1.8x\n", c.LatencyRatio)
	fmt.Fprintf(&b, "(points: %s | %s)\n", lo, co)
	return b.String()
}

// --- Fig 10 / Fig 14: system comparison ------------------------------------

// systemConfigs returns the five evaluated systems at the given core count.
func systemConfigs(cores int) []core.Config {
	return []core.Config{
		core.BaselineConfig(cores),
		core.BaselineDRAMConfig(cores),
		core.SILOConfig(cores),
		core.SILOCOConfig(cores),
		core.VaultsSharedConfig(cores),
	}
}

// CompareResult holds per-workload performance of each system normalized
// to the baseline, plus the geomean row.
type CompareResult struct {
	Title     string
	Systems   []string
	Workloads []string
	// Norm[w][s]: workload w on system s, normalized to the baseline.
	Norm    [][]float64
	Geomean []float64
}

// compare runs a suite across the five systems as one concurrent cell
// grid; name labels the cells for diagnostics.
func compare(name, title string, suite []workload.Spec, m Mode) CompareResult {
	cfgs := systemConfigs(16)
	res := CompareResult{Title: title}
	for _, c := range cfgs {
		res.Systems = append(res.Systems, c.Kind.String())
	}
	var cells []Cell
	for _, spec := range suite {
		res.Workloads = append(res.Workloads, spec.Name)
		for _, cfg := range cfgs {
			cells = append(cells, cell(fmt.Sprintf("%s/%s/%s", name, spec.Name, cfg.Kind), cfg, spec))
		}
	}
	ipcs := RunCellIPCs(cells, m)
	perSystem := make([][]float64, len(cfgs))
	for wi := range suite {
		k := wi * len(cfgs)
		base := mustPositive(ipcs[k], cells[k].Label)
		row := make([]float64, len(cfgs))
		for si := range cfgs {
			row[si] = ipcs[k+si] / base
			perSystem[si] = append(perSystem[si], row[si])
		}
		res.Norm = append(res.Norm, row)
	}
	for _, col := range perSystem {
		res.Geomean = append(res.Geomean, stats.Geomean(col))
	}
	return res
}

// Fig10 compares the five systems on the scale-out suite — paper Fig 10.
func Fig10(m Mode) CompareResult {
	return compare("fig10", "Fig 10: performance on scale-out workloads (normalized to Baseline)",
		workload.ScaleOutSuite(), m)
}

// Fig14 compares the five systems on the enterprise suite — paper Fig 14.
func Fig14(m Mode) CompareResult {
	return compare("fig14", "Fig 14: performance on enterprise workloads (normalized to Baseline)",
		workload.EnterpriseSuite(), m)
}

func (r CompareResult) String() string {
	var b strings.Builder
	fmt.Fprintln(&b, r.Title)
	fmt.Fprintln(&b, header(append([]string{"workload"}, r.Systems...)...))
	for i, w := range r.Workloads {
		fmt.Fprintf(&b, "%s\t%s\n", w, fmtRow(r.Norm[i]))
	}
	fmt.Fprintf(&b, "Geomean\t%s\n", fmtRow(r.Geomean))
	return b.String()
}

// Speedup returns the geomean speedup of the named system over
// baseline, erroring on an unknown name — the lookup for CLI-driven
// paths, where a bad name is user input, not an invariant violation.
func (r CompareResult) Speedup(system string) (float64, error) {
	for i, s := range r.Systems {
		if s == system {
			return r.Geomean[i], nil
		}
	}
	return 0, fmt.Errorf("unknown system %q (have %s)", system, strings.Join(r.Systems, ", "))
}

// SpeedupOf returns the geomean speedup of the named system over
// baseline, panicking on an unknown name — for internal callers whose
// system names are compile-time constants.
func (r CompareResult) SpeedupOf(system string) float64 {
	v, err := r.Speedup(system)
	if err != nil {
		panic("experiments: " + err.Error())
	}
	return v
}

// WorkloadSpeedup returns one workload's speedup on the named system.
func (r CompareResult) WorkloadSpeedup(wl, system string) float64 {
	wi, si := -1, -1
	for i, w := range r.Workloads {
		if w == wl {
			wi = i
		}
	}
	for i, s := range r.Systems {
		if s == system {
			si = i
		}
	}
	if wi < 0 || si < 0 {
		panic(fmt.Sprintf("experiments: unknown cell %q/%q", wl, system))
	}
	return r.Norm[wi][si]
}

// --- Fig 11: LLC hit/miss breakdown ---------------------------------------

// Fig11Result decomposes LLC accesses into local hits, remote hits and
// off-chip misses for Baseline vs SILO, normalized to each system's
// accesses.
type Fig11Result struct {
	Workloads []string
	// Fractions per workload, baseline then SILO.
	BaseLocal, BaseMiss             []float64
	SILOLocal, SILORemote, SILOMiss []float64
	// MissReduction[w] = 1 - SILO misses/instr / baseline misses/instr.
	MissReduction []float64
}

// Fig11 measures hit locality — paper Fig 11.
func Fig11(m Mode) Fig11Result {
	var res Fig11Result
	suite := workload.ScaleOutSuite()
	var cells []Cell
	for _, spec := range suite {
		res.Workloads = append(res.Workloads, spec.Name)
		cells = append(cells,
			cell("fig11/"+spec.Name+"/base", core.BaselineConfig(16), spec),
			cell("fig11/"+spec.Name+"/silo", core.SILOConfig(16), spec))
	}
	ms2 := RunCells(cells, m)
	for wi := range suite {
		mb, ms := ms2[2*wi], ms2[2*wi+1]
		bl, sl := cells[2*wi].Label, cells[2*wi+1].Label
		bt := mustPositive(float64(mb.Stats.LLCAccesses), bl)
		st := mustPositive(float64(ms.Stats.LLCAccesses), sl)
		res.BaseLocal = append(res.BaseLocal, float64(mb.Stats.LocalHits)/bt)
		res.BaseMiss = append(res.BaseMiss, float64(mb.Stats.Misses)/bt)
		res.SILOLocal = append(res.SILOLocal, float64(ms.Stats.LocalHits)/st)
		res.SILORemote = append(res.SILORemote, float64(ms.Stats.RemoteHits)/st)
		res.SILOMiss = append(res.SILOMiss, float64(ms.Stats.Misses)/st)
		bMPKI := float64(mb.Stats.Misses) / mustPositive(float64(mb.Retired), bl)
		sMPKI := float64(ms.Stats.Misses) / mustPositive(float64(ms.Retired), sl)
		res.MissReduction = append(res.MissReduction, 1-sMPKI/mustPositive(bMPKI, bl))
	}
	return res
}

func (r Fig11Result) String() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Fig 11: LLC access decomposition (fractions) and miss reduction")
	fmt.Fprintln(&b, header("workload", "base-local", "base-miss", "silo-local", "silo-remote", "silo-miss", "miss-reduction"))
	for i, w := range r.Workloads {
		fmt.Fprintf(&b, "%s\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.0f%%\n", w,
			r.BaseLocal[i], r.BaseMiss[i], r.SILOLocal[i], r.SILORemote[i], r.SILOMiss[i], 100*r.MissReduction[i])
	}
	return b.String()
}

// --- Fig 12: SILO performance optimizations -------------------------------

// Fig12Result holds performance of the optimization variants normalized to
// unoptimized SILO.
type Fig12Result struct {
	Workloads []string
	Variants  []string
	// Norm[w][v].
	Norm [][]float64
}

// Fig12 evaluates the ideal local-vault miss predictor and directory cache
// — paper Fig 12.
func Fig12(m Mode) Fig12Result {
	res := Fig12Result{Variants: []string{"NoOpt", "LocalMP", "DirCache", "LocalMP+DirCache"}}
	variants := [][2]bool{{false, false}, {true, false}, {false, true}, {true, true}}
	suite := workload.ScaleOutSuite()
	var cells []Cell
	for _, spec := range suite {
		res.Workloads = append(res.Workloads, spec.Name)
		for vi, v := range variants {
			cfg := core.SILOConfig(16)
			cfg.LocalMissPredictor = v[0]
			cfg.DirectoryCache = v[1]
			cells = append(cells, cell(fmt.Sprintf("fig12/%s/%s", spec.Name, res.Variants[vi]), cfg, spec))
		}
	}
	ipcs := RunCellIPCs(cells, m)
	nv := len(variants)
	for wi := range suite {
		row := ipcs[wi*nv : (wi+1)*nv]
		res.Norm = append(res.Norm, stats.Normalize(row, mustPositive(row[0], cells[wi*nv].Label)))
	}
	return res
}

func (r Fig12Result) String() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Fig 12: SILO optimizations (normalized to NoOpt)")
	fmt.Fprintln(&b, header(append([]string{"workload"}, r.Variants...)...))
	for i, w := range r.Workloads {
		fmt.Fprintf(&b, "%s\t%s\n", w, fmtRow(r.Norm[i]))
	}
	return b.String()
}

// --- Fig 13: memory-subsystem dynamic energy -------------------------------

// Fig13Result holds SILO's dynamic energy normalized to baseline, split
// into LLC and main-memory components.
type Fig13Result struct {
	Workloads []string
	// Components of normalized energy: baseline total = BaseLLC+BaseMem = 1.
	BaseLLC, BaseMem, SILOLLC, SILOMem []float64
}

// Fig13 compares memory-subsystem dynamic energy — paper Fig 13. Energy
// is normalized per retired instruction so different throughputs compare
// fairly.
func Fig13(m Mode) Fig13Result {
	var res Fig13Result
	suite := workload.ScaleOutSuite()
	var cells []Cell
	for _, spec := range suite {
		res.Workloads = append(res.Workloads, spec.Name)
		cells = append(cells,
			cell("fig13/"+spec.Name+"/base", core.BaselineConfig(16), spec),
			cell("fig13/"+spec.Name+"/silo", core.SILOConfig(16), spec))
	}
	ms2 := RunCells(cells, m)
	for wi := range suite {
		mb, ms := ms2[2*wi], ms2[2*wi+1]

		bp := energy.BaselineParams(16)
		sp := energy.SILOParams(16)
		be := energy.Compute(bp, mb.Stats.LLCAccesses, mb.Stats.MemAccesses+mb.Stats.MemWritebacks, mb.Seconds())
		se := energy.Compute(sp, ms.Stats.VaultAccesses, ms.Stats.MemAccesses+ms.Stats.MemWritebacks, ms.Seconds())

		// Per-instruction normalization, then scale so baseline total = 1.
		bTot := (be.LLCDynamicJ + be.MemDynamicJ) / float64(mb.Retired)
		res.BaseLLC = append(res.BaseLLC, be.LLCDynamicJ/float64(mb.Retired)/bTot)
		res.BaseMem = append(res.BaseMem, be.MemDynamicJ/float64(mb.Retired)/bTot)
		res.SILOLLC = append(res.SILOLLC, se.LLCDynamicJ/float64(ms.Retired)/bTot)
		res.SILOMem = append(res.SILOMem, se.MemDynamicJ/float64(ms.Retired)/bTot)
	}
	return res
}

// SILOTotal returns SILO's normalized dynamic energy for row i.
func (r Fig13Result) SILOTotal(i int) float64 { return r.SILOLLC[i] + r.SILOMem[i] }

func (r Fig13Result) String() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Fig 13: normalized memory-subsystem dynamic energy (baseline = 1.0)")
	fmt.Fprintln(&b, header("workload", "base-llc", "base-mem", "silo-llc", "silo-mem", "silo-total"))
	for i, w := range r.Workloads {
		fmt.Fprintf(&b, "%s\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\n", w,
			r.BaseLLC[i], r.BaseMem[i], r.SILOLLC[i], r.SILOMem[i], r.SILOTotal(i))
	}
	return b.String()
}
