// Package experiments reproduces every table and figure of the paper's
// motivation and evaluation sections. Each runner builds the systems it
// needs, warms them, measures a SMARTS-style window, and returns the same
// rows/series the paper reports, with String() printers that produce
// paper-shaped text tables.
//
// Runners accept a Mode: Quick (small windows, used by tests and the
// default benchmarks) or Full (paper-scale windows, used by cmd/paperbench
// -full). Both use the same systems and workloads; Quick trades some
// statistical tightness for wall-clock time.
//
// # Concurrent execution
//
// Every simulation runner decomposes its (system x workload x sweep-point)
// grid into independent Cells and executes them through RunCells, a worker
// pool sized by Mode.Parallelism (default GOMAXPROCS). Each cell's
// core.System is deterministic and confined to one goroutine, and results
// are assembled in submission order, so a figure's output is bit-identical
// at any parallelism level — Parallelism: 1 reproduces the historical
// sequential path exactly.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Mode sizes an experiment's warm-up and measurement.
type Mode struct {
	Name          string
	WarmInstr     int // functional warm-up instructions per core
	WarmCycles    sim.Cycle
	MeasureCycles sim.Cycle
	Scale         int64
	// Parallelism bounds RunCells' worker pool: <= 0 uses GOMAXPROCS and 1
	// forces sequential execution. Results are identical at any setting;
	// only wall-clock time changes.
	Parallelism int
	// CheckpointDir, when non-empty, enables warm-state checkpointing
	// (DESIGN.md §11): every runner restores warmed systems from the
	// directory on key hit and saves them after cold builds. Restored
	// systems are bit-identical to from-scratch ones, so results do not
	// change; only warm-up wall-clock does.
	CheckpointDir string
	// Checkpoints, when non-nil, accumulates restore/save counters across
	// the run (cmd/paperbench prints them after a grid).
	Checkpoints *CheckpointStats
	// GenThreads threads core.Config.GenThreads through every cell: > 0
	// moves trace generation onto producer goroutines feeding per-core
	// rings. Results are bit-identical at any setting (DESIGN.md §12);
	// only the host-thread layout changes.
	GenThreads int
}

// Quick is the test/bench mode.
func Quick() Mode {
	return Mode{Name: "quick", WarmInstr: 300_000, WarmCycles: 20_000, MeasureCycles: 60_000, Scale: 32}
}

// Full mirrors the paper's 100K warm / 200K measure cycle scheme at the
// default capacity scale.
func Full() Mode {
	return Mode{Name: "full", WarmInstr: 1_200_000, WarmCycles: 100_000, MeasureCycles: 200_000, Scale: core.DefaultScale}
}

// runOne builds, warms, and measures a single system: analytic pre-warm of
// the cache-resident footprints, functional instruction warm-up, then the
// timed SMARTS window. Hierarchy invariants are validated after the
// window; a violation panics rather than folding corrupt state into the
// reported metrics.
func runOne(cfg core.Config, specs []workload.Spec, m Mode) core.Metrics {
	cfg.Scale = m.Scale
	cfg.GenThreads = m.GenThreads
	sys, _ := buildWarm(cfg, specs, m.WarmInstr, m.CheckpointDir, m.Checkpoints, nil)
	defer sys.Close()
	met := sys.Run(m.WarmCycles, m.MeasureCycles)
	if msg := sys.CheckInvariants(); msg != "" {
		panic("invariant violation: " + msg)
	}
	return met
}

// row formatting helpers shared by the String() methods.
func header(cols ...string) string {
	return strings.Join(cols, "\t")
}

func fmtRow(vals []float64) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = fmt.Sprintf("%.3f", v)
	}
	return strings.Join(parts, "\t")
}

// --- Fig 1: sensitivity to LLC capacity at fixed latency -----------------

// Fig1CapacitiesMB is the paper's x-axis.
var Fig1CapacitiesMB = []int64{8, 16, 32, 64, 128, 256, 512, 1024}

// Fig1Result holds performance vs capacity normalized to the 8MB baseline.
type Fig1Result struct {
	Workloads    []string
	CapacitiesMB []int64
	// Norm[w][c]: workload w's performance at capacity c / at 8MB.
	Norm [][]float64
}

// Fig1 sweeps shared-LLC capacity at fixed (baseline) latency on the
// scale-out suite — paper Fig 1.
func Fig1(m Mode) Fig1Result {
	suite := workload.ScaleOutSuite()
	res := Fig1Result{CapacitiesMB: Fig1CapacitiesMB}
	var cells []Cell
	for _, spec := range suite {
		res.Workloads = append(res.Workloads, spec.Name)
		for _, mb := range res.CapacitiesMB {
			cfg := core.BaselineConfig(16)
			cfg.LLCSize = mb << 20
			cells = append(cells, cell(fmt.Sprintf("fig1/%s/%dMB", spec.Name, mb), cfg, spec))
		}
	}
	ipcs := RunCellIPCs(cells, m)
	nc := len(res.CapacitiesMB)
	for wi := range suite {
		row := ipcs[wi*nc : (wi+1)*nc]
		res.Norm = append(res.Norm, stats.Normalize(row, mustPositive(row[0], cells[wi*nc].Label)))
	}
	return res
}

func (r Fig1Result) String() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Fig 1: normalized performance vs LLC capacity (fixed latency)")
	cols := []string{"workload"}
	for _, mb := range r.CapacitiesMB {
		cols = append(cols, fmt.Sprintf("%dMB", mb))
	}
	fmt.Fprintln(&b, header(cols...))
	for i, w := range r.Workloads {
		fmt.Fprintf(&b, "%s\t%s\n", w, fmtRow(r.Norm[i]))
	}
	return b.String()
}

// --- Fig 2: sensitivity to LLC latency at different capacities -----------

// Fig2Result holds scale-out geomean performance vs added LLC latency,
// normalized to the 8MB-at-base-latency baseline.
type Fig2Result struct {
	CapacitiesMB []int64
	ExtraPct     []int // added latency as % of the baseline LLC round trip
	// Norm[c][l]: geomean at capacity c with latency point l.
	Norm [][]float64
}

// Fig2 sweeps added LLC access latency from 0 to 100% of the baseline hit
// time for capacities 64MB-1GB — paper Fig 2. The baseline hit time is
// ~23 cycles, so the sweep adds 0..23 cycles. The 8MB base-latency
// reference cells and the whole sweep grid run as one RunCells batch.
func Fig2(m Mode) Fig2Result {
	suite := workload.ScaleOutSuite()
	res := Fig2Result{
		CapacitiesMB: []int64{64, 128, 256, 512, 1024},
		ExtraPct:     []int{0, 20, 40, 60, 80, 100},
	}
	// Reference cells first: 8MB at base latency, one per workload.
	var cells []Cell
	for _, spec := range suite {
		cells = append(cells, cell("fig2/base/"+spec.Name, core.BaselineConfig(16), spec))
	}
	const baseRoundTrip = 23.0
	for _, mb := range res.CapacitiesMB {
		for _, pct := range res.ExtraPct {
			for _, spec := range suite {
				cfg := core.BaselineConfig(16)
				cfg.LLCSize = mb << 20
				cfg.LLCExtraLatency = sim.Cycle(float64(pct) / 100 * baseRoundTrip)
				cells = append(cells, cell(fmt.Sprintf("fig2/%s/%dMB/+%d%%", spec.Name, mb, pct), cfg, spec))
			}
		}
	}
	ipcs := RunCellIPCs(cells, m)
	base := ipcs[:len(suite)]
	for i := range base {
		mustPositive(base[i], cells[i].Label)
	}
	k := len(suite)
	for range res.CapacitiesMB {
		var row []float64
		for range res.ExtraPct {
			normPerWorkload := make([]float64, len(suite))
			for i := range suite {
				normPerWorkload[i] = ipcs[k] / base[i]
				k++
			}
			row = append(row, stats.Geomean(normPerWorkload))
		}
		res.Norm = append(res.Norm, row)
	}
	return res
}

func (r Fig2Result) String() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Fig 2: geomean performance vs added LLC latency (normalized to 8MB baseline)")
	cols := []string{"capacity"}
	for _, p := range r.ExtraPct {
		cols = append(cols, fmt.Sprintf("+%d%%", p))
	}
	fmt.Fprintln(&b, header(cols...))
	for i, mb := range r.CapacitiesMB {
		fmt.Fprintf(&b, "%dMB\t%s\n", mb, fmtRow(r.Norm[i]))
	}
	return b.String()
}

// --- Fig 3: LLC access breakdown ------------------------------------------

// Fig3Result is the read/write-sharing decomposition of LLC accesses on
// the 8MB shared baseline.
type Fig3Result struct {
	Workloads []string
	// Percent of LLC accesses per category.
	ReadsPct, WritesNoSharingPct, WritesRWSharingPct []float64
}

// Fig3 characterizes LLC accesses on the baseline — paper Fig 3.
func Fig3(m Mode) Fig3Result {
	var res Fig3Result
	var cells []Cell
	for _, spec := range workload.ScaleOutSuite() {
		res.Workloads = append(res.Workloads, spec.Name)
		cells = append(cells, cell("fig3/"+spec.Name, core.BaselineConfig(16), spec))
	}
	for _, met := range RunCells(cells, m) {
		s := met.Stats
		total := float64(s.LLCAccesses)
		res.ReadsPct = append(res.ReadsPct, 100*float64(s.Reads)/total)
		res.WritesNoSharingPct = append(res.WritesNoSharingPct, 100*float64(s.WritesPrivate)/total)
		res.WritesRWSharingPct = append(res.WritesRWSharingPct, 100*float64(s.WritesRWShared)/total)
	}
	return res
}

func (r Fig3Result) String() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Fig 3: LLC access breakdown (%)")
	fmt.Fprintln(&b, header("workload", "reads", "writes-nosharing", "writes-rwsharing"))
	for i, w := range r.Workloads {
		fmt.Fprintf(&b, "%s\t%.1f\t%.1f\t%.1f\n", w, r.ReadsPct[i], r.WritesNoSharingPct[i], r.WritesRWSharingPct[i])
	}
	return b.String()
}

// --- Fig 4: latency sensitivity of RW-shared blocks -----------------------

// Fig4Result holds performance vs RW-shared access latency multiplier,
// normalized to 1x.
type Fig4Result struct {
	Workloads []string
	Mults     []int
	// Norm[w][k]: performance at multiplier k / at 1x.
	Norm [][]float64
}

// Fig4 artificially multiplies the LLC latency of RW-shared blocks —
// paper Fig 4.
func Fig4(m Mode) Fig4Result {
	res := Fig4Result{Mults: []int{1, 2, 3, 4}}
	suite := workload.ScaleOutSuite()
	var cells []Cell
	for _, spec := range suite {
		res.Workloads = append(res.Workloads, spec.Name)
		for _, mult := range res.Mults {
			cfg := core.BaselineConfig(16)
			cfg.RWSharedMult = mult
			cells = append(cells, cell(fmt.Sprintf("fig4/%s/%dx", spec.Name, mult), cfg, spec))
		}
	}
	ipcs := RunCellIPCs(cells, m)
	nm := len(res.Mults)
	for wi := range suite {
		row := ipcs[wi*nm : (wi+1)*nm]
		res.Norm = append(res.Norm, stats.Normalize(row, mustPositive(row[0], cells[wi*nm].Label)))
	}
	return res
}

func (r Fig4Result) String() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Fig 4: performance vs RW-shared block latency multiplier")
	cols := []string{"workload"}
	for _, mult := range r.Mults {
		cols = append(cols, fmt.Sprintf("%dx", mult))
	}
	fmt.Fprintln(&b, header(cols...))
	for i, w := range r.Workloads {
		fmt.Fprintf(&b, "%s\t%s\n", w, fmtRow(r.Norm[i]))
	}
	return b.String()
}
