package experiments

import (
	"strings"
	"sync"
	"testing"
)

// Experiments are deterministic, so each is run once and shared across the
// assertions in this file.
var (
	onceFig10 sync.Once
	fig10Res  CompareResult
	onceFig11 sync.Once
	fig11Res  Fig11Result
	onceMotiv sync.Once
	fig1Res   Fig1Result
	fig3Res   Fig3Result
	fig4Res   Fig4Result
)

// tinyMode keeps shape tests fast; shapes are stable well below Quick's
// window sizes.
func tinyMode() Mode {
	return Mode{Name: "tiny", WarmInstr: 200_000, WarmCycles: 10_000, MeasureCycles: 40_000, Scale: 32}
}

func getFig10(t *testing.T) CompareResult {
	t.Helper()
	onceFig10.Do(func() { fig10Res = Fig10(tinyMode()) })
	return fig10Res
}

func getFig11(t *testing.T) Fig11Result {
	t.Helper()
	onceFig11.Do(func() { fig11Res = Fig11(tinyMode()) })
	return fig11Res
}

func getMotivation(t *testing.T) (Fig1Result, Fig3Result, Fig4Result) {
	t.Helper()
	onceMotiv.Do(func() {
		fig3Res = Fig3(tinyMode())
		fig4Res = Fig4(tinyMode())
		m := tinyMode()
		fig1Res = Fig1(m)
	})
	return fig1Res, fig3Res, fig4Res
}

// Fig 10 headline: SILO beats the baseline on every scale-out workload,
// with a geomean in the paper's +5..54% band, MapReduce the biggest winner,
// and Web Frontend the smallest.
func TestFig10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	r := getFig10(t)
	silo := r.SpeedupOf("SILO")
	if silo < 1.15 || silo > 1.45 {
		t.Errorf("SILO geomean speedup = %.3f, want ~1.28 (paper)", silo)
	}
	for _, w := range r.Workloads {
		s := r.WorkloadSpeedup(w, "SILO")
		if s <= 1.0 {
			t.Errorf("SILO should beat baseline on %s, got %.3f", w, s)
		}
	}
	if mr, wf := r.WorkloadSpeedup("MapReduce", "SILO"), r.WorkloadSpeedup("WebFrontend", "SILO"); mr <= wf {
		t.Errorf("MapReduce (%.3f) should gain more than WebFrontend (%.3f)", mr, wf)
	}
	// SILO-CO trails SILO (capacity bought with latency loses).
	if co := r.SpeedupOf("SILO-CO"); co >= silo {
		t.Errorf("SILO-CO (%.3f) should trail SILO (%.3f)", co, silo)
	}
	// Vaults-Sh trails SILO decisively: the private organization, not just
	// fast DRAM, is what matters.
	if vs := r.SpeedupOf("Vaults-Sh"); vs >= silo-0.15 {
		t.Errorf("Vaults-Sh (%.3f) should trail SILO (%.3f) by a wide margin", vs, silo)
	}
	// The conventional DRAM cache buys little on scale-out workloads.
	if dc := r.SpeedupOf("Baseline+DRAM$"); dc > 1.12 {
		t.Errorf("Baseline+DRAM$ speedup = %.3f, paper reports ~none", dc)
	}
}

// Fig 11: SILO reduces misses everywhere; local hits dominate its hits.
func TestFig11Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	r := getFig11(t)
	for i, w := range r.Workloads {
		if r.MissReduction[i] <= 0 {
			t.Errorf("%s: no miss reduction (%.2f)", w, r.MissReduction[i])
		}
		hits := r.SILOLocal[i] + r.SILORemote[i]
		if r.SILOLocal[i] < 0.6*hits {
			t.Errorf("%s: local hits are %.2f of hits, want >= 0.6 (paper: 63-91%%)",
				w, r.SILOLocal[i]/hits)
		}
	}
	// SAT Solver has the largest reduction in the paper.
	maxIdx := 0
	for i := range r.MissReduction {
		if r.MissReduction[i] > r.MissReduction[maxIdx] {
			maxIdx = i
		}
	}
	if w := r.Workloads[maxIdx]; w != "SATSolver" && w != "MapReduce" {
		t.Errorf("largest miss reduction on %s, want SATSolver or MapReduce", w)
	}
}

// Fig 1: capacity alone helps little until the secondary set fits; Web
// Search needs the most aggregate capacity.
func TestFig1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	r, _, _ := getMotivation(t)
	for i, w := range r.Workloads {
		row := r.Norm[i]
		// Monotone within noise.
		for c := 1; c < len(row); c++ {
			if row[c] < row[c-1]-0.06 {
				t.Errorf("%s: performance fell from %.3f to %.3f at %dMB",
					w, row[c-1], row[c], r.CapacitiesMB[c])
			}
		}
		if row[len(row)-1] < 1.0 {
			t.Errorf("%s: 1GB LLC slower than 8MB", w)
		}
	}
	// Web Search gains meaningfully from 512MB -> 1024MB (the paper's
	// late knee), more than Data Serving does at that step.
	wsIdx, dsIdx := 0, 1
	wsLate := r.Norm[wsIdx][7] - r.Norm[wsIdx][6]
	dsLate := r.Norm[dsIdx][7] - r.Norm[dsIdx][6]
	if wsLate <= dsLate {
		t.Errorf("WebSearch late-capacity gain (%.3f) should exceed DataServing's (%.3f)", wsLate, dsLate)
	}
}

// Fig 3: scale-out workloads show little RW sharing (the paper's argument
// that shared LLCs' fast shared-data path is wasted on them).
func TestFig3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	_, r, _ := getMotivation(t)
	for i, w := range r.Workloads {
		if r.WritesRWSharingPct[i] > 8 {
			t.Errorf("%s: %.1f%% RW-shared writes, want small (paper <= ~4%%)", w, r.WritesRWSharingPct[i])
		}
		if r.ReadsPct[i] < 50 {
			t.Errorf("%s: reads are only %.1f%% of LLC accesses", w, r.ReadsPct[i])
		}
		sum := r.ReadsPct[i] + r.WritesNoSharingPct[i] + r.WritesRWSharingPct[i]
		if sum < 99.9 || sum > 100.1 {
			t.Errorf("%s: breakdown sums to %.1f%%", w, sum)
		}
	}
	// MapReduce and SAT Solver have negligible sharing.
	for _, i := range []int{3, 4} {
		if r.WritesRWSharingPct[i] > 1.0 {
			t.Errorf("%s: RW sharing %.2f%%, want negligible", r.Workloads[i], r.WritesRWSharingPct[i])
		}
	}
}

// Fig 4: slowing RW-shared blocks 4x costs at most ~10-15%.
func TestFig4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	_, _, r := getMotivation(t)
	for i, w := range r.Workloads {
		at4x := r.Norm[i][3]
		if at4x < 0.82 {
			t.Errorf("%s: 4x RW-shared latency costs %.1f%%, paper caps at ~10%%",
				w, 100*(1-at4x))
		}
		if at4x > 1.02 {
			t.Errorf("%s: 4x RW-shared latency should not help (%.3f)", w, at4x)
		}
		// Monotone non-increasing within noise.
		for k := 1; k < len(r.Norm[i]); k++ {
			if r.Norm[i][k] > r.Norm[i][k-1]+0.03 {
				t.Errorf("%s: performance rose with higher shared latency", w)
			}
		}
	}
}

// Fig 2: larger capacity only wins at low latency; at +100% latency the
// benefit collapses toward (or below) the 8MB baseline.
func TestFig2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	m := tinyMode()
	r := Fig2(m)
	for i, mb := range r.CapacitiesMB {
		row := r.Norm[i]
		if row[0] < 1.0 {
			t.Errorf("%dMB at base latency should beat the 8MB baseline, got %.3f", mb, row[0])
		}
		for k := 1; k < len(row); k++ {
			if row[k] > row[k-1]+0.02 {
				t.Errorf("%dMB: performance rose with added latency", mb)
			}
		}
		if last := row[len(row)-1]; last > 1.05 {
			t.Errorf("%dMB at +100%% latency = %.3f, should approach or fall below 1.0", mb, last)
		}
	}
}

// Fig 12: the ideal optimizations help, but modestly (paper: "do not
// outweigh their cost").
func TestFig12Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	r := Fig12(tinyMode())
	for i, w := range r.Workloads {
		both := r.Norm[i][3]
		if both < 0.99 {
			t.Errorf("%s: ideal optimizations hurt (%.3f)", w, both)
		}
		if both > 1.15 {
			t.Errorf("%s: optimizations gain %.1f%%, paper reports marginal benefits", w, 100*(both-1))
		}
	}
}

// Fig 13: SILO cuts memory-subsystem dynamic energy on every workload,
// mostly by eliminating off-chip traffic.
func TestFig13Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	r := Fig13(tinyMode())
	for i, w := range r.Workloads {
		if tot := r.SILOTotal(i); tot >= 1.0 {
			t.Errorf("%s: SILO dynamic energy %.3f, want < 1", w, tot)
		}
		if r.SILOMem[i] >= r.BaseMem[i] {
			t.Errorf("%s: SILO memory energy should drop (%.3f vs %.3f)", w, r.SILOMem[i], r.BaseMem[i])
		}
	}
}

// Table VI: SILO preserves Web Search performance under colocation with
// mcf; the shared LLC loses ~10%.
func TestTable6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	r := Table6(tinyMode())
	if r.SharedColoc > 0.97 {
		t.Errorf("shared LLC under colocation = %.3f, want visible degradation (paper -10%%)", r.SharedColoc)
	}
	if r.SILOAlone <= 1.0 {
		t.Errorf("SILO alone should beat shared alone, got %.3f", r.SILOAlone)
	}
	drift := r.SILOColoc/r.SILOAlone - 1
	if drift < -0.03 || drift > 0.03 {
		t.Errorf("SILO colocation drift = %.1f%%, want ~0 (isolation)", 100*drift)
	}
}

// Fig 16: with three levels, SILO still wins and eDRAM lands between the
// SRAM baseline and SILO on average.
func TestFig16Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	r := Fig16(tinyMode())
	siloSum, edramSum := 0.0, 0.0
	for i := range r.Workloads {
		siloSum += r.Norm[i][2]
		edramSum += r.Norm[i][1]
	}
	n := float64(len(r.Workloads))
	if siloSum/n <= 1.0 {
		t.Errorf("3level-SILO average %.3f, want > 1", siloSum/n)
	}
	if edramSum/n < 0.98 {
		t.Errorf("3level-eDRAM average %.3f, want >= SRAM baseline", edramSum/n)
	}
	if siloSum <= edramSum {
		t.Errorf("3level-SILO should beat 3level-eDRAM on average")
	}
}

// Fig 15: every mix gains, memory-intensive mixes gain most.
func TestFig15Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	r := Fig15(tinyMode())
	if len(r.Mixes) != 10 {
		t.Fatalf("%d mixes, want 10", len(r.Mixes))
	}
	for i, m := range r.Mixes {
		if r.Speedup[i] < 1.0 {
			t.Errorf("%s: SILO slower than baseline (%.3f)", m, r.Speedup[i])
		}
	}
	if mean := r.Mean(); mean < 1.10 || mean > 1.45 {
		t.Errorf("mean mix speedup %.3f, want ~1.28 (paper)", mean)
	}
	// mix3 (mcf+lbm) should be among the strongest; mix4 (compute-bound)
	// among the weakest.
	mix3, mix4 := r.Speedup[2], r.Speedup[3]
	if mix3 <= mix4 {
		t.Errorf("memory-intensive mix3 (%.3f) should beat compute-bound mix4 (%.3f)", mix3, mix4)
	}
}

// Technology-study tables render and carry the right headline figures.
func TestTechnologyStrings(t *testing.T) {
	if s := Fig7String(); !strings.Contains(s, "1024x1024") {
		t.Error("Fig7 table missing baseline tile")
	}
	f8 := Fig8()
	if len(f8.Designs) == 0 || len(f8.Envelope) != 7 {
		t.Fatalf("Fig8: %d designs, %d envelope points", len(f8.Designs), len(f8.Envelope))
	}
	if s := f8.String(); !strings.Contains(s, "256MB") {
		t.Error("Fig8 table missing the 256MB point")
	}
	c := Table1()
	if c.LatencyRatio < 1.5 || c.AreaEfficiencyRatio < 1.5 {
		t.Errorf("Table1 ratios off: %+v", c)
	}
	if s := Table1String(); !strings.Contains(s, "1.74x") {
		t.Error("Table1 should cite the paper's reference values")
	}
}

// Determinism: re-running an experiment reproduces it exactly.
func TestExperimentDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	m := Mode{Name: "det", WarmInstr: 50_000, WarmCycles: 5_000, MeasureCycles: 10_000, Scale: 64}
	a := Fig3(m)
	b := Fig3(m)
	for i := range a.Workloads {
		if a.ReadsPct[i] != b.ReadsPct[i] {
			t.Fatalf("Fig3 not deterministic at %s", a.Workloads[i])
		}
	}
}

func TestModes(t *testing.T) {
	q, f := Quick(), Full()
	if q.MeasureCycles >= f.MeasureCycles {
		t.Error("quick mode should measure less than full mode")
	}
	if f.WarmCycles != 100_000 || f.MeasureCycles != 200_000 {
		t.Error("full mode should mirror the paper's 100K/200K windows")
	}
}

func TestCompareResultLookupPanics(t *testing.T) {
	r := CompareResult{Systems: []string{"A"}, Workloads: []string{"w"}, Norm: [][]float64{{1}}, Geomean: []float64{1}}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unknown system")
		}
	}()
	r.SpeedupOf("nope")
}
