package experiments

import (
	"bytes"
	"context"
	"testing"
	"time"

	"repro/internal/robust"
)

// TestGridGenThreadsBitIdentical extends the grid's byte-identity
// contract to off-thread generation: the same grid at Mode.GenThreads 0
// and > 0 must emit byte-identical JSON-lines records modulo wall_ms —
// the CLI-level face of the ring determinism contract (DESIGN.md §12).
func TestGridGenThreadsBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	checkGoroutineLeaks(t)
	g, m := faultGrid(), faultMode()
	want := jsonLines(RunGrid(g, m))
	for _, gen := range []int{1, 4} {
		gm := m
		gm.GenThreads = gen
		if got := jsonLines(RunGrid(g, gm)); !bytes.Equal(got, want) {
			t.Fatalf("gen-threads=%d grid output diverged from the synchronous path", gen)
		}
	}
}

// TestGridGenThreadsFaultPathsNoLeak drives the fault-tolerant executor
// with producer goroutines live — injected cell panic in skip mode, a
// watchdog-abandoned stall, and mid-sweep cancellation — and requires
// every producer to wind down (simulateCell's deferred Close on each exit
// path).
func TestGridGenThreadsFaultPathsNoLeak(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	checkGoroutineLeaks(t)
	g, m := faultGrid(), faultMode()
	m.GenThreads = 2
	m.Parallelism = 2

	t.Run("cell-panic-skip", func(t *testing.T) {
		inj := robust.NewInjector(1, robust.Plan{PanicCells: map[int]int{1: -1}})
		rs, err := collectOpts(t, context.Background(), g, m, GridOptions{OnError: robust.SkipFailed, Injector: inj})
		if err != nil {
			t.Fatal(err)
		}
		if len(rs) != g.Cells() {
			t.Fatalf("sweep incomplete: %d of %d records", len(rs), g.Cells())
		}
	})

	t.Run("watchdog-abandon", func(t *testing.T) {
		inj := robust.NewInjector(0, robust.Plan{StallCells: map[int]time.Duration{0: 2 * time.Second}})
		rs, err := collectOpts(t, context.Background(), g, m, GridOptions{
			OnError:      robust.SkipFailed,
			CellDeadline: 200 * time.Millisecond,
			Injector:     inj,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rs[0].Error == nil {
			t.Fatal("stalled cell not timed out")
		}
	})

	t.Run("cancel-mid-sweep", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		n := 0
		err := RunGridStreamOpts(ctx, g, m, GridOptions{}, func(GridCellResult) bool {
			n++
			cancel()
			return true
		})
		if err == nil {
			t.Fatal("cancelled sweep reported no error")
		}
		if n == 0 {
			t.Fatal("nothing emitted before cancel took effect")
		}
	})
}
