package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/robust"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Batch-mode sweep grids (ROADMAP "Batch-mode CLI"). A Grid is an
// arbitrary (system x workload x config-override) cross product — the
// evaluation style of the die-stacked design-space literature — executed
// on the same deterministic Cell/RunCells worker pool the figure runners
// use, but streamed: each completed cell is emitted as one JSON-lines
// record (with online t-based confidence intervals from the streamed
// window engine) instead of buffering the whole sweep, so a sweep's
// memory footprint is bounded by the worker pool, not the grid size.

// Override names a configuration mutation applied on top of a base system
// config — one axis point of the grid's third dimension.
type Override struct {
	Name  string
	Apply func(*core.Config)
}

// NoOverride is the identity override for grids that only sweep
// (system x workload).
func NoOverride() Override {
	return Override{Name: "-", Apply: func(*core.Config) {}}
}

// GridSpec describes a sweep grid. Cells are enumerated system-major,
// then workload, then override, and results always stream in that
// enumeration order regardless of Mode.Parallelism.
type GridSpec struct {
	Systems   []core.Config
	Workloads []workload.Spec
	// Scenarios are compiled spec files swept as first-class workload
	// axis points alongside Workloads: each (system, scenario, override)
	// triple is one cell, named "scenario:<name>" in the workload column.
	// A scenario binds every core itself, so the cell ignores the uniform
	// one-spec-per-core layout and compiles per-core sources instead.
	Scenarios []*scenario.Scenario
	// Overrides defaults to {NoOverride()} when empty.
	Overrides []Override
	// Windows is the number of measurement windows per cell (the CI
	// sample count); Mode.MeasureCycles is split evenly across them.
	// <= 0 selects DefaultGridWindows.
	Windows int
	// Confidence is the two-sided CI level; <= 0 selects 0.95.
	Confidence float64
}

// DefaultGridWindows is the per-cell window count when GridSpec.Windows
// is unset: enough samples for a meaningful t-interval while keeping the
// per-window length well above the pipeline drain transient.
const DefaultGridWindows = 8

// GridCellResult is one completed cell — exactly one JSON-lines record of
// the batch output. All fields except WallMS are deterministic functions
// of the cell's configuration, so grid output is byte-identical across
// parallelism levels once WallMS is masked (TestGridGoldenDeterminism).
type GridCellResult struct {
	Index    int    `json:"index"`
	System   string `json:"system"`
	Workload string `json:"workload"`
	Override string `json:"override"`

	Scale   int64  `json:"scale"`
	Windows int    `json:"windows"`
	Cycles  uint64 `json:"cycles"`  // total measured cycles (all windows)
	Retired uint64 `json:"retired"` // total retired instructions

	// IPC is the aggregate over the whole measurement (total retired /
	// total cycles); the remaining fields summarize the per-window IPC
	// distribution, streamed through stats.Welford.
	IPC       float64 `json:"ipc"`
	IPCMean   float64 `json:"ipc_mean"`
	IPCStdDev float64 `json:"ipc_stddev"`
	IPCMin    float64 `json:"ipc_min"`
	IPCMax    float64 `json:"ipc_max"`
	// Confidence and the t-based interval of the per-window IPC mean.
	Confidence float64 `json:"confidence"`
	IPCCILow   float64 `json:"ipc_ci_low"`
	IPCCIHigh  float64 `json:"ipc_ci_high"`

	LLCHitRate float64 `json:"llc_hit_rate"`
	MissRate   float64 `json:"miss_rate"`

	// WallMS is the cell's host wall-clock time — the only
	// non-deterministic field.
	WallMS float64 `json:"wall_ms"`

	// Error is non-nil when the cell permanently failed under the
	// SkipFailed policy (RunGridStreamOpts): the structured failure
	// record — kind, phase, message, stack digest, attempts — replaces
	// the measurement fields, which stay zero. Successful records omit
	// the field entirely, so fault-tolerant output stays byte-identical
	// to the historical format.
	Error *CellError `json:"error,omitempty"`
}

// Validate reports whether the spec describes a runnable grid — the
// error-returning counterpart of the panics normalized applies, for
// CLI-reachable paths (RunGridStreamOpts validates instead of
// panicking; panics remain only for internal invariant violations).
func (g GridSpec) Validate() error {
	if len(g.Systems) == 0 || len(g.Workloads)+len(g.Scenarios) == 0 {
		return errors.New("grid needs at least one system and one workload or scenario (pass systems=... and workloads=.../scenarios=...)")
	}
	if g.Confidence >= 1 {
		return fmt.Errorf("grid confidence %v outside (0,1) — e.g. 0.95, not a percentage", g.Confidence)
	}
	return nil
}

// normalized returns the spec with defaults applied.
func (g GridSpec) normalized() GridSpec {
	if err := g.Validate(); err != nil {
		panic("experiments: " + err.Error())
	}
	if len(g.Overrides) == 0 {
		g.Overrides = []Override{NoOverride()}
	}
	if g.Windows <= 0 {
		g.Windows = DefaultGridWindows
	}
	if g.Confidence <= 0 {
		g.Confidence = 0.95
	}
	return g
}

// ScenarioDigests returns the content digest of every scenario axis
// point, in axis order. The distributed runner cross-checks these at
// worker registration: the grid string ships file *paths*, so two
// processes can compile the same string from divergent file copies —
// equal digests prove they didn't.
func (g GridSpec) ScenarioDigests() []string {
	out := make([]string, len(g.Scenarios))
	for i, s := range g.Scenarios {
		out[i] = s.Digest()
	}
	return out
}

// Cells returns the number of cells the grid enumerates.
func (g GridSpec) Cells() int {
	g = g.normalized()
	return len(g.Systems) * (len(g.Workloads) + len(g.Scenarios)) * len(g.Overrides)
}

// gridCell is one enumerated cell before execution.
type gridCell struct {
	index          int
	system, wl, ov string
	cfg            core.Config
	spec           workload.Spec      // uniform-workload cells
	scen           *scenario.Scenario // scenario cells (spec unused)
	windows        int
	confidence     float64
}

// enumerate builds the cell list: system-major, then workload, then
// override. Mode.Scale is applied before the override so an override can
// re-target the scale (the paper-scale sweeps that motivate the grid).
func (g GridSpec) enumerate(m Mode) []gridCell {
	g = g.normalized()
	cells := make([]gridCell, 0, g.Cells())
	for _, sys := range g.Systems {
		add := func(wl string, spec workload.Spec, scen *scenario.Scenario) {
			for _, ov := range g.Overrides {
				cfg := sys
				cfg.Scale = m.Scale
				cfg.GenThreads = m.GenThreads
				ov.Apply(&cfg)
				cells = append(cells, gridCell{
					index:      len(cells),
					system:     sys.Kind.String(),
					wl:         wl,
					ov:         ov.Name,
					cfg:        cfg,
					spec:       spec,
					scen:       scen,
					windows:    g.Windows,
					confidence: g.Confidence,
				})
			}
		}
		for _, spec := range g.Workloads {
			add(spec.Name, spec, nil)
		}
		for _, scen := range g.Scenarios {
			add("scenario:"+scen.Name, workload.Spec{}, scen)
		}
	}
	return cells
}

// RunGridStream executes the grid under mode m, invoking emit once per
// completed cell, always in enumeration order and always on the calling
// goroutine. Cells execute concurrently on Mode.Parallelism workers;
// completed-out-of-order results wait in a reorder window bounded by
// twice the worker count (workers block rather than run further ahead),
// so memory stays O(workers), not O(grid). Emission order and every
// record field except WallMS are identical at any parallelism level.
// emit returns whether to continue: false cancels the sweep — remaining
// cells are never simulated.
func RunGridStream(g GridSpec, m Mode, emit func(GridCellResult) bool) {
	cells := g.enumerate(m)
	streamOrdered(context.Background(), len(cells), m.Parallelism,
		func(i int) GridCellResult { return runGridCell(cells[i], m) },
		func(_ int, r GridCellResult) bool { return emit(r) })
}

// RunGrid executes the grid and returns all records in enumeration order
// — the buffered convenience for small grids and tests.
func RunGrid(g GridSpec, m Mode) []GridCellResult {
	out := make([]GridCellResult, 0, g.Cells())
	RunGridStream(g, m, func(r GridCellResult) bool {
		out = append(out, r)
		return true
	})
	return out
}

// WriteJSONLines streams the grid to w as one JSON object per line — the
// paperbench -grid batch format. The first encode error cancels the
// sweep: on a paper-scale grid a dead writer must not burn hours
// simulating records nobody will see.
func WriteJSONLines(w io.Writer, g GridSpec, m Mode) error {
	enc := json.NewEncoder(w)
	var err error
	RunGridStream(g, m, func(r GridCellResult) bool {
		err = enc.Encode(r)
		return err == nil
	})
	return err
}

// phaseTracker records which phase of a cell a goroutine is in, so a
// watchdog firing on another goroutine can name the phase in its
// timeout record. The nil tracker is valid and tracks nothing.
type phaseTracker struct {
	v atomic.Value // string
}

func (p *phaseTracker) set(phase string) {
	if p != nil {
		p.v.Store(phase)
	}
}

func (p *phaseTracker) get() string {
	if p == nil {
		return ""
	}
	if s, ok := p.v.Load().(string); ok {
		return s
	}
	return "enumerate"
}

// runGridCell is the historical fail-fast cell entry point: any failure
// panics on the caller, labeled with the cell's identity. The
// fault-tolerant executor (gridexec.go) wraps simulateCell directly.
func runGridCell(c gridCell, m Mode) GridCellResult {
	defer func() {
		if r := recover(); r != nil {
			panic(fmt.Sprintf("experiments: grid cell %d (%s/%s/%s): %v", c.index, c.system, c.wl, c.ov, r))
		}
	}()
	return simulateCell(context.Background(), c, m, nil, 0, nil)
}

// simulateCell builds, warms and measures one grid cell through the
// streamed window engine: Windows consecutive windows of
// MeasureCycles/Windows cycles each, per-window IPC folded into an online
// accumulator — no per-window history is retained. inj (nil-safe)
// injects deterministic faults for the robustness harness; ph (nil-safe)
// exposes the current phase to a watchdog.
func simulateCell(ctx context.Context, c gridCell, m Mode, inj *robust.Injector, attempt int, ph *phaseTracker) GridCellResult {
	start := time.Now()
	window := m.MeasureCycles / sim.Cycle(c.windows)
	if window <= 0 {
		panic(fmt.Sprintf("measure budget %d too small for %d windows", m.MeasureCycles, c.windows))
	}
	// Injected faults land before the build phase: the injection site for
	// the panic/stall matrix (a stall aborts early if ctx cancels, so
	// abandoned attempts unwind instead of sleeping on).
	inj.Fire(ctx, "cell", c.index, attempt)

	var sys *core.System
	if c.scen != nil {
		sys, _ = buildWarmScenario(c.cfg, c.scen, m.WarmInstr, m.CheckpointDir, m.Checkpoints, ph)
	} else {
		sys, _ = buildWarm(c.cfg, []workload.Spec{c.spec}, m.WarmInstr, m.CheckpointDir, m.Checkpoints, ph)
	}
	// Producer goroutines (GenThreads > 0) must die on every exit path —
	// normal completion, invariant panic, injected cell panic — or a
	// skip-mode sweep would leak a producer set per failed cell.
	defer sys.Close()
	ph.set("measure")
	ws := sys.StreamWindows(m.WarmCycles, window)
	var retired, llcAccesses, hits, misses uint64
	for w := 0; w < c.windows; w++ {
		met := ws.Next()
		retired += met.Retired
		llcAccesses += met.Stats.LLCAccesses
		hits += met.Stats.LocalHits + met.Stats.RemoteHits
		misses += met.Stats.Misses
	}
	ph.set("check")
	if msg := sys.CheckInvariants(); msg != "" {
		panic("invariant violation: " + msg)
	}

	ipc := ws.IPC()
	lo, hi := ipc.CI(c.confidence)
	// A 1-window cell has no variance estimate: report 0 spread (the CI
	// already degenerates to [mean, mean]) rather than NaN, which
	// encoding/json rejects.
	stddev := ipc.StdDev()
	if c.windows < 2 {
		stddev = 0
	}
	totalCycles := uint64(window) * uint64(c.windows)
	r := GridCellResult{
		Index:      c.index,
		System:     c.system,
		Workload:   c.wl,
		Override:   c.ov,
		Scale:      c.cfg.Scale,
		Windows:    c.windows,
		Cycles:     totalCycles,
		Retired:    retired,
		IPC:        float64(retired) / float64(totalCycles),
		IPCMean:    ipc.Mean(),
		IPCStdDev:  stddev,
		IPCMin:     ipc.Min(),
		IPCMax:     ipc.Max(),
		Confidence: c.confidence,
		IPCCILow:   lo,
		IPCCIHigh:  hi,
		WallMS:     float64(time.Since(start).Nanoseconds()) / 1e6,
	}
	if llcAccesses > 0 {
		r.LLCHitRate = float64(hits) / float64(llcAccesses)
		r.MissRate = float64(misses) / float64(llcAccesses)
	}
	return r
}

// streamOrdered runs fn(0..n-1) on a bounded worker pool and delivers
// every result to emit in index order, on the calling goroutine, as soon
// as the next-in-order result is available. It is the streaming
// counterpart of RunCells: same deterministic ordering contract, same
// panic labeling, but O(workers) buffering instead of O(n) — a token
// semaphore stops workers from claiming an index until earlier ones have
// been emitted, so even pathological per-cell skew (one slow cell at the
// cursor, everything after it fast) cannot grow the reorder window past
// 2*workers. emit returning false cancels: no further indices are
// claimed and nothing more is emitted. Cancelling ctx has the same
// effect — workers stop claiming indices, in-flight fn calls are
// drained (their results discarded), and the pool winds down with no
// goroutine leaks; already-emitted results are unaffected. parallelism
// <= 0 uses GOMAXPROCS; 1 degenerates to the in-place sequential path.
func streamOrdered[T any](ctx context.Context, n, parallelism int, fn func(i int) T, emit func(i int, v T) bool) {
	if n == 0 {
		return
	}
	workers := parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return
			}
			if !emit(i, fn(i)) {
				return
			}
		}
		return
	}

	type result struct {
		i        int
		v        T
		panicked any
	}
	var (
		next    atomic.Int64
		stopped atomic.Bool
		wg      sync.WaitGroup
		results = make(chan result, 2*workers)
		// tokens bounds claimed-but-not-yet-emitted indices: a worker
		// acquires one before claiming an index; the consumer releases it
		// when that index is emitted (or discarded after a panic/cancel).
		// The cursor's index is always the earliest claimed, so its
		// holder is either computing or already in pending — the consumer
		// can always make progress and the pool cannot deadlock.
		tokens = make(chan struct{}, 2*workers)
	)
	next.Store(-1)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				tokens <- struct{}{}
				i := int(next.Add(1))
				if i >= n || stopped.Load() || ctx.Err() != nil {
					<-tokens
					return
				}
				r := result{i: i}
				func() {
					defer func() {
						if p := recover(); p != nil {
							r.panicked = p
							stopped.Store(true)
						}
					}()
					r.v = fn(i)
				}()
				results <- r
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Reorder window: completed-out-of-order results wait here until the
	// cursor reaches them, holding their token; the semaphore caps it at
	// 2*workers entries.
	pending := make(map[int]T, 2*workers)
	var firstPanic any
	cursor := 0
	doomed := false
	for r := range results {
		if r.panicked != nil {
			if firstPanic == nil {
				firstPanic = r.panicked
			}
			<-tokens
			continue
		}
		if !doomed && ctx.Err() != nil {
			// Graceful shutdown: stop claiming and emitting, but keep
			// draining so every worker's in-flight result releases its
			// token and the pool exits cleanly.
			doomed = true
			stopped.Store(true)
			for k := range pending {
				delete(pending, k)
				<-tokens
			}
		}
		if doomed || firstPanic != nil {
			<-tokens // discard; the stream is already over
			continue
		}
		pending[r.i] = r.v
		for {
			v, ok := pending[cursor]
			if !ok {
				break
			}
			delete(pending, cursor)
			<-tokens
			if !emit(cursor, v) {
				doomed = true
				stopped.Store(true)
				// Drop anything already reordered; later arrivals are
				// discarded above as they drain.
				for k := range pending {
					delete(pending, k)
					<-tokens
				}
				break
			}
			cursor++
		}
	}
	if firstPanic != nil {
		panic(firstPanic) // already labeled by fn
	}
}
