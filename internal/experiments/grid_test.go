package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// gridMode keeps grid tests fast; only determinism and record shape are
// under test, not statistical tightness.
func gridMode() Mode {
	return Mode{Name: "grid-test", WarmInstr: 100_000, WarmCycles: 5_000, MeasureCycles: 20_000, Scale: 32}
}

// testGrid is the fixed 3x3x2 grid the golden test and the CLI smoke
// share: three systems, three workloads, two overrides (the acceptance
// floor for the batch mode).
func testGrid() GridSpec {
	return GridSpec{
		Systems: []core.Config{
			core.BaselineConfig(16),
			core.SILOConfig(16),
			core.VaultsSharedConfig(16),
		},
		Workloads: []workload.Spec{
			workload.WebSearch(),
			workload.DataServing(),
			workload.SATSolver(),
		},
		Overrides: []Override{
			NoOverride(),
			{Name: "scale=64", Apply: func(c *core.Config) { c.Scale = 64 }},
		},
		Windows: 4,
	}
}

// jsonLines marshals grid records as the CLI does, with the sole
// non-deterministic field (wall_ms) masked.
func jsonLines(rs []GridCellResult) []byte {
	var b bytes.Buffer
	enc := json.NewEncoder(&b)
	for _, r := range rs {
		r.WallMS = 0
		if err := enc.Encode(r); err != nil {
			panic(err)
		}
	}
	return b.Bytes()
}

// The golden determinism contract, extending
// TestFig10ParallelMatchesSequential to the grid runner: a fixed grid's
// JSON-lines output is byte-identical across parallelism levels once the
// timing field is masked.
func TestGridGoldenDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	g := testGrid()
	seq := gridMode()
	seq.Parallelism = 1
	par := gridMode()
	par.Parallelism = 5

	a := jsonLines(RunGrid(g, seq))
	b := jsonLines(RunGrid(g, par))
	if !bytes.Equal(a, b) {
		al, bl := strings.Split(string(a), "\n"), strings.Split(string(b), "\n")
		for i := range al {
			if i >= len(bl) || al[i] != bl[i] {
				t.Fatalf("grid JSON-lines diverged at record %d:\nseq: %s\npar: %s", i, al[i], bl[i])
			}
		}
		t.Fatal("grid JSON-lines diverged in length")
	}
	if n := bytes.Count(a, []byte("\n")); n != g.Cells() {
		t.Fatalf("emitted %d records, want %d", n, g.Cells())
	}
}

// Record sanity on a real (small) grid: enumeration order, CI bracketing,
// live counters, override echo.
func TestGridRecordShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	g := GridSpec{
		Systems:   []core.Config{core.BaselineConfig(16), core.SILOConfig(16)},
		Workloads: []workload.Spec{workload.WebSearch()},
		Overrides: []Override{NoOverride(), {Name: "scale=64", Apply: func(c *core.Config) { c.Scale = 64 }}},
		Windows:   4,
	}
	rs := RunGrid(g, gridMode())
	if len(rs) != 4 {
		t.Fatalf("got %d records, want 4", len(rs))
	}
	wantOrder := []string{
		"Baseline/WebSearch/-", "Baseline/WebSearch/scale=64",
		"SILO/WebSearch/-", "SILO/WebSearch/scale=64",
	}
	for i, r := range rs {
		if r.Index != i {
			t.Errorf("record %d has index %d", i, r.Index)
		}
		if got := r.System + "/" + r.Workload + "/" + r.Override; got != wantOrder[i] {
			t.Errorf("record %d is %s, want %s", i, got, wantOrder[i])
		}
		if r.Windows != 4 || r.Confidence != 0.95 {
			t.Errorf("record %d windows/confidence = %d/%v", i, r.Windows, r.Confidence)
		}
		if r.Retired == 0 || r.IPC <= 0 {
			t.Errorf("record %d has no progress: %+v", i, r)
		}
		if !(r.IPCCILow <= r.IPCMean && r.IPCMean <= r.IPCCIHigh) {
			t.Errorf("record %d CI [%v, %v] does not bracket mean %v", i, r.IPCCILow, r.IPCCIHigh, r.IPCMean)
		}
		if !(r.IPCMin <= r.IPCMean && r.IPCMean <= r.IPCMax) {
			t.Errorf("record %d extrema [%v, %v] do not bracket mean %v", i, r.IPCMin, r.IPCMax, r.IPCMean)
		}
		if r.LLCHitRate < 0 || r.LLCHitRate > 1 || r.MissRate < 0 || r.MissRate > 1 {
			t.Errorf("record %d rates out of range: %+v", i, r)
		}
	}
	// The scale override must actually land in the record.
	if rs[0].Scale != 32 || rs[1].Scale != 64 {
		t.Fatalf("scale override not applied: %d/%d", rs[0].Scale, rs[1].Scale)
	}
	// Streamed and buffered paths agree record-for-record.
	var streamed []GridCellResult
	m := gridMode()
	m.Parallelism = 1
	RunGridStream(g, m, func(r GridCellResult) bool {
		streamed = append(streamed, r)
		return true
	})
	if !bytes.Equal(jsonLines(streamed), jsonLines(rs)) {
		t.Fatal("RunGridStream and RunGrid diverged")
	}
}

// A 1-window grid has no variance estimate; its records must still be
// valid JSON (no NaN stddev) with a degenerate CI.
func TestGridSingleWindowEncodes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	g := GridSpec{
		Systems:   []core.Config{core.BaselineConfig(16)},
		Workloads: []workload.Spec{workload.WebSearch()},
		Windows:   1,
	}
	var buf bytes.Buffer
	if err := WriteJSONLines(&buf, g, gridMode()); err != nil {
		t.Fatalf("1-window grid failed to encode: %v", err)
	}
	var r GridCellResult
	if err := json.Unmarshal(buf.Bytes(), &r); err != nil {
		t.Fatal(err)
	}
	if r.IPCStdDev != 0 || r.IPCCILow != r.IPCMean || r.IPCCIHigh != r.IPCMean {
		t.Fatalf("1-window spread not degenerate: %+v", r)
	}
}

// streamOrdered must emit every index exactly once, in order, on the
// calling goroutine, at any worker count — including pools larger than
// the job count.
func TestStreamOrderedEmitsInOrder(t *testing.T) {
	const n = 101
	for _, workers := range []int{1, 2, 3, 7, n, n + 13} {
		var calls atomic.Int64
		next := 0
		streamOrdered(context.Background(), n, workers, func(i int) int {
			calls.Add(1)
			return i * i
		}, func(i, v int) bool {
			if i != next {
				t.Fatalf("workers=%d: emitted index %d, want %d", workers, i, next)
			}
			if v != i*i {
				t.Fatalf("workers=%d: index %d carried %d", workers, i, v)
			}
			next++
			return true
		})
		if next != n {
			t.Fatalf("workers=%d: emitted %d of %d", workers, next, n)
		}
		if calls.Load() != n {
			t.Fatalf("workers=%d: fn ran %d times", workers, calls.Load())
		}
	}
}

// Backpressure: while the cursor is stuck on a slow job, the other
// workers must not run arbitrarily far ahead — the token semaphore caps
// claimed-but-unemitted indices at 2*workers, so the reorder buffer is
// O(workers) even under pathological skew (the documented contract).
func TestStreamOrderedBoundsReorderWindow(t *testing.T) {
	const (
		n       = 400
		workers = 4
	)
	release := make(chan struct{})
	var maxEarly atomic.Int64
	emitted := false
	streamOrdered(context.Background(), n, workers, func(i int) int {
		if i == 0 {
			<-release // everything else must wait on the semaphore
		} else {
			for {
				cur := maxEarly.Load()
				if int64(i) <= cur || maxEarly.CompareAndSwap(cur, int64(i)) {
					break
				}
			}
			if i == 2*workers-1 {
				// The farthest index the pool may legally claim while 0 is
				// stuck; claiming it proves the pool kept working, and only
				// now may the slow job finish.
				close(release)
			}
		}
		return i
	}, func(i, v int) bool {
		if !emitted {
			emitted = true
			if got := maxEarly.Load(); got >= 2*workers+int64(workers) {
				t.Fatalf("pool ran %d ahead of a stuck cursor (cap 2*workers=%d)", got, 2*workers)
			}
		}
		return true
	})
	// The test deadlocks (and times out) if the semaphore is so tight the
	// pool cannot reach index 2*workers-1 while 0 is in flight.
}

// Cancellation: emit returning false must stop the sweep — no further
// emissions, and (sequentially) no further fn calls at all.
func TestStreamOrderedCancel(t *testing.T) {
	const n, stopAt = 50, 5
	var calls atomic.Int64
	emitted := 0
	streamOrdered(context.Background(), n, 1, func(i int) int {
		calls.Add(1)
		return i
	}, func(i, v int) bool {
		emitted++
		return emitted < stopAt
	})
	if emitted != stopAt || calls.Load() != stopAt {
		t.Fatalf("sequential cancel: emitted %d, fn calls %d, want %d/%d", emitted, calls.Load(), stopAt, stopAt)
	}

	calls.Store(0)
	emitted = 0
	streamOrdered(context.Background(), n, 4, func(i int) int {
		calls.Add(1)
		return i
	}, func(i, v int) bool {
		emitted++
		return emitted < stopAt
	})
	if emitted != stopAt {
		t.Fatalf("parallel cancel: emitted %d, want %d", emitted, stopAt)
	}
	// Workers may overrun by the in-flight window but not the whole grid.
	if got := calls.Load(); got >= n {
		t.Fatalf("parallel cancel: fn ran %d times, sweep was not cancelled", got)
	}
}

// A panic inside a grid cell must surface on the caller naming the cell,
// at any parallelism.
func TestGridPanicNamesCell(t *testing.T) {
	g := GridSpec{
		Systems:   []core.Config{core.BaselineConfig(16)},
		Workloads: []workload.Spec{workload.WebSearch()},
		Overrides: []Override{{Name: "cores=0", Apply: func(c *core.Config) { c.Cores = 0 }}},
		Windows:   2,
	}
	for _, workers := range []int{1, 4} {
		m := gridMode()
		m.Parallelism = workers
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: expected panic", workers)
				}
				if msg := fmt.Sprint(r); !strings.Contains(msg, "Baseline/WebSearch/cores=0") {
					t.Fatalf("workers=%d: panic does not name the cell: %v", workers, msg)
				}
			}()
			RunGrid(g, m)
		}()
	}
}

// Defaults: empty overrides become the identity, windows and confidence
// get their documented defaults, and empty axes fail loudly.
func TestGridSpecNormalization(t *testing.T) {
	g := GridSpec{
		Systems:   []core.Config{core.BaselineConfig(16)},
		Workloads: []workload.Spec{workload.WebSearch()},
	}
	n := g.normalized()
	if len(n.Overrides) != 1 || n.Overrides[0].Name != "-" {
		t.Fatalf("default overrides = %+v", n.Overrides)
	}
	if n.Windows != DefaultGridWindows || n.Confidence != 0.95 {
		t.Fatalf("defaults = %d/%v", n.Windows, n.Confidence)
	}
	if g.Cells() != 1 {
		t.Fatalf("Cells() = %d, want 1", g.Cells())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty grid")
		}
	}()
	GridSpec{}.normalized()
}
