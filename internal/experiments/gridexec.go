package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/robust"
	"repro/internal/sim"
)

// Fault-tolerant sweep execution (the robustness layer over grid.go).
// RunGridStreamOpts wraps the ordered streaming pool with per-cell
// failure isolation, deterministic retry with capped exponential
// backoff, a per-cell wall-clock watchdog, and a crash-safe resume
// journal — the per-shard protocol the ROADMAP's distributed runner
// will reuse. The determinism contract holds throughout: a retried,
// resumed, or fault-injected-then-recovered sweep emits records
// byte-identical (modulo wall_ms) to an uninterrupted run.

// GridJournalSalt versions the journal key scheme. Bump it whenever a
// change alters simulation semantics (any emitted number), so resumed
// sweeps never merge records computed by different code.
const GridJournalSalt = "grid-v1"

// Cell failure kinds (CellError.Kind).
const (
	// CellPanic is a recovered panic inside the cell.
	CellPanic = "panic"
	// CellTimeout is a cell that exceeded GridOptions.CellDeadline.
	CellTimeout = "timeout"
	// cellCanceled marks an attempt cut short by sweep shutdown; such
	// records are never emitted or journaled.
	cellCanceled = "canceled"
)

// CellError is the structured failure record of a permanently failed
// cell — one JSON-lines record in the sweep output carries it in place
// of measurements. Every field is deterministic (the stack digest
// normalizes away goroutine identity and parallelism; see
// robust.Digest), so failed sweeps stay byte-identical across
// parallelism levels too.
type CellError struct {
	Kind        string  `json:"kind"`  // panic | timeout
	Phase       string  `json:"phase"` // enumerate | restore | build | prewarm | warm | checkpoint | measure | check
	Message     string  `json:"message,omitempty"`
	StackDigest string  `json:"stack_digest,omitempty"`
	Attempts    int     `json:"attempts"`
	DeadlineMS  float64 `json:"deadline_ms,omitempty"`
}

// GridOptions configures the fault-tolerant execution layer. The zero
// value reproduces the historical behavior exactly: fail fast, no
// retries, no watchdog, no journal.
type GridOptions struct {
	// OnError selects fail-fast (default, historical) or skip-and-record.
	OnError robust.FailPolicy
	// Retries is how many times a panicked or timed-out cell is re-run
	// (from scratch — attempts are deterministic, so a retry of a
	// deterministic failure fails identically; retries exist for
	// transient host faults) before it counts as permanently failed.
	Retries int
	// Backoff paces retries; the zero value retries immediately.
	Backoff robust.Backoff
	// CellDeadline is the per-cell wall-clock watchdog; a cell exceeding
	// it is recorded as timed out (the attempt's goroutine is abandoned
	// — simulations are not interruptible). 0 disables the watchdog.
	CellDeadline time.Duration
	// Journal, when non-nil, records each completed cell fsync'd; with
	// Resume, cells whose journal key is already present are not
	// simulated — their records are re-emitted from the journal.
	Journal *robust.Journal
	Resume  bool
	// Injector injects deterministic faults (tests/CI harness only).
	Injector *robust.Injector
}

// RunGridStreamOpts is RunGridStream with fault tolerance: it validates
// instead of panicking, threads ctx through the worker pool (cancel for
// graceful shutdown — in-flight cells drain, partial output stands, the
// journal keeps everything completed), and applies opts. Under FailFast
// a permanently failed cell aborts the sweep with an error naming the
// cell; under SkipFailed it becomes one structured error record and the
// sweep continues. Returns ctx.Err() when cancelled.
func RunGridStreamOpts(ctx context.Context, g GridSpec, m Mode, opts GridOptions, emit func(GridCellResult) bool) (err error) {
	return runGridIndexed(ctx, g, m, opts, nil, emit)
}

// RunGridSubsetOpts is the shard executor seam of the distributed
// runner (DESIGN.md §13): it executes only the named cell indices —
// one worker's lease batch — under the same fault-tolerance options as
// RunGridStreamOpts, emitting results in the order indices are given.
// Every index must be in [0, g.Cells()); journal keys are the same
// content hashes a whole-grid run derives, so per-shard journals merge
// idempotently with each other and with a single-process journal.
func RunGridSubsetOpts(ctx context.Context, g GridSpec, m Mode, opts GridOptions, indices []int, emit func(GridCellResult) bool) error {
	return runGridIndexed(ctx, g, m, opts, indices, emit)
}

// GridCellKeys derives every cell's journal key — the content hash a
// completed record is stored and deduplicated under. A distributed
// coordinator uses these to merge shard reports idempotently (a cell
// completed twice emits once) and to resume from its own journal
// without re-deriving cells.
func GridCellKeys(g GridSpec, m Mode) ([]string, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	cells := g.normalized().enumerate(m)
	ex := &cellExecutor{m: m}
	keys := make([]string, len(cells))
	for i, c := range cells {
		keys[i] = ex.key(c)
	}
	return keys, nil
}

// runGridIndexed is the shared execution core: run the cells named by
// indices (nil = all, in enumeration order) under opts, emitting in
// the order given.
func runGridIndexed(ctx context.Context, g GridSpec, m Mode, opts GridOptions, indices []int, emit func(GridCellResult) bool) (err error) {
	if verr := g.Validate(); verr != nil {
		return verr
	}
	gn := g.normalized()
	if m.MeasureCycles/sim.Cycle(gn.Windows) <= 0 {
		return fmt.Errorf("grid: measure budget %d too small for %d windows (each window needs at least one cycle)", m.MeasureCycles, gn.Windows)
	}
	cells := gn.enumerate(m)
	if indices == nil {
		indices = make([]int, len(cells))
		for i := range indices {
			indices[i] = i
		}
	}
	for _, idx := range indices {
		if idx < 0 || idx >= len(cells) {
			return fmt.Errorf("grid: cell index %d outside [0, %d)", idx, len(cells))
		}
	}
	ex := &cellExecutor{m: m, opts: opts}
	if opts.Journal != nil && opts.Resume {
		ex.resume = opts.Journal.Entries()
	}
	defer func() {
		// FailFast cell failures propagate as labeled panics from the
		// pool; surface them as errors — this path is CLI-reachable.
		if p := recover(); p != nil {
			err = fmt.Errorf("%v", p)
		}
	}()
	streamOrdered(ctx, len(indices), m.Parallelism,
		func(i int) GridCellResult { return ex.run(ctx, cells[indices[i]]) },
		func(_ int, r GridCellResult) bool {
			if r.Error != nil && r.Error.Kind == cellCanceled {
				return false // shutdown mid-cell: never emit the sentinel
			}
			if ex.journalErr() != nil {
				return false // a dead journal must not burn the sweep's hours
			}
			return emit(r)
		})
	if jerr := ex.journalErr(); jerr != nil {
		return jerr
	}
	return ctx.Err()
}

// WriteJSONLinesOpts streams the grid to w as JSON lines under the
// fault-tolerance options — the paperbench -grid batch format. The
// first encode error cancels the sweep, like WriteJSONLines.
func WriteJSONLinesOpts(ctx context.Context, w io.Writer, g GridSpec, m Mode, opts GridOptions) error {
	enc := json.NewEncoder(w)
	var encErr error
	err := RunGridStreamOpts(ctx, g, m, opts, func(r GridCellResult) bool {
		encErr = enc.Encode(r)
		return encErr == nil
	})
	if encErr != nil {
		return encErr
	}
	return err
}

// cellExecutor runs one cell under the fault-tolerance options:
// journal lookup, retry loop, watchdog, panic isolation.
type cellExecutor struct {
	m      Mode
	opts   GridOptions
	resume map[string]json.RawMessage

	mu   sync.Mutex
	jerr error // first journal append failure
}

// key derives the cell's journal key: a content hash over the
// code-version salt, the mode's measurement geometry, and the cell's
// full identity. Overrides are keyed by name — the CLI compiles names
// to mutations deterministically, so equal names mean equal configs.
// Scenario cells additionally fold in the scenario digest, so editing a
// spec file (or the trace it references) invalidates exactly its own
// journal entries; workload cells keep their historical keys.
func (e *cellExecutor) key(c gridCell) string {
	parts := []string{GridJournalSalt, e.m.Name,
		fmt.Sprint(e.m.WarmInstr), fmt.Sprint(e.m.WarmCycles), fmt.Sprint(e.m.MeasureCycles),
		fmt.Sprint(c.index), c.system, c.wl, c.ov,
		fmt.Sprint(c.cfg.Scale), fmt.Sprint(c.windows), fmt.Sprint(c.confidence)}
	if c.scen != nil {
		parts = append(parts, c.scen.Digest())
	}
	return robust.Key(parts...)
}

func (e *cellExecutor) journalErr() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.jerr
}

func (e *cellExecutor) setJournalErr(err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.jerr == nil {
		e.jerr = fmt.Errorf("grid journal: %w", err)
	}
}

// run executes one cell: resume from the journal when possible,
// otherwise attempt with retries and record the outcome.
func (e *cellExecutor) run(ctx context.Context, c gridCell) GridCellResult {
	key := e.key(c)
	if raw, ok := e.resume[key]; ok {
		var r GridCellResult
		// A record that fails to decode, or recorded a failure, is
		// re-simulated rather than trusted.
		if err := json.Unmarshal(raw, &r); err == nil && r.Error == nil {
			return r
		}
	}

	var last *CellError
	for attempt := 0; attempt <= e.opts.Retries; attempt++ {
		if attempt > 0 {
			if err := e.opts.Backoff.Sleep(ctx, attempt-1); err != nil {
				return canceledResult(c)
			}
		}
		rec, cerr := e.attempt(ctx, c, attempt)
		if cerr == nil {
			if e.opts.Journal != nil {
				if err := e.opts.Journal.Append(key, rec); err != nil {
					e.setJournalErr(err)
				}
			}
			return rec
		}
		if cerr.Kind == cellCanceled {
			return canceledResult(c)
		}
		cerr.Attempts = attempt + 1
		last = cerr
	}

	if e.opts.OnError == robust.FailFast {
		panic(fmt.Sprintf("experiments: grid cell %d (%s/%s/%s): %s in phase %s after %d attempt(s): %s",
			c.index, c.system, c.wl, c.ov, last.Kind, last.Phase, last.Attempts, last.Message))
	}
	// SkipFailed: the structured error record takes the cell's slot in
	// the stream; identity fields are kept so the failure is attributable.
	return GridCellResult{
		Index: c.index, System: c.system, Workload: c.wl, Override: c.ov,
		Scale: c.cfg.Scale, Windows: c.windows, Confidence: c.confidence,
		Error: last,
	}
}

// attempt runs one try of the cell, under the watchdog when a deadline
// is configured.
func (e *cellExecutor) attempt(ctx context.Context, c gridCell, attempt int) (GridCellResult, *CellError) {
	ph := &phaseTracker{}
	d := e.opts.CellDeadline
	if d <= 0 {
		return e.simulate(ctx, c, attempt, ph)
	}

	actx, cancel := context.WithTimeout(ctx, d)
	defer cancel()
	type outcome struct {
		rec  GridCellResult
		cerr *CellError
	}
	// Buffered so an abandoned attempt can always deliver and exit: the
	// watchdog never strands a goroutine on a send.
	ch := make(chan outcome, 1)
	go func() {
		rec, cerr := e.simulate(actx, c, attempt, ph)
		ch <- outcome{rec, cerr}
	}()
	select {
	case o := <-ch:
		if o.cerr != nil && o.cerr.Kind == cellCanceled && ctx.Err() == nil {
			// The attempt observed the watchdog's cancellation itself
			// (e.g. an injected stall cut short): that is a timeout.
			return GridCellResult{}, e.timeoutError(ph)
		}
		return o.rec, o.cerr
	case <-actx.Done():
		if ctx.Err() != nil {
			return GridCellResult{}, &CellError{Kind: cellCanceled}
		}
		// Deadline exceeded: record the phase the attempt was in and
		// abandon its goroutine (it drains into the buffered channel
		// whenever it finishes — simulations cannot be interrupted).
		return GridCellResult{}, e.timeoutError(ph)
	}
}

func (e *cellExecutor) timeoutError(ph *phaseTracker) *CellError {
	return &CellError{
		Kind:       CellTimeout,
		Phase:      ph.get(),
		Message:    fmt.Sprintf("cell exceeded its %v deadline", e.opts.CellDeadline),
		DeadlineMS: float64(e.opts.CellDeadline.Nanoseconds()) / 1e6,
	}
}

// simulate runs simulateCell with panic isolation: a panic becomes a
// structured *CellError (identity, phase, stack digest) instead of
// killing the sweep.
func (e *cellExecutor) simulate(ctx context.Context, c gridCell, attempt int, ph *phaseTracker) (rec GridCellResult, cerr *CellError) {
	defer func() {
		if p := recover(); p != nil {
			if err, ok := p.(error); ok && err == robust.ErrStallInterrupted {
				cerr = &CellError{Kind: cellCanceled}
				return
			}
			cerr = &CellError{
				Kind:        CellPanic,
				Phase:       ph.get(),
				Message:     fmt.Sprint(p),
				StackDigest: robust.Digest(debug.Stack(), "cellExecutor).simulate"),
			}
		}
	}()
	if ctx.Err() != nil {
		return GridCellResult{}, &CellError{Kind: cellCanceled}
	}
	return simulateCell(ctx, c, e.m, e.opts.Injector, attempt, ph), nil
}

func canceledResult(c gridCell) GridCellResult {
	return GridCellResult{Index: c.index, Error: &CellError{Kind: cellCanceled}}
}
