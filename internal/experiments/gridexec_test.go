package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/robust"
	"repro/internal/workload"
)

// faultMode keeps fault-path tests fast: the machinery under test is the
// execution layer, not the simulation, so tiny windows suffice.
func faultMode() Mode {
	return Mode{Name: "grid-fault-test", WarmInstr: 2_000, WarmCycles: 500, MeasureCycles: 4_000, Scale: 32}
}

// faultGrid is the 2x2 grid (4 cells) the fault-tolerance tests share.
func faultGrid() GridSpec {
	return GridSpec{
		Systems:   []core.Config{core.BaselineConfig(16), core.SILOConfig(16)},
		Workloads: []workload.Spec{workload.WebSearch(), workload.DataServing()},
		Windows:   2,
	}
}

// checkGoroutineLeaks fails the test if goroutines spawned during it are
// still alive at cleanup — the watchdog/cancellation paths abandon
// attempt goroutines and must still wind every one of them down.
func checkGoroutineLeaks(t *testing.T) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		for {
			n := runtime.NumGoroutine()
			if n <= base {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				m := runtime.Stack(buf, true)
				t.Fatalf("goroutine leak: %d live at cleanup vs %d at start\n%s", n, base, buf[:m])
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}

// collectOpts runs the grid under opts and returns the emitted records.
func collectOpts(t *testing.T, ctx context.Context, g GridSpec, m Mode, opts GridOptions) ([]GridCellResult, error) {
	t.Helper()
	var out []GridCellResult
	err := RunGridStreamOpts(ctx, g, m, opts, func(r GridCellResult) bool {
		out = append(out, r)
		return true
	})
	return out, err
}

// The zero GridOptions must reproduce the historical runner exactly —
// same records, byte for byte.
func TestGridOptsZeroValueMatchesLegacy(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	g, m := faultGrid(), faultMode()
	legacy := RunGrid(g, m)
	got, err := collectOpts(t, context.Background(), g, m, GridOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(jsonLines(got), jsonLines(legacy)) {
		t.Fatal("zero-value GridOptions diverged from RunGrid")
	}
}

// Skip mode: one injected hard failure yields a complete sweep with
// exactly one structured error record, healthy cells untouched, and the
// whole stream byte-identical across parallelism levels.
func TestGridSkipModeIsolatesFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	checkGoroutineLeaks(t)
	g, m := faultGrid(), faultMode()
	clean := RunGrid(g, m)

	const failIdx = 2
	var streams [][]byte
	for _, par := range []int{1, 5} {
		pm := m
		pm.Parallelism = par
		inj := robust.NewInjector(1, robust.Plan{PanicCells: map[int]int{failIdx: -1}})
		rs, err := collectOpts(t, context.Background(), g, pm, GridOptions{OnError: robust.SkipFailed, Injector: inj})
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		if len(rs) != g.Cells() {
			t.Fatalf("par=%d: sweep incomplete: %d of %d records", par, len(rs), g.Cells())
		}
		var failures int
		for i, r := range rs {
			if r.Error == nil {
				// Healthy cells must be exactly what a clean run produces.
				if !bytes.Equal(jsonLines([]GridCellResult{r}), jsonLines([]GridCellResult{clean[i]})) {
					t.Errorf("par=%d: healthy record %d diverged from clean run", par, i)
				}
				continue
			}
			failures++
			e := r.Error
			if r.Index != failIdx || e.Kind != CellPanic || e.Attempts != 1 {
				t.Errorf("par=%d: error record %+v at index %d", par, e, r.Index)
			}
			if !strings.Contains(e.Message, "injected panic") {
				t.Errorf("par=%d: error message %q", par, e.Message)
			}
			if e.Phase == "" || len(e.StackDigest) != 16 {
				t.Errorf("par=%d: error record missing phase/digest: %+v", par, e)
			}
			// The failed cell keeps its identity but no measurements.
			if r.System == "" || r.Workload == "" || r.Retired != 0 || r.IPC != 0 {
				t.Errorf("par=%d: failed record carries measurements: %+v", par, r)
			}
		}
		if failures != 1 {
			t.Fatalf("par=%d: %d error records, want exactly 1", par, failures)
		}
		streams = append(streams, jsonLines(rs))
	}
	if !bytes.Equal(streams[0], streams[1]) {
		t.Fatal("skip-mode output diverged between parallelism 1 and 5")
	}
}

// Retries outlast a transient fault and the emitted stream is
// byte-identical to a never-faulted run — the retry determinism
// contract.
func TestGridRetryOutlastsTransientFault(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	checkGoroutineLeaks(t)
	g, m := faultGrid(), faultMode()
	clean := jsonLines(RunGrid(g, m))

	// Cell 1 panics on its first two attempts, then succeeds.
	inj := robust.NewInjector(0, robust.Plan{PanicCells: map[int]int{1: 2}})
	rs, err := collectOpts(t, context.Background(), g, m, GridOptions{
		Retries:  2,
		Backoff:  robust.Backoff{Base: time.Millisecond, Cap: 5 * time.Millisecond},
		Injector: inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(jsonLines(rs), clean) {
		t.Fatal("retried sweep diverged from the clean run")
	}
	// 4 cells + 2 extra attempts for the transient cell.
	if inj.Fires() != int64(g.Cells())+2 {
		t.Fatalf("Fires = %d, want %d", inj.Fires(), g.Cells()+2)
	}
}

// The watchdog: a stalled cell is recorded as a timeout naming its
// phase and deadline, the rest of the sweep completes, and the
// abandoned attempt goroutine unwinds (no leaks).
func TestGridWatchdogTimesOut(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	checkGoroutineLeaks(t)
	g, m := faultGrid(), faultMode()
	// The deadline must fail only the stalled cell: calibrate it to 10x
	// the slowest clean cell on this host (the race detector slows
	// simulation by an order of magnitude).
	var slowest float64
	for _, r := range RunGrid(g, m) {
		if r.WallMS > slowest {
			slowest = r.WallMS
		}
	}
	deadline := time.Duration(10*slowest) * time.Millisecond
	if deadline < 300*time.Millisecond {
		deadline = 300 * time.Millisecond
	}
	inj := robust.NewInjector(0, robust.Plan{StallCells: map[int]time.Duration{0: time.Hour}})
	rs, err := collectOpts(t, context.Background(), g, m, GridOptions{
		OnError:      robust.SkipFailed,
		CellDeadline: deadline,
		Injector:     inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != g.Cells() {
		t.Fatalf("sweep incomplete: %d of %d", len(rs), g.Cells())
	}
	e := rs[0].Error
	if e == nil || e.Kind != CellTimeout {
		t.Fatalf("stalled cell record: %+v", rs[0])
	}
	if e.DeadlineMS != float64(deadline.Milliseconds()) || e.Attempts != 1 || e.Phase == "" {
		t.Fatalf("timeout record fields: %+v", e)
	}
	for _, r := range rs[1:] {
		if r.Error != nil {
			t.Fatalf("healthy cell %d recorded error %+v", r.Index, r.Error)
		}
	}
}

// Fail-fast: a permanently failed cell aborts the sweep with an error
// naming the cell — returned, not panicked, on the CLI-reachable path.
func TestGridFailFastReturnsError(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	checkGoroutineLeaks(t)
	g, m := faultGrid(), faultMode()
	inj := robust.NewInjector(0, robust.Plan{PanicCells: map[int]int{0: -1}})
	_, err := collectOpts(t, context.Background(), g, m, GridOptions{Injector: inj})
	if err == nil {
		t.Fatal("fail-fast sweep with a failing cell returned nil")
	}
	msg := err.Error()
	if !strings.Contains(msg, "grid cell 0") || !strings.Contains(msg, "Baseline/WebSearch") || !strings.Contains(msg, "panic") {
		t.Fatalf("error does not name the failed cell: %v", err)
	}
}

// Graceful shutdown: cancelling the context mid-sweep returns ctx.Err(),
// the emitted prefix is exactly a clean run's prefix, and the pool winds
// down without leaking goroutines.
func TestGridShutdownEmitsCleanPrefix(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	checkGoroutineLeaks(t)
	g := faultGrid()
	clean := RunGrid(g, faultMode())

	for _, par := range []int{1, 2} {
		m := faultMode()
		m.Parallelism = par
		ctx, cancel := context.WithCancel(context.Background())
		var got []GridCellResult
		err := RunGridStreamOpts(ctx, g, m, GridOptions{}, func(r GridCellResult) bool {
			got = append(got, r)
			if len(got) == 1 {
				cancel()
			}
			return true
		})
		cancel()
		if err != context.Canceled {
			t.Fatalf("par=%d: cancelled sweep returned %v, want context.Canceled", par, err)
		}
		if len(got) == 0 {
			t.Fatalf("par=%d: nothing emitted before the cancel", par)
		}
		if par == 1 && len(got) != 1 {
			// The sequential path checks ctx before every cell: exactly the
			// record that triggered the cancel is emitted.
			t.Fatalf("par=1: emitted %d records after cancelling at 1", len(got))
		}
		if !bytes.Equal(jsonLines(got), jsonLines(clean[:len(got)])) {
			t.Fatalf("par=%d: partial output is not a clean-run prefix", par)
		}
	}
}

// Validation errors (not panics) for CLI-reachable misconfiguration.
func TestGridOptsValidation(t *testing.T) {
	noop := func(GridCellResult) bool { return true }
	if err := RunGridStreamOpts(context.Background(), GridSpec{}, faultMode(), GridOptions{}, noop); err == nil || !strings.Contains(err.Error(), "at least one system") {
		t.Fatalf("empty grid: %v", err)
	}
	g := faultGrid()
	g.Confidence = 95 // a percentage, not a level
	if err := RunGridStreamOpts(context.Background(), g, faultMode(), GridOptions{}, noop); err == nil || !strings.Contains(err.Error(), "confidence") {
		t.Fatalf("bad confidence: %v", err)
	}
	g = faultGrid()
	g.Windows = 100
	m := faultMode()
	m.MeasureCycles = 50 // fewer cycles than windows
	if err := RunGridStreamOpts(context.Background(), g, m, GridOptions{}, noop); err == nil || !strings.Contains(err.Error(), "measure budget") {
		t.Fatalf("undersized budget: %v", err)
	}
}

// Journal + resume, in-process: an interrupted sweep's journal lets a
// resumed run skip completed cells, and the merged output is
// byte-identical to an uninterrupted run — including after torn-tail
// journal corruption forces one cell to re-simulate.
func TestGridJournalResumeInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	checkGoroutineLeaks(t)
	g, m := faultGrid(), faultMode()
	m.Parallelism = 1
	clean := jsonLines(RunGrid(g, faultMode()))
	path := filepath.Join(t.TempDir(), "journal.jl")

	// First run: abort after two cells (emit returns false). Both are
	// already journaled — cells journal before they emit.
	j1, err := robust.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	emitted := 0
	if err := RunGridStreamOpts(context.Background(), g, m, GridOptions{Journal: j1}, func(GridCellResult) bool {
		emitted++
		return emitted < 2
	}); err != nil {
		t.Fatal(err)
	}
	j1.Close()

	// Resume: only the remaining cells simulate (Fires counts attempts),
	// and the merged stream matches the uninterrupted run byte for byte.
	j2, err := robust.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Len() != 2 {
		t.Fatalf("journal has %d entries after aborting at 2, want 2", j2.Len())
	}
	m.Parallelism = 5
	inj := robust.NewInjector(0, robust.Plan{})
	rs, err := collectOpts(t, context.Background(), g, m, GridOptions{Journal: j2, Resume: true, Injector: inj})
	j2.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(jsonLines(rs), clean) {
		t.Fatal("resumed sweep diverged from the uninterrupted run")
	}
	if want := int64(g.Cells() - 2); inj.Fires() != want {
		t.Fatalf("resumed sweep ran %d cell attempts, want %d (journaled cells must not re-simulate)", inj.Fires(), want)
	}

	// Corrupt the journal tail (crash mid-append). The torn entry is
	// dropped on open, its cell re-simulates, output is still identical.
	if err := robust.TruncateTail(path, 5); err != nil {
		t.Fatal(err)
	}
	j3, err := robust.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if j3.DroppedBytes() == 0 || j3.Len() != g.Cells()-1 {
		t.Fatalf("torn tail not repaired: len=%d dropped=%d", j3.Len(), j3.DroppedBytes())
	}
	inj2 := robust.NewInjector(0, robust.Plan{})
	rs, err = collectOpts(t, context.Background(), g, m, GridOptions{Journal: j3, Resume: true, Injector: inj2})
	j3.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(jsonLines(rs), clean) {
		t.Fatal("post-corruption resume diverged from the uninterrupted run")
	}
	if inj2.Fires() != 1 {
		t.Fatalf("post-corruption resume ran %d attempts, want 1 (the torn cell)", inj2.Fires())
	}
}

// A journal entry recording a failure must not be trusted on resume —
// the cell re-simulates and (faults gone) succeeds.
func TestGridResumeRetriesJournaledFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	g, m := faultGrid(), faultMode()
	clean := jsonLines(RunGrid(g, faultMode()))
	path := filepath.Join(t.TempDir(), "journal.jl")

	// Journal a failure record for cell 3 by hand, via the executor's own
	// key derivation.
	j, err := robust.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	ex := &cellExecutor{m: m}
	cells := g.normalized().enumerate(m)
	failRec := GridCellResult{Index: 3, Error: &CellError{Kind: CellPanic, Phase: "build", Attempts: 1}}
	if err := j.Append(ex.key(cells[3]), failRec); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, err := robust.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := collectOpts(t, context.Background(), g, m, GridOptions{Journal: j2, Resume: true})
	j2.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(jsonLines(rs), clean) {
		t.Fatal("journaled failure was replayed instead of re-simulated")
	}
}

// streamOrdered context cancellation across worker counts: emission
// stops, workers stop claiming, and every goroutine winds down.
func TestStreamOrderedContextCancel(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			checkGoroutineLeaks(t)
			const n = 200
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var calls atomic.Int64
			emitted := 0
			streamOrdered(ctx, n, workers, func(i int) int {
				calls.Add(1)
				time.Sleep(time.Millisecond)
				return i
			}, func(i, v int) bool {
				emitted++
				if emitted == 3 {
					cancel()
				}
				return true
			})
			if emitted < 3 || emitted >= n {
				t.Fatalf("emitted %d of %d after cancel at 3", emitted, n)
			}
			if got := calls.Load(); got >= n {
				t.Fatalf("fn ran %d times; cancellation did not stop the pool", got)
			}
		})
	}
}

// streamOrdered panic propagation across worker counts: the panic
// surfaces on the caller and the pool still winds down leak-free.
func TestStreamOrderedPanicAcrossWorkers(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			checkGoroutineLeaks(t)
			const n = 64
			got := func() (msg string) {
				defer func() { msg = fmt.Sprint(recover()) }()
				streamOrdered(context.Background(), n, workers, func(i int) int {
					if i == 7 {
						panic("boom at 7")
					}
					return i
				}, func(i, v int) bool { return true })
				return ""
			}()
			if !strings.Contains(got, "boom at 7") {
				t.Fatalf("panic did not propagate: %q", got)
			}
		})
	}
}

// RunCellsCtx honors cancellation on both the sequential and parallel
// paths.
func TestRunCellsCtxCancelled(t *testing.T) {
	cells := []Cell{
		cell("a", core.BaselineConfig(16), workload.WebSearch()),
		cell("b", core.BaselineConfig(16), workload.WebSearch()),
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, par := range []int{1, 2} {
		m := faultMode()
		m.Parallelism = par
		if _, err := RunCellsCtx(ctx, cells, m); err != context.Canceled {
			t.Fatalf("par=%d: err = %v, want context.Canceled", par, err)
		}
	}
}

// The acceptance criterion: a sweep SIGKILLed at a randomized cell
// boundary and resumed produces output byte-identical (modulo wall_ms)
// to an uninterrupted run, at parallelism 1 and 5. The child process
// re-execs this test binary (GRID_HELPER=1) and kills itself with
// SIGKILL — a real crash, not a simulated one; only the fsync'd journal
// survives.
func TestGridKillResumeSubprocess(t *testing.T) {
	if os.Getenv("GRID_HELPER") == "1" {
		gridKillHelper(t)
		return
	}
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	g := faultGrid()
	golden := jsonLines(RunGrid(g, faultMode()))

	for _, par := range []int{1, 5} {
		t.Run(fmt.Sprintf("par=%d", par), func(t *testing.T) {
			dir := t.TempDir()
			journal := filepath.Join(dir, "journal.jl")
			out := filepath.Join(dir, "out.jsonl")
			// A randomized kill point strictly inside the sweep: the child
			// SIGKILLs itself right after emitting this many cells.
			killAfter := 1 + int(time.Now().UnixNano())%(g.Cells()-1)
			t.Logf("killing after %d of %d cells", killAfter, g.Cells())

			run := func(killAt int) error {
				cmd := exec.Command(os.Args[0], "-test.run=TestGridKillResumeSubprocess$", "-test.v")
				cmd.Env = append(os.Environ(),
					"GRID_HELPER=1",
					"GRID_HELPER_JOURNAL="+journal,
					"GRID_HELPER_OUT="+out,
					"GRID_HELPER_KILL_AFTER="+strconv.Itoa(killAt),
					"GRID_HELPER_PAR="+strconv.Itoa(par),
				)
				var buf bytes.Buffer
				cmd.Stdout = &buf
				cmd.Stderr = &buf
				err := cmd.Run()
				if err != nil {
					t.Logf("child output:\n%s", buf.String())
				}
				return err
			}

			// Run 1: the child kills itself mid-sweep.
			err := run(killAfter)
			ee, ok := err.(*exec.ExitError)
			if !ok || ee.Sys().(syscall.WaitStatus).Signal() != syscall.SIGKILL {
				t.Fatalf("first run should die by SIGKILL, got %v", err)
			}

			// Run 2: resume from the journal, run to completion.
			if err := run(0); err != nil {
				t.Fatalf("resumed run failed: %v", err)
			}

			// The resumed run's full output must match the golden stream.
			data, err := os.ReadFile(out)
			if err != nil {
				t.Fatal(err)
			}
			var rs []GridCellResult
			dec := json.NewDecoder(bytes.NewReader(data))
			for dec.More() {
				var r GridCellResult
				if err := dec.Decode(&r); err != nil {
					t.Fatalf("resumed output is not clean JSON lines: %v", err)
				}
				rs = append(rs, r)
			}
			if !bytes.Equal(jsonLines(rs), golden) {
				t.Fatalf("kill-and-resume output diverged from the uninterrupted run\ngot  %d records\nwant %d", len(rs), g.Cells())
			}
		})
	}
}

// gridKillHelper is the child side of TestGridKillResumeSubprocess: run
// the sweep with a journal and either SIGKILL after KILL_AFTER emitted
// cells or (resume mode) run to completion, writing records to OUT.
func gridKillHelper(t *testing.T) {
	journal := os.Getenv("GRID_HELPER_JOURNAL")
	out := os.Getenv("GRID_HELPER_OUT")
	killAfter, _ := strconv.Atoi(os.Getenv("GRID_HELPER_KILL_AFTER"))
	par, _ := strconv.Atoi(os.Getenv("GRID_HELPER_PAR"))

	j, err := robust.OpenJournal(journal)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	f, err := os.Create(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	g, m := faultGrid(), faultMode()
	m.Parallelism = par
	enc := json.NewEncoder(f)
	emitted := 0
	var encErr error
	err = RunGridStreamOpts(context.Background(), g, m, GridOptions{Journal: j, Resume: true}, func(r GridCellResult) bool {
		if encErr = enc.Encode(r); encErr != nil {
			return false
		}
		emitted++
		if killAfter > 0 && emitted == killAfter {
			// A real crash: no deferred cleanup, no journal close, no
			// output flush beyond what already hit the file.
			syscall.Kill(os.Getpid(), syscall.SIGKILL)
		}
		return true
	})
	if encErr != nil {
		t.Fatal(encErr)
	}
	if err != nil {
		t.Fatal(err)
	}
}
