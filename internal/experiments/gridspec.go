package experiments

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Textual grid specs. A grid argument is a semicolon-separated list of
// axes:
//
//	systems=Baseline,SILO,SILO-CO;workloads=WebSearch,DataServing;overrides=scale=64|llc_mb=64
//
// systems and workloads are comma-separated names; overrides is a
// '|'-separated list of override sets, each a comma-separated list of
// key=value assignments (or "-" for the identity). The grid is the full
// cross product, streamed as JSON-lines in enumeration order.
//
// The compiler lives here (not in cmd/paperbench) because the textual
// form is also the distributed runner's wire format: a coordinator
// ships the string to its workers and every process compiles it with
// this exact code, so equal strings mean equal grids — the property the
// content-hash journal keys and the cross-process byte-identity
// contract both rest on (DESIGN.md §13).

// SystemByName maps a (case-insensitive) system name to its config
// constructor at 16 cores (a cores= override re-targets the core count).
func SystemByName(name string) (core.Config, error) {
	switch strings.ToLower(name) {
	case "baseline":
		return core.BaselineConfig(16), nil
	case "baseline+dram$", "baseline+dram", "dram":
		return core.BaselineDRAMConfig(16), nil
	case "silo":
		return core.SILOConfig(16), nil
	case "silo-co", "siloco":
		return core.SILOCOConfig(16), nil
	case "vaults-sh", "vaultssh", "vaultsshared":
		return core.VaultsSharedConfig(16), nil
	default:
		return core.Config{}, fmt.Errorf("unknown system %q (want Baseline, Baseline+DRAM$, SILO, SILO-CO or Vaults-Sh)", name)
	}
}

// WorkloadByName resolves a workload from the scale-out and enterprise
// suites or the SPEC CPU2006 set.
func WorkloadByName(name string) (workload.Spec, error) {
	for _, s := range workload.ScaleOutSuite() {
		if strings.EqualFold(s.Name, name) {
			return s, nil
		}
	}
	for _, s := range workload.EnterpriseSuite() {
		if strings.EqualFold(s.Name, name) {
			return s, nil
		}
	}
	for _, n := range workload.Spec2006Names() {
		if strings.EqualFold(n, name) {
			return workload.Spec2006(n), nil
		}
	}
	return workload.Spec{}, fmt.Errorf("unknown workload %q (scale-out, enterprise and SPEC CPU2006 names are accepted)", name)
}

// ParseOverride compiles one override set ("scale=64,llc_mb=64" or "-")
// into a named config mutation. Assignments apply left to right; every
// value is validated here, at parse time, with the key name in the
// error — a bad override must fail before any cell simulates, not as a
// config panic mid-sweep — and a key given twice is rejected rather
// than silently last-writer-wins.
func ParseOverride(set string) (Override, error) {
	set = strings.TrimSpace(set)
	if set == "" || set == "-" {
		return NoOverride(), nil
	}
	var setters []func(*core.Config)
	seen := map[string]bool{}
	for _, kv := range strings.Split(set, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return Override{}, fmt.Errorf("override %q: assignment %q is not key=value", set, kv)
		}
		key = strings.ToLower(strings.TrimSpace(key))
		val = strings.TrimSpace(val)
		if seen[key] {
			return Override{}, fmt.Errorf("override %q: key %s given twice", set, key)
		}
		seen[key] = true
		// num validates the value into [1, max] at parse time, naming the
		// key. The caps are generous physical bounds (a petabyte-class
		// cache, a 64k-core die), there to catch typos and unit mistakes —
		// llc_mb=68719476736 for 64 GiB — before they overflow a shift or
		// allocate the host to death mid-sweep.
		num := func(max int64) (int64, error) {
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n <= 0 || n > max {
				return 0, fmt.Errorf("override %q: %s wants an integer in [1, %d], got %q", set, key, max, val)
			}
			return n, nil
		}
		switch key {
		case "scale":
			n, err := num(1 << 30)
			if err != nil {
				return Override{}, err
			}
			setters = append(setters, func(c *core.Config) { c.Scale = n })
		case "cores":
			n, err := num(1 << 16)
			if err != nil {
				return Override{}, err
			}
			setters = append(setters, func(c *core.Config) { c.Cores = int(n) })
		case "seed":
			n, err := num(1<<63 - 1)
			if err != nil {
				return Override{}, err
			}
			setters = append(setters, func(c *core.Config) { c.Seed = uint64(n) })
		case "llc_mb":
			n, err := num(1 << 30)
			if err != nil {
				return Override{}, err
			}
			setters = append(setters, func(c *core.Config) { c.LLCSize = n << 20 })
		case "llc_ways":
			n, err := num(1 << 12)
			if err != nil {
				return Override{}, err
			}
			setters = append(setters, func(c *core.Config) { c.LLCWays = int(n) })
		case "llc_extra":
			n, err := num(1 << 20)
			if err != nil {
				return Override{}, err
			}
			setters = append(setters, func(c *core.Config) { c.LLCExtraLatency = sim.Cycle(n) })
		case "rwmult":
			n, err := num(1 << 12)
			if err != nil {
				return Override{}, err
			}
			setters = append(setters, func(c *core.Config) { c.RWSharedMult = int(n) })
		case "vault_mb":
			n, err := num(1 << 30)
			if err != nil {
				return Override{}, err
			}
			setters = append(setters, func(c *core.Config) { c.VaultCapacity = n << 20 })
		case "vault_ways":
			n, err := num(1 << 12)
			if err != nil {
				return Override{}, err
			}
			setters = append(setters, func(c *core.Config) { c.VaultWays = int(n) })
		case "l2":
			if val != "true" && val != "false" {
				return Override{}, fmt.Errorf("override %q: l2 wants true or false, got %q", set, val)
			}
			on := val == "true"
			setters = append(setters, func(c *core.Config) {
				if on {
					*c = c.WithL2()
				} else {
					c.L2Size, c.L2Ways, c.L2Latency = 0, 0, 0
				}
			})
		case "protocol":
			var p coherence.Protocol
			switch strings.ToLower(val) {
			case "mesi":
				p = coherence.MESI
			case "moesi":
				p = coherence.MOESI
			default:
				return Override{}, fmt.Errorf("override %q: protocol wants mesi or moesi, got %q", set, val)
			}
			setters = append(setters, func(c *core.Config) { c.Protocol = p })
		default:
			return Override{}, fmt.Errorf("override %q: unknown key %q (want scale, cores, seed, llc_mb, llc_ways, llc_extra, rwmult, vault_mb, vault_ways, l2, protocol)", set, key)
		}
	}
	return Override{
		Name: set,
		Apply: func(c *core.Config) {
			for _, s := range setters {
				s(c)
			}
		},
	}, nil
}

// ParseGridSpec compiles a textual grid argument into a GridSpec. A
// scenarios= axis names spec files (see internal/scenario), loaded from
// the local filesystem — under the distributed runner every process
// compiles the same string, so workers must see the same files; the
// coordinator cross-checks scenario digests at registration to catch
// divergent copies. Each axis may appear at most once: a repeated axis
// in a hand-built string is a typo that would silently widen the sweep.
func ParseGridSpec(arg string, windows int, confidence float64) (GridSpec, error) {
	g := GridSpec{Windows: windows, Confidence: confidence}
	seen := map[string]bool{}
	for _, section := range strings.Split(arg, ";") {
		section = strings.TrimSpace(section)
		if section == "" {
			continue
		}
		key, val, ok := strings.Cut(section, "=")
		if !ok {
			return g, fmt.Errorf("grid section %q is not axis=values", section)
		}
		axis := strings.ToLower(strings.TrimSpace(key))
		if seen[axis] {
			return g, fmt.Errorf("grid axis %q given twice", axis)
		}
		seen[axis] = true
		switch axis {
		case "systems":
			for _, name := range strings.Split(val, ",") {
				cfg, err := SystemByName(strings.TrimSpace(name))
				if err != nil {
					return g, err
				}
				g.Systems = append(g.Systems, cfg)
			}
		case "workloads":
			for _, name := range strings.Split(val, ",") {
				spec, err := WorkloadByName(strings.TrimSpace(name))
				if err != nil {
					return g, err
				}
				g.Workloads = append(g.Workloads, spec)
			}
		case "scenarios":
			for _, path := range strings.Split(val, ",") {
				scen, err := scenario.Load(strings.TrimSpace(path), WorkloadByName)
				if err != nil {
					return g, err
				}
				g.Scenarios = append(g.Scenarios, scen)
			}
		case "overrides":
			for _, set := range strings.Split(val, "|") {
				ov, err := ParseOverride(set)
				if err != nil {
					return g, err
				}
				g.Overrides = append(g.Overrides, ov)
			}
		default:
			return g, fmt.Errorf("unknown grid axis %q (want systems, workloads, scenarios or overrides)", key)
		}
	}
	if len(g.Systems) == 0 || len(g.Workloads)+len(g.Scenarios) == 0 {
		return g, fmt.Errorf("grid %q needs at least systems=... and workloads=... or scenarios=...", arg)
	}
	return g, nil
}
