package experiments

import "regexp"

// wall_ms masking — the one shared implementation behind every
// "byte-identical modulo wall_ms" comparison (CI smokes via paperbench
// -mask-wall-ms, the dist and resume differentials, tests). It used to
// be an ad-hoc sed/regexp in each place, and the ad-hoc pattern
// `"wall_ms":[^,}]*` had a latent bug: it also matches the tail of any
// future field whose name merely ends in wall_ms ("warm_wall_ms" would
// be silently zeroed too, hiding real divergence from the byte-identity
// checks). The shared pattern anchors on the preceding '{' or ',' so it
// rewrites exactly the wall_ms key and nothing else.
var wallMSRe = regexp.MustCompile(`([{,])"wall_ms":[^,}]*`)

// MaskWallMS zeroes every "wall_ms" value in a JSON-lines blob (or a
// single line), leaving all other fields — including any *_wall_ms
// cousins — byte-for-byte intact. Idempotent.
func MaskWallMS(s string) string {
	return wallMSRe.ReplaceAllString(s, `${1}"wall_ms":0`)
}
