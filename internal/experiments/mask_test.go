package experiments

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestMaskWallMS proves the shared masker rewrites wall_ms and ONLY
// wall_ms — the bug the ad-hoc `"wall_ms":[^,}]*` pattern had was
// matching inside any future field whose name ends in wall_ms.
func TestMaskWallMS(t *testing.T) {
	cases := []struct{ in, want string }{
		// The real schema shape.
		{`{"index":0,"wall_ms":12.345,"ipc":1.5}`, `{"index":0,"wall_ms":0,"ipc":1.5}`},
		// Last field, exponent form.
		{`{"ipc":1.5,"wall_ms":1.2e-3}`, `{"ipc":1.5,"wall_ms":0}`},
		// First field.
		{`{"wall_ms":7,"a":1}`, `{"wall_ms":0,"a":1}`},
		// A future sibling field must survive untouched.
		{`{"warm_wall_ms":9.9,"wall_ms":7,"a":1}`, `{"warm_wall_ms":9.9,"wall_ms":0,"a":1}`},
		{`{"wall_ms":7,"restore_wall_ms":3.3}`, `{"wall_ms":0,"restore_wall_ms":3.3}`},
		// No wall_ms at all: byte-identical passthrough.
		{`{"a":1,"b":"wall_ms"}`, `{"a":1,"b":"wall_ms"}`},
		// Multi-line JSON-lines blob.
		{"{\"wall_ms\":1}\n{\"wall_ms\":2}\n", "{\"wall_ms\":0}\n{\"wall_ms\":0}\n"},
	}
	for _, tc := range cases {
		if got := MaskWallMS(tc.in); got != tc.want {
			t.Errorf("MaskWallMS(%s) = %s, want %s", tc.in, got, tc.want)
		}
		if got := MaskWallMS(MaskWallMS(tc.in)); got != tc.want {
			t.Errorf("not idempotent on %s", tc.in)
		}
	}
}

// TestMaskWallMSRealRecord masks an actual encoded GridCellResult and
// checks that decoding it back changes WallMS to 0 and nothing else.
func TestMaskWallMSRealRecord(t *testing.T) {
	r := GridCellResult{Index: 3, System: "SILO", Workload: "WebSearch", Override: "-",
		Scale: 16, Windows: 8, Cycles: 1000, Retired: 1500, IPC: 1.5, WallMS: 123.456}
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	masked := MaskWallMS(string(b))
	if strings.Contains(masked, "123.456") {
		t.Fatalf("wall_ms survived: %s", masked)
	}
	var got GridCellResult
	if err := json.Unmarshal([]byte(masked), &got); err != nil {
		t.Fatalf("masked line no longer decodes: %v\n%s", err, masked)
	}
	r.WallMS = 0
	if got != r {
		t.Fatalf("masking changed more than wall_ms:\n masked %+v\n want  %+v", got, r)
	}
}
