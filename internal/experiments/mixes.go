package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

// --- Fig 15: multi-programmed SPEC'06 mixes --------------------------------

// Fig15Result holds SILO's speedup over the baseline per 4-core mix.
type Fig15Result struct {
	Mixes   []string
	Speedup []float64 // SILO IPC / baseline IPC
}

// Fig15 runs the paper's ten SPEC'06 mixes on the 4-core setup — Fig 15.
func Fig15(m Mode) Fig15Result {
	var res Fig15Result
	mixes := workload.Spec06Mixes()
	var cells []Cell
	for _, mix := range mixes {
		specs := workload.MixSpecs(mix)
		res.Mixes = append(res.Mixes, mix.Name)
		cells = append(cells,
			Cell{Label: "fig15/" + mix.Name + "/base", Config: core.BaselineConfig(4), Specs: specs},
			Cell{Label: "fig15/" + mix.Name + "/silo", Config: core.SILOConfig(4), Specs: specs})
	}
	ms2 := RunCells(cells, m)
	for i := range mixes {
		mb, ms := ms2[2*i], ms2[2*i+1]
		res.Speedup = append(res.Speedup, ms.IPC()/mustPositive(mb.IPC(), cells[2*i].Label))
	}
	return res
}

// Mean returns the average speedup (paper: ~28% on average, up to 47%).
func (r Fig15Result) Mean() float64 { return stats.Mean(r.Speedup) }

// Max returns the best mix's speedup.
func (r Fig15Result) Max() float64 { return stats.Max(r.Speedup) }

func (r Fig15Result) String() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Fig 15: SPEC'06 4-core mixes, SILO speedup over Baseline")
	fmt.Fprintln(&b, header("mix", "speedup"))
	for i, name := range r.Mixes {
		fmt.Fprintf(&b, "%s\t%.3f\n", name, r.Speedup[i])
	}
	fmt.Fprintf(&b, "mean\t%.3f\nmax\t%.3f\n", r.Mean(), r.Max())
	return b.String()
}

// --- Table VI: performance isolation under colocation ----------------------

// Table6Result reports Web Search throughput normalized to the
// shared-LLC stand-alone configuration.
type Table6Result struct {
	// Web Search on 8 cores; the other 8 cores idle-spin on a tiny
	// footprint (alone) or run mcf (colocated).
	SharedAlone, SharedColoc float64
	SILOAlone, SILOColoc     float64
}

// Table6 reproduces the colocation study: Web Search on 8 cores, mcf on
// the other 8 — paper Table VI. All four setups run as one concurrent
// batch.
func Table6(m Mode) Table6Result {
	ws := workload.WebSearch()
	mcf := workload.Spec2006("mcf")
	idle := idleSpec()

	mixed := func(other workload.Spec) []workload.Spec {
		specs := make([]workload.Spec, 16)
		for i := 0; i < 8; i++ {
			specs[i] = ws
		}
		for i := 8; i < 16; i++ {
			specs[i] = other
		}
		return specs
	}

	cells := []Cell{
		{Label: "table6/shared/alone", Config: core.BaselineConfig(16), Specs: mixed(idle)},
		{Label: "table6/shared/mcf", Config: core.BaselineConfig(16), Specs: mixed(mcf)},
		{Label: "table6/silo/alone", Config: core.SILOConfig(16), Specs: mixed(idle)},
		{Label: "table6/silo/mcf", Config: core.SILOConfig(16), Specs: mixed(mcf)},
	}
	ms := RunCells(cells, m)
	ipc := make([]float64, len(ms))
	for i, met := range ms {
		ipc[i] = met.RangeIPC(0, 8) // Web Search cores only
	}
	base := mustPositive(ipc[0], cells[0].Label)
	return Table6Result{
		SharedAlone: 1,
		SharedColoc: ipc[1] / base,
		SILOAlone:   ipc[2] / base,
		SILOColoc:   ipc[3] / base,
	}
}

// idleSpec is a compute-bound filler whose footprint disturbs no cache:
// it stands in for the unused cores of the stand-alone configuration.
func idleSpec() workload.Spec {
	return workload.Spec{
		Name: "idle", Class: workload.Batch,
		InstrFootprint: 4 << 10, JumpEveryLines: 64,
		MemRatio: 0.05, StoreFrac: 0.1,
		PrimaryWSS: 4 << 10, PrimaryFrac: 0.999,
		SecondaryWSS: 64, SecondaryFrac: 0.001,
		MLP: 2, IndepProb: 0.5,
	}
}

func (r Table6Result) String() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Table VI: Web Search throughput under colocation (normalized to shared LLC alone)")
	fmt.Fprintln(&b, header("setup", "Shared LLC", "SILO"))
	fmt.Fprintf(&b, "Web Search alone\t%.3f\t%.3f\n", r.SharedAlone, r.SILOAlone)
	fmt.Fprintf(&b, "Web Search + mcf\t%.3f\t%.3f\n", r.SharedColoc, r.SILOColoc)
	return b.String()
}

// --- Fig 16: three-level hierarchies ---------------------------------------

// Fig16Result compares 3-level hierarchies normalized to 3level-SRAM.
type Fig16Result struct {
	Workloads []string
	Systems   []string
	// Norm[w][s].
	Norm [][]float64
}

// Fig16 adds a 512KB private L2 to all configurations and compares a 32MB
// SRAM NUCA LLC, a 128MB eDRAM NUCA LLC, and SILO — paper Fig 16 (Sec.
// VII-F). Both NUCA baselines use 7-cycle banks (the paper's CACTI result
// for the SRAM design, optimistically reused for eDRAM).
func Fig16(m Mode) Fig16Result {
	res := Fig16Result{Systems: []string{"3level-SRAM", "3level-eDRAM", "3level-SILO"}}

	sram := core.BaselineConfig(16).WithL2()
	sram.LLCSize = 32 << 20
	sram.LLCBankLatency = 7

	edram := core.BaselineConfig(16).WithL2()
	edram.LLCSize = 128 << 20
	edram.LLCBankLatency = 7

	silo := core.SILOConfig(16).WithL2()

	suite := workload.ScaleOutSuite()
	var cells []Cell
	for _, spec := range suite {
		res.Workloads = append(res.Workloads, spec.Name)
		cells = append(cells,
			cell("fig16/"+spec.Name+"/sram", sram, spec),
			cell("fig16/"+spec.Name+"/edram", edram, spec),
			cell("fig16/"+spec.Name+"/silo", silo, spec))
	}
	ipcs := RunCellIPCs(cells, m)
	for wi := range suite {
		base := mustPositive(ipcs[3*wi], cells[3*wi].Label)
		res.Norm = append(res.Norm, []float64{
			1,
			ipcs[3*wi+1] / base,
			ipcs[3*wi+2] / base,
		})
	}
	return res
}

func (r Fig16Result) String() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Fig 16: 3-level hierarchies (normalized to 3level-SRAM)")
	fmt.Fprintln(&b, header(append([]string{"workload"}, r.Systems...)...))
	for i, w := range r.Workloads {
		fmt.Fprintf(&b, "%s\t%s\n", w, fmtRow(r.Norm[i]))
	}
	return b.String()
}
