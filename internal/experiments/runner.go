package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/workload"
)

// Cell is one independent simulation of an experiment grid: a system
// configuration running a workload assignment. Every figure/table runner
// decomposes into cells, which the runner executes concurrently — each
// core.System is deterministic and confined to a single goroutine, so the
// grid parallelizes with no cross-cell coordination.
type Cell struct {
	// Label names the cell in panics and diagnostics, e.g.
	// "fig10/WebSearch/SILO".
	Label  string
	Config core.Config
	Specs  []workload.Spec
}

// cell is a convenience constructor for single-workload cells.
func cell(label string, cfg core.Config, spec workload.Spec) Cell {
	return Cell{Label: label, Config: cfg, Specs: []workload.Spec{spec}}
}

// RunCells executes every cell under mode m and returns metrics in
// submission order, so callers assemble results exactly as the sequential
// loops they replace did and outputs stay bit-identical regardless of
// worker count. m.Parallelism bounds the worker pool: <= 0 uses
// GOMAXPROCS, 1 degenerates to the in-place sequential path. A panic
// inside any cell is captured and re-raised on the calling goroutine,
// prefixed with the cell's label.
func RunCells(cells []Cell, m Mode) []core.Metrics {
	out, err := RunCellsCtx(context.Background(), cells, m)
	if err != nil {
		// Unreachable with a background context: RunCellsCtx only errors
		// on cancellation.
		panic("experiments: " + err.Error())
	}
	return out
}

// RunCellsCtx is RunCells with graceful shutdown: cancelling ctx stops
// workers from claiming further cells, drains in-flight simulations,
// and returns ctx.Err() — the cancellation path shared with the grid's
// streaming pool, for signal-driven sweep teardown.
func RunCellsCtx(ctx context.Context, cells []Cell, m Mode) ([]core.Metrics, error) {
	out := make([]core.Metrics, len(cells))
	workers := m.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	if workers <= 1 {
		for i, c := range cells {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			out[i] = runCell(c, m)
		}
		return out, nil
	}

	var (
		next     atomic.Int64
		failed   atomic.Bool
		wg       sync.WaitGroup
		panicked = make([]any, len(cells))
	)
	next.Store(-1)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				// Once any cell has failed (or the run is cancelled) the
				// batch's results will be discarded, so stop claiming work
				// instead of simulating the rest of the grid.
				if i >= len(cells) || failed.Load() || ctx.Err() != nil {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicked[i] = r
							failed.Store(true)
						}
					}()
					out[i] = runCell(cells[i], m)
				}()
			}
		}()
	}
	wg.Wait()
	for _, r := range panicked {
		if r != nil {
			panic(r) // already labeled by runCell
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// runCell builds, warms, and measures one cell, like runOne but with the
// cell's label attached to any panic.
func runCell(c Cell, m Mode) core.Metrics {
	defer func() {
		if r := recover(); r != nil {
			panic(fmt.Sprintf("experiments: cell %q: %v", c.Label, r))
		}
	}()
	return runOne(c.Config, c.Specs, m)
}

// RunCellIPCs runs the cells and reduces each to its aggregate IPC — the
// common case for normalized-performance figures.
func RunCellIPCs(cells []Cell, m Mode) []float64 {
	ms := RunCells(cells, m)
	ipcs := make([]float64, len(ms))
	for i, met := range ms {
		ipcs[i] = met.IPC()
	}
	return ipcs
}

// mustPositive guards normalization denominators: dividing by a zero (or
// negative, or NaN) baseline value would silently poison a whole
// normalized row with +Inf/NaN, so fail loudly naming the offending cell
// instead.
func mustPositive(v float64, label string) float64 {
	if !(v > 0) {
		panic(fmt.Sprintf("experiments: baseline cell %q produced non-positive value %v; cannot normalize", label, v))
	}
	return v
}
