package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// The acceptance bar for the runner: a figure computed with the full
// worker pool is bit-identical (==, not approximately equal) to the
// sequential path on every cell.
func TestFig10ParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	seq := Quick()
	seq.Parallelism = 1
	// Force a real worker pool even on single-core machines (where the
	// GOMAXPROCS default would degenerate to sequential).
	par := Quick()
	par.Parallelism = 4

	a := Fig10(seq)
	b := Fig10(par)
	if fmt.Sprintf("%v", a.Systems) != fmt.Sprintf("%v", b.Systems) ||
		fmt.Sprintf("%v", a.Workloads) != fmt.Sprintf("%v", b.Workloads) {
		t.Fatalf("headers diverged: %v/%v vs %v/%v", a.Systems, a.Workloads, b.Systems, b.Workloads)
	}
	for wi := range a.Norm {
		for si := range a.Norm[wi] {
			if a.Norm[wi][si] != b.Norm[wi][si] {
				t.Errorf("Norm[%d][%d]: sequential %v != parallel %v (%s on %s)",
					wi, si, a.Norm[wi][si], b.Norm[wi][si], a.Workloads[wi], a.Systems[si])
			}
		}
	}
	for si := range a.Geomean {
		if a.Geomean[si] != b.Geomean[si] {
			t.Errorf("Geomean[%s]: sequential %v != parallel %v", a.Systems[si], a.Geomean[si], b.Geomean[si])
		}
	}
}

// RunCells must return metrics in submission order whatever the worker
// count, including worker pools larger than the cell count.
func TestRunCellsPreservesOrder(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	suite := workload.ScaleOutSuite()
	var cells []Cell
	for _, spec := range suite {
		cells = append(cells, cell("order/"+spec.Name, core.BaselineConfig(16), spec))
	}
	m := tinyMode()
	m.Parallelism = 1
	want := RunCells(cells, m)
	for _, workers := range []int{2, 3, len(cells), len(cells) + 7} {
		m.Parallelism = workers
		got := RunCells(cells, m)
		for i := range want {
			if got[i].Retired != want[i].Retired || got[i].IPC() != want[i].IPC() {
				t.Fatalf("workers=%d: cell %d (%s) diverged: retired %d vs %d",
					workers, i, cells[i].Label, got[i].Retired, want[i].Retired)
			}
		}
	}
}

// A panic inside a worker must surface on the caller, naming the cell.
func TestRunCellsPanicNamesCell(t *testing.T) {
	bad := core.BaselineConfig(16)
	cells := []Cell{{
		Label:  "bad/specs-mismatch",
		Config: bad,
		// Two specs for sixteen cores: core.NewSystem panics.
		Specs: []workload.Spec{workload.WebSearch(), workload.WebSearch()},
	}}
	for _, workers := range []int{1, 4} {
		m := tinyMode()
		m.Parallelism = workers
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: expected panic", workers)
				}
				if msg := fmt.Sprint(r); !strings.Contains(msg, "bad/specs-mismatch") {
					t.Fatalf("workers=%d: panic does not name the cell: %v", workers, msg)
				}
			}()
			RunCells(cells, m)
		}()
	}
}

// Zero-IPC baselines must fail loudly with the cell's name instead of
// emitting +Inf/NaN rows.
func TestMustPositiveNamesCell(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic on zero baseline")
		}
		if msg := fmt.Sprint(r); !strings.Contains(msg, "fig2/base/WebSearch") {
			t.Fatalf("panic does not name the baseline cell: %v", msg)
		}
	}()
	mustPositive(0, "fig2/base/WebSearch")
}

// Sanity: the default worker pool actually uses the machine.
func TestDefaultParallelismIsGOMAXPROCS(t *testing.T) {
	if got := runtime.GOMAXPROCS(0); got < 1 {
		t.Fatalf("GOMAXPROCS = %d", got)
	}
	// A Mode zero value must not mean "sequential".
	if Quick().Parallelism != 0 {
		t.Fatal("Quick() should leave Parallelism at the GOMAXPROCS default")
	}
}
