package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/workload"
)

// Scenario cells ride the same grid engine as workload cells, so every
// determinism contract — byte-identity across parallelism, gen-threads,
// checkpoint restore — must extend to them unchanged. These tests are
// the package-level half of the ISSUE acceptance criteria; the CI
// scenario smoke covers the CLI-level half.

// testScenarioSpec is a two-client consolidation: a phased web tier and
// a steady batch job sharing group 0 (one address space) on 16 cores.
const testScenarioSpec = `name: consolidation-test
clients:
  - id: web
    cores: 0-9
    group: 0
    phases:
      - workload: WebSearch
        arrival: {process: poisson, mean_ops: 3000}
      - workload: WebSearch
        mem_ratio_scale: 1.4
        arrival: {process: gamma, mean_ops: 1500, cv: 2}
  - id: batch
    cores: rest
    group: 0
    workload: MapReduce
`

func testScenario(t *testing.T, spec string) *scenario.Scenario {
	t.Helper()
	s, err := scenario.Parse([]byte(spec), WorkloadByName, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// scenarioGrid mixes scenario and workload cells so the tests also pin
// enumeration order and the coexistence of both cell kinds in one sweep.
func scenarioGrid(t *testing.T) GridSpec {
	return GridSpec{
		Systems:   []core.Config{core.BaselineConfig(16), core.SILOConfig(16)},
		Workloads: []workload.Spec{workload.WebSearch()},
		Scenarios: []*scenario.Scenario{testScenario(t, testScenarioSpec)},
		Windows:   2,
	}
}

// TestScenarioGridDeterminism: byte-identical records (modulo wall_ms,
// zeroed by jsonLines) across parallelism 1/5 and gen-threads 0/4 — the
// full cross, since scenario sources ride the same batch-refill seam.
func TestScenarioGridDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	g, m := scenarioGrid(t), faultMode()
	m.Parallelism = 1
	want := jsonLines(RunGrid(g, m))
	if !bytes.Contains(want, []byte(`"workload":"scenario:consolidation-test"`)) {
		t.Fatal("no scenario cells in the sweep output")
	}
	for _, par := range []int{1, 5} {
		for _, gen := range []int{0, 4} {
			vm := m
			vm.Parallelism = par
			vm.GenThreads = gen
			if got := jsonLines(RunGrid(g, vm)); !bytes.Equal(got, want) {
				t.Fatalf("parallel=%d gen-threads=%d scenario grid diverged", par, gen)
			}
		}
	}
}

// TestScenarioCheckpointRestoreDifferential: a scenario sweep with a
// warm-state checkpoint dir — cold save pass, then restore pass — emits
// records byte-identical to a no-checkpoint run, and the second pass
// actually restores.
func TestScenarioCheckpointRestoreDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	g, m := scenarioGrid(t), faultMode()
	want := jsonLines(RunGrid(g, m))

	var stats CheckpointStats
	cm := m
	cm.CheckpointDir = t.TempDir()
	cm.Checkpoints = &stats
	if got := jsonLines(RunGrid(g, cm)); !bytes.Equal(got, want) {
		t.Fatal("cold checkpoint-saving sweep diverged from the plain sweep")
	}
	if stats.Saves.Load() == 0 {
		t.Fatal("cold pass saved no checkpoints")
	}
	if got := jsonLines(RunGrid(g, cm)); !bytes.Equal(got, want) {
		t.Fatal("restored sweep diverged from the plain sweep")
	}
	if stats.Hits.Load() == 0 {
		t.Fatal("second pass restored nothing — scenario checkpoint keys never hit")
	}
}

// TestScenarioJournalKeys: two scenarios with the same name but
// different content must key differently (the digest, not the name,
// carries identity), while workload cells keep digest-free keys.
func TestScenarioJournalKeys(t *testing.T) {
	m := faultMode()
	g1 := scenarioGrid(t)
	g2 := scenarioGrid(t)
	g2.Scenarios = []*scenario.Scenario{
		testScenario(t, strings.Replace(testScenarioSpec, "mean_ops: 1500", "mean_ops: 1600", 1)),
	}
	k1, err := GridCellKeys(g1, m)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := GridCellKeys(g2, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(k1) != g1.Cells() || g1.Cells() != 4 {
		t.Fatalf("%d keys for %d cells", len(k1), g1.Cells())
	}
	// Cells enumerate workloads before scenarios per system: indices 0/2
	// are WebSearch cells (identical grids → identical keys), 1/3 the
	// scenario cells (same name, different content → different keys).
	for _, i := range []int{0, 2} {
		if k1[i] != k2[i] {
			t.Errorf("workload cell %d key moved with an unrelated scenario edit", i)
		}
	}
	for _, i := range []int{1, 3} {
		if k1[i] == k2[i] {
			t.Errorf("scenario cell %d key ignored the content digest", i)
		}
	}

	// And the checkpoint key moves with the digest too.
	cfg := core.SILOConfig(16)
	ck1 := ScenarioCheckpointKey(cfg, g1.Scenarios[0], m.WarmInstr)
	ck2 := ScenarioCheckpointKey(cfg, g2.Scenarios[0], m.WarmInstr)
	if ck1 == ck2 {
		t.Error("scenario checkpoint key ignored the content digest")
	}
}

// TestScenarioSystemMismatch: a scenario that does not cover the
// system's cores fails the cell (fail-fast panic path) rather than
// silently mis-binding.
func TestScenarioSystemMismatch(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	s := testScenario(t, "name: narrow\nclients:\n  - id: a\n    cores: 0-3\n    workload: WebSearch\n")
	g := GridSpec{
		Systems:   []core.Config{core.BaselineConfig(16)},
		Scenarios: []*scenario.Scenario{s},
		Windows:   1,
	}
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("4-core scenario on a 16-core system did not fail")
		}
		if msg, ok := p.(string); !ok || !strings.Contains(msg, "core 4 is bound to no client") {
			t.Fatalf("panic %v does not name the uncovered core", p)
		}
	}()
	RunGrid(g, faultMode())
}
