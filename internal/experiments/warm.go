package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/robust"
	"repro/internal/scenario"
	"repro/internal/workload"
)

// Shared build→Prewarm→WarmFunctional harness (previously copy-pasted
// between runOne, ThroughputSystemAt and simulateCell) with transparent
// warm-state checkpointing hung on it (DESIGN.md §11): when a
// checkpoint directory is configured, buildWarm restores a warmed
// system on key hit — skipping the functional warm-up that dominates
// paper-scale host cost — and saves one on miss. A restored system is
// bit-identical to a from-scratch build (core differential tests), so
// callers cannot observe the difference except in wall-clock time.

// CheckpointStats accumulates restore/save outcomes across a run (grid
// cells update it concurrently; all fields are accessed atomically).
type CheckpointStats struct {
	Hits     atomic.Uint64 // warm state restored from a checkpoint
	Misses   atomic.Uint64 // no usable checkpoint; built from scratch
	Saves    atomic.Uint64 // checkpoints written after a cold build
	SaveErrs atomic.Uint64 // best-effort saves that failed
}

// WarmInfo reports how one system was warmed.
type WarmInfo struct {
	// Hit is true when the warm state was restored from a checkpoint.
	Hit bool
	// RestoreSec is the checkpoint read+restore wall time (Hit only).
	RestoreSec float64
	// WarmupSec is the total wall time of the warm phase, whichever path
	// produced it: cold build+Prewarm+WarmFunctional, or restore.
	WarmupSec float64
}

// checkpointKeyConfig normalizes a Config to the fields that determine
// warmed state. Functional warm-up never consults pure-latency scalars
// — they shape the timed phase only — so sweep cells that differ only
// in those (the Fig 2 LLC-latency sweep, RW-shared multipliers, hop
// costs) share one checkpoint. Geometry-bearing sub-configs (vault
// banks, memory channels, DRAM-cache pages) stay in the key: restore
// validates slab lengths against them.
func checkpointKeyConfig(cfg core.Config) core.Config {
	cfg.L2Latency = 0
	cfg.LLCBankLatency = 0
	cfg.LLCExtraLatency = 0
	cfg.RWSharedMult = 1
	cfg.HopLatency = 0
	cfg.LLCFixedOverhead = 0
	// GenThreads only changes which host thread runs the generator; the
	// warmed state is bit-identical (ring drain rule, DESIGN.md §12), so
	// every gen-thread setting shares one checkpoint.
	cfg.GenThreads = 0
	return cfg
}

// CheckpointKey derives the content-hash key of the warm state produced
// by (cfg, specs, warmInstr): the format generation, the normalized
// config, every workload spec, and the functional warm-up length. Equal
// keys mean bit-identical warmed systems.
func CheckpointKey(cfg core.Config, specs []workload.Spec, warmInstr int) string {
	parts := make([]string, 0, len(specs)+3)
	parts = append(parts, checkpoint.FormatTag, fmt.Sprintf("%+v", checkpointKeyConfig(cfg)))
	for _, sp := range specs {
		parts = append(parts, fmt.Sprintf("%+v", sp))
	}
	parts = append(parts, fmt.Sprint(warmInstr))
	return robust.Key(parts...)
}

// ScenarioCheckpointKey is CheckpointKey for scenario-driven cells: the
// per-spec parts are replaced by the scenario digest, which already
// content-hashes every client's specs, arrivals, core bindings, groups
// and trace bytes. Equal digests mean identical compiled sources, so
// equal keys again mean bit-identical warmed systems.
func ScenarioCheckpointKey(cfg core.Config, scen *scenario.Scenario, warmInstr int) string {
	return robust.Key(checkpoint.FormatTag, fmt.Sprintf("%+v", checkpointKeyConfig(cfg)),
		"scenario", scen.Digest(), fmt.Sprint(warmInstr))
}

// CheckpointPath is the file a key maps to inside a checkpoint dir.
func CheckpointPath(dir, key string) string {
	return filepath.Join(dir, key+".ckpt")
}

// checkpointMeta is the human-readable header blob -checkpoint-ls
// prints; it carries the key's components so a directory listing is
// self-describing.
type checkpointMeta struct {
	Kind      string   `json:"kind"`
	Cores     int      `json:"cores"`
	Scale     int64    `json:"scale"`
	Seed      uint64   `json:"seed"`
	Workloads []string `json:"workloads"`
	WarmInstr int      `json:"warm_instr"`
	Created   int64    `json:"created_unix"`
}

func buildMeta(cfg core.Config, specs []workload.Spec, warmInstr int) string {
	m := checkpointMeta{
		Kind:      cfg.Kind.String(),
		Cores:     cfg.Cores,
		Scale:     cfg.Scale,
		Seed:      cfg.Seed,
		WarmInstr: warmInstr,
		Created:   time.Now().Unix(),
	}
	for _, sp := range specs {
		m.Workloads = append(m.Workloads, sp.Name)
	}
	b, _ := json.Marshal(m)
	return string(b)
}

func buildScenarioMeta(cfg core.Config, scen *scenario.Scenario, warmInstr int) string {
	m := checkpointMeta{
		Kind:      cfg.Kind.String(),
		Cores:     cfg.Cores,
		Scale:     cfg.Scale,
		Seed:      cfg.Seed,
		Workloads: []string{"scenario:" + scen.Name},
		WarmInstr: warmInstr,
		Created:   time.Now().Unix(),
	}
	b, _ := json.Marshal(m)
	return string(b)
}

// buildWarm builds a system and brings it to the post-warm-up state:
// restore from ckptDir on key hit, otherwise NewSystem + Prewarm +
// WarmFunctional (and a best-effort checkpoint save when ckptDir is
// set). cs and ph are optional (nil-safe). Every checkpoint failure
// mode — missing file, torn file, flipped byte, stale version, foreign
// key, geometry mismatch — falls back to the from-scratch path.
func buildWarm(cfg core.Config, specs []workload.Spec, warmInstr int, ckptDir string, cs *CheckpointStats, ph *phaseTracker) (*core.System, WarmInfo) {
	return buildWarmKeyed(
		func() string { return CheckpointKey(cfg, specs, warmInstr) },
		func() string { return buildMeta(cfg, specs, warmInstr) },
		func() *core.System { return core.NewSystem(cfg, specs) },
		func(r *checkpoint.Reader) (*core.System, error) { return core.NewSystemFromCheckpoint(cfg, specs, r) },
		warmInstr, ckptDir, cs, ph)
}

// buildWarmScenario is buildWarm for a scenario-driven cell: the specs
// come compiled as per-core sources. Sources compilation is a pure
// function of (scenario, cores, scale, seed), so the restore path and
// the cold path each compile a fresh source set — a restore that fails
// partway must not leak half-restored source state into the fallback
// cold build.
func buildWarmScenario(cfg core.Config, scen *scenario.Scenario, warmInstr int, ckptDir string, cs *CheckpointStats, ph *phaseTracker) (*core.System, WarmInfo) {
	compile := func() []workload.Source {
		srcs, err := scen.Sources(cfg.Cores, cfg.Scale, cfg.Seed)
		if err != nil {
			// Reachable only through a mis-shaped (system, scenario)
			// pairing; the CLI validates before sweeping, so this is the
			// internal-invariant path and panics like other cell failures.
			panic(err.Error())
		}
		return srcs
	}
	return buildWarmKeyed(
		func() string { return ScenarioCheckpointKey(cfg, scen, warmInstr) },
		func() string { return buildScenarioMeta(cfg, scen, warmInstr) },
		func() *core.System { return core.NewSystemFromSources(cfg, compile()) },
		func(r *checkpoint.Reader) (*core.System, error) {
			return core.NewSystemFromCheckpointSources(cfg, compile(), r)
		},
		warmInstr, ckptDir, cs, ph)
}

// buildWarmKeyed is the shared warm-or-restore engine behind buildWarm
// and buildWarmScenario: key and meta derivation, cold construction and
// checkpoint restore are injected; the locking, fallback and
// best-effort-save policy live here once.
func buildWarmKeyed(deriveKey, deriveMeta func() string, build func() *core.System,
	restore func(*checkpoint.Reader) (*core.System, error),
	warmInstr int, ckptDir string, cs *CheckpointStats, ph *phaseTracker) (*core.System, WarmInfo) {
	var info WarmInfo
	t0 := time.Now()
	var key, path string
	if ckptDir != "" {
		key = deriveKey()
		path = CheckpointPath(ckptDir, key)
		ph.set("restore")
		// Shared dir lock for the whole restore: a concurrent
		// -checkpoint-gc (another worker's maintenance on the shared dir)
		// must not unlink the file mid-read. Failure to lock degrades to
		// the unlocked behavior — locking is protection, not a
		// precondition.
		unlock, lerr := checkpoint.LockDirShared(ckptDir)
		if lerr != nil {
			unlock = func() {}
		}
		if r, err := checkpoint.Open(path, key); err == nil {
			sys, rerr := restore(r)
			r.Close()
			if rerr == nil {
				unlock()
				info.Hit = true
				info.RestoreSec = time.Since(t0).Seconds()
				info.WarmupSec = info.RestoreSec
				if cs != nil {
					cs.Hits.Add(1)
				}
				return sys, info
			}
		}
		unlock()
		if cs != nil {
			cs.Misses.Add(1)
		}
	}

	ph.set("build")
	sys := build()
	ph.set("prewarm")
	sys.Prewarm()
	ph.set("warm")
	sys.WarmFunctional(warmInstr)
	info.WarmupSec = time.Since(t0).Seconds()

	if ckptDir != "" {
		// Best-effort save: a full disk or unwritable dir must not fail
		// the run that just paid for the warm-up. Concurrent saves of the
		// same key (grid cells sharing warm state) are benign — each
		// writes a private temp file and the atomic renames carry
		// identical bytes.
		ph.set("checkpoint")
		// Same shared lock for the save: GC must not prune the directory
		// (or the freshly renamed file, under an aggressive age cutoff)
		// while the atomic write is in flight.
		if unlock, lerr := checkpoint.LockDirShared(ckptDir); lerr == nil {
			defer unlock()
		}
		meta := deriveMeta()
		if err := checkpoint.Save(path, key, meta, sys.Checkpoint); err != nil {
			if cs != nil {
				cs.SaveErrs.Add(1)
			}
			fmt.Fprintf(os.Stderr, "checkpoint: save %s failed: %v\n", filepath.Base(path), err)
		} else if cs != nil {
			cs.Saves.Add(1)
		}
	}
	return sys, info
}
