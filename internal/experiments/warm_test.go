package experiments

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/workload"
)

func warmTestConfig() core.Config {
	cfg := core.SILOConfig(4)
	cfg.Scale = 256
	return cfg
}

const warmTestInstr = 20_000

// TestBuildWarmMissThenHit: the first build is a cold miss that saves a
// checkpoint; the second restores it; both systems measure identically.
func TestBuildWarmMissThenHit(t *testing.T) {
	dir := t.TempDir()
	cfg := warmTestConfig()
	specs := []workload.Spec{workload.WebSearch()}
	var cs CheckpointStats

	cold, coldInfo := buildWarm(cfg, specs, warmTestInstr, dir, &cs, nil)
	if coldInfo.Hit {
		t.Fatal("first build reported a checkpoint hit")
	}
	if cs.Misses.Load() != 1 || cs.Saves.Load() != 1 || cs.SaveErrs.Load() != 0 {
		t.Fatalf("cold counters: %+v", counters(&cs))
	}
	key := CheckpointKey(cfg, specs, warmTestInstr)
	if _, err := os.Stat(CheckpointPath(dir, key)); err != nil {
		t.Fatalf("checkpoint file missing: %v", err)
	}

	warm, warmInfo := buildWarm(cfg, specs, warmTestInstr, dir, &cs, nil)
	if !warmInfo.Hit || warmInfo.RestoreSec <= 0 {
		t.Fatalf("second build did not restore: %+v", warmInfo)
	}
	if cs.Hits.Load() != 1 {
		t.Fatalf("hit counters: %+v", counters(&cs))
	}

	want := cold.Run(2_000, 8_000)
	got := warm.Run(2_000, 8_000)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("restored run diverges:\ncold:     %+v\nrestored: %+v", want, got)
	}
}

func counters(cs *CheckpointStats) [4]uint64 {
	return [4]uint64{cs.Hits.Load(), cs.Misses.Load(), cs.Saves.Load(), cs.SaveErrs.Load()}
}

// TestBuildWarmCorruptionFallback: a truncated file, a flipped byte, and
// a stale format version must each fall back to the from-scratch path
// (and overwrite the bad file) with identical measured output — never an
// error, never silently wrong state.
func TestBuildWarmCorruptionFallback(t *testing.T) {
	cfg := warmTestConfig()
	specs := []workload.Spec{workload.DataServing()}
	refSys, _ := buildWarm(cfg, specs, warmTestInstr, "", nil, nil)
	want := refSys.Run(2_000, 8_000)

	corrupt := map[string]func([]byte) []byte{
		"truncated":    func(b []byte) []byte { return b[:len(b)/2] },
		"flipped-byte": func(b []byte) []byte { b[len(b)-64] ^= 0x10; return b },
		"stale-version": func(b []byte) []byte {
			b[len(checkpoint.Magic)] = checkpoint.FormatVersion + 1
			return b
		},
	}
	for name, mangle := range corrupt {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			var cs CheckpointStats
			buildWarm(cfg, specs, warmTestInstr, dir, &cs, nil) // seed a valid checkpoint
			path := CheckpointPath(dir, CheckpointKey(cfg, specs, warmTestInstr))
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, mangle(data), 0o644); err != nil {
				t.Fatal(err)
			}

			sys, info := buildWarm(cfg, specs, warmTestInstr, dir, &cs, nil)
			if info.Hit {
				t.Fatal("corrupt checkpoint reported as hit")
			}
			if got := sys.Run(2_000, 8_000); !reflect.DeepEqual(want, got) {
				t.Fatalf("fallback run diverges:\nwant: %+v\ngot:  %+v", want, got)
			}
			if cs.Misses.Load() != 2 || cs.Saves.Load() != 2 {
				t.Fatalf("fallback counters: %+v", counters(&cs))
			}
			// The rebuild re-saved over the corrupt file; the next build hits.
			_, info = buildWarm(cfg, specs, warmTestInstr, dir, &cs, nil)
			if !info.Hit {
				t.Fatal("re-saved checkpoint not restored")
			}
		})
	}
}

// TestCheckpointKeyNormalization: pure-timing config fields must not
// perturb the key (sweep cells share warm state), while anything that
// shapes warmed state must.
func TestCheckpointKeyNormalization(t *testing.T) {
	specs := []workload.Spec{workload.WebSearch()}
	base := warmTestConfig()
	key := CheckpointKey(base, specs, warmTestInstr)

	timingOnly := []func(*core.Config){
		func(c *core.Config) { c.LLCExtraLatency += 9 },
		func(c *core.Config) { c.RWSharedMult = 4 },
		func(c *core.Config) { c.L2Latency = 12 },
		func(c *core.Config) { c.LLCBankLatency += 2 },
		func(c *core.Config) { c.HopLatency += 1 },
		func(c *core.Config) { c.LLCFixedOverhead += 5 },
	}
	for i, mut := range timingOnly {
		c := base
		mut(&c)
		if CheckpointKey(c, specs, warmTestInstr) != key {
			t.Fatalf("timing-only mutation %d changed the key", i)
		}
	}

	stateBearing := []func(*core.Config){
		func(c *core.Config) { c.Scale = 512 },
		func(c *core.Config) { c.Seed ^= 1 },
		func(c *core.Config) { c.LLCSize *= 2 },
	}
	for i, mut := range stateBearing {
		c := base
		mut(&c)
		if CheckpointKey(c, specs, warmTestInstr) == key {
			t.Fatalf("state-bearing mutation %d did not change the key", i)
		}
	}
	if CheckpointKey(base, specs, warmTestInstr+1) == key {
		t.Fatal("warm-up length did not change the key")
	}
	if CheckpointKey(base, []workload.Spec{workload.DataServing()}, warmTestInstr) == key {
		t.Fatal("workload did not change the key")
	}
}

// TestBuildWarmSharesAcrossTimingCells proves the cross-cell win: a cell
// differing only in a swept latency restores the checkpoint a previous
// cell saved.
func TestBuildWarmSharesAcrossTimingCells(t *testing.T) {
	dir := t.TempDir()
	specs := []workload.Spec{workload.WebSearch()}
	var cs CheckpointStats

	cfg := warmTestConfig()
	buildWarm(cfg, specs, warmTestInstr, dir, &cs, nil)

	swept := cfg
	swept.LLCExtraLatency += 14 // a Fig 2-style latency point
	sys, info := buildWarm(swept, specs, warmTestInstr, dir, &cs, nil)
	if !info.Hit {
		t.Fatal("timing-swept cell did not share the checkpoint")
	}
	// The restored system must behave as a cold build of the swept config.
	coldSys, _ := buildWarm(swept, specs, warmTestInstr, "", nil, nil)
	want, got := coldSys.Run(2_000, 8_000), sys.Run(2_000, 8_000)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("shared-checkpoint run diverges:\nwant: %+v\ngot:  %+v", want, got)
	}
}

// TestGridWithCheckpointDirByteIdentical: a grid run with checkpointing
// enabled (both cold and fully-restored passes) emits records identical
// to the plain path in every field but WallMS.
func TestGridWithCheckpointDirByteIdentical(t *testing.T) {
	g := GridSpec{
		Systems:   []core.Config{core.BaselineConfig(4), core.SILOConfig(4)},
		Workloads: []workload.Spec{workload.WebSearch()},
		Overrides: []Override{
			{Name: "lat+0", Apply: func(*core.Config) {}},
			{Name: "lat+9", Apply: func(c *core.Config) { c.LLCExtraLatency += 9 }},
		},
		Windows: 2,
	}
	m := Quick()
	m.Scale = 256
	m.WarmInstr = warmTestInstr
	m.MeasureCycles = 8_000
	want := RunGrid(g, m)

	var cs CheckpointStats
	m.CheckpointDir = t.TempDir()
	m.Checkpoints = &cs
	coldPass := RunGrid(g, m)
	warmPass := RunGrid(g, m)
	if cs.Saves.Load() != 2 { // 2 systems x 1 workload; latency override shares
		t.Fatalf("expected 2 saved checkpoints, counters %+v", counters(&cs))
	}
	if cs.Hits.Load() != 2+4 { // cold pass shares 2, warm pass restores all 4
		t.Fatalf("expected 6 hits, counters %+v", counters(&cs))
	}
	for i := range want {
		for name, got := range map[string][]GridCellResult{"cold": coldPass, "warm": warmPass} {
			r := got[i]
			r.WallMS = want[i].WallMS
			if !reflect.DeepEqual(want[i], r) {
				t.Fatalf("%s pass record %d diverges:\nwant: %+v\ngot:  %+v", name, i, want[i], r)
			}
		}
	}
}

// TestPaperScaleProbeCheckpoint: the probe records restore_sec and
// checkpoint_hit, and the restored probe measures the same system (line
// table identical; throughput is wall-clock and may differ).
func TestPaperScaleProbeCheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale probe is slow")
	}
	dir := t.TempDir()
	var cs CheckpointStats
	cold := RunPaperScaleProbeCkpt(64, dir, &cs) // tiny scale keeps the test fast
	if cold.CheckpointHit || cold.RestoreSec != 0 {
		t.Fatalf("cold probe point: %+v", cold)
	}
	warm := RunPaperScaleProbeCkpt(64, dir, &cs)
	if !warm.CheckpointHit || warm.RestoreSec <= 0 {
		t.Fatalf("warm probe point: %+v", warm)
	}
	// The probe measures wall-clock-bounded iteration counts, so
	// post-measurement line-table population is not comparable across
	// runs; the slot encoding and regime are.
	if warm.BytesPerSlot != cold.BytesPerSlot || warm.LineTableEntries == 0 {
		t.Fatalf("restored probe measured a different system shape: %+v vs %+v", warm, cold)
	}
	if filepath.Ext(CheckpointPath(dir, "k")) != ".ckpt" {
		t.Fatal("checkpoint files must use the .ckpt extension")
	}
}
