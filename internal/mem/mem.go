// Package mem defines the vocabulary shared by every memory-system
// component: physical addresses, line geometry, access operations, and the
// request/response contract between hierarchy levels.
package mem

import (
	"fmt"

	"repro/internal/sim"
)

// Addr is a physical byte address.
type Addr uint64

// LineSize is the cache line size used throughout the simulated systems
// (paper Table II: 64 B lines everywhere).
const LineSize = 64

// LineAddr is an address truncated to a cache-line boundary.
type LineAddr uint64

// Line returns the line address containing a.
func (a Addr) Line() LineAddr { return LineAddr(a &^ (LineSize - 1)) }

// Addr returns the first byte address of the line.
func (l LineAddr) Addr() Addr { return Addr(l) }

// Op is the kind of memory access.
type Op uint8

const (
	// IFetch is an instruction fetch (read of the instruction stream).
	IFetch Op = iota
	// Read is a data load.
	Read
	// Write is a data store.
	Write
)

// IsWrite reports whether the op modifies the line.
func (o Op) IsWrite() bool { return o == Write }

func (o Op) String() string {
	switch o {
	case IFetch:
		return "ifetch"
	case Read:
		return "read"
	case Write:
		return "write"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Request is a memory access travelling down the hierarchy. Completion is
// signalled by calling Done exactly once at the cycle the data is available
// to the requester.
type Request struct {
	Addr Addr
	Op   Op
	Core int // issuing core id

	// RWShared marks lines the workload model designates as read-write
	// shared between cores. Used by the Fig 3/4 characterization harness.
	RWShared bool

	// Done is invoked when the access completes. It must not be nil when
	// the request is issued to a Port.
	Done func()
}

// Port is one level of the memory hierarchy: it accepts a request and
// eventually (in simulated time) calls req.Done.
type Port interface {
	Access(req *Request)
}

// PortFunc adapts a function to the Port interface.
type PortFunc func(req *Request)

// Access implements Port.
func (f PortFunc) Access(req *Request) { f(req) }

// FixedLatencyPort completes every request after a fixed delay. It is the
// simplest possible backing store and is widely used in unit tests.
type FixedLatencyPort struct {
	Engine  *sim.Engine
	Latency sim.Cycle
	Count   uint64 // accesses observed
}

// Access implements Port.
func (p *FixedLatencyPort) Access(req *Request) {
	p.Count++
	done := req.Done
	p.Engine.Schedule(p.Latency, done)
}
