package mem

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestLineTruncation(t *testing.T) {
	cases := []struct {
		addr Addr
		want LineAddr
	}{
		{0, 0},
		{1, 0},
		{63, 0},
		{64, 64},
		{65, 64},
		{0xFFFF, 0xFFC0},
	}
	for _, c := range cases {
		if got := c.addr.Line(); got != c.want {
			t.Errorf("Addr(%#x).Line() = %#x, want %#x", c.addr, got, c.want)
		}
	}
}

func TestLineRoundTrip(t *testing.T) {
	f := func(a uint64) bool {
		l := Addr(a).Line()
		// The line address is aligned and contains the original address.
		if uint64(l)%LineSize != 0 {
			return false
		}
		return uint64(l) <= a && a < uint64(l)+LineSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOpString(t *testing.T) {
	if IFetch.String() != "ifetch" || Read.String() != "read" || Write.String() != "write" {
		t.Fatal("unexpected op strings")
	}
	if Op(99).String() == "" {
		t.Fatal("unknown op should still format")
	}
}

func TestOpIsWrite(t *testing.T) {
	if IFetch.IsWrite() || Read.IsWrite() || !Write.IsWrite() {
		t.Fatal("IsWrite misclassifies")
	}
}

func TestFixedLatencyPort(t *testing.T) {
	e := sim.NewEngine()
	p := &FixedLatencyPort{Engine: e, Latency: 42}
	doneAt := sim.Cycle(0)
	p.Access(&Request{Addr: 0x1000, Op: Read, Done: func() { doneAt = e.Now() }})
	e.RunAll()
	if doneAt != 42 {
		t.Fatalf("completed at %d, want 42", doneAt)
	}
	if p.Count != 1 {
		t.Fatalf("Count = %d, want 1", p.Count)
	}
}

func TestPortFunc(t *testing.T) {
	called := false
	var p Port = PortFunc(func(req *Request) {
		called = true
		req.Done()
	})
	p.Access(&Request{Done: func() {}})
	if !called {
		t.Fatal("PortFunc did not dispatch")
	}
}
