// Package memctl models main memory: a fixed 50 ns access latency (paper
// Table II) behind a small number of channels. The paper deliberately
// assumes aggressive memory (fast access, ample bandwidth) to be
// conservative toward SILO, so the channel model only throttles genuinely
// pathological burst behaviour.
package memctl

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/sim"
)

// Config sizes the memory model.
type Config struct {
	AccessCycles  sim.Cycle // fixed access latency (50ns = 100 cycles at 2GHz)
	Channels      int       // independent channels (power of two)
	ServiceCycles sim.Cycle // per-request channel occupancy (burst transfer)
}

// Default returns the paper's memory at the given clock: 50 ns, with four
// channels each able to issue a 64B burst every 4 cycles (far more
// bandwidth than the evaluated workloads demand).
func Default(ghz float64) Config {
	return Config{AccessCycles: sim.Cycle(50 * ghz), Channels: 4, ServiceCycles: 4}
}

// Memory tracks per-channel occupancy and access statistics.
type Memory struct {
	cfg      Config
	engine   *sim.Engine
	chanFree []sim.Cycle

	Accesses   uint64
	Writebacks uint64
}

// New builds the memory model.
func New(engine *sim.Engine, cfg Config) *Memory {
	if cfg.Channels <= 0 || cfg.Channels&(cfg.Channels-1) != 0 {
		panic(fmt.Sprintf("memctl: channel count %d not a positive power of two", cfg.Channels))
	}
	if cfg.AccessCycles == 0 {
		panic("memctl: zero access latency")
	}
	return &Memory{cfg: cfg, engine: engine, chanFree: make([]sim.Cycle, cfg.Channels)}
}

// Config returns the memory configuration.
func (m *Memory) Config() Config { return m.cfg }

func (m *Memory) channel(line mem.LineAddr) int {
	return int((uint64(line) / mem.LineSize) & uint64(m.cfg.Channels-1))
}

// Access returns the latency of a demand read issued now.
func (m *Memory) Access(line mem.LineAddr) sim.Cycle {
	m.Accesses++
	return m.occupy(line) + m.cfg.AccessCycles
}

// Writeback records an eviction write. Writes are posted (buffered by the
// controller) so they add channel occupancy but no latency to the evicting
// access.
func (m *Memory) Writeback(line mem.LineAddr) {
	m.Writebacks++
	m.occupy(line)
}

// occupy reserves the line's channel and returns the queueing delay.
func (m *Memory) occupy(line mem.LineAddr) sim.Cycle {
	now := m.engine.Now()
	ch := m.channel(line)
	start := now
	if m.chanFree[ch] > start {
		start = m.chanFree[ch]
	}
	m.chanFree[ch] = start + m.cfg.ServiceCycles
	return start - now
}
