package memctl

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
)

func line(n uint64) mem.LineAddr { return mem.LineAddr(n * mem.LineSize) }

func TestDefaultLatency(t *testing.T) {
	cfg := Default(2.0)
	if cfg.AccessCycles != 100 {
		t.Fatalf("50ns at 2GHz = %d cycles, want 100", cfg.AccessCycles)
	}
}

func TestAccessUnloaded(t *testing.T) {
	e := sim.NewEngine()
	m := New(e, Default(2.0))
	if got := m.Access(line(0)); got != 100 {
		t.Fatalf("access = %d, want 100", got)
	}
	if m.Accesses != 1 {
		t.Fatalf("Accesses = %d", m.Accesses)
	}
}

func TestChannelQueueing(t *testing.T) {
	e := sim.NewEngine()
	m := New(e, Default(2.0))
	// Two same-channel accesses back to back: second queues 4 cycles.
	a := m.Access(line(0))
	b := m.Access(line(4)) // 4 channels: line 4 maps to channel 0
	if a != 100 || b != 104 {
		t.Fatalf("latencies = %d, %d; want 100, 104", a, b)
	}
	// Different channel: no queueing.
	if got := m.Access(line(1)); got != 100 {
		t.Fatalf("cross-channel access = %d, want 100", got)
	}
}

func TestWritebacksArePosted(t *testing.T) {
	e := sim.NewEngine()
	m := New(e, Default(2.0))
	m.Writeback(line(0))
	if m.Writebacks != 1 || m.Accesses != 0 {
		t.Fatalf("writeback accounting wrong: %d %d", m.Writebacks, m.Accesses)
	}
	// The posted write still occupies the channel.
	if got := m.Access(line(0)); got != 104 {
		t.Fatalf("access behind posted write = %d, want 104", got)
	}
}

func TestChannelDrains(t *testing.T) {
	e := sim.NewEngine()
	m := New(e, Default(2.0))
	m.Access(line(0))
	e.Run(10)
	if got := m.Access(line(0)); got != 100 {
		t.Fatalf("post-drain access = %d, want 100", got)
	}
}

func TestNewPanics(t *testing.T) {
	e := sim.NewEngine()
	for _, cfg := range []Config{
		{AccessCycles: 100, Channels: 0},
		{AccessCycles: 100, Channels: 3},
		{AccessCycles: 0, Channels: 4},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for %+v", cfg)
				}
			}()
			New(e, cfg)
		}()
	}
}
