package memctl

import (
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/sim"
)

// Snapshot serializes the controller's per-channel busy-until cycles
// and stat counters (all zero at the post-warm-up checkpoint cut, but
// carried for format completeness — see vault.Vault.Snapshot).
func (m *Memory) Snapshot(w *checkpoint.Writer) {
	w.Section("memctl.Memory")
	w.U64(m.Accesses)
	w.U64(m.Writebacks)
	free := make([]uint64, len(m.chanFree))
	for i, c := range m.chanFree {
		free[i] = uint64(c)
	}
	w.U64s(free)
}

// Restore overwrites a freshly constructed controller.
func (m *Memory) Restore(r *checkpoint.Reader) error {
	if err := r.Section("memctl.Memory"); err != nil {
		return err
	}
	accesses := r.U64()
	writebacks := r.U64()
	free := r.U64s()
	if err := r.Err(); err != nil {
		return err
	}
	if len(free) != len(m.chanFree) {
		return fmt.Errorf("memctl: checkpoint has %d channels, controller has %d", len(free), len(m.chanFree))
	}
	for i, c := range free {
		m.chanFree[i] = sim.Cycle(c)
	}
	m.Accesses = accesses
	m.Writebacks = writebacks
	return nil
}
