// Package noc models the on-chip interconnect: a 2D mesh with
// dimension-ordered (XY) routing and a fixed per-hop latency, plus the chip
// floorplan that places cores and cache banks on the mesh (paper Table II:
// 4x4 mesh, 3 cycles/hop).
//
// The model is a latency model, not a flit-level network: the evaluated
// systems are latency-bound, not bandwidth-bound (paper Sec. VII-A cites
// Ferdman et al. and Google showing server CPUs are not bandwidth limited),
// so hop-count x hop-latency captures the interconnect's contribution.
// Per-link traffic counters are still kept so experiments can report
// interconnect load.
package noc

import (
	"fmt"

	"repro/internal/sim"
)

// Mesh is a W x H 2D mesh with uniform per-hop latency.
type Mesh struct {
	Width, Height int
	HopLatency    sim.Cycle

	// lat caches the one-way latency for every node pair (row-major
	// from*Nodes()+to): the mesh is static, and Latency sits on every
	// miss path, so the div/mod coordinate math is paid once here.
	lat []sim.Cycle

	// traffic[n] counts messages that traversed at least one link out of
	// node n (indexed by node id).
	traffic []uint64
}

// New returns a mesh of the given dimensions. Paper Table II uses
// New(4, 4, 3) for the 16-core CMP.
func New(width, height int, hopLatency sim.Cycle) *Mesh {
	if width <= 0 || height <= 0 {
		panic(fmt.Sprintf("noc: invalid mesh %dx%d", width, height))
	}
	m := &Mesh{
		Width:      width,
		Height:     height,
		HopLatency: hopLatency,
		traffic:    make([]uint64, width*height),
	}
	n := m.Nodes()
	m.lat = make([]sim.Cycle, n*n)
	for from := 0; from < n; from++ {
		for to := 0; to < n; to++ {
			m.lat[from*n+to] = sim.Cycle(m.Hops(from, to)) * hopLatency
		}
	}
	return m
}

// Nodes returns the node count.
func (m *Mesh) Nodes() int { return m.Width * m.Height }

// Coord returns the (x, y) position of node id (row-major layout).
func (m *Mesh) Coord(node int) (x, y int) {
	m.check(node)
	return node % m.Width, node / m.Width
}

// NodeAt returns the node id at (x, y).
func (m *Mesh) NodeAt(x, y int) int {
	if x < 0 || x >= m.Width || y < 0 || y >= m.Height {
		panic(fmt.Sprintf("noc: coordinate (%d,%d) outside %dx%d mesh", x, y, m.Width, m.Height))
	}
	return y*m.Width + x
}

// Hops returns the XY-routed hop count between two nodes (Manhattan
// distance).
func (m *Mesh) Hops(from, to int) int {
	fx, fy := m.Coord(from)
	tx, ty := m.Coord(to)
	return abs(fx-tx) + abs(fy-ty)
}

// Latency returns the one-way traversal latency between two nodes. A
// node's access to itself costs nothing.
func (m *Mesh) Latency(from, to int) sim.Cycle {
	m.check(from)
	m.check(to)
	return m.lat[from*m.Width*m.Height+to]
}

// RoundTrip returns the request + response traversal latency.
func (m *Mesh) RoundTrip(from, to int) sim.Cycle {
	return 2 * m.Latency(from, to)
}

// Send records one message from -> to and returns its latency. It is the
// traffic-accounting variant of Latency.
func (m *Mesh) Send(from, to int) sim.Cycle {
	m.check(to)
	if from != to {
		m.traffic[from]++
	}
	return m.Latency(from, to)
}

// Traffic returns the number of messages sent from node n.
func (m *Mesh) Traffic(n int) uint64 {
	m.check(n)
	return m.traffic[n]
}

// TotalTraffic returns the number of messages that crossed any link.
func (m *Mesh) TotalTraffic() uint64 {
	var sum uint64
	for _, t := range m.traffic {
		sum += t
	}
	return sum
}

// AverageLatency returns the mean one-way latency from node `from` to every
// node in `targets`, assuming uniform access — the expected NUCA bank
// traversal time for address-interleaved data.
func (m *Mesh) AverageLatency(from int, targets []int) float64 {
	if len(targets) == 0 {
		panic("noc: AverageLatency over no targets")
	}
	sum := 0.0
	for _, t := range targets {
		sum += float64(m.Latency(from, t))
	}
	return sum / float64(len(targets))
}

func (m *Mesh) check(node int) {
	if node < 0 || node >= m.Nodes() {
		panic(fmt.Sprintf("noc: node %d outside %dx%d mesh", node, m.Width, m.Height))
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Floorplan maps cores and LLC banks onto mesh nodes. In the evaluated
// 16-core systems every mesh node hosts one core, one L1 pair, and (for
// shared-LLC designs) one LLC bank, so both mappings are the identity; the
// type exists so asymmetric layouts can be expressed and tested.
type Floorplan struct {
	Mesh     *Mesh
	CoreNode []int // core id -> mesh node
	BankNode []int // LLC bank id -> mesh node
}

// Uniform returns the paper's floorplan: n cores and n banks co-located
// one per mesh node.
func Uniform(m *Mesh) *Floorplan {
	n := m.Nodes()
	f := &Floorplan{Mesh: m, CoreNode: make([]int, n), BankNode: make([]int, n)}
	for i := 0; i < n; i++ {
		f.CoreNode[i] = i
		f.BankNode[i] = i
	}
	return f
}

// CoreToBank returns the one-way latency from a core to an LLC bank.
func (f *Floorplan) CoreToBank(core, bank int) sim.Cycle {
	return f.Mesh.Latency(f.CoreNode[core], f.BankNode[bank])
}

// CoreToCore returns the one-way latency between two cores.
func (f *Floorplan) CoreToCore(a, b int) sim.Cycle {
	return f.Mesh.Latency(f.CoreNode[a], f.CoreNode[b])
}
