package noc

import (
	"testing"
	"testing/quick"
)

func TestCoordRoundTrip(t *testing.T) {
	m := New(4, 4, 3)
	for n := 0; n < 16; n++ {
		x, y := m.Coord(n)
		if m.NodeAt(x, y) != n {
			t.Fatalf("NodeAt(Coord(%d)) = %d", n, m.NodeAt(x, y))
		}
	}
}

func TestHopsKnownValues(t *testing.T) {
	m := New(4, 4, 3)
	cases := []struct{ from, to, hops int }{
		{0, 0, 0},
		{0, 1, 1},
		{0, 3, 3},
		{0, 15, 6}, // corner to corner: 3 + 3
		{5, 10, 2}, // (1,1) -> (2,2)
		{3, 12, 6},
	}
	for _, c := range cases {
		if got := m.Hops(c.from, c.to); got != c.hops {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.from, c.to, got, c.hops)
		}
	}
}

func TestLatencyScalesWithHopLatency(t *testing.T) {
	m := New(4, 4, 3)
	if m.Latency(0, 15) != 18 {
		t.Fatalf("Latency(0,15) = %d, want 18", m.Latency(0, 15))
	}
	if m.RoundTrip(0, 15) != 36 {
		t.Fatalf("RoundTrip(0,15) = %d, want 36", m.RoundTrip(0, 15))
	}
	if m.Latency(7, 7) != 0 {
		t.Fatal("self latency should be zero")
	}
}

// Property: hop distance is a metric — symmetric, zero iff equal, and
// satisfies the triangle inequality.
func TestHopsMetricProperties(t *testing.T) {
	m := New(4, 4, 3)
	f := func(a, b, c uint8) bool {
		x, y, z := int(a)%16, int(b)%16, int(c)%16
		if m.Hops(x, y) != m.Hops(y, x) {
			return false
		}
		if (m.Hops(x, y) == 0) != (x == y) {
			return false
		}
		return m.Hops(x, z) <= m.Hops(x, y)+m.Hops(y, z)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSendCountsTraffic(t *testing.T) {
	m := New(4, 4, 3)
	m.Send(0, 15)
	m.Send(0, 1)
	m.Send(3, 3) // self: no link crossed
	if m.Traffic(0) != 2 || m.Traffic(3) != 0 {
		t.Fatalf("traffic = %d, %d; want 2, 0", m.Traffic(0), m.Traffic(3))
	}
	if m.TotalTraffic() != 2 {
		t.Fatalf("TotalTraffic = %d, want 2", m.TotalTraffic())
	}
}

// The paper's baseline: average LLC round trip including a 5-cycle bank
// access is ~23 cycles on the 4x4 mesh. Average one-way distance from a
// corner-ish core across 16 interleaved banks x 3 cycles/hop x 2 (round
// trip) + 5 ~ 23.
func TestBaselineNUCARoundTripMatchesPaper(t *testing.T) {
	m := New(4, 4, 3)
	banks := make([]int, 16)
	for i := range banks {
		banks[i] = i
	}
	// Mean over all cores of mean over all banks.
	total := 0.0
	for c := 0; c < 16; c++ {
		total += m.AverageLatency(c, banks)
	}
	avgOneWay := total / 16
	rt := 2*avgOneWay + 5 // + bank access
	if rt < 19 || rt > 24 {
		t.Fatalf("average NUCA round trip = %.1f cycles, want ~20-23 (paper: 23)", rt)
	}
}

func TestUniformFloorplan(t *testing.T) {
	m := New(4, 4, 3)
	f := Uniform(m)
	if len(f.CoreNode) != 16 || len(f.BankNode) != 16 {
		t.Fatal("floorplan should place 16 cores and banks")
	}
	if f.CoreToBank(0, 0) != 0 {
		t.Fatal("co-located core/bank should have zero latency")
	}
	if f.CoreToBank(0, 15) != 18 {
		t.Fatalf("CoreToBank(0,15) = %d, want 18", f.CoreToBank(0, 15))
	}
	if f.CoreToCore(0, 5) != 6 {
		t.Fatalf("CoreToCore(0,5) = %d, want 6", f.CoreToCore(0, 5))
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	for _, fn := range []func(){
		func() { New(0, 4, 3) },
		func() { New(4, -1, 3) },
		func() { New(4, 4, 3).Coord(16) },
		func() { New(4, 4, 3).Coord(-1) },
		func() { New(4, 4, 3).NodeAt(4, 0) },
		func() { New(4, 4, 3).AverageLatency(0, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
