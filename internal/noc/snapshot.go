package noc

import (
	"fmt"

	"repro/internal/checkpoint"
)

// Snapshot serializes the per-node traffic counters (the mesh's only
// mutable state; topology and the latency matrix are rebuilt from
// Config on the restore side).
func (m *Mesh) Snapshot(w *checkpoint.Writer) {
	w.Section("noc.Mesh")
	w.I64(int64(m.Width))
	w.I64(int64(m.Height))
	w.U64s(m.traffic)
}

// Restore overwrites a freshly constructed mesh's traffic counters.
func (m *Mesh) Restore(r *checkpoint.Reader) error {
	if err := r.Section("noc.Mesh"); err != nil {
		return err
	}
	width, height := int(r.I64()), int(r.I64())
	traffic := r.U64s()
	if err := r.Err(); err != nil {
		return err
	}
	if width != m.Width || height != m.Height || len(traffic) != len(m.traffic) {
		return fmt.Errorf("noc: checkpoint mesh %dx%d (%d nodes), mesh is %dx%d (%d nodes)",
			width, height, len(traffic), m.Width, m.Height, len(m.traffic))
	}
	copy(m.traffic, traffic)
	return nil
}
