package robust

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFileAtomic replaces path with data via a same-directory temp
// file + fsync + rename, so a crash at any point leaves either the old
// complete file or the new complete file — never a truncated hybrid.
// BENCH_*.json snapshots and -grid output files go through this: the CI
// baseline gate picks its baseline with `ls | sort | tail -1`, and a
// torn snapshot there would poison every subsequent build.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if _, err := tmp.Write(data); err != nil {
		return err
	}
	if err := tmp.Chmod(perm); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	name := tmp.Name()
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		tmp = nil
		return err
	}
	tmp = nil
	syncDir(dir)
	return nil
}

// CommitFile atomically moves a finished temp file into place (fsync +
// rename + directory fsync) — the final step of streaming a large
// output to disk. The caller must have finished writing tmp and closed
// it.
func CommitFile(tmp, path string) error {
	f, err := os.Open(tmp)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("sync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	syncDir(filepath.Dir(path))
	return nil
}

// syncDir fsyncs a directory so a rename survives power loss.
// Best-effort: some filesystems refuse directory fsync, and the rename
// itself already happened.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
