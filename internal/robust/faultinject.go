package robust

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/sim"
)

// Deterministic fault injection. An Injector decides, per (site, cell
// index, attempt), whether to inject a fault — a panic or a stall past
// the watchdog deadline — as a pure function of its seed, never of
// execution order or timing, so an injected run replays identically at
// any parallelism and a fault-differential test can compare against a
// clean run cell for cell. Randomized decisions draw from the sim RNG
// (the simulator's own xorshift64*, identical across Go versions);
// directed tests pin exact cells with the explicit Plan maps.

// FaultKind classifies an injected fault.
type FaultKind int

const (
	FaultNone FaultKind = iota
	// FaultPanic panics inside the cell (the recoverable failure class).
	FaultPanic
	// FaultStall sleeps past the watchdog deadline (the timeout class).
	FaultStall
)

func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultPanic:
		return "panic"
	case FaultStall:
		return "stall"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// Fault is one injection decision.
type Fault struct {
	Kind  FaultKind
	Stall time.Duration // for FaultStall
}

// Plan configures what an Injector injects.
type Plan struct {
	// PanicProb and StallProb are per-(site,index,attempt) probabilities,
	// decided by one seeded draw (panic wins ties).
	PanicProb float64
	StallProb float64
	// StallFor is the injected stall length for probabilistic stalls.
	StallFor time.Duration
	// MaxAttempt, when > 0, exempts attempts >= MaxAttempt from
	// probabilistic faults — "transient" faults that retries outlast.
	MaxAttempt int

	// PanicCells pins exact cells: index -> fail that many leading
	// attempts (a negative count means every attempt).
	PanicCells map[int]int
	// StallCells pins exact cells to stall for the given duration on
	// every attempt.
	StallCells map[int]time.Duration
}

// ErrStallInterrupted is the panic value an injected stall raises when
// its context is cancelled mid-sleep (watchdog deadline or shutdown):
// the abandoned attempt unwinds promptly instead of sleeping on, which
// is what keeps fault-injection tests free of lingering goroutines.
var ErrStallInterrupted = errors.New("robust: injected stall interrupted by cancellation")

// Injector injects deterministic faults. The nil *Injector is valid and
// injects nothing, so production paths call it unconditionally.
type Injector struct {
	seed       uint64
	plan       Plan
	panicBound float64
	bothBound  float64

	fires    atomic.Int64
	injected atomic.Int64
}

// NewInjector builds an injector for plan, seeded like the simulator's
// own RNGs.
func NewInjector(seed uint64, plan Plan) *Injector {
	return &Injector{
		seed:       seed,
		plan:       plan,
		panicBound: plan.PanicProb,
		bothBound:  plan.PanicProb + plan.StallProb,
	}
}

// Decide returns the fault for (site, index, attempt) without applying
// it — a pure, order-independent function of the injector's seed.
func (in *Injector) Decide(site string, index, attempt int) Fault {
	if in == nil {
		return Fault{}
	}
	if n, ok := in.plan.PanicCells[index]; ok && (n < 0 || attempt < n) {
		return Fault{Kind: FaultPanic}
	}
	if d, ok := in.plan.StallCells[index]; ok {
		return Fault{Kind: FaultStall, Stall: d}
	}
	if in.bothBound <= 0 {
		return Fault{}
	}
	if in.plan.MaxAttempt > 0 && attempt >= in.plan.MaxAttempt {
		return Fault{}
	}
	// One seeded draw per decision point. Mixing site/index/attempt
	// through SplitMix64-style avalanching (sim.RNG.Fork's recipe) keeps
	// distinct points statistically independent while remaining exactly
	// replayable.
	h := in.seed
	h = mix(h ^ fnv64(site))
	h = mix(h ^ uint64(index)*0x9E3779B97F4A7C15)
	h = mix(h ^ uint64(attempt)*0xBF58476D1CE4E5B9)
	f := sim.NewRNG(h).Float64()
	switch {
	case f < in.panicBound:
		return Fault{Kind: FaultPanic}
	case f < in.bothBound:
		return Fault{Kind: FaultStall, Stall: in.plan.StallFor}
	default:
		return Fault{}
	}
}

// Fire applies the decision for (site, index, attempt): it panics with a
// labeled message, sleeps the injected stall (panicking
// ErrStallInterrupted if ctx cancels first), or returns immediately. It
// also counts every call, which tests use to verify how many cell
// attempts a resumed sweep really ran.
func (in *Injector) Fire(ctx context.Context, site string, index, attempt int) {
	if in == nil {
		return
	}
	in.fires.Add(1)
	f := in.Decide(site, index, attempt)
	switch f.Kind {
	case FaultPanic:
		in.injected.Add(1)
		panic(fmt.Sprintf("robust: injected panic at %s[%d] attempt %d", site, index, attempt))
	case FaultStall:
		in.injected.Add(1)
		t := time.NewTimer(f.Stall)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			panic(ErrStallInterrupted)
		}
	}
}

// Fires returns how many times Fire has been called (one per cell
// attempt at an instrumented site).
func (in *Injector) Fires() int64 {
	if in == nil {
		return 0
	}
	return in.fires.Load()
}

// Injected returns how many faults have actually been applied.
func (in *Injector) Injected() int64 {
	if in == nil {
		return 0
	}
	return in.injected.Load()
}

// TruncateTail chops the last n bytes off the file at path — the
// journal-corruption fault: a torn final entry as a crash mid-append
// would leave it.
func TruncateTail(path string, n int64) error {
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	size := fi.Size() - n
	if size < 0 {
		size = 0
	}
	return os.Truncate(path, size)
}

// mix is the SplitMix64 finalizer — the same avalanche sim.RNG.Fork
// uses to separate derived streams.
func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// fnv64 is FNV-1a over s.
func fnv64(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}
