package robust

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// Decide must be a pure function of (seed, site, index, attempt):
// identical answers regardless of query order or concurrency.
func TestInjectorDecideIsOrderIndependent(t *testing.T) {
	plan := Plan{PanicProb: 0.2, StallProb: 0.2, StallFor: time.Millisecond}
	a := NewInjector(42, plan)
	b := NewInjector(42, plan)

	type point struct {
		site           string
		index, attempt int
	}
	var pts []point
	for _, site := range []string{"cell", "journal"} {
		for idx := 0; idx < 50; idx++ {
			for at := 0; at < 3; at++ {
				pts = append(pts, point{site, idx, at})
			}
		}
	}
	// Query a forward, b backward and concurrently.
	want := make([]Fault, len(pts))
	for i, p := range pts {
		want[i] = a.Decide(p.site, p.index, p.attempt)
	}
	got := make([]Fault, len(pts))
	var wg sync.WaitGroup
	for i := len(pts) - 1; i >= 0; i-- {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = b.Decide(pts[i].site, pts[i].index, pts[i].attempt)
		}(i)
	}
	wg.Wait()
	for i := range pts {
		if got[i] != want[i] {
			t.Fatalf("Decide(%+v) differs between query orders: %+v vs %+v", pts[i], want[i], got[i])
		}
	}
}

func TestInjectorSeedAndSiteChangeDecisions(t *testing.T) {
	plan := Plan{PanicProb: 0.5}
	a, b := NewInjector(1, plan), NewInjector(2, plan)
	diff := 0
	for idx := 0; idx < 200; idx++ {
		if a.Decide("cell", idx, 0) != b.Decide("cell", idx, 0) {
			diff++
		}
		if a.Decide("cell", idx, 0) != a.Decide("journal", idx, 0) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("seed and site have no effect on decisions")
	}
}

// Probabilistic rates must land near the plan's probabilities — the
// draw is uniform over distinct decision points.
func TestInjectorProbabilisticRates(t *testing.T) {
	in := NewInjector(7, Plan{PanicProb: 0.25, StallProb: 0.25, StallFor: time.Millisecond})
	const n = 4000
	var panics, stalls int
	for idx := 0; idx < n; idx++ {
		switch in.Decide("cell", idx, 0).Kind {
		case FaultPanic:
			panics++
		case FaultStall:
			stalls++
		}
	}
	for name, got := range map[string]int{"panic": panics, "stall": stalls} {
		frac := float64(got) / n
		if frac < 0.20 || frac > 0.30 {
			t.Errorf("%s rate %.3f, want ~0.25", name, frac)
		}
	}
}

func TestInjectorExplicitCells(t *testing.T) {
	in := NewInjector(0, Plan{
		PanicCells: map[int]int{3: 2, 9: -1},
		StallCells: map[int]time.Duration{5: 40 * time.Millisecond},
	})
	// Cell 3 fails its first two attempts, then succeeds (transient).
	for at, want := range []FaultKind{FaultPanic, FaultPanic, FaultNone, FaultNone} {
		if got := in.Decide("cell", 3, at).Kind; got != want {
			t.Errorf("cell 3 attempt %d: %v, want %v", at, got, want)
		}
	}
	// Cell 9 fails every attempt (hard fault).
	if in.Decide("cell", 9, 100).Kind != FaultPanic {
		t.Error("cell 9 attempt 100 should panic")
	}
	// Cell 5 stalls with the pinned duration.
	if f := in.Decide("cell", 5, 0); f.Kind != FaultStall || f.Stall != 40*time.Millisecond {
		t.Errorf("cell 5: %+v", f)
	}
	// Unpinned cells are clean (no probabilistic component in this plan).
	if in.Decide("cell", 0, 0).Kind != FaultNone {
		t.Error("unpinned cell faulted")
	}
}

// MaxAttempt models transient faults: retries at or past it are exempt
// from probabilistic injection, so a retry budget always wins.
func TestInjectorMaxAttemptExemptsRetries(t *testing.T) {
	in := NewInjector(11, Plan{PanicProb: 1.0, MaxAttempt: 2})
	if in.Decide("cell", 0, 0).Kind != FaultPanic || in.Decide("cell", 0, 1).Kind != FaultPanic {
		t.Fatal("attempts below MaxAttempt should fault at prob 1")
	}
	if in.Decide("cell", 0, 2).Kind != FaultNone {
		t.Fatal("attempt >= MaxAttempt should be exempt")
	}
	// Explicit pins ignore MaxAttempt — they state their own attempt count.
	pin := NewInjector(0, Plan{MaxAttempt: 1, PanicCells: map[int]int{0: -1}})
	if pin.Decide("cell", 0, 5).Kind != FaultPanic {
		t.Fatal("pinned cell must fault regardless of MaxAttempt")
	}
}

func TestInjectorFirePanicsWithLabel(t *testing.T) {
	in := NewInjector(0, Plan{PanicCells: map[int]int{4: -1}})
	got := func() (msg string) {
		defer func() { msg = fmt.Sprint(recover()) }()
		in.Fire(context.Background(), "cell", 4, 1)
		return ""
	}()
	if !strings.Contains(got, "injected panic at cell[4] attempt 1") {
		t.Fatalf("panic message %q", got)
	}
	if in.Fires() != 1 || in.Injected() != 1 {
		t.Fatalf("Fires=%d Injected=%d, want 1/1", in.Fires(), in.Injected())
	}
	// A clean cell fires (counted) without injecting.
	in.Fire(context.Background(), "cell", 0, 0)
	if in.Fires() != 2 || in.Injected() != 1 {
		t.Fatalf("after clean fire: Fires=%d Injected=%d, want 2/1", in.Fires(), in.Injected())
	}
}

// A cancelled context must interrupt an injected stall promptly, via the
// ErrStallInterrupted panic — this is what prevents abandoned watchdog
// attempts from leaking goroutines.
func TestInjectorStallInterruptedByCancel(t *testing.T) {
	in := NewInjector(0, Plan{StallCells: map[int]time.Duration{0: time.Hour}})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan any, 1)
	go func() {
		defer func() { done <- recover() }()
		in.Fire(ctx, "cell", 0, 0)
		done <- nil
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case v := <-done:
		if v != ErrStallInterrupted {
			t.Fatalf("stall unwound with %v, want ErrStallInterrupted", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled stall did not unwind")
	}
}

func TestInjectorNilIsInert(t *testing.T) {
	var in *Injector
	if f := in.Decide("cell", 0, 0); f.Kind != FaultNone {
		t.Fatal("nil injector decided a fault")
	}
	in.Fire(context.Background(), "cell", 0, 0) // must not panic
	if in.Fires() != 0 || in.Injected() != 0 {
		t.Fatal("nil injector counted")
	}
}
