package robust

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Journal is a crash-safe append-only log of completed work items, one
// JSON line per entry: {"key":"<content hash>","record":{...}}. Every
// Append is fsync'd before it returns, so an entry that Append accepted
// survives SIGKILL and power loss. A crash mid-Append leaves at most one
// torn final line, which Open detects and truncates away — the journal
// is always a valid prefix of what was written.
//
// Keys are content hashes (Key) of everything the record depends on, so
// a resumed sweep matches entries only when spec, mode, and code version
// all agree; stale entries from an older spec simply never match.
type Journal struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	entries map[string]json.RawMessage
	dropped int
}

// journalLine is the wire form of one entry.
type journalLine struct {
	Key    string          `json:"key"`
	Record json.RawMessage `json:"record"`
}

// scanJournal loads entries from raw journal bytes as a prefix log:
// entries parse up to the first line that is torn (no trailing newline)
// or fails to unmarshal, and good reports where that valid prefix ends.
func scanJournal(data []byte, entries map[string]json.RawMessage) (good int) {
	for good < len(data) {
		nl := bytes.IndexByte(data[good:], '\n')
		if nl < 0 {
			break // torn tail: the final line never got its newline
		}
		line := data[good : good+nl]
		var e journalLine
		if err := json.Unmarshal(line, &e); err != nil || e.Key == "" || len(e.Record) == 0 {
			break // corrupt line ends the usable prefix
		}
		entries[e.Key] = e.Record
		good += nl + 1
	}
	return good
}

// LoadJournalEntries reads a journal file without opening it for
// appending: the valid-prefix entries plus how many trailing bytes a
// torn or corrupt tail would discard. A missing file is an empty
// journal, matching OpenJournal.
func LoadJournalEntries(path string) (entries map[string]json.RawMessage, dropped int, err error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, 0, fmt.Errorf("journal %s: %w", path, err)
	}
	entries = make(map[string]json.RawMessage)
	good := scanJournal(data, entries)
	return entries, len(data) - good, nil
}

// MergeJournalEntries unions the entries of several journal files —
// the per-shard journals of a distributed sweep. Each file is loaded
// with the same valid-prefix semantics as OpenJournal, so one shard's
// torn tail costs only that shard's final entry, never the others.
// Keys are content hashes of everything a record depends on, so
// overlapping entries (a cell completed by two shards) are identical
// by construction and the union is order-independent; later files win
// ties, which cannot change any byte. dropped totals the torn-tail
// bytes discarded across all files.
func MergeJournalEntries(paths ...string) (entries map[string]json.RawMessage, dropped int, err error) {
	entries = make(map[string]json.RawMessage)
	for _, path := range paths {
		e, d, err := LoadJournalEntries(path)
		if err != nil {
			return nil, dropped, err
		}
		dropped += d
		for k, v := range e {
			entries[k] = v
		}
	}
	return entries, dropped, nil
}

// OpenJournal opens (creating if needed) the journal at path for
// appending. Existing content is scanned as a prefix log: entries are
// loaded up to the first line that is torn (no trailing newline) or
// fails to parse, and the file is truncated back to the end of that
// valid prefix so subsequent appends always start on a clean line
// boundary. DroppedBytes reports how much a repair discarded.
func OpenJournal(path string) (*Journal, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("journal %s: %w", path, err)
	}
	entries := make(map[string]json.RawMessage)
	good := scanJournal(data, entries)

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal %s: %w", path, err)
	}
	if good < len(data) {
		if err := f.Truncate(int64(good)); err != nil {
			f.Close()
			return nil, fmt.Errorf("journal %s: repair: %w", path, err)
		}
	}
	if _, err := f.Seek(int64(good), 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal %s: %w", path, err)
	}
	return &Journal{f: f, path: path, entries: entries, dropped: len(data) - good}, nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Len returns the number of loaded + appended entries.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.entries)
}

// DroppedBytes reports how many trailing bytes Open's torn-tail repair
// discarded (0 for a clean journal).
func (j *Journal) DroppedBytes() int { return j.dropped }

// Entries returns a copy of the journal's key → record map (the valid
// prefix loaded at Open plus anything appended since).
func (j *Journal) Entries() map[string]json.RawMessage {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make(map[string]json.RawMessage, len(j.entries))
	for k, v := range j.entries {
		out[k] = v
	}
	return out
}

// Append marshals record and appends one fsync'd entry line. It is safe
// for concurrent use — worker goroutines append completed cells in
// completion order; resume never depends on entry order, only on keys.
func (j *Journal) Append(key string, record any) error {
	if key == "" {
		return fmt.Errorf("journal %s: empty key", j.path)
	}
	raw, err := json.Marshal(record)
	if err != nil {
		return fmt.Errorf("journal %s: marshal: %w", j.path, err)
	}
	line, err := json.Marshal(journalLine{Key: key, Record: raw})
	if err != nil {
		return fmt.Errorf("journal %s: marshal: %w", j.path, err)
	}
	line = append(line, '\n')

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("journal %s: closed", j.path)
	}
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("journal %s: append: %w", j.path, err)
	}
	// The fsync is the crash-safety contract: once Append returns, the
	// entry survives SIGKILL. Per-entry fsync is cheap next to the
	// seconds-to-minutes a sweep cell costs.
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal %s: sync: %w", j.path, err)
	}
	j.entries[key] = raw
	return nil
}

// Clear discards every entry and truncates the file — a fresh sweep
// over a journal path that exists (running without -resume must not
// resurrect a previous sweep's cells).
func (j *Journal) Clear() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("journal %s: closed", j.path)
	}
	if err := j.f.Truncate(0); err != nil {
		return fmt.Errorf("journal %s: clear: %w", j.path, err)
	}
	if _, err := j.f.Seek(0, 0); err != nil {
		return fmt.Errorf("journal %s: clear: %w", j.path, err)
	}
	j.entries = make(map[string]json.RawMessage)
	j.dropped = 0
	return nil
}

// Close closes the underlying file. Append after Close errors.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
