package robust

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/sim"
)

// Property suite for per-shard journal merging (the distributed
// runner's reassembly substrate, DESIGN.md §13): however a sweep's
// entries are split across shard journals — including overlapping
// entries completed by two shards and a torn tail on any shard — the
// merged entry set equals what a single journal holding the same
// entries reloads to.

// writeJournal writes entries (in the given key order) as journal
// lines via the real Append path, returning the file path.
func writeJournal(t *testing.T, dir, name string, keys []string, recs map[string]string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for _, k := range keys {
		if err := j.Append(k, recs[k]); err != nil {
			t.Fatal(err)
		}
	}
	return path
}

func TestMergeJournalsPropertyShuffledShards(t *testing.T) {
	// Deterministic pseudo-random splits/shuffles via the repo's RNG.
	rng := sim.NewRNG(0xD157)

	for trial := 0; trial < 40; trial++ {
		dir := t.TempDir()
		n := 1 + int(rng.Uint64n(25))
		keys := make([]string, n)
		recs := make(map[string]string, n)
		for i := range keys {
			keys[i] = Key("merge-test", fmt.Sprint(trial), fmt.Sprint(i))
			recs[keys[i]] = fmt.Sprintf("record-%d-%d", trial, i)
		}

		// The reference: one journal holding every entry.
		single := writeJournal(t, dir, "single.jl", keys, recs)
		want, dropped, err := LoadJournalEntries(single)
		if err != nil || dropped != 0 || len(want) != n {
			t.Fatalf("trial %d: single journal load: n=%d dropped=%d err=%v", trial, len(want), dropped, err)
		}

		// Shuffle and split into 1..5 shards; duplicate a random prefix of
		// another shard's keys into each (overlapping completions: the
		// lease-reassignment race where two workers finish the same cell).
		order := make([]string, n)
		copy(order, keys)
		for i := n - 1; i > 0; i-- {
			j := int(rng.Uint64n(uint64(i + 1)))
			order[i], order[j] = order[j], order[i]
		}
		shards := 1 + int(rng.Uint64n(5))
		shardKeys := make([][]string, shards)
		for i, k := range order {
			s := i % shards
			shardKeys[s] = append(shardKeys[s], k)
		}
		for s := range shardKeys {
			other := shardKeys[int(rng.Uint64n(uint64(shards)))]
			if len(other) > 0 {
				dup := int(rng.Uint64n(uint64(len(other)))) + 1
				shardKeys[s] = append(shardKeys[s], other[:dup]...)
			}
		}

		var paths []string
		for s := range shardKeys {
			paths = append(paths, writeJournal(t, dir, fmt.Sprintf("shard-%d.jl", s), shardKeys[s], recs))
		}

		got, dropped, err := MergeJournalEntries(paths...)
		if err != nil {
			t.Fatalf("trial %d: merge: %v", trial, err)
		}
		if dropped != 0 {
			t.Fatalf("trial %d: clean shards reported %d dropped bytes", trial, dropped)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: merged %d shards -> %d entries, want %d (shuffled shard split changed the record set)",
				trial, shards, len(got), len(want))
		}
	}
}

// A torn tail on one shard costs exactly that shard's final entry —
// the other shards' entries all survive the merge, and re-merging
// after the shard is repaired (reopened and re-appended) converges to
// the full set.
func TestMergeJournalsTornTail(t *testing.T) {
	dir := t.TempDir()
	keys := make([]string, 6)
	recs := make(map[string]string, 6)
	for i := range keys {
		keys[i] = Key("torn-merge", fmt.Sprint(i))
		recs[keys[i]] = fmt.Sprintf("r%d", i)
	}
	a := writeJournal(t, dir, "a.jl", keys[:3], recs)
	b := writeJournal(t, dir, "b.jl", keys[3:], recs)

	// Tear b's final line mid-write (crash during Append's write call).
	if err := TruncateTail(b, 4); err != nil {
		t.Fatal(err)
	}
	got, dropped, err := MergeJournalEntries(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if dropped == 0 {
		t.Fatal("torn tail not reported in dropped bytes")
	}
	if len(got) != 5 {
		t.Fatalf("merged %d entries, want 5 (only the torn shard's final entry may drop)", len(got))
	}
	for _, k := range keys[:5] {
		if string(got[k]) == "" {
			t.Fatalf("entry %s lost by an unrelated shard's torn tail", k)
		}
	}

	// Repair: reopening the torn shard truncates the tail; re-appending
	// the lost entry restores the full set.
	j, err := OpenJournal(b)
	if err != nil {
		t.Fatal(err)
	}
	if j.DroppedBytes() == 0 {
		t.Fatal("reopen did not repair the torn tail")
	}
	if err := j.Append(keys[5], recs[keys[5]]); err != nil {
		t.Fatal(err)
	}
	j.Close()
	got, _, err = MergeJournalEntries(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 {
		t.Fatalf("post-repair merge has %d entries, want 6", len(got))
	}
}

// Physical concatenation (cat shard-*.jl > merged.jl) is the manual
// recovery path README documents: with clean shards it must reload to
// the same set in any concatenation order, and OpenJournal on the
// concatenation agrees with MergeJournalEntries on the parts.
func TestMergeJournalsConcatenation(t *testing.T) {
	dir := t.TempDir()
	keys := make([]string, 8)
	recs := make(map[string]string, 8)
	for i := range keys {
		keys[i] = Key("cat-merge", fmt.Sprint(i))
		recs[keys[i]] = fmt.Sprintf("r%d", i)
	}
	a := writeJournal(t, dir, "a.jl", keys[:4], recs)
	b := writeJournal(t, dir, "b.jl", keys[4:], recs)
	want, _, err := MergeJournalEntries(a, b)
	if err != nil {
		t.Fatal(err)
	}

	for _, order := range [][]string{{a, b}, {b, a}} {
		var buf bytes.Buffer
		for _, p := range order {
			data, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			buf.Write(data)
		}
		cat := filepath.Join(dir, "cat.jl")
		if err := os.WriteFile(cat, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		j, err := OpenJournal(cat)
		if err != nil {
			t.Fatal(err)
		}
		got := j.Entries()
		j.Close()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("concatenation order %v reloads %d entries, want %d", order, len(got), len(want))
		}
	}
}

// json.RawMessage equality sanity: merged entries are the exact bytes
// the shard journals recorded (no re-marshal drift).
func TestMergeJournalsPreservesRecordBytes(t *testing.T) {
	dir := t.TempDir()
	k := Key("bytes-merge")
	p := writeJournal(t, dir, "a.jl", []string{k}, map[string]string{k: "payload"})
	got, _, err := MergeJournalEntries(p)
	if err != nil {
		t.Fatal(err)
	}
	var s string
	if err := json.Unmarshal(got[k], &s); err != nil || s != "payload" {
		t.Fatalf("record bytes drifted: %q %v", got[k], err)
	}
}
