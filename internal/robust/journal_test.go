package robust

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

type testRecord struct {
	N int    `json:"n"`
	S string `json:"s"`
}

func openTestJournal(t *testing.T, path string) *Journal {
	t.Helper()
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j
}

func TestJournalAppendAndReload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jl")
	j := openTestJournal(t, path)
	for i := 0; i < 5; i++ {
		if err := j.Append(Key("k", string(rune('a'+i))), testRecord{N: i, S: "x"}); err != nil {
			t.Fatal(err)
		}
	}
	if j.Len() != 5 {
		t.Fatalf("Len = %d, want 5", j.Len())
	}
	j.Close()

	r := openTestJournal(t, path)
	if r.Len() != 5 || r.DroppedBytes() != 0 {
		t.Fatalf("reload: Len=%d dropped=%d, want 5/0", r.Len(), r.DroppedBytes())
	}
	var rec testRecord
	if err := json.Unmarshal(r.Entries()[Key("k", "c")], &rec); err != nil || rec.N != 2 {
		t.Fatalf("entry c = %+v err=%v, want n=2", rec, err)
	}
}

// The crash-safety contract: a torn final line (crash mid-append) is
// detected, dropped, and truncated away, and the journal keeps working.
func TestJournalTornTailRepaired(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jl")
	j := openTestJournal(t, path)
	for i := 0; i < 3; i++ {
		if err := j.Append(Key(string(rune('a'+i))), testRecord{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	intact, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Chop the tail mid-line, as a crash between write and newline would.
	if err := TruncateTail(path, 7); err != nil {
		t.Fatal(err)
	}
	r := openTestJournal(t, path)
	if r.Len() != 2 {
		t.Fatalf("after torn tail: Len = %d, want 2", r.Len())
	}
	if r.DroppedBytes() == 0 {
		t.Fatal("repair did not report dropped bytes")
	}
	// The file itself must be repaired so the next append starts a clean
	// line.
	if err := r.Append(Key("c"), testRecord{N: 2}); err != nil {
		t.Fatal(err)
	}
	r.Close()
	repaired, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(repaired) != string(intact) {
		t.Fatalf("repair + reappend diverged from the intact journal:\nwant %q\ngot  %q", intact, repaired)
	}
}

// A corrupt line ends the usable prefix: later (even well-formed) lines
// are dropped rather than merged across a corruption.
func TestJournalCorruptLineEndsPrefix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jl")
	good1 := `{"key":"aaa","record":{"n":1}}` + "\n"
	bad := `{"key":` + "\n"
	good2 := `{"key":"bbb","record":{"n":2}}` + "\n"
	if err := os.WriteFile(path, []byte(good1+bad+good2), 0o644); err != nil {
		t.Fatal(err)
	}
	j := openTestJournal(t, path)
	if j.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (prefix before the corrupt line)", j.Len())
	}
	if j.DroppedBytes() != len(bad)+len(good2) {
		t.Fatalf("dropped %d bytes, want %d", j.DroppedBytes(), len(bad)+len(good2))
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != int64(len(good1)) {
		t.Fatalf("file not truncated to the valid prefix: %d bytes, want %d", fi.Size(), len(good1))
	}
}

func TestJournalClear(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jl")
	j := openTestJournal(t, path)
	if err := j.Append(Key("a"), testRecord{N: 1}); err != nil {
		t.Fatal(err)
	}
	if err := j.Clear(); err != nil {
		t.Fatal(err)
	}
	if j.Len() != 0 {
		t.Fatalf("Len after Clear = %d", j.Len())
	}
	if err := j.Append(Key("b"), testRecord{N: 2}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	r := openTestJournal(t, path)
	if r.Len() != 1 {
		t.Fatalf("reload after Clear: Len = %d, want 1", r.Len())
	}
	if _, ok := r.Entries()[Key("a")]; ok {
		t.Fatal("cleared entry survived")
	}
}

// Concurrent appends (worker goroutines journal in completion order)
// must neither interleave bytes nor lose entries.
func TestJournalConcurrentAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jl")
	j := openTestJournal(t, path)
	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := j.Append(Key("k", string(rune(i))), testRecord{N: i, S: strings.Repeat("x", i)}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	j.Close()
	r := openTestJournal(t, path)
	if r.Len() != n || r.DroppedBytes() != 0 {
		t.Fatalf("Len=%d dropped=%d, want %d/0", r.Len(), r.DroppedBytes(), n)
	}
}

func TestJournalAppendAfterCloseErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jl")
	j := openTestJournal(t, path)
	j.Close()
	if err := j.Append(Key("a"), testRecord{}); err == nil {
		t.Fatal("Append after Close succeeded")
	}
}
