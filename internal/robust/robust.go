// Package robust is the fault-tolerance layer for long-running sweeps:
// failure policies and deterministic retry backoff, a crash-safe
// append-only journal with torn-tail repair, atomic file replacement,
// deterministic panic-stack digests, and a seeded fault-injection
// harness for exercising all of it in tests and CI.
//
// The package deliberately knows nothing about simulations or grids —
// internal/experiments composes these primitives into its fault-tolerant
// cell executor, and the planned distributed sweep runner (ROADMAP) will
// speak the same journal/retry/deadline protocol per shard.
//
// Determinism contract: every decision this package makes (backoff
// delays, injected faults, journal keys, stack digests) is a pure
// function of its declared inputs — never of wall-clock time, goroutine
// identity, or execution order — so a retried or resumed sweep emits
// exactly the numbers an uninterrupted one would.
package robust

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"strings"
	"time"
)

// FailPolicy selects what a sweep does when a cell permanently fails
// (its retries are exhausted).
type FailPolicy int

const (
	// FailFast aborts the whole sweep on the first permanently failed
	// cell — the historical behavior.
	FailFast FailPolicy = iota
	// SkipFailed records a structured error for the failed cell and
	// continues with the rest of the sweep.
	SkipFailed
)

func (p FailPolicy) String() string {
	switch p {
	case FailFast:
		return "fail"
	case SkipFailed:
		return "skip"
	default:
		return fmt.Sprintf("FailPolicy(%d)", int(p))
	}
}

// ParseFailPolicy parses the CLI spelling of a policy ("fail" or
// "skip", case-insensitive).
func ParseFailPolicy(s string) (FailPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "fail":
		return FailFast, nil
	case "skip":
		return SkipFailed, nil
	default:
		return FailFast, fmt.Errorf("unknown failure policy %q (want fail or skip)", s)
	}
}

// Backoff is a deterministic capped exponential backoff: retry r waits
// Base<<r, capped at Cap. No jitter — two runs of the same sweep retry
// on the same schedule, which keeps fault-injected differential tests
// reproducible. The zero value waits nothing.
type Backoff struct {
	Base time.Duration
	// Cap bounds the exponential growth; <= 0 means no cap.
	Cap time.Duration
}

// Delay returns the wait before re-attempt r (r = 0 is the first
// retry).
func (b Backoff) Delay(retry int) time.Duration {
	if b.Base <= 0 {
		return 0
	}
	if retry > 30 { // Base<<31 overflows any sane Base; the cap rules anyway
		retry = 30
	}
	d := b.Base << uint(retry)
	if d <= 0 || (b.Cap > 0 && d > b.Cap) {
		if b.Cap > 0 {
			return b.Cap
		}
		return b.Base
	}
	return d
}

// Sleep waits Delay(retry) or until ctx is cancelled, returning the
// context's error in the latter case.
func (b Backoff) Sleep(ctx context.Context, retry int) error {
	d := b.Delay(retry)
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Key derives a stable content-hash key from its parts: SHA-256 over
// the length-prefixed parts (so ("ab","c") and ("a","bc") cannot
// collide), hex-encoded and truncated to 32 characters (128 bits).
// Journal entries are keyed this way: the parts encode everything the
// recorded result depends on — cell identity, sweep mode, and a
// code-version salt bumped whenever simulation semantics change.
func Key(parts ...string) string {
	h := sha256.New()
	var n [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))[:32]
}
