package robust

import (
	"context"
	"os"
	"path/filepath"
	"runtime/debug"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestFailPolicyRoundTrip(t *testing.T) {
	for _, p := range []FailPolicy{FailFast, SkipFailed} {
		got, err := ParseFailPolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParseFailPolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParseFailPolicy("explode"); err == nil {
		t.Fatal("ParseFailPolicy accepted nonsense")
	}
}

func TestBackoffDelaySequence(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Cap: time.Second}
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, time.Second, time.Second,
	}
	for r, w := range want {
		if got := b.Delay(r); got != w {
			t.Errorf("Delay(%d) = %v, want %v", r, got, w)
		}
	}
	// Determinism: same retry, same delay — always.
	if b.Delay(3) != b.Delay(3) {
		t.Fatal("Delay is not deterministic")
	}
	// The zero value waits nothing; huge retry counts neither overflow
	// nor underflow.
	if (Backoff{}).Delay(5) != 0 {
		t.Fatal("zero Backoff delays")
	}
	if got := b.Delay(200); got != time.Second {
		t.Fatalf("Delay(200) = %v, want cap", got)
	}
	if got := (Backoff{Base: time.Hour}).Delay(63); got <= 0 {
		t.Fatalf("uncapped overflow: Delay = %v", got)
	}
}

func TestBackoffSleepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b := Backoff{Base: time.Hour}
	start := time.Now()
	if err := b.Sleep(ctx, 0); err == nil {
		t.Fatal("Sleep ignored cancellation")
	}
	if time.Since(start) > time.Second {
		t.Fatal("cancelled Sleep blocked")
	}
}

func TestKeyIsStableAndInjective(t *testing.T) {
	a := Key("salt", "sys", "wl")
	if a != Key("salt", "sys", "wl") {
		t.Fatal("Key is not deterministic")
	}
	// Length prefixing: concatenation ambiguity must not collide.
	if Key("ab", "c") == Key("a", "bc") {
		t.Fatal(`Key("ab","c") == Key("a","bc")`)
	}
	if len(a) != 32 {
		t.Fatalf("key length %d, want 32", len(a))
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFileAtomic(path, []byte("v1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("v2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "v2\n" {
		t.Fatalf("content %q err %v", data, err)
	}
	// No temp litter.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("directory has %d entries, want just the target", len(ents))
	}
}

func TestCommitFile(t *testing.T) {
	dir := t.TempDir()
	tmp := filepath.Join(dir, "out.tmp")
	path := filepath.Join(dir, "out.jsonl")
	if err := os.WriteFile(tmp, []byte("done\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := CommitFile(tmp, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "done\n" {
		t.Fatalf("content %q err %v", data, err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("temp file survived the commit")
	}
}

// digestFrom recovers a panic raised by f and digests its stack,
// stopping at this helper.
func digestFrom(f func()) (digest string) {
	defer func() {
		if recover() != nil {
			digest = Digest(debug.Stack(), "digestFrom")
		}
	}()
	f()
	return ""
}

func panicSiteA() { panic("boom A") }
func panicSiteB() { panic("boom B") }
func viaHelper()  { panicSiteA() }

// The digest must identify the panic site's call chain — identical for
// the same chain even from different goroutines, different for
// different chains.
func TestDigestDeterministicAcrossGoroutines(t *testing.T) {
	d1 := digestFrom(panicSiteA)
	var d2 string
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		d2 = digestFrom(panicSiteA)
	}()
	wg.Wait()
	if d1 == "" || d1 != d2 {
		t.Fatalf("same chain, different digests: %q vs %q", d1, d2)
	}
	if db := digestFrom(panicSiteB); db == d1 {
		t.Fatal("different sites share a digest")
	}
	if dh := digestFrom(viaHelper); dh == d1 {
		t.Fatal("different chains to the same site share a digest")
	}
	if len(d1) != 16 || strings.Trim(d1, "0123456789abcdef") != "" {
		t.Fatalf("digest is not 16 hex digits: %q", d1)
	}
}
