package robust

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"strings"
)

// Digest fingerprints a panicking call chain from a runtime/debug.Stack
// dump: a 16-hex-digit hash of the function names between the panic
// site and the recovery frame. Two failures with the same digest broke
// in the same place — the triage key for structured error records in a
// sweep's JSON-lines output.
//
// Determinism: raw stack dumps differ across goroutines (goroutine
// header), runs (argument pointer values) and call contexts (frames
// below the recovery point — a worker-pool chain at parallelism 8 looks
// nothing like the sequential chain). Digest strips all three: it drops
// the header, file:line/offset lines, and argument lists, skips
// everything up to and including runtime.gopanic (the deferred-recovery
// side of the dump), and stops at the first frame whose function name
// contains stop (the recovery function). What remains — the panic
// site's own call chain — is identical at any parallelism, so error
// records survive the grid's byte-identical golden determinism test.
func Digest(stack []byte, stop string) string {
	h := fnv.New64a()
	lines := bytes.Split(stack, []byte("\n"))
	past := false // past runtime.gopanic, into the panicking chain
	for _, ln := range lines {
		if len(ln) == 0 || ln[0] == '\t' || ln[0] == ' ' {
			continue // file:line/offset lines and the header's continuation
		}
		s := string(ln)
		if strings.HasPrefix(s, "goroutine ") {
			continue
		}
		// A frame line is "pkg.Func(args...)" or "created by ..."; the
		// function name is everything before the final '('.
		name := s
		if i := strings.LastIndexByte(s, '('); i >= 0 {
			name = s[:i]
		}
		if !past {
			if name == "runtime.gopanic" || name == "panic" {
				past = true
			}
			continue
		}
		if stop != "" && strings.Contains(name, stop) {
			break
		}
		h.Write([]byte(name))
		h.Write([]byte{'\n'})
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
