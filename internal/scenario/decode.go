package scenario

// Spec-file decoding. Scenario files are YAML-ish or JSON; the repo
// takes no dependencies, so instead of a YAML library this file
// implements the small subset the scenario grammar needs — block
// mappings and sequences by indentation, single-line flow lists/maps,
// quoted scalars, comments — plus JSON (sniffed by a leading '{' and
// handed to encoding/json). Both decoders produce the same generic
// tree: map[string]any, []any, and raw-string scalars; the typed
// extraction layer in scenario.go converts and validates with
// path-named errors.
//
// The decoder is a parser-hardening surface (it eats untrusted files
// and is fuzzed): every malformed input must return an error naming
// the line, never panic, and inputs are bounded in size, line count
// and nesting depth.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

const (
	// maxSpecBytes bounds a scenario file.
	maxSpecBytes = 1 << 20
	// maxSpecLines bounds the YAML line count.
	maxSpecLines = 20000
	// maxSpecDepth bounds nesting (block + flow) in both decoders.
	maxSpecDepth = 32
)

// decodeTree parses a scenario document into the generic tree. A
// document whose first non-space byte is '{' is JSON; anything else is
// the YAML subset.
func decodeTree(data []byte) (any, error) {
	if len(data) > maxSpecBytes {
		return nil, fmt.Errorf("scenario: spec file is %d bytes, over the %d limit", len(data), maxSpecBytes)
	}
	if t := bytes.TrimLeft(data, " \t\r\n"); len(t) > 0 && t[0] == '{' {
		return decodeJSON(data)
	}
	return decodeYAML(string(data))
}

// decodeJSON parses a JSON document and converts scalars to the raw
// strings the extraction layer expects.
func decodeJSON(data []byte) (any, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return nil, fmt.Errorf("scenario: json: %v", err)
	}
	var trailing any
	if err := dec.Decode(&trailing); !errors.Is(err, io.EOF) {
		return nil, fmt.Errorf("scenario: json: trailing content after the document")
	}
	return fromJSON(v, 0)
}

func fromJSON(v any, depth int) (any, error) {
	if depth > maxSpecDepth {
		return nil, fmt.Errorf("scenario: json nested deeper than %d", maxSpecDepth)
	}
	switch t := v.(type) {
	case map[string]any:
		m := make(map[string]any, len(t))
		for k, e := range t {
			c, err := fromJSON(e, depth+1)
			if err != nil {
				return nil, err
			}
			m[k] = c
		}
		return m, nil
	case []any:
		out := make([]any, len(t))
		for i, e := range t {
			c, err := fromJSON(e, depth+1)
			if err != nil {
				return nil, err
			}
			out[i] = c
		}
		return out, nil
	case string:
		return t, nil
	case json.Number:
		return t.String(), nil
	case bool:
		return strconv.FormatBool(t), nil
	case nil:
		return "", nil
	default:
		return nil, fmt.Errorf("scenario: json value %T unsupported", v)
	}
}

// yline is one non-blank, comment-stripped source line.
type yline struct {
	indent int
	text   string
	no     int // 1-based source line
}

type yamlParser struct {
	lines []yline
	pos   int
}

// decodeYAML parses the YAML subset.
func decodeYAML(src string) (any, error) {
	p := &yamlParser{}
	for i, raw := range strings.Split(src, "\n") {
		no := i + 1
		line := strings.TrimRight(raw, "\r")
		indent := 0
		for indent < len(line) && line[indent] == ' ' {
			indent++
		}
		if indent < len(line) && line[indent] == '\t' {
			return nil, fmt.Errorf("scenario: line %d: tab in indentation (use spaces)", no)
		}
		txt := strings.TrimRight(stripComment(line[indent:]), " \t")
		if txt == "" {
			continue
		}
		if len(p.lines) >= maxSpecLines {
			return nil, fmt.Errorf("scenario: more than %d lines", maxSpecLines)
		}
		p.lines = append(p.lines, yline{indent, txt, no})
	}
	if len(p.lines) == 0 {
		return nil, fmt.Errorf("scenario: empty document")
	}
	v, err := p.node(p.lines[0].indent, 0)
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		l := p.lines[p.pos]
		return nil, fmt.Errorf("scenario: line %d: content %q outside the document structure", l.no, l.text)
	}
	return v, nil
}

// stripComment removes a trailing comment: a '#' outside quotes at the
// start of the text or preceded by whitespace.
func stripComment(s string) string {
	inS, inD := false, false
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case inS:
			if c == '\'' {
				inS = false
			}
		case inD:
			if c == '"' {
				inD = false
			}
		case c == '\'':
			inS = true
		case c == '"':
			inD = true
		case c == '#' && (i == 0 || s[i-1] == ' ' || s[i-1] == '\t'):
			return s[:i]
		}
	}
	return s
}

// node parses the block value starting at the current line, which sits
// at the given indent.
func (p *yamlParser) node(indent, depth int) (any, error) {
	if depth > maxSpecDepth {
		return nil, fmt.Errorf("scenario: line %d: nested deeper than %d", p.lines[p.pos].no, maxSpecDepth)
	}
	l := p.lines[p.pos]
	if l.text == "-" || strings.HasPrefix(l.text, "- ") {
		return p.seq(indent, depth)
	}
	return p.mapping(indent, depth)
}

// mapping parses `key: value` lines at exactly this indent.
func (p *yamlParser) mapping(indent, depth int) (any, error) {
	m := map[string]any{}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent < indent {
			break
		}
		if l.indent > indent {
			return nil, fmt.Errorf("scenario: line %d: unexpected indent", l.no)
		}
		if l.text == "-" || strings.HasPrefix(l.text, "- ") {
			return nil, fmt.Errorf("scenario: line %d: sequence item inside a mapping", l.no)
		}
		key, rest, err := splitKey(l.text, l.no)
		if err != nil {
			return nil, err
		}
		if _, dup := m[key]; dup {
			return nil, fmt.Errorf("scenario: line %d: duplicate key %q", l.no, key)
		}
		p.pos++
		if rest == "" {
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
				return nil, fmt.Errorf("scenario: line %d: key %q has no value", l.no, key)
			}
			v, err := p.node(p.lines[p.pos].indent, depth+1)
			if err != nil {
				return nil, err
			}
			m[key] = v
		} else {
			v, err := parseInline(rest, l.no, depth+1)
			if err != nil {
				return nil, err
			}
			m[key] = v
		}
	}
	return m, nil
}

// seq parses `- item` lines at exactly this indent. An item carrying
// `key: value` text opens a mapping whose keys align under the item's
// first key (the line is re-entered as a mapping line at that column).
func (p *yamlParser) seq(indent, depth int) (any, error) {
	out := []any{}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent != indent {
			if l.indent > indent {
				return nil, fmt.Errorf("scenario: line %d: unexpected indent", l.no)
			}
			break
		}
		if l.text != "-" && !strings.HasPrefix(l.text, "- ") {
			break
		}
		rest := strings.TrimLeft(l.text[1:], " ")
		switch {
		case rest == "":
			p.pos++
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
				return nil, fmt.Errorf("scenario: line %d: empty sequence item", l.no)
			}
			v, err := p.node(p.lines[p.pos].indent, depth+1)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		case isMapEntry(rest):
			p.lines[p.pos] = yline{indent + (len(l.text) - len(rest)), rest, l.no}
			v, err := p.mapping(indent+(len(l.text)-len(rest)), depth+1)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		default:
			p.pos++
			v, err := parseInline(rest, l.no, depth+1)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
	}
	return out, nil
}

// isMapEntry reports whether a sequence item's text is a `key: value`
// mapping entry rather than a scalar or flow value.
func isMapEntry(s string) bool {
	if strings.HasPrefix(s, "[") || strings.HasPrefix(s, "{") {
		return false
	}
	_, _, err := splitKey(s, 0)
	return err == nil
}

// splitKey splits `key: rest` at the first top-level ':' followed by a
// space or end of line.
func splitKey(text string, no int) (key, rest string, err error) {
	inS, inD := false, false
	depth := 0
	for i := 0; i < len(text); i++ {
		switch c := text[i]; {
		case inS:
			if c == '\'' {
				inS = false
			}
		case inD:
			if c == '"' {
				inD = false
			}
		case c == '\'':
			inS = true
		case c == '"':
			inD = true
		case c == '[' || c == '{':
			depth++
		case c == ']' || c == '}':
			depth--
		case c == ':' && depth == 0 && (i+1 == len(text) || text[i+1] == ' '):
			key, err := unquoteScalar(strings.TrimSpace(text[:i]), no)
			if err != nil {
				return "", "", err
			}
			if key == "" {
				return "", "", fmt.Errorf("scenario: line %d: empty key", no)
			}
			return key, strings.TrimSpace(text[i+1:]), nil
		}
	}
	return "", "", fmt.Errorf("scenario: line %d: %q is not `key: value`", no, text)
}

// parseInline parses a single-line value: a flow list, a flow map, or
// a scalar.
func parseInline(s string, no, depth int) (any, error) {
	if depth > maxSpecDepth {
		return nil, fmt.Errorf("scenario: line %d: nested deeper than %d", no, maxSpecDepth)
	}
	s = strings.TrimSpace(s)
	switch {
	case strings.HasPrefix(s, "["):
		items, err := splitFlow(s, no)
		if err != nil {
			return nil, err
		}
		out := []any{}
		for _, it := range items {
			v, err := parseInline(it, no, depth+1)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		return out, nil
	case strings.HasPrefix(s, "{"):
		items, err := splitFlow(s, no)
		if err != nil {
			return nil, err
		}
		m := map[string]any{}
		for _, it := range items {
			key, rest, err := splitKey(it, no)
			if err != nil {
				return nil, err
			}
			if _, dup := m[key]; dup {
				return nil, fmt.Errorf("scenario: line %d: duplicate key %q", no, key)
			}
			v, err := parseInline(rest, no, depth+1)
			if err != nil {
				return nil, err
			}
			m[key] = v
		}
		return m, nil
	default:
		return unquoteScalar(s, no)
	}
}

// splitFlow splits the contents of a `[...]` or `{...}` flow value at
// its top-level commas.
func splitFlow(s string, no int) ([]string, error) {
	open, close_ := s[0], byte(']')
	if open == '{' {
		close_ = '}'
	}
	inS, inD := false, false
	depth := 0
	start := 1
	var items []string
	push := func(end int) {
		if it := strings.TrimSpace(s[start:end]); it != "" {
			items = append(items, it)
		}
		start = end + 1
	}
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case inS:
			if c == '\'' {
				inS = false
			}
		case inD:
			if c == '"' {
				inD = false
			}
		case c == '\'':
			inS = true
		case c == '"':
			inD = true
		case c == '[' || c == '{':
			depth++
		case c == ']' || c == '}':
			depth--
			if depth == 0 {
				if c != close_ {
					return nil, fmt.Errorf("scenario: line %d: %q closed by %q", no, open, c)
				}
				if strings.TrimSpace(s[i+1:]) != "" {
					return nil, fmt.Errorf("scenario: line %d: content after %q", no, close_)
				}
				push(i)
				return items, nil
			}
		case c == ',' && depth == 1:
			push(i)
		}
	}
	return nil, fmt.Errorf("scenario: line %d: unterminated %q", no, open)
}

// unquoteScalar strips matching quotes from a scalar, or returns it
// raw.
func unquoteScalar(s string, no int) (string, error) {
	switch {
	case strings.HasPrefix(s, `"`):
		v, err := strconv.Unquote(s)
		if err != nil {
			return "", fmt.Errorf("scenario: line %d: bad quoted string %s", no, s)
		}
		return v, nil
	case strings.HasPrefix(s, "'"):
		if len(s) < 2 || !strings.HasSuffix(s, "'") {
			return "", fmt.Errorf("scenario: line %d: unterminated '", no)
		}
		return strings.ReplaceAll(s[1:len(s)-1], "''", "'"), nil
	default:
		return s, nil
	}
}
