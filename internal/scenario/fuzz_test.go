package scenario

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/workload"
)

// FuzzParse drives the whole decode + compile path with arbitrary
// bytes. The contract under fuzzing: Parse never panics, and whatever
// it accepts must compile (Sources) and generate without panicking
// either. Seeds come from every checked-in fixture, valid and bad, so
// the fuzzer starts inside the grammar.
func FuzzParse(f *testing.F) {
	for _, dir := range []string{"testdata/valid", "testdata/bad"} {
		paths, err := filepath.Glob(dir + "/*")
		if err != nil {
			f.Fatal(err)
		}
		for _, p := range paths {
			data, err := os.ReadFile(p)
			if err != nil {
				f.Fatal(err)
			}
			f.Add(data)
		}
	}
	f.Add([]byte(`{"name":"j","clients":[{"id":"a","cores":"rest","workload":"WebSearch"}]}`))
	f.Add([]byte("name: x\nclients:\n  - id: a\n    cores: [0, 1]\n    arrival: {process: gamma, mean_ops: 10, cv: 2}\n    workload: mcf\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data, testResolver, noTraces)
		if err != nil {
			return
		}
		if s.Digest() == "" {
			t.Fatal("accepted scenario with empty digest")
		}
		// Compilation may legitimately fail (core selections are checked
		// against a concrete system), but must never panic.
		if srcs, err := s.Sources(8, 16, 3); err == nil {
			var op workload.Op
			for _, src := range srcs {
				src.Next(&op)
			}
		}
	})
}
