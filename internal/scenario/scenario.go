// Package scenario compiles declarative workload/scenario spec files
// (DESIGN.md §14) into the per-core workload.Source list a simulated
// system consumes. A scenario names multiple clients sharing one
// machine — the consolidation setting the paper's private die-stacked
// hierarchy targets — each binding either a synthetic workload (a
// preset Spec, optionally phased through an arrival schedule that
// varies MemRatio and footprints over time windows) or a recorded
// address trace, placed on a set of cores and in a sharing group.
// Clients in one group genuinely share an address space (their
// RW-shared pools and remote-secondary slices interleave); distinct
// groups are isolated by the workload.GroupOffset address shift.
//
// Determinism: compilation is a pure function of the file bytes (plus
// referenced trace bytes), and every stochastic choice downstream —
// phase durations, stream draws — comes from seeded RNG forks, so the
// repo's bit-identity contracts extend to spec-driven runs. Digest()
// content-hashes the compiled scenario; checkpoint keys, sweep journal
// keys and distributed-shard cross-checks all incorporate it.
package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"sort"
	"strconv"
	"strings"

	"repro/internal/robust"
	"repro/internal/workload"
)

// Resolver maps a workload preset name to its Spec. The experiments
// package passes its catalog lookup; tests pass stubs. (The indirection
// keeps this package free of a dependency on the catalog's owner.)
type Resolver func(name string) (workload.Spec, error)

// TraceLoader reads the bytes of a trace referenced by a spec file.
// Load resolves references relative to the spec file's directory.
type TraceLoader func(ref string) ([]byte, error)

// maxClients bounds the client list; maxTraceBytes bounds one
// referenced trace file.
const (
	maxClients    = 64
	maxTraceBytes = 64 << 20
)

// digestSalt versions the scenario digest scheme. Bump on any change
// that alters what a compiled scenario means (it invalidates warm
// checkpoints and sweep journal entries for scenario cells).
const digestSalt = "scenario-v1"

// Scenario is a compiled spec file.
type Scenario struct {
	Name    string
	Clients []Client
	digest  string
}

// Client is one workload consumer in the scenario.
type Client struct {
	ID     string
	Cores  CoreSel
	Group  int
	Phases []workload.Phase // synthetic clients (nil for trace clients)
	Trace  *Trace           // replay clients (nil for synthetic clients)
}

// Trace is a loaded recorded-trace binding.
type Trace struct {
	Ref  string // the spec file's reference, for messages
	Name string // embedded workload name
	MLP  int
	Ops  []workload.Op
	sha  string // content hash of the raw trace bytes
}

// Digest returns the scenario's content hash: the salt, the name, and
// every client's identity — core selection, group, full phase specs
// and arrival processes, trace content hashes. Equal digests mean the
// compiled per-core sources are identical.
func (s *Scenario) Digest() string { return s.digest }

// CoreSel is a client's core binding, kept in its textual form (the
// digest covers it) plus the parsed selection.
type CoreSel struct {
	raw  string
	kind selKind
	n    int   // count / range lo
	hi   int   // range hi
	list []int // explicit list, sorted
}

type selKind uint8

const (
	selCount selKind = iota // "4": the next n unassigned cores
	selRange                // "2-5": inclusive core range
	selList                 // "[0, 2, 5]": explicit cores
	selRest                 // "rest": every core left over
)

func (c CoreSel) String() string { return c.raw }

// Load reads and compiles a scenario spec file, resolving trace
// references relative to the file's directory.
func Load(path string, resolve Resolver) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	dir := filepath.Dir(path)
	s, err := Parse(data, resolve, func(ref string) ([]byte, error) {
		if !filepath.IsAbs(ref) {
			ref = filepath.Join(dir, ref)
		}
		return os.ReadFile(ref)
	})
	if err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return s, nil
}

// Parse compiles a scenario document. Every malformed input returns an
// error naming the offending path or line; nothing panics on bad
// bytes (the decoder and this layer are fuzzed together).
func Parse(data []byte, resolve Resolver, traces TraceLoader) (*Scenario, error) {
	if resolve == nil {
		return nil, fmt.Errorf("scenario: nil workload resolver")
	}
	tree, err := decodeTree(data)
	if err != nil {
		return nil, err
	}
	root := node{"scenario", tree}
	rm, err := root.mapping("name", "clients")
	if err != nil {
		return nil, err
	}
	s := &Scenario{}
	if s.Name, err = rm.str("name", true); err != nil {
		return nil, err
	}
	if len(s.Name) > 128 {
		return nil, fmt.Errorf("scenario: name %q over 128 bytes", s.Name[:32]+"…")
	}
	clients, err := rm.list("clients")
	if err != nil {
		return nil, err
	}
	if len(clients) == 0 {
		return nil, fmt.Errorf("scenario: clients list is empty")
	}
	if len(clients) > maxClients {
		return nil, fmt.Errorf("scenario: %d clients over the %d limit", len(clients), maxClients)
	}
	ids := map[string]bool{}
	groupsUsed := map[int]bool{}
	var defaulted []int // client indices needing an auto group
	for i, cn := range clients {
		cl, hasGroup, err := parseClient(cn, resolve, traces)
		if err != nil {
			return nil, err
		}
		if ids[cl.ID] {
			return nil, fmt.Errorf("scenario: duplicate client id %q", cl.ID)
		}
		ids[cl.ID] = true
		if hasGroup {
			groupsUsed[cl.Group] = true
		} else {
			defaulted = append(defaulted, i)
		}
		s.Clients = append(s.Clients, cl)
	}
	// Auto groups: clients without an explicit group each get their own
	// fresh group (no accidental sharing), drawn from the smallest ids
	// no explicit client claimed.
	next := 0
	for _, i := range defaulted {
		for next < workload.MaxGroups && groupsUsed[next] {
			next++
		}
		if next >= workload.MaxGroups {
			return nil, fmt.Errorf("scenario: client %q needs a sharing group but all %d are taken — set group: explicitly",
				s.Clients[i].ID, workload.MaxGroups)
		}
		s.Clients[i].Group = next
		groupsUsed[next] = true
	}
	s.digest = s.computeDigest()
	return s, nil
}

func (s *Scenario) computeDigest() string {
	parts := []string{digestSalt, s.Name}
	for i, cl := range s.Clients {
		parts = append(parts, fmt.Sprintf("client %d id=%s cores=%s group=%d", i, cl.ID, cl.Cores.raw, cl.Group))
		if cl.Trace != nil {
			parts = append(parts, fmt.Sprintf("trace name=%s mlp=%d ops=%d sha=%s",
				cl.Trace.Name, cl.Trace.MLP, len(cl.Trace.Ops), cl.Trace.sha))
		}
		for _, ph := range cl.Phases {
			parts = append(parts, fmt.Sprintf("%+v|%+v", ph.Spec, ph.Arrival))
		}
	}
	return robust.Key(parts...)
}

// clientKeys: the phase-tuning keys (workload, mem_ratio, ...) are
// legal at client level only for the single-phase shorthand.
var phaseTuneKeys = []string{"workload", "mem_ratio", "mem_ratio_scale", "footprint_scale", "arrival"}

func parseClient(n node, resolve Resolver, traces TraceLoader) (Client, bool, error) {
	keys := append([]string{"id", "cores", "group", "trace", "phases"}, phaseTuneKeys...)
	m, err := n.mapping(keys...)
	if err != nil {
		return Client{}, false, err
	}
	var cl Client
	if cl.ID, err = m.str("id", true); err != nil {
		return Client{}, false, err
	}
	cn, ok := m.get("cores")
	if !ok {
		return Client{}, false, fmt.Errorf("scenario: %s: missing key %q", n.path, "cores")
	}
	if cl.Cores, err = parseCoreSel(cn); err != nil {
		return Client{}, false, err
	}
	hasGroup := false
	if gn, ok := m.get("group"); ok {
		hasGroup = true
		g, err := gn.intval(0, workload.MaxGroups-1)
		if err != nil {
			return Client{}, false, err
		}
		cl.Group = g
	}

	_, hasTrace := m.get("trace")
	_, hasPhases := m.get("phases")
	_, hasWorkload := m.get("workload")
	bindings := 0
	for _, b := range []bool{hasTrace, hasPhases, hasWorkload} {
		if b {
			bindings++
		}
	}
	if bindings != 1 {
		return Client{}, false, fmt.Errorf("scenario: %s: a client binds exactly one of workload, phases or trace", n.path)
	}
	// Phase-tuning keys make sense only alongside the workload
	// shorthand; with phases: they belong inside each phase, and a
	// trace has no generator to tune.
	if !hasWorkload {
		for _, k := range phaseTuneKeys {
			if _, ok := m.get(k); ok && k != "workload" {
				return Client{}, false, fmt.Errorf("scenario: %s: key %q is only valid with the single-workload form (put it inside a phase)", n.path, k)
			}
		}
	}

	switch {
	case hasTrace:
		ref, err := m.str("trace", true)
		if err != nil {
			return Client{}, false, err
		}
		if traces == nil {
			return Client{}, false, fmt.Errorf("scenario: %s: trace %q referenced but no trace loader provided", n.path, ref)
		}
		raw, err := traces(ref)
		if err != nil {
			return Client{}, false, fmt.Errorf("scenario: %s: trace %q: %v", n.path, ref, err)
		}
		if len(raw) > maxTraceBytes {
			return Client{}, false, fmt.Errorf("scenario: %s: trace %q is %d bytes, over the %d limit", n.path, ref, len(raw), maxTraceBytes)
		}
		name, mlp, ops, err := workload.ReadTrace(strings.NewReader(string(raw)))
		if err != nil {
			return Client{}, false, fmt.Errorf("scenario: %s: trace %q: %v", n.path, ref, err)
		}
		sum := sha256.Sum256(raw)
		cl.Trace = &Trace{Ref: ref, Name: name, MLP: mlp, Ops: ops, sha: hex.EncodeToString(sum[:])}
	case hasPhases:
		pl, err := m.list("phases")
		if err != nil {
			return Client{}, false, err
		}
		if len(pl) == 0 {
			return Client{}, false, fmt.Errorf("scenario: %s.phases: empty phase list", n.path)
		}
		for _, pn := range pl {
			ph, err := parsePhase(pn, resolve, len(pl) > 1, false)
			if err != nil {
				return Client{}, false, err
			}
			cl.Phases = append(cl.Phases, ph)
		}
		// cpu.Core sizes its MLP window once at construction, so a
		// client's phases must agree on it.
		for _, ph := range cl.Phases[1:] {
			if ph.Spec.MLP != cl.Phases[0].Spec.MLP {
				return Client{}, false, fmt.Errorf("scenario: %s: phases mix MLP %d and %d — a client's MLP is fixed at construction",
					n.path, cl.Phases[0].Spec.MLP, ph.Spec.MLP)
			}
		}
	default: // single-workload shorthand: the client map doubles as its one phase
		ph, err := parsePhase(n, resolve, false, true)
		if err != nil {
			return Client{}, false, err
		}
		cl.Phases = []workload.Phase{ph}
	}
	return cl, hasGroup, nil
}

// parsePhase compiles one phase: a preset workload, optional tuning
// overrides, and the arrival process governing the phase's length in
// generated ops. requireArrival is set for multi-phase lists, where a
// missing duration is almost certainly a mistake; the single-phase
// shorthand defaults to one effectively infinite fixed phase.
// shorthand widens the allowed keys to the client map's (the client
// node doubles as its one phase there); a node inside phases: takes
// only the tuning keys.
func parsePhase(n node, resolve Resolver, requireArrival, shorthand bool) (workload.Phase, error) {
	allowed := phaseTuneKeys
	if shorthand {
		allowed = append([]string{"id", "cores", "group", "trace", "phases"}, phaseTuneKeys...)
	}
	m, err := n.mapping(allowed...)
	if err != nil {
		return workload.Phase{}, err
	}
	wl, err := m.str("workload", true)
	if err != nil {
		return workload.Phase{}, err
	}
	sp, err := resolve(wl)
	if err != nil {
		return workload.Phase{}, fmt.Errorf("scenario: %s: %v", n.path, err)
	}

	_, hasRatio := m.get("mem_ratio")
	_, hasRatioScale := m.get("mem_ratio_scale")
	if hasRatio && hasRatioScale {
		return workload.Phase{}, fmt.Errorf("scenario: %s: mem_ratio and mem_ratio_scale are mutually exclusive", n.path)
	}
	if hasRatio {
		v, err := m.float("mem_ratio")
		if err != nil {
			return workload.Phase{}, err
		}
		sp.MemRatio = v
	}
	if hasRatioScale {
		v, err := m.float("mem_ratio_scale")
		if err != nil {
			return workload.Phase{}, err
		}
		if !(v > 0) || v > 64 {
			return workload.Phase{}, fmt.Errorf("scenario: %s.mem_ratio_scale: %v outside (0, 64]", n.path, v)
		}
		sp.MemRatio *= v
	}
	if _, ok := m.get("footprint_scale"); ok {
		v, err := m.float("footprint_scale")
		if err != nil {
			return workload.Phase{}, err
		}
		if !(v > 0) || v > 4096 {
			return workload.Phase{}, fmt.Errorf("scenario: %s.footprint_scale: %v outside (0, 4096]", n.path, v)
		}
		// Scales the LLC-relevant data working sets — the knob the
		// paper's capacity-sensitivity axis turns.
		sp.SecondaryWSS = int64(float64(sp.SecondaryWSS) * v)
		sp.MiddleWSS = int64(float64(sp.MiddleWSS) * v)
	}
	if err := sp.Check(); err != nil {
		return workload.Phase{}, fmt.Errorf("scenario: %s: %v", n.path, err)
	}

	arr := workload.Arrival{Process: workload.ArrivalFixed, MeanOps: float64(uint64(1) << 60)}
	if an, ok := m.get("arrival"); ok {
		if arr, err = parseArrival(an); err != nil {
			return workload.Phase{}, err
		}
	} else if requireArrival {
		return workload.Phase{}, fmt.Errorf("scenario: %s: a multi-phase client needs arrival: on every phase", n.path)
	}
	return workload.Phase{Spec: sp, Arrival: arr}, nil
}

func parseArrival(n node) (workload.Arrival, error) {
	m, err := n.mapping("process", "mean_ops", "cv", "shape")
	if err != nil {
		return workload.Arrival{}, err
	}
	var a workload.Arrival
	if a.Process, err = m.str("process", false); err != nil {
		return workload.Arrival{}, err
	}
	if _, ok := m.get("mean_ops"); !ok {
		return workload.Arrival{}, fmt.Errorf("scenario: %s: missing key %q", n.path, "mean_ops")
	}
	if a.MeanOps, err = m.float("mean_ops"); err != nil {
		return workload.Arrival{}, err
	}
	if _, ok := m.get("cv"); ok {
		if a.CV, err = m.float("cv"); err != nil {
			return workload.Arrival{}, err
		}
	}
	if _, ok := m.get("shape"); ok {
		if a.Shape, err = m.float("shape"); err != nil {
			return workload.Arrival{}, err
		}
	}
	if err := a.Check(); err != nil {
		return workload.Arrival{}, fmt.Errorf("scenario: %s: %v", n.path, err)
	}
	return a, nil
}

func parseCoreSel(n node) (CoreSel, error) {
	if l, ok := n.v.([]any); ok {
		list := make([]int, 0, len(l))
		for i, e := range l {
			v, err := node{fmt.Sprintf("%s[%d]", n.path, i), e}.intval(0, 1<<20)
			if err != nil {
				return CoreSel{}, err
			}
			list = append(list, v)
		}
		if len(list) == 0 {
			return CoreSel{}, fmt.Errorf("scenario: %s: empty core list", n.path)
		}
		sort.Ints(list)
		for i := 1; i < len(list); i++ {
			if list[i] == list[i-1] {
				return CoreSel{}, fmt.Errorf("scenario: %s: core %d listed twice", n.path, list[i])
			}
		}
		strs := make([]string, len(list))
		for i, c := range list {
			strs[i] = strconv.Itoa(c)
		}
		return CoreSel{raw: "[" + strings.Join(strs, ",") + "]", kind: selList, list: list}, nil
	}
	s, err := n.scalar(true)
	if err != nil {
		return CoreSel{}, fmt.Errorf("scenario: %s: cores wants a count, a lo-hi range, a [list], or rest", n.path)
	}
	if s == "rest" {
		return CoreSel{raw: "rest", kind: selRest}, nil
	}
	if lo, hi, ok := strings.Cut(s, "-"); ok {
		l, err1 := strconv.Atoi(lo)
		h, err2 := strconv.Atoi(hi)
		if err1 != nil || err2 != nil || l < 0 || h < l {
			return CoreSel{}, fmt.Errorf("scenario: %s: bad core range %q (want lo-hi with 0 <= lo <= hi)", n.path, s)
		}
		return CoreSel{raw: s, kind: selRange, n: l, hi: h}, nil
	}
	cnt, err := strconv.Atoi(s)
	if err != nil || cnt <= 0 {
		return CoreSel{}, fmt.Errorf("scenario: %s: bad cores value %q (want a positive count, lo-hi, a [list], or rest)", n.path, s)
	}
	return CoreSel{raw: s, kind: selCount, n: cnt}, nil
}

// resolve claims this selection's cores from the unassigned set.
func (c CoreSel) resolve(ncores int, assigned []bool) ([]int, error) {
	claim := func(cores []int) ([]int, error) {
		for _, i := range cores {
			if i >= ncores {
				return nil, fmt.Errorf("core %d outside the system's [0,%d)", i, ncores)
			}
			if assigned[i] {
				return nil, fmt.Errorf("core %d assigned twice", i)
			}
			assigned[i] = true
		}
		return cores, nil
	}
	switch c.kind {
	case selList:
		return claim(slices.Clone(c.list))
	case selRange:
		cores := make([]int, 0, c.hi-c.n+1)
		for i := c.n; i <= c.hi; i++ {
			cores = append(cores, i)
		}
		return claim(cores)
	case selCount:
		var cores []int
		for i := 0; i < ncores && len(cores) < c.n; i++ {
			if !assigned[i] {
				cores = append(cores, i)
				assigned[i] = true
			}
		}
		if len(cores) < c.n {
			return nil, fmt.Errorf("wants %d cores but only %d are unassigned", c.n, len(cores))
		}
		return cores, nil
	default: // selRest
		var cores []int
		for i := 0; i < ncores; i++ {
			if !assigned[i] {
				cores = append(cores, i)
				assigned[i] = true
			}
		}
		if len(cores) == 0 {
			return nil, fmt.Errorf("rest selects no cores (everything is already assigned)")
		}
		return cores, nil
	}
}

// Sources compiles the scenario for a system of ncores cores into the
// per-core source list core.NewSystemFromSources consumes. Clients
// claim cores in declaration order and together must cover [0,ncores)
// exactly once. Within a sharing group, each core's stream is indexed
// by its rank in the group's core union (size = the union), so
// remote-secondary and RW-shared traffic interleaves across the
// group's clients; all cores of one client share its phase-duration
// RNG (phaseSeq = client index), so the client changes phase as a
// unit. The result is a pure function of (scenario, ncores, scale,
// seed) — the property scenario checkpoint restore rests on.
func (s *Scenario) Sources(ncores int, scale int64, seed uint64) ([]workload.Source, error) {
	if ncores <= 0 {
		return nil, fmt.Errorf("scenario %s: %d cores", s.Name, ncores)
	}
	assigned := make([]bool, ncores)
	owner := make([]int, ncores)
	clientCores := make([][]int, len(s.Clients))
	for ci := range s.Clients {
		cl := &s.Clients[ci]
		cores, err := cl.Cores.resolve(ncores, assigned)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: client %s (cores: %s): %v", s.Name, cl.ID, cl.Cores.raw, err)
		}
		clientCores[ci] = cores
		for _, c := range cores {
			owner[c] = ci
		}
	}
	for i, a := range assigned {
		if !a {
			return nil, fmt.Errorf("scenario %s: core %d is bound to no client (with %d cores, selections must cover every core)", s.Name, i, ncores)
		}
	}

	// Group core unions, sorted: the address-map index space each
	// group's streams share.
	groupCores := map[int][]int{}
	for c, ci := range owner {
		g := s.Clients[ci].Group
		groupCores[g] = append(groupCores[g], c) // ascending: c iterates in order
	}
	rankIn := func(cores []int, c int) int {
		for r, v := range cores {
			if v == c {
				return r
			}
		}
		panic("scenario: core missing from its own group")
	}

	sources := make([]workload.Source, ncores)
	for c := 0; c < ncores; c++ {
		ci := owner[c]
		cl := &s.Clients[ci]
		off := workload.GroupOffset(cl.Group)
		if cl.Trace != nil {
			// Stagger each core's replay cursor around the recording so a
			// multi-core trace client doesn't hit identical addresses in
			// lockstep.
			mine := clientCores[ci]
			start := len(cl.Trace.Ops) * rankIn(mine, c) / len(mine)
			sources[c] = workload.NewTraceSource(cl.Trace.Name, cl.Trace.MLP, cl.Trace.Ops, off, start)
			continue
		}
		gc := groupCores[cl.Group]
		sources[c] = workload.NewPhased(cl.Phases, rankIn(gc, c), len(gc), scale, seed, uint64(ci), off)
	}
	return sources, nil
}

// node is one tree position with its path for error messages.
type node struct {
	path string
	v    any
}

// mapnode wraps a mapping with its path.
type mapnode struct {
	path string
	m    map[string]any
}

// mapping asserts the node is a mapping holding only allowed keys.
func (n node) mapping(allowed ...string) (mapnode, error) {
	m, ok := n.v.(map[string]any)
	if !ok {
		return mapnode{}, fmt.Errorf("scenario: %s: expected a mapping", n.path)
	}
	for k := range m {
		if !slices.Contains(allowed, k) {
			return mapnode{}, fmt.Errorf("scenario: %s: unknown key %q (want one of %s)", n.path, k, strings.Join(allowed, ", "))
		}
	}
	return mapnode{n.path, m}, nil
}

func (m mapnode) get(key string) (node, bool) {
	v, ok := m.m[key]
	return node{m.path + "." + key, v}, ok
}

// list returns the named key as a list of nodes.
func (m mapnode) list(key string) ([]node, error) {
	n, ok := m.get(key)
	if !ok {
		return nil, fmt.Errorf("scenario: %s: missing key %q", m.path, key)
	}
	l, ok := n.v.([]any)
	if !ok {
		return nil, fmt.Errorf("scenario: %s: expected a list", n.path)
	}
	out := make([]node, len(l))
	for i, e := range l {
		out[i] = node{fmt.Sprintf("%s[%d]", n.path, i), e}
	}
	return out, nil
}

// str returns the named key as a non-empty (when required) string; an
// empty key name reads the node itself.
func (m mapnode) str(key string, required bool) (string, error) {
	n, ok := m.get(key)
	if !ok {
		if required {
			return "", fmt.Errorf("scenario: %s: missing key %q", m.path, key)
		}
		return "", nil
	}
	return n.scalar(required)
}

func (n node) scalar(required bool) (string, error) {
	s, ok := n.v.(string)
	if !ok {
		return "", fmt.Errorf("scenario: %s: expected a string", n.path)
	}
	if required && s == "" {
		return "", fmt.Errorf("scenario: %s: empty value", n.path)
	}
	return s, nil
}

// float parses the named key as a finite float.
func (m mapnode) float(key string) (float64, error) {
	n, ok := m.get(key)
	if !ok {
		return 0, fmt.Errorf("scenario: %s: missing key %q", m.path, key)
	}
	s, ok := n.v.(string)
	if !ok {
		return 0, fmt.Errorf("scenario: %s: expected a number", n.path)
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v != v {
		return 0, fmt.Errorf("scenario: %s: %q is not a number", n.path, s)
	}
	return v, nil
}

// intval parses the node as an integer in [lo, hi].
func (n node) intval(lo, hi int) (int, error) {
	s, ok := n.v.(string)
	if !ok {
		return 0, fmt.Errorf("scenario: %s: expected an integer", n.path)
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("scenario: %s: %q is not an integer", n.path, s)
	}
	if v < lo || v > hi {
		return 0, fmt.Errorf("scenario: %s: %d outside [%d,%d]", n.path, v, lo, hi)
	}
	return v, nil
}
