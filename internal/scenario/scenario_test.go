package scenario

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/workload"
)

// testResolver looks up the compiled-in presets — the same catalog the
// experiments package passes in production (re-built here to avoid an
// import cycle with experiments' scenario support).
func testResolver(name string) (workload.Spec, error) {
	for _, s := range append(workload.ScaleOutSuite(), workload.EnterpriseSuite()...) {
		if s.Name == name {
			return s, nil
		}
	}
	for _, n := range workload.Spec2006Names() {
		if n == name {
			return workload.Spec2006(n), nil
		}
	}
	return workload.Spec{}, fmt.Errorf("unknown workload %q", name)
}

// noTraces is a loader for fixtures that reference no traces.
func noTraces(ref string) ([]byte, error) {
	return nil, fmt.Errorf("fixture referenced trace %q", ref)
}

// mustParse compiles an inline spec or fails the test.
func mustParse(t *testing.T, src string) *Scenario {
	t.Helper()
	s, err := Parse([]byte(src), testResolver, noTraces)
	if err != nil {
		t.Fatalf("Parse: %v\nspec:\n%s", err, src)
	}
	return s
}

// TestGoldenFixtures walks testdata: every file under valid/ must
// parse AND compile onto a 16-core system; every file under bad/ must
// be rejected with an error containing the substring in its first-line
// `# want:` comment. The bad/ set covers every rejection path in the
// decoder and the scenario layer — the parser-hardening contract.
func TestGoldenFixtures(t *testing.T) {
	valid, err := filepath.Glob("testdata/valid/*")
	if err != nil || len(valid) == 0 {
		t.Fatalf("no valid fixtures: %v", err)
	}
	for _, path := range valid {
		t.Run(filepath.Base(path), func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			s, err := Parse(data, testResolver, noTraces)
			if err != nil {
				t.Fatalf("valid fixture rejected: %v", err)
			}
			if _, err := s.Sources(16, 16, 5); err != nil {
				t.Fatalf("fixture does not compile on 16 cores: %v", err)
			}
			if s.Digest() == "" || s.Digest() != s.computeDigest() {
				t.Fatal("digest unstable")
			}
		})
	}

	bad, err := filepath.Glob("testdata/bad/*")
	if err != nil || len(bad) == 0 {
		t.Fatalf("no bad fixtures: %v", err)
	}
	for _, path := range bad {
		t.Run(filepath.Base(path), func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			first, rest, _ := bytes.Cut(data, []byte("\n"))
			want, ok := strings.CutPrefix(string(first), "# want: ")
			if !ok {
				t.Fatalf("fixture lacks a `# want: <substring>` first line")
			}
			// JSON can't carry the comment line; YAML ignores it either
			// way, so strip it before parsing.
			_, perr := Parse(rest, testResolver, noTraces)
			if perr == nil {
				t.Fatalf("bad fixture accepted (want error containing %q)", want)
			}
			if !strings.Contains(perr.Error(), want) {
				t.Fatalf("error %q does not contain %q", perr, want)
			}
		})
	}
}

// TestSourcesCoverage pins the core-binding errors: selections must
// cover [0,ncores) exactly once, in declaration order.
func TestSourcesCoverage(t *testing.T) {
	cases := []struct {
		name, cores string
		ncores      int
		want        string
	}{
		{"uncovered tail", "0-9", 16, "core 10 is bound to no client"},
		{"outside system", "0-19", 16, "core 16 outside the system's [0,16)"},
		{"count too large", "20", 16, "wants 20 cores but only 16 are unassigned"},
		{"list outside", "[0, 99]", 16, "core 99 outside"},
	}
	for _, tc := range cases {
		s := mustParse(t, fmt.Sprintf("name: x\nclients:\n  - id: a\n    cores: %s\n    workload: WebSearch\n", tc.cores))
		_, err := s.Sources(tc.ncores, 16, 5)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v does not contain %q", tc.name, err, tc.want)
		}
	}

	// Overlap across clients, and rest-with-nothing-left.
	s := mustParse(t, "name: x\nclients:\n  - id: a\n    cores: 0-8\n    workload: WebSearch\n  - id: b\n    cores: [8, 9]\n    workload: Zeus\n")
	if _, err := s.Sources(16, 16, 5); err == nil || !strings.Contains(err.Error(), "core 8 assigned twice") {
		t.Errorf("overlap: %v", err)
	}
	s = mustParse(t, "name: x\nclients:\n  - id: a\n    cores: 0-15\n    workload: WebSearch\n  - id: b\n    cores: rest\n    workload: Zeus\n")
	if _, err := s.Sources(16, 16, 5); err == nil || !strings.Contains(err.Error(), "rest selects no cores") {
		t.Errorf("empty rest: %v", err)
	}

	// The same scenario compiles fine at a core count the selections
	// cover: declaration order resolves counts then rest.
	s = mustParse(t, "name: x\nclients:\n  - id: a\n    cores: 4\n    workload: WebSearch\n  - id: b\n    cores: rest\n    workload: Zeus\n")
	srcs, err := s.Sources(16, 16, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(srcs) != 16 {
		t.Fatalf("%d sources for 16 cores", len(srcs))
	}
	for c, src := range srcs {
		wantName := "WebSearch"
		if c >= 4 {
			wantName = "Zeus"
		}
		if src.Spec().Name != wantName {
			t.Fatalf("core %d runs %q, want %q", c, src.Spec().Name, wantName)
		}
	}
}

// TestSharingGroupRanks: within one sharing group the per-core streams
// are indexed by rank in the group's core union, with the union's size
// as ncores — byte-compared against directly-constructed Phased
// sources. Cores of different clients in the group interleave one
// address space; a client in its own group is isolated.
func TestSharingGroupRanks(t *testing.T) {
	const src = `name: ranks
clients:
  - id: a
    cores: [0, 2]
    group: 0
    workload: WebSearch
  - id: b
    cores: [1, 3]
    group: 0
    workload: MapReduce
  - id: c
    cores: rest
    group: 5
    workload: Zeus
`
	s := mustParse(t, src)
	srcs, err := s.Sources(6, 16, 5)
	if err != nil {
		t.Fatal(err)
	}
	inf := workload.Arrival{Process: workload.ArrivalFixed, MeanOps: float64(uint64(1) << 60)}
	phase := func(sp workload.Spec) []workload.Phase {
		return []workload.Phase{{Spec: sp, Arrival: inf}}
	}
	// Group 0's union is cores {0,1,2,3}: a owns ranks 0 and 2, b owns
	// ranks 1 and 3. Group 5's union is {4,5}.
	expect := []*workload.Phased{
		workload.NewPhased(phase(workload.WebSearch()), 0, 4, 16, 5, 0, workload.GroupOffset(0)),
		workload.NewPhased(phase(workload.MapReduce()), 1, 4, 16, 5, 1, workload.GroupOffset(0)),
		workload.NewPhased(phase(workload.WebSearch()), 2, 4, 16, 5, 0, workload.GroupOffset(0)),
		workload.NewPhased(phase(workload.MapReduce()), 3, 4, 16, 5, 1, workload.GroupOffset(0)),
		workload.NewPhased(phase(workload.Zeus()), 0, 2, 16, 5, 2, workload.GroupOffset(5)),
		workload.NewPhased(phase(workload.Zeus()), 1, 2, 16, 5, 2, workload.GroupOffset(5)),
	}
	var got, want workload.Op
	for c := range srcs {
		for i := 0; i < 3000; i++ {
			srcs[c].Next(&got)
			expect[c].Next(&want)
			if got != want {
				t.Fatalf("core %d op %d: %+v, direct construction %+v", c, i, got, want)
			}
		}
	}
}

// testTrace records n ops of WebSearch into trace-file bytes.
func testTrace(t *testing.T, n int) []byte {
	t.Helper()
	st := workload.NewStream(workload.WebSearch(), 0, 4, 16, 5)
	ops := make([]workload.Op, n)
	st.NextBatch(ops)
	var buf bytes.Buffer
	tw, err := workload.NewTraceWriter(&buf, "WebSearch", 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Write(ops); err != nil {
		t.Fatal(err)
	}
	if err := tw.Finish(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceClientStagger: a multi-core trace client staggers each
// core's replay cursor evenly around the recording.
func TestTraceClientStagger(t *testing.T) {
	raw := testTrace(t, 1000)
	loader := func(ref string) ([]byte, error) {
		if ref != "t.rpt" {
			return nil, fmt.Errorf("unexpected ref %q", ref)
		}
		return raw, nil
	}
	src := "name: replay\nclients:\n  - id: t\n    cores: rest\n    group: 2\n    trace: t.rpt\n"
	s, err := Parse([]byte(src), testResolver, loader)
	if err != nil {
		t.Fatal(err)
	}
	cl := s.Clients[0]
	if cl.Trace == nil || cl.Trace.Name != "WebSearch" || cl.Trace.MLP != 2 || len(cl.Trace.Ops) != 1000 {
		t.Fatalf("trace binding: %+v", cl.Trace)
	}
	srcs, err := s.Sources(4, 16, 5)
	if err != nil {
		t.Fatal(err)
	}
	off := workload.GroupOffset(2)
	for c, src := range srcs {
		var got workload.Op
		src.Next(&got)
		want := cl.Trace.Ops[1000*c/4]
		if want.IWord != 0 {
			want.IWord += off
		}
		if want.DWord != 0 {
			want.DWord += off
		}
		if got != want {
			t.Fatalf("core %d first op %+v, want recorded op %d %+v", c, got, 1000*c/4, want)
		}
	}
}

// TestDigest: equal bytes hash equal; any semantic change — group,
// tuning knob, trace content — moves the digest.
func TestDigest(t *testing.T) {
	base := "name: d\nclients:\n  - id: a\n    cores: rest\n    group: 1\n    workload: WebSearch\n"
	d0 := mustParse(t, base).Digest()
	if d0 != mustParse(t, base).Digest() {
		t.Fatal("same bytes, different digest")
	}
	variants := []string{
		strings.Replace(base, "group: 1", "group: 2", 1),
		strings.Replace(base, "workload: WebSearch", "workload: Zeus", 1),
		strings.Replace(base, "workload: WebSearch", "workload: WebSearch\n    mem_ratio: 0.42", 1),
		strings.Replace(base, "name: d", "name: e", 1),
	}
	seen := map[string]bool{d0: true}
	for _, v := range variants {
		d := mustParse(t, v).Digest()
		if seen[d] {
			t.Fatalf("variant collided:\n%s", v)
		}
		seen[d] = true
	}

	// Trace digests follow the trace bytes.
	rawA, rawB := testTrace(t, 100), testTrace(t, 101)
	tsrc := "name: d\nclients:\n  - id: a\n    cores: rest\n    trace: t.rpt\n"
	dig := func(raw []byte) string {
		s, err := Parse([]byte(tsrc), testResolver, func(string) ([]byte, error) { return raw, nil })
		if err != nil {
			t.Fatal(err)
		}
		return s.Digest()
	}
	if dig(rawA) == dig(rawB) {
		t.Fatal("different trace bytes, same digest")
	}
	if dig(rawA) != dig(rawA) {
		t.Fatal("same trace bytes, different digest")
	}
}

// TestAutoGroups: clients without group: each get a fresh group from
// the smallest ids not explicitly claimed — no accidental sharing.
func TestAutoGroups(t *testing.T) {
	s := mustParse(t, `name: g
clients:
  - id: a
    cores: 2
    workload: WebSearch
  - id: b
    cores: 2
    group: 0
    workload: Zeus
  - id: c
    cores: rest
    workload: TPCC
`)
	got := []int{s.Clients[0].Group, s.Clients[1].Group, s.Clients[2].Group}
	if got[0] != 1 || got[1] != 0 || got[2] != 2 {
		t.Fatalf("groups %v, want [1 0 2]", got)
	}

	// All 16 groups explicitly taken: a defaulted client must error.
	var b strings.Builder
	b.WriteString("name: g\nclients:\n")
	for g := 0; g < workload.MaxGroups; g++ {
		fmt.Fprintf(&b, "  - id: c%d\n    cores: 1\n    group: %d\n    workload: WebSearch\n", g, g)
	}
	b.WriteString("  - id: extra\n    cores: rest\n    workload: Zeus\n")
	if _, err := Parse([]byte(b.String()), testResolver, noTraces); err == nil ||
		!strings.Contains(err.Error(), "all 16 are taken") {
		t.Fatalf("auto-group exhaustion: %v", err)
	}
}

// TestLoadRelativeTrace: Load resolves trace refs relative to the spec
// file's directory and wraps errors with the spec path.
func TestLoadRelativeTrace(t *testing.T) {
	dir := t.TempDir()
	raw := testTrace(t, 50)
	if err := os.WriteFile(filepath.Join(dir, "cap.rpt"), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	spec := filepath.Join(dir, "s.yaml")
	if err := os.WriteFile(spec, []byte("name: s\nclients:\n  - id: a\n    cores: rest\n    trace: cap.rpt\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Load(spec, testResolver)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Clients[0].Trace.Ops) != 50 {
		t.Fatalf("loaded %d ops", len(s.Clients[0].Trace.Ops))
	}

	if _, err := Load(filepath.Join(dir, "missing.yaml"), testResolver); err == nil {
		t.Fatal("missing spec file accepted")
	}
	bad := filepath.Join(dir, "bad.yaml")
	os.WriteFile(bad, []byte("name: s\nclients: []\n"), 0o644)
	if _, err := Load(bad, testResolver); err == nil || !strings.Contains(err.Error(), bad) {
		t.Fatalf("Load error %v does not name the file", err)
	}
}
