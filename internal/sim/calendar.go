package sim

import "math/bits"

// The calendar queue covers a sliding window of calendarWindow consecutive
// cycles with one bucket per cycle. 256 cycles comfortably spans the common
// completion delays (vault array + controller + serialization is a few tens
// of cycles; main-memory round trips land near a hundred), so in steady
// state nearly every event takes the O(1) bucket path and only rare
// far-future events (refresh-scale timers, idle-period wakeups) touch the
// overflow heap.
const (
	calendarWindow = 256
	calendarMask   = calendarWindow - 1
	calendarWords  = calendarWindow / 64
)

// calendarQueue is a time-wheel scheduler: events within the window
// [cur, cur+calendarWindow) live in per-cycle buckets addressed by
// when&calendarMask; later events wait in an overflow min-heap and migrate
// into buckets as the window advances.
//
// Ordering invariants, on which the engine's determinism contract rests:
//
//   - Every queued event has when >= cur, and every overflow event has
//     when >= cur+calendarWindow. cur only advances, and only up to the
//     cycle of the earliest pending event (never past a popLE limit), so a
//     later push — which the engine guarantees is not in the past — can
//     never land on a cycle the window has already passed.
//   - A bucket holds events of exactly one cycle: the window spans
//     calendarWindow consecutive cycles, so each residue class mod
//     calendarWindow occurs once within it.
//   - Bucket order is push order, which equals seq order: direct pushes
//     carry monotonically increasing seq, and migration drains the overflow
//     heap in (when, seq) order before any later direct push (with a
//     necessarily larger seq) can target the same bucket. Popping from the
//     bucket head therefore yields exact (when, seq) FIFO order.
type calendarQueue struct {
	cur      Cycle // earliest cycle any queued event may occupy
	windowN  int   // events currently stored in buckets
	buckets  [calendarWindow]bucket
	occupied [calendarWords]uint64 // bit per non-empty bucket
	overflow eventHeap             // events at or beyond cur+calendarWindow
}

// bucket is one cycle's events. head indexes the next event to pop;
// draining resets the slice in place so its capacity is reused.
type bucket struct {
	evs  []event
	head int
}

func newCalendarQueue() *calendarQueue {
	c := &calendarQueue{}
	c.overflow.evs = make([]event, 0, 64)
	return c
}

func (c *calendarQueue) name() string { return CalendarQueue.String() }

func (c *calendarQueue) len() int { return c.windowN + c.overflow.len() }

func (c *calendarQueue) push(ev event) {
	if ev.when < c.cur+calendarWindow {
		c.insert(ev)
		return
	}
	c.overflow.push(ev)
}

// insert appends ev to its window bucket and marks the bucket occupied.
func (c *calendarQueue) insert(ev event) {
	slot := int(ev.when & calendarMask)
	b := &c.buckets[slot]
	b.evs = append(b.evs, ev)
	c.occupied[slot>>6] |= 1 << uint(slot&63)
	c.windowN++
}

func (c *calendarQueue) popLE(limit Cycle) (event, bool) {
	if !c.settleLE(limit) {
		return event{}, false
	}
	slot := int(c.cur & calendarMask)
	b := &c.buckets[slot]
	ev := b.evs[b.head]
	b.evs[b.head] = event{} // release callback references
	b.head++
	if b.head == len(b.evs) {
		b.evs = b.evs[:0]
		b.head = 0
		c.occupied[slot>>6] &^= 1 << uint(slot&63)
	}
	c.windowN--
	return ev, true
}

// settleLE advances cur to the cycle of the earliest pending event when
// that cycle is <= limit, migrating overflow events that enter the window.
// It reports whether the bucket at cur then holds a poppable event. cur is
// deliberately not advanced past limit: the engine may still push events
// for cycles in (limit, earliest-pending) afterwards, and the window must
// not have passed them.
func (c *calendarQueue) settleLE(limit Cycle) bool {
	if c.windowN == 0 {
		if c.overflow.len() == 0 {
			return false
		}
		// Window drained: jump it to the overflow's earliest cycle.
		when := c.overflow.evs[0].when
		if when > limit {
			return false
		}
		c.migrate(when)
		return true
	}
	delta := c.nextOccupied(int(c.cur & calendarMask))
	if delta == 0 {
		return c.cur <= limit
	}
	next := c.cur + Cycle(delta)
	if next > limit {
		return false
	}
	c.migrate(next)
	return true
}

// migrate advances the window start to target and pulls every overflow
// event that now falls inside [target, target+calendarWindow) into its
// bucket. The heap yields them in (when, seq) order, preserving bucket
// FIFO; their slots are necessarily ones the window has already drained.
func (c *calendarQueue) migrate(target Cycle) {
	c.cur = target
	horizon := target + calendarWindow
	for c.overflow.len() > 0 && c.overflow.evs[0].when < horizon {
		c.insert(c.overflow.pop())
	}
}

// nextOccupied returns the circular distance from slot start to the first
// occupied bucket (0 when start itself is occupied). Must only be called
// with windowN > 0.
func (c *calendarQueue) nextOccupied(start int) int {
	w := start >> 6
	bit := uint(start & 63)
	if word := c.occupied[w] >> bit; word != 0 {
		return bits.TrailingZeros64(word)
	}
	for i := 1; i <= calendarWords; i++ {
		idx := (w + i) & (calendarWords - 1)
		if word := c.occupied[idx]; word != 0 {
			return i<<6 - int(bit) + bits.TrailingZeros64(word)
		}
	}
	panic("sim: calendar queue lost an event (windowN > 0 with no occupied bucket)")
}
