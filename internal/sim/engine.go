// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine keeps a monotonically increasing cycle clock and a priority
// queue of events ordered by (cycle, insertion sequence). Ties are broken
// FIFO so that two runs of the same program always execute events in the
// same order: the whole simulator is single-goroutine and reproducible.
package sim

import "fmt"

// Cycle is a point in simulated time, measured in core clock cycles.
type Cycle uint64

// Event is a closure scheduled to run at a particular cycle.
type event struct {
	when Cycle
	seq  uint64
	fn   func()
}

// Engine is a discrete-event scheduler. The zero value is ready to use.
type Engine struct {
	now    Cycle
	seq    uint64
	heap   []event
	nEvts  uint64 // total events executed
	closed bool
}

// NewEngine returns an empty engine at cycle 0.
func NewEngine() *Engine { return &Engine{} }

// Now reports the current simulation cycle.
func (e *Engine) Now() Cycle { return e.now }

// Executed reports the total number of events executed so far.
func (e *Engine) Executed() uint64 { return e.nEvts }

// Pending reports the number of scheduled but not yet executed events.
func (e *Engine) Pending() int { return len(e.heap) }

// Schedule runs fn delay cycles from now. A delay of 0 runs fn after all
// events already scheduled for the current cycle.
func (e *Engine) Schedule(delay Cycle, fn func()) {
	e.At(e.now+delay, fn)
}

// At runs fn at the given absolute cycle, which must not be in the past.
func (e *Engine) At(when Cycle, fn func()) {
	if when < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", when, e.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	e.seq++
	e.push(event{when: when, seq: e.seq, fn: fn})
}

// Step executes the next pending event, advancing the clock to its cycle.
// It reports false when no events remain.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	ev := e.pop()
	e.now = ev.when
	e.nEvts++
	ev.fn()
	return true
}

// Run executes events until the queue drains or the clock would pass limit.
// Events scheduled exactly at limit are executed. It returns the number of
// events executed by this call.
func (e *Engine) Run(limit Cycle) uint64 {
	start := e.nEvts
	for len(e.heap) > 0 && e.heap[0].when <= limit {
		e.Step()
	}
	if e.now < limit {
		e.now = limit
	}
	return e.nEvts - start
}

// RunAll executes events until the queue is drained.
func (e *Engine) RunAll() uint64 {
	start := e.nEvts
	for e.Step() {
	}
	return e.nEvts - start
}

// push inserts ev into the binary min-heap.
func (e *Engine) push(ev event) {
	e.heap = append(e.heap, ev)
	i := len(e.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !less(e.heap[i], e.heap[parent]) {
			break
		}
		e.heap[i], e.heap[parent] = e.heap[parent], e.heap[i]
		i = parent
	}
}

// pop removes and returns the earliest event.
func (e *Engine) pop() event {
	top := e.heap[0]
	last := len(e.heap) - 1
	e.heap[0] = e.heap[last]
	e.heap = e.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && less(e.heap[l], e.heap[smallest]) {
			smallest = l
		}
		if r < last && less(e.heap[r], e.heap[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		e.heap[i], e.heap[smallest] = e.heap[smallest], e.heap[i]
		i = smallest
	}
	return top
}

func less(a, b event) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}
