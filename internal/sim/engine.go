// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine keeps a monotonically increasing cycle clock and a priority
// queue of events ordered by (cycle, insertion sequence). Ties are broken
// FIFO so that two runs of the same program always execute events in the
// same order: each engine is single-goroutine and reproducible. Distinct
// engines share no state, so independent simulations may run concurrently
// on separate goroutines (see the experiments runner).
//
// Hot-path notes: events carry either a plain func() or a func(uint64)
// with a pre-bound argument (ScheduleArg/AtArg). The argument form lets
// callers reuse one long-lived callback for many in-flight events instead
// of allocating a fresh closure per event — the dominant allocation source
// in the simulator's inner loop before it was removed.
package sim

import "fmt"

// Cycle is a point in simulated time, measured in core clock cycles.
type Cycle uint64

// event is a callback scheduled to run at a particular cycle. Exactly one
// of fn and afn is set; afn receives arg, which lets hot callers avoid a
// per-event closure allocation.
type event struct {
	when Cycle
	seq  uint64
	fn   func()
	afn  func(uint64)
	arg  uint64
}

// initialHeapCap pre-sizes the event heap so steady-state simulations
// (hundreds of in-flight events across cores, caches and controllers)
// never grow it during the measured window.
const initialHeapCap = 1024

// Engine is a discrete-event scheduler. The zero value is ready to use.
type Engine struct {
	now   Cycle
	seq   uint64
	heap  []event
	nEvts uint64 // total events executed
}

// NewEngine returns an empty engine at cycle 0 with a pre-sized event heap.
func NewEngine() *Engine { return &Engine{heap: make([]event, 0, initialHeapCap)} }

// Now reports the current simulation cycle.
func (e *Engine) Now() Cycle { return e.now }

// Executed reports the total number of events executed so far.
func (e *Engine) Executed() uint64 { return e.nEvts }

// Pending reports the number of scheduled but not yet executed events.
func (e *Engine) Pending() int { return len(e.heap) }

// Schedule runs fn delay cycles from now. A delay of 0 runs fn after all
// events already scheduled for the current cycle.
func (e *Engine) Schedule(delay Cycle, fn func()) {
	e.At(e.now+delay, fn)
}

// At runs fn at the given absolute cycle, which must not be in the past.
func (e *Engine) At(when Cycle, fn func()) {
	if when < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", when, e.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	e.seq++
	e.push(event{when: when, seq: e.seq, fn: fn})
}

// ScheduleArg runs fn(arg) delay cycles from now. Because fn is typically
// a long-lived callback bound once per component, scheduling this way
// performs no allocation beyond the heap slot.
func (e *Engine) ScheduleArg(delay Cycle, fn func(uint64), arg uint64) {
	e.AtArg(e.now+delay, fn, arg)
}

// AtArg runs fn(arg) at the given absolute cycle, which must not be in the
// past.
func (e *Engine) AtArg(when Cycle, fn func(uint64), arg uint64) {
	if when < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", when, e.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	e.seq++
	e.push(event{when: when, seq: e.seq, afn: fn, arg: arg})
}

// dispatch advances the clock to ev and runs its callback.
func (e *Engine) dispatch(ev event) {
	e.now = ev.when
	e.nEvts++
	if ev.fn != nil {
		ev.fn()
	} else {
		ev.afn(ev.arg)
	}
}

// Step executes the next pending event, advancing the clock to its cycle.
// It reports false when no events remain.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	e.dispatch(e.pop())
	return true
}

// Run executes events until the queue drains or the clock would pass limit.
// Events scheduled exactly at limit are executed. It returns the number of
// events executed by this call. The drain loop pops directly rather than
// going through Step so the per-event cost is one heap pop plus the
// callback.
func (e *Engine) Run(limit Cycle) uint64 {
	start := e.nEvts
	for len(e.heap) > 0 && e.heap[0].when <= limit {
		e.dispatch(e.pop())
	}
	if e.now < limit {
		e.now = limit
	}
	return e.nEvts - start
}

// RunAll executes events until the queue is drained.
func (e *Engine) RunAll() uint64 {
	start := e.nEvts
	for len(e.heap) > 0 {
		e.dispatch(e.pop())
	}
	return e.nEvts - start
}

// push inserts ev into the binary min-heap, sifting the insertion hole up
// instead of swapping so each level costs one copy.
func (e *Engine) push(ev event) {
	e.heap = append(e.heap, ev)
	i := len(e.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !less(ev, e.heap[parent]) {
			break
		}
		e.heap[i] = e.heap[parent]
		i = parent
	}
	e.heap[i] = ev
}

// pop removes and returns the earliest event, sifting the root hole down
// with single copies.
func (e *Engine) pop() event {
	top := e.heap[0]
	last := len(e.heap) - 1
	moved := e.heap[last]
	e.heap[last] = event{} // release callback references
	e.heap = e.heap[:last]
	if last == 0 {
		return top
	}
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := -1
		if l < last && less(e.heap[l], moved) {
			smallest = l
		}
		if r < last && less(e.heap[r], e.heap[l]) && less(e.heap[r], moved) {
			smallest = r
		}
		if smallest < 0 {
			break
		}
		e.heap[i] = e.heap[smallest]
		i = smallest
	}
	e.heap[i] = moved
	return top
}

func less(a, b event) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}
