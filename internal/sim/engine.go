// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine keeps a monotonically increasing cycle clock and a priority
// queue of events ordered by (cycle, insertion sequence). Ties are broken
// FIFO so that two runs of the same program always execute events in the
// same order: each engine is single-goroutine and reproducible. Distinct
// engines share no state, so independent simulations may run concurrently
// on separate goroutines (see the experiments runner).
//
// The queue behind the engine is pluggable (see SchedulerKind): the default
// is a calendar queue — per-cycle buckets over a sliding window sized to
// the short completion delays that dominate the simulated systems, with an
// overflow heap for far-future events — giving O(1) amortized scheduling;
// the previous binary heap remains available as a reference implementation.
// Both order events identically (asserted by a randomized differential
// test), so the choice affects performance only, never results.
//
// Hot-path notes: events carry either a plain func() or a func(uint64)
// with a pre-bound argument (ScheduleArg/AtArg). The argument form lets
// callers reuse one long-lived callback for many in-flight events instead
// of allocating a fresh closure per event — the dominant allocation source
// in the simulator's inner loop before it was removed.
package sim

import "fmt"

// Cycle is a point in simulated time, measured in core clock cycles.
type Cycle uint64

// maxCycle is the drain limit used when no caller bound applies.
const maxCycle = ^Cycle(0)

// event is a callback scheduled to run at a particular cycle. Exactly one
// of fn and afn is set; afn receives arg, which lets hot callers avoid a
// per-event closure allocation.
type event struct {
	when Cycle
	seq  uint64
	fn   func()
	afn  func(uint64)
	arg  uint64
}

// Engine is a discrete-event scheduler. The zero value is ready to use.
type Engine struct {
	now   Cycle
	seq   uint64
	sched scheduler
	nEvts uint64 // total events executed
}

// NewEngine returns an empty engine at cycle 0 using the default
// calendar-queue scheduler.
func NewEngine() *Engine { return &Engine{sched: newCalendarQueue()} }

// NewEngineWithScheduler returns an empty engine using the given event
// queue implementation. Every kind executes events in the identical
// (cycle, insertion seq) order; non-default kinds exist for differential
// testing and performance comparison.
func NewEngineWithScheduler(kind SchedulerKind) *Engine {
	return &Engine{sched: newScheduler(kind)}
}

// scheduler returns the event queue, installing the default for
// zero-value engines.
func (e *Engine) scheduler() scheduler {
	if e.sched == nil {
		e.sched = newCalendarQueue()
	}
	return e.sched
}

// SchedulerName reports the active event-queue implementation (for bench
// snapshots and diagnostics).
func (e *Engine) SchedulerName() string { return e.scheduler().name() }

// Now reports the current simulation cycle.
func (e *Engine) Now() Cycle { return e.now }

// Executed reports the total number of events executed so far.
func (e *Engine) Executed() uint64 { return e.nEvts }

// Pending reports the number of scheduled but not yet executed events.
func (e *Engine) Pending() int { return e.scheduler().len() }

// Schedule runs fn delay cycles from now. A delay of 0 runs fn after all
// events already scheduled for the current cycle.
func (e *Engine) Schedule(delay Cycle, fn func()) {
	e.At(e.now+delay, fn)
}

// At runs fn at the given absolute cycle, which must not be in the past.
func (e *Engine) At(when Cycle, fn func()) {
	if when < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", when, e.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	e.seq++
	e.scheduler().push(event{when: when, seq: e.seq, fn: fn})
}

// ScheduleArg runs fn(arg) delay cycles from now. Because fn is typically
// a long-lived callback bound once per component, scheduling this way
// performs no allocation beyond the queue slot.
func (e *Engine) ScheduleArg(delay Cycle, fn func(uint64), arg uint64) {
	e.AtArg(e.now+delay, fn, arg)
}

// AtArg runs fn(arg) at the given absolute cycle, which must not be in the
// past.
func (e *Engine) AtArg(when Cycle, fn func(uint64), arg uint64) {
	if when < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", when, e.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	e.seq++
	e.scheduler().push(event{when: when, seq: e.seq, afn: fn, arg: arg})
}

// dispatch advances the clock to ev and runs its callback.
func (e *Engine) dispatch(ev event) {
	e.now = ev.when
	e.nEvts++
	if ev.fn != nil {
		ev.fn()
	} else {
		ev.afn(ev.arg)
	}
}

// Step executes the next pending event, advancing the clock to its cycle.
// It reports false when no events remain.
func (e *Engine) Step() bool {
	ev, ok := e.scheduler().popLE(maxCycle)
	if !ok {
		return false
	}
	e.dispatch(ev)
	return true
}

// Run executes events until the queue drains or the clock would pass limit.
// Events scheduled exactly at limit are executed. It returns the number of
// events executed by this call. The drain loop pops directly rather than
// going through Step so the per-event cost is one bounded queue pop plus
// the callback.
func (e *Engine) Run(limit Cycle) uint64 {
	s := e.scheduler()
	start := e.nEvts
	for {
		ev, ok := s.popLE(limit)
		if !ok {
			break
		}
		e.dispatch(ev)
	}
	if e.now < limit {
		e.now = limit
	}
	return e.nEvts - start
}

// RunAll executes events until the queue is drained.
func (e *Engine) RunAll() uint64 {
	s := e.scheduler()
	start := e.nEvts
	for {
		ev, ok := s.popLE(maxCycle)
		if !ok {
			break
		}
		e.dispatch(ev)
	}
	return e.nEvts - start
}
