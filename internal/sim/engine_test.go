package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineZeroValueUsable(t *testing.T) {
	var e Engine
	ran := false
	e.Schedule(5, func() { ran = true })
	e.RunAll()
	if !ran {
		t.Fatal("event did not run")
	}
	if e.Now() != 5 {
		t.Fatalf("Now() = %d, want 5", e.Now())
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(10, func() { order = append(order, 2) })
	e.Schedule(5, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 3) })
	e.RunAll()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(7, func() { order = append(order, i) })
	}
	e.RunAll()
	for i := 0; i < 100; i++ {
		if order[i] != i {
			t.Fatalf("same-cycle events executed out of insertion order at %d: %v", i, order[:i+1])
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var hits []Cycle
	e.Schedule(1, func() {
		hits = append(hits, e.Now())
		e.Schedule(3, func() { hits = append(hits, e.Now()) })
		e.Schedule(0, func() { hits = append(hits, e.Now()) })
	})
	e.RunAll()
	if len(hits) != 3 || hits[0] != 1 || hits[1] != 1 || hits[2] != 4 {
		t.Fatalf("hits = %v, want [1 1 4]", hits)
	}
}

func TestEngineRunLimit(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := Cycle(1); i <= 10; i++ {
		e.At(i*10, func() { count++ })
	}
	n := e.Run(50)
	if n != 5 || count != 5 {
		t.Fatalf("Run(50) executed %d events (count %d), want 5", n, count)
	}
	if e.Now() != 50 {
		t.Fatalf("Now() = %d after Run(50), want 50", e.Now())
	}
	e.RunAll()
	if count != 10 {
		t.Fatalf("count = %d after RunAll, want 10", count)
	}
}

func TestEngineRunAdvancesClockWithoutEvents(t *testing.T) {
	e := NewEngine()
	e.Run(1000)
	if e.Now() != 1000 {
		t.Fatalf("Now() = %d, want 1000", e.Now())
	}
}

func TestEnginePanicsOnPastEvent(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {})
	e.RunAll()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	e.At(5, func() {})
}

func TestEnginePanicsOnNilFunc(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on nil event fn")
		}
	}()
	e.Schedule(1, nil)
}

func TestEngineExecutedAndPending(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 7; i++ {
		e.Schedule(Cycle(i), func() {})
	}
	if e.Pending() != 7 {
		t.Fatalf("Pending = %d, want 7", e.Pending())
	}
	e.RunAll()
	if e.Executed() != 7 || e.Pending() != 0 {
		t.Fatalf("Executed = %d Pending = %d, want 7, 0", e.Executed(), e.Pending())
	}
}

// Property: however events are scheduled, they execute in nondecreasing
// time order with FIFO tie-break.
func TestEngineHeapProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) > 500 {
			delays = delays[:500]
		}
		e := NewEngine()
		type stamp struct {
			when Cycle
			seq  int
		}
		var got []stamp
		for i, d := range delays {
			i, when := i, Cycle(d)
			e.At(when, func() { got = append(got, stamp{when, i}) })
		}
		e.RunAll()
		for i := 1; i < len(got); i++ {
			if got[i].when < got[i-1].when {
				return false
			}
			if got[i].when == got[i-1].when && got[i].seq < got[i-1].seq {
				return false
			}
		}
		return len(got) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestRNGZeroSeedUsable(t *testing.T) {
	r := NewRNG(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Fatalf("zero-seeded RNG repeated values: %d unique of 100", len(seen))
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d out of range", v)
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestRNGFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if mean < 0.49 || mean > 0.51 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestRNGForkIndependence(t *testing.T) {
	r := NewRNG(3)
	a := r.Fork(1)
	b := r.Fork(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("forked streams collided %d times", same)
	}
}

func TestRNGForkStableUnderParentUse(t *testing.T) {
	r1 := NewRNG(3)
	f1 := r1.Fork(5)
	r2 := NewRNG(3)
	r2.Uint64() // Fork must not depend on parent's consumed count? It does
	// depend on parent state; so fork before consuming. Verify the documented
	// behaviour instead: forking the same id from identical states matches.
	r3 := NewRNG(3)
	f3 := r3.Fork(5)
	for i := 0; i < 10; i++ {
		if f1.Uint64() != f3.Uint64() {
			t.Fatal("fork of identical state diverged")
		}
	}
}

func TestRNGPanics(t *testing.T) {
	r := NewRNG(1)
	for _, fn := range []func(){
		func() { r.Intn(0) },
		func() { r.Intn(-5) },
		func() { r.Uint64n(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	e := NewEngine()
	for i := 0; i < b.N; i++ {
		e.Schedule(Cycle(i%64), func() {})
		if e.Pending() > 1024 {
			e.Run(e.Now() + 64)
		}
	}
	e.RunAll()
}
