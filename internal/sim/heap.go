package sim

// initialHeapCap pre-sizes the event heap so steady-state simulations
// (hundreds of in-flight events across cores, caches and controllers)
// never grow it during the measured window.
const initialHeapCap = 1024

// eventHeap is a binary min-heap of events ordered by (when, seq). It is
// the reference scheduler implementation and also serves as the calendar
// queue's overflow store for far-future events.
type eventHeap struct {
	evs []event
}

func newEventHeap() *eventHeap {
	return &eventHeap{evs: make([]event, 0, initialHeapCap)}
}

func (h *eventHeap) name() string { return BinaryHeap.String() }

func (h *eventHeap) len() int { return len(h.evs) }

func (h *eventHeap) popLE(limit Cycle) (event, bool) {
	if len(h.evs) == 0 || h.evs[0].when > limit {
		return event{}, false
	}
	return h.pop(), true
}

// push inserts ev, sifting the insertion hole up instead of swapping so
// each level costs one copy.
func (h *eventHeap) push(ev event) {
	h.evs = append(h.evs, ev)
	i := len(h.evs) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !less(ev, h.evs[parent]) {
			break
		}
		h.evs[i] = h.evs[parent]
		i = parent
	}
	h.evs[i] = ev
}

// pop removes and returns the earliest event, sifting the root hole down
// with single copies.
func (h *eventHeap) pop() event {
	top := h.evs[0]
	last := len(h.evs) - 1
	moved := h.evs[last]
	h.evs[last] = event{} // release callback references
	h.evs = h.evs[:last]
	if last == 0 {
		return top
	}
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := -1
		if l < last && less(h.evs[l], moved) {
			smallest = l
		}
		if r < last && less(h.evs[r], h.evs[l]) && less(h.evs[r], moved) {
			smallest = r
		}
		if smallest < 0 {
			break
		}
		h.evs[i] = h.evs[smallest]
		i = smallest
	}
	h.evs[i] = moved
	return top
}

func less(a, b event) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}
