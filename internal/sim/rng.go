package sim

// RNG is a small, fast, seedable xorshift64* generator. The simulator never
// uses math/rand so that results are identical across Go versions and runs.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed (zero is remapped so the
// generator never degenerates to a fixed point).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a value in [0, n). It panics when n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a value in [0, n). It panics when n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("sim: Uint64n with zero bound")
	}
	return r.Uint64() % n
}

// Float64 returns a value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Fork derives an independent stream; distinct ids produce distinct streams
// regardless of how many values the parent has consumed.
func (r *RNG) Fork(id uint64) *RNG {
	// SplitMix64 on (state ^ id) keeps forked streams well separated.
	z := r.state ^ (id+1)*0xBF58476D1CE4E5B9
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return NewRNG(z)
}
