package sim

import "math/bits"

// RNG is a small, fast, seedable xorshift64* generator. The simulator never
// uses math/rand so that results are identical across Go versions and runs.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed (zero is remapped so the
// generator never degenerates to a fixed point).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a value in [0, n). It panics when n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a value in [0, n). It panics when n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("sim: Uint64n with zero bound")
	}
	return r.Uint64() % n
}

// Float64 returns a value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// State exposes the raw generator state for register-resident batch
// loops: a hot loop Takes the state once, advances it with StateStep and
// reads draws with StateRaw53/StateUint64, then SetStates it back — the
// same recurrence Uint64/Raw53 apply, one memory round-trip per batch
// instead of per draw. The stream generator (workload.Stream.NextBatch)
// is the canonical user.
func (r *RNG) State() uint64 { return r.state }

// SetState stores back a state obtained from State and advanced by
// StateStep. Interleaving SetState with other draws on the same RNG
// reorders the stream; batch loops own the RNG for their duration.
func (r *RNG) SetState(s uint64) { r.state = s }

// StateStep advances a state by one xorshift64* step (the Uint64
// recurrence).
func StateStep(x uint64) uint64 {
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	return x
}

// StateUint64 reads the draw Uint64 would return at state x (after
// StateStep).
func StateUint64(x uint64) uint64 { return x * 0x2545F4914F6CDD1D }

// StateRaw53 reads the draw Raw53 would return at state x (after
// StateStep).
func StateRaw53(x uint64) float64 { return float64(x * 0x2545F4914F6CDD1D >> 11) }

// Raw53 returns the next draw in the raw comparand domain of Threshold,
// skipping Float64's division:
//
//	r.Float64() < p  ⟺  r.Raw53() < Threshold(p)
//
// The equivalence is bit-exact, not approximate: Float64 is (u>>11)·2⁻⁵³
// with both the 53-bit mantissa and the power-of-two scaling exact, and
// Threshold scales p by 2⁵³ exactly (pure exponent shift, no rounding for
// any p of interest), so both comparisons order the same two real numbers.
// Hot paths that test many probabilities per draw precompute thresholds
// once and avoid a hardware divide per test.
func (r *RNG) Raw53() float64 { return float64(r.Uint64() >> 11) }

// Threshold maps a probability into Raw53's comparand domain.
func Threshold(p float64) float64 { return p * float64(1<<53) }

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Divisor precomputes the 128-bit reciprocal of a fixed divisor so that
// Mod costs three multiplies instead of a hardware divide (Lemire's
// fastmod). Mod(n) equals n % d exactly for every n; hot loops that draw
// many bounded values against the same bound precompute one Divisor and
// use rng.Uint64Mod instead of Uint64n.
type Divisor struct {
	d        uint64
	mHi, mLo uint64 // M = floor((2^128-1)/d) + 1
}

// NewDivisor prepares a reciprocal for d > 0.
func NewDivisor(d uint64) Divisor {
	if d == 0 {
		panic("sim: zero divisor")
	}
	// M = floor((2^128 - 1) / d) + 1, by 128/64 long division of all-ones.
	qHi := ^uint64(0) / d
	rem := ^uint64(0) % d
	qLo, _ := bits.Div64(rem, ^uint64(0), d)
	lo, carry := bits.Add64(qLo, 1, 0)
	return Divisor{d: d, mHi: qHi + carry, mLo: lo}
}

// N returns the divisor value.
func (dv Divisor) N() uint64 { return dv.d }

// Mod returns n % d using the precomputed reciprocal: lowbits = M·n mod
// 2^128, then ⌊lowbits·d / 2^128⌋, which Lemire proves equals n mod d.
func (dv Divisor) Mod(n uint64) uint64 {
	// lowbits = (mHi·2^64 + mLo)·n mod 2^128.
	lbHi, lbLo := bits.Mul64(dv.mLo, n)
	lbHi += dv.mHi * n
	// result = high 64 bits of (lbHi·2^64 + lbLo)·d >> 64, i.e. the
	// 128-bit product's bits [128, 192).
	h1, _ := bits.Mul64(lbLo, dv.d)
	h2, l2 := bits.Mul64(lbHi, dv.d)
	_, carry := bits.Add64(h1, l2, 0)
	return h2 + carry
}

// Uint64Mod returns a value in [0, dv.N()), consuming one Uint64 draw —
// identical to Uint64n(dv.N()) without the hardware divide.
func (r *RNG) Uint64Mod(dv Divisor) uint64 { return dv.Mod(r.Uint64()) }

// Fork derives an independent stream; distinct ids produce distinct streams
// regardless of how many values the parent has consumed.
func (r *RNG) Fork(id uint64) *RNG {
	// SplitMix64 on (state ^ id) keeps forked streams well separated.
	z := r.state ^ (id+1)*0xBF58476D1CE4E5B9
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return NewRNG(z)
}
