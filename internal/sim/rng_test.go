package sim

import (
	"math"
	"testing"
)

// TestRaw53ThresholdMatchesFloat64 proves the bit-exact equivalence the
// hot paths rely on: for any probability p and any generator state,
// Float64() < p and Raw53() < Threshold(p) agree. Two clones of the same
// generator draw in lockstep so both see identical raw bits.
func TestRaw53ThresholdMatchesFloat64(t *testing.T) {
	probs := []float64{0, 1e-12, 0.001, 0.03, 1.0 / 12, 0.25, 0.5, 0.9, 0.95, 0.999999, 1}
	for _, p := range probs {
		a := NewRNG(42)
		b := NewRNG(42)
		th := Threshold(p)
		for i := 0; i < 200_000; i++ {
			want := a.Float64() < p
			got := b.Raw53() < th
			if want != got {
				t.Fatalf("p=%v draw %d: Float64 compare %v, Raw53 compare %v", p, i, want, got)
			}
		}
	}
}

// TestRaw53Range: the raw domain is [0, 2^53), matching Threshold scaling.
func TestRaw53Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 100_000; i++ {
		v := r.Raw53()
		if v < 0 || v >= float64(1<<53) {
			t.Fatalf("Raw53 = %v outside [0, 2^53)", v)
		}
		if v != math.Trunc(v) {
			t.Fatalf("Raw53 = %v not integral", v)
		}
	}
}

// TestDivisorModExact checks Divisor.Mod against the hardware remainder
// for adversarial divisors (1, 2, powers of two, odd, huge) and
// adversarial operands (0, d-1, d, d+1, multiples, near 2^64, random).
func TestDivisorModExact(t *testing.T) {
	divisors := []uint64{
		1, 2, 3, 5, 7, 64, 127, 128, 4096,
		1<<20 + 64*10007, // the workload stride shapes
		1<<32 + 64*101117,
		1 << 62, 1<<63 - 1, 1 << 63, ^uint64(0),
	}
	r := NewRNG(99)
	for _, d := range divisors {
		dv := NewDivisor(d)
		if dv.N() != d {
			t.Fatalf("N() = %d, want %d", dv.N(), d)
		}
		edges := []uint64{0, 1, d - 1, d, d + 1, 2*d - 1, 2 * d, ^uint64(0), ^uint64(0) - 1, 1 << 63}
		for _, n := range edges {
			if got, want := dv.Mod(n), n%d; got != want {
				t.Fatalf("d=%d: Mod(%d) = %d, want %d", d, n, got, want)
			}
		}
		for i := 0; i < 300_000; i++ {
			n := r.Uint64()
			if got, want := dv.Mod(n), n%d; got != want {
				t.Fatalf("d=%d: Mod(%d) = %d, want %d", d, n, got, want)
			}
		}
	}
}

func TestNewDivisorZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDivisor(0)
}

// TestUint64ModMatchesUint64n: the two draw paths consume the same
// generator state and produce the same value.
func TestUint64ModMatchesUint64n(t *testing.T) {
	for _, d := range []uint64{1, 3, 1000, 1<<26 + 64*10007} {
		a, b := NewRNG(5), NewRNG(5)
		dv := NewDivisor(d)
		for i := 0; i < 50_000; i++ {
			if x, y := a.Uint64n(d), b.Uint64Mod(dv); x != y {
				t.Fatalf("d=%d draw %d: Uint64n %d vs Uint64Mod %d", d, i, x, y)
			}
		}
	}
}
