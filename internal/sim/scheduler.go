package sim

import "fmt"

// SchedulerKind selects the Engine's event-queue implementation.
type SchedulerKind uint8

const (
	// CalendarQueue is the default scheduler: a bucketed time wheel whose
	// sliding window covers the short completion delays that dominate the
	// simulated systems (vault and LLC accesses of a few tens of cycles),
	// giving O(1) amortized schedule/pop. Far-future events overflow to a
	// binary heap and migrate into the window lazily as it advances.
	CalendarQueue SchedulerKind = iota
	// BinaryHeap is the previous O(log n) scheduler, retained as the
	// reference implementation for differential testing and comparison
	// benchmarks.
	BinaryHeap
)

func (k SchedulerKind) String() string {
	switch k {
	case CalendarQueue:
		return "calendar-queue"
	case BinaryHeap:
		return "binary-heap"
	default:
		return fmt.Sprintf("SchedulerKind(%d)", uint8(k))
	}
}

// scheduler is the event-queue contract behind Engine. Implementations must
// order events by (when, seq): FIFO among events scheduled for the same
// cycle. The engine's determinism contract — identical runs execute events
// in identical order — reduces to this property, which the randomized
// differential test in scheduler_test.go checks across implementations.
//
// Callers only push events with when >= the when of the last popped event
// (the engine enforces "no scheduling in the past"), which lets the
// calendar queue advance its window monotonically.
type scheduler interface {
	push(ev event)
	// popLE removes and returns the earliest event if its cycle is <= limit;
	// ok is false when the queue is empty or the earliest event is later.
	popLE(limit Cycle) (ev event, ok bool)
	len() int
	name() string
}

func newScheduler(kind SchedulerKind) scheduler {
	switch kind {
	case CalendarQueue:
		return newCalendarQueue()
	case BinaryHeap:
		return newEventHeap()
	default:
		panic(fmt.Sprintf("sim: unknown scheduler kind %d", uint8(kind)))
	}
}
