package sim

import (
	"testing"
	"testing/quick"
)

// schedulerKinds are every implementation the differential tests compare.
var schedulerKinds = []SchedulerKind{CalendarQueue, BinaryHeap}

func TestSchedulerKindString(t *testing.T) {
	if CalendarQueue.String() != "calendar-queue" || BinaryHeap.String() != "binary-heap" {
		t.Fatalf("kind names: %q %q", CalendarQueue, BinaryHeap)
	}
	if NewEngine().SchedulerName() != "calendar-queue" {
		t.Fatalf("default scheduler is %q, want calendar-queue", NewEngine().SchedulerName())
	}
	if NewEngineWithScheduler(BinaryHeap).SchedulerName() != "binary-heap" {
		t.Fatal("NewEngineWithScheduler ignored the kind")
	}
}

// trace is one engine's observable execution record.
type trace struct {
	recs     []traceRec
	executed uint64
	now      Cycle
}

type traceRec struct {
	when Cycle
	id   uint64
}

// driveTrace runs a deterministic but randomized scenario on e: a mix of
// Schedule/At/ScheduleArg events over short (bucket-path) and far-future
// (overflow-path) delays, callbacks that schedule children, and interleaved
// bounded Run calls. Every decision derives from seed or from event ids, so
// two engines given the same seed diverge only if their event orders do.
func driveTrace(e *Engine, seed uint64) trace {
	const (
		topEvents   = 300
		budget      = 6000 // total events, bounds the fan-out
		shortSpan   = 200  // within the calendar window
		longSpan    = 5000 // mostly beyond it
		maxChildren = 3
	)
	rng := NewRNG(seed)
	var tr trace
	var nextID uint64

	var schedule func(delay Cycle)
	onRun := func(id uint64) {
		tr.recs = append(tr.recs, traceRec{when: e.now, id: id})
		r := NewRNG(id*0x9E3779B97F4A7C15 + seed)
		for k := uint64(0); k < r.Uint64n(maxChildren); k++ {
			if nextID >= budget {
				return
			}
			span := uint64(shortSpan)
			if r.Uint64n(10) == 0 {
				span = longSpan
			}
			schedule(Cycle(r.Uint64n(span)))
		}
	}
	schedule = func(delay Cycle) {
		id := nextID
		nextID++
		if id%2 == 0 {
			e.ScheduleArg(delay, onRun, id)
		} else {
			e.Schedule(delay, func() { onRun(id) })
		}
	}

	for i := 0; i < topEvents; i++ {
		span := uint64(shortSpan)
		if rng.Uint64n(4) == 0 {
			span = longSpan
		}
		schedule(Cycle(rng.Uint64n(span)))
		// Occasionally drain up to a bound, exercising Run's limit handling
		// (including limits that land between pending events).
		if rng.Uint64n(8) == 0 {
			e.Run(e.now + Cycle(rng.Uint64n(longSpan/2)))
		}
	}
	e.RunAll()
	tr.executed = e.Executed()
	tr.now = e.Now()
	return tr
}

// TestSchedulerDifferential is the determinism cross-check demanded by the
// calendar-queue design: under randomized scenarios, the calendar queue
// must execute the exact event sequence the reference heap executes.
func TestSchedulerDifferential(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		ref := driveTrace(NewEngineWithScheduler(BinaryHeap), seed)
		got := driveTrace(NewEngineWithScheduler(CalendarQueue), seed)
		if got.executed != ref.executed || got.now != ref.now {
			t.Fatalf("seed %d: executed/now = %d/%d, reference %d/%d",
				seed, got.executed, got.now, ref.executed, ref.now)
		}
		if len(got.recs) != len(ref.recs) {
			t.Fatalf("seed %d: %d records vs reference %d", seed, len(got.recs), len(ref.recs))
		}
		for i := range ref.recs {
			if got.recs[i] != ref.recs[i] {
				t.Fatalf("seed %d: event %d = %+v, reference %+v",
					seed, i, got.recs[i], ref.recs[i])
			}
		}
	}
}

// Property form: arbitrary delay lists execute in identical order on both
// schedulers, including the overflow and window-jump paths.
func TestSchedulerDifferentialProperty(t *testing.T) {
	f := func(delays []uint16, limits []uint16) bool {
		if len(delays) > 400 {
			delays = delays[:400]
		}
		run := func(kind SchedulerKind) []traceRec {
			e := NewEngineWithScheduler(kind)
			var recs []traceRec
			li := 0
			for i, d := range delays {
				id := uint64(i)
				e.AtArg(e.now+Cycle(d), func(arg uint64) {
					recs = append(recs, traceRec{when: e.now, id: arg})
				}, id)
				if len(limits) > 0 && i%7 == 3 {
					e.Run(e.now + Cycle(limits[li%len(limits)]))
					li++
				}
			}
			e.RunAll()
			return recs
		}
		a, b := run(BinaryHeap), run(CalendarQueue)
		if len(a) != len(b) || len(a) != len(delays) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// The ordering unit tests from engine_test.go, replayed on every kind so
// the reference heap cannot silently rot.
func TestSchedulerKindsOrdering(t *testing.T) {
	for _, kind := range schedulerKinds {
		e := NewEngineWithScheduler(kind)
		var order []int
		e.Schedule(10, func() { order = append(order, 2) })
		e.Schedule(5, func() { order = append(order, 1) })
		for i := 0; i < 50; i++ {
			i := i
			e.Schedule(10, func() { order = append(order, 3+i) })
		}
		e.Schedule(5+calendarWindow*3, func() { order = append(order, 53) })
		e.RunAll()
		if len(order) != 53 {
			t.Fatalf("%v: executed %d events, want 53", kind, len(order))
		}
		for i, v := range order {
			if v != i+1 {
				t.Fatalf("%v: order[%d] = %d, want %d", kind, i, v, i+1)
			}
		}
		if e.Pending() != 0 {
			t.Fatalf("%v: %d pending after RunAll", kind, e.Pending())
		}
	}
}

// Run must not advance the window past its limit: events scheduled after a
// bounded Run, at cycles the queue has already inspected beyond, must still
// execute in correct order. This is the regression guard for the calendar
// queue's "never settle past limit" rule.
func TestCalendarRunLimitThenEarlierSchedule(t *testing.T) {
	for _, kind := range schedulerKinds {
		e := NewEngineWithScheduler(kind)
		var order []Cycle
		log := func() { order = append(order, e.Now()) }
		e.At(100, log)
		e.At(100+calendarWindow*4, log) // far future: parks in overflow
		e.Run(300)                      // pops 100; must not commit the window to the far event
		if e.Now() != 300 {
			t.Fatalf("%v: Now = %d after Run(300), want 300", kind, e.Now())
		}
		e.At(350, log) // between the limit and the far-future event
		e.RunAll()
		want := []Cycle{100, 350, 100 + calendarWindow*4}
		if len(order) != len(want) {
			t.Fatalf("%v: executed %v, want %v", kind, order, want)
		}
		for i := range want {
			if order[i] != want[i] {
				t.Fatalf("%v: executed %v, want %v", kind, order, want)
			}
		}
	}
}

// benchScheduler measures the steady-state schedule+dispatch cost of the
// simulator's dominant pattern: short completion delays with a stable
// population of in-flight events.
func benchScheduler(b *testing.B, kind SchedulerKind, farEvery int) {
	e := NewEngineWithScheduler(kind)
	fn := func(uint64) {}
	for i := 0; i < 512; i++ {
		e.ScheduleArg(Cycle(i%48+1), fn, 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		delay := Cycle(i%48 + 1)
		if farEvery > 0 && i%farEvery == 0 {
			delay = Cycle(i%1500 + calendarWindow)
		}
		e.ScheduleArg(delay, fn, uint64(i))
		e.Step()
	}
}

func BenchmarkSchedulerCalendarShortDelays(b *testing.B) { benchScheduler(b, CalendarQueue, 0) }
func BenchmarkSchedulerHeapShortDelays(b *testing.B)     { benchScheduler(b, BinaryHeap, 0) }
func BenchmarkSchedulerCalendarMixedDelays(b *testing.B) { benchScheduler(b, CalendarQueue, 16) }
func BenchmarkSchedulerHeapMixedDelays(b *testing.B)     { benchScheduler(b, BinaryHeap, 16) }
