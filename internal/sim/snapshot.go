package sim

import (
	"fmt"

	"repro/internal/checkpoint"
)

// Snapshot serializes the engine clock and event counters. Checkpoints
// are cut between simulation phases, when no events are pending — a
// calendar queue full of scheduled closures cannot be serialized — so
// Snapshot refuses a busy engine via the sticky writer error.
func (e *Engine) Snapshot(w *checkpoint.Writer) {
	w.Section("sim.Engine")
	w.Bool(e.Pending() == 0)
	w.U64(uint64(e.now))
	w.U64(e.seq)
	w.U64(e.nEvts)
}

// Restore overwrites a freshly constructed engine. Both the snapshotted
// engine and the restore target must be quiescent (no pending events).
func (e *Engine) Restore(r *checkpoint.Reader) error {
	if err := r.Section("sim.Engine"); err != nil {
		return err
	}
	quiescent := r.Bool()
	now := Cycle(r.U64())
	seq := r.U64()
	nEvts := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if !quiescent {
		return fmt.Errorf("sim: checkpoint captured an engine with pending events")
	}
	if e.Pending() != 0 {
		return fmt.Errorf("sim: restore target engine has %d pending events", e.Pending())
	}
	e.now = now
	e.seq = seq
	e.nEvts = nEvts
	return nil
}
