// Package stats provides the small numeric helpers the experiment harness
// needs: geometric means, normalization, and percentage formatting.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Geomean returns the geometric mean of xs. It panics on empty input or on
// non-positive values, which always indicate a harness bug.
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: geomean of empty slice")
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: geomean of non-positive value %v", x))
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Mean returns the arithmetic mean of xs. It panics on empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: mean of empty slice")
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Normalize divides each element by base, returning a new slice.
func Normalize(xs []float64, base float64) []float64 {
	if base == 0 {
		panic("stats: normalize by zero")
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x / base
	}
	return out
}

// Pct formats a ratio r as a signed percentage change, e.g. 1.28 -> "+28.0%".
func Pct(r float64) string {
	return fmt.Sprintf("%+.1f%%", (r-1)*100)
}

// Ratio formats r with two decimals, e.g. "1.28x".
func Ratio(r float64) string { return fmt.Sprintf("%.2fx", r) }

// Min returns the smallest element of xs. It panics on empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs. It panics on empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the median of xs (the mean of the middle pair for even
// lengths). It panics on empty input.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: median of empty slice")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Counter is a named monotonically increasing event counter.
type Counter struct {
	Name  string
	Value uint64
}

// Inc adds n to the counter.
func (c *Counter) Inc(n uint64) { c.Value += n }

// RatioOf returns c.Value / total, or 0 when total is zero.
func RatioOf(part, total uint64) float64 {
	if total == 0 {
		return 0
	}
	return float64(part) / float64(total)
}
