package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGeomean(t *testing.T) {
	got := Geomean([]float64{1, 4})
	if math.Abs(got-2) > 1e-12 {
		t.Fatalf("Geomean(1,4) = %v, want 2", got)
	}
	got = Geomean([]float64{2, 2, 2})
	if math.Abs(got-2) > 1e-12 {
		t.Fatalf("Geomean(2,2,2) = %v, want 2", got)
	}
}

func TestGeomeanPanics(t *testing.T) {
	for _, xs := range [][]float64{nil, {}, {1, 0}, {-1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for %v", xs)
				}
			}()
			Geomean(xs)
		}()
	}
}

// Property: geomean lies between min and max.
func TestGeomeanBounds(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)/16 + 0.5 // strictly positive
		}
		g := Geomean(xs)
		return g >= Min(xs)-1e-9 && g <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMean(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean wrong")
	}
}

func TestNormalize(t *testing.T) {
	out := Normalize([]float64{2, 4, 8}, 2)
	want := []float64{1, 2, 4}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("Normalize = %v, want %v", out, want)
		}
	}
}

func TestNormalizeDoesNotMutate(t *testing.T) {
	in := []float64{2, 4}
	Normalize(in, 2)
	if in[0] != 2 || in[1] != 4 {
		t.Fatal("Normalize mutated input")
	}
}

func TestPctAndRatio(t *testing.T) {
	if Pct(1.28) != "+28.0%" {
		t.Fatalf("Pct(1.28) = %q", Pct(1.28))
	}
	if Pct(0.9) != "-10.0%" {
		t.Fatalf("Pct(0.9) = %q", Pct(0.9))
	}
	if Ratio(1.275) != "1.27x" && Ratio(1.275) != "1.28x" {
		t.Fatalf("Ratio(1.275) = %q", Ratio(1.275))
	}
}

func TestMinMaxMedian(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if Min(xs) != 1 || Max(xs) != 5 || Median(xs) != 3 {
		t.Fatalf("min/max/median = %v %v %v", Min(xs), Max(xs), Median(xs))
	}
	if Median([]float64{1, 2, 3, 4}) != 2.5 {
		t.Fatal("even-length median wrong")
	}
}

func TestCounter(t *testing.T) {
	c := Counter{Name: "hits"}
	c.Inc(3)
	c.Inc(2)
	if c.Value != 5 {
		t.Fatalf("Counter = %d, want 5", c.Value)
	}
}

func TestRatioOf(t *testing.T) {
	if RatioOf(1, 0) != 0 {
		t.Fatal("RatioOf with zero total should be 0")
	}
	if RatioOf(1, 4) != 0.25 {
		t.Fatal("RatioOf wrong")
	}
}
