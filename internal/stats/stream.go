package stats

import (
	"fmt"
	"math"
)

// This file is the streaming half of the package: online accumulators that
// summarize an unbounded sequence of per-window observations in O(1)
// memory, so paper-scale multi-window sweeps never retain per-window
// history. The determinism contract (DESIGN.md §9): accumulators are pure
// functions of the observation sequence, so any two runs that produce the
// same windows produce bit-identical summaries.

// Welford is an online mean/variance accumulator (Welford 1962) with
// streaming min/max. The zero value is ready to use. Add is O(1) and
// allocation-free; the state is three floats plus the extrema, regardless
// of how many observations stream through.
type Welford struct {
	n        uint64
	mean, m2 float64
	min, max float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations added.
func (w *Welford) N() uint64 { return w.n }

// Mean returns the running mean (NaN before any observation).
func (w *Welford) Mean() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.mean
}

// Variance returns the sample (n-1) variance (NaN below two observations).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return math.NaN()
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Min returns the smallest observation (NaN before any observation).
func (w *Welford) Min() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.min
}

// Max returns the largest observation (NaN before any observation).
func (w *Welford) Max() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.max
}

// CI returns the two-sided Student-t confidence interval of the mean at
// the given confidence level (e.g. 0.95). With fewer than two
// observations the interval degenerates to [mean, mean] — there is no
// variance estimate to widen it with.
func (w *Welford) CI(confidence float64) (lo, hi float64) {
	if confidence <= 0 || confidence >= 1 {
		panic(fmt.Sprintf("stats: confidence %v outside (0,1)", confidence))
	}
	m := w.Mean()
	if w.n < 2 {
		return m, m
	}
	half := TQuantile(1-(1-confidence)/2, float64(w.n-1)) * math.Sqrt(w.Variance()/float64(w.n))
	return m - half, m + half
}

// --- Student-t quantile ---------------------------------------------------

// TQuantile returns the p-quantile of the Student-t distribution with df
// degrees of freedom (the critical value t such that P(T <= t) = p). It
// inverts the exact CDF by bisection, so it is deterministic and accurate
// to ~1e-12 — no lookup tables, no external dependencies.
func TQuantile(p, df float64) float64 {
	if !(p > 0 && p < 1) {
		panic(fmt.Sprintf("stats: t quantile of p=%v outside (0,1)", p))
	}
	if !(df > 0) {
		panic(fmt.Sprintf("stats: t quantile with df=%v <= 0", df))
	}
	if p == 0.5 {
		return 0
	}
	if p < 0.5 {
		return -TQuantile(1-p, df)
	}
	// Bracket: grow hi until the CDF passes p.
	lo, hi := 0.0, 1.0
	for TCDF(hi, df) < p {
		lo = hi
		hi *= 2
		if hi > 1e300 {
			break
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if mid == lo || mid == hi {
			break // bisection converged to adjacent floats
		}
		if TCDF(mid, df) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// TCDF returns P(T <= t) for the Student-t distribution with df degrees of
// freedom, via the regularized incomplete beta function.
func TCDF(t, df float64) float64 {
	if t == 0 {
		return 0.5
	}
	x := df / (df + t*t)
	tail := 0.5 * regIncBeta(df/2, 0.5, x)
	if t > 0 {
		return 1 - tail
	}
	return tail
}

// regIncBeta computes the regularized incomplete beta function I_x(a, b)
// with the continued-fraction expansion (Numerical Recipes §6.4).
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	lab, _ := math.Lgamma(a + b)
	front := math.Exp(lab - la - lb + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x) / a
	}
	return 1 - front*betacf(b, a, 1-x)/b
}

// betacf is the continued fraction for regIncBeta, evaluated with Lentz's
// method.
func betacf(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-16
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm, m2 := float64(m), float64(2*m)
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// --- Windowed emission ----------------------------------------------------

// WindowEmitter converts cumulative monotonically increasing counters into
// per-window deltas, folding every delta into a per-metric Welford
// accumulator as it streams past. It replaces the snapshot-subtract
// pattern (retain a Stats copy per window, subtract at the end) with
// incremental emission: memory is O(1) per metric — previous cumulative
// value, reusable delta buffer, accumulator — regardless of how many
// windows stream through.
//
// Because each window's delta is the exact integer subtraction
// cum[w] - cum[w-1], the emitted sequence is bit-identical to what
// per-window snapshot subtraction produces (DESIGN.md §9).
type WindowEmitter struct {
	names   []string
	prev    []uint64
	delta   []uint64
	accs    []Welford
	windows uint64
	primed  bool
}

// NewWindowEmitter creates an emitter for the named metrics. Counter
// slices passed to Prime and Emit must use the same order and length.
func NewWindowEmitter(names ...string) *WindowEmitter {
	if len(names) == 0 {
		panic("stats: window emitter with no metrics")
	}
	return &WindowEmitter{
		names: names,
		prev:  make([]uint64, len(names)),
		delta: make([]uint64, len(names)),
		accs:  make([]Welford, len(names)),
	}
}

// Prime records the cumulative counter values at the start of the first
// window (typically after warm-up, so warm-up pollutes nothing).
func (e *WindowEmitter) Prime(cum []uint64) {
	e.checkLen(cum)
	copy(e.prev, cum)
	e.primed = true
}

// Emit closes one window: it computes the per-metric deltas since the
// previous Prime/Emit, folds them into the accumulators, and returns the
// delta slice. The returned slice is reused by the next Emit — callers
// that need to retain it must copy. Emit is allocation-free.
func (e *WindowEmitter) Emit(cum []uint64) []uint64 {
	e.checkLen(cum)
	if !e.primed {
		panic("stats: window emitter Emit before Prime")
	}
	for i, c := range cum {
		p := e.prev[i]
		if c < p {
			panic("stats: window emitter counter " + e.names[i] + " decreased")
		}
		e.delta[i] = c - p
		e.prev[i] = c
		e.accs[i].Add(float64(c - p))
	}
	e.windows++
	return e.delta
}

// Windows returns the number of windows emitted so far.
func (e *WindowEmitter) Windows() uint64 { return e.windows }

// Metrics returns the number of tracked metrics.
func (e *WindowEmitter) Metrics() int { return len(e.names) }

// Name returns metric i's name.
func (e *WindowEmitter) Name(i int) string { return e.names[i] }

// Acc returns metric i's per-window accumulator.
func (e *WindowEmitter) Acc(i int) *Welford { return &e.accs[i] }

func (e *WindowEmitter) checkLen(cum []uint64) {
	if len(cum) != len(e.names) {
		panic(fmt.Sprintf("stats: window emitter got %d counters, want %d", len(cum), len(e.names)))
	}
}
