package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// twoPass is the offline reference: mean in one pass, centered sum of
// squares in a second. It is numerically stable, so it anchors the
// Welford differential even on catastrophic-cancellation inputs.
func twoPass(xs []float64) (mean, variance float64) {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	mean = sum / float64(len(xs))
	if len(xs) < 2 {
		return mean, math.NaN()
	}
	ss := 0.0
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, ss / float64(len(xs)-1)
}

func relClose(a, b, tol float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale == 0 {
		return true
	}
	return math.Abs(a-b) <= tol*scale
}

// Property: Welford's online mean/variance match the two-pass reference
// on randomized inputs.
func TestWelfordMatchesTwoPassProperty(t *testing.T) {
	f := func(raw []int32) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, len(raw))
		var w Welford
		for i, v := range raw {
			xs[i] = float64(v) / 7.0
			w.Add(xs[i])
		}
		mean, variance := twoPass(xs)
		return relClose(w.Mean(), mean, 1e-9) && relClose(w.Variance(), variance, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Catastrophic cancellation: observations of the form 1e9 + small, where
// a naive sum-of-squares accumulator (E[x²] - E[x]²) loses every
// significant digit of the variance. Welford must agree with the
// stable two-pass reference.
func TestWelfordCatastrophicCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5EED))
	const n = 10_000
	xs := make([]float64, n)
	var w Welford
	naiveSum, naiveSumSq := 0.0, 0.0
	for i := range xs {
		xs[i] = 1e9 + rng.Float64() // variance ~ 1/12, mean ~ 1e9 + 0.5
		w.Add(xs[i])
		naiveSum += xs[i]
		naiveSumSq += xs[i] * xs[i]
	}
	mean, variance := twoPass(xs)
	if !relClose(w.Mean(), mean, 1e-12) {
		t.Errorf("mean: welford %v vs two-pass %v", w.Mean(), mean)
	}
	if !relClose(w.Variance(), variance, 1e-6) {
		t.Errorf("variance: welford %v vs two-pass %v", w.Variance(), variance)
	}
	// Demonstrate the test has teeth: the naive accumulator really does
	// collapse on this input (if it happened to survive, the input isn't
	// catastrophic enough to pin anything).
	naiveVar := (naiveSumSq - naiveSum*naiveSum/n) / (n - 1)
	if relClose(naiveVar, variance, 1e-3) {
		t.Fatalf("naive sum-of-squares variance %v unexpectedly survived (reference %v); strengthen the input", naiveVar, variance)
	}
}

func TestWelfordMinMax(t *testing.T) {
	var w Welford
	if !math.IsNaN(w.Min()) || !math.IsNaN(w.Max()) || !math.IsNaN(w.Mean()) {
		t.Fatal("empty accumulator should report NaN")
	}
	for _, x := range []float64{3, -1, 7, 2, -1, 7} {
		w.Add(x)
	}
	if w.Min() != -1 || w.Max() != 7 {
		t.Fatalf("min/max = %v/%v, want -1/7", w.Min(), w.Max())
	}
	if w.N() != 6 {
		t.Fatalf("n = %d, want 6", w.N())
	}
}

// TQuantile against standard table values (two-sided 95% critical values
// are the ones the CI path uses).
func TestTQuantileTableValues(t *testing.T) {
	cases := []struct {
		p, df, want float64
	}{
		{0.975, 1, 12.7062047362},
		{0.975, 2, 4.3026527297},
		{0.975, 10, 2.2281388520},
		{0.975, 30, 2.0422724563},
		{0.975, 1000, 1.9623390808},
		{0.95, 5, 2.0150483733},
		{0.995, 7, 3.4994832974},
		{0.5, 12, 0},
	}
	for _, c := range cases {
		got := TQuantile(c.p, c.df)
		if math.Abs(got-c.want) > 1e-6 {
			t.Errorf("TQuantile(%v, %v) = %.10f, want %.10f", c.p, c.df, got, c.want)
		}
		// Symmetry: the lower-tail quantile is the negation.
		if c.p != 0.5 {
			if lo := TQuantile(1-c.p, c.df); math.Abs(lo+got) > 1e-9 {
				t.Errorf("TQuantile(%v, %v) = %v, want %v", 1-c.p, c.df, lo, -got)
			}
		}
	}
}

// TQuantile must be the inverse of TCDF across a parameter sweep.
func TestTQuantileInvertsCDF(t *testing.T) {
	for _, df := range []float64{1, 2, 3, 9, 29, 100, 5000} {
		for _, p := range []float64{0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.975, 0.999} {
			q := TQuantile(p, df)
			if back := TCDF(q, df); math.Abs(back-p) > 1e-9 {
				t.Errorf("TCDF(TQuantile(%v, %v)) = %v", p, df, back)
			}
		}
	}
}

func TestWelfordCI(t *testing.T) {
	// Constant observations: zero variance, interval collapses to the mean.
	var c Welford
	for i := 0; i < 50; i++ {
		c.Add(4.25)
	}
	if lo, hi := c.CI(0.95); lo != 4.25 || hi != 4.25 {
		t.Fatalf("constant CI = [%v, %v], want [4.25, 4.25]", lo, hi)
	}

	// Known sample: CI must match the textbook formula exactly.
	var w Welford
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		w.Add(x)
	}
	mean, variance := twoPass(xs)
	half := TQuantile(0.975, float64(len(xs)-1)) * math.Sqrt(variance/float64(len(xs)))
	lo, hi := w.CI(0.95)
	if !relClose(lo, mean-half, 1e-9) || !relClose(hi, mean+half, 1e-9) {
		t.Fatalf("CI = [%v, %v], want [%v, %v]", lo, hi, mean-half, mean+half)
	}
	if !(lo <= w.Mean() && w.Mean() <= hi) {
		t.Fatalf("mean %v outside its own CI [%v, %v]", w.Mean(), lo, hi)
	}

	// One observation: degenerate interval, not NaN.
	var one Welford
	one.Add(3)
	if lo, hi := one.CI(0.95); lo != 3 || hi != 3 {
		t.Fatalf("single-observation CI = [%v, %v], want [3, 3]", lo, hi)
	}
}

// Property: WindowEmitter deltas are exactly the snapshot-subtract deltas
// for any monotone cumulative counter sequence, and the accumulators see
// exactly those deltas.
func TestWindowEmitterMatchesSnapshotSubtract(t *testing.T) {
	f := func(incs [][3]uint16) bool {
		if len(incs) == 0 {
			return true
		}
		em := NewWindowEmitter("a", "b", "c")
		cum := make([]uint64, 3)
		em.Prime(cum)
		// Reference path: retain every snapshot, subtract at the end.
		snaps := [][]uint64{append([]uint64(nil), cum...)}
		var refAccs [3]Welford
		for _, inc := range incs {
			for i := range cum {
				cum[i] += uint64(inc[i])
			}
			got := em.Emit(cum)
			snaps = append(snaps, append([]uint64(nil), cum...))
			prev, cur := snaps[len(snaps)-2], snaps[len(snaps)-1]
			for i := range cum {
				want := cur[i] - prev[i]
				if got[i] != want {
					return false
				}
				refAccs[i].Add(float64(want))
			}
		}
		for i := range refAccs {
			a := em.Acc(i)
			if a.N() != refAccs[i].N() || a.Mean() != refAccs[i].Mean() ||
				a.m2 != refAccs[i].m2 || a.Min() != refAccs[i].Min() || a.Max() != refAccs[i].Max() {
				return false
			}
		}
		return em.Windows() == uint64(len(incs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// The per-window emit path must not allocate: paper-scale sweeps emit
// millions of windows.
func TestWindowEmitterEmitAllocsZero(t *testing.T) {
	em := NewWindowEmitter("a", "b", "c", "d")
	cum := make([]uint64, 4)
	em.Prime(cum)
	allocs := testing.AllocsPerRun(1000, func() {
		for i := range cum {
			cum[i] += 17
		}
		em.Emit(cum)
	})
	if allocs != 0 {
		t.Fatalf("Emit allocates %v per window, want 0", allocs)
	}
}

func TestWindowEmitterPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("no metrics", func() { NewWindowEmitter() })
	mustPanic("emit before prime", func() {
		NewWindowEmitter("a").Emit([]uint64{1})
	})
	mustPanic("length mismatch", func() {
		em := NewWindowEmitter("a", "b")
		em.Prime([]uint64{1})
	})
	mustPanic("decreasing counter", func() {
		em := NewWindowEmitter("a")
		em.Prime([]uint64{5})
		em.Emit([]uint64{4})
	})
}
