package vault

import (
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/sim"
)

// Snapshot serializes the vault's timing state (per-bank busy-until
// cycles) and stat counters. At the post-warm-up checkpoint cut these
// are all zero — functional warm-up never schedules timing — but the
// seam carries them anyway so the format does not depend on that
// phase-ordering argument.
func (v *Vault) Snapshot(w *checkpoint.Writer) {
	w.Section("vault.Vault")
	w.U64(v.Accesses)
	w.U64(v.Conflicts)
	w.U64(uint64(v.QueueCycles))
	free := make([]uint64, len(v.bankFree))
	for i, c := range v.bankFree {
		free[i] = uint64(c)
	}
	w.U64s(free)
}

// Restore overwrites a freshly constructed vault.
func (v *Vault) Restore(r *checkpoint.Reader) error {
	if err := r.Section("vault.Vault"); err != nil {
		return err
	}
	accesses := r.U64()
	conflicts := r.U64()
	queueCycles := sim.Cycle(r.U64())
	free := r.U64s()
	if err := r.Err(); err != nil {
		return err
	}
	if len(free) != len(v.bankFree) {
		return fmt.Errorf("vault: checkpoint has %d banks, vault has %d", len(free), len(v.bankFree))
	}
	for i, c := range free {
		v.bankFree[i] = sim.Cycle(c)
	}
	v.Accesses = accesses
	v.Conflicts = conflicts
	v.QueueCycles = queueCycles
	return nil
}
