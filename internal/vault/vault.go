// Package vault models the timing of a die-stacked DRAM vault: an
// HMC-style vertical partition of the DRAM stack with its own controller on
// the CPU die (paper Sec. III). A vault access pays
//
//	controller delay + bank queueing + array access + TAD serialization
//
// Banks operate under a closed-page policy (paper Sec. VI-A): every access
// is a full activate/read/precharge, so a bank is busy for the array access
// time and queueing arises only from bank conflicts. The 64-bit data
// interface adds 8 cycles of serialization for a TAD (tag+data) unit
// (paper Sec. VI-A: 11-cycle array + 4-cycle controller + 8-cycle
// serialization = 23-cycle total for the latency-optimized vault).
package vault

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/sim"
)

// Config sizes a vault's timing model.
type Config struct {
	Banks            int       // independent DRAM banks (power of two)
	ArrayCycles      sim.Cycle // closed-page array access (bank busy time)
	ControllerCycles sim.Cycle // vault controller pipeline
	SerializeCycles  sim.Cycle // TAD transfer over the 64-bit interface
}

// LatencyOptimized is the SILO vault timing (paper Table II: 23-cycle
// total vault access for the 256 MB latency-optimized design).
func LatencyOptimized() Config {
	return Config{Banks: 32, ArrayCycles: 11, ControllerCycles: 4, SerializeCycles: 8}
}

// CapacityOptimized is the SILO-CO vault timing (paper Table II: 32-cycle
// total for the 512 MB capacity-optimized design).
func CapacityOptimized() Config {
	return Config{Banks: 8, ArrayCycles: 20, ControllerCycles: 4, SerializeCycles: 8}
}

// UnloadedLatency is the conflict-free access latency.
func (c Config) UnloadedLatency() sim.Cycle {
	return c.ControllerCycles + c.ArrayCycles + c.SerializeCycles
}

// Vault tracks per-bank busy times and accumulates access statistics.
type Vault struct {
	cfg      Config
	engine   *sim.Engine
	bankFree []sim.Cycle

	Accesses    uint64
	Conflicts   uint64    // accesses that queued behind a busy bank
	QueueCycles sim.Cycle // total cycles spent queueing
}

// New builds a vault. Banks must be a positive power of two.
func New(engine *sim.Engine, cfg Config) *Vault {
	if cfg.Banks <= 0 || cfg.Banks&(cfg.Banks-1) != 0 {
		panic(fmt.Sprintf("vault: bank count %d not a positive power of two", cfg.Banks))
	}
	if cfg.ArrayCycles == 0 {
		panic("vault: zero array access time")
	}
	return &Vault{cfg: cfg, engine: engine, bankFree: make([]sim.Cycle, cfg.Banks)}
}

// Config returns the vault's timing configuration.
func (v *Vault) Config() Config { return v.cfg }

// bank maps a line to its bank: lines interleave across banks so
// consecutive lines hit different banks.
func (v *Vault) bank(line mem.LineAddr) int {
	return int((uint64(line) / mem.LineSize) & uint64(v.cfg.Banks-1))
}

// Access reserves the line's bank and returns the total latency of one
// vault access issued now: queueing (if the bank is busy) + controller +
// array + serialization.
func (v *Vault) Access(line mem.LineAddr) sim.Cycle {
	v.Accesses++
	now := v.engine.Now()
	b := v.bank(line)
	start := now + v.cfg.ControllerCycles
	if v.bankFree[b] > start {
		q := v.bankFree[b] - start
		v.Conflicts++
		v.QueueCycles += q
		start = v.bankFree[b]
	}
	v.bankFree[b] = start + v.cfg.ArrayCycles
	return (start - now) + v.cfg.ArrayCycles + v.cfg.SerializeCycles
}

// MetadataAccess is a vault access for directory metadata: it occupies a
// bank like any DRAM access but transfers a directory set rather than a
// TAD, so it skips TAD serialization (a directory set fits the burst).
func (v *Vault) MetadataAccess(line mem.LineAddr) sim.Cycle {
	v.Accesses++
	now := v.engine.Now()
	b := v.bank(line)
	start := now + v.cfg.ControllerCycles
	if v.bankFree[b] > start {
		q := v.bankFree[b] - start
		v.Conflicts++
		v.QueueCycles += q
		start = v.bankFree[b]
	}
	v.bankFree[b] = start + v.cfg.ArrayCycles
	return (start - now) + v.cfg.ArrayCycles
}
