package vault

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
)

func line(n uint64) mem.LineAddr { return mem.LineAddr(n * mem.LineSize) }

func TestTable2Latencies(t *testing.T) {
	if got := LatencyOptimized().UnloadedLatency(); got != 23 {
		t.Errorf("latency-optimized vault = %d cycles, want 23", got)
	}
	if got := CapacityOptimized().UnloadedLatency(); got != 32 {
		t.Errorf("capacity-optimized vault = %d cycles, want 32", got)
	}
}

func TestAccessUnloaded(t *testing.T) {
	e := sim.NewEngine()
	v := New(e, LatencyOptimized())
	if got := v.Access(line(0)); got != 23 {
		t.Fatalf("unloaded access = %d, want 23", got)
	}
	if v.Accesses != 1 || v.Conflicts != 0 {
		t.Fatalf("stats = %d accesses %d conflicts", v.Accesses, v.Conflicts)
	}
}

func TestBankConflictQueues(t *testing.T) {
	e := sim.NewEngine()
	v := New(e, LatencyOptimized())
	// Two back-to-back accesses to the same bank (same line): the second
	// queues for the full array time.
	first := v.Access(line(0))
	second := v.Access(line(0))
	if second != first+11 {
		t.Fatalf("conflicting access = %d, want %d", second, first+11)
	}
	if v.Conflicts != 1 || v.QueueCycles != 11 {
		t.Fatalf("conflicts=%d queue=%d, want 1, 11", v.Conflicts, v.QueueCycles)
	}
}

func TestDifferentBanksDoNotConflict(t *testing.T) {
	e := sim.NewEngine()
	v := New(e, LatencyOptimized())
	// Consecutive lines interleave across banks.
	a := v.Access(line(0))
	b := v.Access(line(1))
	if a != 23 || b != 23 {
		t.Fatalf("parallel bank accesses = %d, %d; want 23, 23", a, b)
	}
}

func TestBankFreesOverTime(t *testing.T) {
	e := sim.NewEngine()
	v := New(e, LatencyOptimized())
	v.Access(line(0))
	// After the bank's busy window passes, no conflict.
	e.Run(40)
	if got := v.Access(line(0)); got != 23 {
		t.Fatalf("post-drain access = %d, want 23", got)
	}
	if v.Conflicts != 0 {
		t.Fatal("unexpected conflict after drain")
	}
}

func TestMetadataAccessSkipsSerialization(t *testing.T) {
	e := sim.NewEngine()
	v := New(e, LatencyOptimized())
	if got := v.MetadataAccess(line(0)); got != 15 { // 4 controller + 11 array
		t.Fatalf("metadata access = %d, want 15", got)
	}
}

func TestMetadataAndDataShareBanks(t *testing.T) {
	e := sim.NewEngine()
	v := New(e, LatencyOptimized())
	v.MetadataAccess(line(0))
	got := v.Access(line(0))
	if got != 23+11 {
		t.Fatalf("data access behind metadata = %d, want 34", got)
	}
}

func TestManyConflictsAccumulate(t *testing.T) {
	e := sim.NewEngine()
	v := New(e, LatencyOptimized())
	for i := 0; i < 4; i++ {
		v.Access(line(0))
	}
	// Accesses serialize on the bank: latencies 23, 34, 45, 56.
	if v.Conflicts != 3 || v.QueueCycles != 11+22+33 {
		t.Fatalf("conflicts=%d queue=%d, want 3, 66", v.Conflicts, v.QueueCycles)
	}
}

func TestNewPanics(t *testing.T) {
	e := sim.NewEngine()
	for _, cfg := range []Config{
		{Banks: 0, ArrayCycles: 11},
		{Banks: 3, ArrayCycles: 11},
		{Banks: 8, ArrayCycles: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for %+v", cfg)
				}
			}()
			New(e, cfg)
		}()
	}
}
