package workload

import (
	"fmt"
	"math"

	"repro/internal/checkpoint"
	"repro/internal/mem"
	"repro/internal/sim"
)

// Phased behaviour and sharing groups (DESIGN.md §14). A Phased wraps a
// Stream and cycles it through a list of phases — each a full workload
// Spec plus an arrival process drawing the phase's duration — so a
// client's memory behaviour varies over time (bursty footprints, load
// spikes, phase-change applications). Durations are measured in
// *generated ops*, not cycles: a phase boundary lands at a fixed point
// of the op stream regardless of how the consumer batches refills, how
// many producer threads feed rings, or where a checkpoint cuts, which
// is what extends the repo's bit-identity contracts to scenario runs.
// All duration draws come from a dedicated RNG (never the inner
// stream's), so phase scheduling cannot perturb the op-level draw
// sequence within a phase.
//
// A Phased also carries its client's sharing-group address offset: all
// clients in one scenario group share an address space (their RW-shared
// pools and remote-secondary slices genuinely interleave), while
// distinct groups are isolated VMs — every emitted address is shifted
// by the group offset, so no line of one group ever aliases another's.

// Arrival process names.
const (
	ArrivalFixed   = "fixed"   // every phase lasts exactly MeanOps
	ArrivalPoisson = "poisson" // exponential durations (memoryless)
	ArrivalGamma   = "gamma"   // gamma durations; CV > 1 = bursty
	ArrivalWeibull = "weibull" // weibull durations; Shape < 1 = heavy-tailed
)

// maxPhaseOps caps a drawn duration so the op countdown can never
// overflow; 2^60 ops is far beyond any run length.
const maxPhaseOps = float64(uint64(1) << 60)

// Arrival draws phase durations, in generated ops.
type Arrival struct {
	Process string  // one of the Arrival* names; "" = fixed
	MeanOps float64 // mean duration in ops
	CV      float64 // gamma only: coefficient of variation (0 = 1)
	Shape   float64 // weibull only: shape k (0 = 1, exponential)
}

// Check reports the first out-of-domain field as an error naming it.
func (a Arrival) Check() error {
	switch a.Process {
	case "", ArrivalFixed, ArrivalPoisson, ArrivalGamma, ArrivalWeibull:
	default:
		return fmt.Errorf("workload: arrival process %q not one of fixed/poisson/gamma/weibull", a.Process)
	}
	if !(a.MeanOps >= 1) || a.MeanOps > maxPhaseOps {
		return fmt.Errorf("workload: arrival mean_ops %v outside [1, 2^60]", a.MeanOps)
	}
	if a.CV < 0 || a.CV != a.CV {
		return fmt.Errorf("workload: arrival cv %v negative", a.CV)
	}
	if a.Shape < 0 || a.Shape != a.Shape {
		return fmt.Errorf("workload: arrival shape %v negative", a.Shape)
	}
	return nil
}

// draw samples one phase duration. Every sampler consumes rng draws
// only (deterministic), returns at least 1 op, and is clamped to
// maxPhaseOps.
func (a Arrival) draw(rng *sim.RNG) uint64 {
	var d float64
	switch a.Process {
	case "", ArrivalFixed:
		d = a.MeanOps
	case ArrivalPoisson:
		d = -a.MeanOps * math.Log(u01(rng))
	case ArrivalGamma:
		cv := a.CV
		if cv == 0 {
			cv = 1
		}
		// Mean k·θ = MeanOps, CV = 1/sqrt(k).
		k := 1 / (cv * cv)
		d = gammaSample(rng, k) * (a.MeanOps * cv * cv)
	case ArrivalWeibull:
		k := a.Shape
		if k == 0 {
			k = 1
		}
		// Scale λ so the mean λ·Γ(1+1/k) equals MeanOps.
		lambda := a.MeanOps / math.Gamma(1+1/k)
		d = lambda * math.Pow(-math.Log(u01(rng)), 1/k)
	default:
		panic(fmt.Sprintf("workload: arrival process %q (Check missed it)", a.Process))
	}
	if !(d >= 1) { // also catches NaN
		d = 1
	}
	if d > maxPhaseOps {
		d = maxPhaseOps
	}
	return uint64(d)
}

// u01 draws uniformly from (0,1] — never 0, so log is always finite.
func u01(rng *sim.RNG) float64 {
	return (float64(rng.Uint64()>>11) + 1) / float64(1<<53)
}

// normal draws a standard normal via Box-Muller (two uniform draws per
// variate; deterministic given the RNG).
func normal(rng *sim.RNG) float64 {
	u1, u2 := u01(rng), u01(rng)
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// gammaSample draws Gamma(k, 1) via Marsaglia-Tsang, boosting k < 1
// with the standard U^(1/k) factor.
func gammaSample(rng *sim.RNG, k float64) float64 {
	if k < 1 {
		return gammaSample(rng, k+1) * math.Pow(u01(rng), 1/k)
	}
	d := k - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := normal(rng)
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := u01(rng)
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Phase pairs a workload spec with the arrival process drawing how long
// (in generated ops) the stream stays in it.
type Phase struct {
	Spec    Spec
	Arrival Arrival
}

// Sharing-group address offsets: group g's whole address map shifts by
// g·2^42. The workload address map tops out under 2^41, so shifted
// regions never collide, and with at most MaxGroups groups every
// address stays below the 2^46 line-address bound cache.Array enforces.
const (
	groupShift = 42
	// MaxGroups bounds scenario sharing groups.
	MaxGroups = 16
)

// GroupOffset returns the address-space offset (bytes) of sharing group
// g; it is line-aligned, so offsetting preserves the packed Op flag bits.
func GroupOffset(g int) uint64 {
	if g < 0 || g >= MaxGroups {
		panic(fmt.Sprintf("workload: sharing group %d outside [0,%d)", g, MaxGroups))
	}
	return uint64(g) << groupShift
}

// applyOffset shifts a batch's addresses into the source's sharing
// group. IWord is a 64-aligned line address with the jump flag in bit 0
// (offset is line-aligned: the flag survives); DWord's address field is
// bits 0-55, and offset+address stays far below 2^56, so the add can
// never carry into the flag bits. Zero words (no new ifetch line / not
// a memory op) must stay zero.
func applyOffset(ops []Op, off uint64) {
	if off == 0 {
		return
	}
	for i := range ops {
		if ops[i].IWord != 0 {
			ops[i].IWord += off
		}
		if ops[i].DWord != 0 {
			ops[i].DWord += off
		}
	}
}

// Phased is a Source cycling an inner Stream through phases. See the
// package comment above for the determinism contract.
type Phased struct {
	inner     *Stream
	phases    []Phase
	rng       *sim.RNG // phase-duration draws only
	idx       int      // current phase
	remaining uint64   // ops left in the current phase
	offset    uint64   // sharing-group address offset (bytes)
}

var _ Source = (*Phased)(nil)

// phaseRNGTag separates the phase-duration RNG fork from the per-core
// stream forks (ids 1..ncores).
const phaseRNGTag = 0xA5A5_0000

// NewPhased builds the phased source for one core: a fresh inner Stream
// from phases[0].Spec plus the phase scheduler. phaseSeq selects the
// duration-draw stream — give every core of one client the same
// phaseSeq and they switch phases at identical op counts (the client
// changes behaviour as a unit); offset places the client's sharing
// group (GroupOffset). Every phase spec must pass Check; the core's MLP
// window is bound once from phases[0] (cpu.Core reads Spec().MLP at
// construction), so scenario validation holds MLP constant across a
// client's phases.
func NewPhased(phases []Phase, core, ncores int, scale int64, seed uint64, phaseSeq uint64, offset uint64) *Phased {
	if len(phases) == 0 {
		panic("workload: NewPhased with no phases")
	}
	for i := range phases {
		phases[i].Spec.Validate()
		if err := phases[i].Arrival.Check(); err != nil {
			panic(err.Error())
		}
	}
	if offset%mem.LineSize != 0 || offset >= uint64(MaxGroups)<<groupShift {
		panic(fmt.Sprintf("workload: bad group offset %#x", offset))
	}
	p := &Phased{
		inner:  NewStream(phases[0].Spec, core, ncores, scale, seed),
		phases: phases,
		rng:    sim.NewRNG(seed).Fork(phaseRNGTag + phaseSeq),
		offset: offset,
	}
	p.remaining = p.phases[0].Arrival.draw(p.rng)
	return p
}

// advance moves to the next phase (cyclically), retunes the inner
// stream and draws the new duration.
func (p *Phased) advance() {
	p.idx = (p.idx + 1) % len(p.phases)
	ph := &p.phases[p.idx]
	p.inner.Retune(ph.Spec)
	p.remaining = ph.Arrival.draw(p.rng)
}

// Spec reports the phase-0 spec (structural parameters like MLP are
// per-client constants; see NewPhased).
func (p *Phased) Spec() Spec { return p.phases[0].Spec }

// PhaseIndex reports the current phase (tests).
func (p *Phased) PhaseIndex() int { return p.idx }

// Generated reports ops produced so far.
func (p *Phased) Generated() uint64 { return p.inner.Generated() }

// Next produces one op.
func (p *Phased) Next(op *Op) {
	if p.remaining == 0 {
		p.advance()
	}
	p.inner.Next(op)
	if p.offset != 0 {
		if op.IWord != 0 {
			op.IWord += p.offset
		}
		if op.DWord != 0 {
			op.DWord += p.offset
		}
	}
	p.remaining--
}

// NextBatch fills dst, splitting the refill at phase boundaries. Chunk
// sizes depend only on the op counts at which boundaries fall, never on
// how the caller batches — the split-invariance NextBatch inherits from
// the inner stream therefore extends across phase switches.
func (p *Phased) NextBatch(dst []Op) int {
	n := len(dst)
	for len(dst) > 0 {
		if p.remaining == 0 {
			p.advance()
		}
		c := uint64(len(dst))
		if c > p.remaining {
			c = p.remaining
		}
		p.inner.NextBatch(dst[:c])
		applyOffset(dst[:c], p.offset)
		p.remaining -= c
		dst = dst[c:]
	}
	return n
}

// Prewarm visits the phase-0 footprints at the group's offset.
func (p *Phased) Prewarm(visit func(addr mem.Addr, instr bool)) {
	if p.offset == 0 {
		p.inner.Prewarm(visit)
		return
	}
	p.inner.Prewarm(func(addr mem.Addr, instr bool) {
		visit(addr+mem.Addr(p.offset), instr)
	})
}

// Snapshot serializes the phase scheduler then the inner stream. The
// phase list itself is rebuilt by the constructor (it is part of the
// checkpoint key's identity); only its length and the offset are
// recorded as shape cross-checks.
func (p *Phased) Snapshot(w *checkpoint.Writer) {
	w.Section("workload.Phased")
	w.I64(int64(len(p.phases)))
	w.U64(p.offset)
	w.I64(int64(p.idx))
	w.U64(p.remaining)
	w.U64(p.rng.State())
	p.inner.Snapshot(w)
}

// Restore overwrites a freshly constructed Phased's mutable state. The
// inner stream is retuned to the snapshotted phase before its own
// restore, so cursors land against the footprints they were cut with.
func (p *Phased) Restore(r *checkpoint.Reader) error {
	if err := r.Section("workload.Phased"); err != nil {
		return err
	}
	nphases := int(r.I64())
	offset := r.U64()
	idx := int(r.I64())
	remaining := r.U64()
	rngState := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if nphases != len(p.phases) || offset != p.offset {
		return fmt.Errorf("workload: checkpoint phased source (%d phases, offset %#x) restored into (%d phases, offset %#x)",
			nphases, offset, len(p.phases), p.offset)
	}
	if idx < 0 || idx >= len(p.phases) {
		return fmt.Errorf("workload: checkpoint phase index %d outside [0,%d)", idx, len(p.phases))
	}
	p.idx = idx
	p.remaining = remaining
	p.rng.SetState(rngState)
	p.inner.Retune(p.phases[idx].Spec)
	return p.inner.Restore(r)
}
