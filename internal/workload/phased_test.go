package workload

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/sim"
)

// TestSpecCheckDomains pins the Spec.Check hardening: every fraction
// field is held to [0,1] and the data-region fractions to sum <= 1 —
// the cases the historical sum-only Validate silently accepted.
func TestSpecCheckDomains(t *testing.T) {
	base := WebSearch()
	if err := base.Check(); err != nil {
		t.Fatalf("preset WebSearch fails Check: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(*Spec)
		want   string
	}{
		{"sum>1", func(s *Spec) { s.PrimaryFrac = 0.5; s.MiddleFrac = 0.3; s.SecondaryFrac = 0.3; s.RWSharedFrac = 0.1 }, "sum to"},
		{"negative middle hidden by sum", func(s *Spec) { s.MiddleFrac = -0.2 }, "MiddleFrac"},
		{"store>1", func(s *Spec) { s.StoreFrac = 1.3 }, "StoreFrac"},
		{"negative scan", func(s *Spec) { s.ScanFrac = -0.01 }, "ScanFrac"},
		{"remote>1", func(s *Spec) { s.RemoteProb = 1.5 }, "RemoteProb"},
		{"sharedwrite<0", func(s *Spec) { s.SharedWriteFrac = -1 }, "SharedWriteFrac"},
		{"indep>1", func(s *Spec) { s.IndepProb = 2 }, "IndepProb"},
		{"memratio=1", func(s *Spec) { s.MemRatio = 1 }, "MemRatio"},
		{"zero jump", func(s *Spec) { s.JumpEveryLines = 0 }, "JumpEveryLines"},
		{"zero mlp", func(s *Spec) { s.MLP = 0 }, "MLP"},
	}
	for _, tc := range cases {
		sp := base
		tc.mutate(&sp)
		err := sp.Check()
		if err == nil {
			t.Errorf("%s: Check accepted the bad spec", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not name %q", tc.name, err, tc.want)
		}
	}
}

// TestEverySuitePresetChecks keeps the compiled-in presets inside the
// hardened domains.
func TestEverySuitePresetChecks(t *testing.T) {
	all := append(ScaleOutSuite(), EnterpriseSuite()...)
	for _, name := range Spec2006Names() {
		all = append(all, Spec2006(name))
	}
	for _, s := range all {
		if err := s.Check(); err != nil {
			t.Errorf("preset %s: %v", s.Name, err)
		}
	}
}

// TestRetunePreservesWalkState: retuning to the same spec must not
// disturb the op sequence at all, and retuning to a different spec must
// keep cursors in range.
func TestRetunePreservesWalkState(t *testing.T) {
	a := NewStream(WebSearch(), 0, 4, 16, 7)
	b := NewStream(WebSearch(), 0, 4, 16, 7)
	var opA, opB Op
	for i := 0; i < 5000; i++ {
		a.Next(&opA)
		b.Next(&opB)
		if opA != opB {
			t.Fatalf("op %d diverged before retune", i)
		}
	}
	b.Retune(WebSearch()) // same spec: a no-op for the sequence
	for i := 0; i < 5000; i++ {
		a.Next(&opA)
		b.Next(&opB)
		if opA != opB {
			t.Fatalf("op %d diverged after same-spec retune", i)
		}
	}
	// Shrink the footprints hard; the stream must stay in range.
	small := WebSearch()
	small.InstrFootprint /= 64
	small.SecondaryWSS /= 64
	b.Retune(small)
	for i := 0; i < 5000; i++ {
		b.Next(&opB)
	}
	if b.scanCursor >= b.secondary {
		t.Fatalf("scan cursor %d outside shrunk secondary %d", b.scanCursor, b.secondary)
	}
	if off := int64(b.pc - instrBase); off < 0 || off >= b.instrFP {
		t.Fatalf("pc offset %d outside shrunk instruction footprint %d", off, b.instrFP)
	}
}

func testPhases() []Phase {
	burst := WebSearch()
	burst.Name = "WebSearch-burst"
	burst.MemRatio = 0.45
	burst.SecondaryWSS *= 2
	return []Phase{
		{Spec: WebSearch(), Arrival: Arrival{Process: ArrivalPoisson, MeanOps: 3000}},
		{Spec: burst, Arrival: Arrival{Process: ArrivalGamma, MeanOps: 1000, CV: 2}},
	}
}

// TestPhasedSplitInvariance is the scenario extension of the NextBatch
// determinism contract: the phased op sequence must be identical per-op
// (Next), at any batch size, and across mixed batch sizes — phase
// boundaries land at op counts, so refill shape cannot move them.
func TestPhasedSplitInvariance(t *testing.T) {
	const total = 40000
	ref := NewPhased(testPhases(), 1, 4, 16, 42, 9, GroupOffset(3))
	want := make([]Op, total)
	for i := range want {
		ref.Next(&want[i])
	}
	for _, batch := range []int{1, 7, 16, 64, 1000} {
		p := NewPhased(testPhases(), 1, 4, 16, 42, 9, GroupOffset(3))
		got := make([]Op, 0, total)
		buf := make([]Op, batch)
		for len(got) < total {
			n := p.NextBatch(buf)
			got = append(got, buf[:n]...)
		}
		for i := 0; i < total; i++ {
			if got[i] != want[i] {
				t.Fatalf("batch %d: op %d = %+v, per-op path %+v", batch, i, got[i], want[i])
			}
		}
	}
	// The schedule must actually advance: with a 3000-op mean phase, a
	// fresh wrapper reaches phase 1 within a bounded number of ops.
	p := NewPhased(testPhases(), 1, 4, 16, 42, 9, GroupOffset(3))
	var op Op
	for i := 0; i < 200000 && p.PhaseIndex() == 0; i++ {
		p.Next(&op)
	}
	if p.PhaseIndex() != 1 {
		t.Fatal("phase schedule never advanced")
	}
}

// TestPhasedGroupOffsetIsolation: the same client in two different
// sharing groups emits the same op stream shifted by exactly the group
// offset, flags intact.
func TestPhasedGroupOffsetIsolation(t *testing.T) {
	p0 := NewPhased(testPhases(), 0, 2, 16, 1, 0, GroupOffset(0))
	p5 := NewPhased(testPhases(), 0, 2, 16, 1, 0, GroupOffset(5))
	delta := GroupOffset(5)
	var a, b Op
	for i := 0; i < 20000; i++ {
		p0.Next(&a)
		p5.Next(&b)
		if (a.IWord == 0) != (b.IWord == 0) || (a.DWord == 0) != (b.DWord == 0) {
			t.Fatalf("op %d: zero-word structure diverged", i)
		}
		if a.IWord != 0 {
			if b.IWord != a.IWord+delta {
				t.Fatalf("op %d: IWord %#x vs %#x (+%#x expected)", i, a.IWord, b.IWord, delta)
			}
			if a.Jump() != b.Jump() {
				t.Fatalf("op %d: jump flag changed by offset", i)
			}
		}
		if a.DWord != 0 {
			if uint64(b.Addr()) != uint64(a.Addr())+delta {
				t.Fatalf("op %d: addr %#x vs %#x", i, a.Addr(), b.Addr())
			}
			if a.Write() != b.Write() || a.RWShared() != b.RWShared() ||
				a.Independent() != b.Independent() || a.NonTemporal() != b.NonTemporal() {
				t.Fatalf("op %d: flags changed by offset", i)
			}
		}
	}
}

// TestPhasedSnapshotRoundTrip: a restored Phased continues the exact
// sequence, including across later phase switches.
func TestPhasedSnapshotRoundTrip(t *testing.T) {
	p := NewPhased(testPhases(), 2, 4, 16, 11, 3, GroupOffset(1))
	var op Op
	for i := 0; i < 12345; i++ {
		p.Next(&op)
	}
	var buf bytes.Buffer
	w := checkpoint.NewWriter(&buf)
	p.Snapshot(w)
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	q := NewPhased(testPhases(), 2, 4, 16, 11, 3, GroupOffset(1))
	r := checkpoint.NewReader(bytes.NewReader(buf.Bytes()))
	if err := q.Restore(r); err != nil {
		t.Fatal(err)
	}
	var a, b Op
	for i := 0; i < 30000; i++ {
		p.Next(&a)
		q.Next(&b)
		if a != b {
			t.Fatalf("op %d diverged after restore", i)
		}
	}

	// Shape mismatches must be detected, not silently absorbed.
	wrong := NewPhased(testPhases(), 2, 4, 16, 11, 3, GroupOffset(2))
	r = checkpoint.NewReader(bytes.NewReader(buf.Bytes()))
	if err := wrong.Restore(r); err == nil {
		t.Fatal("restore into a different group offset succeeded")
	}
}

// TestArrivalDraws pins the samplers' domains: positive, finite, and
// roughly centred on the requested mean.
func TestArrivalDraws(t *testing.T) {
	for _, proc := range []Arrival{
		{Process: ArrivalFixed, MeanOps: 500},
		{Process: ArrivalPoisson, MeanOps: 500},
		{Process: ArrivalGamma, MeanOps: 500, CV: 3},
		{Process: ArrivalWeibull, MeanOps: 500, Shape: 0.7},
	} {
		if err := proc.Check(); err != nil {
			t.Fatalf("%s: %v", proc.Process, err)
		}
		rng := sim.NewRNG(123)
		var sum float64
		const n = 20000
		for i := 0; i < n; i++ {
			d := proc.draw(rng)
			if d < 1 || float64(d) > maxPhaseOps {
				t.Fatalf("%s: draw %d out of range", proc.Process, d)
			}
			sum += float64(d)
		}
		mean := sum / n
		if mean < 300 || mean > 800 {
			t.Errorf("%s: empirical mean %.0f far from 500", proc.Process, mean)
		}
	}
	if err := (Arrival{Process: "pareto", MeanOps: 10}).Check(); err == nil {
		t.Error("unknown process accepted")
	}
	if err := (Arrival{Process: ArrivalFixed, MeanOps: 0}).Check(); err == nil {
		t.Error("zero mean accepted")
	}
	if err := (Arrival{Process: ArrivalGamma, MeanOps: 10, CV: -1}).Check(); err == nil {
		t.Error("negative cv accepted")
	}
}
