package workload

import "fmt"

// The presets below are the calibration targets of the reproduction.
// Parameters are chosen so the synthetic streams reproduce the paper's
// published characterization (see DESIGN.md §4 and EXPERIMENTS.md):
//
//   - The middle working set (hundreds of KB per core) misses the L1s but
//     hits even the 8MB shared LLC; it carries most LLC traffic, making
//     every workload latency-sensitive (Fig 2's isocurves collapse when
//     LLC latency doubles) while capacity-insensitive below the knee.
//   - Secondary working sets set the Fig 1 capacity knees: Data Serving,
//     Web Frontend and SAT Solver gain 10-20% once ~256MB of aggregate LLC
//     fits their secondary sets; Web Search needs ~1GB; MapReduce more.
//   - MemRatio and SecondaryFrac set the magnitude of SILO's gains
//     (Fig 10) and the miss-rate reductions (Fig 11): MapReduce and SAT
//     Solver are the most miss-heavy and gain the most (54%, 37%).
//   - RWSharedFrac reproduces the Fig 3 sharing breakdown (Web Search ~4%,
//     Data Serving ~3% of LLC accesses to RW-shared blocks; MapReduce and
//     SAT Solver negligible).
//   - RemoteProb gives Data Serving and Web Frontend their visible remote
//     vault hit fractions (Fig 11).
//   - Low MLP exposes LLC latency (paper Sec. II-B).

// KB and MB express footprint sizes in the presets.
const (
	KB = int64(1) << 10
	MB = int64(1) << 20
)

// WebSearch models the Apache Nutch/Lucene index-serving workload: a large
// secondary working set (index segments) that only fits at ~1GB aggregate
// LLC, a hefty shared code footprint, and mild GC-induced RW sharing.
func WebSearch() Spec {
	return Spec{
		Name: "WebSearch", Class: ScaleOut,
		InstrFootprint: 2560 * KB, JumpEveryLines: 5,
		MemRatio: 0.30, StoreFrac: 0.12,
		PrimaryWSS: 48 * KB, PrimaryFrac: 0.9083,
		MiddleWSS: 128 * KB, MiddleFrac: 0.064,
		SecondaryWSS: 56 * MB, SecondaryFrac: 0.0071, ScanFrac: 0.75, RemoteProb: 0.05,
		RWSharedFrac: 0.010, SharedPool: 1 * MB, SharedWriteFrac: 0.35,
		MLP: 2, IndepProb: 0.35,
	}
}

// DataServing models Cassandra: moderate secondary set, the highest
// remote-sharing of the scale-out suite (parallel GC and replica reads),
// visible RW sharing.
func DataServing() Spec {
	return Spec{
		Name: "DataServing", Class: ScaleOut,
		InstrFootprint: 2 * MB, JumpEveryLines: 5,
		MemRatio: 0.32, StoreFrac: 0.18,
		PrimaryWSS: 48 * KB, PrimaryFrac: 0.9240,
		MiddleWSS: 128 * KB, MiddleFrac: 0.050,
		SecondaryWSS: 13 * MB, SecondaryFrac: 0.0056, ScanFrac: 0.75, RemoteProb: 0.22,
		RWSharedFrac: 0.010, SharedPool: 1 * MB, SharedWriteFrac: 0.40,
		MLP: 2, IndepProb: 0.30,
	}
}

// WebFrontend models the SPECweb2009-style PHP/web-serving tier: the
// largest instruction footprint, smallest data appetite, least cache
// sensitivity of the suite (paper: SILO's smallest gain).
func WebFrontend() Spec {
	return Spec{
		Name: "WebFrontend", Class: ScaleOut,
		InstrFootprint: 3 * MB, JumpEveryLines: 4,
		MemRatio: 0.28, StoreFrac: 0.20,
		PrimaryWSS: 56 * KB, PrimaryFrac: 0.9658,
		MiddleWSS: 128 * KB, MiddleFrac: 0.022,
		SecondaryWSS: 10 * MB, SecondaryFrac: 0.0007, ScanFrac: 0.75, RemoteProb: 0.12,
		RWSharedFrac: 0.008, SharedPool: 512 * KB, SharedWriteFrac: 0.40,
		MLP: 2, IndepProb: 0.30,
	}
}

// MapReduce models the Hadoop/Mahout classification job: streaming-heavy,
// the largest secondary set of the suite (input splits and intermediate
// data), negligible sharing, the most memory-intensive — and therefore the
// biggest SILO winner (paper: +54%).
func MapReduce() Spec {
	return Spec{
		Name: "MapReduce", Class: ScaleOut,
		InstrFootprint: 1536 * KB, JumpEveryLines: 8,
		MemRatio: 0.36, StoreFrac: 0.22,
		PrimaryWSS: 40 * KB, PrimaryFrac: 0.9105,
		MiddleWSS: 128 * KB, MiddleFrac: 0.054,
		SecondaryWSS: 160 * MB, SecondaryFrac: 0.0205, ScanFrac: 0.80, RemoteProb: 0.02,
		RWSharedFrac: 0.001, SharedPool: 256 * KB, SharedWriteFrac: 0.30,
		MLP: 2, IndepProb: 0.40,
	}
}

// SATSolver models the Cloud9/Klee symbolic-execution engine: pointer
// chasing over a clause database that fits a 256MB-class LLC, very low
// sharing, highly dependent accesses (paper: +37%, 67% miss reduction).
func SATSolver() Spec {
	return Spec{
		Name: "SATSolver", Class: ScaleOut,
		InstrFootprint: 1280 * KB, JumpEveryLines: 7,
		MemRatio: 0.34, StoreFrac: 0.14,
		PrimaryWSS: 40 * KB, PrimaryFrac: 0.9337,
		MiddleWSS: 128 * KB, MiddleFrac: 0.054,
		SecondaryWSS: 12 * MB, SecondaryFrac: 0.0073, ScanFrac: 0.75, RemoteProb: 0.03,
		RWSharedFrac: 0.001, SharedPool: 256 * KB, SharedWriteFrac: 0.30,
		MLP: 2, IndepProb: 0.30,
	}
}

// ScaleOutSuite returns the five scale-out workloads in paper order.
func ScaleOutSuite() []Spec {
	return []Spec{WebSearch(), DataServing(), WebFrontend(), MapReduce(), SATSolver()}
}

// TPCC models the DB2 OLTP workload: buffer-pool resident rows whose
// per-core share is captured by a conventional DRAM cache (hence
// Baseline+DRAM$'s small enterprise win) and fully by SILO's vaults. The
// heavy middle traffic is what makes the slow shared vaults of Vaults-Sh
// a net loss on enterprise applications (paper: -9%).
func TPCC() Spec {
	return Spec{
		Name: "TPCC", Class: Enterprise,
		InstrFootprint: 2 * MB, JumpEveryLines: 7,
		MemRatio: 0.30, StoreFrac: 0.24,
		PrimaryWSS: 48 * KB, PrimaryFrac: 0.9278,
		MiddleWSS: 128 * KB, MiddleFrac: 0.060,
		SecondaryWSS: 96 * MB, SecondaryFrac: 0.0024, ScanFrac: 0.60, RemoteProb: 0.10,
		RWSharedFrac: 0.004, SharedPool: 1 * MB, SharedWriteFrac: 0.45,
		MLP: 2, IndepProb: 0.35,
	}
}

// Oracle models the Oracle OLTP workload: like TPCC with a smaller SGA.
func Oracle() Spec {
	return Spec{
		Name: "Oracle", Class: Enterprise,
		InstrFootprint: 2560 * KB, JumpEveryLines: 7,
		MemRatio: 0.29, StoreFrac: 0.22,
		PrimaryWSS: 48 * KB, PrimaryFrac: 0.9324,
		MiddleWSS: 128 * KB, MiddleFrac: 0.056,
		SecondaryWSS: 72 * MB, SecondaryFrac: 0.0022, ScanFrac: 0.60, RemoteProb: 0.10,
		RWSharedFrac: 0.004, SharedPool: 1 * MB, SharedWriteFrac: 0.45,
		MLP: 2, IndepProb: 0.35,
	}
}

// Zeus models the Zeus web server: instruction-bound with a modest data
// set, the least memory-hungry of the enterprise trio.
func Zeus() Spec {
	return Spec{
		Name: "Zeus", Class: Enterprise,
		InstrFootprint: 2560 * KB, JumpEveryLines: 6,
		MemRatio: 0.27, StoreFrac: 0.18,
		PrimaryWSS: 48 * KB, PrimaryFrac: 0.9448,
		MiddleWSS: 128 * KB, MiddleFrac: 0.050,
		SecondaryWSS: 24 * MB, SecondaryFrac: 0.0012, ScanFrac: 0.60, RemoteProb: 0.08,
		RWSharedFrac: 0.002, SharedPool: 1 * MB, SharedWriteFrac: 0.40,
		MLP: 2, IndepProb: 0.35,
	}
}

// EnterpriseSuite returns the three enterprise workloads in paper order.
func EnterpriseSuite() []Spec {
	return []Spec{TPCC(), Oracle(), Zeus()}
}

// specBench builds a single-threaded SPEC CPU2006 component. SPEC codes
// have small instruction footprints (they live in the L1-I), no sharing,
// and differ mainly in memory intensity, working-set size and MLP.
func specBench(name string, memRatio float64, secondaryWSS int64, secFrac, scanFrac float64, mlp int, indep float64) Spec {
	return Spec{
		Name: name, Class: Batch,
		InstrFootprint: 256 * KB, JumpEveryLines: 16,
		MemRatio: memRatio, StoreFrac: 0.20,
		PrimaryWSS: 40 * KB, PrimaryFrac: 1 - secFrac - 0.022,
		MiddleWSS: 192 * KB, MiddleFrac: 0.020,
		SecondaryWSS: secondaryWSS, SecondaryFrac: secFrac, ScanFrac: scanFrac,
		MLP: mlp, IndepProb: indep,
	}
}

// Spec2006 returns the named SPEC CPU2006 benchmark model. Memory-intensive
// codes (mcf, lbm, milc, astar, soplex, omnetpp — the ones the paper calls
// out in Fig 15) have large secondary sets that a private 256MB vault can
// hold but a shared 8MB LLC cannot.
func Spec2006(name string) Spec {
	b, ok := spec06[name]
	if !ok {
		panic(fmt.Sprintf("workload: unknown SPEC2006 benchmark %q", name))
	}
	return b
}

// Spec2006Names lists the modelled benchmarks in sorted order.
func Spec2006Names() []string {
	return append([]string(nil), names06...)
}

var names06 = []string{
	"astar", "bwaves", "bzip2", "cactusADM", "calculix", "gamess", "gcc",
	"gobmk", "gromacs", "lbm", "leslie3d", "mcf", "milc", "namd", "omnetpp",
	"perlbench", "povray", "sjeng", "soplex", "tonto", "xalancbmk", "zeusmp",
}

var spec06 = map[string]Spec{
	// Memory-intensive (the paper's Fig 15 callouts).
	"mcf":    specBench("mcf", 0.38, 240*MB, 0.050, 0.30, 3, 0.45),
	"lbm":    specBench("lbm", 0.36, 200*MB, 0.042, 0.90, 4, 0.70),
	"milc":   specBench("milc", 0.34, 180*MB, 0.038, 0.70, 3, 0.55),
	"astar":  specBench("astar", 0.33, 170*MB, 0.036, 0.25, 2, 0.35),
	"soplex": specBench("soplex", 0.32, 230*MB, 0.032, 0.50, 3, 0.50),
	// Moderately memory-sensitive.
	"omnetpp":   specBench("omnetpp", 0.31, 150*MB, 0.028, 0.20, 2, 0.35),
	"xalancbmk": specBench("xalancbmk", 0.30, 100*MB, 0.024, 0.30, 2, 0.40),
	"bwaves":    specBench("bwaves", 0.31, 160*MB, 0.024, 0.90, 4, 0.70),
	"leslie3d":  specBench("leslie3d", 0.30, 120*MB, 0.022, 0.80, 4, 0.65),
	"zeusmp":    specBench("zeusmp", 0.29, 120*MB, 0.020, 0.70, 3, 0.60),
	"cactusADM": specBench("cactusADM", 0.29, 140*MB, 0.020, 0.60, 3, 0.55),
	"gcc":       specBench("gcc", 0.28, 80*MB, 0.016, 0.30, 2, 0.45),
	"bzip2":     specBench("bzip2", 0.28, 100*MB, 0.014, 0.60, 3, 0.55),
	// Compute-bound.
	"perlbench": specBench("perlbench", 0.27, 30*MB, 0.008, 0.20, 2, 0.45),
	"gobmk":     specBench("gobmk", 0.26, 24*MB, 0.006, 0.20, 2, 0.40),
	"sjeng":     specBench("sjeng", 0.26, 40*MB, 0.006, 0.20, 2, 0.40),
	"gromacs":   specBench("gromacs", 0.26, 8*MB, 0.004, 0.40, 3, 0.55),
	"calculix":  specBench("calculix", 0.26, 16*MB, 0.004, 0.50, 3, 0.55),
	"namd":      specBench("namd", 0.25, 12*MB, 0.003, 0.40, 3, 0.55),
	"tonto":     specBench("tonto", 0.25, 4*MB, 0.002, 0.30, 2, 0.50),
	"povray":    specBench("povray", 0.24, 2*MB, 0.002, 0.20, 2, 0.50),
	"gamess":    specBench("gamess", 0.24, 1*MB, 0.001, 0.20, 2, 0.50),
}

// Mix is a named four-benchmark SPEC combination (paper Table V).
type Mix struct {
	Name       string
	Benchmarks [4]string
}

// Spec06Mixes returns the paper's ten randomly-drawn mixes (Table V).
func Spec06Mixes() []Mix {
	return []Mix{
		{"mix1", [4]string{"sjeng", "calculix", "mcf", "omnetpp"}},
		{"mix2", [4]string{"lbm", "gamess", "namd", "gromacs"}},
		{"mix3", [4]string{"mcf", "zeusmp", "calculix", "lbm"}},
		{"mix4", [4]string{"tonto", "gamess", "bzip2", "namd"}},
		{"mix5", [4]string{"mcf", "povray", "gcc", "cactusADM"}},
		{"mix6", [4]string{"gobmk", "perlbench", "milc", "astar"}},
		{"mix7", [4]string{"xalancbmk", "sjeng", "cactusADM", "bwaves"}},
		{"mix8", [4]string{"calculix", "leslie3d", "astar", "gcc"}},
		{"mix9", [4]string{"gromacs", "gobmk", "gamess", "astar"}},
		{"mix10", [4]string{"omnetpp", "zeusmp", "soplex", "povray"}},
	}
}

// MixSpecs resolves a mix to its four workload specs.
func MixSpecs(m Mix) []Spec {
	out := make([]Spec, 4)
	for i, n := range m.Benchmarks {
		out[i] = Spec2006(n)
	}
	return out
}
