package workload

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Off-thread trace generation (DESIGN.md §12). A Ring decouples a core's
// trace generation from its timing simulation: a producer goroutine runs
// the Source's NextBatch ahead of the consumer, publishing fixed-size op blocks
// through a bounded single-producer/single-consumer ring, and the consumer
// (cpu.Core's batch refill, or the functional warm-up loop) takes whole
// blocks zero-copy. The op sequence each consumer observes is identical to
// the synchronous path by construction: NextBatch is split-invariant — gen
// runs once per op, in order, with the RNG state threaded through — so
// block boundaries can never reorder, drop or duplicate a draw
// (TestRingMatchesSerial pins this against per-op Next; TestRingGoldenHash
// pins the golden FNV op-stream hash through the ring).

// RingBlockOps is the number of ops per published block. One block is
// 1 KB of Op (16 cache lines): big enough that the SPSC handoff cost
// (two atomics and at most two non-blocking channel ops per block)
// amortizes to well under a nanosecond per op, small enough that a ring
// of ringBlocks blocks per core stays inside the L2 while a batch is
// consumed.
const RingBlockOps = 64

// ringBlocks is the ring capacity in blocks (power of two: slot index is
// a mask). 8 blocks x 1 KB lets a producer run half a quantum ahead
// without the buffers outgrowing the host caches at 16+ cores.
const ringBlocks = 8

// Ring is a bounded SPSC block ring over one Source. Exactly one producer
// goroutine (owned by a ProducerSet) publishes blocks and exactly one
// consumer goroutine takes them; head counts blocks published, tail counts
// blocks released, and the slot of block n is n mod ringBlocks. The
// producer may write slot head%ringBlocks only while head-tail < ringBlocks,
// so the block most recently returned by NextBlock — released only on the
// following NextBlock call — is never overwritten under the consumer.
//
// Wakeups use one-slot buffered channels with non-blocking sends plus a
// recheck loop on both sides, so a token can be stale but never lost: data
// (producer -> consumer, closed when a budgeted producer finishes) and
// space (consumer -> producer, shared by all rings of one producer
// goroutine). In the steady state neither side parks and a block handoff
// costs two atomic ops and two failed non-blocking sends.
type Ring struct {
	src   Source
	buf   []Op // ringBlocks x RingBlockOps, flat
	blen  [ringBlocks]int32
	data  chan struct{}   // cap 1; closed when the production budget is exhausted
	space chan struct{}   // cap 1; shared per producer goroutine
	stop  <-chan struct{} // closed by ProducerSet.Close

	// Producer-confined state.
	remaining int64 // ops left to produce; < 0 = unbounded
	exhausted bool

	// Consumer-confined state.
	holding bool // the block at tail is held by the consumer, not yet released

	// head and tail sit on their own cache lines: they are the only words
	// both sides touch per block, and sharing a line would bounce it on
	// every handoff.
	_    [64]byte
	head atomic.Uint64 // blocks published
	_    [56]byte
	tail atomic.Uint64 // blocks released
	_    [56]byte
}

func newRing(src Source, budget int64, space chan struct{}, stop <-chan struct{}) *Ring {
	return &Ring{
		src:       src,
		buf:       make([]Op, ringBlocks*RingBlockOps),
		data:      make(chan struct{}, 1),
		space:     space,
		stop:      stop,
		remaining: budget,
	}
}

// NextBlock releases the previously returned block (if any) and returns
// the next one, blocking until the producer publishes it. The returned
// slice aliases ring storage and is valid until the next NextBlock call;
// the steady-state path allocates nothing (TestRingConsumeAllocs).
// Consuming past a budgeted producer's last block panics — the consumer
// and producer disagreeing on the op budget is a protocol violation, not
// a wait state.
func (c *Ring) NextBlock() []Op {
	t := c.tail.Load()
	if c.holding {
		t++
		c.tail.Store(t)
		c.holding = false
		select {
		case c.space <- struct{}{}:
		default:
		}
	}
	for c.head.Load() == t {
		select {
		case _, ok := <-c.data:
			if !ok && c.head.Load() == t {
				panic("workload: ring consumed past its producer's budget")
			}
		case <-c.stop:
			if c.head.Load() == t {
				panic("workload: ring consumer outlived its producers (Close before drain)")
			}
		}
	}
	slot := t % ringBlocks
	c.holding = true
	return c.buf[slot*RingBlockOps : slot*RingBlockOps+uint64(c.blen[slot])]
}

// Drained reports whether every published block has been taken by the
// consumer (the held block counts as taken). After a budgeted producer
// has been joined with Wait, Drained means the source is quiescent: its
// state reflects exactly the produced budget, so checkpoints may cut here
// (the drain rule, DESIGN.md §12).
func (c *Ring) Drained() bool {
	d := c.head.Load() - c.tail.Load()
	if c.holding {
		d--
	}
	return d == 0
}

// fillOne publishes one block if the ring has space and budget left,
// returning whether it produced anything. Producer-side only.
func (c *Ring) fillOne() bool {
	if c.remaining == 0 {
		if !c.exhausted {
			c.exhausted = true
			close(c.data)
		}
		return false
	}
	h := c.head.Load()
	if h-c.tail.Load() == ringBlocks {
		return false // full; the consumer's release will wake us via space
	}
	n := int64(RingBlockOps)
	if c.remaining > 0 && c.remaining < n {
		n = c.remaining
	}
	slot := h % ringBlocks
	c.src.NextBatch(c.buf[slot*RingBlockOps : int64(slot*RingBlockOps)+n])
	c.blen[slot] = int32(n)
	c.head.Store(h + 1)
	if c.remaining > 0 {
		c.remaining -= n
		if c.remaining == 0 {
			c.exhausted = true
			close(c.data) // the close is itself the consumer wakeup
			return true
		}
	}
	select {
	case c.data <- struct{}{}:
	default:
	}
	return true
}

// ProducerSet runs the producer goroutines feeding one ring per source.
// Rings are assigned to goroutines round-robin (ring i to goroutine
// i mod threads), each goroutine filling one block per non-full ring per
// pass so its rings stay evenly ahead.
type ProducerSet struct {
	rings []*Ring
	stop  chan struct{}
	once  sync.Once
	wg    sync.WaitGroup
}

// StartProducers builds one ring per source and starts threads producer
// goroutines over them. budget >= 0 bounds the ops produced per source
// (the functional warm-up contract: exactly budget ops, final block
// possibly partial, after which the ring's data channel closes); budget
// < 0 produces forever until Close. The caller must not touch the
// sources until the set is joined (Wait or Close): the producers own the
// generator state.
func StartProducers(sources []Source, threads int, budget int64) *ProducerSet {
	if len(sources) == 0 {
		panic("workload: StartProducers with no sources")
	}
	if threads < 1 {
		panic(fmt.Sprintf("workload: StartProducers with %d threads", threads))
	}
	if threads > len(sources) {
		threads = len(sources)
	}
	ps := &ProducerSet{
		rings: make([]*Ring, len(sources)),
		stop:  make(chan struct{}),
	}
	spaces := make([]chan struct{}, threads)
	for t := range spaces {
		spaces[t] = make(chan struct{}, 1)
	}
	for i, src := range sources {
		ps.rings[i] = newRing(src, budget, spaces[i%threads], ps.stop)
	}
	ps.wg.Add(threads)
	for t := 0; t < threads; t++ {
		own := make([]*Ring, 0, (len(sources)+threads-1)/threads)
		for i := t; i < len(sources); i += threads {
			own = append(own, ps.rings[i])
		}
		go ps.produce(own, spaces[t])
	}
	return ps
}

// Ring returns source i's ring.
func (ps *ProducerSet) Ring(i int) *Ring { return ps.rings[i] }

// produce is one producer goroutine's loop: fill one block per owned ring
// per pass, park on space/stop when a full pass makes no progress, exit
// when every owned ring's budget is produced or stop closes.
func (ps *ProducerSet) produce(rings []*Ring, space chan struct{}) {
	defer ps.wg.Done()
	for {
		progress, live := false, false
		for _, r := range rings {
			if r.exhausted {
				continue
			}
			if r.fillOne() {
				progress = true
			}
			if !r.exhausted {
				live = true
			}
		}
		if !live {
			return
		}
		if progress {
			continue
		}
		select {
		case <-space:
		case <-ps.stop:
			return
		}
	}
}

// Wait joins the producers after they finish on their own — only budgeted
// sets terminate this way, and only once the consumer has taken enough
// blocks that every budgeted op fit in the rings.
func (ps *ProducerSet) Wait() { ps.wg.Wait() }

// Close stops the producers (idempotent) and joins them: goroutines
// parked on a full ring or mid-pass observe stop and exit; blocks already
// published stay readable. Close must be called from (or after) the
// consumer side — never concurrently with NextBlock on a ring that could
// be empty, which would panic the consumer instead of deadlocking it.
func (ps *ProducerSet) Close() {
	ps.once.Do(func() { close(ps.stop) })
	ps.wg.Wait()
}
