package workload

import (
	"runtime"
	"testing"
	"time"
)

// drainRing consumes exactly want ops from ring i of ps, returning them.
func drainRing(r *Ring, want int) []Op {
	out := make([]Op, 0, want)
	for len(out) < want {
		out = append(out, r.NextBlock()...)
	}
	if len(out) != want {
		panic("ring produced more ops than its budget")
	}
	return out
}

// TestRingGoldenHash extends the golden op-stream pin (TestStreamGolden)
// through the ring: the FNV-1a hash of 100k ops consumed block-wise from
// an off-thread producer must equal the serial path's committed constant —
// the determinism contract of DESIGN.md §12.
func TestRingGoldenHash(t *testing.T) {
	const want = uint64(0x680c5f7e54bf750b)
	st := NewStream(WebSearch(), 2, 16, 32, 42)
	ps := StartProducers([]Source{st}, 1, 100000)
	defer ps.Close()
	h := uint64(1469598103934665603) // FNV-64 offset basis
	for _, op := range drainRing(ps.Ring(0), 100000) {
		for _, w := range [2]uint64{op.IWord, op.DWord} {
			for b := 0; b < 64; b += 8 {
				h ^= w >> b & 0xFF
				h *= 1099511628211 // FNV-64 prime
			}
		}
	}
	ps.Wait()
	if h != want {
		t.Fatalf("ring op-stream hash %#x, want %#x: the ring path diverged from the serial generator", h, want)
	}
}

// TestRingMatchesSerial is the serial-vs-ring differential across thread
// counts and budgets (including partial final blocks and sub-block
// budgets): every core's op sequence through the ring must equal per-op
// Next on an identical fresh stream, and the producers must leave the
// stream exactly budget ops advanced (the checkpoint drain rule).
func TestRingMatchesSerial(t *testing.T) {
	const cores = 5
	for _, threads := range []int{1, 2, 3, 8} {
		for _, budget := range []int{1, 63, 64, 65, 1000, 4097} {
			ringStreams := make([]Source, cores)
			serial := make([]*Stream, cores)
			for c := 0; c < cores; c++ {
				ringStreams[c] = NewStream(WebSearch(), c, cores, 16, 99)
				serial[c] = NewStream(WebSearch(), c, cores, 16, 99)
			}
			ps := StartProducers(ringStreams, threads, int64(budget))
			for c := 0; c < cores; c++ {
				got := drainRing(ps.Ring(c), budget)
				var op Op
				for i, g := range got {
					serial[c].Next(&op)
					if g != op {
						t.Fatalf("threads=%d budget=%d core %d op %d: ring %+v != serial %+v", threads, budget, c, i, g, op)
					}
				}
				if !ps.Ring(c).Drained() {
					t.Fatalf("threads=%d budget=%d core %d: ring not drained after consuming the budget", threads, budget, c)
				}
			}
			ps.Wait()
			for c := 0; c < cores; c++ {
				if g := ringStreams[c].Generated(); g != uint64(budget) {
					t.Fatalf("threads=%d budget=%d core %d: stream generated %d ops, want exactly the budget %d", threads, budget, c, g, budget)
				}
			}
			ps.Close()
		}
	}
}

// TestRingConsumePastBudgetPanics pins the protocol-violation check: a
// consumer asking for more ops than the producer's budget must panic, not
// deadlock.
func TestRingConsumePastBudgetPanics(t *testing.T) {
	st := NewStream(WebSearch(), 0, 1, 32, 7)
	ps := StartProducers([]Source{st}, 1, 10)
	defer ps.Close()
	drainRing(ps.Ring(0), 10)
	defer func() {
		if recover() == nil {
			t.Fatal("NextBlock past the producer budget did not panic")
		}
	}()
	ps.Ring(0).NextBlock()
}

// checkNoGoroutineLeak fails the test if goroutines alive at cleanup
// exceed the count at call time (same pattern as the experiments
// fault-tolerance suite).
func checkNoGoroutineLeak(t *testing.T) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		for {
			if runtime.NumGoroutine() <= base {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				m := runtime.Stack(buf, true)
				t.Fatalf("producer goroutine leak\n%s", buf[:m])
			}
			time.Sleep(5 * time.Millisecond)
		}
	})
}

// TestRingProducerShutdown covers every producer exit path: budgeted
// completion (Wait), Close with nothing consumed (producers parked on a
// full ring), Close mid-consumption, and double Close — all without
// leaking a goroutine.
func TestRingProducerShutdown(t *testing.T) {
	newStreams := func(n int) []Source {
		sts := make([]Source, n)
		for c := range sts {
			sts[c] = NewStream(WebSearch(), c, n, 32, 13)
		}
		return sts
	}
	t.Run("budgeted-completion", func(t *testing.T) {
		checkNoGoroutineLeak(t)
		ps := StartProducers(newStreams(3), 2, 200)
		for c := 0; c < 3; c++ {
			drainRing(ps.Ring(c), 200)
		}
		ps.Wait()
		ps.Close()
	})
	t.Run("close-unconsumed", func(t *testing.T) {
		checkNoGoroutineLeak(t)
		ps := StartProducers(newStreams(4), 4, -1)
		time.Sleep(time.Millisecond) // let producers fill their rings and park
		ps.Close()
	})
	t.Run("close-mid-stream", func(t *testing.T) {
		checkNoGoroutineLeak(t)
		ps := StartProducers(newStreams(2), 1, -1)
		for i := 0; i < 50; i++ {
			ps.Ring(i % 2).NextBlock()
		}
		ps.Close()
		ps.Close() // idempotent
	})
}

// TestRingConsumeAllocs pins the steady-state block handoff at zero
// allocations on both sides. The producer half runs inline (fillOne) so
// the measurement is deterministic — no goroutine scheduling involved.
func TestRingConsumeAllocs(t *testing.T) {
	st := NewStream(WebSearch(), 0, 1, 32, 3)
	stop := make(chan struct{})
	defer close(stop)
	r := newRing(st, -1, make(chan struct{}, 1), stop)
	var sink int
	allocs := testing.AllocsPerRun(1000, func() {
		r.fillOne()
		sink += len(r.NextBlock())
	})
	if allocs != 0 {
		t.Fatalf("steady-state ring handoff allocates %.1f times per block, want 0", allocs)
	}
	if sink == 0 {
		t.Fatal("consumed nothing")
	}
}

// BenchmarkRingConsume measures the consumer-side cost of the off-thread
// path per op (generation itself runs on the producer goroutine), the
// number BENCH gen_overlap contextualizes.
func BenchmarkRingConsume(b *testing.B) {
	st := NewStream(WebSearch(), 0, 16, 32, 0x5EED)
	ps := StartProducers([]Source{st}, 1, -1)
	defer ps.Close()
	r := ps.Ring(0)
	b.ResetTimer()
	n := 0
	for n < b.N {
		n += len(r.NextBlock())
	}
	b.ReportMetric(float64(n)/float64(b.N), "ops/op")
}
