package workload

import (
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/mem"
)

// Snapshot serializes the stream's mutable generator state: the
// xorshift RNG, the PC walk, the scan/cold cursors and the generation
// counter. Everything else — scaled footprints, probability thresholds,
// divisor reciprocals — is a pure function of (Spec, core, ncores,
// scale, seed) and is rebuilt by NewStream on the restore side; the
// content-hash checkpoint key covers those inputs, so a restored stream
// continues the exact op sequence a from-scratch warm-up would produce.
func (s *Stream) Snapshot(w *checkpoint.Writer) {
	w.Section("workload.Stream")
	w.I64(int64(s.core))
	w.U64(s.rng.State())
	w.U64(uint64(s.pc))
	w.U64(uint64(s.lastILine))
	w.Bool(s.havePC)
	w.Bool(s.jumped)
	w.I64(s.scanCursor)
	w.I64(s.coldCursor)
	w.U64(s.generated)
}

// Restore overwrites a freshly constructed stream's mutable state.
func (s *Stream) Restore(r *checkpoint.Reader) error {
	if err := r.Section("workload.Stream"); err != nil {
		return err
	}
	core := int(r.I64())
	rngState := r.U64()
	pc := mem.Addr(r.U64())
	lastILine := mem.LineAddr(r.U64())
	havePC := r.Bool()
	jumped := r.Bool()
	scanCursor := r.I64()
	coldCursor := r.I64()
	generated := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if core != s.core {
		return fmt.Errorf("workload: checkpoint stream for core %d restored into core %d", core, s.core)
	}
	s.rng.SetState(rngState)
	s.pc = pc
	s.lastILine = lastILine
	s.havePC = havePC
	s.jumped = jumped
	s.scanCursor = scanCursor
	s.coldCursor = coldCursor
	s.generated = generated
	return nil
}
