package workload

import (
	"repro/internal/checkpoint"
	"repro/internal/mem"
)

// Source is an op stream as the rest of the simulator consumes one: the
// synthetic generator (Stream), the phased scenario wrapper (Phased),
// and recorded-trace replay (TraceSource) all satisfy it, so cores,
// rings, warm-up and checkpoints bind to the seam instead of the
// concrete generator. The batched-refill determinism contract carries
// over unchanged: NextBatch must be split-invariant — the op sequence
// (and any internal draw sequence) is identical for any partition of
// the same total into batches, and identical to per-op Next — so ring
// block boundaries and batch sizes can never change what a consumer
// observes (DESIGN.md §8, §12).
type Source interface {
	// Spec describes the stream; consumers read structural parameters
	// from it (cpu.Core takes MLP).
	Spec() Spec
	// Next fills op with the next instruction; both packed words are
	// written on every call.
	Next(op *Op)
	// NextBatch fills dst and returns len(dst) (sources never end).
	NextBatch(dst []Op) int
	// Generated reports ops produced so far (Next + NextBatch).
	Generated() uint64
	// Prewarm visits every line of the source's cache-resident
	// footprints once (may be a no-op for sources with none to declare,
	// e.g. trace replay).
	Prewarm(visit func(addr mem.Addr, instr bool))
	// Snapshot/Restore serialize the source's mutable state through the
	// checkpoint seams (DESIGN.md §11). Restore must verify it is fed a
	// snapshot of the same source shape.
	Snapshot(w *checkpoint.Writer)
	Restore(r *checkpoint.Reader) error
}

var _ Source = (*Stream)(nil)
