package workload

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/checkpoint"
	"repro/internal/mem"
)

// Recorded-trace replay (DESIGN.md §14): the production-traffic mode.
// A trace file is a versioned binary capture of a Stream's (or any
// Source's) op sequence; TraceSource replays it behind the same Source
// seam the synthetic generators use, looping when it runs out (sources
// never end). The format is fixed-width little-endian so the byte size
// determines the op count — no trailing length to keep in sync — and
// opens with a magic + version so a foreign or future file fails fast
// instead of replaying garbage:
//
//	offset  size  field
//	0       4     magic "RPT1"
//	4       4     version (uint32 LE, currently 1)
//	8       4     MLP (uint32 LE) — the recorded workload's MLP window
//	12      2     name length (uint16 LE)
//	14      n     name (UTF-8)
//	14+n    16·k  k ops, each (IWord uint64 LE, DWord uint64 LE)

// traceMagic opens every trace file; the trailing digit is the major
// format version, so even a pre-versioning reader fails on mismatch.
var traceMagic = [4]byte{'R', 'P', 'T', '1'}

// TraceVersion is the current trace format version.
const TraceVersion = 1

// maxTraceName bounds the embedded workload name.
const maxTraceName = 256

// TraceWriter streams ops into a trace file.
type TraceWriter struct {
	bw    *bufio.Writer
	count uint64
	err   error
}

// NewTraceWriter writes the header and returns a writer ready for ops.
// mlp must be positive — the replay consumer (cpu.Core) sizes its MLP
// window from it.
func NewTraceWriter(w io.Writer, name string, mlp int) (*TraceWriter, error) {
	if name == "" || len(name) > maxTraceName {
		return nil, fmt.Errorf("workload: trace name %q empty or over %d bytes", name, maxTraceName)
	}
	if mlp <= 0 {
		return nil, fmt.Errorf("workload: trace MLP %d must be positive", mlp)
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	var hdr [14]byte
	copy(hdr[0:4], traceMagic[:])
	binary.LittleEndian.PutUint32(hdr[4:8], TraceVersion)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(mlp))
	binary.LittleEndian.PutUint16(hdr[12:14], uint16(len(name)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	if _, err := bw.WriteString(name); err != nil {
		return nil, err
	}
	return &TraceWriter{bw: bw}, nil
}

// Write appends a batch of ops.
func (tw *TraceWriter) Write(ops []Op) error {
	if tw.err != nil {
		return tw.err
	}
	var rec [16]byte
	for i := range ops {
		binary.LittleEndian.PutUint64(rec[0:8], ops[i].IWord)
		binary.LittleEndian.PutUint64(rec[8:16], ops[i].DWord)
		if _, err := tw.bw.Write(rec[:]); err != nil {
			tw.err = err
			return err
		}
	}
	tw.count += uint64(len(ops))
	return nil
}

// Count reports ops written so far.
func (tw *TraceWriter) Count() uint64 { return tw.count }

// Finish flushes the writer. The caller owns closing the underlying
// file.
func (tw *TraceWriter) Finish() error {
	if tw.err != nil {
		return tw.err
	}
	return tw.bw.Flush()
}

// ReadTrace parses a whole trace. Every malformed-input path returns an
// error naming what disagreed; a valid trace must hold at least one op.
func ReadTrace(r io.Reader) (name string, mlp int, ops []Op, err error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [14]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return "", 0, nil, fmt.Errorf("workload: trace header: %w", err)
	}
	if [4]byte(hdr[0:4]) != traceMagic {
		return "", 0, nil, fmt.Errorf("workload: trace magic %q is not %q", hdr[0:4], traceMagic[:])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != TraceVersion {
		return "", 0, nil, fmt.Errorf("workload: trace version %d, this build reads %d", v, TraceVersion)
	}
	m := binary.LittleEndian.Uint32(hdr[8:12])
	if m == 0 || m > 1<<16 {
		return "", 0, nil, fmt.Errorf("workload: trace MLP %d outside (0, 65536]", m)
	}
	nameLen := int(binary.LittleEndian.Uint16(hdr[12:14]))
	if nameLen == 0 || nameLen > maxTraceName {
		return "", 0, nil, fmt.Errorf("workload: trace name length %d outside (0, %d]", nameLen, maxTraceName)
	}
	nb := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nb); err != nil {
		return "", 0, nil, fmt.Errorf("workload: trace name: %w", err)
	}
	var rec [16]byte
	for {
		_, err := io.ReadFull(br, rec[:])
		if err == io.EOF {
			break
		}
		if err != nil { // includes ErrUnexpectedEOF: a torn record
			return "", 0, nil, fmt.Errorf("workload: trace op %d: %w", len(ops), err)
		}
		op := Op{
			IWord: binary.LittleEndian.Uint64(rec[0:8]),
			DWord: binary.LittleEndian.Uint64(rec[8:16]),
		}
		if op.IWord != 0 && op.IWord&^1 == 0 {
			return "", 0, nil, fmt.Errorf("workload: trace op %d: jump flag without an ifetch line", len(ops))
		}
		ops = append(ops, op)
	}
	if len(ops) == 0 {
		return "", 0, nil, fmt.Errorf("workload: trace %q holds no ops", nb)
	}
	return string(nb), int(m), ops, nil
}

// TraceSource replays a recorded trace as a Source, looping at the end.
type TraceSource struct {
	name      string
	spec      Spec // synthetic: carries Name and MLP only
	ops       []Op
	cursor    int
	offset    uint64 // sharing-group address offset
	generated uint64
}

var _ Source = (*TraceSource)(nil)

// NewTraceSource builds a replay source over ops (not copied; the
// caller must not mutate them). offset places the client's sharing
// group (GroupOffset); start is the initial replay cursor, so the
// cores of a multi-core trace client can stagger their way around the
// same recording instead of replaying it in lockstep.
func NewTraceSource(name string, mlp int, ops []Op, offset uint64, start int) *TraceSource {
	if len(ops) == 0 {
		panic("workload: trace source with no ops")
	}
	if mlp <= 0 {
		panic(fmt.Sprintf("workload: trace source MLP %d must be positive", mlp))
	}
	if start < 0 || start >= len(ops) {
		panic(fmt.Sprintf("workload: trace start cursor %d outside [0,%d)", start, len(ops)))
	}
	return &TraceSource{
		name:   name,
		spec:   Spec{Name: name, MLP: mlp},
		ops:    ops,
		offset: offset,
		cursor: start,
	}
}

// Spec returns a synthetic spec carrying the trace's name and MLP; the
// stochastic fields are zero (replay has no generator to parameterize).
func (t *TraceSource) Spec() Spec { return t.spec }

// Generated reports ops produced so far.
func (t *TraceSource) Generated() uint64 { return t.generated }

// Next produces one op.
func (t *TraceSource) Next(op *Op) {
	*op = t.ops[t.cursor]
	if op.IWord != 0 {
		op.IWord += t.offset
	}
	if op.DWord != 0 {
		op.DWord += t.offset
	}
	t.cursor++
	if t.cursor == len(t.ops) {
		t.cursor = 0
	}
	t.generated++
}

// NextBatch fills dst from the trace, wrapping at the end. The sequence
// is a pure function of the cursor, so it is trivially split-invariant.
func (t *TraceSource) NextBatch(dst []Op) int {
	n := len(dst)
	for len(dst) > 0 {
		c := copy(dst, t.ops[t.cursor:])
		applyOffset(dst[:c], t.offset)
		t.cursor += c
		if t.cursor == len(t.ops) {
			t.cursor = 0
		}
		dst = dst[c:]
	}
	t.generated += uint64(n)
	return n
}

// Prewarm is a no-op: a trace declares no analytic footprint, so replay
// warms organically through WarmFunctional.
func (t *TraceSource) Prewarm(func(addr mem.Addr, instr bool)) {}

// Snapshot serializes the replay position plus shape cross-checks.
func (t *TraceSource) Snapshot(w *checkpoint.Writer) {
	w.Section("workload.Trace")
	w.String(t.name)
	w.I64(int64(len(t.ops)))
	w.U64(t.offset)
	w.I64(int64(t.cursor))
	w.U64(t.generated)
}

// Restore overwrites the replay position, verifying the trace shape.
func (t *TraceSource) Restore(r *checkpoint.Reader) error {
	if err := r.Section("workload.Trace"); err != nil {
		return err
	}
	name := r.String()
	nops := int(r.I64())
	offset := r.U64()
	cursor := int(r.I64())
	generated := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if name != t.name || nops != len(t.ops) || offset != t.offset {
		return fmt.Errorf("workload: checkpoint trace (%q, %d ops, offset %#x) restored into (%q, %d ops, offset %#x)",
			name, nops, offset, t.name, len(t.ops), t.offset)
	}
	if cursor < 0 || cursor >= len(t.ops) {
		return fmt.Errorf("workload: checkpoint trace cursor %d outside [0,%d)", cursor, len(t.ops))
	}
	t.cursor = cursor
	t.generated = generated
	return nil
}
