package workload

import (
	"bytes"
	"testing"
)

// recordOps captures n ops from a fresh stream.
func recordOps(t *testing.T, n int) []Op {
	t.Helper()
	st := NewStream(WebSearch(), 0, 4, 16, 5)
	ops := make([]Op, n)
	st.NextBatch(ops)
	return ops
}

// TestTraceRoundTrip: write → read reproduces name, MLP and every op.
func TestTraceRoundTrip(t *testing.T) {
	ops := recordOps(t, 5000)
	var buf bytes.Buffer
	tw, err := NewTraceWriter(&buf, "WebSearch", 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Write(ops[:1234]); err != nil {
		t.Fatal(err)
	}
	if err := tw.Write(ops[1234:]); err != nil {
		t.Fatal(err)
	}
	if err := tw.Finish(); err != nil {
		t.Fatal(err)
	}
	if tw.Count() != 5000 {
		t.Fatalf("writer counted %d ops", tw.Count())
	}
	name, mlp, got, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if name != "WebSearch" || mlp != 4 || len(got) != 5000 {
		t.Fatalf("read back (%q, %d, %d ops)", name, mlp, len(got))
	}
	for i := range got {
		if got[i] != ops[i] {
			t.Fatalf("op %d: %+v != %+v", i, got[i], ops[i])
		}
	}
}

// TestTraceRejects covers every malformed-input path: each must error,
// never panic or return garbage.
func TestTraceRejects(t *testing.T) {
	valid := func() []byte {
		var buf bytes.Buffer
		tw, _ := NewTraceWriter(&buf, "w", 2)
		tw.Write(recordOps(t, 10))
		tw.Finish()
		return buf.Bytes()
	}()

	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short header", valid[:8]},
		{"bad magic", append([]byte("XXXX"), valid[4:]...)},
		{"future version", func() []byte {
			b := bytes.Clone(valid)
			b[4] = 99
			return b
		}()},
		{"zero mlp", func() []byte {
			b := bytes.Clone(valid)
			b[8], b[9], b[10], b[11] = 0, 0, 0, 0
			return b
		}()},
		{"zero name length", func() []byte {
			b := bytes.Clone(valid)
			b[12], b[13] = 0, 0
			return b
		}()},
		{"torn record", valid[:len(valid)-7]},
		{"no ops", valid[:15]}, // header + name only
		{"jump flag without line", func() []byte {
			b := bytes.Clone(valid)
			// Overwrite the first op's IWord with the bare jump bit.
			copy(b[15:23], []byte{1, 0, 0, 0, 0, 0, 0, 0})
			return b
		}()},
	}
	for _, tc := range cases {
		if _, _, _, err := ReadTrace(bytes.NewReader(tc.data)); err == nil {
			t.Errorf("%s: ReadTrace accepted it", tc.name)
		}
	}

	if _, err := NewTraceWriter(&bytes.Buffer{}, "", 2); err == nil {
		t.Error("empty trace name accepted")
	}
	if _, err := NewTraceWriter(&bytes.Buffer{}, "w", 0); err == nil {
		t.Error("zero MLP accepted")
	}
}

// TestTraceSourceReplay: the source loops the recorded ops exactly, at
// any batch size, with the group offset applied.
func TestTraceSourceReplay(t *testing.T) {
	ops := recordOps(t, 100)
	off := GroupOffset(2)
	ref := NewTraceSource("w", 2, ops, off, 0)
	want := make([]Op, 350) // wraps 3.5 times
	for i := range want {
		ref.Next(&want[i])
	}
	for i := range want {
		raw := ops[i%100]
		if raw.IWord != 0 {
			raw.IWord += off
		}
		if raw.DWord != 0 {
			raw.DWord += off
		}
		if want[i] != raw {
			t.Fatalf("op %d: %+v, recorded %+v", i, want[i], raw)
		}
	}
	for _, batch := range []int{1, 3, 64, 333} {
		src := NewTraceSource("w", 2, ops, off, 0)
		got := make([]Op, 0, len(want))
		buf := make([]Op, batch)
		for len(got) < len(want) {
			src.NextBatch(buf)
			got = append(got, buf...)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("batch %d: op %d diverged", batch, i)
			}
		}
	}
}
