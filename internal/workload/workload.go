// Package workload synthesizes the memory behaviour of the paper's
// workloads (Table IV scale-out and enterprise applications, Table V
// SPEC'06 mixes). The real applications run under a full OS on a
// full-system simulator; here each workload is a deterministic stochastic
// stream generator whose parameters are calibrated to the paper's published
// characterization:
//
//   - working-set structure (Fig 1 capacity sensitivity): a primary per-core
//     set that lives in the L1, a secondary per-core set whose fit in the
//     LLC determines capacity sensitivity, and a cold stream that always
//     misses;
//   - latency sensitivity (Fig 2): low memory-level parallelism exposes
//     L1-miss latency to the core, controlled by MLP and IndepProb;
//   - sharing behaviour (Figs 3-4): a small read-write shared pool accessed
//     by all cores, plus read-only instruction sharing and a probability of
//     touching another core's secondary slice;
//   - instruction footprints large enough to miss in the L1-I, the classic
//     scale-out frontend bottleneck.
//
// Scale note: all LLC-level footprints below are expressed at paper scale
// and divided by the configured capacity scale (see internal/core) before
// address generation, together with the cache capacities themselves, so
// capacity ratios — and therefore hit rates — are preserved while keeping
// warm-up tractable.
package workload

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/sim"
)

// Class groups workloads the way the paper's evaluation sections do.
type Class uint8

const (
	// ScaleOut workloads are the CloudSuite-derived primary targets.
	ScaleOut Class = iota
	// Enterprise workloads are the traditional server applications.
	Enterprise
	// Batch workloads are the SPEC CPU2006 components of Table V mixes.
	Batch
)

func (c Class) String() string {
	switch c {
	case ScaleOut:
		return "scale-out"
	case Enterprise:
		return "enterprise"
	case Batch:
		return "batch"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// Spec parameterizes one workload's synthetic stream. All sizes are bytes
// at paper scale; footprints marked "per core" are private to each core.
type Spec struct {
	Name  string
	Class Class

	// Instruction stream: a shared (read-only) code footprint. The PC walks
	// sequentially and jumps to a random function every JumpEveryLines
	// cache lines, modelling the large instruction working sets of server
	// software.
	InstrFootprint int64
	JumpEveryLines int

	// MemRatio is the fraction of instructions that access data memory;
	// StoreFrac the fraction of those that are stores.
	MemRatio  float64
	StoreFrac float64

	// Data regions. Fractions are of data accesses; the remainder after
	// Primary+Middle+Secondary+RWShared is the cold stream.
	PrimaryWSS  int64 // per core; sized to (mostly) fit the L1-D
	PrimaryFrac float64
	// The middle set misses the L1 but fits even the small shared LLC;
	// it is what makes every workload sensitive to LLC *latency*
	// regardless of capacity (paper Fig 2).
	MiddleWSS     int64
	MiddleFrac    float64
	SecondaryWSS  int64 // per core; the LLC-capacity-sensitive set
	SecondaryFrac float64
	ScanFrac      float64 // of secondary accesses that follow a circular scan
	RemoteProb    float64 // chance a secondary access touches another core's slice

	// Read-write sharing (Figs 3-4): a global pool touched by all cores.
	RWSharedFrac    float64
	SharedPool      int64
	SharedWriteFrac float64

	// Core behaviour: MLP bounds outstanding L1-D misses; IndepProb is the
	// chance a miss is independent of the previous instruction (can
	// overlap). Server workloads have low MLP (paper Sec. II-B).
	MLP       int
	IndepProb float64
}

// Check reports the first internal inconsistency as an error naming the
// offending field, or nil. Beyond structural checks (footprints, MLP),
// every fraction field is held to its domain and the data-region
// fractions must sum to at most 1 — historically only the sum was
// checked, so a preset or spec file with, say, a negative MiddleFrac or
// a StoreFrac of 1.3 silently skewed the generated stream (the
// threshold comparisons clamp rather than fail). Spec files arriving
// from disk (internal/scenario) go through Check and surface the error;
// compiled-in presets go through Validate and fail loudly.
func (s *Spec) Check() error {
	if s.Name == "" {
		return fmt.Errorf("workload: unnamed spec")
	}
	if s.InstrFootprint < mem.LineSize {
		return fmt.Errorf("workload %s: InstrFootprint %d below one line", s.Name, s.InstrFootprint)
	}
	if s.JumpEveryLines <= 0 {
		return fmt.Errorf("workload %s: JumpEveryLines %d must be positive", s.Name, s.JumpEveryLines)
	}
	if s.MemRatio <= 0 || s.MemRatio >= 1 {
		return fmt.Errorf("workload %s: MemRatio %v outside (0,1)", s.Name, s.MemRatio)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"StoreFrac", s.StoreFrac},
		{"PrimaryFrac", s.PrimaryFrac},
		{"MiddleFrac", s.MiddleFrac},
		{"SecondaryFrac", s.SecondaryFrac},
		{"ScanFrac", s.ScanFrac},
		{"RemoteProb", s.RemoteProb},
		{"RWSharedFrac", s.RWSharedFrac},
		{"SharedWriteFrac", s.SharedWriteFrac},
		{"IndepProb", s.IndepProb},
	} {
		if f.v < 0 || f.v > 1 || f.v != f.v {
			return fmt.Errorf("workload %s: %s %v outside [0,1]", s.Name, f.name, f.v)
		}
	}
	sum := s.PrimaryFrac + s.MiddleFrac + s.SecondaryFrac + s.RWSharedFrac
	if sum > 1+1e-9 {
		return fmt.Errorf("workload %s: data fractions sum to %v > 1", s.Name, sum)
	}
	if s.PrimaryWSS < mem.LineSize || s.SecondaryWSS < mem.LineSize {
		return fmt.Errorf("workload %s: degenerate working sets (primary %d, secondary %d)", s.Name, s.PrimaryWSS, s.SecondaryWSS)
	}
	if s.MiddleFrac > 0 && s.MiddleWSS < mem.LineSize {
		return fmt.Errorf("workload %s: middle accesses without a middle set", s.Name)
	}
	if s.RWSharedFrac > 0 && s.SharedPool < mem.LineSize {
		return fmt.Errorf("workload %s: shared accesses without a pool", s.Name)
	}
	if s.MLP <= 0 {
		return fmt.Errorf("workload %s: MLP %d must be positive", s.Name, s.MLP)
	}
	return nil
}

// Validate panics when the spec is internally inconsistent; it is called by
// stream constructors so broken presets fail loudly.
func (s *Spec) Validate() {
	if err := s.Check(); err != nil {
		panic(err.Error())
	}
}

// ColdFrac returns the fraction of data accesses that stream through cold
// (never-reused) memory.
func (s *Spec) ColdFrac() float64 {
	return 1 - s.PrimaryFrac - s.MiddleFrac - s.SecondaryFrac - s.RWSharedFrac
}

// Op is one instruction produced by a stream, packed into two words so a
// pre-generated batch costs its consumer two loads per op and fills half
// the cache lines a field-per-flag struct did. IWord carries the
// instruction side (line addresses are 64-aligned, so bit 0 is free for
// the jump flag); DWord carries the data side (addresses stay below 2^56
// — the workload map tops out under 2^42 — leaving the top byte for
// flags, and a non-memory op is all-zero). The generator always writes
// both words, so an op never carries stale state from a previous one.
// Read through the accessor methods below.
type Op struct {
	// IWord is the new instruction-fetch line with bit 0 carrying the jump
	// flag; 0 = the op does not enter a new instruction line.
	IWord uint64
	// DWord is the data address (bits 0-55) with the opMem..opNonTemporal
	// flags above; 0 = the op is not a memory access.
	DWord uint64
}

// DWord flag bits and the address field they sit above.
const (
	opMem         = uint64(1) << 63
	opWrite       = uint64(1) << 62
	opRWShared    = uint64(1) << 61
	opIndependent = uint64(1) << 60
	opNonTemporal = uint64(1) << 59
	opAddrMask    = uint64(1)<<56 - 1
)

// NewIFetchLine is non-zero when this instruction enters a new
// instruction cache line.
func (o Op) NewIFetchLine() mem.LineAddr { return mem.LineAddr(o.IWord &^ 1) }

// Jump marks a non-sequential control transfer (the sequential case is
// covered by the next-line prefetcher).
func (o Op) Jump() bool { return o.IWord&1 != 0 }

// IsMem marks a data access with the fields below.
func (o Op) IsMem() bool { return o.DWord != 0 }

// Addr is the accessed byte address (meaningful only when IsMem).
func (o Op) Addr() mem.Addr { return mem.Addr(o.DWord & opAddrMask) }

// Write marks a store.
func (o Op) Write() bool { return o.DWord&opWrite != 0 }

// RWShared marks an access to the global read-write shared pool.
func (o Op) RWShared() bool { return o.DWord&opRWShared != 0 }

// Independent marks a miss the core may overlap (not dependent on the
// previous instruction).
func (o Op) Independent() bool { return o.DWord&opIndependent != 0 }

// NonTemporal marks never-reused streaming accesses; caches insert their
// fills at LRU priority (see cache.InsertNonTemporal).
func (o Op) NonTemporal() bool { return o.DWord&opNonTemporal != 0 }

// Address-map region bases. Regions are separated in the high bits so no
// workload region ever aliases another. Bases and per-core strides carry
// line-aligned odd "salts": purely power-of-two spacing would make every
// region and every core's slice collapse onto the same low cache sets
// (set index = line mod sets), thrashing direct-mapped structures in a way
// no real memory layout does.
const (
	instrBase   = mem.Addr(0x01_0000_0000 + 64*11)
	primaryBase = mem.Addr(0x02_0000_0000 + 64*17041)
	middleBase  = mem.Addr(0x04_0000_0000 + 64*26227)
	sharedBase  = mem.Addr(0x08_0000_0000 + 64*33749)
	secBase     = mem.Addr(0x10_0000_0000 + 64*49999)
	coldBase    = mem.Addr(0x80_0000_0000 + 64*3163)

	primaryStride = 1<<26 + 64*10007  // per-core spacing of primary slices
	middleStride  = 1<<27 + 64*23039  // per-core spacing of middle slices
	secStride     = 1<<32 + 64*101117 // per-core spacing of secondary slices
	coldStride    = 1<<36 + 64*51511  // per-core spacing of cold streams
)

// Stream generates a core's instruction/memory trace deterministically.
type Stream struct {
	spec   Spec
	core   int
	ncores int
	scale  int64 // capacity scale divisor (1 = paper scale)
	rng    *sim.RNG

	// Scaled footprints (bytes).
	instrFP, primary, middle, secondary, sharedPool, coldRegion int64

	// Precomputed sim.Threshold comparands for every probability the hot
	// loop tests (compared against one rng.Raw53 draw; bit-identical to
	// the Float64 comparisons they replace — see sim.RNG.Raw53).
	th struct {
		mem, jump, hotJump             float64
		primary, middle, secondary, rw float64 // cumulative region splits
		store, sharedWrite             float64
		scan, remote                   float64
		indep, indepMiddle, indepSec   float64
		indepShared, indepCold         float64
	}

	// Precomputed sim.Divisor reciprocals for every bounded draw in the
	// hot loop (exact n%d without a hardware divide), plus the hot-jump
	// span they parameterize.
	instrDiv, hotDiv, primaryDiv, middleDiv sim.Divisor
	secondaryDiv, sharedDiv, coldDiv        sim.Divisor
	remoteDiv                               sim.Divisor // over ncores-1 peers
	hotSpan                                 uint64

	pc         mem.Addr // next instruction address
	lastILine  mem.LineAddr
	havePC     bool
	jumped     bool // the last line transition was a taken branch
	scanCursor int64
	coldCursor int64
	generated  uint64 // ops produced by Next
}

// NewStream builds the deterministic stream for one core. scale divides
// every footprint — instruction, primary, middle, secondary, shared —
// mirroring the capacity scaling of the simulated caches (including the
// L1s), so every footprint:capacity ratio matches paper scale. seed
// selects the run.
func NewStream(spec Spec, core, ncores int, scale int64, seed uint64) *Stream {
	spec.Validate()
	if core < 0 || core >= ncores {
		panic(fmt.Sprintf("workload: core %d outside [0,%d)", core, ncores))
	}
	if scale <= 0 {
		panic("workload: non-positive scale")
	}
	st := &Stream{
		core:   core,
		ncores: ncores,
		scale:  scale,
		rng:    sim.NewRNG(seed).Fork(uint64(core) + 1),
	}
	st.retune(spec)
	// Stagger scan cursors so cores do not move in lockstep.
	st.scanCursor = (st.secondary / int64(ncores)) * int64(core)
	st.pc = instrBase + mem.Addr(st.rng.Uint64n(uint64(st.instrFP)))&^(mem.LineSize-1)
	return st
}

// retune installs spec's derived parameters — scaled footprints,
// probability thresholds, divisor reciprocals — leaving the mutable
// walk state (rng, pc, cursors, generated) untouched. It is the shared
// tail of NewStream and Retune; the comments inside predate the split
// and still describe the draw-identity contract.
func (st *Stream) retune(spec Spec) {
	scaled := func(v int64) int64 {
		s := v / st.scale
		if s < mem.LineSize {
			s = mem.LineSize
		}
		// Round down to a whole number of lines.
		return s &^ (mem.LineSize - 1)
	}
	st.spec = spec
	st.instrFP = scaled(spec.InstrFootprint)
	st.primary = scaled(spec.PrimaryWSS)
	st.secondary = scaled(spec.SecondaryWSS)
	st.middle = 0
	if spec.MiddleFrac > 0 {
		st.middle = scaled(spec.MiddleWSS)
	}
	st.coldRegion = scaled(coldRegionBytes)
	st.sharedPool = 0
	if spec.RWSharedFrac > 0 {
		st.sharedPool = scaled(spec.SharedPool)
	}

	// The cumulative region splits reproduce nextData's historical
	// `r < f1+f2+…` sums term for term, so the float rounding — and hence
	// every region decision — is unchanged.
	st.th.mem = sim.Threshold(spec.MemRatio)
	st.th.jump = sim.Threshold(1 / float64(spec.JumpEveryLines))
	st.th.hotJump = sim.Threshold(hotJumpProb)
	st.th.primary = sim.Threshold(spec.PrimaryFrac)
	st.th.middle = sim.Threshold(spec.PrimaryFrac + spec.MiddleFrac)
	st.th.secondary = sim.Threshold(spec.PrimaryFrac + spec.MiddleFrac + spec.SecondaryFrac)
	st.th.rw = sim.Threshold(spec.PrimaryFrac + spec.MiddleFrac + spec.SecondaryFrac + spec.RWSharedFrac)
	st.th.store = sim.Threshold(spec.StoreFrac)
	st.th.sharedWrite = sim.Threshold(spec.SharedWriteFrac)
	st.th.scan = sim.Threshold(spec.ScanFrac)
	st.th.remote = sim.Threshold(spec.RemoteProb)
	st.th.indep = sim.Threshold(spec.IndepProb)
	st.th.indepMiddle = sim.Threshold(scaledProb(spec.IndepProb, middleIndepScale))
	st.th.indepSec = sim.Threshold(scaledProb(spec.IndepProb, secondaryIndepScale))
	st.th.indepShared = sim.Threshold(scaledProb(spec.IndepProb, sharedIndepScale))
	st.th.indepCold = sim.Threshold(scaledProb(spec.IndepProb, coldIndepScale))

	st.instrDiv = sim.NewDivisor(uint64(st.instrFP))
	st.hotSpan = uint64(float64(st.instrFP) * hotInstrFrac)
	if st.hotSpan >= mem.LineSize {
		st.hotDiv = sim.NewDivisor(st.hotSpan)
	}
	st.primaryDiv = sim.NewDivisor(uint64(st.primary))
	if st.middle > 0 {
		st.middleDiv = sim.NewDivisor(uint64(st.middle))
	}
	st.secondaryDiv = sim.NewDivisor(uint64(st.secondary))
	if st.sharedPool > 0 {
		st.sharedDiv = sim.NewDivisor(uint64(st.sharedPool))
	}
	st.coldDiv = sim.NewDivisor(uint64(st.coldRegion))
	if st.ncores > 1 {
		st.remoteDiv = sim.NewDivisor(uint64(st.ncores - 1))
	}
}

// Retune re-parameterizes a live stream to a new spec — the phased-
// scenario seam (DESIGN.md §14): a Phased wrapper switches its inner
// stream's behaviour at deterministic op counts by swapping the derived
// parameters while the walk state (RNG, PC, cursors, generation count)
// carries over, the way a real application's phase change keeps its
// code and data in place. Cursors that the new footprints leave out of
// range are wrapped back in; the PC is clamped the same way so the
// instruction walk stays inside the (possibly smaller) code footprint.
func (st *Stream) Retune(spec Spec) {
	spec.Validate()
	st.retune(spec)
	if st.scanCursor >= st.secondary {
		st.scanCursor %= st.secondary
	}
	if off := int64(st.pc - instrBase); off < 0 || off >= st.instrFP {
		st.pc = instrBase + mem.Addr(off%st.instrFP)&^(mem.LineSize-1)
	}
}

// Spec returns the stream's workload spec.
func (s *Stream) Spec() Spec { return s.spec }

// Generated reports how many ops the stream has produced — handed out by
// Next or filled into a NextBatch buffer. A batching consumer (cpu.Core)
// may hold up to one batch of generated-but-not-yet-executed ops, so
// Generated can run ahead of execution by at most the batch size; tests
// cross-check the core's Consumed counter (every op taken from the batch
// retires) rather than this count.
func (s *Stream) Generated() uint64 { return s.generated }

// Next fills op with the next instruction. op is reused by callers to
// avoid allocation in the simulation hot loop; both packed words are
// written on every call, so no stale state survives reuse.
func (s *Stream) Next(op *Op) {
	s.generated++
	s.rng.SetState(s.gen(op, s.rng.State()))
}

// NextBatch fills dst with the next len(dst) ops of the stream and returns
// how many it produced (always len(dst); the stream never ends). It is the
// batched form of Next: the ops and the RNG draw sequence are identical by
// construction — gen is the single generator both paths call, in the same
// order, so a refill boundary can never reorder or drop a draw (the
// determinism contract, DESIGN.md §8; TestNextBatchMatchesNext proves the
// equivalence directly). Batching exists for the consumer's sake: the RNG
// state crosses memory once per refill instead of once per op (see gen's
// state threading), and the generator's threshold state stays hot instead
// of interleaving every op with memory-system work. dst is reused across
// refills and the path allocates nothing.
func (s *Stream) NextBatch(dst []Op) int {
	x := s.rng.State()
	for i := range dst {
		x = s.gen(&dst[i], x)
	}
	s.rng.SetState(x)
	s.generated += uint64(len(dst))
	return len(dst)
}

// Instruction-stream locality: real code concentrates execution in hot
// functions. hotJumpProb of taken jumps land in the hot fraction of the
// footprint; the rest are uniform over the whole code. This skew is what
// lets a shared LLC retain the hot instruction working set against data
// churn while the cold tail still misses (the scale-out frontend profile).
const (
	hotJumpProb  = 0.96
	hotInstrFrac = 0.08
)

// gen produces one op (see Next for the field-reset contract), threading
// the RNG state x through every draw in register instead of bouncing it
// off the Stream per draw: each `x = sim.StateStep(x)` + StateRaw53 /
// StateUint64 pair reproduces exactly one historical rng.Raw53() /
// rng.Uint64Mod() call, in the same order, so the draw sequence — and
// therefore every generated op — is bit-identical to the pre-threading
// code. Callers own the round-trip (rng.State() in, rng.SetState() out).
//
// The instruction side advances the PC by one instruction (4 bytes),
// jumping to a random function start every JumpEveryLines lines on
// average; the data side picks the region and address for memory ops.
func (s *Stream) gen(op *Op, x uint64) uint64 {
	// Instruction fetch.
	var iw uint64
	line := s.pc.Line()
	if !s.havePC || line != s.lastILine {
		iw = uint64(line) // instruction lines sit above 2^32: never 0
		if s.havePC && s.jumped {
			iw |= 1
		}
		s.lastILine = line
		s.havePC = true
	}
	s.jumped = false
	// Advance.
	next := s.pc + 4
	if next.Line() != line {
		// Crossing a line boundary: maybe jump instead.
		x = sim.StateStep(x)
		if sim.StateRaw53(x) < s.th.jump {
			dv := s.instrDiv
			x = sim.StateStep(x)
			if sim.StateRaw53(x) < s.th.hotJump && s.hotSpan >= mem.LineSize {
				dv = s.hotDiv
			}
			x = sim.StateStep(x)
			next = instrBase + mem.Addr(dv.Mod(sim.StateUint64(x)))&^(mem.LineSize-1)
			s.jumped = true
		}
		if uint64(next-instrBase) >= uint64(s.instrFP) {
			next = instrBase
		}
	}
	s.pc = next
	op.IWord = iw

	// Data access?
	x = sim.StateStep(x)
	if sim.StateRaw53(x) < s.th.mem {
		return s.genData(op, x)
	}
	op.DWord = 0
	return x
}

// Region-dependent instruction-level parallelism: middle-set accesses are
// array/hash lookups whose addresses rarely depend on in-flight loads, so
// an OoO core overlaps them well; secondary accesses are pointer chases
// that serialize (the low-MLP behaviour paper Sec. II-B attributes to
// server workloads). Both scale the spec's base IndepProb.
const (
	middleIndepScale    = 2.4
	secondaryIndepScale = 0.6
	coldIndepScale      = 2.0 // streaming misses prefetch/overlap well
	sharedIndepScale    = 2.6 // GC/producer-consumer traffic is asynchronous
)

// coldRegionBytes is the per-core cold region at paper scale.
const coldRegionBytes = int64(16) << 30

func scaledProb(p, scale float64) float64 {
	p *= scale
	if p > 0.95 {
		p = 0.95
	}
	return p
}

// genData picks the data region and address for a memory instruction,
// threading the RNG state like gen and assembling the packed DWord in
// registers: the default independence draw happens first (historical draw
// order), some region branches re-draw it, and the composed word lands in
// op with a single store.
func (s *Stream) genData(op *Op, x uint64) uint64 {
	dw := opMem
	x = sim.StateStep(x)
	indep := sim.StateRaw53(x) < s.th.indep
	x = sim.StateStep(x)
	r := sim.StateRaw53(x)
	var addr mem.Addr
	switch {
	case r < s.th.primary:
		base := primaryBase + mem.Addr(int64(s.core)*primaryStride)
		x = sim.StateStep(x)
		addr = base + mem.Addr(s.primaryDiv.Mod(sim.StateUint64(x)))
		x = sim.StateStep(x)
		if sim.StateRaw53(x) < s.th.store {
			dw |= opWrite
		}
	case r < s.th.middle:
		base := middleBase + mem.Addr(int64(s.core)*middleStride)
		x = sim.StateStep(x)
		addr = base + mem.Addr(s.middleDiv.Mod(sim.StateUint64(x)))
		x = sim.StateStep(x)
		if sim.StateRaw53(x) < s.th.store {
			dw |= opWrite
		}
		x = sim.StateStep(x)
		indep = sim.StateRaw53(x) < s.th.indepMiddle
	case r < s.th.secondary:
		owner := s.core
		if s.ncores > 1 {
			x = sim.StateStep(x)
			if sim.StateRaw53(x) < s.th.remote {
				x = sim.StateStep(x)
				owner = int(s.remoteDiv.Mod(sim.StateUint64(x)))
				if owner >= s.core {
					owner++
				}
			}
		}
		base := secBase + mem.Addr(int64(owner)*secStride)
		var off int64
		x = sim.StateStep(x)
		if sim.StateRaw53(x) < s.th.scan {
			off = s.scanCursor
			s.scanCursor += mem.LineSize
			if s.scanCursor >= s.secondary {
				s.scanCursor = 0
			}
		} else {
			x = sim.StateStep(x)
			off = int64(s.secondaryDiv.Mod(sim.StateUint64(x)))
		}
		addr = base + mem.Addr(off)
		x = sim.StateStep(x)
		if sim.StateRaw53(x) < s.th.store {
			dw |= opWrite
		}
		x = sim.StateStep(x)
		indep = sim.StateRaw53(x) < s.th.indepSec
	case r < s.th.rw:
		x = sim.StateStep(x)
		addr = sharedBase + mem.Addr(s.sharedDiv.Mod(sim.StateUint64(x)))
		x = sim.StateStep(x)
		if sim.StateRaw53(x) < s.th.sharedWrite {
			dw |= opWrite
		}
		dw |= opRWShared
		x = sim.StateStep(x)
		indep = sim.StateRaw53(x) < s.th.indepShared
	default:
		// Cold stream: uniform over a region far larger than any cache
		// (16GB per core at paper scale), so reuse is negligible and the
		// page-based DRAM cache finds no spatial footprint to exploit.
		base := coldBase + mem.Addr(int64(s.core)*coldStride)
		x = sim.StateStep(x)
		addr = base + mem.Addr(s.coldDiv.Mod(sim.StateUint64(x)))
		x = sim.StateStep(x)
		if sim.StateRaw53(x) < s.th.store {
			dw |= opWrite
		}
		x = sim.StateStep(x)
		indep = sim.StateRaw53(x) < s.th.indepCold
		dw |= opNonTemporal
	}
	if indep {
		dw |= opIndependent
	}
	op.DWord = dw | uint64(addr)
	return x
}

// Prewarm visits every line of the stream's cache-resident footprints
// exactly once — instructions, middle set, the secondary slice, and the
// shared pool — calling visit for each. The secondary slice is emitted in
// scan order starting at the scan cursor, so after a functional replay the
// LRU state matches a scan that has been running forever. This is the
// reproduction's substitute for the paper's warmed checkpoints: it seeds
// steady-state cache contents in time proportional to the footprint rather
// than to the access count that would organically touch it.
func (s *Stream) Prewarm(visit func(addr mem.Addr, instr bool)) {
	for off := int64(0); off < s.instrFP; off += mem.LineSize {
		visit(instrBase+mem.Addr(off), true)
	}
	if s.middle > 0 {
		base := middleBase + mem.Addr(int64(s.core)*middleStride)
		for off := int64(0); off < s.middle; off += mem.LineSize {
			visit(base+mem.Addr(off), false)
		}
	}
	if s.sharedPool > 0 {
		for off := int64(0); off < s.sharedPool; off += mem.LineSize {
			visit(sharedBase+mem.Addr(off), false)
		}
	}
	base := secBase + mem.Addr(int64(s.core)*secStride)
	for i := int64(0); i < s.secondary; i += mem.LineSize {
		off := (s.scanCursor + i) % s.secondary
		visit(base+mem.Addr(off), false)
	}
}
