// Package workload synthesizes the memory behaviour of the paper's
// workloads (Table IV scale-out and enterprise applications, Table V
// SPEC'06 mixes). The real applications run under a full OS on a
// full-system simulator; here each workload is a deterministic stochastic
// stream generator whose parameters are calibrated to the paper's published
// characterization:
//
//   - working-set structure (Fig 1 capacity sensitivity): a primary per-core
//     set that lives in the L1, a secondary per-core set whose fit in the
//     LLC determines capacity sensitivity, and a cold stream that always
//     misses;
//   - latency sensitivity (Fig 2): low memory-level parallelism exposes
//     L1-miss latency to the core, controlled by MLP and IndepProb;
//   - sharing behaviour (Figs 3-4): a small read-write shared pool accessed
//     by all cores, plus read-only instruction sharing and a probability of
//     touching another core's secondary slice;
//   - instruction footprints large enough to miss in the L1-I, the classic
//     scale-out frontend bottleneck.
//
// Scale note: all LLC-level footprints below are expressed at paper scale
// and divided by the configured capacity scale (see internal/core) before
// address generation, together with the cache capacities themselves, so
// capacity ratios — and therefore hit rates — are preserved while keeping
// warm-up tractable.
package workload

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/sim"
)

// Class groups workloads the way the paper's evaluation sections do.
type Class uint8

const (
	// ScaleOut workloads are the CloudSuite-derived primary targets.
	ScaleOut Class = iota
	// Enterprise workloads are the traditional server applications.
	Enterprise
	// Batch workloads are the SPEC CPU2006 components of Table V mixes.
	Batch
)

func (c Class) String() string {
	switch c {
	case ScaleOut:
		return "scale-out"
	case Enterprise:
		return "enterprise"
	case Batch:
		return "batch"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// Spec parameterizes one workload's synthetic stream. All sizes are bytes
// at paper scale; footprints marked "per core" are private to each core.
type Spec struct {
	Name  string
	Class Class

	// Instruction stream: a shared (read-only) code footprint. The PC walks
	// sequentially and jumps to a random function every JumpEveryLines
	// cache lines, modelling the large instruction working sets of server
	// software.
	InstrFootprint int64
	JumpEveryLines int

	// MemRatio is the fraction of instructions that access data memory;
	// StoreFrac the fraction of those that are stores.
	MemRatio  float64
	StoreFrac float64

	// Data regions. Fractions are of data accesses; the remainder after
	// Primary+Middle+Secondary+RWShared is the cold stream.
	PrimaryWSS  int64 // per core; sized to (mostly) fit the L1-D
	PrimaryFrac float64
	// The middle set misses the L1 but fits even the small shared LLC;
	// it is what makes every workload sensitive to LLC *latency*
	// regardless of capacity (paper Fig 2).
	MiddleWSS     int64
	MiddleFrac    float64
	SecondaryWSS  int64 // per core; the LLC-capacity-sensitive set
	SecondaryFrac float64
	ScanFrac      float64 // of secondary accesses that follow a circular scan
	RemoteProb    float64 // chance a secondary access touches another core's slice

	// Read-write sharing (Figs 3-4): a global pool touched by all cores.
	RWSharedFrac    float64
	SharedPool      int64
	SharedWriteFrac float64

	// Core behaviour: MLP bounds outstanding L1-D misses; IndepProb is the
	// chance a miss is independent of the previous instruction (can
	// overlap). Server workloads have low MLP (paper Sec. II-B).
	MLP       int
	IndepProb float64
}

// Validate panics when the spec is internally inconsistent; it is called by
// stream constructors so broken presets fail loudly.
func (s *Spec) Validate() {
	if s.Name == "" {
		panic("workload: unnamed spec")
	}
	if s.InstrFootprint < mem.LineSize || s.JumpEveryLines <= 0 {
		panic(fmt.Sprintf("workload %s: bad instruction stream params", s.Name))
	}
	if s.MemRatio <= 0 || s.MemRatio >= 1 {
		panic(fmt.Sprintf("workload %s: MemRatio %v outside (0,1)", s.Name, s.MemRatio))
	}
	sum := s.PrimaryFrac + s.MiddleFrac + s.SecondaryFrac + s.RWSharedFrac
	if sum > 1+1e-9 {
		panic(fmt.Sprintf("workload %s: data fractions sum to %v > 1", s.Name, sum))
	}
	if s.PrimaryWSS < mem.LineSize || s.SecondaryWSS < mem.LineSize {
		panic(fmt.Sprintf("workload %s: degenerate working sets", s.Name))
	}
	if s.MiddleFrac > 0 && s.MiddleWSS < mem.LineSize {
		panic(fmt.Sprintf("workload %s: middle accesses without a middle set", s.Name))
	}
	if s.RWSharedFrac > 0 && s.SharedPool < mem.LineSize {
		panic(fmt.Sprintf("workload %s: shared accesses without a pool", s.Name))
	}
	if s.MLP <= 0 {
		panic(fmt.Sprintf("workload %s: MLP must be positive", s.Name))
	}
}

// ColdFrac returns the fraction of data accesses that stream through cold
// (never-reused) memory.
func (s *Spec) ColdFrac() float64 {
	return 1 - s.PrimaryFrac - s.MiddleFrac - s.SecondaryFrac - s.RWSharedFrac
}

// Op is one instruction produced by a stream.
type Op struct {
	// NewIFetchLine is non-zero when this instruction enters a new
	// instruction cache line; Jump marks a non-sequential transfer (the
	// sequential case is covered by the next-line prefetcher).
	NewIFetchLine mem.LineAddr
	Jump          bool

	// IsMem marks a data access with the fields below.
	IsMem       bool
	Addr        mem.Addr
	Write       bool
	RWShared    bool
	Independent bool
	// NonTemporal marks never-reused streaming accesses; caches insert
	// their fills at LRU priority (see cache.InsertNonTemporal).
	NonTemporal bool
}

// Address-map region bases. Regions are separated in the high bits so no
// workload region ever aliases another. Bases and per-core strides carry
// line-aligned odd "salts": purely power-of-two spacing would make every
// region and every core's slice collapse onto the same low cache sets
// (set index = line mod sets), thrashing direct-mapped structures in a way
// no real memory layout does.
const (
	instrBase   = mem.Addr(0x01_0000_0000 + 64*11)
	primaryBase = mem.Addr(0x02_0000_0000 + 64*17041)
	middleBase  = mem.Addr(0x04_0000_0000 + 64*26227)
	sharedBase  = mem.Addr(0x08_0000_0000 + 64*33749)
	secBase     = mem.Addr(0x10_0000_0000 + 64*49999)
	coldBase    = mem.Addr(0x80_0000_0000 + 64*3163)

	primaryStride = 1<<26 + 64*10007  // per-core spacing of primary slices
	middleStride  = 1<<27 + 64*23039  // per-core spacing of middle slices
	secStride     = 1<<32 + 64*101117 // per-core spacing of secondary slices
	coldStride    = 1<<36 + 64*51511  // per-core spacing of cold streams
)

// Stream generates a core's instruction/memory trace deterministically.
type Stream struct {
	spec   Spec
	core   int
	ncores int
	scale  int64 // capacity scale divisor (1 = paper scale)
	rng    *sim.RNG

	// Scaled footprints (bytes).
	instrFP, primary, middle, secondary, sharedPool, coldRegion int64

	// Precomputed sim.Threshold comparands for every probability the hot
	// loop tests (compared against one rng.Raw53 draw; bit-identical to
	// the Float64 comparisons they replace — see sim.RNG.Raw53).
	th struct {
		mem, jump, hotJump             float64
		primary, middle, secondary, rw float64 // cumulative region splits
		store, sharedWrite             float64
		scan, remote                   float64
		indep, indepMiddle, indepSec   float64
		indepShared, indepCold         float64
	}

	// Precomputed sim.Divisor reciprocals for every bounded draw in the
	// hot loop (exact n%d without a hardware divide), plus the hot-jump
	// span they parameterize.
	instrDiv, hotDiv, primaryDiv, middleDiv sim.Divisor
	secondaryDiv, sharedDiv, coldDiv        sim.Divisor
	remoteDiv                               sim.Divisor // over ncores-1 peers
	hotSpan                                 uint64

	pc         mem.Addr // next instruction address
	lastILine  mem.LineAddr
	havePC     bool
	jumped     bool // the last line transition was a taken branch
	scanCursor int64
	coldCursor int64
	generated  uint64 // ops produced by Next
}

// NewStream builds the deterministic stream for one core. scale divides
// every footprint — instruction, primary, middle, secondary, shared —
// mirroring the capacity scaling of the simulated caches (including the
// L1s), so every footprint:capacity ratio matches paper scale. seed
// selects the run.
func NewStream(spec Spec, core, ncores int, scale int64, seed uint64) *Stream {
	spec.Validate()
	if core < 0 || core >= ncores {
		panic(fmt.Sprintf("workload: core %d outside [0,%d)", core, ncores))
	}
	if scale <= 0 {
		panic("workload: non-positive scale")
	}
	scaled := func(v int64) int64 {
		s := v / scale
		if s < mem.LineSize {
			s = mem.LineSize
		}
		// Round down to a whole number of lines.
		return s &^ (mem.LineSize - 1)
	}
	st := &Stream{
		spec:      spec,
		core:      core,
		ncores:    ncores,
		scale:     scale,
		rng:       sim.NewRNG(seed).Fork(uint64(core) + 1),
		instrFP:   scaled(spec.InstrFootprint),
		primary:   scaled(spec.PrimaryWSS),
		secondary: scaled(spec.SecondaryWSS),
	}
	if spec.MiddleFrac > 0 {
		st.middle = scaled(spec.MiddleWSS)
	}
	st.coldRegion = scaled(coldRegionBytes)
	if spec.RWSharedFrac > 0 {
		st.sharedPool = scaled(spec.SharedPool)
	}
	// Stagger scan cursors so cores do not move in lockstep.
	st.scanCursor = (st.secondary / int64(ncores)) * int64(core)
	st.pc = instrBase + mem.Addr(st.rng.Uint64n(uint64(st.instrFP)))&^(mem.LineSize-1)

	// The cumulative region splits reproduce nextData's historical
	// `r < f1+f2+…` sums term for term, so the float rounding — and hence
	// every region decision — is unchanged.
	st.th.mem = sim.Threshold(spec.MemRatio)
	st.th.jump = sim.Threshold(1 / float64(spec.JumpEveryLines))
	st.th.hotJump = sim.Threshold(hotJumpProb)
	st.th.primary = sim.Threshold(spec.PrimaryFrac)
	st.th.middle = sim.Threshold(spec.PrimaryFrac + spec.MiddleFrac)
	st.th.secondary = sim.Threshold(spec.PrimaryFrac + spec.MiddleFrac + spec.SecondaryFrac)
	st.th.rw = sim.Threshold(spec.PrimaryFrac + spec.MiddleFrac + spec.SecondaryFrac + spec.RWSharedFrac)
	st.th.store = sim.Threshold(spec.StoreFrac)
	st.th.sharedWrite = sim.Threshold(spec.SharedWriteFrac)
	st.th.scan = sim.Threshold(spec.ScanFrac)
	st.th.remote = sim.Threshold(spec.RemoteProb)
	st.th.indep = sim.Threshold(spec.IndepProb)
	st.th.indepMiddle = sim.Threshold(scaledProb(spec.IndepProb, middleIndepScale))
	st.th.indepSec = sim.Threshold(scaledProb(spec.IndepProb, secondaryIndepScale))
	st.th.indepShared = sim.Threshold(scaledProb(spec.IndepProb, sharedIndepScale))
	st.th.indepCold = sim.Threshold(scaledProb(spec.IndepProb, coldIndepScale))

	st.instrDiv = sim.NewDivisor(uint64(st.instrFP))
	st.hotSpan = uint64(float64(st.instrFP) * hotInstrFrac)
	if st.hotSpan >= mem.LineSize {
		st.hotDiv = sim.NewDivisor(st.hotSpan)
	}
	st.primaryDiv = sim.NewDivisor(uint64(st.primary))
	if st.middle > 0 {
		st.middleDiv = sim.NewDivisor(uint64(st.middle))
	}
	st.secondaryDiv = sim.NewDivisor(uint64(st.secondary))
	if st.sharedPool > 0 {
		st.sharedDiv = sim.NewDivisor(uint64(st.sharedPool))
	}
	st.coldDiv = sim.NewDivisor(uint64(st.coldRegion))
	if ncores > 1 {
		st.remoteDiv = sim.NewDivisor(uint64(ncores - 1))
	}
	return st
}

// Spec returns the stream's workload spec.
func (s *Stream) Spec() Spec { return s.spec }

// Generated reports how many ops Next has produced. The core model retires
// every op it consumes (an op may be in flight across a frontend stall but
// is never dropped), so tests cross-check Retired against this count.
func (s *Stream) Generated() uint64 { return s.generated }

// Next fills op with the next instruction. op is reused by callers to
// avoid allocation in the simulation hot loop. Only the fields consumers
// read unconditionally (NewIFetchLine, Jump, IsMem) are reset each call;
// the data fields (Addr, Write, RWShared, Independent, NonTemporal) are
// meaningful only when IsMem is set — nextData defines every one of them
// — and may hold stale values from an earlier op otherwise.
func (s *Stream) Next(op *Op) {
	s.generated++
	op.NewIFetchLine = 0
	op.Jump = false
	op.IsMem = false
	s.nextIFetch(op)
	if s.rng.Raw53() < s.th.mem {
		s.nextData(op)
	}
}

// Instruction-stream locality: real code concentrates execution in hot
// functions. hotJumpProb of taken jumps land in the hot fraction of the
// footprint; the rest are uniform over the whole code. This skew is what
// lets a shared LLC retain the hot instruction working set against data
// churn while the cold tail still misses (the scale-out frontend profile).
const (
	hotJumpProb  = 0.96
	hotInstrFrac = 0.08
)

// nextIFetch advances the PC by one instruction (4 bytes), jumping to a
// random function start every JumpEveryLines lines on average.
func (s *Stream) nextIFetch(op *Op) {
	line := s.pc.Line()
	if !s.havePC || line != s.lastILine {
		op.NewIFetchLine = line
		op.Jump = s.havePC && s.jumped
		s.lastILine = line
		s.havePC = true
	}
	s.jumped = false
	// Advance.
	next := s.pc + 4
	if next.Line() != line {
		// Crossing a line boundary: maybe jump instead.
		if s.rng.Raw53() < s.th.jump {
			dv := s.instrDiv
			if s.rng.Raw53() < s.th.hotJump && s.hotSpan >= mem.LineSize {
				dv = s.hotDiv
			}
			next = instrBase + mem.Addr(s.rng.Uint64Mod(dv))&^(mem.LineSize-1)
			s.jumped = true
		}
		if uint64(next-instrBase) >= uint64(s.instrFP) {
			next = instrBase
		}
	}
	s.pc = next
}

// Region-dependent instruction-level parallelism: middle-set accesses are
// array/hash lookups whose addresses rarely depend on in-flight loads, so
// an OoO core overlaps them well; secondary accesses are pointer chases
// that serialize (the low-MLP behaviour paper Sec. II-B attributes to
// server workloads). Both scale the spec's base IndepProb.
const (
	middleIndepScale    = 2.4
	secondaryIndepScale = 0.6
	coldIndepScale      = 2.0 // streaming misses prefetch/overlap well
	sharedIndepScale    = 2.6 // GC/producer-consumer traffic is asynchronous
)

// coldRegionBytes is the per-core cold region at paper scale.
const coldRegionBytes = int64(16) << 30

func scaledProb(p, scale float64) float64 {
	p *= scale
	if p > 0.95 {
		p = 0.95
	}
	return p
}

// nextData picks the data region and address for a memory instruction.
// It defines every data field of op (see Next's reset contract): the
// region branches below overwrite Addr, Write and (where applicable)
// Independent; RWShared and NonTemporal are set here and overridden by
// the branches that use them.
func (s *Stream) nextData(op *Op) {
	op.IsMem = true
	op.RWShared = false
	op.NonTemporal = false
	op.Independent = s.rng.Raw53() < s.th.indep
	r := s.rng.Raw53()
	switch {
	case r < s.th.primary:
		base := primaryBase + mem.Addr(int64(s.core)*primaryStride)
		op.Addr = base + mem.Addr(s.rng.Uint64Mod(s.primaryDiv))
		op.Write = s.rng.Raw53() < s.th.store
	case r < s.th.middle:
		base := middleBase + mem.Addr(int64(s.core)*middleStride)
		op.Addr = base + mem.Addr(s.rng.Uint64Mod(s.middleDiv))
		op.Write = s.rng.Raw53() < s.th.store
		op.Independent = s.rng.Raw53() < s.th.indepMiddle
	case r < s.th.secondary:
		owner := s.core
		if s.ncores > 1 && s.rng.Raw53() < s.th.remote {
			owner = int(s.rng.Uint64Mod(s.remoteDiv))
			if owner >= s.core {
				owner++
			}
		}
		base := secBase + mem.Addr(int64(owner)*secStride)
		var off int64
		if s.rng.Raw53() < s.th.scan {
			off = s.scanCursor
			s.scanCursor += mem.LineSize
			if s.scanCursor >= s.secondary {
				s.scanCursor = 0
			}
		} else {
			off = int64(s.rng.Uint64Mod(s.secondaryDiv))
		}
		op.Addr = base + mem.Addr(off)
		op.Write = s.rng.Raw53() < s.th.store
		op.Independent = s.rng.Raw53() < s.th.indepSec
	case r < s.th.rw:
		op.Addr = sharedBase + mem.Addr(s.rng.Uint64Mod(s.sharedDiv))
		op.Write = s.rng.Raw53() < s.th.sharedWrite
		op.RWShared = true
		op.Independent = s.rng.Raw53() < s.th.indepShared
	default:
		// Cold stream: uniform over a region far larger than any cache
		// (16GB per core at paper scale), so reuse is negligible and the
		// page-based DRAM cache finds no spatial footprint to exploit.
		base := coldBase + mem.Addr(int64(s.core)*coldStride)
		op.Addr = base + mem.Addr(s.rng.Uint64Mod(s.coldDiv))
		op.Write = s.rng.Raw53() < s.th.store
		op.Independent = s.rng.Raw53() < s.th.indepCold
		op.NonTemporal = true
	}
}

// Prewarm visits every line of the stream's cache-resident footprints
// exactly once — instructions, middle set, the secondary slice, and the
// shared pool — calling visit for each. The secondary slice is emitted in
// scan order starting at the scan cursor, so after a functional replay the
// LRU state matches a scan that has been running forever. This is the
// reproduction's substitute for the paper's warmed checkpoints: it seeds
// steady-state cache contents in time proportional to the footprint rather
// than to the access count that would organically touch it.
func (s *Stream) Prewarm(visit func(addr mem.Addr, instr bool)) {
	for off := int64(0); off < s.instrFP; off += mem.LineSize {
		visit(instrBase+mem.Addr(off), true)
	}
	if s.middle > 0 {
		base := middleBase + mem.Addr(int64(s.core)*middleStride)
		for off := int64(0); off < s.middle; off += mem.LineSize {
			visit(base+mem.Addr(off), false)
		}
	}
	if s.sharedPool > 0 {
		for off := int64(0); off < s.sharedPool; off += mem.LineSize {
			visit(sharedBase+mem.Addr(off), false)
		}
	}
	base := secBase + mem.Addr(int64(s.core)*secStride)
	for i := int64(0); i < s.secondary; i += mem.LineSize {
		off := (s.scanCursor + i) % s.secondary
		visit(base+mem.Addr(off), false)
	}
}
