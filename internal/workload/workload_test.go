package workload

import (
	"math"
	"testing"

	"repro/internal/mem"
)

func TestAllPresetsValidate(t *testing.T) {
	var all []Spec
	all = append(all, ScaleOutSuite()...)
	all = append(all, EnterpriseSuite()...)
	for _, n := range Spec2006Names() {
		all = append(all, Spec2006(n))
	}
	for _, s := range all {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			s.Validate() // panics on failure
			if cf := s.ColdFrac(); cf < 0 || cf > 0.2 {
				t.Errorf("cold fraction %v implausible", cf)
			}
		})
	}
}

func TestSuiteComposition(t *testing.T) {
	so := ScaleOutSuite()
	if len(so) != 5 {
		t.Fatalf("scale-out suite has %d workloads, want 5", len(so))
	}
	want := []string{"WebSearch", "DataServing", "WebFrontend", "MapReduce", "SATSolver"}
	for i, w := range want {
		if so[i].Name != w || so[i].Class != ScaleOut {
			t.Errorf("suite[%d] = %s (%v), want %s", i, so[i].Name, so[i].Class, w)
		}
	}
	ent := EnterpriseSuite()
	if len(ent) != 3 {
		t.Fatalf("enterprise suite has %d workloads, want 3", len(ent))
	}
}

func TestMixesMatchTable5(t *testing.T) {
	mixes := Spec06Mixes()
	if len(mixes) != 10 {
		t.Fatalf("%d mixes, want 10 (paper Table V)", len(mixes))
	}
	// Spot-check the paper's rows.
	if mixes[2].Benchmarks != [4]string{"mcf", "zeusmp", "calculix", "lbm"} {
		t.Errorf("mix3 = %v", mixes[2].Benchmarks)
	}
	if mixes[5].Benchmarks != [4]string{"gobmk", "perlbench", "milc", "astar"} {
		t.Errorf("mix6 = %v", mixes[5].Benchmarks)
	}
	// All components resolve.
	for _, m := range mixes {
		specs := MixSpecs(m)
		if len(specs) != 4 {
			t.Fatalf("%s resolved to %d specs", m.Name, len(specs))
		}
		for _, s := range specs {
			if s.Class != Batch {
				t.Errorf("%s: %s not Batch", m.Name, s.Name)
			}
		}
	}
}

func TestUnknownSpecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Spec2006("h264ref")
}

func TestStreamDeterminism(t *testing.T) {
	a := NewStream(WebSearch(), 3, 16, 16, 42)
	b := NewStream(WebSearch(), 3, 16, 16, 42)
	var oa, ob Op
	for i := 0; i < 10000; i++ {
		a.Next(&oa)
		b.Next(&ob)
		if oa != ob {
			t.Fatalf("streams diverged at op %d: %+v vs %+v", i, oa, ob)
		}
	}
}

func TestStreamsDifferAcrossCores(t *testing.T) {
	a := NewStream(WebSearch(), 0, 16, 16, 42)
	b := NewStream(WebSearch(), 1, 16, 16, 42)
	var oa, ob Op
	same := 0
	for i := 0; i < 1000; i++ {
		a.Next(&oa)
		b.Next(&ob)
		if oa.IsMem() && ob.IsMem() && oa.Addr() == ob.Addr() {
			same++
		}
	}
	if same > 100 {
		t.Fatalf("cores generated %d identical addresses of 1000; streams too correlated", same)
	}
}

func TestMemRatioHolds(t *testing.T) {
	s := NewStream(WebSearch(), 0, 16, 16, 1)
	var op Op
	memOps := 0
	const n = 200000
	for i := 0; i < n; i++ {
		s.Next(&op)
		if op.IsMem() {
			memOps++
		}
	}
	got := float64(memOps) / n
	want := WebSearch().MemRatio
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("measured mem ratio %v, want %v", got, want)
	}
}

func TestRegionDisjointness(t *testing.T) {
	// Every generated data address must land in exactly one declared region.
	for _, spec := range ScaleOutSuite() {
		s := NewStream(spec, 2, 16, 16, 7)
		var op Op
		for i := 0; i < 50000; i++ {
			s.Next(&op)
			if op.NewIFetchLine() != 0 {
				a := mem.Addr(op.NewIFetchLine())
				if a < instrBase || a >= primaryBase {
					t.Fatalf("%s: ifetch %#x outside instruction region", spec.Name, a)
				}
			}
			if !op.IsMem() {
				continue
			}
			regions := 0
			if op.Addr() >= primaryBase && op.Addr() < sharedBase {
				regions++
			}
			if op.Addr() >= sharedBase && op.Addr() < secBase {
				regions++
				if !op.RWShared() {
					t.Fatalf("%s: shared-region address not flagged RWShared", spec.Name)
				}
			}
			if op.Addr() >= secBase && op.Addr() < coldBase {
				regions++
			}
			if op.Addr() >= coldBase {
				regions++
			}
			if regions != 1 {
				t.Fatalf("%s: address %#x in %d regions", spec.Name, op.Addr(), regions)
			}
		}
	}
}

func TestScaleShrinksFootprints(t *testing.T) {
	spec := MapReduce()
	s1 := NewStream(spec, 0, 16, 1, 3)
	s16 := NewStream(spec, 0, 16, 16, 3)
	if s16.secondary*16 != s1.secondary {
		t.Fatalf("scaled secondary %d, unscaled %d", s16.secondary, s1.secondary)
	}
	if s16.instrFP*16 != s1.instrFP {
		t.Fatalf("scaled instrFP %d, unscaled %d", s16.instrFP, s1.instrFP)
	}
	// Primary is L1-level and must NOT scale: verify addresses stay within
	// the full-size region span.
	var op Op
	maxPrimary := mem.Addr(0)
	for i := 0; i < 100000; i++ {
		s16.Next(&op)
		if op.IsMem() && op.Addr() >= primaryBase && op.Addr() < sharedBase {
			if off := op.Addr() - primaryBase; off > maxPrimary {
				maxPrimary = off
			}
		}
	}
	if int64(maxPrimary) < spec.PrimaryWSS/2 {
		t.Fatalf("primary region looks scaled: max offset %d for WSS %d", maxPrimary, spec.PrimaryWSS)
	}
}

func TestRWSharedFractionApproximatesSpec(t *testing.T) {
	spec := WebSearch()
	s := NewStream(spec, 0, 16, 16, 11)
	var op Op
	shared, data := 0, 0
	for i := 0; i < 400000; i++ {
		s.Next(&op)
		if op.IsMem() {
			data++
			if op.RWShared() {
				shared++
			}
		}
	}
	got := float64(shared) / float64(data)
	if math.Abs(got-spec.RWSharedFrac) > spec.RWSharedFrac/2 {
		t.Fatalf("RW-shared fraction %v, want ~%v", got, spec.RWSharedFrac)
	}
}

func TestIFetchSequentialAndJumps(t *testing.T) {
	s := NewStream(WebSearch(), 0, 16, 16, 5)
	var op Op
	newLines, jumps := 0, 0
	const n = 100000
	for i := 0; i < n; i++ {
		s.Next(&op)
		if op.NewIFetchLine() != 0 {
			newLines++
			if op.Jump() {
				jumps++
			}
		}
	}
	// 16 instructions per 64B line: new lines at ~1/16 of instructions.
	lineRate := float64(newLines) / n
	if lineRate < 0.04 || lineRate > 0.09 {
		t.Fatalf("new-line rate %v, want ~1/16", lineRate)
	}
	// Jumps happen roughly every JumpEveryLines line transitions.
	jumpRate := float64(jumps) / float64(newLines)
	want := 1 / float64(WebSearch().JumpEveryLines)
	if math.Abs(jumpRate-want) > want/2 {
		t.Fatalf("jump rate %v, want ~%v", jumpRate, want)
	}
}

func TestScanCoversSecondary(t *testing.T) {
	spec := SATSolver()
	spec.ScanFrac = 1.0
	spec.SecondaryFrac = 0.5
	spec.PrimaryFrac = 0.45
	spec.MiddleFrac = 0
	spec.RWSharedFrac = 0
	s := NewStream(spec, 0, 16, 16, 9)
	var op Op
	seen := map[mem.LineAddr]bool{}
	for i := 0; i < 400000; i++ {
		s.Next(&op)
		if op.IsMem() && op.Addr() >= secBase && op.Addr() < coldBase {
			seen[op.Addr().Line()] = true
		}
	}
	wantLines := int(s.secondary / mem.LineSize)
	if len(seen) < wantLines*9/10 {
		t.Fatalf("scan covered %d of %d secondary lines", len(seen), wantLines)
	}
}

func TestValidatePanics(t *testing.T) {
	bad := []func() Spec{
		func() Spec { s := WebSearch(); s.Name = ""; return s },
		func() Spec { s := WebSearch(); s.MemRatio = 0; return s },
		func() Spec { s := WebSearch(); s.MemRatio = 1.2; return s },
		func() Spec { s := WebSearch(); s.PrimaryFrac = 0.9; s.SecondaryFrac = 0.3; return s },
		func() Spec { s := WebSearch(); s.JumpEveryLines = 0; return s },
		func() Spec { s := WebSearch(); s.MLP = 0; return s },
		func() Spec { s := WebSearch(); s.SecondaryWSS = 0; return s },
		func() Spec { s := WebSearch(); s.SharedPool = 0; return s },
	}
	for i, mk := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			s := mk()
			s.Validate()
		}()
	}
}

func TestNewStreamPanics(t *testing.T) {
	for i, fn := range []func(){
		func() { NewStream(WebSearch(), -1, 16, 16, 1) },
		func() { NewStream(WebSearch(), 16, 16, 16, 1) },
		func() { NewStream(WebSearch(), 0, 16, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestClassString(t *testing.T) {
	if ScaleOut.String() != "scale-out" || Enterprise.String() != "enterprise" || Batch.String() != "batch" {
		t.Fatal("class names wrong")
	}
}

// TestNextBatchMatchesNext is the batched-stream determinism contract
// (DESIGN.md §8): NextBatch must produce exactly the op sequence Next
// produces — field for field — regardless of where refill boundaries
// fall, and account the same Generated count at batch boundaries.
func TestNextBatchMatchesNext(t *testing.T) {
	serial := NewStream(WebSearch(), 2, 16, 32, 77)
	batched := NewStream(WebSearch(), 2, 16, 32, 77)

	// Deliberately awkward batch sizes so refills land mid-quantum, around
	// ifetch-line transitions, and on every op-kind boundary.
	sizes := []int{1, 3, 64, 7, 128, 2, 31, 64, 5, 256}
	buf := make([]Op, 256)
	var ref Op
	total := 0
	for round := 0; total < 60_000; round++ {
		n := sizes[round%len(sizes)]
		got := batched.NextBatch(buf[:n])
		if got != n {
			t.Fatalf("NextBatch(%d) = %d", n, got)
		}
		for i := 0; i < n; i++ {
			serial.Next(&ref)
			if buf[i] != ref {
				t.Fatalf("op %d (batch size %d, offset %d): batched %+v, serial %+v",
					total+i, n, i, buf[i], ref)
			}
		}
		total += n
		if serial.Generated() != batched.Generated() {
			t.Fatalf("Generated diverged at op %d: %d vs %d", total, serial.Generated(), batched.Generated())
		}
	}
}

// TestNextBatchAllocFree pins the satellite fix: steady-state refills
// reuse the caller's buffer and allocate nothing.
func TestNextBatchAllocFree(t *testing.T) {
	s := NewStream(WebSearch(), 0, 16, 32, 9)
	buf := make([]Op, 64)
	s.NextBatch(buf) // warm any lazy state
	allocs := testing.AllocsPerRun(2000, func() {
		s.NextBatch(buf)
	})
	if allocs != 0 {
		t.Fatalf("NextBatch allocates %v objects per refill, want 0", allocs)
	}
}

// TestStreamGolden pins the generated op stream itself: an FNV-1a hash of
// the first 100k packed ops of a fixed stream, captured while the stream
// was proven byte-identical to the pre-batching generator by old-vs-new
// binary diffs (PR 4). TestNextBatchMatchesNext proves Next == NextBatch,
// but both share gen(), so only an absolute pin like this catches a
// future gen() edit that reorders or drops an RNG draw in both paths at
// once.
func TestStreamGolden(t *testing.T) {
	const want = uint64(0x680c5f7e54bf750b)
	s := NewStream(WebSearch(), 2, 16, 32, 42)
	var op Op
	h := uint64(1469598103934665603) // FNV-64 offset basis
	for i := 0; i < 100000; i++ {
		s.Next(&op)
		for _, w := range [2]uint64{op.IWord, op.DWord} {
			for b := 0; b < 64; b += 8 {
				h ^= w >> b & 0xFF
				h *= 1099511628211 // FNV-64 prime
			}
		}
	}
	if h != want {
		t.Fatalf("op-stream hash %#x, want %#x: the generator's draw sequence changed", h, want)
	}
}
