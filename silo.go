// Package silo is a simulation library for studying private die-stacked
// DRAM last-level caches in server processors. It reproduces the system
// and evaluation of "Farewell My Shared LLC! A Case for Private Die-Stacked
// DRAM Caches for Servers" (Shahab, Zhu, Margaritov, Grot — MICRO 2018).
//
// The library models five cache organizations over a common substrate of
// out-of-order cores, a 2D-mesh interconnect, directory coherence, and
// calibrated synthetic server workloads:
//
//   - Baseline: an 8 MB shared NUCA SRAM LLC (Scale-out Processors style);
//   - BaselineDRAM: Baseline plus an 8 GB conventional page-based DRAM cache;
//   - SILO: one private, latency-optimized 256 MB die-stacked DRAM vault per
//     core, kept coherent by a MOESI duplicate-tag directory in the vaults;
//   - SILOCO: SILO with capacity-optimized 512 MB vaults;
//   - VaultsShared: latency-optimized vaults organized as a shared NUCA LLC.
//
// # Quickstart
//
//	cfg := silo.SILOConfig(16)
//	sys := silo.NewSystem(cfg, silo.WebSearch())
//	sys.Prewarm()
//	sys.WarmFunctional(300_000)
//	m := sys.Run(20_000, 60_000)
//	fmt.Printf("aggregate IPC: %.2f\n", m.IPC())
//
// The experiments subpackage entry points (re-exported here as RunFig10
// etc.) regenerate every table and figure of the paper's evaluation; see
// EXPERIMENTS.md for measured-vs-paper results.
package silo

import (
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Re-exported system types. See the internal packages for full
// documentation of each.
type (
	// Config describes one simulated system (kind, cores, cache geometry,
	// coherence protocol, optimizations).
	Config = core.Config
	// Kind selects the cache organization under study.
	Kind = core.Kind
	// Metrics summarizes one measured window (IPC, hit/miss decomposition,
	// traffic and coherence counters).
	Metrics = core.Metrics
	// Stats is the raw event-count record inside Metrics.
	Stats = core.Stats
	// Workload parameterizes one synthetic workload stream.
	Workload = workload.Spec
	// Mix is a named 4-benchmark SPEC CPU2006 combination (paper Table V).
	Mix = workload.Mix
	// VaultDesign is a die-stacked vault organization from the DRAM
	// technology model (tile geometry + capacity).
	VaultDesign = dram.VaultDesign
	// Cycle is simulated time in core clock cycles.
	Cycle = sim.Cycle
	// ExperimentMode sizes experiment warm-up and measurement windows and
	// bounds the runner's worker pool via its Parallelism field.
	ExperimentMode = experiments.Mode
	// SimCell is one independent simulation (config + per-core workloads +
	// label) for RunCells.
	SimCell = experiments.Cell
)

// RunCells executes independent simulation cells on a worker pool sized by
// the mode's Parallelism (default GOMAXPROCS), returning metrics in
// submission order; results are bit-identical to sequential execution.
var RunCells = experiments.RunCells

// System kinds.
const (
	Baseline     = core.Baseline
	BaselineDRAM = core.BaselineDRAM
	SILO         = core.SILO
	SILOCO       = core.SILOCO
	VaultsShared = core.VaultsShared
)

// Configuration presets (paper Sec. VI-A).
var (
	// BaselineConfig is the shared 8MB NUCA LLC baseline.
	BaselineConfig = core.BaselineConfig
	// BaselineDRAMConfig adds the conventional 8GB DRAM cache.
	BaselineDRAMConfig = core.BaselineDRAMConfig
	// SILOConfig is the paper's SILO organization.
	SILOConfig = core.SILOConfig
	// SILOCOConfig is SILO with capacity-optimized vaults.
	SILOCOConfig = core.SILOCOConfig
	// VaultsSharedConfig shares latency-optimized vaults NUCA-style.
	VaultsSharedConfig = core.VaultsSharedConfig
)

// Workload presets (paper Table IV and Table V).
var (
	WebSearch   = workload.WebSearch
	DataServing = workload.DataServing
	WebFrontend = workload.WebFrontend
	MapReduce   = workload.MapReduce
	SATSolver   = workload.SATSolver
	TPCC        = workload.TPCC
	Oracle      = workload.Oracle
	Zeus        = workload.Zeus
	// ScaleOutSuite and EnterpriseSuite return the paper's suites.
	ScaleOutSuite   = workload.ScaleOutSuite
	EnterpriseSuite = workload.EnterpriseSuite
	// Spec2006 returns a named SPEC CPU2006 benchmark model (panicking on
	// unknown names — check Spec2006Names first for user input);
	// Spec06Mixes the paper's ten 4-core mixes.
	Spec2006      = workload.Spec2006
	Spec2006Names = workload.Spec2006Names
	Spec06Mixes   = workload.Spec06Mixes
	MixSpecs      = workload.MixSpecs
)

// System wraps the simulated machine: cores driving workload streams over
// the configured cache organization.
type System struct {
	inner *core.System
}

// NewSystem builds a system in which every core runs the given workload.
// Use NewMixedSystem for per-core workloads.
func NewSystem(cfg Config, w Workload) *System {
	return &System{inner: core.NewSystem(cfg, []workload.Spec{w})}
}

// NewMixedSystem builds a system with one workload per core (len(ws) must
// equal cfg.Cores).
func NewMixedSystem(cfg Config, ws []Workload) *System {
	return &System{inner: core.NewSystem(cfg, ws)}
}

// Prewarm seeds steady-state cache contents analytically (the substitute
// for the paper's warmed simulation checkpoints). Call before Run.
func (s *System) Prewarm() { s.inner.Prewarm() }

// WarmFunctional replays n instructions per core through the hierarchy
// functionally (no timing), completing cache warm-up.
func (s *System) WarmFunctional(n int) { s.inner.WarmFunctional(n) }

// Run executes warm timed cycles followed by a measured window and returns
// its metrics (the paper's SMARTS-style scheme).
func (s *System) Run(warm, measure Cycle) Metrics { return s.inner.Run(warm, measure) }

// CheckInvariants validates coherence and inclusion invariants, returning
// a description of the first violation or "" when healthy.
func (s *System) CheckInvariants() string { return s.inner.CheckInvariants() }

// Close releases the off-thread trace-generation goroutines started when
// Config.GenThreads > 0 (idempotent; a no-op for synchronous systems).
// Call it when done with a system, from the goroutine that ran it.
func (s *System) Close() { s.inner.Close() }

// DRAM technology model entry points (paper Sec. IV).
var (
	// TileSweep reproduces Fig 7 (tile dimensions vs latency and area).
	TileSweep = dram.TileSweep
	// EnumerateVaultDesigns reproduces the Fig 8 design-space scatter.
	EnumerateVaultDesigns = dram.EnumerateVaultDesigns
	// VaultEnvelope returns the lowest-latency design per capacity.
	VaultEnvelope = dram.Envelope
	// LatencyOptimizedVault and CapacityOptimizedVault are the two design
	// points of Table I.
	LatencyOptimizedVault  = dram.LatencyOptimized
	CapacityOptimizedVault = dram.CapacityOptimized
)

// Experiment modes.
var (
	// QuickMode runs experiments with reduced windows (tests, benches).
	QuickMode = experiments.Quick
	// FullMode mirrors the paper's measurement windows.
	FullMode = experiments.Full
)

// Experiment runners. Each regenerates one table or figure of the paper
// and returns a result whose String method prints the paper-shaped table.
var (
	RunFig1   = experiments.Fig1
	RunFig2   = experiments.Fig2
	RunFig3   = experiments.Fig3
	RunFig4   = experiments.Fig4
	RunFig7   = experiments.Fig7
	RunFig8   = experiments.Fig8
	RunTable1 = experiments.Table1
	RunFig10  = experiments.Fig10
	RunFig11  = experiments.Fig11
	RunFig12  = experiments.Fig12
	RunFig13  = experiments.Fig13
	RunFig14  = experiments.Fig14
	RunFig15  = experiments.Fig15
	RunTable6 = experiments.Table6
	RunFig16  = experiments.Fig16
)
