package silo_test

import (
	"testing"

	silo "repro"
)

// The facade exposes the full workflow: configure, build, warm, run.
func TestFacadeQuickstart(t *testing.T) {
	cfg := silo.SILOConfig(4)
	cfg.Scale = 64
	sys := silo.NewSystem(cfg, silo.WebSearch())
	sys.Prewarm()
	sys.WarmFunctional(50_000)
	m := sys.Run(2_000, 10_000)
	if m.Retired == 0 || m.IPC() <= 0 {
		t.Fatalf("quickstart produced no work: %+v", m)
	}
	if msg := sys.CheckInvariants(); msg != "" {
		t.Fatalf("invariants violated: %s", msg)
	}
}

func TestFacadeMixedSystem(t *testing.T) {
	cfg := silo.BaselineConfig(4)
	cfg.Scale = 64
	ws := []silo.Workload{
		silo.Spec2006("mcf"), silo.Spec2006("gamess"),
		silo.Spec2006("lbm"), silo.Spec2006("povray"),
	}
	sys := silo.NewMixedSystem(cfg, ws)
	sys.Prewarm()
	sys.WarmFunctional(30_000)
	m := sys.Run(2_000, 10_000)
	for c := 0; c < 4; c++ {
		if m.PerCoreRetired[c] == 0 {
			t.Fatalf("core %d idle", c)
		}
	}
}

func TestFacadePresetsDistinct(t *testing.T) {
	kinds := map[silo.Kind]silo.Config{
		silo.Baseline:     silo.BaselineConfig(16),
		silo.BaselineDRAM: silo.BaselineDRAMConfig(16),
		silo.SILO:         silo.SILOConfig(16),
		silo.SILOCO:       silo.SILOCOConfig(16),
		silo.VaultsShared: silo.VaultsSharedConfig(16),
	}
	for kind, cfg := range kinds {
		if cfg.Kind != kind {
			t.Errorf("preset for %v reports kind %v", kind, cfg.Kind)
		}
	}
	if silo.SILOConfig(16).VaultCapacity >= silo.SILOCOConfig(16).VaultCapacity {
		t.Error("SILO-CO should have larger vaults than SILO")
	}
}

func TestFacadeDRAMModel(t *testing.T) {
	lo := silo.LatencyOptimizedVault()
	co := silo.CapacityOptimizedVault()
	if lo.CapacityMB != 256 || co.CapacityMB != 512 {
		t.Fatalf("design points: %v / %v", lo, co)
	}
	if lo.AccessCycles(2) != 11 {
		t.Fatalf("latency-optimized vault = %d cycles, want 11", lo.AccessCycles(2))
	}
	if len(silo.TileSweep()) != 5 || len(silo.VaultEnvelope()) != 7 {
		t.Fatal("technology sweeps incomplete")
	}
}

func TestFacadeWorkloadCatalog(t *testing.T) {
	if len(silo.ScaleOutSuite()) != 5 || len(silo.EnterpriseSuite()) != 3 {
		t.Fatal("suite sizes wrong")
	}
	if len(silo.Spec06Mixes()) != 10 {
		t.Fatal("want the paper's 10 mixes")
	}
	if got := silo.MixSpecs(silo.Spec06Mixes()[0]); len(got) != 4 {
		t.Fatal("mix should resolve to 4 specs")
	}
}
